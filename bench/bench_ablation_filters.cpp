// Ablation (DESIGN.md §5): what each ingredient of the intermediate filter
// buys, on one scenario. Compares, for find-relation over OLE-OPE:
//
//   ST2        no intermediate filter (refine everything)
//   CH         convex-hull filter [6]: hulls disjoint => disjoint; can never
//              certify intersection or containment
//   APRIL      raster filter, intersection detection only [14]
//   P+C-flat   raster filter without the MBR-case dispatch of Fig. 4/5:
//              only the generic IFIntersects tests run for every pair
//   P+C        the paper's full method (case-specific filter sequences)
//
// The gap between P+C-flat and P+C is exactly the value of the paper's
// specialised per-MBR-case workflows.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/de9im/relate_engine.h"
#include "src/geometry/convex_hull.h"
#include "src/topology/intermediate_filters.h"
#include "src/topology/mbr_relation.h"
#include "src/util/timer.h"

namespace stj::bench {
namespace {

struct AblationResult {
  const char* name;
  double pairs_per_second;
  double undetermined_percent;
};

// Convex-hull filter: MBR classification plus hull-disjointness, then
// refinement for everything else.
AblationResult RunConvexHull(const ScenarioData& scenario) {
  std::vector<Ring> r_hulls;
  std::vector<Ring> s_hulls;
  r_hulls.reserve(scenario.r.objects.size());
  s_hulls.reserve(scenario.s.objects.size());
  for (const SpatialObject& o : scenario.r.objects) {
    r_hulls.push_back(ConvexHull(o.geometry));
  }
  for (const SpatialObject& o : scenario.s.objects) {
    s_hulls.push_back(ConvexHull(o.geometry));
  }
  uint64_t refined = 0;
  Timer timer;
  for (const CandidatePair& pair : scenario.candidates) {
    const Polygon& r = scenario.r.objects[pair.r_idx].geometry;
    const Polygon& s = scenario.s.objects[pair.s_idx].geometry;
    const BoxRelation boxes = ClassifyBoxes(r.Bounds(), s.Bounds());
    if (boxes == BoxRelation::kDisjoint || boxes == BoxRelation::kCross) {
      continue;  // decided by the MBR filter
    }
    if (!ConvexPolygonsIntersect(r_hulls[pair.r_idx], s_hulls[pair.s_idx])) {
      continue;  // hulls disjoint => objects disjoint
    }
    ++refined;
    const de9im::Matrix m = de9im::RelateEngine::Relate(r, s);
    // Discarded: the benchmark times the computation, not the relation.
    (void)de9im::MostSpecificRelation(m, MbrCandidates(boxes));
  }
  const double seconds = timer.ElapsedSeconds();
  return AblationResult{
      "CH",
      static_cast<double>(scenario.candidates.size()) / seconds,
      100.0 * static_cast<double>(refined) /
          static_cast<double>(scenario.candidates.size())};
}

// P+C without the MBR-case dispatch: every pair goes through the generic
// IFIntersects tests; definite containment/covering can never be produced.
AblationResult RunFlatPC(const ScenarioData& scenario) {
  uint64_t refined = 0;
  Timer timer;
  for (const CandidatePair& pair : scenario.candidates) {
    const Polygon& r = scenario.r.objects[pair.r_idx].geometry;
    const Polygon& s = scenario.s.objects[pair.s_idx].geometry;
    const BoxRelation boxes = ClassifyBoxes(r.Bounds(), s.Bounds());
    if (boxes == BoxRelation::kDisjoint || boxes == BoxRelation::kCross) {
      continue;
    }
    const IFOutcome outcome = IFIntersects(scenario.r_april[pair.r_idx],
                                           scenario.s_april[pair.s_idx]);
    de9im::RelationSet candidates = MbrCandidates(boxes);
    if (outcome == IFOutcome::kDisjoint) continue;
    if (outcome == IFOutcome::kIntersects) {
      candidates.Remove(de9im::Relation::kDisjoint);
      candidates.Remove(de9im::Relation::kMeets);
      if (candidates.Count() == 1) continue;  // plain intersects: decided
    }
    ++refined;
    const de9im::Matrix m = de9im::RelateEngine::Relate(r, s);
    // Discarded: the benchmark times the computation, not the relation.
    (void)de9im::MostSpecificRelation(m, candidates);
  }
  const double seconds = timer.ElapsedSeconds();
  return AblationResult{
      "P+C-flat",
      static_cast<double>(scenario.candidates.size()) / seconds,
      100.0 * static_cast<double>(refined) /
          static_cast<double>(scenario.candidates.size())};
}

void Run(const BenchOptions& options) {
  const ScenarioData scenario = BuildScenarioVerbose("OLE-OPE", options);

  std::vector<AblationResult> results;
  {
    const FindRelationRun run =
        RunFindRelation(Method::kST2, scenario, scenario.candidates);
    results.push_back(AblationResult{"ST2", run.pairs_per_second,
                                     run.stats.UndeterminedPercent()});
  }
  results.push_back(RunConvexHull(scenario));
  {
    const FindRelationRun run =
        RunFindRelation(Method::kApril, scenario, scenario.candidates);
    results.push_back(AblationResult{"APRIL", run.pairs_per_second,
                                     run.stats.UndeterminedPercent()});
  }
  results.push_back(RunFlatPC(scenario));
  {
    const FindRelationRun run =
        RunFindRelation(Method::kPC, scenario, scenario.candidates);
    results.push_back(AblationResult{"P+C", run.pairs_per_second,
                                     run.stats.UndeterminedPercent()});
  }

  PrintTitle("Intermediate-filter ablation (OLE-OPE, find relation)");
  std::printf("%-10s %16s %16s\n", "filter", "pairs/s", "undetermined");
  for (const AblationResult& r : results) {
    std::printf("%-10s %16.0f %15.1f%%\n", r.name, r.pairs_per_second,
                r.undetermined_percent);
  }
}

}  // namespace
}  // namespace stj::bench

int main(int argc, char** argv) {
  stj::bench::Run(stj::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
