// Ablation (DESIGN.md §5): sensitivity of the P+C method to the raster grid
// resolution. Finer grids make P/C lists sharper (fewer undetermined pairs)
// but cost more to build and store. The paper fixes 2^16 for its full-size
// datasets; this sweep shows where the trade-off sits for the scaled-down
// suite and why grid order 12 is the default here.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/timer.h"

namespace stj::bench {
namespace {

void Run(const BenchOptions& options) {
  // Build the scenario once without approximations; re-raster per order.
  ScenarioOptions base = options.ToScenarioOptions();
  base.build_april = false;
  ScenarioData scenario = BuildScenario("OLE-OPE", base);
  std::printf("[build] OLE-OPE: %zu x %zu objects, %zu candidates\n",
              scenario.r.objects.size(), scenario.s.objects.size(),
              scenario.candidates.size());

  PrintTitle("Grid-order ablation (OLE-OPE, P+C)");
  std::printf("%-6s %14s %14s %14s %14s %14s\n", "order", "build (s)",
              "P+C size (MB)", "undetermined", "throughput", "vs ST2");

  // ST2 reference is grid-independent: measure once.
  scenario.r_april.assign(scenario.r.objects.size(), AprilApproximation{});
  scenario.s_april.assign(scenario.s.objects.size(), AprilApproximation{});
  const FindRelationRun st2 =
      RunFindRelation(Method::kST2, scenario, scenario.candidates);

  for (uint32_t order = 8; order <= 14; order += 2) {
    Timer timer;
    const RasterGrid grid(scenario.dataspace, order);
    scenario.r_april = BuildAprilApproximations(scenario.r, grid);
    scenario.s_april = BuildAprilApproximations(scenario.s, grid);
    const double build_seconds = timer.ElapsedSeconds();
    const double mb = static_cast<double>(scenario.AprilByteSize(true) +
                                          scenario.AprilByteSize(false)) /
                      1e6;
    const FindRelationRun run =
        RunFindRelation(Method::kPC, scenario, scenario.candidates);
    std::printf("%-6u %14.2f %14.2f %13.1f%% %14.0f %13.1fx\n", order,
                build_seconds, mb, run.stats.UndeterminedPercent(),
                run.pairs_per_second,
                st2.pairs_per_second > 0
                    ? run.pairs_per_second / st2.pairs_per_second
                    : 0.0);
    std::fflush(stdout);
  }
  std::printf("(ST2 reference: %.0f pairs/s, 100%% refined)\n",
              st2.pairs_per_second);
}

}  // namespace
}  // namespace stj::bench

int main(int argc, char** argv) {
  stj::bench::Run(stj::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
