// Extension harness (no paper counterpart): APRIL preprocessing throughput.
//
// Measures the cost of building the P/C interval approximations for a blob
// dataset (TW — independent water-area blobs, the heaviest rasterisation
// load per object) two ways:
//
//   per_cell   the oracle path: enumerate every covered cell id, sort, and
//              coalesce (O(cells log cells) per object);
//   run_based  the production path: decompose each covered column run
//              directly into sorted Hilbert interval segments and merge the
//              segment streams (output-sensitive, never materialises cells).
//
// Two stages are reported:
//
//   construct  interval construction alone, single-threaded, over
//              pre-rasterised coverages — this isolates exactly the stage
//              the run-based decomposition replaces, so its speedup is the
//              honest measure of the optimisation (rasterisation cost is
//              identical on both paths and would otherwise dilute it);
//   build      end-to-end BuildAprilApproximations (rasterise + construct),
//              per mode across the --threads sweep (default: powers of two
//              up to hardware_concurrency) through the chunked parallel
//              builder.
//
// Every measured configuration is cross-checked byte-identical to the
// serial run-based build via the arena store before its row is accepted, so
// a reported speedup can never come from diverging output.
//
// With --json=PATH one record per (stage, mode, threads) is written —
// tools/bench_json.sh runs this harness at grid order 16 to produce the
// april_build records of BENCH_PR3.json.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/raster/april_store.h"
#include "src/raster/rasterizer.h"
#include "src/util/timer.h"

namespace stj::bench {
namespace {

constexpr int kRepetitions = 3;  // best-of to damp scheduler noise

std::vector<unsigned> DefaultSweep() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  std::vector<unsigned> sweep;
  for (unsigned t = 1; t < hw; t *= 2) sweep.push_back(t);
  sweep.push_back(hw);
  return sweep;
}

void Run(const BenchOptions& options) {
  const char* dataset_name = "TW";
  std::printf("[build] dataset %s (scale=%.3g, seed=%llu)...\n", dataset_name,
              options.scale, static_cast<unsigned long long>(options.seed));
  std::fflush(stdout);
  const Dataset dataset = BuildDataset(dataset_name, options.scale,
                                       options.seed);
  Box bounds;
  for (const SpatialObject& object : dataset.objects) {
    bounds.Expand(object.geometry.Bounds());
  }
  const RasterGrid grid(bounds, options.grid_order);
  std::printf("[build]   %s: %zu objects (%zu vtx), grid 2^%u\n", dataset_name,
              dataset.objects.size(), dataset.TotalVertices(),
              options.grid_order);
  std::fflush(stdout);

  std::vector<unsigned> sweep = options.threads;
  if (sweep.size() == 1 && sweep[0] == 1) sweep = DefaultSweep();

  JsonReporter reporter(options.json_path);

  // Reference: serial run-based build. Every measured configuration must
  // reproduce this byte for byte (canonical interval form is unique, so the
  // arena stores compare exactly).
  const AprilStore reference = AprilStore::FromApproximations(
      BuildAprilApproximations(dataset, grid, /*num_threads=*/1));
  const uint64_t total_intervals = reference.IntervalByteSize() /
                                   sizeof(CellInterval);

  // ---- Stage 1: interval construction alone over shared coverages.
  PrintTitle("Interval construction (pre-rasterised coverages, 1 thread)");
  std::printf("%-10s %12s %12s %14s %9s\n", "mode", "seconds", "objects/s",
              "intervals/s", "speedup");
  std::vector<RasterCoverage> coverages;
  coverages.reserve(dataset.objects.size());
  {
    const Rasterizer rasterizer(&grid);
    for (const SpatialObject& object : dataset.objects) {
      coverages.push_back(rasterizer.Rasterize(object.geometry));
    }
  }
  double construct_per_cell = 0.0;
  for (const bool per_cell : {true, false}) {
    const char* mode = per_cell ? "per_cell" : "run_based";
    const AprilBuilder builder(&grid, per_cell);
    double best = -1.0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      std::vector<AprilApproximation> april;
      april.reserve(coverages.size());
      Timer timer;
      for (const RasterCoverage& coverage : coverages) {
        april.push_back(per_cell ? builder.FromCoverage(coverage)
                                 : builder.FromCoverageRuns(coverage));
      }
      const double seconds = timer.ElapsedSeconds();
      if (best < 0.0 || seconds < best) best = seconds;
      if (rep == 0 && !(AprilStore::FromApproximations(april) == reference)) {
        std::fprintf(stderr,
                     "FATAL: %s construction diverged from the serial "
                     "run-based reference\n",
                     mode);
        std::exit(1);
      }
    }
    if (per_cell) construct_per_cell = best;
    const double objects_per_sec =
        best > 0 ? static_cast<double>(coverages.size()) / best : 0.0;
    const double intervals_per_sec =
        best > 0 ? static_cast<double>(total_intervals) / best : 0.0;
    std::printf("%-10s %12.4f %12.0f %14.0f %8.2fx\n", mode, best,
                objects_per_sec, intervals_per_sec,
                best > 0 ? construct_per_cell / best : 0.0);
    std::fflush(stdout);
    JsonRecord record;
    record.Set("bench", "april_build")
        .Set("stage", "construct")
        .Set("mode", mode)
        .Set("dataset", dataset_name)
        .Set("threads", 1u)
        .Set("scale", options.scale)
        .Set("grid_order", static_cast<uint64_t>(options.grid_order))
        .Set("seed", options.seed)
        .Set("objects", static_cast<uint64_t>(coverages.size()))
        .Set("intervals", total_intervals)
        .Set("seconds", best)
        .Set("objects_per_sec", objects_per_sec)
        .Set("intervals_per_sec", intervals_per_sec)
        .Set("speedup_vs_per_cell", best > 0 ? construct_per_cell / best : 0.0)
        .Set("hardware_concurrency",
             static_cast<uint64_t>(std::thread::hardware_concurrency()));
    reporter.Add(record);
  }
  coverages.clear();
  coverages.shrink_to_fit();

  // ---- Stage 2: end-to-end build (rasterise + construct) thread sweep.
  PrintTitle("End-to-end APRIL build (rasterise + construct)");
  std::printf("%-10s %-8s %12s %12s %14s %9s\n", "mode", "threads", "seconds",
              "objects/s", "intervals/s", "speedup");
  double build_per_cell_serial = 0.0;
  for (const bool per_cell : {true, false}) {
    const char* mode = per_cell ? "per_cell" : "run_based";
    for (const unsigned threads : sweep) {
      double best = -1.0;
      std::vector<AprilApproximation> april;
      for (int rep = 0; rep < kRepetitions; ++rep) {
        Timer timer;
        april = BuildAprilApproximations(dataset, grid, threads, per_cell);
        const double seconds = timer.ElapsedSeconds();
        if (best < 0.0 || seconds < best) best = seconds;
      }
      if (!(AprilStore::FromApproximations(april) == reference)) {
        std::fprintf(stderr,
                     "FATAL: %s build with %u threads diverged from the "
                     "serial run-based reference\n",
                     mode, threads);
        std::exit(1);
      }
      const double objects_per_sec =
          best > 0 ? static_cast<double>(dataset.objects.size()) / best : 0.0;
      const double intervals_per_sec =
          best > 0 ? static_cast<double>(total_intervals) / best : 0.0;
      if (per_cell && threads == sweep.front()) build_per_cell_serial = best;
      std::printf("%-10s %-8u %12.4f %12.0f %14.0f %8.2fx\n", mode, threads,
                  best, objects_per_sec, intervals_per_sec,
                  best > 0 ? build_per_cell_serial / best : 0.0);
      std::fflush(stdout);
      JsonRecord record;
      record.Set("bench", "april_build")
          .Set("stage", "build")
          .Set("mode", mode)
          .Set("dataset", dataset_name)
          .Set("threads", threads)
          .Set("scale", options.scale)
          .Set("grid_order", static_cast<uint64_t>(options.grid_order))
          .Set("seed", options.seed)
          .Set("objects", static_cast<uint64_t>(dataset.objects.size()))
          .Set("intervals", total_intervals)
          .Set("seconds", best)
          .Set("objects_per_sec", objects_per_sec)
          .Set("intervals_per_sec", intervals_per_sec)
          .Set("speedup_vs_per_cell",
               best > 0 ? build_per_cell_serial / best : 0.0)
          .Set("hardware_concurrency",
               static_cast<uint64_t>(std::thread::hardware_concurrency()));
      reporter.Add(record);
    }
  }

  if (!reporter.Write()) std::exit(1);
}

}  // namespace
}  // namespace stj::bench

int main(int argc, char** argv) {
  stj::bench::Run(stj::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
