// Extension harness (no paper counterpart): end-to-end effect of the staged
// SoA batch executor (batch_executor.h) against the pair-at-a-time driver.
//
// Scenario TC-TZ — the nested counties/zip-codes tessellation — is the
// refinement-heavy workload the executor targets: ~74% of candidate pairs
// survive the P+C filter, every object participates in many pairs, and the
// refinement re-sort (group by r-object, Hilbert within the group) turns the
// per-worker PreparedPolygon caches from mostly-warm to hot. For each thread
// count the harness runs P+C pair-at-a-time (batch_size=1, the oracle path)
// and then sweeps the batch sizes, median-of-N each, reporting end-to-end
// candidate-pair throughput and the speedup against the pair-at-a-time run
// at the same thread count. Every run is verified decision-identical to the
// single-threaded pair-at-a-time reference (relation histogram + refined
// count); a divergence aborts the harness.
//
// With --json=PATH one record per (threads, batch_size) is written;
// tools/bench_json.sh turns them into BENCH_PR8.json at the repo root.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace stj::bench {
namespace {

// Each leg runs kRepetitions times and reports the median-seconds run. On a
// shared (and possibly oversubscribed) host, best-of systematically favours
// whichever leg gets one lucky scheduling window; the median is stable
// against both lucky and unlucky outliers.
constexpr int kRepetitions = 5;

void Run(const BenchOptions& options) {
  const std::string scenario_name = "TC-TZ";
  const ScenarioData scenario = BuildScenarioVerbose(scenario_name, options);
  JsonReporter reporter(options.json_path);

  // --compressed swaps both sides to the blocked-codec store; the filter
  // stage then runs through the per-worker decoded-record LRU.
  CompressedScenarioStores stores;
  if (options.compressed) {
    stores = BuildCompressedStores(scenario);
    std::printf("[build]   compressed stores: R %.1f KiB, S %.1f KiB\n",
                stores.r_cstore.ByteSize() / 1024.0,
                stores.s_cstore.ByteSize() / 1024.0);
  }

  // The sweep always includes the batch_size=1 oracle leg (the speedup
  // denominator); the default sweep covers small to whole-input batches.
  std::vector<size_t> sweep = options.batch_sizes;
  if (sweep.size() == 1 && sweep[0] == 1) {
    sweep = {1, 64, 256, 1024, 4096};
  } else if (sweep.empty() || sweep[0] != 1) {
    sweep.insert(sweep.begin(), 1);
  }

  RunConfig base_config;
  base_config.time_stages = options.time_stages;
  base_config.prepared_cache_bytes = options.prepared_cache_bytes;
  base_config.queue_depth = options.queue_depth;
  if (options.compressed) {
    base_config.r_cstore = &stores.r_cstore;
    base_config.s_cstore = &stores.s_cstore;
  }

  RunConfig reference_config = base_config;
  reference_config.threads = 1;
  reference_config.batch_size = 1;
  const FindRelationRun reference = RunFindRelation(
      Method::kPC, scenario, scenario.candidates, reference_config);

  PrintTitle(std::string("Staged batch executor: end-to-end find-relation "
                         "(P+C") +
             (options.compressed ? ", compressed store)" : ")"));
  std::printf("%-8s %-10s %12s %14s %12s %10s %8s\n", "threads", "batch",
              "seconds", "pairs/s", "batches", "stall-ms", "speedup");

  for (const unsigned threads : options.threads) {
    // Interleave the repetitions across the sweep legs (rep-outer, leg-inner)
    // so every leg samples the same host-load windows: slow drift in
    // background load then shifts all legs together instead of biasing
    // whichever leg happened to run in a quiet period. Each run is checked
    // against the reference decisions, not just the reported median.
    std::vector<std::vector<FindRelationRun>> runs(sweep.size());
    for (int rep = 0; rep < kRepetitions; ++rep) {
      for (size_t leg = 0; leg < sweep.size(); ++leg) {
        RunConfig config = base_config;
        config.threads = threads;
        config.batch_size = sweep[leg];
        FindRelationRun run = RunFindRelation(Method::kPC, scenario,
                                              scenario.candidates, config);
        if (run.relation_histogram != reference.relation_histogram ||
            run.stats.refined != reference.stats.refined) {
          std::fprintf(stderr,
                       "FATAL: %u-thread batch_size=%zu run diverged from "
                       "the pair-at-a-time single-threaded reference\n",
                       threads, sweep[leg]);
          std::exit(1);
        }
        runs[leg].push_back(std::move(run));
      }
    }

    double pair_at_a_time_seconds = 0.0;
    for (size_t leg = 0; leg < sweep.size(); ++leg) {
      const size_t batch_size = sweep[leg];
      std::sort(runs[leg].begin(), runs[leg].end(),
                [](const FindRelationRun& a, const FindRelationRun& b) {
                  return a.seconds < b.seconds;
                });
      const FindRelationRun& median_run = runs[leg][runs[leg].size() / 2];
      const bool identical = true;  // every repetition was checked above
      if (batch_size == 1) pair_at_a_time_seconds = median_run.seconds;
      const double speedup =
          batch_size > 1 && median_run.seconds > 0
              ? pair_at_a_time_seconds / median_run.seconds
              : 1.0;
      std::printf("%-8u %-10zu %12.3f %14.0f %12llu %10.2f %7.2fx\n", threads,
                  batch_size, median_run.seconds, median_run.pairs_per_second,
                  static_cast<unsigned long long>(median_run.stats.batches),
                  1e3 * median_run.stats.queue_stall_seconds, speedup);
      std::fflush(stdout);

      JsonRecord record;
      record.Set("bench", "batch_pipeline")
          .Set("scenario", scenario_name)
          .Set("method", ToString(Method::kPC))
          .Set("store", options.compressed ? "compressed" : "flat")
          .Set("threads", threads)
          .Set("batch_size", static_cast<uint64_t>(batch_size))
          .Set("queue_depth", static_cast<uint64_t>(options.queue_depth))
          .Set("scale", options.scale)
          .Set("grid_order", static_cast<uint64_t>(options.grid_order))
          .Set("seed", options.seed)
          .Set("seconds", median_run.seconds)
          .Set("pairs", static_cast<uint64_t>(scenario.candidates.size()))
          .Set("pairs_per_sec", median_run.pairs_per_second)
          .Set("refined", median_run.stats.refined)
          .Set("undetermined_pct", median_run.stats.UndeterminedPercent())
          .Set("identical", static_cast<uint64_t>(identical ? 1 : 0))
          .Set("speedup_vs_pair_at_a_time", speedup)
          .Set("batches", median_run.stats.batches)
          .Set("batches_enqueued", median_run.stats.batches_enqueued)
          .Set("batches_dequeued", median_run.stats.batches_dequeued)
          .Set("queue_max_depth", median_run.stats.queue_max_depth)
          .Set("queue_stall_seconds", median_run.stats.queue_stall_seconds)
          .Set("prepared_hits", median_run.stats.prepared_hits)
          .Set("prepared_misses", median_run.stats.prepared_misses)
          .Set("decoded_hits", median_run.stats.decoded_hits)
          .Set("decoded_misses", median_run.stats.decoded_misses);
      if (options.time_stages) {
        record.Set("filter_seconds", median_run.stats.filter_seconds)
            .Set("refine_seconds", median_run.stats.refine_seconds);
      }
      reporter.Add(record);
    }
  }

  if (!reporter.Write()) std::exit(1);
}

}  // namespace
}  // namespace stj::bench

int main(int argc, char** argv) {
  stj::bench::Run(stj::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
