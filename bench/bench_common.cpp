#include "bench/bench_common.h"

#include <cstdlib>
#include <cstring>

#include "src/topology/parallel.h"
#include "src/util/timer.h"

namespace stj::bench {

namespace {

std::vector<unsigned> ParseThreadList(const char* arg) {
  std::vector<unsigned> threads;
  while (*arg != '\0') {
    char* end = nullptr;
    const long value = std::strtol(arg, &end, 10);
    if (end == arg || value < 0) {
      std::fprintf(stderr, "bad --threads list near '%s'\n", arg);
      std::exit(1);
    }
    threads.push_back(static_cast<unsigned>(value));
    arg = (*end == ',') ? end + 1 : end;
  }
  if (threads.empty()) threads.push_back(1);
  return threads;
}

std::vector<size_t> ParseBatchList(const char* arg) {
  std::vector<size_t> batches;
  while (*arg != '\0') {
    char* end = nullptr;
    const long long value = std::strtoll(arg, &end, 10);
    if (end == arg || value < 1) {
      std::fprintf(stderr, "bad --batch-size list near '%s'\n", arg);
      std::exit(1);
    }
    batches.push_back(static_cast<size_t>(value));
    arg = (*end == ',') ? end + 1 : end;
  }
  if (batches.empty()) batches.push_back(1);
  return batches;
}

/// Minimal JSON string escaping: the keys and values we emit are bench,
/// scenario, and method names, but stay correct for anything printable.
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

BenchOptions BenchOptions::Parse(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      options.scale = std::atof(arg + 8);
    } else if (std::strncmp(arg, "--grid-order=", 13) == 0) {
      options.grid_order = static_cast<uint32_t>(std::atoi(arg + 13));
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      options.seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      options.threads = ParseThreadList(arg + 10);
    } else if (std::strcmp(arg, "--time-stages") == 0) {
      options.time_stages = true;
    } else if (std::strncmp(arg, "--prepared-cache-mb=", 20) == 0) {
      options.prepared_cache_bytes =
          static_cast<size_t>(std::atoll(arg + 20)) << 20;
    } else if (std::strncmp(arg, "--batch-size=", 13) == 0) {
      options.batch_sizes = ParseBatchList(arg + 13);
    } else if (std::strncmp(arg, "--queue-depth=", 14) == 0) {
      options.queue_depth = static_cast<size_t>(std::atoll(arg + 14));
    } else if (std::strcmp(arg, "--compressed") == 0) {
      options.compressed = true;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      options.json_path = arg + 7;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf(
          "usage: %s [--scale=X] [--grid-order=N] [--seed=S]\n"
          "          [--threads=T[,T2,...]] [--time-stages] [--json=PATH]\n"
          "  --scale       dataset size multiplier (default 1.0)\n"
          "  --grid-order  log2 of raster grid resolution (default 12)\n"
          "  --seed        generator seed (default 7)\n"
          "  --threads     worker threads; a comma list sweeps (0 = all "
          "cores)\n"
          "  --time-stages per-pair stage timers (filter/refine seconds)\n"
          "  --prepared-cache-mb  per-worker prepared-geometry cache budget\n"
          "                in MB (default 32; 0 disables the cache)\n"
          "  --batch-size  staged-executor SoA batch size; a comma list\n"
          "                sweeps (default 1 = pair-at-a-time)\n"
          "  --queue-depth stage-queue capacity in batches (default 8)\n"
          "  --compressed  serve approximations from the blocked-codec\n"
          "                CompressedAprilStore instead of flat vectors\n"
          "  --json        write machine-readable records to PATH\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", arg);
      std::exit(1);
    }
  }
  return options;
}

// Fields are assembled with += rather than operator+ chains: fewer
// temporaries, and the chained operator+(const char*, std::string&&) form
// trips GCC 12's -Wrestrict false positive (GCC PR105329) at -O2.
JsonRecord& JsonRecord::Set(const std::string& key, const std::string& value) {
  std::string field = "\"";
  field += JsonEscape(key);
  field += "\":\"";
  field += JsonEscape(value);
  field += "\"";
  fields_.push_back(std::move(field));
  return *this;
}

JsonRecord& JsonRecord::Set(const std::string& key, const char* value) {
  return Set(key, std::string(value));
}

JsonRecord& JsonRecord::Set(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  std::string field = "\"";
  field += JsonEscape(key);
  field += "\":";
  field += buf;
  fields_.push_back(std::move(field));
  return *this;
}

JsonRecord& JsonRecord::Set(const std::string& key, uint64_t value) {
  std::string field = "\"";
  field += JsonEscape(key);
  field += "\":";
  field += std::to_string(value);
  fields_.push_back(std::move(field));
  return *this;
}

std::string JsonRecord::ToJson() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i != 0) out += ",";
    out += fields_[i];
  }
  out += "}";
  return out;
}

void JsonReporter::Add(const JsonRecord& record) {
  if (!enabled()) return;
  records_.push_back(record.ToJson());
}

bool JsonReporter::Write() const {
  if (!enabled()) return true;
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[json] cannot write %s\n", path_.c_str());
    return false;
  }
  std::fputs("[\n", f);
  for (size_t i = 0; i < records_.size(); ++i) {
    std::fputs("  ", f);
    std::fputs(records_[i].c_str(), f);
    std::fputs(i + 1 < records_.size() ? ",\n" : "\n", f);
  }
  std::fputs("]\n", f);
  const bool ok = std::fclose(f) == 0;
  if (ok) {
    std::fprintf(stderr, "[json] wrote %zu records to %s\n", records_.size(),
                 path_.c_str());
  }
  return ok;
}

ScenarioData BuildScenarioVerbose(const std::string& name,
                                  const BenchOptions& options) {
  std::printf("[build] scenario %s (scale=%.3g, grid=2^%u, seed=%llu)...\n",
              name.c_str(), options.scale, options.grid_order,
              static_cast<unsigned long long>(options.seed));
  std::fflush(stdout);
  Timer timer;
  ScenarioData scenario = BuildScenario(name, options.ToScenarioOptions());
  std::printf(
      "[build]   %s: |R|=%zu (%zu vtx), |S|=%zu (%zu vtx), candidates=%zu "
      "(%.1fs, %.2fs APRIL preprocess)\n",
      name.c_str(), scenario.r.objects.size(), scenario.r.TotalVertices(),
      scenario.s.objects.size(), scenario.s.TotalVertices(),
      scenario.candidates.size(), timer.ElapsedSeconds(),
      scenario.preprocess_seconds);
  std::fflush(stdout);
  return scenario;
}

FindRelationRun RunFindRelation(Method method, const ScenarioData& scenario,
                                const std::vector<CandidatePair>& pairs,
                                bool time_stages, unsigned threads,
                                size_t prepared_cache_bytes) {
  RunConfig config;
  config.time_stages = time_stages;
  config.threads = threads;
  config.prepared_cache_bytes = prepared_cache_bytes;
  return RunFindRelation(method, scenario, pairs, config);
}

FindRelationRun RunFindRelation(Method method, const ScenarioData& scenario,
                                const std::vector<CandidatePair>& pairs,
                                const RunConfig& config) {
  DatasetView r_view = scenario.RView();
  DatasetView s_view = scenario.SView();
  if (config.r_cstore != nullptr && config.s_cstore != nullptr) {
    r_view = DatasetView{&scenario.r.objects, nullptr, nullptr,
                         config.r_cstore};
    s_view = DatasetView{&scenario.s.objects, nullptr, nullptr,
                         config.s_cstore};
  }
  FindRelationRun run;
  run.relation_histogram.assign(de9im::kNumRelations, 0);
  Timer timer;
  if (config.threads == 1 && config.batch_size <= 1) {
    const PipelineOptions pipeline_options{
        .time_stages = config.time_stages,
        .prepared_cache_bytes = config.prepared_cache_bytes,
        .decoded_cache_bytes = config.decoded_cache_bytes};
    Pipeline pipeline(method, r_view, s_view, pipeline_options);
    for (const CandidatePair& pair : pairs) {
      const de9im::Relation rel = pipeline.FindRelation(pair.r_idx, pair.s_idx);
      ++run.relation_histogram[static_cast<size_t>(rel)];
    }
    run.stats = pipeline.Stats();
  } else {
    const JoinOptions join_options{
        .num_threads = config.threads,
        .time_stages = config.time_stages,
        .prepared_cache_bytes = config.prepared_cache_bytes,
        .batch_size = config.batch_size,
        .queue_depth = config.queue_depth,
        .decoded_cache_bytes = config.decoded_cache_bytes};
    const ParallelJoinResult result =
        ParallelFindRelation(method, r_view, s_view, pairs, join_options);
    for (const de9im::Relation rel : result.relations) {
      ++run.relation_histogram[static_cast<size_t>(rel)];
    }
    run.stats = result.stats;
  }
  run.seconds = timer.ElapsedSeconds();
  run.pairs_per_second =
      run.seconds > 0 ? static_cast<double>(pairs.size()) / run.seconds : 0.0;
  return run;
}

CompressedScenarioStores BuildCompressedStores(const ScenarioData& scenario) {
  CompressedScenarioStores stores;
  stores.r_store = AprilStore::FromApproximations(scenario.r_april);
  stores.s_store = AprilStore::FromApproximations(scenario.s_april);
  stores.r_cstore = CompressedAprilStore::FromStore(stores.r_store);
  stores.s_cstore = CompressedAprilStore::FromStore(stores.s_store);
  return stores;
}

double RefinedPerSecond(const FindRelationRun& run) {
  return run.seconds > 0
             ? static_cast<double>(run.stats.refined) / run.seconds
             : 0.0;
}

void SetPreparedStats(JsonRecord* record, const PipelineStats& stats,
                      size_t prepared_cache_bytes, bool time_stages) {
  const uint64_t lookups = stats.prepared_hits + stats.prepared_misses;
  record->Set("prepared_cache_mb",
              static_cast<uint64_t>(prepared_cache_bytes >> 20))
      .Set("prepared_hits", stats.prepared_hits)
      .Set("prepared_misses", stats.prepared_misses)
      .Set("prepared_hit_rate",
           lookups == 0 ? 0.0
                        : static_cast<double>(stats.prepared_hits) /
                              static_cast<double>(lookups));
  if (time_stages) {
    record->Set("prepared_build_seconds", stats.prepared_build_seconds);
  }
}

void PrintTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

const std::vector<Method>& AllMethods() {
  static const std::vector<Method> kMethods = {Method::kST2, Method::kOP2,
                                               Method::kApril, Method::kPC};
  return kMethods;
}

}  // namespace stj::bench
