#include "bench/bench_common.h"

#include <cstdlib>
#include <cstring>

#include "src/util/timer.h"

namespace stj::bench {

BenchOptions BenchOptions::Parse(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      options.scale = std::atof(arg + 8);
    } else if (std::strncmp(arg, "--grid-order=", 13) == 0) {
      options.grid_order = static_cast<uint32_t>(std::atoi(arg + 13));
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      options.seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf(
          "usage: %s [--scale=X] [--grid-order=N] [--seed=S]\n"
          "  --scale       dataset size multiplier (default 1.0)\n"
          "  --grid-order  log2 of raster grid resolution (default 12)\n"
          "  --seed        generator seed (default 7)\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", arg);
      std::exit(1);
    }
  }
  return options;
}

ScenarioData BuildScenarioVerbose(const std::string& name,
                                  const BenchOptions& options) {
  std::printf("[build] scenario %s (scale=%.3g, grid=2^%u, seed=%llu)...\n",
              name.c_str(), options.scale, options.grid_order,
              static_cast<unsigned long long>(options.seed));
  std::fflush(stdout);
  Timer timer;
  ScenarioData scenario = BuildScenario(name, options.ToScenarioOptions());
  std::printf(
      "[build]   %s: |R|=%zu (%zu vtx), |S|=%zu (%zu vtx), candidates=%zu "
      "(%.1fs)\n",
      name.c_str(), scenario.r.objects.size(), scenario.r.TotalVertices(),
      scenario.s.objects.size(), scenario.s.TotalVertices(),
      scenario.candidates.size(), timer.ElapsedSeconds());
  std::fflush(stdout);
  return scenario;
}

FindRelationRun RunFindRelation(Method method, const ScenarioData& scenario,
                                const std::vector<CandidatePair>& pairs,
                                bool time_stages) {
  FindRelationRun run;
  run.relation_histogram.assign(de9im::kNumRelations, 0);
  Pipeline pipeline(method, scenario.RView(), scenario.SView(), time_stages);
  Timer timer;
  for (const CandidatePair& pair : pairs) {
    const de9im::Relation rel = pipeline.FindRelation(pair.r_idx, pair.s_idx);
    ++run.relation_histogram[static_cast<size_t>(rel)];
  }
  run.seconds = timer.ElapsedSeconds();
  run.pairs_per_second =
      run.seconds > 0 ? static_cast<double>(pairs.size()) / run.seconds : 0.0;
  run.stats = pipeline.Stats();
  return run;
}

void PrintTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

const std::vector<Method>& AllMethods() {
  static const std::vector<Method> kMethods = {Method::kST2, Method::kOP2,
                                               Method::kApril, Method::kPC};
  return kMethods;
}

}  // namespace stj::bench
