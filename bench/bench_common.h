#pragma once

// Shared plumbing for the paper-reproduction harnesses: command-line
// options, scenario construction with progress output, table printing, and
// the machine-readable JSON report (--json=PATH) that BENCH_*.json files at
// the repo root are generated from.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/datasets/scenarios.h"
#include "src/topology/pipeline.h"

namespace stj::bench {

/// Options common to all harnesses. Defaults reproduce the scaled-down
/// experiment suite; pass --scale to grow or shrink every dataset.
struct BenchOptions {
  double scale = 1.0;
  uint32_t grid_order = 12;
  uint64_t seed = 7;
  /// Worker threads per run (--threads=N or --threads=N1,N2,...; harnesses
  /// that do not sweep use the first entry). 0 = hardware concurrency.
  std::vector<unsigned> threads = {1};
  /// Enables per-pair stage timers (--time-stages): fills
  /// PipelineStats::filter_seconds / refine_seconds at a small per-pair
  /// overhead, so throughput-focused runs leave it off.
  bool time_stages = false;
  /// Per-worker PreparedPolygon cache budget (--prepared-cache-mb=N, in
  /// megabytes; 0 disables the cache and restores one-shot refinement).
  size_t prepared_cache_bytes = kDefaultPreparedCacheBytes;
  /// SoA batch sizes for the staged executor (--batch-size=N or
  /// --batch-size=N1,N2,...; harnesses that do not sweep use the first
  /// entry). 1 = the pair-at-a-time oracle path.
  std::vector<size_t> batch_sizes = {1};
  /// Stage-queue capacity in batches (--queue-depth=N; ignored by
  /// pair-at-a-time runs).
  size_t queue_depth = 8;
  /// Serve approximations from the blocked-codec CompressedAprilStore
  /// instead of flat vectors (--compressed); harnesses that support it run
  /// their sweep against the compressed storage form.
  bool compressed = false;
  /// When non-empty (--json=PATH), harnesses append records to a
  /// JsonReporter and write them to this path on exit.
  std::string json_path;

  /// Parses the flags above; exits on --help or unknown arguments.
  static BenchOptions Parse(int argc, char** argv);

  unsigned FirstThreads() const { return threads.empty() ? 1u : threads[0]; }
  size_t FirstBatchSize() const {
    return batch_sizes.empty() ? size_t{1} : batch_sizes[0];
  }

  ScenarioOptions ToScenarioOptions() const {
    ScenarioOptions options;
    options.scale = scale;
    options.grid_order = grid_order;
    options.seed = seed;
    return options;
  }
};

/// One flat record of the JSON report: insertion-ordered key/value fields.
/// Values are rendered immediately, so a record is cheap to copy and the
/// reporter is just a list of strings.
class JsonRecord {
 public:
  JsonRecord& Set(const std::string& key, const std::string& value);
  JsonRecord& Set(const std::string& key, const char* value);
  JsonRecord& Set(const std::string& key, double value);
  JsonRecord& Set(const std::string& key, uint64_t value);
  JsonRecord& Set(const std::string& key, unsigned value) {
    return Set(key, static_cast<uint64_t>(value));
  }

  /// The record as a JSON object, e.g. {"bench":"fig7","threads":1}.
  std::string ToJson() const;

 private:
  std::vector<std::string> fields_;  // pre-rendered "key":value
};

/// Collects JsonRecords and writes them as one JSON array. Disabled (every
/// call a no-op) when constructed with an empty path, so harnesses can
/// always call Add/Write unconditionally.
class JsonReporter {
 public:
  explicit JsonReporter(std::string path) : path_(std::move(path)) {}

  bool enabled() const { return !path_.empty(); }
  void Add(const JsonRecord& record);

  /// Writes `[record, record, ...]` to the path; true on success (and when
  /// disabled). Prints the path and record count to stderr when enabled.
  bool Write() const;

 private:
  std::string path_;
  std::vector<std::string> records_;
};

/// Builds a scenario, printing build progress and summary statistics.
ScenarioData BuildScenarioVerbose(const std::string& name,
                                  const BenchOptions& options);

/// Runs find-relation over all candidate pairs with \p method and returns
/// the throughput in pairs/second. Outcome counts land in \p pipeline's
/// stats; the returned relation histogram is indexed by Relation value.
/// With threads != 1 the run goes through ParallelFindRelation (work-
/// stealing over Hilbert-ordered blocks); the relations, histogram, and
/// stat counters are identical to the single-threaded run.
struct FindRelationRun {
  double seconds = 0.0;
  double pairs_per_second = 0.0;
  PipelineStats stats;
  std::vector<uint64_t> relation_histogram;  // size kNumRelations
};
FindRelationRun RunFindRelation(Method method, const ScenarioData& scenario,
                                const std::vector<CandidatePair>& pairs,
                                bool time_stages = false,
                                unsigned threads = 1,
                                size_t prepared_cache_bytes =
                                    kDefaultPreparedCacheBytes);

/// Full-knob configuration for RunFindRelation: the staged-executor batch
/// settings and, optionally, a compressed storage form for either side.
struct RunConfig {
  bool time_stages = false;
  unsigned threads = 1;
  size_t prepared_cache_bytes = kDefaultPreparedCacheBytes;
  /// > 1 routes through the staged batch executor (batch_executor.h); <= 1
  /// is the pair-at-a-time oracle.
  size_t batch_size = 1;
  size_t queue_depth = 8;
  /// Per-worker decoded-record cache budget for compressed inputs.
  size_t decoded_cache_bytes = kDefaultDecodedCacheBytes;
  /// When both are set, the run reads approximations from the compressed
  /// stores instead of the scenario's flat vectors (results identical).
  const CompressedAprilStore* r_cstore = nullptr;
  const CompressedAprilStore* s_cstore = nullptr;
};
FindRelationRun RunFindRelation(Method method, const ScenarioData& scenario,
                                const std::vector<CandidatePair>& pairs,
                                const RunConfig& config);

/// The blocked-codec storage form of a scenario's approximations, for
/// compressed-store bench legs. Keeps the intermediate AprilStores alive —
/// CompressedAprilStore arenas are self-contained, but the flat stores are
/// handy for size reporting.
struct CompressedScenarioStores {
  AprilStore r_store;
  AprilStore s_store;
  CompressedAprilStore r_cstore;
  CompressedAprilStore s_cstore;
};
CompressedScenarioStores BuildCompressedStores(const ScenarioData& scenario);

/// Refined-pair throughput of a run: DE-9IM computations per second. The
/// prepared cache only touches refinement, so this is the metric its
/// speedups are quoted in (candidate-pair throughput dilutes them with
/// filter-decided pairs).
double RefinedPerSecond(const FindRelationRun& run);

/// Adds the prepared-geometry cache telemetry of a run to a JSON record:
/// prepared_cache_mb, prepared_hits, prepared_misses, prepared_hit_rate
/// (0 when no lookups happened), and — when stage timing was on —
/// prepared_build_seconds.
void SetPreparedStats(JsonRecord* record, const PipelineStats& stats,
                      size_t prepared_cache_bytes, bool time_stages);

/// Prints a horizontal rule and a centred title.
void PrintTitle(const std::string& title);

/// All four methods in presentation order.
const std::vector<Method>& AllMethods();

}  // namespace stj::bench
