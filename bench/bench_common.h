#pragma once

// Shared plumbing for the paper-reproduction harnesses: command-line
// options, scenario construction with progress output, and table printing.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/datasets/scenarios.h"
#include "src/topology/pipeline.h"

namespace stj::bench {

/// Options common to all harnesses. Defaults reproduce the scaled-down
/// experiment suite; pass --scale to grow or shrink every dataset.
struct BenchOptions {
  double scale = 1.0;
  uint32_t grid_order = 12;
  uint64_t seed = 7;

  /// Parses --scale=X / --grid-order=N / --seed=S; exits on --help.
  static BenchOptions Parse(int argc, char** argv);

  ScenarioOptions ToScenarioOptions() const {
    ScenarioOptions options;
    options.scale = scale;
    options.grid_order = grid_order;
    options.seed = seed;
    return options;
  }
};

/// Builds a scenario, printing build progress and summary statistics.
ScenarioData BuildScenarioVerbose(const std::string& name,
                                  const BenchOptions& options);

/// Runs find-relation over all candidate pairs with \p method and returns
/// the throughput in pairs/second. Outcome counts land in \p pipeline's
/// stats; the returned relation histogram is indexed by Relation value.
struct FindRelationRun {
  double seconds = 0.0;
  double pairs_per_second = 0.0;
  PipelineStats stats;
  std::vector<uint64_t> relation_histogram;  // size kNumRelations
};
FindRelationRun RunFindRelation(Method method, const ScenarioData& scenario,
                                const std::vector<CandidatePair>& pairs,
                                bool time_stages = false);

/// Prints a horizontal rule and a centred title.
void PrintTitle(const std::string& title);

/// All four methods in presentation order.
const std::vector<Method>& AllMethods();

}  // namespace stj::bench
