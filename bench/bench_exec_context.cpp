// Extension harness (no paper counterpart): cost of the ExecContext
// cancellation layer on the unbounded join path.
//
// Every candidate pair of a cancellable join performs one check-in — a
// relaxed atomic load of the stop flag plus, every
// ExecContext::kDeadlinePollPeriod check-ins, a steady-clock read. This
// harness measures what that costs when the query never trips: method P+C
// on OLE-OPE (mostly filter-decided pairs, so the per-pair work is small
// and the check-in is proportionally at its *worst*), run without an
// ExecContext and with one armed with a far-future deadline and an ample
// memory budget. The two settings alternate repetition by repetition so
// both sample the same host-load windows, and each reports its
// median-seconds run — an overhead gate of a few percent is meaningless if
// slow background-load drift can land on one leg only. Both runs must
// produce identical relations; the acceptance gate in tools/bench_json.sh
// holds the throughput overhead to <= 2%.
//
// With --json=PATH one record per (thread count, exec setting) is written;
// tools/bench_json.sh turns them into BENCH_PR6.json at the repo root.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/topology/parallel.h"
#include "src/util/exec_context.h"
#include "src/util/timer.h"

namespace stj::bench {
namespace {

constexpr int kRepetitions = 7;  // median-of, interleaved across settings

struct ExecRun {
  double seconds = 0.0;
  ParallelJoinResult result;
};

ExecRun RunOnce(const ScenarioData& scenario, unsigned threads,
                ExecContext* exec) {
  JoinOptions options;
  options.num_threads = threads;
  options.exec = exec;
  Timer timer;
  ExecRun run;
  run.result = ParallelFindRelation(Method::kPC, scenario.RView(),
                                    scenario.SView(), scenario.candidates,
                                    options);
  run.seconds = timer.ElapsedSeconds();
  return run;
}

void Run(const BenchOptions& options) {
  const std::string scenario_name = "OLE-OPE";
  const ScenarioData scenario = BuildScenarioVerbose(scenario_name, options);
  JsonReporter reporter(options.json_path);

  PrintTitle("ExecContext check-in overhead: find-relation (P+C)");
  std::printf("%-8s %-6s %12s %14s %14s %10s\n", "threads", "exec", "seconds",
              "pairs/s", "checkins", "overhead");

  for (const unsigned threads : options.threads) {
    // Repetition-outer, setting-inner: the off and on legs alternate so a
    // shift in background load moves both medians together instead of
    // biasing whichever leg ran in the quieter window.
    std::vector<double> leg_seconds[2];
    ExecRun median_runs[2];
    uint64_t leg_checkins[2] = {0, 0};
    for (int rep = 0; rep < kRepetitions; ++rep) {
      for (const bool exec_on : {false, true}) {
        // The bounded run arms a real deadline and budget that never trip,
        // so the hot path includes the periodic clock poll, not just the
        // flag load.
        ExecContext exec;
        if (exec_on) {
          exec.SetDeadlineAfter(std::chrono::hours(24));
          exec.SetMemoryBudget(size_t{1} << 40);
        }
        ExecRun run = RunOnce(scenario, threads, exec_on ? &exec : nullptr);
        if (!run.result.status.ok() || !run.result.partial.Complete()) {
          std::fprintf(stderr, "FATAL: unbounded run tripped (%s)\n",
                       run.result.status.ToString().c_str());
          std::exit(1);
        }
        leg_seconds[exec_on ? 1 : 0].push_back(run.seconds);
        if (exec_on) leg_checkins[1] = run.result.stats.checkins;
        if (rep == 0) {
          median_runs[exec_on ? 1 : 0] = std::move(run);
        } else if (exec_on &&
                   run.result.relations != median_runs[0].result.relations) {
          std::fprintf(stderr,
                       "FATAL: %u-thread exec-on run diverged from exec-off\n",
                       threads);
          std::exit(1);
        }
      }
      if (median_runs[1].result.relations != median_runs[0].result.relations) {
        std::fprintf(stderr,
                     "FATAL: %u-thread exec-on run diverged from exec-off\n",
                     threads);
        std::exit(1);
      }
    }

    double off_seconds = 0.0;
    for (const bool exec_on : {false, true}) {
      std::vector<double>& samples = leg_seconds[exec_on ? 1 : 0];
      std::sort(samples.begin(), samples.end());
      ExecRun best;  // the leg's median-seconds summary
      best.seconds = samples[samples.size() / 2];
      const uint64_t checkins = leg_checkins[exec_on ? 1 : 0];
      if (!exec_on) off_seconds = best.seconds;
      const double pairs_per_sec =
          best.seconds > 0
              ? static_cast<double>(scenario.candidates.size()) / best.seconds
              : 0.0;
      const double overhead_pct =
          exec_on && off_seconds > 0
              ? 100.0 * (best.seconds - off_seconds) / off_seconds
              : 0.0;
      std::printf("%-8u %-6s %12.3f %14.0f %14llu %9.2f%%\n", threads,
                  exec_on ? "on" : "off", best.seconds, pairs_per_sec,
                  static_cast<unsigned long long>(checkins), overhead_pct);
      std::fflush(stdout);

      JsonRecord record;
      record.Set("bench", "exec_context")
          .Set("stage", "find_relation")
          .Set("scenario", scenario_name)
          .Set("method", ToString(Method::kPC))
          .Set("threads", threads)
          .Set("exec", exec_on ? "on" : "off")
          .Set("scale", options.scale)
          .Set("grid_order", static_cast<uint64_t>(options.grid_order))
          .Set("seed", options.seed)
          .Set("seconds", best.seconds)
          .Set("pairs", static_cast<uint64_t>(scenario.candidates.size()))
          .Set("pairs_per_sec", pairs_per_sec)
          .Set("checkins", checkins)
          .Set("overhead_pct", overhead_pct);
      reporter.Add(record);
    }
  }

  if (!reporter.Write()) std::exit(1);
}

}  // namespace
}  // namespace stj::bench

int main(int argc, char** argv) {
  stj::bench::Run(stj::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
