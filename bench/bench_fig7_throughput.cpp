// Reproduces Figure 7: (a) find-relation throughput (pairs/second) of
// ST2 / OP2 / APRIL / P+C on every scenario, and (b) the percentage of
// undetermined pairs (pairs needing DE-9IM refinement) per method.
//
// Expected shape (Sec. 4.2): OP2 ~ ST2 (refinement dominates), APRIL several
// times faster (catches raster-disjoint pairs), P+C fastest — up to an order
// of magnitude over ST2 — with the lowest undetermined share.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace stj::bench {
namespace {

struct ScenarioResult {
  std::string name;
  double throughput[4];
  double undetermined[4];
  double filter_seconds[4];
  double refine_seconds[4];
  std::vector<uint64_t> histogram;  // from the P+C run (all methods agree)
};

void Run(const BenchOptions& options) {
  const unsigned threads = options.FirstThreads();
  JsonReporter reporter(options.json_path);
  std::vector<ScenarioResult> results;
  for (const std::string& name : ScenarioNames()) {
    const ScenarioData scenario = BuildScenarioVerbose(name, options);
    ScenarioResult result;
    result.name = name;
    for (size_t m = 0; m < AllMethods().size(); ++m) {
      const FindRelationRun run =
          RunFindRelation(AllMethods()[m], scenario, scenario.candidates,
                          options.time_stages, threads);
      result.throughput[m] = run.pairs_per_second;
      result.undetermined[m] = run.stats.UndeterminedPercent();
      result.filter_seconds[m] = run.stats.filter_seconds;
      result.refine_seconds[m] = run.stats.refine_seconds;
      if (AllMethods()[m] == Method::kPC) result.histogram = run.relation_histogram;
      std::printf("[run]   %-6s: %12.0f pairs/s, %5.1f%% undetermined\n",
                  ToString(AllMethods()[m]), run.pairs_per_second,
                  run.stats.UndeterminedPercent());
      std::fflush(stdout);
      JsonRecord record;
      record.Set("bench", "fig7")
          .Set("scenario", name)
          .Set("method", ToString(AllMethods()[m]))
          .Set("threads", threads)
          .Set("scale", options.scale)
          .Set("pairs", static_cast<uint64_t>(scenario.candidates.size()))
          .Set("pairs_per_sec", run.pairs_per_second)
          .Set("undetermined_pct", run.stats.UndeterminedPercent());
      if (options.time_stages) {
        record.Set("filter_seconds", run.stats.filter_seconds)
            .Set("refine_seconds", run.stats.refine_seconds);
      }
      reporter.Add(record);
    }
    results.push_back(std::move(result));
  }

  PrintTitle("Figure 7(a): find relation throughput (pairs per second)");
  std::printf("%-10s %12s %12s %12s %12s %18s\n", "scenario", "ST2", "OP2",
              "APRIL", "P+C", "P+C/ST2 speedup");
  for (const ScenarioResult& r : results) {
    std::printf("%-10s %12.0f %12.0f %12.0f %12.0f %17.1fx\n", r.name.c_str(),
                r.throughput[0], r.throughput[1], r.throughput[2],
                r.throughput[3],
                r.throughput[0] > 0 ? r.throughput[3] / r.throughput[0] : 0.0);
  }

  PrintTitle("Figure 7(b): % of undetermined pairs (refined with DE-9IM)");
  std::printf("%-10s %12s %12s %12s %12s\n", "scenario", "ST2", "OP2", "APRIL",
              "P+C");
  for (const ScenarioResult& r : results) {
    std::printf("%-10s %11.1f%% %11.1f%% %11.1f%% %11.1f%%\n", r.name.c_str(),
                r.undetermined[0], r.undetermined[1], r.undetermined[2],
                r.undetermined[3]);
  }

  if (options.time_stages) {
    // The per-method stage split (filter vs refinement CPU seconds) — only
    // meaningful when --time-stages armed the per-pair timers; before the
    // time_stages plumbing, parallel runs silently reported zeros here.
    PrintTitle("Stage seconds per scenario (filter / refine)");
    std::printf("%-10s %17s %17s %17s %17s\n", "scenario", "ST2", "OP2",
                "APRIL", "P+C");
    for (const ScenarioResult& r : results) {
      std::printf("%-10s", r.name.c_str());
      for (size_t m = 0; m < AllMethods().size(); ++m) {
        char cell[32];
        std::snprintf(cell, sizeof cell, "%.3f/%.3f", r.filter_seconds[m],
                      r.refine_seconds[m]);
        std::printf(" %17s", cell);
      }
      std::printf("\n");
    }
  }

  PrintTitle("Relation mix per scenario (diagnostic, not in the paper)");
  std::printf("%-10s", "scenario");
  for (int rel = 0; rel < de9im::kNumRelations; ++rel) {
    std::printf(" %11s", ToString(static_cast<de9im::Relation>(rel)));
  }
  std::printf("\n");
  for (const ScenarioResult& r : results) {
    std::printf("%-10s", r.name.c_str());
    for (const uint64_t count : r.histogram) {
      std::printf(" %11llu", static_cast<unsigned long long>(count));
    }
    std::printf("\n");
  }

  reporter.Write();
}

}  // namespace
}  // namespace stj::bench

int main(int argc, char** argv) {
  stj::bench::Run(stj::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
