// Reproduces Table 4 and Figure 8: the OLE-OPE candidate pairs are split
// into 10 equi-count complexity levels (by summed vertex count); per level we
// report (a) the share of pairs P+C leaves undetermined and (b) the time
// spent in OP2 refinement vs P+C's intermediate filter and refinement.
//
// Expected shape (Sec. 4.3): P+C's undetermined share falls sharply with
// complexity; OP2's refinement cost grows superlinearly while P+C's total
// stays nearly flat.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/datasets/workload.h"
#include "src/util/stats.h"

namespace stj::bench {
namespace {

constexpr size_t kLevels = 10;

void Run(const BenchOptions& options) {
  const ScenarioData scenario = BuildScenarioVerbose("OLE-OPE", options);
  const ComplexityLevels levels = GroupByComplexity(scenario, kLevels);

  PrintTitle("Table 4: OLE-OPE pairs grouped by complexity level");
  std::printf("%-16s %-22s %12s\n", "complexity level", "sum of vertices",
              "pair count");
  for (size_t level = 0; level < levels.ranges.size(); ++level) {
    char range[64];
    std::snprintf(range, sizeof range, "[%llu, %llu]",
                  static_cast<unsigned long long>(levels.ranges[level].first),
                  static_cast<unsigned long long>(levels.ranges[level].second));
    std::printf("%-16zu %-22s %12s\n", level + 1, range,
                FormatWithCommas(levels.pairs[level].size()).c_str());
  }

  // The same per-level P+C sweep also runs against the blocked-codec
  // CompressedAprilStore: the intermediate filter then decodes records
  // (through the decoded-record LRU) instead of reading flat vectors, which
  // is the storage form the paper's batch-processing scenario assumes.
  const CompressedScenarioStores stores = BuildCompressedStores(scenario);

  struct LevelResult {
    double pc_undetermined;
    double op2_refine_seconds;
    double pc_filter_seconds;
    double pc_refine_seconds;
    double pc_compressed_filter_seconds;
    uint64_t decoded_hits;
    uint64_t decoded_misses;
  };
  std::vector<LevelResult> per_level;
  for (size_t level = 0; level < levels.pairs.size(); ++level) {
    const FindRelationRun pc = RunFindRelation(
        Method::kPC, scenario, levels.pairs[level], /*time_stages=*/true);
    const FindRelationRun op2 = RunFindRelation(
        Method::kOP2, scenario, levels.pairs[level], /*time_stages=*/true);
    RunConfig compressed_config;
    compressed_config.time_stages = true;
    compressed_config.r_cstore = &stores.r_cstore;
    compressed_config.s_cstore = &stores.s_cstore;
    const FindRelationRun pc_compressed = RunFindRelation(
        Method::kPC, scenario, levels.pairs[level], compressed_config);
    if (pc_compressed.relation_histogram != pc.relation_histogram) {
      std::fprintf(stderr,
                   "FATAL: level %zu compressed-store run diverged from the "
                   "flat-store decisions\n",
                   level + 1);
      std::exit(1);
    }
    per_level.push_back(LevelResult{pc.stats.UndeterminedPercent(),
                                    op2.stats.refine_seconds,
                                    pc.stats.filter_seconds,
                                    pc.stats.refine_seconds,
                                    pc_compressed.stats.filter_seconds,
                                    pc_compressed.stats.decoded_hits,
                                    pc_compressed.stats.decoded_misses});
    std::printf("[run] level %2zu: P+C undetermined %5.1f%%, OP2-REF %.3fs, "
                "P+C-IF %.3fs, P+C-REF %.3fs, P+C-IF(compressed) %.3fs\n",
                level + 1, per_level.back().pc_undetermined,
                per_level.back().op2_refine_seconds,
                per_level.back().pc_filter_seconds,
                per_level.back().pc_refine_seconds,
                per_level.back().pc_compressed_filter_seconds);
    std::fflush(stdout);
  }

  PrintTitle("Figure 8(a): % of undetermined pairs (P+C) per complexity level");
  std::printf("%-8s %16s\n", "level", "undetermined");
  for (size_t level = 0; level < per_level.size(); ++level) {
    std::printf("%-8zu %15.1f%%\n", level + 1, per_level[level].pc_undetermined);
  }

  PrintTitle("Figure 8(b): stage cost (seconds) per complexity level");
  std::printf("%-8s %12s %12s %12s %12s\n", "level", "OP2-REF", "P+C-IF",
              "P+C-REF", "P+C total");
  for (size_t level = 0; level < per_level.size(); ++level) {
    const LevelResult& r = per_level[level];
    std::printf("%-8zu %12.4f %12.4f %12.4f %12.4f\n", level + 1,
                r.op2_refine_seconds, r.pc_filter_seconds, r.pc_refine_seconds,
                r.pc_filter_seconds + r.pc_refine_seconds);
  }

  PrintTitle(
      "Figure 8(b) cont.: P+C intermediate filter on the compressed store");
  std::printf("%-8s %14s %18s %14s\n", "level", "flat IF", "compressed IF",
              "decoded h/m");
  for (size_t level = 0; level < per_level.size(); ++level) {
    const LevelResult& r = per_level[level];
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%llu/%llu",
                  static_cast<unsigned long long>(r.decoded_hits),
                  static_cast<unsigned long long>(r.decoded_misses));
    std::printf("%-8zu %13.4fs %17.4fs %14s\n", level + 1,
                r.pc_filter_seconds, r.pc_compressed_filter_seconds, ratio);
  }

  // The data-access reduction the paper reports alongside Fig. 8: the share
  // of unique objects P+C never needs exact geometry for.
  std::vector<bool> r_touched(scenario.r.objects.size(), false);
  std::vector<bool> s_touched(scenario.s.objects.size(), false);
  std::vector<bool> r_needed(scenario.r.objects.size(), false);
  std::vector<bool> s_needed(scenario.s.objects.size(), false);
  Pipeline probe(Method::kPC, scenario.RView(), scenario.SView());
  for (const CandidatePair& pair : scenario.candidates) {
    r_touched[pair.r_idx] = true;
    s_touched[pair.s_idx] = true;
    const uint64_t refined_before = probe.Stats().refined;
    probe.FindRelation(pair.r_idx, pair.s_idx);
    if (probe.Stats().refined > refined_before) {
      r_needed[pair.r_idx] = true;
      s_needed[pair.s_idx] = true;
    }
  }
  auto count = [](const std::vector<bool>& v) {
    size_t n = 0;
    for (const bool b : v) n += b ? 1 : 0;
    return n;
  };
  const size_t touched = count(r_touched) + count(s_touched);
  const size_t needed = count(r_needed) + count(s_needed);
  PrintTitle("Data access (Sec. 4.3 text)");
  std::printf(
      "P+C loads exact geometry for %zu of %zu unique candidate objects "
      "(%.1f%%; OP2 loads 100%%)\n",
      needed, touched,
      touched > 0 ? 100.0 * static_cast<double>(needed) /
                        static_cast<double>(touched)
                  : 0.0);
}

}  // namespace
}  // namespace stj::bench

int main(int argc, char** argv) {
  stj::bench::Run(stj::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
