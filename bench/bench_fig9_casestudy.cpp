// Reproduces Figure 9: a level-10-complexity lake-inside-park pair whose
// relation the P+C intermediate filter decides outright, avoiding the
// DE-9IM computation the other three methods must perform. The paper
// reports a ~50x per-pair speedup for P+C on this pair.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/datasets/blob.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace stj::bench {
namespace {

void Run(const BenchOptions& options) {
  // Construct the pair: a large complex park and a complex lake nested well
  // inside it (mirroring the paper's 2240/2616-vertex pair).
  Rng rng(options.seed ^ 0xF19);
  BlobParams park_params;
  park_params.center = Point{50, 50};
  park_params.mean_radius = 30.0;
  park_params.vertices = 2616;
  park_params.irregularity = 0.45;
  const Polygon park = MakeBlob(&rng, park_params);

  BlobParams lake_params;
  lake_params.center = Point{50, 50};
  lake_params.mean_radius = 9.0;  // well inside the park's inner radius
  lake_params.vertices = 2240;
  lake_params.irregularity = 0.4;
  const Polygon lake = MakeBlob(&rng, lake_params);

  std::vector<SpatialObject> r_objects = {SpatialObject{0, lake}};
  std::vector<SpatialObject> s_objects = {SpatialObject{0, park}};
  Box space;
  space.Expand(lake.Bounds());
  space.Expand(park.Bounds());
  const RasterGrid grid(space, options.grid_order);
  const AprilBuilder builder(&grid);
  std::vector<AprilApproximation> r_april = {builder.Build(lake)};
  std::vector<AprilApproximation> s_april = {builder.Build(park)};
  const DatasetView r_view{&r_objects, &r_april};
  const DatasetView s_view{&s_objects, &s_april};

  PrintTitle("Figure 9(a): pair statistics");
  std::printf("%-14s %12s %12s\n", "", "Lake", "Park");
  std::printf("%-14s %12zu %12zu\n", "Vertices", lake.VertexCount(),
              park.VertexCount());
  std::printf("%-14s %12.4f %12.4f\n", "MBR area",
              lake.Bounds().Area() / space.Area(),
              park.Bounds().Area() / space.Area());
  std::printf("%-14s %12zu %12zu\n", "C-intervals",
              r_april[0].conservative.Size(), s_april[0].conservative.Size());
  std::printf("%-14s %12zu %12zu\n", "P-intervals",
              r_april[0].progressive.Size(), s_april[0].progressive.Size());

  PrintTitle("Per-method cost for this single pair");
  const int kRepeats = 200;
  double pc_time = 0.0;
  double st2_time = 0.0;
  std::printf("%-8s %14s %16s %12s\n", "method", "relation", "time/pair (us)",
              "decided by");
  for (const Method method : AllMethods()) {
    Pipeline pipeline(method, r_view, s_view);
    de9im::Relation rel = de9im::Relation::kDisjoint;
    Timer timer;
    for (int i = 0; i < kRepeats; ++i) rel = pipeline.FindRelation(0, 0);
    const double us = timer.ElapsedSeconds() / kRepeats * 1e6;
    const bool refined = pipeline.Stats().refined > 0;
    std::printf("%-8s %14s %16.2f %12s\n", ToString(method),
                ToString(rel), us, refined ? "refinement" : "filter");
    if (method == Method::kPC) pc_time = us;
    if (method == Method::kST2) st2_time = us;
  }
  std::printf("\nP+C speedup over ST2 on this pair: %.1fx\n",
              pc_time > 0 ? st2_time / pc_time : 0.0);
}

}  // namespace
}  // namespace stj::bench

int main(int argc, char** argv) {
  stj::bench::Run(stj::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
