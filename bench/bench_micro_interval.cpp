// Micro-benchmarks for the interval-list merge-joins — the primitive the
// P+C intermediate filters are built from — plus the PR7 JSON harness.
//
// Two modes:
//  - default: google-benchmark micro suite. The classic per-relation
//    benchmarks run at the active SIMD level; a registered sweep additionally
//    runs all four relations over dense / sparse / adversarial list shapes at
//    every available kernel level (scalar vs AVX2/NEON), so a regression in
//    either table is visible in isolation.
//  - --json=PATH: the BENCH_PR7.json harness. Builds the dense TC-TZ
//    tessellation scenario and times the full intermediate-filter stage
//    (FindRelationFilter over all MBR-join candidates) in three
//    configurations — scalar kernels on flat lists, SIMD kernels on flat
//    lists, SIMD kernels fused into the blocked codec — at 1 and 4 threads,
//    verifying that all configurations produce identical decisions and
//    reporting the scalar-vs-SIMD speedup and the codec compression ratio.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/interval/interval_algebra.h"
#include "src/interval/simd.h"
#include "src/raster/april_compressed.h"
#include "src/raster/april_store.h"
#include "src/topology/find_relation.h"
#include "src/util/cpuid.h"
#include "src/util/parallel_for.h"
#include "src/util/rng.h"

namespace stj {
namespace {

IntervalList MakeList(Rng* rng, size_t intervals, CellId gap, CellId span) {
  IntervalList list;
  CellId cursor = rng->NextBounded(gap);
  for (size_t i = 0; i < intervals; ++i) {
    const CellId length = 1 + rng->NextBounded(span);
    list.Append(cursor, cursor + length);
    cursor += length + 1 + rng->NextBounded(gap);
  }
  return list;
}

void BM_ListsOverlap(benchmark::State& state) {
  Rng rng(1);
  const size_t n = static_cast<size_t>(state.range(0));
  const IntervalList x = MakeList(&rng, n, 8, 16);
  const IntervalList y = MakeList(&rng, n, 8, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ListsOverlap(x, y));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_ListsOverlap)->Range(8, 64 << 10)->Complexity(benchmark::oN);

void BM_ListsOverlapDisjointLists(benchmark::State& state) {
  // Worst case for overlap: interleaved lists that never intersect force a
  // full merge.
  const size_t n = static_cast<size_t>(state.range(0));
  IntervalList x;
  IntervalList y;
  for (size_t i = 0; i < n; ++i) {
    x.Append(4 * i, 4 * i + 1);
    y.Append(4 * i + 2, 4 * i + 3);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ListsOverlap(x, y));
  }
}
BENCHMARK(BM_ListsOverlapDisjointLists)->Range(8, 64 << 10);

void BM_ListsOverlapDisjointRanges(benchmark::State& state) {
  // Best case for overlap: the lists' Hilbert cell ranges do not intersect,
  // so the range quick-reject answers in O(1) regardless of list length.
  Rng rng(11);
  const size_t n = static_cast<size_t>(state.range(0));
  const IntervalList x = MakeList(&rng, n, 8, 16);
  IntervalList y;
  CellId cursor = x.BackEnd() + 64;
  for (size_t i = 0; i < n; ++i) {
    y.Append(cursor, cursor + 4);
    cursor += 8;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ListsOverlap(x, y));
  }
}
BENCHMARK(BM_ListsOverlapDisjointRanges)->Range(8, 64 << 10);

void BM_ListInside(benchmark::State& state) {
  Rng rng(2);
  const size_t n = static_cast<size_t>(state.range(0));
  const IntervalList y = MakeList(&rng, n, 4, 64);
  // x: sub-intervals of y, guaranteeing the positive (full-scan) path.
  IntervalList x;
  for (size_t i = 0; i < y.Size(); i += 2) {
    if (y[i].Length() >= 2) x.Append(y[i].begin, y[i].begin + 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ListInside(x, y));
  }
}
BENCHMARK(BM_ListInside)->Range(8, 64 << 10);

void BM_ListInsideOutsideRange(benchmark::State& state) {
  // x's last cell lies beyond y's range: the endpoint pre-check refutes
  // containment without scanning either list.
  Rng rng(12);
  const size_t n = static_cast<size_t>(state.range(0));
  const IntervalList y = MakeList(&rng, n, 4, 64);
  IntervalList x;
  for (size_t i = 0; i < y.Size(); i += 2) {
    if (y[i].Length() >= 2) x.Append(y[i].begin, y[i].begin + 1);
  }
  x.Append(y.BackEnd() + 8, y.BackEnd() + 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ListInside(x, y));
  }
}
BENCHMARK(BM_ListInsideOutsideRange)->Range(8, 64 << 10);

void BM_ListsMatch(benchmark::State& state) {
  Rng rng(3);
  const size_t n = static_cast<size_t>(state.range(0));
  const IntervalList x = MakeList(&rng, n, 8, 16);
  const IntervalList y = x;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ListsMatch(x, y));
  }
}
BENCHMARK(BM_ListsMatch)->Range(8, 64 << 10);

void BM_ListsMatchEndpointMismatch(benchmark::State& state) {
  // Identical lists except for the very last cell: the size and endpoint
  // pre-checks answer in O(1) instead of scanning to the final interval.
  Rng rng(13);
  const size_t n = static_cast<size_t>(state.range(0));
  const IntervalList x = MakeList(&rng, n, 8, 16);
  IntervalList y;
  for (size_t i = 0; i < x.Size(); ++i) {
    const CellId extend = (i + 1 == x.Size()) ? 1 : 0;
    y.Append(x[i].begin, x[i].end + extend);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ListsMatch(x, y));
  }
}
BENCHMARK(BM_ListsMatchEndpointMismatch)->Range(8, 64 << 10);

void BM_ListsCommonCells(benchmark::State& state) {
  Rng rng(4);
  const size_t n = static_cast<size_t>(state.range(0));
  const IntervalList x = MakeList(&rng, n, 4, 32);
  const IntervalList y = MakeList(&rng, n, 4, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ListsCommonCells(x, y));
  }
}
BENCHMARK(BM_ListsCommonCells)->Range(8, 16 << 10);

void BM_ListsCommonCellsDisjointRanges(benchmark::State& state) {
  // Disjoint Hilbert ranges: the quick-reject returns 0 common cells in
  // O(1) regardless of list length.
  Rng rng(14);
  const size_t n = static_cast<size_t>(state.range(0));
  const IntervalList x = MakeList(&rng, n, 4, 32);
  IntervalList y;
  CellId cursor = x.BackEnd() + 64;
  for (size_t i = 0; i < n; ++i) {
    y.Append(cursor, cursor + 4);
    cursor += 8;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ListsCommonCells(x, y));
  }
}
BENCHMARK(BM_ListsCommonCellsDisjointRanges)->Range(8, 16 << 10);

// ---- relation x shape x kernel-level sweep ------------------------------

enum class RelationOp { kOverlap, kInside, kMatch, kCommonCells };
enum class ListShape { kDense, kSparse, kManyTinyVsHuge, kHeavyOverlap };

struct ListPair {
  IntervalList x;
  IntervalList y;
};

/// Builds an (x, y) pair of the given shape whose evaluation reaches the
/// kernel merge loop of \p op (pre-checks must not answer in O(1)).
ListPair MakeShapePair(RelationOp op, ListShape shape, size_t n) {
  Rng rng(static_cast<uint64_t>(op) * 101 + static_cast<uint64_t>(shape) + 1);
  ListPair pair;
  switch (shape) {
    case ListShape::kDense:
      pair.x = MakeList(&rng, n, 4, 24);
      pair.y = MakeList(&rng, n, 4, 24);
      break;
    case ListShape::kSparse:
      pair.x = MakeList(&rng, n, 512, 4);
      pair.y = MakeList(&rng, n, 512, 4);
      break;
    case ListShape::kManyTinyVsHuge:
      // x: n single-cell intervals; y: a few huge intervals spanning them.
      for (size_t i = 0; i < n; ++i) pair.x.Append(8 * i, 8 * i + 1);
      for (size_t i = 0; i < n; i += 256) {
        pair.y.Append(8 * i + 1, 8 * (i + 255) + 7);
      }
      break;
    case ListShape::kHeavyOverlap:
      // Same grid, half-offset: every interval partially overlaps one of
      // the other list's.
      for (size_t i = 0; i < n; ++i) {
        pair.x.Append(8 * i, 8 * i + 5);
        pair.y.Append(8 * i + 3, 8 * i + 7);
      }
      break;
  }
  if (op == RelationOp::kInside) {
    // Positive containment: x becomes sub-intervals of y.
    IntervalList sub;
    for (size_t i = 0; i < pair.y.Size(); i += 2) {
      if (pair.y[i].Length() >= 2) sub.Append(pair.y[i].begin,
                                              pair.y[i].begin + 1);
    }
    pair.x = std::move(sub);
  } else if (op == RelationOp::kMatch) {
    pair.y = pair.x;
  }
  return pair;
}

const char* ToString(RelationOp op) {
  switch (op) {
    case RelationOp::kOverlap: return "overlap";
    case RelationOp::kInside: return "inside";
    case RelationOp::kMatch: return "match";
    case RelationOp::kCommonCells: return "common_cells";
  }
  return "?";
}

const char* ToString(ListShape shape) {
  switch (shape) {
    case ListShape::kDense: return "dense";
    case ListShape::kSparse: return "sparse";
    case ListShape::kManyTinyVsHuge: return "many_tiny_vs_huge";
    case ListShape::kHeavyOverlap: return "heavy_overlap";
  }
  return "?";
}

void BM_RelationShapeLevel(benchmark::State& state, RelationOp op,
                           ListShape shape, SimdLevel level) {
  if (!simd::ForceLevel(level)) {
    state.SkipWithError("kernel level unavailable");
    return;
  }
  const size_t n = static_cast<size_t>(state.range(0));
  const ListPair pair = MakeShapePair(op, shape, n);
  for (auto _ : state) {
    switch (op) {
      case RelationOp::kOverlap:
        benchmark::DoNotOptimize(ListsOverlap(pair.x, pair.y));
        break;
      case RelationOp::kInside:
        benchmark::DoNotOptimize(ListInside(pair.x, pair.y));
        break;
      case RelationOp::kMatch:
        benchmark::DoNotOptimize(ListsMatch(pair.x, pair.y));
        break;
      case RelationOp::kCommonCells:
        benchmark::DoNotOptimize(ListsCommonCells(pair.x, pair.y));
        break;
    }
  }
  simd::ForceLevel(DetectSimdLevel());
}

void RegisterSweepBenchmarks() {
  for (const SimdLevel level : {SimdLevel::kScalar, SimdLevel::kAvx2,
                                SimdLevel::kNeon}) {
    if (simd::KernelsFor(level) == nullptr) continue;
    for (const RelationOp op :
         {RelationOp::kOverlap, RelationOp::kInside, RelationOp::kMatch,
          RelationOp::kCommonCells}) {
      for (const ListShape shape :
           {ListShape::kDense, ListShape::kSparse,
            ListShape::kManyTinyVsHuge, ListShape::kHeavyOverlap}) {
        const std::string name = std::string("BM_Interval/") + ToString(op) +
                                 "/" + ToString(shape) + "/" +
                                 ToString(level);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [op, shape, level](benchmark::State& state) {
              BM_RelationShapeLevel(state, op, shape, level);
            })
            ->Range(1 << 8, 64 << 10);
      }
    }
  }
}

// ---- BENCH_PR7.json harness ---------------------------------------------

/// A FilterDecision packed into one word for cross-configuration equality.
uint32_t EncodeDecision(const FilterDecision& d) {
  return (d.definite ? 1u : 0u) | (static_cast<uint32_t>(d.stage) << 1) |
         (static_cast<uint32_t>(d.relation) << 3) |
         (static_cast<uint32_t>(d.candidates.Bits()) << 8);
}

struct HarnessData {
  ScenarioData scenario;
  std::vector<Box> r_mbrs;
  std::vector<Box> s_mbrs;
  AprilStore r_store;
  AprilStore s_store;
  CompressedAprilStore r_cstore;
  CompressedAprilStore s_cstore;
};

/// One timed pass of the intermediate-filter stage over every candidate.
/// Decisions land index-aligned in \p decisions regardless of threading.
double TimedPass(const HarnessData& data, bool compressed, unsigned threads,
                 std::vector<uint32_t>* decisions) {
  const std::vector<CandidatePair>& pairs = data.scenario.candidates;
  const auto start = std::chrono::steady_clock::now();
  internal::RunChunks(threads, pairs.size(),
            [&](unsigned, size_t begin, size_t end) {
              for (size_t i = begin; i < end; ++i) {
                const CandidatePair& p = pairs[i];
                FilterDecision d;
                if (compressed) {
                  d = FindRelationFilter(data.r_mbrs[p.r_idx],
                                         data.r_cstore.View(p.r_idx),
                                         data.s_mbrs[p.s_idx],
                                         data.s_cstore.View(p.s_idx));
                } else {
                  d = FindRelationFilter(data.r_mbrs[p.r_idx],
                                         data.r_store.View(p.r_idx),
                                         data.s_mbrs[p.s_idx],
                                         data.s_store.View(p.s_idx));
                }
                (*decisions)[i] = EncodeDecision(d);
              }
            });
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Best-of-N pass time; N grows until ~0.6 s of total measurement.
double BestPassSeconds(const HarnessData& data, bool compressed,
                       unsigned threads, std::vector<uint32_t>* decisions) {
  double best = 1e30;
  double total = 0.0;
  int passes = 0;
  while (passes < 3 || total < 0.6) {
    const double s = TimedPass(data, compressed, threads, decisions);
    if (s < best) best = s;
    total += s;
    ++passes;
  }
  return best;
}

int RunJsonHarness(const bench::BenchOptions& options) {
  using bench::JsonRecord;
  const SimdLevel best_level = DetectSimdLevel();
  if (best_level == SimdLevel::kScalar) {
    std::fprintf(stderr,
                 "bench_micro_interval: no SIMD kernel available on this "
                 "CPU/build; speedup records would be vacuous\n");
  }

  HarnessData data;
  data.scenario = bench::BuildScenarioVerbose("TC-TZ", options);
  data.r_mbrs = data.scenario.r.Mbrs();
  data.s_mbrs = data.scenario.s.Mbrs();
  data.r_store = AprilStore::FromApproximations(data.scenario.r_april);
  data.s_store = AprilStore::FromApproximations(data.scenario.s_april);
  data.r_cstore = CompressedAprilStore::FromStore(data.r_store);
  data.s_cstore = CompressedAprilStore::FromStore(data.s_store);

  const size_t flat_bytes =
      data.r_store.IntervalByteSize() + data.s_store.IntervalByteSize();
  const size_t blocked_bytes =
      data.r_cstore.PayloadByteSize() + data.s_cstore.PayloadByteSize();

  bench::JsonReporter reporter(options.json_path);
  reporter.Add(JsonRecord()
                   .Set("bench", "interval_simd")
                   .Set("stage", "codec")
                   .Set("scenario", data.scenario.name)
                   .Set("grid_order", options.grid_order)
                   .Set("flat_bytes", static_cast<uint64_t>(flat_bytes))
                   .Set("blocked_bytes", static_cast<uint64_t>(blocked_bytes))
                   .Set("compression_ratio",
                        static_cast<double>(flat_bytes) /
                            static_cast<double>(blocked_bytes)));

  struct Mode {
    const char* name;
    SimdLevel level;
    bool compressed;
  };
  const Mode modes[] = {
      {"scalar", SimdLevel::kScalar, false},
      {"simd", best_level, false},
      {"simd_compressed", best_level, true},
  };
  const std::vector<unsigned> threads_sweep =
      options.threads.size() > 1 ? options.threads
                                 : std::vector<unsigned>{1, 4};

  const size_t num_pairs = data.scenario.candidates.size();
  std::vector<uint32_t> scalar_decisions(num_pairs);
  std::vector<uint32_t> decisions(num_pairs);
  for (const unsigned threads : threads_sweep) {
    double scalar_pps = 0.0;
    for (const Mode& mode : modes) {
      if (!simd::ForceLevel(mode.level)) continue;
      std::vector<uint32_t>* out =
          std::strcmp(mode.name, "scalar") == 0 ? &scalar_decisions
                                                : &decisions;
      const double best = BestPassSeconds(data, mode.compressed, threads, out);
      const double pps = static_cast<double>(num_pairs) / best;
      const bool identical = *out == scalar_decisions;
      if (std::strcmp(mode.name, "scalar") == 0) scalar_pps = pps;
      std::printf("  %-16s %u thread(s): %10.0f pairs/s  (%.2fx scalar%s)\n",
                  mode.name, threads, pps,
                  scalar_pps > 0 ? pps / scalar_pps : 0.0,
                  identical ? "" : ", DECISIONS DIFFER");
      reporter.Add(
          JsonRecord()
              .Set("bench", "interval_simd")
              .Set("stage", "find_relation_filter")
              .Set("scenario", data.scenario.name)
              .Set("mode", mode.name)
              .Set("simd_level", ToString(simd::ActiveLevel()))
              .Set("threads", threads)
              .Set("pairs", static_cast<uint64_t>(num_pairs))
              .Set("seconds", best)
              .Set("pairs_per_sec", pps)
              .Set("speedup_vs_scalar",
                   scalar_pps > 0 ? pps / scalar_pps : 0.0)
              .Set("identical", static_cast<uint64_t>(identical ? 1 : 0)));
    }
  }
  simd::ForceLevel(best_level);
  return reporter.Write() ? 0 : 1;
}

}  // namespace
}  // namespace stj

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      return stj::RunJsonHarness(stj::bench::BenchOptions::Parse(argc, argv));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  stj::RegisterSweepBenchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
