// Micro-benchmarks for the interval-list merge-joins — the primitive the
// P+C intermediate filters are built from. All four relations must be
// linear in the list lengths.

#include <benchmark/benchmark.h>

#include "src/interval/interval_algebra.h"
#include "src/util/rng.h"

namespace stj {
namespace {

IntervalList MakeList(Rng* rng, size_t intervals, CellId gap, CellId span) {
  IntervalList list;
  CellId cursor = rng->NextBounded(gap);
  for (size_t i = 0; i < intervals; ++i) {
    const CellId length = 1 + rng->NextBounded(span);
    list.Append(cursor, cursor + length);
    cursor += length + 1 + rng->NextBounded(gap);
  }
  return list;
}

void BM_ListsOverlap(benchmark::State& state) {
  Rng rng(1);
  const size_t n = static_cast<size_t>(state.range(0));
  const IntervalList x = MakeList(&rng, n, 8, 16);
  const IntervalList y = MakeList(&rng, n, 8, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ListsOverlap(x, y));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_ListsOverlap)->Range(8, 64 << 10)->Complexity(benchmark::oN);

void BM_ListsOverlapDisjointLists(benchmark::State& state) {
  // Worst case for overlap: interleaved lists that never intersect force a
  // full merge.
  const size_t n = static_cast<size_t>(state.range(0));
  IntervalList x;
  IntervalList y;
  for (size_t i = 0; i < n; ++i) {
    x.Append(4 * i, 4 * i + 1);
    y.Append(4 * i + 2, 4 * i + 3);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ListsOverlap(x, y));
  }
}
BENCHMARK(BM_ListsOverlapDisjointLists)->Range(8, 64 << 10);

void BM_ListsOverlapDisjointRanges(benchmark::State& state) {
  // Best case for overlap: the lists' Hilbert cell ranges do not intersect,
  // so the range quick-reject answers in O(1) regardless of list length.
  Rng rng(11);
  const size_t n = static_cast<size_t>(state.range(0));
  const IntervalList x = MakeList(&rng, n, 8, 16);
  IntervalList y;
  CellId cursor = x.BackEnd() + 64;
  for (size_t i = 0; i < n; ++i) {
    y.Append(cursor, cursor + 4);
    cursor += 8;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ListsOverlap(x, y));
  }
}
BENCHMARK(BM_ListsOverlapDisjointRanges)->Range(8, 64 << 10);

void BM_ListInside(benchmark::State& state) {
  Rng rng(2);
  const size_t n = static_cast<size_t>(state.range(0));
  const IntervalList y = MakeList(&rng, n, 4, 64);
  // x: sub-intervals of y, guaranteeing the positive (full-scan) path.
  IntervalList x;
  for (size_t i = 0; i < y.Size(); i += 2) {
    if (y[i].Length() >= 2) x.Append(y[i].begin, y[i].begin + 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ListInside(x, y));
  }
}
BENCHMARK(BM_ListInside)->Range(8, 64 << 10);

void BM_ListInsideOutsideRange(benchmark::State& state) {
  // x's last cell lies beyond y's range: the endpoint pre-check refutes
  // containment without scanning either list.
  Rng rng(12);
  const size_t n = static_cast<size_t>(state.range(0));
  const IntervalList y = MakeList(&rng, n, 4, 64);
  IntervalList x;
  for (size_t i = 0; i < y.Size(); i += 2) {
    if (y[i].Length() >= 2) x.Append(y[i].begin, y[i].begin + 1);
  }
  x.Append(y.BackEnd() + 8, y.BackEnd() + 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ListInside(x, y));
  }
}
BENCHMARK(BM_ListInsideOutsideRange)->Range(8, 64 << 10);

void BM_ListsMatch(benchmark::State& state) {
  Rng rng(3);
  const size_t n = static_cast<size_t>(state.range(0));
  const IntervalList x = MakeList(&rng, n, 8, 16);
  const IntervalList y = x;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ListsMatch(x, y));
  }
}
BENCHMARK(BM_ListsMatch)->Range(8, 64 << 10);

void BM_ListsMatchEndpointMismatch(benchmark::State& state) {
  // Identical lists except for the very last cell: the size and endpoint
  // pre-checks answer in O(1) instead of scanning to the final interval.
  Rng rng(13);
  const size_t n = static_cast<size_t>(state.range(0));
  const IntervalList x = MakeList(&rng, n, 8, 16);
  IntervalList y;
  for (size_t i = 0; i < x.Size(); ++i) {
    const CellId extend = (i + 1 == x.Size()) ? 1 : 0;
    y.Append(x[i].begin, x[i].end + extend);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ListsMatch(x, y));
  }
}
BENCHMARK(BM_ListsMatchEndpointMismatch)->Range(8, 64 << 10);

void BM_ListsCommonCells(benchmark::State& state) {
  Rng rng(4);
  const size_t n = static_cast<size_t>(state.range(0));
  const IntervalList x = MakeList(&rng, n, 4, 32);
  const IntervalList y = MakeList(&rng, n, 4, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ListsCommonCells(x, y));
  }
}
BENCHMARK(BM_ListsCommonCells)->Range(8, 16 << 10);

void BM_ListsCommonCellsDisjointRanges(benchmark::State& state) {
  // Disjoint Hilbert ranges: the quick-reject returns 0 common cells in
  // O(1) regardless of list length.
  Rng rng(14);
  const size_t n = static_cast<size_t>(state.range(0));
  const IntervalList x = MakeList(&rng, n, 4, 32);
  IntervalList y;
  CellId cursor = x.BackEnd() + 64;
  for (size_t i = 0; i < n; ++i) {
    y.Append(cursor, cursor + 4);
    cursor += 8;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ListsCommonCells(x, y));
  }
}
BENCHMARK(BM_ListsCommonCellsDisjointRanges)->Range(8, 16 << 10);

}  // namespace
}  // namespace stj
