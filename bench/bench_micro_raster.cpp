// Micro-benchmarks for the raster substrate: Hilbert curve evaluation and
// APRIL construction cost (the once-per-object preprocessing), plus the
// Hilbert-vs-row-major interval count ablation from DESIGN.md.

#include <benchmark/benchmark.h>

#include "src/datasets/blob.h"
#include "src/raster/april.h"
#include "src/util/rng.h"

namespace stj {
namespace {

void BM_HilbertXYToD(benchmark::State& state) {
  uint32_t x = 12345;
  uint32_t y = 54321;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HilbertXYToD(16, x, y));
    x = (x * 2654435761u) >> 16;
    y = (y * 2246822519u) >> 16;
  }
}
BENCHMARK(BM_HilbertXYToD);

void BM_AprilBuild(benchmark::State& state) {
  Rng rng(21);
  const size_t vertices = static_cast<size_t>(state.range(0));
  BlobParams params;
  params.center = Point{50, 50};
  params.mean_radius = 10.0;
  params.vertices = vertices;
  const Polygon blob = MakeBlob(&rng, params);
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{100, 100}), 12);
  const AprilBuilder builder(&grid);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.Build(blob));
  }
}
BENCHMARK(BM_AprilBuild)->RangeMultiplier(4)->Range(16, 16384);

void BM_AprilBuildByGridOrder(benchmark::State& state) {
  Rng rng(23);
  BlobParams params;
  params.center = Point{50, 50};
  params.mean_radius = 10.0;
  params.vertices = 512;
  const Polygon blob = MakeBlob(&rng, params);
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{100, 100}),
                        static_cast<uint32_t>(state.range(0)));
  const AprilBuilder builder(&grid);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.Build(blob));
  }
}
BENCHMARK(BM_AprilBuildByGridOrder)->DenseRange(8, 14, 2);

// Ablation: Hilbert vs row-major cell enumeration. Reports the interval
// count ratio as a counter (lower interval counts = cheaper merge-joins).
void BM_HilbertVsRowMajorIntervals(benchmark::State& state) {
  Rng rng(25);
  BlobParams params;
  params.center = Point{50, 50};
  params.mean_radius = 20.0;
  params.vertices = 256;
  const Polygon blob = MakeBlob(&rng, params);
  const RasterGrid grid(Box::Of(Point{0, 0}, Point{100, 100}), 10);
  const Rasterizer rasterizer(&grid);
  const RasterCoverage coverage = rasterizer.Rasterize(blob);

  size_t hilbert_intervals = 0;
  size_t rowmajor_intervals = 0;
  for (auto _ : state) {
    std::vector<CellId> hilbert_cells;
    std::vector<CellId> rowmajor_cells;
    for (size_t row = 0; row < coverage.partial_by_row.size(); ++row) {
      const uint32_t cy = coverage.y0 + static_cast<uint32_t>(row);
      auto add = [&](uint32_t cx) {
        hilbert_cells.push_back(grid.CellIdOf(cx, cy));
        rowmajor_cells.push_back(
            static_cast<CellId>(cy) * grid.CellsPerSide() + cx);
      };
      for (const uint32_t cx : coverage.partial_by_row[row]) add(cx);
      for (const auto& [first, last] : coverage.full_runs_by_row[row]) {
        for (uint32_t cx = first; cx <= last; ++cx) add(cx);
      }
    }
    const IntervalList hilbert = IntervalList::FromCells(hilbert_cells);
    const IntervalList rowmajor = IntervalList::FromCells(rowmajor_cells);
    hilbert_intervals = hilbert.Size();
    rowmajor_intervals = rowmajor.Size();
    benchmark::DoNotOptimize(hilbert);
    benchmark::DoNotOptimize(rowmajor);
  }
  state.counters["hilbert_intervals"] =
      static_cast<double>(hilbert_intervals);
  state.counters["rowmajor_intervals"] =
      static_cast<double>(rowmajor_intervals);
}
BENCHMARK(BM_HilbertVsRowMajorIntervals);

}  // namespace
}  // namespace stj
