// Micro-benchmarks for the DE-9IM relate engine: per-pair refinement cost as
// a function of polygon complexity. This is the superlinear cost curve that
// motivates the paper's intermediate filter (Fig. 8(b)), plus the contrast
// with the P+C filter cost on the same pairs.

#include <benchmark/benchmark.h>

#include <vector>

#include "src/datasets/blob.h"
#include "src/de9im/relate_engine.h"
#include "src/geometry/prepared_polygon.h"
#include "src/raster/april.h"
#include "src/topology/find_relation.h"
#include "src/util/rng.h"

namespace stj {
namespace {

Polygon Blob(Rng* rng, Point center, double radius, size_t vertices) {
  BlobParams params;
  params.center = center;
  params.mean_radius = radius;
  params.vertices = vertices;
  params.irregularity = 0.4;
  return MakeBlob(rng, params);
}

void BM_RelateOverlappingBlobs(benchmark::State& state) {
  Rng rng(11);
  const size_t vertices = static_cast<size_t>(state.range(0));
  const Polygon a = Blob(&rng, Point{50, 50}, 20.0, vertices);
  const Polygon b = Blob(&rng, Point{62, 50}, 20.0, vertices);
  for (auto _ : state) {
    benchmark::DoNotOptimize(de9im::RelateMatrix(a, b));
  }
  state.SetComplexityN(static_cast<int64_t>(vertices));
}
BENCHMARK(BM_RelateOverlappingBlobs)->RangeMultiplier(4)->Range(16, 16384)
    ->Complexity(benchmark::oNLogN);

void BM_RelateNestedBlobs(benchmark::State& state) {
  Rng rng(13);
  const size_t vertices = static_cast<size_t>(state.range(0));
  const Polygon outer = Blob(&rng, Point{50, 50}, 30.0, vertices);
  const Polygon inner = Blob(&rng, Point{50, 50}, 8.0, vertices);
  for (auto _ : state) {
    benchmark::DoNotOptimize(de9im::RelateMatrix(inner, outer));
  }
}
BENCHMARK(BM_RelateNestedBlobs)->RangeMultiplier(4)->Range(16, 16384);

void BM_PCFilterSamePairs(benchmark::State& state) {
  // The filter-side cost on the nested configuration above: linear in the
  // interval list lengths, orders of magnitude below refinement.
  Rng rng(13);
  const size_t vertices = static_cast<size_t>(state.range(0));
  const Polygon outer = Blob(&rng, Point{50, 50}, 30.0, vertices);
  const Polygon inner = Blob(&rng, Point{50, 50}, 8.0, vertices);
  Box space;
  space.Expand(outer.Bounds());
  space.Expand(inner.Bounds());
  const RasterGrid grid(space, 12);
  const AprilBuilder builder(&grid);
  const AprilApproximation inner_april = builder.Build(inner);
  const AprilApproximation outer_april = builder.Build(outer);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindRelationFilter(
        inner.Bounds(), inner_april, outer.Bounds(), outer_april));
  }
}
BENCHMARK(BM_PCFilterSamePairs)->RangeMultiplier(4)->Range(16, 16384);

void BM_RelatePreparedSinglePair(benchmark::State& state) {
  // The overlapping-blobs pair of BM_RelateOverlappingBlobs, but with both
  // sides prepared and warmed outside the loop: the per-pair cost once all
  // index construction is amortised away. The gap to the cold benchmark is
  // the bound on what the pipeline's prepared cache can save per pair.
  Rng rng(11);
  const size_t vertices = static_cast<size_t>(state.range(0));
  const Polygon a = Blob(&rng, Point{50, 50}, 20.0, vertices);
  const Polygon b = Blob(&rng, Point{62, 50}, 20.0, vertices);
  const PreparedPolygon pa(a);
  const PreparedPolygon pb(b);
  pa.Warm();
  pb.Warm();
  for (auto _ : state) {
    benchmark::DoNotOptimize(de9im::RelateEngine::Relate(pa, pb));
  }
  state.SetComplexityN(static_cast<int64_t>(vertices));
}
BENCHMARK(BM_RelatePreparedSinglePair)->RangeMultiplier(4)->Range(16, 16384)
    ->Complexity(benchmark::oNLogN);

void BM_PreparedBuildOnly(benchmark::State& state) {
  // The cost the cache saves: constructing and warming one side's prepared
  // indexes (locator, edge array, edge slab index) from scratch.
  Rng rng(11);
  const size_t vertices = static_cast<size_t>(state.range(0));
  const Polygon a = Blob(&rng, Point{50, 50}, 20.0, vertices);
  for (auto _ : state) {
    PreparedPolygon prepared(a);
    prepared.Warm();
    benchmark::DoNotOptimize(&prepared.EdgeIndex());
  }
  state.SetComplexityN(static_cast<int64_t>(vertices));
}
BENCHMARK(BM_PreparedBuildOnly)->RangeMultiplier(4)->Range(16, 16384)
    ->Complexity(benchmark::oNLogN);

void BM_RepeatedObjectColdRelate(benchmark::State& state) {
  // One pivot object refined against 8 partners, rebuilding the pivot's
  // indexes for every pair — the pipeline's access pattern without the
  // prepared cache (tessellations put every cell in many candidate pairs).
  Rng rng(19);
  const size_t vertices = static_cast<size_t>(state.range(0));
  const Polygon pivot = Blob(&rng, Point{50, 50}, 20.0, vertices);
  std::vector<Polygon> partners;
  for (int i = 0; i < 8; ++i) {
    partners.push_back(
        Blob(&rng, Point{50 + 3.0 * (i - 4), 50}, 18.0, vertices));
  }
  for (auto _ : state) {
    for (const Polygon& partner : partners) {
      benchmark::DoNotOptimize(de9im::RelateMatrix(pivot, partner));
    }
  }
  state.SetComplexityN(static_cast<int64_t>(vertices));
}
BENCHMARK(BM_RepeatedObjectColdRelate)->RangeMultiplier(4)->Range(64, 4096);

void BM_RepeatedObjectPreparedRelate(benchmark::State& state) {
  // The same pairs with every object prepared once up front — what the
  // pipeline's cache achieves at a 100% hit rate.
  Rng rng(19);
  const size_t vertices = static_cast<size_t>(state.range(0));
  const Polygon pivot = Blob(&rng, Point{50, 50}, 20.0, vertices);
  std::vector<Polygon> partners;
  for (int i = 0; i < 8; ++i) {
    partners.push_back(
        Blob(&rng, Point{50 + 3.0 * (i - 4), 50}, 18.0, vertices));
  }
  const PreparedPolygon prepared_pivot(pivot);
  prepared_pivot.Warm();
  std::vector<PreparedPolygon> prepared_partners;
  for (const Polygon& partner : partners) {
    prepared_partners.emplace_back(partner);
    prepared_partners.back().Warm();
  }
  for (auto _ : state) {
    for (const PreparedPolygon& partner : prepared_partners) {
      benchmark::DoNotOptimize(
          de9im::RelateEngine::Relate(prepared_pivot, partner));
    }
  }
  state.SetComplexityN(static_cast<int64_t>(vertices));
}
BENCHMARK(BM_RepeatedObjectPreparedRelate)->RangeMultiplier(4)->Range(64, 4096);

void BM_RelateSharedBoundary(benchmark::State& state) {
  // Tessellation-style shared boundaries stress the collinear-overlap path
  // of the boundary arrangement.
  Rng rng(17);
  const size_t vertices = static_cast<size_t>(state.range(0));
  const Polygon a = Blob(&rng, Point{50, 50}, 20.0, vertices);
  const Polygon b = FillHoles(a);  // equal outer boundary
  for (auto _ : state) {
    benchmark::DoNotOptimize(de9im::RelateMatrix(a, b));
  }
}
BENCHMARK(BM_RelateSharedBoundary)->RangeMultiplier(4)->Range(16, 4096);

}  // namespace
}  // namespace stj
