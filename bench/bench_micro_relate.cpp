// Micro-benchmarks for the DE-9IM relate engine: per-pair refinement cost as
// a function of polygon complexity. This is the superlinear cost curve that
// motivates the paper's intermediate filter (Fig. 8(b)), plus the contrast
// with the P+C filter cost on the same pairs.

#include <benchmark/benchmark.h>

#include "src/datasets/blob.h"
#include "src/de9im/relate_engine.h"
#include "src/raster/april.h"
#include "src/topology/find_relation.h"
#include "src/util/rng.h"

namespace stj {
namespace {

Polygon Blob(Rng* rng, Point center, double radius, size_t vertices) {
  BlobParams params;
  params.center = center;
  params.mean_radius = radius;
  params.vertices = vertices;
  params.irregularity = 0.4;
  return MakeBlob(rng, params);
}

void BM_RelateOverlappingBlobs(benchmark::State& state) {
  Rng rng(11);
  const size_t vertices = static_cast<size_t>(state.range(0));
  const Polygon a = Blob(&rng, Point{50, 50}, 20.0, vertices);
  const Polygon b = Blob(&rng, Point{62, 50}, 20.0, vertices);
  for (auto _ : state) {
    benchmark::DoNotOptimize(de9im::RelateMatrix(a, b));
  }
  state.SetComplexityN(static_cast<int64_t>(vertices));
}
BENCHMARK(BM_RelateOverlappingBlobs)->RangeMultiplier(4)->Range(16, 16384)
    ->Complexity(benchmark::oNLogN);

void BM_RelateNestedBlobs(benchmark::State& state) {
  Rng rng(13);
  const size_t vertices = static_cast<size_t>(state.range(0));
  const Polygon outer = Blob(&rng, Point{50, 50}, 30.0, vertices);
  const Polygon inner = Blob(&rng, Point{50, 50}, 8.0, vertices);
  for (auto _ : state) {
    benchmark::DoNotOptimize(de9im::RelateMatrix(inner, outer));
  }
}
BENCHMARK(BM_RelateNestedBlobs)->RangeMultiplier(4)->Range(16, 16384);

void BM_PCFilterSamePairs(benchmark::State& state) {
  // The filter-side cost on the nested configuration above: linear in the
  // interval list lengths, orders of magnitude below refinement.
  Rng rng(13);
  const size_t vertices = static_cast<size_t>(state.range(0));
  const Polygon outer = Blob(&rng, Point{50, 50}, 30.0, vertices);
  const Polygon inner = Blob(&rng, Point{50, 50}, 8.0, vertices);
  Box space;
  space.Expand(outer.Bounds());
  space.Expand(inner.Bounds());
  const RasterGrid grid(space, 12);
  const AprilBuilder builder(&grid);
  const AprilApproximation inner_april = builder.Build(inner);
  const AprilApproximation outer_april = builder.Build(outer);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindRelationFilter(
        inner.Bounds(), inner_april, outer.Bounds(), outer_april));
  }
}
BENCHMARK(BM_PCFilterSamePairs)->RangeMultiplier(4)->Range(16, 16384);

void BM_RelateSharedBoundary(benchmark::State& state) {
  // Tessellation-style shared boundaries stress the collinear-overlap path
  // of the boundary arrangement.
  Rng rng(17);
  const size_t vertices = static_cast<size_t>(state.range(0));
  const Polygon a = Blob(&rng, Point{50, 50}, 20.0, vertices);
  const Polygon b = FillHoles(a);  // equal outer boundary
  for (auto _ : state) {
    benchmark::DoNotOptimize(de9im::RelateMatrix(a, b));
  }
}
BENCHMARK(BM_RelateSharedBoundary)->RangeMultiplier(4)->Range(16, 4096);

}  // namespace
}  // namespace stj
