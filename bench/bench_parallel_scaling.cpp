// Extension harness (no paper counterpart): thread-scaling of the two hot
// stages around the paper's P+C filter on the OLE-OPE scenario.
//
//   1. MBR filter join (MbrJoin): CSR tile layout, parallel distribute +
//      sweep, dynamic tile scheduling. Throughput = candidate pairs emitted
//      per second; every run is verified set-equal to the single-threaded
//      result.
//   2. Find-relation refinement (ParallelFindRelation, method P+C):
//      work-stealing over Hilbert-ordered pair blocks. Throughput =
//      candidate pairs answered per second; every run is verified
//      relation-identical to the single-threaded run.
//
// Default sweep: powers of two up to hardware_concurrency (always including
// 1 and hardware_concurrency itself); override with --threads=1,2,4,8.
// With --json=PATH, one record per (stage, thread-count) is written —
// tools/bench_json.sh merges these with the bench_april_build records to
// produce BENCH_PR3.json at the repo root.

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/topology/parallel.h"
#include "src/util/timer.h"

namespace stj::bench {
namespace {

constexpr int kRepetitions = 3;  // best-of to damp scheduler noise

std::vector<unsigned> DefaultSweep() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  std::vector<unsigned> sweep;
  for (unsigned t = 1; t < hw; t *= 2) sweep.push_back(t);
  sweep.push_back(hw);
  return sweep;
}

bool SameCandidateSet(std::vector<CandidatePair> a,
                      std::vector<CandidatePair> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

void Run(const BenchOptions& options) {
  const std::string scenario_name = "OLE-OPE";
  const ScenarioData scenario = BuildScenarioVerbose(scenario_name, options);
  JsonReporter reporter(options.json_path);

  // A user-provided --threads list overrides the default power-of-two sweep
  // (the BenchOptions default is the single entry {1}).
  std::vector<unsigned> sweep = options.threads;
  if (sweep.size() == 1 && sweep[0] == 1) sweep = DefaultSweep();

  const std::vector<Box> r_mbrs = scenario.r.Mbrs();
  const std::vector<Box> s_mbrs = scenario.s.Mbrs();

  auto base_record = [&](const char* stage, unsigned threads) {
    JsonRecord record;
    record.Set("bench", "parallel_scaling")
        .Set("stage", stage)
        .Set("scenario", scenario_name)
        .Set("threads", threads)
        .Set("scale", options.scale)
        .Set("grid_order", static_cast<uint64_t>(options.grid_order))
        .Set("seed", options.seed)
        .Set("preprocess_seconds", scenario.preprocess_seconds)
        .Set("hardware_concurrency",
             static_cast<uint64_t>(std::thread::hardware_concurrency()));
    return record;
  };

  PrintTitle("MBR filter join (MbrJoin) thread scaling");
  std::printf("%-8s %12s %14s %10s %8s\n", "threads", "seconds", "cand/s",
              "cands", "speedup");
  const std::vector<CandidatePair> filter_reference =
      MbrJoin::Join(r_mbrs, s_mbrs);
  double filter_base = 0.0;
  for (const unsigned threads : sweep) {
    MbrJoin::Options join_options;
    join_options.num_threads = threads;
    double best = -1.0;
    std::vector<CandidatePair> result;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      Timer timer;
      result = MbrJoin::Join(r_mbrs, s_mbrs, join_options);
      const double seconds = timer.ElapsedSeconds();
      if (best < 0.0 || seconds < best) best = seconds;
    }
    if (!SameCandidateSet(result, filter_reference)) {
      std::fprintf(stderr,
                   "FATAL: %u-thread MbrJoin diverged from single-threaded "
                   "candidate set\n",
                   threads);
      std::exit(1);
    }
    const double per_second =
        best > 0 ? static_cast<double>(result.size()) / best : 0.0;
    if (threads == sweep.front()) filter_base = best;
    std::printf("%-8u %12.4f %14.0f %10zu %7.2fx\n", threads, best, per_second,
                result.size(), best > 0 ? filter_base / best : 0.0);
    std::fflush(stdout);
    JsonRecord record = base_record("mbr_filter", threads);
    record.Set("method", "grid-sweep")
        .Set("seconds", best)
        .Set("pairs_per_sec", per_second)
        .Set("pairs", static_cast<uint64_t>(result.size()));
    reporter.Add(record);
  }

  PrintTitle("Find-relation (P+C) thread scaling");
  std::printf("%-8s %12s %14s %14s %8s\n", "threads", "seconds", "pairs/s",
              "undetermined", "speedup");
  const FindRelationRun reference = RunFindRelation(
      Method::kPC, scenario, scenario.candidates, /*time_stages=*/false,
      /*threads=*/1, options.prepared_cache_bytes);
  double refine_base = 0.0;
  for (const unsigned threads : sweep) {
    FindRelationRun best_run;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      FindRelationRun run =
          RunFindRelation(Method::kPC, scenario, scenario.candidates,
                          options.time_stages, threads,
                          options.prepared_cache_bytes);
      if (best_run.seconds == 0.0 || run.seconds < best_run.seconds) {
        best_run = run;
      }
    }
    if (best_run.relation_histogram != reference.relation_histogram ||
        best_run.stats.refined != reference.stats.refined) {
      std::fprintf(stderr,
                   "FATAL: %u-thread find-relation diverged from the "
                   "single-threaded run\n",
                   threads);
      std::exit(1);
    }
    if (threads == sweep.front()) refine_base = best_run.seconds;
    std::printf("%-8u %12.3f %14.0f %13.1f%% %7.2fx\n", threads,
                best_run.seconds, best_run.pairs_per_second,
                best_run.stats.UndeterminedPercent(),
                best_run.seconds > 0 ? refine_base / best_run.seconds : 0.0);
    std::fflush(stdout);
    JsonRecord record = base_record("find_relation", threads);
    record.Set("method", ToString(Method::kPC))
        .Set("seconds", best_run.seconds)
        .Set("pairs_per_sec", best_run.pairs_per_second)
        .Set("pairs", static_cast<uint64_t>(scenario.candidates.size()))
        .Set("undetermined_pct", best_run.stats.UndeterminedPercent())
        .Set("refined_per_sec", RefinedPerSecond(best_run));
    SetPreparedStats(&record, best_run.stats, options.prepared_cache_bytes,
                     options.time_stages);
    if (options.time_stages) {
      record.Set("filter_seconds", best_run.stats.filter_seconds)
          .Set("refine_seconds", best_run.stats.refine_seconds);
    }
    reporter.Add(record);
  }

  if (!reporter.Write()) std::exit(1);
}

}  // namespace
}  // namespace stj::bench

int main(int argc, char** argv) {
  stj::bench::Run(stj::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
