// Extension harness (no paper counterpart): effect of the prepared-geometry
// cache on find-relation refinement throughput.
//
// Scenario TC-TZ — the nested counties/zip-codes tessellation — is the
// cache's target workload: every fine cell participates in candidate pairs
// with its coarse parent and all of its neighbours, so each object is
// refined many times and the per-pair index rebuild the cache removes
// dominates the uncached refinement cost. For each thread count the harness
// runs method P+C with the cache off (budget 0, the pre-cache behaviour) and
// on (default budget), best-of-N, and reports refined-pairs/s — the DE-9IM
// computations per second, the stage the cache accelerates — plus the
// on/off speedup. Each (threads, cache) combination runs against both
// approximation storage forms — flat AprilStore vectors and the blocked-
// codec CompressedAprilStore — so the cache's effect is measured on the
// compressed input path too, not just at the micro-kernel level. Every run
// is verified relation-identical to an uncached single-threaded flat
// reference.
//
// With --json=PATH one record per (thread count, cache setting, store) is
// written; tools/bench_json.sh turns them into BENCH_PR4.json at the repo
// root.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace stj::bench {
namespace {

constexpr int kRepetitions = 3;  // best-of to damp scheduler noise

void Run(const BenchOptions& options) {
  const std::string scenario_name = "TC-TZ";
  const ScenarioData scenario = BuildScenarioVerbose(scenario_name, options);
  JsonReporter reporter(options.json_path);

  const FindRelationRun reference = RunFindRelation(
      Method::kPC, scenario, scenario.candidates, /*time_stages=*/false,
      /*threads=*/1, /*prepared_cache_bytes=*/0);

  const CompressedScenarioStores stores = BuildCompressedStores(scenario);

  PrintTitle("Prepared-geometry cache: find-relation refinement (P+C)");
  std::printf("%-8s %-11s %-6s %12s %14s %14s %10s %8s\n", "threads", "store",
              "cache", "seconds", "pairs/s", "refined/s", "hit-rate",
              "speedup");

  for (const unsigned threads : options.threads) {
    for (const bool compressed : {false, true}) {
      double off_refined_per_sec = 0.0;
      for (const bool cache_on : {false, true}) {
        const size_t budget = cache_on ? options.prepared_cache_bytes : 0;
        RunConfig config;
        config.time_stages = options.time_stages;
        config.threads = threads;
        config.prepared_cache_bytes = budget;
        if (compressed) {
          config.r_cstore = &stores.r_cstore;
          config.s_cstore = &stores.s_cstore;
        }
        FindRelationRun best_run;
        for (int rep = 0; rep < kRepetitions; ++rep) {
          FindRelationRun run = RunFindRelation(Method::kPC, scenario,
                                                scenario.candidates, config);
          if (best_run.seconds == 0.0 || run.seconds < best_run.seconds) {
            best_run = run;
          }
        }
        if (best_run.relation_histogram != reference.relation_histogram ||
            best_run.stats.refined != reference.stats.refined) {
          std::fprintf(stderr,
                       "FATAL: %u-thread %s cache-%s run diverged from the "
                       "uncached single-threaded flat reference\n",
                       threads, compressed ? "compressed" : "flat",
                       cache_on ? "on" : "off");
          std::exit(1);
        }
        const double refined_per_sec = RefinedPerSecond(best_run);
        if (!cache_on) off_refined_per_sec = refined_per_sec;
        const double speedup = cache_on && off_refined_per_sec > 0
                                   ? refined_per_sec / off_refined_per_sec
                                   : 1.0;
        const uint64_t lookups =
            best_run.stats.prepared_hits + best_run.stats.prepared_misses;
        std::printf(
            "%-8u %-11s %-6s %12.3f %14.0f %14.0f %9.1f%% %7.2fx\n", threads,
            compressed ? "compressed" : "flat", cache_on ? "on" : "off",
            best_run.seconds, best_run.pairs_per_second, refined_per_sec,
            lookups == 0 ? 0.0
                         : 100.0 *
                               static_cast<double>(
                                   best_run.stats.prepared_hits) /
                               static_cast<double>(lookups),
            speedup);
        std::fflush(stdout);

        JsonRecord record;
        record.Set("bench", "prepared_cache")
            .Set("stage", "find_relation")
            .Set("scenario", scenario_name)
            .Set("method", ToString(Method::kPC))
            .Set("threads", threads)
            .Set("store", compressed ? "compressed" : "flat")
            .Set("cache", cache_on ? "on" : "off")
            .Set("scale", options.scale)
            .Set("grid_order", static_cast<uint64_t>(options.grid_order))
            .Set("seed", options.seed)
            .Set("seconds", best_run.seconds)
            .Set("pairs", static_cast<uint64_t>(scenario.candidates.size()))
            .Set("pairs_per_sec", best_run.pairs_per_second)
            .Set("refined", best_run.stats.refined)
            .Set("refined_per_sec", refined_per_sec)
            .Set("undetermined_pct", best_run.stats.UndeterminedPercent())
            .Set("speedup_vs_off", speedup)
            .Set("decoded_hits", best_run.stats.decoded_hits)
            .Set("decoded_misses", best_run.stats.decoded_misses);
        SetPreparedStats(&record, best_run.stats, budget, options.time_stages);
        if (options.time_stages) {
          record.Set("filter_seconds", best_run.stats.filter_seconds)
              .Set("refine_seconds", best_run.stats.refine_seconds);
        }
        reporter.Add(record);
      }
    }
  }

  if (!reporter.Write()) std::exit(1);
}

}  // namespace
}  // namespace stj::bench

int main(int argc, char** argv) {
  stj::bench::Run(stj::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
