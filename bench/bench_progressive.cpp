// Extension experiment (paper Sec. 5 future work / related work [25]):
// progressive geo-spatial interlinking. When the join may be cut short,
// processing promising pairs first front-loads link discovery. This harness
// reports the recall curve (% of all links found after x% of pairs
// processed) for three schedules, all running the P+C pipeline:
//
//   input-order    no scheduling
//   mbr-overlap    pairs with proportionally larger MBR intersection first
//   april-overlap  pairs sharing more conservative raster cells first
//
// The APRIL-based score reuses the same precomputed approximations the P+C
// filters consume, so the ordering is nearly free.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/topology/progressive.h"
#include "src/util/timer.h"

namespace stj::bench {
namespace {

void Run(const BenchOptions& options) {
  const ScenarioData scenario = BuildScenarioVerbose("TL-TW", options);

  const SchedulingPolicy policies[] = {SchedulingPolicy::kInputOrder,
                                       SchedulingPolicy::kMbrOverlapRatio,
                                       SchedulingPolicy::kAprilOverlap};
  std::vector<std::vector<ProgressivePoint>> curves;
  for (const SchedulingPolicy policy : policies) {
    Timer timer;
    curves.push_back(ProgressiveFindRelation(Method::kPC, scenario.RView(),
                                             scenario.SView(),
                                             scenario.candidates, policy, 10));
    std::printf("[run] %-13s: %zu links total, %.2fs\n", ToString(policy),
                curves.back().back().links_found, timer.ElapsedSeconds());
  }

  PrintTitle("Progressive interlinking: % of links found vs % pairs processed "
             "(TL-TW, P+C)");
  std::printf("%-12s %14s %14s %14s\n", "processed", "input-order",
              "mbr-overlap", "april-overlap");
  const double total =
      static_cast<double>(std::max<size_t>(1, curves[0].back().links_found));
  for (size_t i = 0; i < curves[0].size(); ++i) {
    std::printf("%10.0f%% ", 100.0 * static_cast<double>(
                                 curves[0][i].processed) /
                                 static_cast<double>(scenario.candidates.size()));
    for (const auto& curve : curves) {
      const size_t links =
          i < curve.size() ? curve[i].links_found : curve.back().links_found;
      std::printf("%13.1f%% ", 100.0 * static_cast<double>(links) / total);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace stj::bench

int main(int argc, char** argv) {
  stj::bench::Run(stj::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
