// Extension harness (no paper counterpart): cost of going out-of-core with
// the tile-sharded join (shard_scheduler.h) against the single-arena
// in-memory join on the same compressed APRIL inputs.
//
// Scenario TC-TZ — the nested counties/zip-codes tessellation — is the
// shard layer's acceptance workload: dense candidate sets, heavy boundary
// replication between the two tilings, and enough APRIL payload that a
// quarter-budget cache genuinely evicts. For each thread count the harness
// runs three legs, median-of-N each:
//
//   single_arena    ParallelFindRelation over the whole compressed store —
//                   the reference join and the throughput denominator.
//   all_resident    the sharded scheduler with a cache budget comfortably
//                   above the total shard bytes: every shard loads once,
//                   nothing evicts. Measures the pure sharding overhead
//                   (task loop, local MbrJoin, dedup, result merge).
//   quarter_budget  the same join with the cache clamped to 25% of the
//                   total shard bytes — the out-of-core regime: tasks
//                   continually evict and reload through the LRU.
//
// Every sharded repetition is verified pair-for-pair and relation-for-
// relation against the single-arena reference (identical=1 in the JSON
// record); a divergence aborts the harness. tools/bench_json.sh gates
// BENCH_PR9.json on: all_resident throughput >= 0.9x single_arena,
// quarter_budget wall time <= 2x all_resident, identical=1 everywhere.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iterator>
#include <numeric>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/topology/shard_scheduler.h"

namespace stj::bench {
namespace {

// Median-of-N timing; see bench_batch_pipeline.cpp for why median, not best.
// Repetitions are interleaved across the three legs (rep-outer, leg-inner)
// for the same reason as there: slow drift in background load then shifts
// all legs together instead of biasing whichever leg ran in a quiet window.
constexpr int kRepetitions = 5;

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The single-arena reference, re-sorted by (r, s) to match the sharded
// result's canonical order.
struct Reference {
  std::vector<CandidatePair> pairs;
  std::vector<de9im::Relation> relations;
  double seconds = 0.0;
  double pairs_per_sec = 0.0;
};

// One timed single-arena join; the result is kept so the first repetition
// can seed the reference decisions (the join is deterministic, so one
// re-sort suffices for all repetitions).
double RunArenaOnce(const ScenarioData& scenario,
                    const CompressedScenarioStores& stores, unsigned threads,
                    ParallelJoinResult* out) {
  DatasetView r_view;
  r_view.objects = &scenario.r.objects;
  r_view.cstore = &stores.r_cstore;
  DatasetView s_view;
  s_view.objects = &scenario.s.objects;
  s_view.cstore = &stores.s_cstore;
  JoinOptions options;
  options.num_threads = threads;

  const double start = Now();
  *out = ParallelFindRelation(Method::kPC, r_view, s_view,
                              scenario.candidates, options);
  const double seconds = Now() - start;
  if (!out->status.ok()) {
    std::fprintf(stderr, "single-arena join failed: %s\n",
                 out->status.message().c_str());
    std::exit(1);
  }
  return seconds;
}

// Re-sorts the single-arena decisions into the sharded join's canonical
// (r, s) order.
Reference MakeReference(const ScenarioData& scenario,
                        const ParallelJoinResult& result) {
  Reference reference;
  std::vector<size_t> order(scenario.candidates.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scenario.candidates[a] < scenario.candidates[b];
  });
  reference.pairs.reserve(order.size());
  reference.relations.reserve(order.size());
  for (const size_t i : order) {
    reference.pairs.push_back(scenario.candidates[i]);
    reference.relations.push_back(result.relations[i]);
  }
  return reference;
}

bool Identical(const ShardJoinResult& result, const Reference& reference) {
  return result.status.ok() && result.pairs == reference.pairs &&
         result.relations == reference.relations;
}

double RunShardedOnce(const ShardSet& r_set, const ShardSet& s_set,
                      unsigned threads, size_t cache_bytes,
                      const Reference& reference, const char* leg_name,
                      ShardStats* stats) {
  ShardJoinOptions options;
  options.join.num_threads = threads;
  options.shard_cache_bytes = cache_bytes;

  const double start = Now();
  const ShardJoinResult result =
      ShardedFindRelation(Method::kPC, r_set, s_set, options);
  const double seconds = Now() - start;
  if (!Identical(result, reference)) {
    std::fprintf(stderr,
                 "FATAL: sharded %s leg diverged from the single-arena "
                 "join at %u threads\n",
                 leg_name, threads);
    std::exit(1);
  }
  *stats = result.shard_stats;
  return seconds;
}

void Run(const BenchOptions& options) {
  const std::string scenario_name = "TC-TZ";
  const ScenarioData scenario = BuildScenarioVerbose(scenario_name, options);
  JsonReporter reporter(options.json_path);

  const CompressedScenarioStores stores = BuildCompressedStores(scenario);

  // Persist both shard sets once (preprocessing, like the APRIL build —
  // excluded from join timing). ~16 tiles per side gives a few hundred
  // tile-pair tasks and shards far smaller than the quarter budget.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "stj_bench_shard_join")
          .string();
  PartitionOptions poptions;
  poptions.target_tiles = 16;
  TilePartition r_part, s_part;
  if (Status st = BuildShardSet(dir + "/r", scenario.r.objects,
                                stores.r_cstore, poptions, &r_part);
      !st.ok()) {
    std::fprintf(stderr, "shard build failed: %s\n", st.message().c_str());
    std::exit(1);
  }
  if (Status st = BuildShardSet(dir + "/s", scenario.s.objects,
                                stores.s_cstore, poptions, &s_part);
      !st.ok()) {
    std::fprintf(stderr, "shard build failed: %s\n", st.message().c_str());
    std::exit(1);
  }
  ShardSet r_set, s_set;
  if (!ShardSet::Open(dir + "/r", &r_set).ok() ||
      !ShardSet::Open(dir + "/s", &s_set).ok()) {
    std::fprintf(stderr, "shard open failed\n");
    std::exit(1);
  }
  const uint64_t shard_bytes =
      r_set.TotalShardBytes() + s_set.TotalShardBytes();
  const size_t all_resident_cache = static_cast<size_t>(2 * shard_bytes);
  const size_t quarter_cache =
      std::max<size_t>(1, static_cast<size_t>(shard_bytes / 4));
  std::printf("[shard]   R %u tiles / S %u tiles, %.1f MB total; "
              "quarter budget %.1f MB\n",
              r_set.Tiles(), s_set.Tiles(), shard_bytes / (1024.0 * 1024.0),
              quarter_cache / (1024.0 * 1024.0));

  PrintTitle("Out-of-core tile-sharded join vs single-arena (P+C, "
             "compressed store)");
  std::printf("%-8s %-15s %10s %14s %9s %9s %9s %10s\n", "threads", "leg",
              "seconds", "pairs/s", "loads", "hits", "evicted", "identical");

  const struct {
    const char* name;
    size_t cache;
  } legs[] = {{"all_resident", all_resident_cache},
              {"quarter_budget", quarter_cache}};
  constexpr size_t kLegs = std::size(legs);

  for (const unsigned threads : options.threads) {
    // Rep-outer, leg-inner: every leg samples the same host-load windows.
    Reference reference;
    std::vector<double> arena_seconds;
    std::vector<double> leg_seconds[kLegs];
    ShardStats leg_stats[kLegs];
    for (int rep = 0; rep < kRepetitions; ++rep) {
      ParallelJoinResult arena_result;
      arena_seconds.push_back(
          RunArenaOnce(scenario, stores, threads, &arena_result));
      if (rep == 0) reference = MakeReference(scenario, arena_result);
      for (size_t leg = 0; leg < kLegs; ++leg) {
        leg_seconds[leg].push_back(RunShardedOnce(r_set, s_set, threads,
                                                  legs[leg].cache, reference,
                                                  legs[leg].name,
                                                  &leg_stats[leg]));
      }
    }

    reference.seconds = Median(arena_seconds);
    reference.pairs_per_sec =
        static_cast<double>(reference.pairs.size()) / reference.seconds;
    std::printf("%-8u %-15s %10.3f %14.0f %9s %9s %9s %10s\n", threads,
                "single_arena", reference.seconds, reference.pairs_per_sec,
                "-", "-", "-", "-");
    JsonRecord arena;
    arena.Set("bench", "shard_join")
        .Set("scenario", scenario_name)
        .Set("method", "pc")
        .Set("threads", threads)
        .Set("leg", "single_arena")
        .Set("cache_mb", 0.0)
        .Set("shard_bytes_mb", shard_bytes / (1024.0 * 1024.0))
        .Set("seconds", reference.seconds)
        .Set("pairs", static_cast<uint64_t>(reference.pairs.size()))
        .Set("pairs_per_sec", reference.pairs_per_sec)
        .Set("identical", uint64_t{1});
    reporter.Add(arena);

    const double all_resident_seconds = Median(leg_seconds[0]);
    for (size_t leg = 0; leg < kLegs; ++leg) {
      const double seconds = Median(leg_seconds[leg]);
      const double pairs_per_sec =
          static_cast<double>(reference.pairs.size()) / seconds;
      const ShardStats& stats = leg_stats[leg];
      std::printf("%-8u %-15s %10.3f %14.0f %9llu %9llu %9llu %10s\n",
                  threads, legs[leg].name, seconds, pairs_per_sec,
                  static_cast<unsigned long long>(stats.shard_loads),
                  static_cast<unsigned long long>(stats.shard_hits),
                  static_cast<unsigned long long>(stats.shards_evicted),
                  "yes");
      JsonRecord record;
      record.Set("bench", "shard_join")
          .Set("scenario", scenario_name)
          .Set("method", "pc")
          .Set("threads", threads)
          .Set("leg", legs[leg].name)
          .Set("cache_mb", legs[leg].cache / (1024.0 * 1024.0))
          .Set("shard_bytes_mb", shard_bytes / (1024.0 * 1024.0))
          .Set("tiles_r", r_set.Tiles())
          .Set("tiles_s", s_set.Tiles())
          .Set("tasks", stats.tasks)
          .Set("shard_loads", stats.shard_loads)
          .Set("shard_hits", stats.shard_hits)
          .Set("shards_evicted", stats.shards_evicted)
          .Set("cache_peak_mb", stats.cache_peak_bytes / (1024.0 * 1024.0))
          .Set("pairs_deduped", stats.pairs_deduped)
          .Set("seconds", seconds)
          .Set("pairs", static_cast<uint64_t>(reference.pairs.size()))
          .Set("pairs_per_sec", pairs_per_sec)
          .Set("speedup_vs_single_arena",
               pairs_per_sec / reference.pairs_per_sec)
          .Set("slowdown_vs_all_resident",
               all_resident_seconds > 0.0 ? seconds / all_resident_seconds
                                          : 1.0)
          .Set("identical", uint64_t{1});
      reporter.Add(record);
    }
  }

  if (!reporter.Write()) std::exit(1);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace stj::bench

int main(int argc, char** argv) {
  stj::bench::Run(stj::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
