// Reproduces Table 2: per-dataset polygon counts and the sizes of the raw
// geometry, the MBRs, and the P+C approximations.
//
// The synthetic datasets are scaled-down analogues of TIGER/OSM (see
// DESIGN.md); the point of the table — P+C lists are far smaller than the
// geometry they approximate, often comparable to the MBR table — must hold.

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "src/raster/april_io.h"
#include "src/util/stats.h"

namespace stj::bench {
namespace {

double Mb(size_t bytes) { return static_cast<double>(bytes) / 1e6; }

void Run(const BenchOptions& options) {
  PrintTitle("Table 2: dataset descriptions");
  std::printf("%-6s %-44s %12s %12s %12s %12s %14s\n", "name", "entity type",
              "# polygons", "size (MB)", "MBRs (MB)", "P+C (MB)",
              "P+C.gz (MB)");
  for (const std::string& name : DatasetNames()) {
    const Dataset dataset = BuildDataset(name, options.scale, options.seed);
    // Per-dataset grid over its own bounds, as each scenario would grid it.
    Box bounds;
    for (const SpatialObject& object : dataset.objects) {
      bounds.Expand(object.geometry.Bounds());
    }
    const RasterGrid grid(bounds, options.grid_order);
    const std::vector<AprilApproximation> april =
        BuildAprilApproximations(dataset, grid);
    size_t april_bytes = 0;
    for (const AprilApproximation& a : april) april_bytes += a.ByteSize();
    // Varint-compressed on-disk footprint (the space-economy variant).
    const std::string tmp = "/tmp/stj_table2_probe.april";
    size_t compressed_bytes = 0;
    if (SaveAprilFileCompressed(tmp, april)) {
      std::FILE* f = std::fopen(tmp.c_str(), "rb");
      if (f != nullptr) {
        std::fseek(f, 0, SEEK_END);
        compressed_bytes = static_cast<size_t>(std::ftell(f));
        std::fclose(f);
      }
      std::remove(tmp.c_str());
    }
    std::printf("%-6s %-44s %12s %12.1f %12.2f %12.2f %14.2f\n",
                dataset.name.c_str(), dataset.description.c_str(),
                FormatApproxCount(dataset.objects.size()).c_str(),
                Mb(dataset.GeometryByteSize()), Mb(dataset.MbrByteSize()),
                Mb(april_bytes), Mb(compressed_bytes));
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace stj::bench

int main(int argc, char** argv) {
  stj::bench::Run(stj::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
