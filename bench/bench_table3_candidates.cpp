// Reproduces Table 3: the number of candidate pairs (MBR-join output) per
// semantically meaningful dataset combination.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/stats.h"

namespace stj::bench {
namespace {

void Run(BenchOptions options) {
  PrintTitle("Table 3: candidate pairs per scenario");
  std::printf("%-10s %14s %14s %16s\n", "datasets", "|R|", "|S|",
              "candidate pairs");
  for (const std::string& name : ScenarioNames()) {
    ScenarioOptions scenario_options = options.ToScenarioOptions();
    scenario_options.build_april = false;  // only the join matters here
    const ScenarioData scenario = BuildScenario(name, scenario_options);
    std::printf("%-10s %14s %14s %16s\n", name.c_str(),
                FormatWithCommas(scenario.r.objects.size()).c_str(),
                FormatWithCommas(scenario.s.objects.size()).c_str(),
                FormatWithCommas(scenario.candidates.size()).c_str());
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace stj::bench

int main(int argc, char** argv) {
  stj::bench::Run(stj::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
