// Reproduces Table 5: find-relation throughput vs relate_p throughput on
// OLE-OPE for the predicates equals, meets, and inside (all using P+C).
//
// Expected shape: find relation is predicate-independent; relate_p is faster
// for every predicate, enormously so for meets (non-satisfaction is almost
// always visible in the approximations).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/timer.h"

namespace stj::bench {
namespace {

double RelateThroughput(const ScenarioData& scenario, de9im::Relation p) {
  Pipeline pipeline(Method::kPC, scenario.RView(), scenario.SView());
  Timer timer;
  uint64_t matches = 0;
  for (const CandidatePair& pair : scenario.candidates) {
    matches += pipeline.Relate(pair.r_idx, pair.s_idx, p) ? 1 : 0;
  }
  const double seconds = timer.ElapsedSeconds();
  std::printf("[run] relate_%-11s: %8llu matches, %6.3fs, %5.1f%% refined\n",
              ToString(p), static_cast<unsigned long long>(matches), seconds,
              pipeline.Stats().UndeterminedPercent());
  return seconds > 0
             ? static_cast<double>(scenario.candidates.size()) / seconds
             : 0.0;
}

void Run(const BenchOptions& options) {
  const ScenarioData scenario = BuildScenarioVerbose("OLE-OPE", options);

  // find relation does not depend on the predicate: one run.
  const FindRelationRun find_run =
      RunFindRelation(Method::kPC, scenario, scenario.candidates);
  std::printf("[run] find relation      : %6.3fs, %5.1f%% refined\n",
              find_run.seconds, find_run.stats.UndeterminedPercent());

  const de9im::Relation predicates[] = {de9im::Relation::kEquals,
                                        de9im::Relation::kMeets,
                                        de9im::Relation::kInside};
  double relate_throughput[3];
  for (int i = 0; i < 3; ++i) {
    relate_throughput[i] = RelateThroughput(scenario, predicates[i]);
  }

  PrintTitle("Table 5: throughput (pairs/sec) of find relation vs relate_p "
             "(OLE-OPE, P+C)");
  std::printf("%-14s %14s %14s %14s\n", "method", "equals", "meets", "inside");
  std::printf("%-14s %14.1f %14.1f %14.1f\n", "find relation",
              find_run.pairs_per_second, find_run.pairs_per_second,
              find_run.pairs_per_second);
  std::printf("%-14s %14.1f %14.1f %14.1f\n", "relate_p", relate_throughput[0],
              relate_throughput[1], relate_throughput[2]);
}

}  // namespace
}  // namespace stj::bench

int main(int argc, char** argv) {
  stj::bench::Run(stj::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
