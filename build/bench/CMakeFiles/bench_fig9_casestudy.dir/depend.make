# Empty dependencies file for bench_fig9_casestudy.
# This may be replaced when dependencies are built.
