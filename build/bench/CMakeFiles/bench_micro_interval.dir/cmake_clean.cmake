file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_interval.dir/bench_micro_interval.cpp.o"
  "CMakeFiles/bench_micro_interval.dir/bench_micro_interval.cpp.o.d"
  "bench_micro_interval"
  "bench_micro_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
