# Empty dependencies file for bench_micro_interval.
# This may be replaced when dependencies are built.
