file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_raster.dir/bench_micro_raster.cpp.o"
  "CMakeFiles/bench_micro_raster.dir/bench_micro_raster.cpp.o.d"
  "bench_micro_raster"
  "bench_micro_raster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_raster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
