# Empty compiler generated dependencies file for bench_micro_raster.
# This may be replaced when dependencies are built.
