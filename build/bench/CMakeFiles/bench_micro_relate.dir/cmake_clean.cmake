file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_relate.dir/bench_micro_relate.cpp.o"
  "CMakeFiles/bench_micro_relate.dir/bench_micro_relate.cpp.o.d"
  "bench_micro_relate"
  "bench_micro_relate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_relate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
