# Empty compiler generated dependencies file for bench_micro_relate.
# This may be replaced when dependencies are built.
