file(REMOVE_RECURSE
  "CMakeFiles/bench_progressive.dir/bench_common.cpp.o"
  "CMakeFiles/bench_progressive.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_progressive.dir/bench_progressive.cpp.o"
  "CMakeFiles/bench_progressive.dir/bench_progressive.cpp.o.d"
  "bench_progressive"
  "bench_progressive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_progressive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
