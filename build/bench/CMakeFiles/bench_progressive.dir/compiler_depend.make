# Empty compiler generated dependencies file for bench_progressive.
# This may be replaced when dependencies are built.
