file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_relate.dir/bench_common.cpp.o"
  "CMakeFiles/bench_table5_relate.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_table5_relate.dir/bench_table5_relate.cpp.o"
  "CMakeFiles/bench_table5_relate.dir/bench_table5_relate.cpp.o.d"
  "bench_table5_relate"
  "bench_table5_relate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_relate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
