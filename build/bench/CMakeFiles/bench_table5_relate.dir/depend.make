# Empty dependencies file for bench_table5_relate.
# This may be replaced when dependencies are built.
