file(REMOVE_RECURSE
  "CMakeFiles/example_interlinking.dir/interlinking.cpp.o"
  "CMakeFiles/example_interlinking.dir/interlinking.cpp.o.d"
  "example_interlinking"
  "example_interlinking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_interlinking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
