# Empty dependencies file for example_interlinking.
# This may be replaced when dependencies are built.
