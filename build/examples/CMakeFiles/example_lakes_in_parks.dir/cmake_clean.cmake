file(REMOVE_RECURSE
  "CMakeFiles/example_lakes_in_parks.dir/lakes_in_parks.cpp.o"
  "CMakeFiles/example_lakes_in_parks.dir/lakes_in_parks.cpp.o.d"
  "example_lakes_in_parks"
  "example_lakes_in_parks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_lakes_in_parks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
