# Empty dependencies file for example_lakes_in_parks.
# This may be replaced when dependencies are built.
