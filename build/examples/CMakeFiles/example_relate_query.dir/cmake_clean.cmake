file(REMOVE_RECURSE
  "CMakeFiles/example_relate_query.dir/relate_query.cpp.o"
  "CMakeFiles/example_relate_query.dir/relate_query.cpp.o.d"
  "example_relate_query"
  "example_relate_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_relate_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
