# Empty compiler generated dependencies file for example_relate_query.
# This may be replaced when dependencies are built.
