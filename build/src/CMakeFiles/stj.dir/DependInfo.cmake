
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datasets/blob.cpp" "src/CMakeFiles/stj.dir/datasets/blob.cpp.o" "gcc" "src/CMakeFiles/stj.dir/datasets/blob.cpp.o.d"
  "/root/repo/src/datasets/buildings.cpp" "src/CMakeFiles/stj.dir/datasets/buildings.cpp.o" "gcc" "src/CMakeFiles/stj.dir/datasets/buildings.cpp.o.d"
  "/root/repo/src/datasets/dataset_io.cpp" "src/CMakeFiles/stj.dir/datasets/dataset_io.cpp.o" "gcc" "src/CMakeFiles/stj.dir/datasets/dataset_io.cpp.o.d"
  "/root/repo/src/datasets/scenarios.cpp" "src/CMakeFiles/stj.dir/datasets/scenarios.cpp.o" "gcc" "src/CMakeFiles/stj.dir/datasets/scenarios.cpp.o.d"
  "/root/repo/src/datasets/tessellation.cpp" "src/CMakeFiles/stj.dir/datasets/tessellation.cpp.o" "gcc" "src/CMakeFiles/stj.dir/datasets/tessellation.cpp.o.d"
  "/root/repo/src/datasets/workload.cpp" "src/CMakeFiles/stj.dir/datasets/workload.cpp.o" "gcc" "src/CMakeFiles/stj.dir/datasets/workload.cpp.o.d"
  "/root/repo/src/de9im/boundary_arrangement.cpp" "src/CMakeFiles/stj.dir/de9im/boundary_arrangement.cpp.o" "gcc" "src/CMakeFiles/stj.dir/de9im/boundary_arrangement.cpp.o.d"
  "/root/repo/src/de9im/dimension.cpp" "src/CMakeFiles/stj.dir/de9im/dimension.cpp.o" "gcc" "src/CMakeFiles/stj.dir/de9im/dimension.cpp.o.d"
  "/root/repo/src/de9im/mask.cpp" "src/CMakeFiles/stj.dir/de9im/mask.cpp.o" "gcc" "src/CMakeFiles/stj.dir/de9im/mask.cpp.o.d"
  "/root/repo/src/de9im/matrix.cpp" "src/CMakeFiles/stj.dir/de9im/matrix.cpp.o" "gcc" "src/CMakeFiles/stj.dir/de9im/matrix.cpp.o.d"
  "/root/repo/src/de9im/relate_engine.cpp" "src/CMakeFiles/stj.dir/de9im/relate_engine.cpp.o" "gcc" "src/CMakeFiles/stj.dir/de9im/relate_engine.cpp.o.d"
  "/root/repo/src/de9im/relation.cpp" "src/CMakeFiles/stj.dir/de9im/relation.cpp.o" "gcc" "src/CMakeFiles/stj.dir/de9im/relation.cpp.o.d"
  "/root/repo/src/geometry/box.cpp" "src/CMakeFiles/stj.dir/geometry/box.cpp.o" "gcc" "src/CMakeFiles/stj.dir/geometry/box.cpp.o.d"
  "/root/repo/src/geometry/clip.cpp" "src/CMakeFiles/stj.dir/geometry/clip.cpp.o" "gcc" "src/CMakeFiles/stj.dir/geometry/clip.cpp.o.d"
  "/root/repo/src/geometry/convex_hull.cpp" "src/CMakeFiles/stj.dir/geometry/convex_hull.cpp.o" "gcc" "src/CMakeFiles/stj.dir/geometry/convex_hull.cpp.o.d"
  "/root/repo/src/geometry/locator.cpp" "src/CMakeFiles/stj.dir/geometry/locator.cpp.o" "gcc" "src/CMakeFiles/stj.dir/geometry/locator.cpp.o.d"
  "/root/repo/src/geometry/point.cpp" "src/CMakeFiles/stj.dir/geometry/point.cpp.o" "gcc" "src/CMakeFiles/stj.dir/geometry/point.cpp.o.d"
  "/root/repo/src/geometry/point_in_polygon.cpp" "src/CMakeFiles/stj.dir/geometry/point_in_polygon.cpp.o" "gcc" "src/CMakeFiles/stj.dir/geometry/point_in_polygon.cpp.o.d"
  "/root/repo/src/geometry/point_on_surface.cpp" "src/CMakeFiles/stj.dir/geometry/point_on_surface.cpp.o" "gcc" "src/CMakeFiles/stj.dir/geometry/point_on_surface.cpp.o.d"
  "/root/repo/src/geometry/polygon.cpp" "src/CMakeFiles/stj.dir/geometry/polygon.cpp.o" "gcc" "src/CMakeFiles/stj.dir/geometry/polygon.cpp.o.d"
  "/root/repo/src/geometry/predicates.cpp" "src/CMakeFiles/stj.dir/geometry/predicates.cpp.o" "gcc" "src/CMakeFiles/stj.dir/geometry/predicates.cpp.o.d"
  "/root/repo/src/geometry/ring.cpp" "src/CMakeFiles/stj.dir/geometry/ring.cpp.o" "gcc" "src/CMakeFiles/stj.dir/geometry/ring.cpp.o.d"
  "/root/repo/src/geometry/segment.cpp" "src/CMakeFiles/stj.dir/geometry/segment.cpp.o" "gcc" "src/CMakeFiles/stj.dir/geometry/segment.cpp.o.d"
  "/root/repo/src/geometry/simplify.cpp" "src/CMakeFiles/stj.dir/geometry/simplify.cpp.o" "gcc" "src/CMakeFiles/stj.dir/geometry/simplify.cpp.o.d"
  "/root/repo/src/geometry/validate.cpp" "src/CMakeFiles/stj.dir/geometry/validate.cpp.o" "gcc" "src/CMakeFiles/stj.dir/geometry/validate.cpp.o.d"
  "/root/repo/src/geometry/wkt.cpp" "src/CMakeFiles/stj.dir/geometry/wkt.cpp.o" "gcc" "src/CMakeFiles/stj.dir/geometry/wkt.cpp.o.d"
  "/root/repo/src/interval/interval_algebra.cpp" "src/CMakeFiles/stj.dir/interval/interval_algebra.cpp.o" "gcc" "src/CMakeFiles/stj.dir/interval/interval_algebra.cpp.o.d"
  "/root/repo/src/interval/interval_list.cpp" "src/CMakeFiles/stj.dir/interval/interval_list.cpp.o" "gcc" "src/CMakeFiles/stj.dir/interval/interval_list.cpp.o.d"
  "/root/repo/src/join/mbr_join.cpp" "src/CMakeFiles/stj.dir/join/mbr_join.cpp.o" "gcc" "src/CMakeFiles/stj.dir/join/mbr_join.cpp.o.d"
  "/root/repo/src/join/str_rtree.cpp" "src/CMakeFiles/stj.dir/join/str_rtree.cpp.o" "gcc" "src/CMakeFiles/stj.dir/join/str_rtree.cpp.o.d"
  "/root/repo/src/raster/april.cpp" "src/CMakeFiles/stj.dir/raster/april.cpp.o" "gcc" "src/CMakeFiles/stj.dir/raster/april.cpp.o.d"
  "/root/repo/src/raster/april_io.cpp" "src/CMakeFiles/stj.dir/raster/april_io.cpp.o" "gcc" "src/CMakeFiles/stj.dir/raster/april_io.cpp.o.d"
  "/root/repo/src/raster/grid.cpp" "src/CMakeFiles/stj.dir/raster/grid.cpp.o" "gcc" "src/CMakeFiles/stj.dir/raster/grid.cpp.o.d"
  "/root/repo/src/raster/hilbert.cpp" "src/CMakeFiles/stj.dir/raster/hilbert.cpp.o" "gcc" "src/CMakeFiles/stj.dir/raster/hilbert.cpp.o.d"
  "/root/repo/src/raster/rasterizer.cpp" "src/CMakeFiles/stj.dir/raster/rasterizer.cpp.o" "gcc" "src/CMakeFiles/stj.dir/raster/rasterizer.cpp.o.d"
  "/root/repo/src/topology/find_relation.cpp" "src/CMakeFiles/stj.dir/topology/find_relation.cpp.o" "gcc" "src/CMakeFiles/stj.dir/topology/find_relation.cpp.o.d"
  "/root/repo/src/topology/intermediate_filters.cpp" "src/CMakeFiles/stj.dir/topology/intermediate_filters.cpp.o" "gcc" "src/CMakeFiles/stj.dir/topology/intermediate_filters.cpp.o.d"
  "/root/repo/src/topology/link_writer.cpp" "src/CMakeFiles/stj.dir/topology/link_writer.cpp.o" "gcc" "src/CMakeFiles/stj.dir/topology/link_writer.cpp.o.d"
  "/root/repo/src/topology/mbr_relation.cpp" "src/CMakeFiles/stj.dir/topology/mbr_relation.cpp.o" "gcc" "src/CMakeFiles/stj.dir/topology/mbr_relation.cpp.o.d"
  "/root/repo/src/topology/parallel.cpp" "src/CMakeFiles/stj.dir/topology/parallel.cpp.o" "gcc" "src/CMakeFiles/stj.dir/topology/parallel.cpp.o.d"
  "/root/repo/src/topology/pipeline.cpp" "src/CMakeFiles/stj.dir/topology/pipeline.cpp.o" "gcc" "src/CMakeFiles/stj.dir/topology/pipeline.cpp.o.d"
  "/root/repo/src/topology/progressive.cpp" "src/CMakeFiles/stj.dir/topology/progressive.cpp.o" "gcc" "src/CMakeFiles/stj.dir/topology/progressive.cpp.o.d"
  "/root/repo/src/topology/relate_predicate.cpp" "src/CMakeFiles/stj.dir/topology/relate_predicate.cpp.o" "gcc" "src/CMakeFiles/stj.dir/topology/relate_predicate.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/stj.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/stj.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/stj.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/stj.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/status.cpp" "src/CMakeFiles/stj.dir/util/status.cpp.o" "gcc" "src/CMakeFiles/stj.dir/util/status.cpp.o.d"
  "/root/repo/src/util/timer.cpp" "src/CMakeFiles/stj.dir/util/timer.cpp.o" "gcc" "src/CMakeFiles/stj.dir/util/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
