file(REMOVE_RECURSE
  "libstj.a"
)
