# Empty dependencies file for stj.
# This may be replaced when dependencies are built.
