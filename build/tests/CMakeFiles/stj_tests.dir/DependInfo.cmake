
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/datasets/dataset_io_test.cpp" "tests/CMakeFiles/stj_tests.dir/datasets/dataset_io_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/datasets/dataset_io_test.cpp.o.d"
  "/root/repo/tests/datasets/generators_test.cpp" "tests/CMakeFiles/stj_tests.dir/datasets/generators_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/datasets/generators_test.cpp.o.d"
  "/root/repo/tests/datasets/scenarios_test.cpp" "tests/CMakeFiles/stj_tests.dir/datasets/scenarios_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/datasets/scenarios_test.cpp.o.d"
  "/root/repo/tests/de9im/boundary_arrangement_test.cpp" "tests/CMakeFiles/stj_tests.dir/de9im/boundary_arrangement_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/de9im/boundary_arrangement_test.cpp.o.d"
  "/root/repo/tests/de9im/matrix_mask_test.cpp" "tests/CMakeFiles/stj_tests.dir/de9im/matrix_mask_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/de9im/matrix_mask_test.cpp.o.d"
  "/root/repo/tests/de9im/relate_engine_test.cpp" "tests/CMakeFiles/stj_tests.dir/de9im/relate_engine_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/de9im/relate_engine_test.cpp.o.d"
  "/root/repo/tests/de9im/relate_oracle_test.cpp" "tests/CMakeFiles/stj_tests.dir/de9im/relate_oracle_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/de9im/relate_oracle_test.cpp.o.d"
  "/root/repo/tests/de9im/relate_property_test.cpp" "tests/CMakeFiles/stj_tests.dir/de9im/relate_property_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/de9im/relate_property_test.cpp.o.d"
  "/root/repo/tests/de9im/relation_test.cpp" "tests/CMakeFiles/stj_tests.dir/de9im/relation_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/de9im/relation_test.cpp.o.d"
  "/root/repo/tests/geometry/box_test.cpp" "tests/CMakeFiles/stj_tests.dir/geometry/box_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/geometry/box_test.cpp.o.d"
  "/root/repo/tests/geometry/clip_test.cpp" "tests/CMakeFiles/stj_tests.dir/geometry/clip_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/geometry/clip_test.cpp.o.d"
  "/root/repo/tests/geometry/convex_hull_test.cpp" "tests/CMakeFiles/stj_tests.dir/geometry/convex_hull_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/geometry/convex_hull_test.cpp.o.d"
  "/root/repo/tests/geometry/locator_test.cpp" "tests/CMakeFiles/stj_tests.dir/geometry/locator_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/geometry/locator_test.cpp.o.d"
  "/root/repo/tests/geometry/point_in_polygon_test.cpp" "tests/CMakeFiles/stj_tests.dir/geometry/point_in_polygon_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/geometry/point_in_polygon_test.cpp.o.d"
  "/root/repo/tests/geometry/point_on_surface_test.cpp" "tests/CMakeFiles/stj_tests.dir/geometry/point_on_surface_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/geometry/point_on_surface_test.cpp.o.d"
  "/root/repo/tests/geometry/predicates_test.cpp" "tests/CMakeFiles/stj_tests.dir/geometry/predicates_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/geometry/predicates_test.cpp.o.d"
  "/root/repo/tests/geometry/ring_polygon_test.cpp" "tests/CMakeFiles/stj_tests.dir/geometry/ring_polygon_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/geometry/ring_polygon_test.cpp.o.d"
  "/root/repo/tests/geometry/segment_test.cpp" "tests/CMakeFiles/stj_tests.dir/geometry/segment_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/geometry/segment_test.cpp.o.d"
  "/root/repo/tests/geometry/simplify_test.cpp" "tests/CMakeFiles/stj_tests.dir/geometry/simplify_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/geometry/simplify_test.cpp.o.d"
  "/root/repo/tests/geometry/validate_test.cpp" "tests/CMakeFiles/stj_tests.dir/geometry/validate_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/geometry/validate_test.cpp.o.d"
  "/root/repo/tests/geometry/wkt_test.cpp" "tests/CMakeFiles/stj_tests.dir/geometry/wkt_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/geometry/wkt_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/stj_tests.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/lattice_stress_test.cpp" "tests/CMakeFiles/stj_tests.dir/integration/lattice_stress_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/integration/lattice_stress_test.cpp.o.d"
  "/root/repo/tests/integration/simplify_topology_test.cpp" "tests/CMakeFiles/stj_tests.dir/integration/simplify_topology_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/integration/simplify_topology_test.cpp.o.d"
  "/root/repo/tests/interval/interval_algebra_test.cpp" "tests/CMakeFiles/stj_tests.dir/interval/interval_algebra_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/interval/interval_algebra_test.cpp.o.d"
  "/root/repo/tests/interval/interval_list_test.cpp" "tests/CMakeFiles/stj_tests.dir/interval/interval_list_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/interval/interval_list_test.cpp.o.d"
  "/root/repo/tests/join/mbr_join_test.cpp" "tests/CMakeFiles/stj_tests.dir/join/mbr_join_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/join/mbr_join_test.cpp.o.d"
  "/root/repo/tests/join/str_rtree_test.cpp" "tests/CMakeFiles/stj_tests.dir/join/str_rtree_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/join/str_rtree_test.cpp.o.d"
  "/root/repo/tests/raster/april_io_test.cpp" "tests/CMakeFiles/stj_tests.dir/raster/april_io_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/raster/april_io_test.cpp.o.d"
  "/root/repo/tests/raster/april_test.cpp" "tests/CMakeFiles/stj_tests.dir/raster/april_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/raster/april_test.cpp.o.d"
  "/root/repo/tests/raster/grid_test.cpp" "tests/CMakeFiles/stj_tests.dir/raster/grid_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/raster/grid_test.cpp.o.d"
  "/root/repo/tests/raster/hilbert_test.cpp" "tests/CMakeFiles/stj_tests.dir/raster/hilbert_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/raster/hilbert_test.cpp.o.d"
  "/root/repo/tests/raster/rasterizer_test.cpp" "tests/CMakeFiles/stj_tests.dir/raster/rasterizer_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/raster/rasterizer_test.cpp.o.d"
  "/root/repo/tests/robustness/april_fault_injection_test.cpp" "tests/CMakeFiles/stj_tests.dir/robustness/april_fault_injection_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/robustness/april_fault_injection_test.cpp.o.d"
  "/root/repo/tests/robustness/parallel_exception_test.cpp" "tests/CMakeFiles/stj_tests.dir/robustness/parallel_exception_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/robustness/parallel_exception_test.cpp.o.d"
  "/root/repo/tests/robustness/pipeline_degraded_test.cpp" "tests/CMakeFiles/stj_tests.dir/robustness/pipeline_degraded_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/robustness/pipeline_degraded_test.cpp.o.d"
  "/root/repo/tests/robustness/wkt_fault_injection_test.cpp" "tests/CMakeFiles/stj_tests.dir/robustness/wkt_fault_injection_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/robustness/wkt_fault_injection_test.cpp.o.d"
  "/root/repo/tests/topology/find_relation_test.cpp" "tests/CMakeFiles/stj_tests.dir/topology/find_relation_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/topology/find_relation_test.cpp.o.d"
  "/root/repo/tests/topology/intermediate_filters_test.cpp" "tests/CMakeFiles/stj_tests.dir/topology/intermediate_filters_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/topology/intermediate_filters_test.cpp.o.d"
  "/root/repo/tests/topology/link_writer_test.cpp" "tests/CMakeFiles/stj_tests.dir/topology/link_writer_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/topology/link_writer_test.cpp.o.d"
  "/root/repo/tests/topology/mbr_relation_test.cpp" "tests/CMakeFiles/stj_tests.dir/topology/mbr_relation_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/topology/mbr_relation_test.cpp.o.d"
  "/root/repo/tests/topology/parallel_test.cpp" "tests/CMakeFiles/stj_tests.dir/topology/parallel_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/topology/parallel_test.cpp.o.d"
  "/root/repo/tests/topology/pipeline_test.cpp" "tests/CMakeFiles/stj_tests.dir/topology/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/topology/pipeline_test.cpp.o.d"
  "/root/repo/tests/topology/progressive_test.cpp" "tests/CMakeFiles/stj_tests.dir/topology/progressive_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/topology/progressive_test.cpp.o.d"
  "/root/repo/tests/topology/relate_predicate_test.cpp" "tests/CMakeFiles/stj_tests.dir/topology/relate_predicate_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/topology/relate_predicate_test.cpp.o.d"
  "/root/repo/tests/util/util_test.cpp" "tests/CMakeFiles/stj_tests.dir/util/util_test.cpp.o" "gcc" "tests/CMakeFiles/stj_tests.dir/util/util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stj.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
