# Empty compiler generated dependencies file for stj_tests.
# This may be replaced when dependencies are built.
