file(REMOVE_RECURSE
  "CMakeFiles/stj_cli.dir/stj_cli.cpp.o"
  "CMakeFiles/stj_cli.dir/stj_cli.cpp.o.d"
  "stj_cli"
  "stj_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stj_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
