# Empty dependencies file for stj_cli.
# This may be replaced when dependencies are built.
