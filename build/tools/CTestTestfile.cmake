# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(stj_cli_end_to_end "/usr/bin/cmake" "-DCLI=/root/repo/build/tools/stj_cli" "-DWORK=/root/repo/build/tools/cli_test_work" "-P" "/root/repo/tools/cli_test.cmake")
set_tests_properties(stj_cli_end_to_end PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
