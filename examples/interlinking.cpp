// Geo-spatial interlinking: discover every topological link between two
// datasets (the TL-TW scenario: US landmarks vs water areas) — the
// knowledge-graph enrichment workload that motivates the paper. Compares
// all four methods end-to-end and verifies they produce identical links.
//
//   $ ./example_interlinking [scale]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/datasets/scenarios.h"
#include "src/topology/link_writer.h"
#include "src/topology/pipeline.h"
#include "src/util/timer.h"

int main(int argc, char** argv) {
  using namespace stj;
  ScenarioOptions options;
  options.scale = argc > 1 ? std::atof(argv[1]) : 0.3;
  std::printf("building TL-TW (landmarks vs water areas) at scale %.2f...\n",
              options.scale);
  const ScenarioData scenario = BuildScenario("TL-TW", options);
  std::printf("landmarks: %zu, water areas: %zu, candidates: %zu\n\n",
              scenario.r.objects.size(), scenario.s.objects.size(),
              scenario.candidates.size());

  const Method methods[] = {Method::kST2, Method::kOP2, Method::kApril,
                            Method::kPC};
  std::vector<de9im::Relation> reference;
  std::printf("%-8s %12s %14s %12s\n", "method", "time (s)", "pairs/s",
              "refined %");
  for (const Method method : methods) {
    Pipeline pipeline(method, scenario.RView(), scenario.SView());
    std::vector<de9im::Relation> links;
    links.reserve(scenario.candidates.size());
    Timer timer;
    for (const CandidatePair& pair : scenario.candidates) {
      links.push_back(pipeline.FindRelation(pair.r_idx, pair.s_idx));
    }
    const double seconds = timer.ElapsedSeconds();
    std::printf("%-8s %12.3f %14.0f %11.1f%%\n", ToString(method), seconds,
                static_cast<double>(scenario.candidates.size()) / seconds,
                pipeline.Stats().UndeterminedPercent());
    if (reference.empty()) {
      reference = std::move(links);
    } else if (links != reference) {
      std::fprintf(stderr, "method %s produced different links!\n",
                   ToString(method));
      return 1;
    }
  }

  // Summarise the discovered links (skipping disjoint non-links).
  size_t counts[de9im::kNumRelations] = {};
  for (const de9im::Relation rel : reference) {
    ++counts[static_cast<size_t>(rel)];
  }
  std::printf("\ndiscovered links (all methods agree):\n");
  for (int i = 0; i < de9im::kNumRelations; ++i) {
    const auto rel = static_cast<de9im::Relation>(i);
    if (rel == de9im::Relation::kDisjoint) continue;
    std::printf("  %-12s %zu\n", ToString(rel), counts[i]);
  }
  std::printf("  (%zu candidate pairs turned out disjoint)\n",
              counts[static_cast<size_t>(de9im::Relation::kDisjoint)]);

  // Materialise the links as GeoSPARQL N-Triples — the artefact a linked-
  // data pipeline (Silk, Radon) would ingest.
  std::vector<TopologyLink> links;
  for (size_t i = 0; i < reference.size(); ++i) {
    if (reference[i] == de9im::Relation::kDisjoint) continue;
    links.push_back(TopologyLink{scenario.candidates[i], reference[i]});
  }
  const char* out_path = "/tmp/stj_landmark_water_links.nt";
  if (WriteNTriples(out_path, "http://stjoin.example/landmark/",
                    "http://stjoin.example/water/", links)) {
    std::printf("\nwrote %zu N-Triples to %s\n", links.size(), out_path);
  }
  return 0;
}
