// Lakes-in-parks: the OLE-OPE scenario from the paper's evaluation. Builds
// the synthetic lakes and parks datasets, runs the filter-step MBR join, and
// finds the most specific topological relation of every candidate pair with
// the P+C pipeline — then reports the relation histogram and how much work
// the intermediate filter saved.
//
//   $ ./example_lakes_in_parks [scale]

#include <cstdio>
#include <cstdlib>
#include <map>

#include "src/datasets/scenarios.h"
#include "src/geometry/wkt.h"
#include "src/topology/pipeline.h"
#include "src/util/timer.h"

int main(int argc, char** argv) {
  using namespace stj;
  ScenarioOptions options;
  options.scale = argc > 1 ? std::atof(argv[1]) : 0.2;
  options.grid_order = 12;

  std::printf("building OLE-OPE at scale %.2f...\n", options.scale);
  const ScenarioData scenario = BuildScenario("OLE-OPE", options);
  std::printf("lakes: %zu, parks: %zu, candidate pairs: %zu\n",
              scenario.r.objects.size(), scenario.s.objects.size(),
              scenario.candidates.size());

  Pipeline pipeline(Method::kPC, scenario.RView(), scenario.SView());
  std::map<de9im::Relation, size_t> histogram;
  uint32_t example_lake = 0;
  uint32_t example_park = 0;
  Timer timer;
  for (const CandidatePair& pair : scenario.candidates) {
    const de9im::Relation rel = pipeline.FindRelation(pair.r_idx, pair.s_idx);
    ++histogram[rel];
    if (rel == de9im::Relation::kInside) {
      example_lake = pair.r_idx;
      example_park = pair.s_idx;
    }
  }
  const double seconds = timer.ElapsedSeconds();

  std::printf("\nrelation histogram (%zu pairs in %.2fs, %.0f pairs/s):\n",
              scenario.candidates.size(), seconds,
              static_cast<double>(scenario.candidates.size()) / seconds);
  for (const auto& [rel, count] : histogram) {
    std::printf("  %-12s %zu\n", ToString(rel), count);
  }
  const PipelineStats& stats = pipeline.Stats();
  std::printf("\npipeline effectiveness:\n");
  std::printf("  decided by MBR filter:          %llu\n",
              static_cast<unsigned long long>(stats.decided_by_mbr));
  std::printf("  decided by intermediate filter: %llu\n",
              static_cast<unsigned long long>(stats.decided_by_filter));
  std::printf("  refined with DE-9IM:            %llu (%.1f%%)\n",
              static_cast<unsigned long long>(stats.refined),
              stats.UndeterminedPercent());

  if (histogram[de9im::Relation::kInside] > 0) {
    std::printf("\nexample lake strictly inside a park:\n  lake: %.60s...\n",
                ToWkt(scenario.r.objects[example_lake].geometry).c_str());
    std::printf("  park: %.60s...\n",
                ToWkt(scenario.s.objects[example_park].geometry).c_str());
  }
  return 0;
}
