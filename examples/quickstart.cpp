// Quickstart: detect the topological relation of two polygons, first exactly
// (DE-9IM), then through the paper's raster-filtered pipeline.
//
//   $ ./example_quickstart
//
// Walks through the whole public API surface on two hand-written polygons.

#include <cstdio>

#include "src/de9im/relate_engine.h"
#include "src/geometry/wkt.h"
#include "src/raster/april.h"
#include "src/topology/find_relation.h"
#include "src/topology/relate_predicate.h"

int main() {
  using namespace stj;

  // 1. Parse two polygons from WKT: a park with a clearing (hole) and a
  //    lake inside the park.
  const auto park = ParseWktPolygon(
      "POLYGON ((0 0, 60 0, 60 60, 0 60, 0 0),"
      "         (20 20, 30 20, 30 30, 20 30, 20 20))");
  const auto lake = ParseWktPolygon("POLYGON ((35 35, 50 35, 50 50, 35 50))");
  if (!park || !lake) {
    std::fprintf(stderr, "WKT parse error\n");
    return 1;
  }

  // 2. Exact answer: the DE-9IM matrix and the most specific relation.
  const de9im::Matrix matrix = de9im::RelateMatrix(*lake, *park);
  std::printf("DE-9IM(lake, park)   = %s\n", matrix.ToString().c_str());
  std::printf("most specific        = %s\n",
              ToString(de9im::MostSpecificRelation(matrix)));

  // 3. The same answer through the paper's pipeline: precompute APRIL
  //    approximations on a grid over the data space...
  Box dataspace = park->Bounds();
  dataspace.Expand(lake->Bounds());
  const RasterGrid grid(dataspace, /*order=*/10);
  const AprilBuilder builder(&grid);
  const AprilApproximation lake_april = builder.Build(*lake);
  const AprilApproximation park_april = builder.Build(*park);
  std::printf("lake approximation   = %zu C-intervals, %zu P-intervals\n",
              lake_april.conservative.Size(), lake_april.progressive.Size());

  // ...then ask the intermediate filter. For this pair the filter decides
  // `inside` outright: no exact geometry needed.
  const FilterDecision decision = FindRelationFilter(
      lake->Bounds(), lake_april, park->Bounds(), park_april);
  if (decision.definite) {
    std::printf("filter decision      = %s (no refinement needed)\n",
                ToString(decision.relation));
  } else {
    std::printf("filter narrowed to %d candidate relations; refining...\n",
                decision.candidates.Count());
    std::printf("refined relation     = %s\n",
                ToString(de9im::MostSpecificRelation(matrix,
                                                     decision.candidates)));
  }

  // 4. Predicate queries (relate_p): cheap definite answers per predicate.
  for (const de9im::Relation p :
       {de9im::Relation::kInside, de9im::Relation::kMeets,
        de9im::Relation::kEquals}) {
    const RelateAnswer answer = RelatePredicateFilter(
        p, lake->Bounds(), lake_april, park->Bounds(), park_april);
    std::printf("relate_%-10s     = %s\n", ToString(p), ToString(answer));
  }
  return 0;
}
