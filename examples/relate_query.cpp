// Predicate spatial join (relate_p): find every (zip code, county) pair
// satisfying a given topological predicate, using the predicate-specific
// filters of Sec. 3.3. Demonstrates how much cheaper a targeted relate_p
// join is than deriving the predicate from full find-relation answers.
//
//   $ ./example_relate_query [predicate] [scale]
//     predicate: one of inside, covered-by, meets, intersects, equals,
//                contains, covers, disjoint (default: covered-by)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "src/datasets/scenarios.h"
#include "src/topology/pipeline.h"
#include "src/util/timer.h"

namespace {

std::optional<stj::de9im::Relation> ParsePredicate(const char* name) {
  using stj::de9im::Relation;
  for (int i = 0; i < stj::de9im::kNumRelations; ++i) {
    const Relation rel = static_cast<Relation>(i);
    if (std::strcmp(name, ToString(rel)) == 0) return rel;
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stj;
  const char* predicate_name = argc > 1 ? argv[1] : "covered-by";
  const auto predicate = ParsePredicate(predicate_name);
  if (!predicate) {
    std::fprintf(stderr, "unknown predicate '%s'\n", predicate_name);
    return 1;
  }

  ScenarioOptions options;
  options.scale = argc > 2 ? std::atof(argv[2]) : 0.5;
  std::printf("building TC-TZ (counties vs zip codes) at scale %.2f...\n",
              options.scale);
  // The scenario is defined as TC-TZ; we query zip-vs-county, i.e. the
  // converse direction, so swap roles via the converse predicate.
  const ScenarioData scenario = BuildScenario("TC-TZ", options);
  std::printf("counties: %zu, zip codes: %zu, candidates: %zu\n",
              scenario.r.objects.size(), scenario.s.objects.size(),
              scenario.candidates.size());

  // relate_p with the P+C predicate filters.
  Pipeline pc(Method::kPC, scenario.RView(), scenario.SView());
  Timer timer;
  size_t matches = 0;
  const de9im::Relation county_side_predicate = de9im::Converse(*predicate);
  for (const CandidatePair& pair : scenario.candidates) {
    // "zip <predicate> county" == "county <converse> zip".
    matches += pc.Relate(pair.r_idx, pair.s_idx, county_side_predicate) ? 1 : 0;
  }
  const double pc_seconds = timer.ElapsedSeconds();
  std::printf("\nzip %s county: %zu matching pairs\n", predicate_name,
              matches);
  std::printf("relate_p (P+C):    %.3fs, %.1f%% of pairs refined\n",
              pc_seconds, pc.Stats().UndeterminedPercent());

  // Baseline: the same query answered by refining everything (ST2).
  Pipeline st2(Method::kST2, scenario.RView(), scenario.SView());
  timer.Reset();
  size_t st2_matches = 0;
  for (const CandidatePair& pair : scenario.candidates) {
    st2_matches +=
        st2.Relate(pair.r_idx, pair.s_idx, county_side_predicate) ? 1 : 0;
  }
  const double st2_seconds = timer.ElapsedSeconds();
  std::printf("relate_p (ST2):    %.3fs (%.1fx slower), %zu matches\n",
              st2_seconds, st2_seconds / pc_seconds, st2_matches);
  if (st2_matches != matches) {
    std::fprintf(stderr, "MISMATCH between methods!\n");
    return 1;
  }
  return 0;
}
