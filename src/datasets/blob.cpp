#include "src/datasets/blob.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

namespace stj {

namespace {

constexpr double kTau = 2.0 * std::numbers::pi;

// Radial profile: 1 + sum of harmonics, kept positive by construction.
class RadialProfile {
 public:
  RadialProfile(Rng* rng, int harmonics, double irregularity) {
    amplitudes_.reserve(static_cast<size_t>(harmonics));
    phases_.reserve(static_cast<size_t>(harmonics));
    double budget = std::clamp(irregularity, 0.0, 0.85);
    for (int k = 1; k <= harmonics; ++k) {
      // Decaying random share of the remaining amplitude budget.
      const double share = budget * rng->Uniform(0.3, 0.7);
      amplitudes_.push_back(share);
      budget -= share;
      phases_.push_back(rng->Uniform(0.0, kTau));
    }
  }

  double operator()(double theta) const {
    double r = 1.0;
    for (size_t k = 0; k < amplitudes_.size(); ++k) {
      r += amplitudes_[k] *
           std::sin(static_cast<double>(k + 1) * theta + phases_[k]);
    }
    return r;
  }

 private:
  std::vector<double> amplitudes_;
  std::vector<double> phases_;
};

Ring MakeStarRing(Rng* rng, const Point& center, double mean_radius,
                  double irregularity, size_t vertices, int harmonics,
                  bool clockwise, double* min_radius_out) {
  const RadialProfile profile(rng, harmonics, irregularity);
  std::vector<Point> pts;
  pts.reserve(vertices);
  double min_radius = mean_radius * 10.0;
  const double step = kTau / static_cast<double>(vertices);
  for (size_t i = 0; i < vertices; ++i) {
    // Jitter below half a step keeps the angles strictly increasing, which
    // preserves star-shapedness (and hence simplicity) for free.
    const double theta =
        step * (static_cast<double>(i) + rng->Uniform(-0.35, 0.35));
    const double radius = mean_radius * profile(theta);
    min_radius = std::min(min_radius, radius);
    pts.push_back(Point{center.x + radius * std::cos(theta),
                        center.y + radius * std::sin(theta)});
  }
  if (clockwise) std::reverse(pts.begin(), pts.end());
  if (min_radius_out != nullptr) {
    // Edges can cut inside the vertex circle; the chord-sag bound cos(pi/n)
    // (further shaved for jitter) converts the vertex minimum into a bound
    // that holds everywhere on the ring.
    *min_radius_out =
        min_radius * std::cos(std::numbers::pi / static_cast<double>(vertices)) * 0.8;
  }
  return Ring(std::move(pts));
}

}  // namespace

Polygon MakeBlob(Rng* rng, const BlobParams& params) {
  const size_t vertices = std::max<size_t>(4, params.vertices);
  double min_radius = 0.0;
  Ring outer =
      MakeStarRing(rng, params.center, params.mean_radius, params.irregularity,
                   vertices, params.harmonics, /*clockwise=*/false, &min_radius);

  std::vector<Ring> holes;
  if (params.hole_probability > 0.0 && rng->Bernoulli(params.hole_probability) &&
      min_radius > 0.05 * params.mean_radius) {
    const int num_holes = rng->Bernoulli(0.3) ? 2 : 1;
    const double base_angle = rng->Uniform(0.0, kTau);
    for (int h = 0; h < num_holes; ++h) {
      // Keep offset + hole extent strictly inside the safe radius so the hole
      // cannot touch the outer ring (star-shapedness makes this sufficient).
      // Two holes go to opposite sides at distances that exceed the sum of
      // their extents, so they cannot touch each other either.
      const double hole_radius =
          min_radius * (num_holes == 2 ? rng->Uniform(0.1, 0.2)
                                       : rng->Uniform(0.12, 0.3));
      const double max_offset = min_radius - hole_radius * 1.6;
      if (max_offset <= 0.0) break;
      const double angle = base_angle + std::numbers::pi * h;
      const double dist = num_holes == 2
                              ? rng->Uniform(0.5, 0.8) * max_offset
                              : rng->Uniform(0.0, 0.8) * max_offset;
      const Point hole_center{params.center.x + dist * std::cos(angle),
                              params.center.y + dist * std::sin(angle)};
      const size_t hole_vertices =
          static_cast<size_t>(rng->UniformInt(8, 20));
      holes.push_back(MakeStarRing(rng, hole_center, hole_radius, 0.25,
                                   hole_vertices, 3, /*clockwise=*/true,
                                   nullptr));
    }
  }
  return Polygon(std::move(outer), std::move(holes));
}

Polygon MakeRectanglePolygon(const Box& box) {
  return Polygon(Ring({Point{box.min.x, box.min.y}, Point{box.max.x, box.min.y},
                       Point{box.max.x, box.max.y},
                       Point{box.min.x, box.max.y}}));
}

Polygon FillHoles(const Polygon& poly) { return Polygon(poly.Outer()); }

Polygon ScaleAbout(const Polygon& poly, const Point& anchor, double factor) {
  auto scale_ring = [&](const Ring& ring) {
    std::vector<Point> pts;
    pts.reserve(ring.Size());
    for (const Point& p : ring.Vertices()) {
      pts.push_back(Point{anchor.x + (p.x - anchor.x) * factor,
                          anchor.y + (p.y - anchor.y) * factor});
    }
    return Ring(std::move(pts));
  };
  std::vector<Ring> holes;
  holes.reserve(poly.Holes().size());
  for (const Ring& hole : poly.Holes()) holes.push_back(scale_ring(hole));
  return Polygon(scale_ring(poly.Outer()), std::move(holes));
}

Polygon AffineAbout(const Polygon& poly, const Point& anchor, double sx,
                    double sy, double angle) {
  const double cos_a = std::cos(angle);
  const double sin_a = std::sin(angle);
  auto map_ring = [&](const Ring& ring) {
    std::vector<Point> pts;
    pts.reserve(ring.Size());
    for (const Point& p : ring.Vertices()) {
      const double x = (p.x - anchor.x) * sx;
      const double y = (p.y - anchor.y) * sy;
      pts.push_back(Point{anchor.x + x * cos_a - y * sin_a,
                          anchor.y + x * sin_a + y * cos_a});
    }
    return Ring(std::move(pts));
  };
  std::vector<Ring> holes;
  holes.reserve(poly.Holes().size());
  for (const Ring& hole : poly.Holes()) holes.push_back(map_ring(hole));
  return Polygon(map_ring(poly.Outer()), std::move(holes));
}

Polygon Translate(const Polygon& poly, double dx, double dy) {
  auto move_ring = [&](const Ring& ring) {
    std::vector<Point> pts;
    pts.reserve(ring.Size());
    for (const Point& p : ring.Vertices()) {
      pts.push_back(Point{p.x + dx, p.y + dy});
    }
    return Ring(std::move(pts));
  };
  std::vector<Ring> holes;
  holes.reserve(poly.Holes().size());
  for (const Ring& hole : poly.Holes()) holes.push_back(move_ring(hole));
  return Polygon(move_ring(poly.Outer()), std::move(holes));
}

}  // namespace stj
