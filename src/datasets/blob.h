#pragma once

#include "src/geometry/polygon.h"
#include "src/util/rng.h"

namespace stj {

/// Parameters for radial "blob" polygons — the synthetic stand-ins for
/// natural areas (lakes, parks, water bodies, landmark areas).
///
/// A blob is a star-shaped polygon around `center`: vertices at strictly
/// increasing angles with radius R(theta) = mean_radius * (1 + sum of random
/// low-frequency harmonics). Star-shapedness guarantees validity for any
/// vertex count, which is what lets the generators sweep complexity over
/// orders of magnitude (Table 4 needs vertex counts from 8 to tens of
/// thousands).
struct BlobParams {
  Point center{0.0, 0.0};
  double mean_radius = 1.0;
  /// Total relative amplitude of the radial harmonics, in [0, 0.85].
  double irregularity = 0.45;
  /// Number of boundary vertices (>= 4).
  size_t vertices = 32;
  /// Number of random harmonics shaping the outline.
  int harmonics = 5;
  /// Probability of carving 1-2 holes into the blob.
  double hole_probability = 0.0;
};

/// Generates a valid star-shaped polygon (optionally with holes).
Polygon MakeBlob(Rng* rng, const BlobParams& params);

/// Axis-aligned rectangle polygon.
Polygon MakeRectanglePolygon(const Box& box);

/// Returns a copy of \p poly with every hole removed (its "filled" version).
/// A filled polygon covers the original with exactly shared outer boundary —
/// used by the scenario builders to create covers/covered-by pairs.
Polygon FillHoles(const Polygon& poly);

/// Returns \p poly scaled by \p factor about \p anchor (used to derive
/// strictly-inside twins of an object).
Polygon ScaleAbout(const Polygon& poly, const Point& anchor, double factor);

/// Returns \p poly translated by (dx, dy).
Polygon Translate(const Polygon& poly, double dx, double dy);

/// Returns \p poly scaled anisotropically by (sx, sy) about \p anchor and
/// then rotated by \p angle radians about it. Used to derive elongated
/// "stringy" shapes (rivers, coastal strips) whose MBRs are mostly empty —
/// the configuration that makes raster filters shine over MBR tests.
Polygon AffineAbout(const Polygon& poly, const Point& anchor, double sx,
                    double sy, double angle);

}  // namespace stj
