#include "src/datasets/buildings.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace stj {

namespace {

// Footprint outline centred at the origin, before rotation/translation.
std::vector<Point> MakeFootprint(Rng* rng, double w, double h, bool l_shape) {
  if (!l_shape) {
    return {Point{-w / 2, -h / 2}, Point{w / 2, -h / 2}, Point{w / 2, h / 2},
            Point{-w / 2, h / 2}};
  }
  // L-shape: a rectangle with one quadrant notched out.
  const double notch_w = w * rng->Uniform(0.3, 0.6);
  const double notch_h = h * rng->Uniform(0.3, 0.6);
  return {Point{-w / 2, -h / 2},
          Point{w / 2, -h / 2},
          Point{w / 2, h / 2 - notch_h},
          Point{w / 2 - notch_w, h / 2 - notch_h},
          Point{w / 2 - notch_w, h / 2},
          Point{-w / 2, h / 2}};
}

}  // namespace

std::vector<Polygon> MakeBuildings(Rng* rng, const BuildingParams& params) {
  std::vector<Point> centres;
  centres.reserve(params.clusters);
  for (size_t c = 0; c < std::max<size_t>(1, params.clusters); ++c) {
    centres.push_back(Point{
        rng->Uniform(params.region.min.x, params.region.max.x),
        rng->Uniform(params.region.min.y, params.region.max.y)});
  }
  const double spread =
      params.cluster_spread * std::min(params.region.Width(),
                                       params.region.Height());

  std::vector<Polygon> out;
  out.reserve(params.count);
  for (size_t i = 0; i < params.count; ++i) {
    const Point& centre = centres[rng->NextBounded(centres.size())];
    const Point pos{centre.x + rng->Normal() * spread,
                    centre.y + rng->Normal() * spread};
    const double w = rng->LogUniform(params.min_size, params.max_size);
    const double h = w * rng->Uniform(0.5, 2.0);
    std::vector<Point> footprint =
        MakeFootprint(rng, w, h, rng->Bernoulli(params.l_shape_probability));
    double cos_a = 1.0;
    double sin_a = 0.0;
    if (rng->Bernoulli(params.rotation_probability)) {
      const double angle = rng->Uniform(0.0, std::numbers::pi / 2);
      cos_a = std::cos(angle);
      sin_a = std::sin(angle);
    }
    for (Point& p : footprint) {
      const double x = p.x * cos_a - p.y * sin_a + pos.x;
      const double y = p.x * sin_a + p.y * cos_a + pos.y;
      p = Point{x, y};
    }
    out.emplace_back(Ring(std::move(footprint)));
  }
  return out;
}

}  // namespace stj
