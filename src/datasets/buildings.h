#pragma once

#include <vector>

#include "src/geometry/polygon.h"
#include "src/util/rng.h"

namespace stj {

/// Parameters for clustered building footprints — the synthetic stand-in for
/// the OSM building datasets (tiny, simple, heavily clustered polygons).
struct BuildingParams {
  Box region{Point{0.0, 0.0}, Point{100.0, 100.0}};
  size_t count = 1000;
  /// Footprint edge lengths are drawn log-uniformly from this range.
  double min_size = 0.01;
  double max_size = 0.08;
  /// Buildings cluster around this many town centres.
  size_t clusters = 20;
  /// Standard deviation of the building offset from its cluster centre,
  /// as a fraction of the region's smaller dimension.
  double cluster_spread = 0.02;
  /// Probability of an L-shaped footprint instead of a rectangle.
  double l_shape_probability = 0.3;
  /// Probability of a rotated footprint (arbitrary orientation).
  double rotation_probability = 0.5;
};

/// Generates building footprint polygons (4 or 6 vertices each).
std::vector<Polygon> MakeBuildings(Rng* rng, const BuildingParams& params);

}  // namespace stj
