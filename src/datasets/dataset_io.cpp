#include "src/datasets/dataset_io.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>

#include "src/geometry/validate.h"
#include "src/geometry/wkt.h"

namespace stj {

namespace {

void RecordIssue(const LoadOptions& options, LoadReport* report, uint64_t line,
                 LineIssue::Action action, std::string reason) {
  if (report == nullptr) return;
  if (report->issues.size() < options.max_issues) {
    report->issues.push_back(LineIssue{line, action, std::move(reason)});
  } else {
    ++report->issues_dropped;
  }
}

}  // namespace

bool SaveWktDataset(const std::string& path, const Dataset& dataset) {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  out << "# stjoin dataset: " << dataset.name << " — " << dataset.description
      << "\n";
  for (const SpatialObject& object : dataset.objects) {
    out << ToWkt(object.geometry) << "\n";
  }
  out.flush();
  return out.good();
}

Status LoadWktDataset(const std::string& path, const std::string& name,
                      const LoadOptions& options, Dataset* out,
                      LoadReport* report) {
  out->objects.clear();
  out->name = name;
  if (report != nullptr) *report = LoadReport{};
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open dataset file").WithFile(path);
  }
  const bool permissive = options.mode == LoadMode::kPermissive;
  std::string line;
  uint64_t line_number = 0;
  uint32_t id = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    if (report != nullptr) ++report->lines;

    Result<Polygon> polygon = ParseWktPolygon(line);
    if (!polygon.has_value()) {
      Status error = polygon.status();
      error.WithFile(path).WithLine(line_number);
      if (!permissive) {
        RecordIssue(options, report, line_number, LineIssue::Action::kRejected,
                    error.message());
        out->objects.clear();
        return error;
      }
      if (report != nullptr) ++report->skipped;
      RecordIssue(options, report, line_number, LineIssue::Action::kSkipped,
                  error.message());
      continue;
    }

    // Structural soundness: strict mode accepts whatever parses (validation
    // is opt-in below); permissive mode repairs what it can and skips the
    // rest so one mangled row never discards the dataset.
    bool was_repaired = false;
    std::string repairs;
    if (permissive) {
      Polygon repaired;
      switch (RepairPolygon(*polygon, &repaired, &repairs)) {
        case RepairOutcome::kUnchanged:
          break;
        case RepairOutcome::kRepaired:
          *polygon = std::move(repaired);
          was_repaired = true;
          break;
        case RepairOutcome::kUnrepairable:
          if (report != nullptr) ++report->skipped;
          RecordIssue(options, report, line_number,
                      LineIssue::Action::kSkipped,
                      "degenerate outer ring (fewer than 3 distinct vertices "
                      "or zero area)");
          continue;
      }
    }

    if (options.validate) {
      const ValidationResult validity = ValidatePolygon(*polygon);
      if (!validity.valid) {
        Status error = Status::InvalidArgument("invalid polygon: " +
                                               validity.reason)
                           .WithFile(path)
                           .WithLine(line_number);
        if (!permissive) {
          out->objects.clear();
          return error;
        }
        if (report != nullptr) ++report->skipped;
        RecordIssue(options, report, line_number, LineIssue::Action::kSkipped,
                    error.message());
        continue;
      }
    }

    if (report != nullptr) {
      if (was_repaired) {
        ++report->repaired;
        RecordIssue(options, report, line_number, LineIssue::Action::kRepaired,
                    repairs);
      } else {
        ++report->accepted;
      }
    }
    out->objects.push_back(SpatialObject{id++, std::move(*polygon)});
  }
  if (in.bad()) {
    out->objects.clear();
    return Status::IoError("read error").WithFile(path).WithLine(line_number);
  }
  return Status::Ok();
}

bool LoadWktDataset(const std::string& path, const std::string& name,
                    Dataset* out) {
  return LoadWktDataset(path, name, LoadOptions{}, out).ok();
}

}  // namespace stj
