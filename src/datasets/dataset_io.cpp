#include "src/datasets/dataset_io.h"

#include <cstdio>
#include <fstream>
#include <string>

#include "src/geometry/wkt.h"

namespace stj {

bool SaveWktDataset(const std::string& path, const Dataset& dataset) {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  out << "# stjoin dataset: " << dataset.name << " — " << dataset.description
      << "\n";
  for (const SpatialObject& object : dataset.objects) {
    out << ToWkt(object.geometry) << "\n";
  }
  out.flush();
  return out.good();
}

bool LoadWktDataset(const std::string& path, const std::string& name,
                    Dataset* out) {
  out->objects.clear();
  out->name = name;
  std::ifstream in(path);
  if (!in.is_open()) return false;
  std::string line;
  uint32_t id = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto polygon = ParseWktPolygon(line);
    if (!polygon.has_value()) {
      out->objects.clear();
      return false;
    }
    out->objects.push_back(SpatialObject{id++, std::move(*polygon)});
  }
  return true;
}

}  // namespace stj
