#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/datasets/scenarios.h"
#include "src/util/status.h"

namespace stj {

/// Plain-text dataset persistence: one WKT POLYGON per line. This is the
/// interchange format the paper's artifact uses for its TIGER/OSM inputs;
/// it lets externally produced polygon data flow through the pipeline and
/// makes the synthetic datasets inspectable with standard GIS tooling.

/// Writes every object of \p dataset to \p path, one WKT polygon per line.
/// Returns false on I/O error.
bool SaveWktDataset(const std::string& path, const Dataset& dataset);

/// How LoadWktDataset reacts to lines that fail to parse or validate.
enum class LoadMode : uint8_t {
  /// The whole load fails on the first bad line; the Status names the file,
  /// line number, and byte offset of the problem.
  kStrict,
  /// Bad lines are repaired when possible (RepairPolygon) and skipped
  /// otherwise; the LoadReport records every decision. Real-world polygon
  /// feeds (TIGER/OSM extracts) routinely contain a few mangled rows, and
  /// one bad row must not discard millions of good ones.
  kPermissive,
};

struct LoadOptions {
  LoadMode mode = LoadMode::kStrict;
  /// Additionally run ValidatePolygon (O(n^2) self-intersection check) on
  /// every parsed polygon. Strict mode fails on an invalid polygon;
  /// permissive mode repairs or skips it. Off by default — it dominates load
  /// time on large inputs.
  bool validate = false;
  /// Cap on per-line issues retained in LoadReport::issues; counts beyond it
  /// are still tallied in the aggregate counters.
  size_t max_issues = 64;
};

/// What happened to one problematic input line.
struct LineIssue {
  enum class Action : uint8_t {
    kRejected,  ///< Strict mode: this line aborted the load.
    kRepaired,  ///< Permissive: loaded after structural repair.
    kSkipped,   ///< Permissive: dropped.
  };
  uint64_t line = 0;  ///< 1-based line number in the file.
  Action action = Action::kSkipped;
  std::string reason;
};

/// Per-load accounting: every non-comment line lands in exactly one of
/// accepted / repaired / skipped (strict loads abort instead of skipping).
struct LoadReport {
  uint64_t lines = 0;     ///< Non-comment, non-blank lines seen.
  uint64_t accepted = 0;  ///< Lines loaded verbatim.
  uint64_t repaired = 0;  ///< Lines loaded after repair (permissive only).
  uint64_t skipped = 0;   ///< Lines dropped (permissive only).
  std::vector<LineIssue> issues;  ///< First LoadOptions::max_issues issues.
  uint64_t issues_dropped = 0;    ///< Issues beyond the cap (tallied only).
};

/// Reads a WKT-per-line file into a dataset named \p name. Blank lines and
/// lines starting with '#' are skipped. Object ids are assigned in file
/// order over the lines actually loaded. On failure *out is cleared and the
/// Status carries the file, 1-based line, and byte offset of the problem.
/// \p report (optional) receives per-line accounting in either mode.
Status LoadWktDataset(const std::string& path, const std::string& name,
                      const LoadOptions& options, Dataset* out,
                      LoadReport* report = nullptr);

/// Strict-mode convenience wrapper. Returns false on I/O error or if any
/// non-comment line fails to parse; in that case *out is left cleared.
bool LoadWktDataset(const std::string& path, const std::string& name,
                    Dataset* out);

}  // namespace stj
