#pragma once

#include <string>

#include "src/datasets/scenarios.h"

namespace stj {

/// Plain-text dataset persistence: one WKT POLYGON per line. This is the
/// interchange format the paper's artifact uses for its TIGER/OSM inputs;
/// it lets externally produced polygon data flow through the pipeline and
/// makes the synthetic datasets inspectable with standard GIS tooling.

/// Writes every object of \p dataset to \p path, one WKT polygon per line.
/// Returns false on I/O error.
bool SaveWktDataset(const std::string& path, const Dataset& dataset);

/// Reads a WKT-per-line file into a dataset named \p name. Blank lines and
/// lines starting with '#' are skipped. Returns false on I/O error or if any
/// non-comment line fails to parse; in that case *out is left cleared.
bool LoadWktDataset(const std::string& path, const std::string& name,
                    Dataset* out);

}  // namespace stj
