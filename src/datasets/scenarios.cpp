#include "src/datasets/scenarios.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numbers>
#include <thread>

#include "src/datasets/blob.h"
#include "src/datasets/buildings.h"
#include "src/datasets/tessellation.h"
#include "src/geometry/point_on_surface.h"
#include "src/util/parallel_for.h"
#include "src/util/rng.h"

namespace stj {

namespace {

// All synthetic regions live in a 100x100 world; each scenario grids its own
// combined dataspace, as the paper does per data scenario.
const Box kRegion{Point{0.0, 0.0}, Point{100.0, 100.0}};

uint64_t SubSeed(uint64_t seed, std::string_view tag) {
  uint64_t h = 1469598103934665603ull ^ seed;
  for (const char c : tag) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  return h;
}

size_t Scaled(double base, double scale) {
  return static_cast<size_t>(std::max(1.0, std::round(base * scale)));
}

// A generated blob plus the placement metadata needed to nest other objects
// inside it.
struct BlobInfo {
  Polygon polygon;
  Point center;
  double safe_radius;  ///< Disc around center guaranteed inside the polygon.
  double mean_radius;
};

// Complexity-correlated blob: radius grows sublinearly with vertex count, so
// high-vertex objects are physically larger (as in OSM), which is what makes
// refinement cost grow superlinearly with complexity level (Fig. 8(b)).
// With probability `elongate_probability` the blob is stretched into a
// stringy shape (river/strip analogue) whose MBR is mostly empty — those
// produce the MBR-overlapping-but-raster-disjoint pairs the APRIL and P+C
// filters prune.
BlobInfo MakeSizedBlob(Rng* rng, const Box& region, double radius_base,
                       size_t min_vertices, size_t max_vertices,
                       double hole_probability,
                       double elongate_probability = 0.0) {
  const size_t vertices = static_cast<size_t>(rng->LogUniform(
      static_cast<double>(min_vertices), static_cast<double>(max_vertices)));
  const double radius = radius_base *
                        std::pow(static_cast<double>(vertices), 0.55) *
                        rng->Uniform(0.6, 1.6);
  BlobParams params;
  params.center = Point{rng->Uniform(region.min.x, region.max.x),
                        rng->Uniform(region.min.y, region.max.y)};
  params.mean_radius = radius;
  params.irregularity = rng->Uniform(0.25, 0.6);
  params.vertices = vertices;
  params.harmonics = static_cast<int>(rng->UniformInt(3, 7));
  params.hole_probability = hole_probability;

  BlobInfo info;
  info.polygon = MakeBlob(rng, params);
  info.center = params.center;
  info.mean_radius = radius;
  double elongation = 1.0;
  if (elongate_probability > 0.0 && rng->Bernoulli(elongate_probability)) {
    const double stretch = rng->LogUniform(2.0, 6.0);
    // Shrink the minor axis so the area stays comparable.
    info.polygon = AffineAbout(info.polygon, info.center, stretch,
                               1.0 / stretch,
                               rng->Uniform(0.0, std::numbers::pi));
    elongation = 1.0 / stretch;
    info.mean_radius = radius * stretch;
  }
  // Star-shaped: the inscribed disc is bounded below by the minimum vertex
  // radius shaved by the chord-sag factor (recomputed here from the ring).
  double min_r = radius * 10.0;
  for (const Point& p : info.polygon.Outer().Vertices()) {
    min_r = std::min(min_r, Distance(p, info.center));
  }
  info.safe_radius =
      min_r *
      std::cos(std::numbers::pi /
               static_cast<double>(info.polygon.Outer().Size())) *
      0.8 * elongation;  // anisotropic scaling shrinks the inscribed disc
  // Holes eat into the disc; keep nested placements clear of them by not
  // trusting the disc at all when holes exist.
  if (!info.polygon.Holes().empty()) info.safe_radius = 0.0;
  return info;
}

std::vector<BlobInfo> MakeParks(uint64_t seed, std::string_view tag,
                                size_t count, double radius_base,
                                size_t max_vertices) {
  Rng rng(SubSeed(seed, tag));
  std::vector<BlobInfo> parks;
  parks.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    parks.push_back(MakeSizedBlob(&rng, kRegion, radius_base, 12, max_vertices,
                                  /*hole_probability=*/0.25,
                                  /*elongate_probability=*/0.12));
  }
  return parks;
}

Dataset FromPolygons(std::string name, std::string description,
                     std::vector<Polygon> polygons) {
  Dataset dataset;
  dataset.name = std::move(name);
  dataset.description = std::move(description);
  dataset.objects.reserve(polygons.size());
  for (uint32_t i = 0; i < polygons.size(); ++i) {
    dataset.objects.push_back(SpatialObject{i, std::move(polygons[i])});
  }
  return dataset;
}

// --- Dataset builders -----------------------------------------------------

// TC (counties) and TZ (zip codes) come from one nested tessellation so that
// zips genuinely refine counties with bit-exact shared boundaries.
NestedTessellation BuildAdminTessellation(double scale, uint64_t seed) {
  Rng rng(SubSeed(seed, "TC-TZ-tessellation"));
  TessellationParams params;
  params.region = kRegion;
  const double dim_scale = std::sqrt(std::max(scale, 1e-4));
  params.cols = std::max(2u, static_cast<uint32_t>(std::lround(72 * dim_scale)));
  params.rows = params.cols;
  params.jitter = 0.3;
  // TIGER counties/zip codes are vertex-heavy (thousands of vertices); give
  // each shared chain enough intermediate points that a county ends up with
  // several hundred vertices and refinement cost is realistic.
  params.edge_points = 12;
  params.edge_wiggle = 0.1;
  return MakeNestedTessellation(&rng, params, /*block=*/6);
}

// Water areas: independent blobs, some with holes (islands).
std::vector<Polygon> BuildWaterPolygons(double scale, uint64_t seed) {
  Rng rng(SubSeed(seed, "TW"));
  const size_t count = Scaled(25000, scale);
  std::vector<Polygon> polygons;
  polygons.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    polygons.push_back(
        MakeSizedBlob(&rng, kRegion, 0.012, 8, 600, 0.15, 0.35).polygon);
  }
  return polygons;
}

// Landmarks: blobs of mixed size, plus "interlinked twin" copies of water
// areas (a lake that is also a landmark): exact copies (equals pairs),
// hole-filled copies (covers pairs), and shrunken copies (inside pairs).
Dataset BuildLandmarks(double scale, uint64_t seed) {
  Rng rng(SubSeed(seed, "TL"));
  const size_t count = Scaled(9000, scale);
  std::vector<Polygon> polygons;
  polygons.reserve(count);
  const size_t twins = std::max<size_t>(3, count / 60);
  std::vector<Polygon> water = BuildWaterPolygons(scale, seed);
  for (size_t i = 0; i < twins && i < water.size(); ++i) {
    const size_t pick = rng.NextBounded(water.size());
    const Polygon& source = water[pick];
    switch (i % 3) {
      case 0:
        polygons.push_back(source);  // equals twin
        break;
      case 1:
        polygons.push_back(FillHoles(source));  // covers twin (if holes)
        break;
      default: {
        Point anchor;
        if (PointOnSurface(source, &anchor)) {
          polygons.push_back(ScaleAbout(source, anchor, 0.55));  // inside twin
        } else {
          polygons.push_back(source);
        }
        break;
      }
    }
  }
  while (polygons.size() < count) {
    polygons.push_back(
        MakeSizedBlob(&rng, kRegion, 0.02, 8, 400, 0.1, 0.2).polygon);
  }
  return FromPolygons("TL", "US landmarks (blobs + water twins)",
                      std::move(polygons));
}

// Lakes: complexity-heavy blobs coupled to the park dataset of the same
// collection: a share sits strictly inside parks, a share straddles park
// boundaries, a few fill park holes exactly (meets pairs), and a few are
// verbatim park copies (equals pairs).
Dataset BuildLakes(std::string name, std::string_view park_tag,
                   size_t base_count, size_t park_count, double park_radius,
                   size_t park_max_vertices, size_t max_vertices, double scale,
                   uint64_t seed) {
  Rng rng(SubSeed(seed, name));
  const std::vector<BlobInfo> parks =
      MakeParks(seed, park_tag, Scaled(static_cast<double>(park_count), scale),
                park_radius, park_max_vertices);
  const size_t count = Scaled(static_cast<double>(base_count), scale);
  std::vector<Polygon> polygons;
  polygons.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const double mix = rng.NextDouble();
    if (mix < 0.25 && !parks.empty()) {
      // Strictly inside a park: fit the lake into the park's safe disc.
      const BlobInfo& park = parks[rng.NextBounded(parks.size())];
      if (park.safe_radius > 1e-4) {
        const size_t vertices =
            static_cast<size_t>(rng.LogUniform(8, static_cast<double>(max_vertices)));
        BlobParams params;
        params.vertices = vertices;
        params.irregularity = rng.Uniform(0.2, 0.5);
        params.harmonics = static_cast<int>(rng.UniformInt(3, 6));
        const double max_extent = park.safe_radius * rng.Uniform(0.3, 0.85);
        params.mean_radius = max_extent / (1.0 + params.irregularity);
        const double slack = park.safe_radius - max_extent;
        const double angle = rng.Uniform(0.0, 2.0 * std::numbers::pi);
        const double dist = rng.Uniform(0.0, std::max(0.0, slack));
        params.center = Point{park.center.x + dist * std::cos(angle),
                              park.center.y + dist * std::sin(angle)};
        polygons.push_back(MakeBlob(&rng, params));
        continue;
      }
    } else if (mix < 0.35 && !parks.empty()) {
      // Centred on a park boundary vertex: guaranteed to intersect it.
      const BlobInfo& park = parks[rng.NextBounded(parks.size())];
      const Ring& ring = park.polygon.Outer();
      const Point& anchor = ring[rng.NextBounded(ring.Size())];
      BlobParams params;
      params.center = anchor;
      params.vertices = static_cast<size_t>(
          rng.LogUniform(8, static_cast<double>(max_vertices)));
      params.irregularity = rng.Uniform(0.2, 0.5);
      params.harmonics = static_cast<int>(rng.UniformInt(3, 6));
      params.mean_radius = park.mean_radius * rng.Uniform(0.15, 0.6);
      polygons.push_back(MakeBlob(&rng, params));
      continue;
    } else if (mix < 0.37 && !parks.empty()) {
      // Fill a park hole exactly: lake meets park along the full hole ring.
      const BlobInfo& park = parks[rng.NextBounded(parks.size())];
      if (!park.polygon.Holes().empty()) {
        const Ring& hole =
            park.polygon.Holes()[rng.NextBounded(park.polygon.Holes().size())];
        polygons.push_back(Polygon(hole));  // winding normalised by Polygon
        continue;
      }
    } else if (mix < 0.38 && !parks.empty()) {
      // Verbatim park copy: an equals pair for geo-interlinking.
      polygons.push_back(parks[rng.NextBounded(parks.size())].polygon);
      continue;
    } else if (mix < 0.405 && !parks.empty()) {
      // Carved park copy: the park with an extra hole punched into it. The
      // lake shares the park's entire outer boundary but covers less — a
      // covered-by pair with dimension-1 boundary contact.
      const BlobInfo& park = parks[rng.NextBounded(parks.size())];
      if (park.safe_radius > 1e-3 && park.polygon.Holes().empty()) {
        BlobParams hole_params;
        hole_params.center = park.center;
        hole_params.mean_radius = park.safe_radius * rng.Uniform(0.2, 0.4);
        hole_params.vertices = static_cast<size_t>(rng.UniformInt(8, 24));
        hole_params.irregularity = 0.25;
        Ring hole = MakeBlob(&rng, hole_params).Outer();
        polygons.push_back(
            Polygon(park.polygon.Outer(), {std::move(hole)}));
        continue;
      }
    }
    polygons.push_back(
        MakeSizedBlob(&rng, kRegion, 0.011, 8, max_vertices, 0.12, 0.3).polygon);
  }
  return FromPolygons(std::move(name), "lakes (complexity-heavy blobs)",
                      std::move(polygons));
}

Dataset BuildParksDataset(std::string name, std::string_view tag,
                          size_t base_count, double radius_base,
                          size_t max_vertices, double scale, uint64_t seed) {
  const std::vector<BlobInfo> parks = MakeParks(
      seed, tag, Scaled(static_cast<double>(base_count), scale), radius_base,
      max_vertices);
  std::vector<Polygon> polygons;
  polygons.reserve(parks.size());
  for (const BlobInfo& park : parks) polygons.push_back(park.polygon);
  return FromPolygons(std::move(name), "parks (large blobs with holes)",
                      std::move(polygons));
}

Dataset BuildBuildingsDataset(std::string name, std::string_view park_tag,
                              size_t base_count, size_t park_count,
                              double park_radius, size_t park_max_vertices,
                              size_t clusters, double scale, uint64_t seed) {
  Rng rng(SubSeed(seed, name));
  const std::vector<BlobInfo> parks =
      MakeParks(seed, park_tag, Scaled(static_cast<double>(park_count), scale),
                park_radius, park_max_vertices);
  BuildingParams params;
  params.region = kRegion;
  params.count = Scaled(static_cast<double>(base_count), scale);
  params.clusters = std::max<size_t>(4, Scaled(static_cast<double>(clusters), scale));
  params.cluster_spread = 0.012;
  params.min_size = 0.015;
  params.max_size = 0.12;
  std::vector<Polygon> polygons = MakeBuildings(&rng, params);
  // Re-anchor 60% of the clusters onto park centres: buildings in and around
  // green areas, the relation mix the OBx-OPx scenarios are about.
  // (MakeBuildings clustered around random centres; move a share of the
  // buildings near park centres instead.)
  if (!parks.empty()) {
    for (Polygon& building : polygons) {
      if (!rng.Bernoulli(0.6)) continue;
      const BlobInfo& park = parks[rng.NextBounded(parks.size())];
      const double spread = std::max(park.mean_radius * 0.7, 0.05);
      const Point target{park.center.x + rng.Normal() * spread,
                         park.center.y + rng.Normal() * spread};
      const Point current = building.Bounds().Center();
      building =
          Translate(building, target.x - current.x, target.y - current.y);
    }
  }
  return FromPolygons(std::move(name), "buildings (clustered small footprints)",
                      std::move(polygons));
}

}  // namespace

std::vector<Box> Dataset::Mbrs() const {
  std::vector<Box> mbrs;
  mbrs.reserve(objects.size());
  for (const SpatialObject& object : objects) {
    mbrs.push_back(object.geometry.Bounds());
  }
  return mbrs;
}

size_t Dataset::TotalVertices() const {
  size_t total = 0;
  for (const SpatialObject& object : objects) {
    total += object.geometry.VertexCount();
  }
  return total;
}

size_t Dataset::GeometryByteSize() const {
  size_t total = 0;
  for (const SpatialObject& object : objects) {
    total += object.geometry.VertexCount() * 2 * sizeof(double) +
             object.geometry.RingCount() * 8 + 24;
  }
  return total;
}

size_t ScenarioData::AprilByteSize(bool of_r) const {
  const std::vector<AprilApproximation>& lists = of_r ? r_april : s_april;
  size_t total = 0;
  for (const AprilApproximation& april : lists) total += april.ByteSize();
  return total;
}

const std::vector<std::string>& DatasetNames() {
  static const std::vector<std::string> kNames = {
      "TL", "TW", "TC", "TZ", "OBE", "OLE", "OPE", "OBN", "OLN", "OPN"};
  return kNames;
}

const std::vector<std::string>& ScenarioNames() {
  static const std::vector<std::string> kNames = {
      "TL-TW", "TL-TC", "TC-TZ", "OLE-OPE", "OLN-OPN", "OBE-OPE", "OBN-OPN"};
  return kNames;
}

Dataset BuildDataset(std::string_view name, double scale, uint64_t seed) {
  if (name == "TL") return BuildLandmarks(scale, seed);
  if (name == "TW") {
    return FromPolygons("TW", "US water areas (blobs with island holes)",
                        BuildWaterPolygons(scale, seed));
  }
  if (name == "TC") {
    return FromPolygons("TC", "US counties (coarse level of the nested grid)",
                        BuildAdminTessellation(scale, seed).coarse);
  }
  if (name == "TZ") {
    return FromPolygons("TZ", "US zip codes (fine level of the nested grid)",
                        BuildAdminTessellation(scale, seed).fine);
  }
  if (name == "OPE") {
    return BuildParksDataset("OPE", "OPE-parks", 9000, 0.015, 6000, scale, seed);
  }
  if (name == "OPN") {
    return BuildParksDataset("OPN", "OPN-parks", 4000, 0.018, 5000, scale, seed);
  }
  if (name == "OLE") {
    return BuildLakes("OLE", "OPE-parks", 7000, 9000, 0.015, 6000, 4000, scale,
                      seed);
  }
  if (name == "OLN") {
    return BuildLakes("OLN", "OPN-parks", 9000, 4000, 0.018, 5000, 3000, scale,
                      seed);
  }
  if (name == "OBE") {
    return BuildBuildingsDataset("OBE", "OPE-parks", 50000, 9000, 0.015, 6000,
                                 400, scale, seed);
  }
  if (name == "OBN") {
    return BuildBuildingsDataset("OBN", "OPN-parks", 20000, 4000, 0.018, 5000,
                                 200, scale, seed);
  }
  return Dataset{};
}

std::vector<AprilApproximation> BuildAprilApproximations(
    const Dataset& dataset, const RasterGrid& grid, unsigned num_threads,
    bool per_cell_oracle, ExecContext* exec) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // Pre-sized output + static chunking: worker w owns the w-th contiguous
  // object range (RunChunks contract) and writes each result at its object
  // index, so the vector is identical for every thread count. Each worker
  // constructs its own AprilBuilder because a builder's scratch buffers are
  // not shareable across threads.
  std::vector<AprilApproximation> out(dataset.objects.size());
  if (exec != nullptr) {
    // Cancellable build: pre-flag every slot unusable so records abandoned
    // by a trip read as degraded (the pipeline then refines those pairs
    // instead of filtering on empty interval lists). Build() overwrites the
    // flag for every record it completes.
    for (AprilApproximation& a : out) a.usable = false;
  }
  // Rasterising one object is the expensive work unit here, so each worker
  // checks in on every object; the builder (and its scratch) stays one per
  // chunk as before.
  internal::RunChunks(num_threads, dataset.objects.size(),
                      [&](unsigned /*worker*/, size_t begin, size_t end) {
                        const AprilBuilder builder(&grid, per_cell_oracle);
                        ExecContext::Scope scope(exec);
                        for (size_t i = begin; i < end; ++i) {
                          if (scope.CheckIn()) return;
                          out[i] = builder.Build(dataset.objects[i].geometry);
                          if (exec != nullptr &&
                              !exec->TryCharge(out[i].ByteSize())) {
                            // Budget trip: drop the record that overflowed
                            // the budget; the next check-in stops the other
                            // workers.
                            out[i] = AprilApproximation{};
                            out[i].usable = false;
                            return;
                          }
                        }
                      });
  return out;
}

ScenarioData BuildScenario(std::string_view name,
                           const ScenarioOptions& options) {
  const size_t dash = std::string_view(name).find('-');
  ScenarioData scenario;
  scenario.name = std::string(name);
  scenario.grid_order = options.grid_order;
  scenario.r = BuildDataset(name.substr(0, dash), options.scale, options.seed);
  scenario.s = BuildDataset(name.substr(dash + 1), options.scale, options.seed);

  for (const SpatialObject& object : scenario.r.objects) {
    scenario.dataspace.Expand(object.geometry.Bounds());
  }
  for (const SpatialObject& object : scenario.s.objects) {
    scenario.dataspace.Expand(object.geometry.Bounds());
  }

  if (options.build_april) {
    const RasterGrid grid(scenario.dataspace, options.grid_order);
    const auto t0 = std::chrono::steady_clock::now();
    scenario.r_april =
        BuildAprilApproximations(scenario.r, grid, options.april_threads);
    scenario.s_april =
        BuildAprilApproximations(scenario.s, grid, options.april_threads);
    scenario.preprocess_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  if (options.run_join) {
    scenario.candidates = MbrJoin::Join(scenario.r.Mbrs(), scenario.s.Mbrs());
  }
  return scenario;
}

}  // namespace stj
