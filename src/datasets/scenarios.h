#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/geometry/polygon.h"
#include "src/join/mbr_join.h"
#include "src/raster/april.h"
#include "src/raster/grid.h"
#include "src/topology/pipeline.h"
#include "src/util/exec_context.h"

namespace stj {

/// A named polygon dataset — the synthetic analogue of one of the paper's
/// ten TIGER/OSM datasets (Table 2).
struct Dataset {
  std::string name;
  std::string description;
  std::vector<SpatialObject> objects;

  /// Materialises the per-object MBRs (input to the filter-step join).
  std::vector<Box> Mbrs() const;

  size_t TotalVertices() const;

  /// Approximate serialised size of the raw polygons (16 bytes per vertex
  /// plus small per-ring/object headers) for Table 2 reporting.
  size_t GeometryByteSize() const;

  /// Size of the MBR table (4 doubles per object).
  size_t MbrByteSize() const { return objects.size() * 4 * sizeof(double); }
};

/// Everything a scenario run needs: the two datasets, their per-scenario
/// APRIL approximations, and the MBR-join candidate pairs.
struct ScenarioData {
  std::string name;  ///< e.g. "OLE-OPE"
  Dataset r;
  Dataset s;
  Box dataspace;        ///< Combined bounds both datasets were rastered on.
  uint32_t grid_order;  ///< The scenario grid is 2^order x 2^order.
  std::vector<AprilApproximation> r_april;
  std::vector<AprilApproximation> s_april;
  std::vector<CandidatePair> candidates;
  /// Wall time spent building the APRIL approximations (both datasets); the
  /// paper's preprocessing-throughput experiments report from this.
  double preprocess_seconds = 0.0;

  DatasetView RView() const { return DatasetView{&r.objects, &r_april}; }
  DatasetView SView() const { return DatasetView{&s.objects, &s_april}; }

  size_t AprilByteSize(bool of_r) const;
};

/// Knobs shared by all scenario builders.
struct ScenarioOptions {
  ScenarioOptions() {}
  /// Multiplier on all object counts (1.0 = benchmark default, use ~0.02 in
  /// unit tests). The paper's absolute dataset sizes are scaled down so the
  /// full suite runs on one core; see DESIGN.md for the substitution note.
  double scale = 1.0;
  /// log2 of the scenario grid resolution. The paper uses 16; the default 12
  /// keeps per-object cell counts comparable on the scaled-down dataspace.
  uint32_t grid_order = 12;
  uint64_t seed = 7;
  /// Skip building approximations / running the join (for callers that only
  /// need the raw polygons).
  bool build_april = true;
  bool run_join = true;
  /// Worker threads for APRIL preprocessing: 0 = hardware concurrency,
  /// 1 = serial. Results are byte-identical for every thread count.
  unsigned april_threads = 0;
};

/// The ten dataset names of Table 2 (TL, TW, TC, TZ, OBE, OLE, OPE, OBN,
/// OLN, OPN).
const std::vector<std::string>& DatasetNames();

/// The seven scenario names of Table 3 (e.g. "TL-TW", "OLE-OPE").
const std::vector<std::string>& ScenarioNames();

/// Builds one dataset by name. Deterministic in (name, scale, seed);
/// datasets that are semantically coupled (TZ refines TC; OLE lakes sit in
/// OPE parks; OBx buildings cluster near OPx parks) derive the partner's
/// geometry from the same sub-seed so the coupling is consistent with the
/// partner dataset built separately.
Dataset BuildDataset(std::string_view name, double scale, uint64_t seed);

/// Builds a scenario: both datasets, the per-scenario raster grid and APRIL
/// approximations, and the MBR-join candidates.
ScenarioData BuildScenario(std::string_view name,
                           const ScenarioOptions& options = ScenarioOptions());

/// Builds APRIL approximations for every object of \p dataset on \p grid,
/// fanning the objects out over \p num_threads workers (0 = hardware
/// concurrency, 1 = serial). Each worker owns its own AprilBuilder — and so
/// its own rasterizer and merge scratch — and writes results index-aligned
/// into a pre-sized output, so the returned vector is byte-identical
/// regardless of thread count. \p per_cell_oracle selects the per-cell
/// construction path (differential testing and the build benchmark).
///
/// \p exec (optional) makes the build cancellable: workers check in once
/// per rasterised object and charge each record's interval payload against
/// the soft memory budget. On a trip the vector keeps every record built
/// before the cut and flags the unbuilt remainder usable=false — exactly
/// the shape of a degraded APRIL load, so a join over the partial build
/// stays exact via refinement fallback. Consult exec->StopRequested() /
/// ToStatus() to distinguish a partial build from a complete one.
std::vector<AprilApproximation> BuildAprilApproximations(
    const Dataset& dataset, const RasterGrid& grid, unsigned num_threads = 1,
    bool per_cell_oracle = false, ExecContext* exec = nullptr);

}  // namespace stj
