#include "src/datasets/tessellation.h"

#include <algorithm>
#include <cmath>

namespace stj {

namespace {

// A polyline shared by the two cells adjacent to one grid edge. Stored once
// and spliced into every polygon that borders it, so shared boundaries are
// bit-exact.
using Chain = std::vector<Point>;

// Appends chain to out, excluding its first point (assumed already present),
// in forward or reverse order.
void AppendChain(const Chain& chain, bool forward, std::vector<Point>* out) {
  if (forward) {
    for (size_t i = 1; i < chain.size(); ++i) out->push_back(chain[i]);
  } else {
    for (size_t i = chain.size() - 1; i-- > 0;) out->push_back(chain[i]);
  }
}

Chain MakeChain(Rng* rng, const Point& a, const Point& b, uint32_t edge_points,
                double wiggle_amplitude) {
  Chain chain;
  chain.reserve(edge_points + 2);
  chain.push_back(a);
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double len = std::sqrt(dx * dx + dy * dy);
  const double nx = len > 0 ? -dy / len : 0.0;
  const double ny = len > 0 ? dx / len : 0.0;
  for (uint32_t i = 1; i <= edge_points; ++i) {
    // Strictly increasing parameters keep the chain monotone along the edge,
    // so moderate wiggle cannot make it self-cross.
    const double t =
        (static_cast<double>(i) + rng->Uniform(-0.3, 0.3)) /
        static_cast<double>(edge_points + 1);
    // Taper the wiggle toward the endpoints so chains leaving the same
    // corner cannot cross each other near it.
    const double taper = 4.0 * t * (1.0 - t);
    const double w = rng->Uniform(-wiggle_amplitude, wiggle_amplitude) * taper;
    chain.push_back(Point{a.x + t * dx + w * nx, a.y + t * dy + w * ny});
  }
  chain.push_back(b);
  return chain;
}

// The jittered corner grid plus the shared horizontal/vertical edge chains.
struct ChainGrid {
  uint32_t cols = 0;
  uint32_t rows = 0;
  std::vector<Point> corners;     // (cols+1) x (rows+1)
  std::vector<Chain> horizontal;  // cols x (rows+1): (cx,cy)->(cx+1,cy)
  std::vector<Chain> vertical;    // (cols+1) x rows: (cx,cy)->(cx,cy+1)

  const Point& Corner(uint32_t cx, uint32_t cy) const {
    return corners[static_cast<size_t>(cy) * (cols + 1) + cx];
  }
  const Chain& H(uint32_t cx, uint32_t cy) const {
    return horizontal[static_cast<size_t>(cy) * cols + cx];
  }
  const Chain& V(uint32_t cx, uint32_t cy) const {
    return vertical[static_cast<size_t>(cy) * (cols + 1) + cx];
  }
};

ChainGrid BuildChainGrid(Rng* rng, const TessellationParams& params) {
  ChainGrid grid;
  grid.cols = std::max(1u, params.cols);
  grid.rows = std::max(1u, params.rows);
  const double cell_w = params.region.Width() / grid.cols;
  const double cell_h = params.region.Height() / grid.rows;
  const double jitter = std::clamp(params.jitter, 0.0, 0.42);
  // Jitter plus wiggle must stay below half a cell, or opposite boundaries
  // of a cell could meet.
  const double wiggle = std::clamp(params.edge_wiggle, 0.0, 0.46 - jitter) *
                        std::min(cell_w, cell_h);

  grid.corners.resize((grid.cols + 1) * static_cast<size_t>(grid.rows + 1));
  for (uint32_t cy = 0; cy <= grid.rows; ++cy) {
    for (uint32_t cx = 0; cx <= grid.cols; ++cx) {
      const double jx = rng->Uniform(-jitter, jitter) * cell_w;
      const double jy = rng->Uniform(-jitter, jitter) * cell_h;
      grid.corners[static_cast<size_t>(cy) * (grid.cols + 1) + cx] =
          Point{params.region.min.x + cx * cell_w + jx,
                params.region.min.y + cy * cell_h + jy};
    }
  }
  grid.horizontal.resize(static_cast<size_t>(grid.cols) * (grid.rows + 1));
  for (uint32_t cy = 0; cy <= grid.rows; ++cy) {
    for (uint32_t cx = 0; cx < grid.cols; ++cx) {
      grid.horizontal[static_cast<size_t>(cy) * grid.cols + cx] = MakeChain(
          rng, grid.Corner(cx, cy), grid.Corner(cx + 1, cy),
          params.edge_points, wiggle);
    }
  }
  grid.vertical.resize(static_cast<size_t>(grid.cols + 1) * grid.rows);
  for (uint32_t cy = 0; cy < grid.rows; ++cy) {
    for (uint32_t cx = 0; cx <= grid.cols; ++cx) {
      grid.vertical[static_cast<size_t>(cy) * (grid.cols + 1) + cx] =
          MakeChain(rng, grid.Corner(cx, cy), grid.Corner(cx, cy + 1),
                    params.edge_points, wiggle);
    }
  }
  return grid;
}

// Builds the counter-clockwise boundary of the rectangle of fine cells
// [cx0, cx1) x [cy0, cy1) from the grid's shared chains.
Polygon BlockPolygon(const ChainGrid& grid, uint32_t cx0, uint32_t cx1,
                     uint32_t cy0, uint32_t cy1) {
  std::vector<Point> boundary;
  boundary.push_back(grid.Corner(cx0, cy0));
  for (uint32_t cx = cx0; cx < cx1; ++cx) {
    AppendChain(grid.H(cx, cy0), true, &boundary);
  }
  for (uint32_t cy = cy0; cy < cy1; ++cy) {
    AppendChain(grid.V(cx1, cy), true, &boundary);
  }
  for (uint32_t cx = cx1; cx-- > cx0;) {
    AppendChain(grid.H(cx, cy1), false, &boundary);
  }
  for (uint32_t cy = cy1; cy-- > cy0;) {
    AppendChain(grid.V(cx0, cy), false, &boundary);
  }
  boundary.pop_back();  // Ring closes implicitly.
  return Polygon(Ring(std::move(boundary)));
}

}  // namespace

std::vector<Polygon> MakeTessellation(Rng* rng,
                                      const TessellationParams& params) {
  const ChainGrid grid = BuildChainGrid(rng, params);
  std::vector<Polygon> cells;
  cells.reserve(static_cast<size_t>(grid.cols) * grid.rows);
  for (uint32_t cy = 0; cy < grid.rows; ++cy) {
    for (uint32_t cx = 0; cx < grid.cols; ++cx) {
      cells.push_back(BlockPolygon(grid, cx, cx + 1, cy, cy + 1));
    }
  }
  return cells;
}

NestedTessellation MakeNestedTessellation(Rng* rng,
                                          const TessellationParams& params,
                                          uint32_t block) {
  const ChainGrid grid = BuildChainGrid(rng, params);
  NestedTessellation out;
  out.fine.reserve(static_cast<size_t>(grid.cols) * grid.rows);
  for (uint32_t cy = 0; cy < grid.rows; ++cy) {
    for (uint32_t cx = 0; cx < grid.cols; ++cx) {
      out.fine.push_back(BlockPolygon(grid, cx, cx + 1, cy, cy + 1));
    }
  }
  block = std::max(1u, block);
  const uint32_t coarse_cols = std::max(1u, grid.cols / block);
  const uint32_t coarse_rows = std::max(1u, grid.rows / block);
  out.coarse.reserve(static_cast<size_t>(coarse_cols) * coarse_rows);
  for (uint32_t by = 0; by < coarse_rows; ++by) {
    for (uint32_t bx = 0; bx < coarse_cols; ++bx) {
      const uint32_t cx0 = bx * block;
      const uint32_t cy0 = by * block;
      // The last block absorbs any remainder columns/rows.
      const uint32_t cx1 =
          (bx + 1 == coarse_cols) ? grid.cols : (bx + 1) * block;
      const uint32_t cy1 =
          (by + 1 == coarse_rows) ? grid.rows : (by + 1) * block;
      out.coarse.push_back(BlockPolygon(grid, cx0, cx1, cy0, cy1));
    }
  }
  return out;
}

}  // namespace stj
