#pragma once

#include <vector>

#include "src/geometry/polygon.h"
#include "src/util/rng.h"

namespace stj {

/// Parameters for a perturbed-grid tessellation — the synthetic stand-in for
/// administrative area datasets (US counties, zip codes).
///
/// The region is divided into cols x rows cells; every grid corner is
/// jittered and every grid edge becomes a wiggly polyline that the two
/// adjacent cells share *vertex-for-vertex*. Shared boundaries are therefore
/// bit-exact, which is what produces genuine `meets` relations (dimension-1
/// boundary intersections) — the configuration DE-9IM implementations most
/// often get wrong and the reason the relate engine uses exact predicates.
struct TessellationParams {
  Box region{Point{0.0, 0.0}, Point{100.0, 100.0}};
  uint32_t cols = 10;
  uint32_t rows = 10;
  /// Corner jitter as a fraction of the cell size, in [0, 0.42).
  double jitter = 0.3;
  /// Intermediate vertices per shared edge (controls vertex counts).
  uint32_t edge_points = 6;
  /// Lateral wiggle of intermediate edge vertices (fraction of cell size).
  double edge_wiggle = 0.1;
};

/// Generates the cols*rows tessellation polygons in row-major order.
std::vector<Polygon> MakeTessellation(Rng* rng,
                                      const TessellationParams& params);

/// A two-level tessellation: `fine` cells (zip-code analogue) and `coarse`
/// cells (county analogue), where each coarse cell is the union of a
/// block x block group of fine cells and its boundary reuses the fine cells'
/// boundary chains verbatim. Every fine cell is therefore covered by (rim
/// cells, boundary shared) or inside (interior cells) exactly one coarse
/// cell, and neighbouring cells of either level meet along shared chains —
/// the full mix of relations the TC-TZ scenario needs.
struct NestedTessellation {
  std::vector<Polygon> fine;
  std::vector<Polygon> coarse;
};

/// Generates a nested tessellation: the fine grid follows \p params; the
/// coarse level groups fine cells into block x block super-cells (cols and
/// rows should be divisible by \p block; a remainder joins the last block).
NestedTessellation MakeNestedTessellation(Rng* rng,
                                          const TessellationParams& params,
                                          uint32_t block);

}  // namespace stj
