#include "src/datasets/workload.h"

#include "src/util/stats.h"

namespace stj {

uint64_t PairComplexity(const ScenarioData& scenario,
                        const CandidatePair& pair) {
  return scenario.r.objects[pair.r_idx].geometry.VertexCount() +
         scenario.s.objects[pair.s_idx].geometry.VertexCount();
}

ComplexityLevels GroupByComplexity(const ScenarioData& scenario,
                                   size_t levels) {
  ComplexityLevels out;
  if (scenario.candidates.empty() || levels == 0) return out;
  std::vector<uint64_t> complexities;
  complexities.reserve(scenario.candidates.size());
  for (const CandidatePair& pair : scenario.candidates) {
    complexities.push_back(PairComplexity(scenario, pair));
  }
  out.ranges = EquiCountBuckets(complexities, levels);
  out.pairs.resize(out.ranges.size());
  for (size_t i = 0; i < scenario.candidates.size(); ++i) {
    const uint64_t c = complexities[i];
    // Ranges are few (10): a linear scan beats a binary search setup here.
    for (size_t level = 0; level < out.ranges.size(); ++level) {
      if (c >= out.ranges[level].first && c <= out.ranges[level].second) {
        out.pairs[level].push_back(scenario.candidates[i]);
        break;
      }
    }
  }
  return out;
}

}  // namespace stj
