#pragma once

#include <cstdint>
#include <vector>

#include "src/datasets/scenarios.h"

namespace stj {

/// Candidate pairs of one scenario grouped into equi-count complexity levels
/// (Table 4): level k holds pairs whose summed vertex count falls in
/// ranges[k]; all levels hold roughly the same number of pairs.
struct ComplexityLevels {
  std::vector<std::pair<uint64_t, uint64_t>> ranges;  ///< Inclusive [lo, hi].
  std::vector<std::vector<CandidatePair>> pairs;      ///< Pairs per level.
};

/// Sum of the two polygons' vertex counts — the paper's pair-complexity
/// measure (Sec. 4.3).
uint64_t PairComplexity(const ScenarioData& scenario, const CandidatePair& pair);

/// Splits the scenario's candidate pairs into \p levels equi-count groups of
/// increasing complexity, mirroring Table 4.
ComplexityLevels GroupByComplexity(const ScenarioData& scenario, size_t levels);

}  // namespace stj
