#include "src/de9im/boundary_arrangement.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "src/geometry/box.h"
#include "src/geometry/segment.h"

namespace stj::de9im {

namespace {

// Normalised parameter of a point known to lie on segment [a, b], measured
// along the dominant axis. Exact for the endpoints; monotone in between.
double ParamOnSegment(const Point& p, const Point& a, const Point& b) {
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  if (std::abs(dx) >= std::abs(dy)) {
    return dx == 0.0 ? 0.0 : (p.x - a.x) / dx;
  }
  return (p.y - a.y) / dy;
}

// Per-edge split bookkeeping accumulated during intersection discovery.
struct EdgeSplits {
  std::vector<std::pair<double, Point>> cuts;            // t in (0,1)
  std::vector<std::pair<double, double>> shared_ranges;  // collinear overlaps
};

// All edges of a polygon flattened into one array.
struct EdgeSoup {
  std::vector<Segment> edges;
  std::vector<EdgeSplits> splits;

  explicit EdgeSoup(const Polygon& poly) {
    edges.reserve(poly.VertexCount());
    poly.ForEachEdge([this](const Segment& e) { edges.push_back(e); });
    splits.resize(edges.size());
  }
};

// Y-slab index over an edge soup, for finding candidate intersecting edges.
class EdgeSlabIndex {
 public:
  explicit EdgeSlabIndex(const EdgeSoup& soup, const Box& bounds)
      : y_lo_(bounds.min.y) {
    const size_t n = soup.edges.size();
    num_slabs_ = std::max<size_t>(1, n / 4);
    const double height = bounds.Height();
    inv_height_ = (height > 0.0 && num_slabs_ > 1)
                      ? static_cast<double>(num_slabs_) / height
                      : 0.0;
    if (inv_height_ == 0.0) num_slabs_ = 1;
    slabs_.resize(num_slabs_);
    for (size_t i = 0; i < n; ++i) {
      const Segment& e = soup.edges[i];
      const size_t lo = SlabOf(std::min(e.a.y, e.b.y));
      const size_t hi = SlabOf(std::max(e.a.y, e.b.y));
      for (size_t s = lo; s <= hi; ++s) slabs_[s].push_back(static_cast<uint32_t>(i));
    }
    visited_.assign(n, 0);
  }

  // Invokes fn(edge_index) once per edge whose slab range overlaps [ylo, yhi].
  template <typename Fn>
  void Probe(double ylo, double yhi, Fn&& fn) {
    ++stamp_;
    const size_t lo = SlabOf(ylo);
    const size_t hi = SlabOf(yhi);
    for (size_t s = lo; s <= hi; ++s) {
      for (const uint32_t idx : slabs_[s]) {
        if (visited_[idx] == stamp_) continue;
        visited_[idx] = stamp_;
        fn(idx);
      }
    }
  }

 private:
  size_t SlabOf(double y) const {
    if (num_slabs_ == 1) return 0;
    const double t = (y - y_lo_) * inv_height_;
    if (t <= 0.0) return 0;
    return std::min(static_cast<size_t>(t), num_slabs_ - 1);
  }

  double y_lo_;
  double inv_height_ = 0.0;
  size_t num_slabs_ = 1;
  std::vector<std::vector<uint32_t>> slabs_;
  std::vector<uint32_t> visited_;
  uint32_t stamp_ = 0;
};

void RecordCut(EdgeSplits* splits, double t, const Point& p) {
  if (t > 0.0 && t < 1.0) splits->cuts.emplace_back(t, p);
}

void RecordShared(EdgeSplits* splits, double t0, const Point& p0, double t1,
                  const Point& p1) {
  if (t0 > t1) {
    RecordShared(splits, t1, p1, t0, p0);
    return;
  }
  RecordCut(splits, t0, p0);
  RecordCut(splits, t1, p1);
  splits->shared_ranges.emplace_back(t0, t1);
}

// Emits the sub-edge midpoints of one soup into `side`.
void EmitSide(EdgeSoup* soup, ArrangementSide* side) {
  std::vector<std::pair<double, Point>> cuts;
  for (size_t i = 0; i < soup->edges.size(); ++i) {
    const Segment& e = soup->edges[i];
    EdgeSplits& sp = soup->splits[i];
    if (sp.cuts.empty() && sp.shared_ranges.empty()) {
      side->midpoints.push_back(e.Mid());
      continue;
    }
    cuts = std::move(sp.cuts);
    std::sort(cuts.begin(), cuts.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    cuts.erase(std::unique(cuts.begin(), cuts.end(),
                           [](const auto& a, const auto& b) {
                             return a.first == b.first;
                           }),
               cuts.end());
    // Merge collinear shared ranges.
    std::sort(sp.shared_ranges.begin(), sp.shared_ranges.end());
    std::vector<std::pair<double, double>> merged;
    for (const auto& range : sp.shared_ranges) {
      if (!merged.empty() && range.first <= merged.back().second) {
        merged.back().second = std::max(merged.back().second, range.second);
      } else {
        merged.push_back(range);
      }
    }
    if (!merged.empty()) side->has_shared_piece = true;

    auto in_shared = [&merged](double t) {
      for (const auto& range : merged) {
        if (t >= range.first && t <= range.second) return true;
      }
      return false;
    };

    // Walk consecutive split points (including the edge endpoints).
    double prev_t = 0.0;
    Point prev_p = e.a;
    auto emit_piece = [&](double next_t, const Point& next_p) {
      if (next_t <= prev_t) {
        prev_t = next_t;
        prev_p = next_p;
        return;
      }
      const double mid_t = 0.5 * (prev_t + next_t);
      if (!in_shared(mid_t)) {
        side->midpoints.push_back(Midpoint(prev_p, next_p));
      }
      prev_t = next_t;
      prev_p = next_p;
    };
    for (const auto& [t, p] : cuts) emit_piece(t, p);
    emit_piece(1.0, e.b);
  }
}

}  // namespace

Arrangement ComputeArrangement(const Polygon& r, const Polygon& s) {
  Arrangement out;
  EdgeSoup r_soup(r);
  EdgeSoup s_soup(s);

  const Box overlap = r.Bounds().Intersection(s.Bounds());
  if (!overlap.IsEmpty()) {
    EdgeSlabIndex s_index(s_soup, s.Bounds());
    for (size_t i = 0; i < r_soup.edges.size(); ++i) {
      const Segment& re = r_soup.edges[i];
      const Box re_box = re.Bounds();
      if (!re_box.Intersects(s.Bounds())) continue;
      s_index.Probe(std::min(re.a.y, re.b.y), std::max(re.a.y, re.b.y),
                    [&](uint32_t j) {
        const Segment& se = s_soup.edges[j];
        if (!re_box.Intersects(se.Bounds())) return;
        const SegIntersection isect = IntersectSegments(re.a, re.b, se.a, se.b);
        if (isect.kind == SegIntersectKind::kNone) return;
        out.boundaries_touch = true;
        if (isect.kind == SegIntersectKind::kPoint) {
          RecordCut(&r_soup.splits[i], ParamOnSegment(isect.p0, re.a, re.b),
                    isect.p0);
          RecordCut(&s_soup.splits[j], ParamOnSegment(isect.p0, se.a, se.b),
                    isect.p0);
        } else {
          RecordShared(&r_soup.splits[i],
                       ParamOnSegment(isect.p0, re.a, re.b), isect.p0,
                       ParamOnSegment(isect.p1, re.a, re.b), isect.p1);
          RecordShared(&s_soup.splits[j],
                       ParamOnSegment(isect.p0, se.a, se.b), isect.p0,
                       ParamOnSegment(isect.p1, se.a, se.b), isect.p1);
        }
      });
    }
  }

  EmitSide(&r_soup, &out.r);
  EmitSide(&s_soup, &out.s);
  return out;
}

}  // namespace stj::de9im
