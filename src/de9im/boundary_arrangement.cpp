#include "src/de9im/boundary_arrangement.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "src/geometry/box.h"
#include "src/geometry/edge_slab_index.h"
#include "src/geometry/prepared_polygon.h"
#include "src/geometry/segment.h"

namespace stj::de9im {

namespace {

// Normalised parameter of a point known to lie on segment [a, b], measured
// along the dominant axis. Exact for the endpoints; monotone in between.
double ParamOnSegment(const Point& p, const Point& a, const Point& b) {
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  if (std::abs(dx) >= std::abs(dy)) {
    return dx == 0.0 ? 0.0 : (p.x - a.x) / dx;
  }
  return (p.y - a.y) / dy;
}

// Per-edge split bookkeeping accumulated during intersection discovery.
// This is the only per-pair state of the arrangement; the edge arrays and
// slab index come from the (possibly cached) PreparedPolygons.
struct EdgeSplits {
  std::vector<std::pair<double, Point>> cuts;            // t in (0,1)
  std::vector<std::pair<double, double>> shared_ranges;  // collinear overlaps
};

void RecordCut(EdgeSplits* splits, double t, const Point& p) {
  if (t > 0.0 && t < 1.0) splits->cuts.emplace_back(t, p);
}

void RecordShared(EdgeSplits* splits, double t0, const Point& p0, double t1,
                  const Point& p1) {
  if (t0 > t1) {
    RecordShared(splits, t1, p1, t0, p0);
    return;
  }
  RecordCut(splits, t0, p0);
  RecordCut(splits, t1, p1);
  splits->shared_ranges.emplace_back(t0, t1);
}

// Emits the sub-edge midpoints of one side's edges into `side`.
void EmitSide(const std::vector<Segment>& edges,
              std::vector<EdgeSplits>* splits, ArrangementSide* side) {
  std::vector<std::pair<double, Point>> cuts;
  for (size_t i = 0; i < edges.size(); ++i) {
    const Segment& e = edges[i];
    EdgeSplits& sp = (*splits)[i];
    if (sp.cuts.empty() && sp.shared_ranges.empty()) {
      side->midpoints.push_back(e.Mid());
      continue;
    }
    cuts = std::move(sp.cuts);
    std::sort(cuts.begin(), cuts.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    cuts.erase(std::unique(cuts.begin(), cuts.end(),
                           [](const auto& a, const auto& b) {
                             return a.first == b.first;
                           }),
               cuts.end());
    // Merge collinear shared ranges.
    std::sort(sp.shared_ranges.begin(), sp.shared_ranges.end());
    std::vector<std::pair<double, double>> merged;
    for (const auto& range : sp.shared_ranges) {
      if (!merged.empty() && range.first <= merged.back().second) {
        merged.back().second = std::max(merged.back().second, range.second);
      } else {
        merged.push_back(range);
      }
    }
    if (!merged.empty()) side->has_shared_piece = true;

    auto in_shared = [&merged](double t) {
      for (const auto& range : merged) {
        if (t >= range.first && t <= range.second) return true;
      }
      return false;
    };

    // Walk consecutive split points (including the edge endpoints).
    double prev_t = 0.0;
    Point prev_p = e.a;
    auto emit_piece = [&](double next_t, const Point& next_p) {
      if (next_t <= prev_t) {
        prev_t = next_t;
        prev_p = next_p;
        return;
      }
      const double mid_t = 0.5 * (prev_t + next_t);
      if (!in_shared(mid_t)) {
        side->midpoints.push_back(Midpoint(prev_p, next_p));
      }
      prev_t = next_t;
      prev_p = next_p;
    };
    for (const auto& [t, p] : cuts) emit_piece(t, p);
    emit_piece(1.0, e.b);
  }
}

}  // namespace

Arrangement ComputeArrangement(const PreparedPolygon& r,
                               const PreparedPolygon& s) {
  Arrangement out;
  const std::vector<Segment>& r_edges = r.Edges();
  const std::vector<Segment>& s_edges = s.Edges();
  std::vector<EdgeSplits> r_splits(r_edges.size());
  std::vector<EdgeSplits> s_splits(s_edges.size());

  const Box overlap = r.Bounds().Intersection(s.Bounds());
  if (!overlap.IsEmpty()) {
    const Box& s_bounds = s.Bounds();
    const EdgeSlabIndex& s_index = s.EdgeIndex();
    for (const PreparedPolygon::RingRange& ring : r.Rings()) {
      // Ring-level quick reject: a ring whose MBR misses the other polygon
      // cannot contribute intersections. Skipping it records no cuts, which
      // is exactly what probing each of its edges would have recorded, so
      // the arrangement is unchanged.
      if (!ring.bounds.Intersects(s_bounds)) continue;
      for (uint32_t i = ring.begin; i < ring.end; ++i) {
        const Segment& re = r_edges[i];
        const Box re_box = re.Bounds();
        if (!re_box.Intersects(s_bounds)) continue;
        s_index.Probe(std::min(re.a.y, re.b.y), std::max(re.a.y, re.b.y),
                      [&](uint32_t j) {
          const Segment& se = s_edges[j];
          if (!re_box.Intersects(se.Bounds())) return;
          const SegIntersection isect =
              IntersectSegments(re.a, re.b, se.a, se.b);
          if (isect.kind == SegIntersectKind::kNone) return;
          out.boundaries_touch = true;
          if (isect.kind == SegIntersectKind::kPoint) {
            RecordCut(&r_splits[i], ParamOnSegment(isect.p0, re.a, re.b),
                      isect.p0);
            RecordCut(&s_splits[j], ParamOnSegment(isect.p0, se.a, se.b),
                      isect.p0);
          } else {
            RecordShared(&r_splits[i],
                         ParamOnSegment(isect.p0, re.a, re.b), isect.p0,
                         ParamOnSegment(isect.p1, re.a, re.b), isect.p1);
            RecordShared(&s_splits[j],
                         ParamOnSegment(isect.p0, se.a, se.b), isect.p0,
                         ParamOnSegment(isect.p1, se.a, se.b), isect.p1);
          }
        });
      }
    }
  }

  EmitSide(r_edges, &r_splits, &out.r);
  EmitSide(s_edges, &s_splits, &out.s);
  return out;
}

Arrangement ComputeArrangement(const Polygon& r, const Polygon& s) {
  // One-shot prepared wrappers: components build lazily, so this costs what
  // the pre-prepared implementation cost, and both paths share one body.
  const PreparedPolygon pr(r);
  const PreparedPolygon ps(s);
  return ComputeArrangement(pr, ps);
}

}  // namespace stj::de9im
