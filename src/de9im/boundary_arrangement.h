#pragma once

#include <vector>

#include "src/geometry/point.h"
#include "src/geometry/polygon.h"

namespace stj {
class PreparedPolygon;
}

namespace stj::de9im {

/// One side's view of the mutual boundary arrangement of a polygon pair.
struct ArrangementSide {
  /// Midpoints of this polygon's boundary sub-edges after splitting at every
  /// intersection with the other polygon's boundary — excluding sub-edges
  /// that lie on collinear shared pieces (reported via has_shared_piece).
  /// In exact arithmetic each midpoint is strictly interior or strictly
  /// exterior to the other polygon, never on its boundary.
  std::vector<Point> midpoints;

  /// True when some positive-length piece of this boundary coincides with
  /// the other polygon's boundary (dimension-1 B/B intersection evidence).
  bool has_shared_piece = false;
};

/// The arrangement of two polygon boundaries against each other: the raw
/// material for DE-9IM classification.
struct Arrangement {
  ArrangementSide r;
  ArrangementSide s;

  /// True when the two boundaries share at least one point.
  bool boundaries_touch = false;
};

/// Splits every edge of \p r at its intersections with edges of \p s and
/// vice versa, using exact intersection classification. Collinear shared
/// pieces are detected explicitly (never classified via rounded midpoints),
/// which keeps shared-boundary datasets (tessellations, equal polygons)
/// robust. Cost: O((|r| + |s| + k) * slab) where k is the number of
/// boundary intersections, via a y-slab index over the edges of s.
/// Delegates through one-shot PreparedPolygons, so the result is identical
/// to the prepared overload below by construction.
Arrangement ComputeArrangement(const Polygon& r, const Polygon& s);

/// As above, consuming each side's cached edge array, per-ring MBRs, and
/// EdgeSlabIndex instead of rebuilding them — the amortised path refinement
/// takes when an object participates in many candidate pairs. Only the
/// per-pair split bookkeeping is allocated per call.
Arrangement ComputeArrangement(const PreparedPolygon& r,
                               const PreparedPolygon& s);

}  // namespace stj::de9im
