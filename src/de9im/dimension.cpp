#include "src/de9im/dimension.h"

namespace stj::de9im {

char ToChar(Dim d) {
  switch (d) {
    case Dim::kFalse: return 'F';
    case Dim::k0: return '0';
    case Dim::k1: return '1';
    case Dim::k2: return '2';
  }
  return '?';
}

bool FromChar(char c, Dim* out) {
  switch (c) {
    case 'F':
    case 'f': *out = Dim::kFalse; return true;
    case '0': *out = Dim::k0; return true;
    case '1': *out = Dim::k1; return true;
    case '2': *out = Dim::k2; return true;
    default: return false;
  }
}

}  // namespace stj::de9im
