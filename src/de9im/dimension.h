#pragma once

#include <cstdint>

namespace stj::de9im {

/// Dimension of an intersection set in the DE-9IM: F (empty), 0 (points),
/// 1 (curves), 2 (areas).
enum class Dim : int8_t {
  kFalse = -1,
  k0 = 0,
  k1 = 1,
  k2 = 2,
};

/// DE-9IM character for a dimension: 'F', '0', '1', or '2'.
char ToChar(Dim d);

/// Parses 'F'/'f' and '0'..'2'. Returns false on any other character.
bool FromChar(char c, Dim* out);

/// The larger of two dimensions (used when merging evidence).
constexpr Dim Max(Dim a, Dim b) {
  return static_cast<int8_t>(a) >= static_cast<int8_t>(b) ? a : b;
}

}  // namespace stj::de9im
