#include "src/de9im/mask.h"

namespace stj::de9im {

// The Table 1 literals must stay well-formed; a regression here is a compile
// error via consteval FromLiteral, but keep a cheap static check close to the
// parser as documentation.
static_assert(Mask::Parse("T*F**FFF*").has_value());
static_assert(!Mask::Parse("T*F").has_value());
static_assert(!Mask::Parse("T*F**F*3*").has_value());

std::string Mask::ToString() const {
  std::string out(9, '*');
  for (size_t i = 0; i < 9; ++i) {
    switch (cells_[i]) {
      case Cell::kAny: out[i] = '*'; break;
      case Cell::kTrue: out[i] = 'T'; break;
      case Cell::kFalse: out[i] = 'F'; break;
      case Cell::kDim0: out[i] = '0'; break;
      case Cell::kDim1: out[i] = '1'; break;
      case Cell::kDim2: out[i] = '2'; break;
    }
  }
  return out;
}

}  // namespace stj::de9im
