#include "src/de9im/mask.h"

#include <cstdlib>

namespace stj::de9im {

std::optional<Mask> Mask::Parse(std::string_view pattern) {
  if (pattern.size() != 9) return std::nullopt;
  Mask mask;
  for (size_t i = 0; i < 9; ++i) {
    switch (pattern[i]) {
      case '*': mask.cells_[i] = Cell::kAny; break;
      case 'T':
      case 't': mask.cells_[i] = Cell::kTrue; break;
      case 'F':
      case 'f': mask.cells_[i] = Cell::kFalse; break;
      case '0': mask.cells_[i] = Cell::kDim0; break;
      case '1': mask.cells_[i] = Cell::kDim1; break;
      case '2': mask.cells_[i] = Cell::kDim2; break;
      default: return std::nullopt;
    }
  }
  return mask;
}

Mask Mask::FromLiteral(std::string_view pattern) {
  std::optional<Mask> mask = Parse(pattern);
  if (!mask.has_value()) std::abort();  // programming error in a literal
  return *mask;
}

bool Mask::Matches(const Matrix& m) const {
  for (size_t i = 0; i < 9; ++i) {
    const Part row = static_cast<Part>(i / 3);
    const Part col = static_cast<Part>(i % 3);
    const Dim d = m.At(row, col);
    switch (cells_[i]) {
      case Cell::kAny: break;
      case Cell::kTrue:
        if (d == Dim::kFalse) return false;
        break;
      case Cell::kFalse:
        if (d != Dim::kFalse) return false;
        break;
      case Cell::kDim0:
        if (d != Dim::k0) return false;
        break;
      case Cell::kDim1:
        if (d != Dim::k1) return false;
        break;
      case Cell::kDim2:
        if (d != Dim::k2) return false;
        break;
    }
  }
  return true;
}

std::string Mask::ToString() const {
  std::string out(9, '*');
  for (size_t i = 0; i < 9; ++i) {
    switch (cells_[i]) {
      case Cell::kAny: out[i] = '*'; break;
      case Cell::kTrue: out[i] = 'T'; break;
      case Cell::kFalse: out[i] = 'F'; break;
      case Cell::kDim0: out[i] = '0'; break;
      case Cell::kDim1: out[i] = '1'; break;
      case Cell::kDim2: out[i] = '2'; break;
    }
  }
  return out;
}

}  // namespace stj::de9im
