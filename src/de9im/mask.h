#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>

#include "src/de9im/matrix.h"

namespace stj::de9im {

/// A DE-9IM mask pattern: 9 characters from {T, F, *, 0, 1, 2}.
///
/// 'T' matches any non-empty intersection (dimension 0, 1, or 2), 'F' matches
/// only empty, '*' matches anything, and a digit matches that exact
/// dimension. A relation holds when the geometry pair's matrix matches any of
/// the relation's masks (Table 1 of the paper).
class Mask {
 public:
  /// Parses a 9-character pattern; returns nullopt if any character is not in
  /// {T, F, *, 0, 1, 2} (case-insensitive for T/F).
  static std::optional<Mask> Parse(std::string_view pattern);

  /// Compile-time-friendly constructor for known-good literals; terminates on
  /// malformed input (used for the static Table 1 masks).
  static Mask FromLiteral(std::string_view pattern);

  /// True iff \p m satisfies this pattern.
  bool Matches(const Matrix& m) const;

  /// The original 9-character pattern.
  std::string ToString() const;

 private:
  enum class Cell : uint8_t { kAny, kTrue, kFalse, kDim0, kDim1, kDim2 };
  std::array<Cell, 9> cells_{};
};

}  // namespace stj::de9im
