#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>

#include "src/de9im/matrix.h"

namespace stj::de9im {

/// A DE-9IM mask pattern: 9 characters from {T, F, *, 0, 1, 2}.
///
/// 'T' matches any non-empty intersection (dimension 0, 1, or 2), 'F' matches
/// only empty, '*' matches anything, and a digit matches that exact
/// dimension. A relation holds when the geometry pair's matrix matches any of
/// the relation's masks (Table 1 of the paper).
class Mask {
 public:
  /// Parses a 9-character pattern; returns nullopt if any character is not in
  /// {T, F, *, 0, 1, 2} (case-insensitive for T/F). Usable in constant
  /// expressions.
  static constexpr std::optional<Mask> Parse(std::string_view pattern) {
    if (pattern.size() != 9) return std::nullopt;
    Mask mask;
    for (size_t i = 0; i < 9; ++i) {
      switch (pattern[i]) {
        case '*': mask.cells_[i] = Cell::kAny; break;
        case 'T':
        case 't': mask.cells_[i] = Cell::kTrue; break;
        case 'F':
        case 'f': mask.cells_[i] = Cell::kFalse; break;
        case '0': mask.cells_[i] = Cell::kDim0; break;
        case '1': mask.cells_[i] = Cell::kDim1; break;
        case '2': mask.cells_[i] = Cell::kDim2; break;
        default: return std::nullopt;
      }
    }
    return mask;
  }

  /// Compile-time-checked constructor for literals: a malformed pattern is a
  /// compile error (the throw below is unreachable at runtime because
  /// consteval forces constant evaluation), so a bad mask literal can never
  /// take down a serving process. For runtime patterns use Parse.
  static consteval Mask FromLiteral(std::string_view pattern) {
    const std::optional<Mask> mask = Parse(pattern);
    if (!mask.has_value()) {
      throw "malformed DE-9IM mask literal (need 9 chars from {T,F,*,0,1,2})";
    }
    return *mask;
  }

  /// True iff \p m satisfies this pattern. Constexpr so the compile-time
  /// model checks (model.h / model_check.cpp) can evaluate the shipped mask
  /// tables against every realizable matrix at build time.
  constexpr bool Matches(const Matrix& m) const {
    for (size_t i = 0; i < 9; ++i) {
      const Part row = static_cast<Part>(i / 3);
      const Part col = static_cast<Part>(i % 3);
      const Dim d = m.At(row, col);
      switch (cells_[i]) {
        case Cell::kAny: break;
        case Cell::kTrue:
          if (d == Dim::kFalse) return false;
          break;
        case Cell::kFalse:
          if (d != Dim::kFalse) return false;
          break;
        case Cell::kDim0:
          if (d != Dim::k0) return false;
          break;
        case Cell::kDim1:
          if (d != Dim::k1) return false;
          break;
        case Cell::kDim2:
          if (d != Dim::k2) return false;
          break;
      }
    }
    return true;
  }

  /// The original 9-character pattern.
  std::string ToString() const;

 private:
  enum class Cell : uint8_t { kAny, kTrue, kFalse, kDim0, kDim1, kDim2 };
  std::array<Cell, 9> cells_{};
};

}  // namespace stj::de9im
