#include "src/de9im/matrix.h"

namespace stj::de9im {

std::string Matrix::ToString() const {
  std::string out(9, 'F');
  for (size_t i = 0; i < 9; ++i) out[i] = ToChar(entries_[i]);
  return out;
}

std::optional<Matrix> Matrix::FromString(std::string_view code) {
  if (code.size() != 9) return std::nullopt;
  Matrix m;
  for (size_t i = 0; i < 9; ++i) {
    Dim d;
    if (!FromChar(code[i], &d)) return std::nullopt;
    m.entries_[i] = d;
  }
  return m;
}

}  // namespace stj::de9im
