#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>

#include "src/de9im/dimension.h"

namespace stj::de9im {

/// Part of a geometry, indexing DE-9IM rows (parts of r) and columns (parts
/// of s).
enum class Part : uint8_t { kInterior = 0, kBoundary = 1, kExterior = 2 };

/// The Dimensionally Extended 9-Intersection Model matrix.
///
/// Entry (row, col) is the dimension of the intersection of part `row` of
/// geometry r with part `col` of geometry s. Flattened row-major into the
/// conventional 9-character string code, e.g. "FF2FF1212" for two disjoint
/// polygons.
class Matrix {
 public:
  /// All entries F. Usable in constant expressions: the compile-time model
  /// (model.h) builds and inspects matrices entirely at compile time.
  constexpr Matrix() { entries_.fill(Dim::kFalse); }

  constexpr Dim At(Part row, Part col) const {
    return entries_[static_cast<size_t>(row) * 3 + static_cast<size_t>(col)];
  }

  constexpr void Set(Part row, Part col, Dim d) {
    entries_[static_cast<size_t>(row) * 3 + static_cast<size_t>(col)] = d;
  }

  /// Raises entry (row, col) to at least \p d (never lowers).
  constexpr void Merge(Part row, Part col, Dim d) {
    Dim& e = entries_[static_cast<size_t>(row) * 3 + static_cast<size_t>(col)];
    e = Max(e, d);
  }

  /// The 9-character string code, row-major ("T" never appears; dimensions
  /// are concrete).
  std::string ToString() const;

  /// Parses a 9-character code of {F, 0, 1, 2}.
  static std::optional<Matrix> FromString(std::string_view code);

  /// The matrix of the pair (s, r): rows and columns swapped.
  constexpr Matrix Transposed() const {
    Matrix t;
    for (size_t row = 0; row < 3; ++row) {
      for (size_t col = 0; col < 3; ++col) {
        t.entries_[col * 3 + row] = entries_[row * 3 + col];
      }
    }
    return t;
  }

  friend constexpr bool operator==(const Matrix& a, const Matrix& b) {
    return a.entries_ == b.entries_;
  }

 private:
  std::array<Dim, 9> entries_;
};

}  // namespace stj::de9im
