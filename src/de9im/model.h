#pragma once

#include "src/de9im/matrix.h"
#include "src/de9im/relation.h"
#include "src/geometry/box.h"

namespace stj::de9im {

/// Compile-time model of DE-9IM matrices for valid areal geometry pairs.
///
/// The paper's correctness rests on hand-derived tables: the Table 1 masks,
/// the Fig. 4 MBR-relationship candidate sets, and the Fig. 5/Fig. 6
/// decision sequences. This header re-derives all of them from first
/// principles — the point-set topology of two valid polygons — as constexpr
/// predicates, and model_check.cpp / topology/static_checks.cpp
/// static_assert the shipped tables against these derivations over every
/// realizable matrix. A corrupted table bit becomes a compile error instead
/// of a silently wrong join (see the tripwire in relation_masks.h).
///
/// "Realizable" means: achievable as the DE-9IM matrix of two valid
/// polygons, i.e. non-empty regular closed 2-D sets r, s in the plane, with
/// I/B/E the interior, boundary (a 1-D curve arrangement), and exterior.
/// The constraints below are each justified by a short topological argument;
/// the runtime differential test (tests/de9im/mask_consistency_test.cpp)
/// additionally checks that every matrix the RelateEngine produces on a
/// generated corpus satisfies them.

/// Dimension domains and structural constraints of a realizable matrix:
///
///  D1. II, IE, EI in {F, 2}: the intersection of an open 2-D set with an
///      open set (interior or exterior) is open, so non-empty => 2-D.
///  D2. IB, BI, BE, EB in {F, 1}: a polygon boundary is a curve arrangement;
///      its intersection with an open set is open *in the curve*, so
///      non-empty => 1-D. BB in {F, 0, 1} (boundaries can cross in points or
///      share segments). EE = 2 always (the plane minus two compact sets).
///  R1. II=2 or IE=2: I_r is non-empty, open, 2-D; it cannot be covered by
///      the 1-D set B_s, so it meets I_s or E_s.
///  R2. II=2 or EI=2: mirror of R1.
///  R3. IB=1 => II=2 and IE=2: a boundary point of s inside the open set
///      I_r has points of I_s and E_s arbitrarily close, all inside I_r.
///  R4. BI=1 => II=2 and EI=2: mirror of R3.
///  R5. IE=F => BE=F: I_r inside the closed set s means
///      closure(I_r) = r (regular) is inside s, so B_r misses E_s.
///  R6. EI=F => EB=F: mirror of R5.
///  R7. BI=1 or BB!=F or BE=1: B_r is non-empty and {I,B,E}_s partitions
///      the plane.
///  R8. IB=1 or BB!=F or EB=1: mirror of R7.
///  R9. BI=F and BE=F => BB=1: B_r inside the 1-D set B_s is the whole
///      non-empty 1-D curve B_r, so the intersection has dimension 1.
/// R10. IB=F and EB=F => BB=1: mirror of R9.
constexpr bool IsRealizablePolygonMatrix(const Matrix& m) {
  const Dim ii = m.At(Part::kInterior, Part::kInterior);
  const Dim ib = m.At(Part::kInterior, Part::kBoundary);
  const Dim ie = m.At(Part::kInterior, Part::kExterior);
  const Dim bi = m.At(Part::kBoundary, Part::kInterior);
  const Dim bb = m.At(Part::kBoundary, Part::kBoundary);
  const Dim be = m.At(Part::kBoundary, Part::kExterior);
  const Dim ei = m.At(Part::kExterior, Part::kInterior);
  const Dim eb = m.At(Part::kExterior, Part::kBoundary);
  const Dim ee = m.At(Part::kExterior, Part::kExterior);
  const Dim F = Dim::kFalse;

  // D1/D2: dimension domains.
  if (ii != F && ii != Dim::k2) return false;
  if (ie != F && ie != Dim::k2) return false;
  if (ei != F && ei != Dim::k2) return false;
  if (ib != F && ib != Dim::k1) return false;
  if (bi != F && bi != Dim::k1) return false;
  if (be != F && be != Dim::k1) return false;
  if (eb != F && eb != Dim::k1) return false;
  if (bb != F && bb != Dim::k0 && bb != Dim::k1) return false;
  if (ee != Dim::k2) return false;

  if (ii == F && ie == F) return false;                     // R1
  if (ii == F && ei == F) return false;                     // R2
  if (ib != F && (ii == F || ie == F)) return false;        // R3
  if (bi != F && (ii == F || ei == F)) return false;        // R4
  if (ie == F && be != F) return false;                     // R5
  if (ei == F && eb != F) return false;                     // R6
  if (bi == F && bb == F && be == F) return false;          // R7
  if (ib == F && bb == F && eb == F) return false;          // R8
  if (bi == F && be == F && bb != Dim::k1) return false;    // R9
  if (ib == F && eb == F && bb != Dim::k1) return false;    // R10
  return true;
}

/// First-principles definition of each relation as a set-topology statement
/// about the matrix — independent of the Table 1 mask encodings, which
/// model_check.cpp proves equivalent over the realizable matrices:
///
///  - intersects: the closed sets share a point, i.e. some cell of the
///    upper-left 2x2 block (II, IB, BI, BB) is non-empty.
///  - disjoint: not intersects.
///  - covered by (r in s as closed sets): no part of r in E_s, i.e. IE=F
///    and BE=F. covers is the mirror (EI=F and EB=F).
///  - equals: both containments, i.e. IE=BE=EI=EB=F.
///  - inside / contains: the boundary-contact-free specialisations
///    (covered by / covers with BB=F) — the repo's Fig. 1(a)/Fig. 2 reading,
///    see the comment in relation.cpp.
///  - meets: interiors disjoint but the sets touch: II=F and intersects.
constexpr bool ModelHolds(Relation rel, const Matrix& m) {
  const Dim F = Dim::kFalse;
  const bool intersects = m.At(Part::kInterior, Part::kInterior) != F ||
                          m.At(Part::kInterior, Part::kBoundary) != F ||
                          m.At(Part::kBoundary, Part::kInterior) != F ||
                          m.At(Part::kBoundary, Part::kBoundary) != F;
  const bool r_in_s = m.At(Part::kInterior, Part::kExterior) == F &&
                      m.At(Part::kBoundary, Part::kExterior) == F;
  const bool s_in_r = m.At(Part::kExterior, Part::kInterior) == F &&
                      m.At(Part::kExterior, Part::kBoundary) == F;
  const bool boundary_free = m.At(Part::kBoundary, Part::kBoundary) == F;
  switch (rel) {
    case Relation::kIntersects: return intersects;
    case Relation::kDisjoint: return !intersects;
    case Relation::kCoveredBy: return r_in_s;
    case Relation::kCovers: return s_in_r;
    case Relation::kEquals: return r_in_s && s_in_r;
    case Relation::kInside: return r_in_s && boundary_free;
    case Relation::kContains: return s_in_r && boundary_free;
    case Relation::kMeets:
      return m.At(Part::kInterior, Part::kInterior) == F && intersects;
  }
  return false;
}

/// The Fig. 2 implication lattice: every relation that necessarily holds
/// whenever \p rel is the most specific one. model_check.cpp proves, for
/// every realizable matrix, that the set of relations holding is exactly the
/// upward closure of its minimum — i.e. that the enum order of Relation is a
/// valid most-specific-first linearisation of this lattice.
constexpr RelationSet UpwardClosure(Relation rel) {
  switch (rel) {
    case Relation::kEquals:
      return RelationSet{Relation::kEquals, Relation::kCoveredBy,
                         Relation::kCovers, Relation::kIntersects};
    case Relation::kInside:
      return RelationSet{Relation::kInside, Relation::kCoveredBy,
                         Relation::kIntersects};
    case Relation::kContains:
      return RelationSet{Relation::kContains, Relation::kCovers,
                         Relation::kIntersects};
    case Relation::kCoveredBy:
      return RelationSet{Relation::kCoveredBy, Relation::kIntersects};
    case Relation::kCovers:
      return RelationSet{Relation::kCovers, Relation::kIntersects};
    case Relation::kMeets:
      return RelationSet{Relation::kMeets, Relation::kIntersects};
    case Relation::kIntersects:
      return RelationSet{Relation::kIntersects};
    case Relation::kDisjoint:
      return RelationSet{Relation::kDisjoint};
  }
  return RelationSet{};
}

/// The relations whose being most-specific implies predicate \p p holds at
/// mask level — the down-set of p in the lattice. Used to derive the
/// relate_p fast-path feasibility table (topology/relate_tables.h).
constexpr RelationSet ImplicantsOf(Relation p) {
  RelationSet implicants;
  for (int i = 0; i < kNumRelations; ++i) {
    const Relation rel = static_cast<Relation>(i);
    if (UpwardClosure(rel).Contains(p)) implicants.Add(rel);
  }
  return implicants;
}

/// Enumerates every realizable matrix and calls check(matrix); returns false
/// as soon as a check fails. The loop bounds are the D1/D2 domains; the
/// callee-visible set is further narrowed by IsRealizablePolygonMatrix.
template <typename Check>
constexpr bool AllRealizableMatrices(const Check& check) {
  constexpr Dim kAreal[] = {Dim::kFalse, Dim::k2};
  constexpr Dim kLineal[] = {Dim::kFalse, Dim::k1};
  constexpr Dim kBoundary[] = {Dim::kFalse, Dim::k0, Dim::k1};
  for (Dim ii : kAreal) {
    for (Dim ib : kLineal) {
      for (Dim ie : kAreal) {
        for (Dim bi : kLineal) {
          for (Dim bb : kBoundary) {
            for (Dim be : kLineal) {
              for (Dim ei : kAreal) {
                for (Dim eb : kLineal) {
                  Matrix m;
                  m.Set(Part::kInterior, Part::kInterior, ii);
                  m.Set(Part::kInterior, Part::kBoundary, ib);
                  m.Set(Part::kInterior, Part::kExterior, ie);
                  m.Set(Part::kBoundary, Part::kInterior, bi);
                  m.Set(Part::kBoundary, Part::kBoundary, bb);
                  m.Set(Part::kBoundary, Part::kExterior, be);
                  m.Set(Part::kExterior, Part::kInterior, ei);
                  m.Set(Part::kExterior, Part::kBoundary, eb);
                  m.Set(Part::kExterior, Part::kExterior, Dim::k2);
                  if (!IsRealizablePolygonMatrix(m)) continue;
                  if (!check(m)) return false;
                }
              }
            }
          }
        }
      }
    }
  }
  return true;
}

/// Number of realizable matrices (pinned by a static_assert so a constraint
/// change is a conscious, reviewed decision).
constexpr int CountRealizableMatrices() {
  int count = 0;
  AllRealizableMatrices([&count](const Matrix&) {
    ++count;
    return true;
  });
  return count;
}

/// First-principles Fig. 4 facts: can \p rel be the most specific relation
/// of a pair whose MBRs relate as \p boxes? Each case is a short geometric
/// argument about MBRs, proved in the comments; topology/static_checks.cpp
/// asserts the shipped MbrCandidates table equals this predicate exactly.
constexpr bool MbrPossible(BoxRelation boxes, Relation rel) {
  switch (boxes) {
    case BoxRelation::kDisjoint:
      // Disjoint MBRs separate the objects.
      return rel == Relation::kDisjoint;
    case BoxRelation::kEqual:
      // Fig. 4(c). Impossible:
      //  - inside/contains: if closure(r) were in the open set I_s, any
      //    point of r on the shared MBR boundary would need a
      //    neighbourhood inside I_s, which exits the MBR that contains s.
      //  - disjoint: both objects touch all four sides of the common MBR,
      //    so r connects left-right and s connects top-bottom; two compact
      //    connected sets doing that inside one rectangle must meet (the
      //    Hex/crossing lemma).
      return rel == Relation::kEquals || rel == Relation::kCoveredBy ||
             rel == Relation::kCovers || rel == Relation::kMeets ||
             rel == Relation::kIntersects;
    case BoxRelation::kRInsideS:
      // Fig. 4(a): MBR(r) strictly inside MBR(s), so r cannot equal,
      // contain, or cover s (any of those needs MBR(s) inside MBR(r)).
      return rel == Relation::kDisjoint || rel == Relation::kInside ||
             rel == Relation::kCoveredBy || rel == Relation::kMeets ||
             rel == Relation::kIntersects;
    case BoxRelation::kSInsideR:
      // Fig. 4(b): mirror of kRInsideS.
      return rel == Relation::kDisjoint || rel == Relation::kContains ||
             rel == Relation::kCovers || rel == Relation::kMeets ||
             rel == Relation::kIntersects;
    case BoxRelation::kCross:
      // Fig. 4(d): r spans the full x-extent of the MBR intersection and s
      // the full y-extent (or mirrored), so r connects its left-right sides
      // and s its top-bottom sides: the crossing lemma forces interior
      // overlap (disjoint/meets impossible), and each MBR sticks out of the
      // other (equality and containment impossible).
      return rel == Relation::kIntersects;
    case BoxRelation::kOverlap:
      // Fig. 4(e): each MBR sticks out of the other, so equality and
      // containment in either direction are impossible; nothing else is.
      return rel == Relation::kDisjoint || rel == Relation::kMeets ||
             rel == Relation::kIntersects;
  }
  return true;
}

/// The candidate set Fig. 4 permits for an MBR case, derived from
/// MbrPossible (NOT from the shipped table — static_checks.cpp compares the
/// two).
constexpr RelationSet MbrPossibleSet(BoxRelation boxes) {
  RelationSet possible;
  for (int i = 0; i < kNumRelations; ++i) {
    const Relation rel = static_cast<Relation>(i);
    if (MbrPossible(boxes, rel)) possible.Add(rel);
  }
  return possible;
}

}  // namespace stj::de9im
