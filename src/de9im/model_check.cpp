// Compile-time proof that the shipped Table 1 mask tables agree with the
// first-principles relation model (model.h) on every realizable polygon-pair
// matrix. This translation unit emits no code: it exists so that a corrupted
// mask bit, a reordered Relation enum, or a botched edit to the tables fails
// the build instead of silently changing join answers. It is deliberately
// self-contained below the topology layer (the Fig. 4/Fig. 5 table checks
// live in src/topology/static_checks.cpp) and is also compiled standalone by
// `tools/lint.sh --self-test` with -DSTJ_MODEL_CORRUPT_BIT to demonstrate
// the tripwire in relation_masks.h.

#include "src/de9im/matrix.h"
#include "src/de9im/model.h"
#include "src/de9im/relation.h"
#include "src/de9im/relation_masks.h"

namespace stj::de9im {
namespace {

// The realizability constraints admit exactly 53 matrices. Pinning the count
// makes any change to the D/R constraints in model.h a conscious, reviewed
// decision: loosening them silently would weaken every check below.
static_assert(CountRealizableMatrices() == 53,
              "realizable-matrix enumeration changed; re-derive the model");

// Non-vacuity: every relation is the most specific one for at least one
// realizable matrix. Without this, an over-constrained model would make the
// equivalence checks below pass trivially.
constexpr bool EveryRelationRealized() {
  for (int i = 0; i < kNumRelations; ++i) {
    const Relation rel = static_cast<Relation>(i);
    bool found = false;
    AllRealizableMatrices([&](const Matrix& m) {
      if (MostSpecificRelationCx(m, RelationSet::All()) == rel) found = true;
      return !found;  // stop early once witnessed
    });
    if (!found) return false;
  }
  return true;
}
static_assert(EveryRelationRealized(),
              "some relation is unreachable under the model constraints");

// Core equivalence: for every realizable matrix and every relation, the
// shipped mask table answers exactly as the set-topology definition does.
// This is the check the STJ_MODEL_CORRUPT_BIT tripwire trips.
constexpr bool MasksMatchModel() {
  return AllRealizableMatrices([](const Matrix& m) {
    for (int i = 0; i < kNumRelations; ++i) {
      const Relation rel = static_cast<Relation>(i);
      if (RelationHoldsCx(rel, m) != ModelHolds(rel, m)) return false;
    }
    return true;
  });
}
static_assert(MasksMatchModel(),
              "a Table 1 mask disagrees with the first-principles relation "
              "model (see src/de9im/model.h)");

// Lattice soundness and most-specific ordering: on every realizable matrix,
// the set of relations that hold is exactly the upward closure (Fig. 2) of
// the minimum-enum relation that holds — so (a) the declared implication
// lattice is correct, (b) relations are mutually exclusive modulo that
// lattice, and (c) scanning candidates in enum order really does return the
// most specific holding relation.
constexpr bool LatticeMatchesMasks() {
  return AllRealizableMatrices([](const Matrix& m) {
    RelationSet holding;
    for (int i = 0; i < kNumRelations; ++i) {
      const Relation rel = static_cast<Relation>(i);
      if (RelationHoldsCx(rel, m)) holding.Add(rel);
    }
    const Relation most_specific =
        MostSpecificRelationCx(m, RelationSet::All());
    if (!holding.Contains(most_specific)) return false;
    return holding == UpwardClosure(most_specific);
  });
}
static_assert(LatticeMatchesMasks(),
              "the holding-relation sets do not form the Fig. 2 implication "
              "lattice under enum (most-specific-first) order");

// Exactly one of intersects/disjoint holds on every realizable matrix, and
// the runtime fallback in MostSpecificRelationCx (used when candidate
// narrowing was wrong) therefore always has a valid answer.
constexpr bool IntersectsDisjointPartition() {
  return AllRealizableMatrices([](const Matrix& m) {
    return RelationHoldsCx(Relation::kIntersects, m) !=
           RelationHoldsCx(Relation::kDisjoint, m);
  });
}
static_assert(IntersectsDisjointPartition(),
              "intersects/disjoint must partition the realizable matrices");

// Converse duality: transposing the matrix swaps the roles of r and s, so
// rel holds on M iff Converse-at-compile-time holds on M^T. Checked
// structurally here (inside<->contains, covered-by<->covers, rest
// self-converse) against the mask tables.
constexpr Relation ConverseCx(Relation rel) {
  switch (rel) {
    case Relation::kInside: return Relation::kContains;
    case Relation::kContains: return Relation::kInside;
    case Relation::kCoveredBy: return Relation::kCovers;
    case Relation::kCovers: return Relation::kCoveredBy;
    default: return rel;
  }
}
constexpr bool ConverseMatchesTranspose() {
  return AllRealizableMatrices([](const Matrix& m) {
    const Matrix t = m.Transposed();
    for (int i = 0; i < kNumRelations; ++i) {
      const Relation rel = static_cast<Relation>(i);
      if (RelationHoldsCx(rel, m) != RelationHoldsCx(ConverseCx(rel), t))
        return false;
    }
    return true;
  });
}
static_assert(ConverseMatchesTranspose(),
              "Converse() disagrees with matrix transposition on the mask "
              "tables");

}  // namespace
}  // namespace stj::de9im
