#include "src/de9im/relate_engine.h"

#include "src/de9im/boundary_arrangement.h"
#include "src/geometry/prepared_polygon.h"

namespace stj::de9im {

namespace {

// Classification summary of one polygon's boundary sub-edges against the
// other polygon.
struct SideFlags {
  bool in_interior = false;  // some sub-edge lies in the other's interior
  bool in_exterior = false;  // some sub-edge lies in the other's exterior
  bool on_boundary = false;  // some sub-edge lies on the other's boundary
};

SideFlags ClassifySide(const ArrangementSide& side,
                       const PolygonLocator& other) {
  SideFlags flags;
  flags.on_boundary = side.has_shared_piece;
  for (const Point& mid : side.midpoints) {
    if (flags.in_interior && flags.in_exterior && flags.on_boundary) break;
    switch (other.Locate(mid)) {
      case Location::kInterior: flags.in_interior = true; break;
      case Location::kExterior: flags.in_exterior = true; break;
      case Location::kBoundary:
        // Only reachable through double rounding of a split point; the exact
        // classification would be a shared piece, so treat it as one.
        flags.on_boundary = true;
        break;
    }
  }
  return flags;
}

Matrix DisjointMatrix() {
  // Two disjoint polygons: each boundary and interior meets only the other's
  // exterior.
  Matrix m;
  m.Set(Part::kInterior, Part::kExterior, Dim::k2);
  m.Set(Part::kBoundary, Part::kExterior, Dim::k1);
  m.Set(Part::kExterior, Part::kInterior, Dim::k2);
  m.Set(Part::kExterior, Part::kBoundary, Dim::k1);
  m.Set(Part::kExterior, Part::kExterior, Dim::k2);
  return m;
}

}  // namespace

Matrix RelateEngine::Relate(const Polygon& r, const Polygon& s) {
  // One-shot prepared wrappers (components build lazily on first use): the
  // cold path and the cached path run the same code, so their matrices are
  // byte-identical by construction.
  const PreparedPolygon pr(r);
  const PreparedPolygon ps(s);
  return Relate(pr, ps);
}

Matrix RelateEngine::Relate(const Polygon& r, const PolygonLocator& r_locator,
                            const Polygon& s, const PolygonLocator& s_locator) {
  const PreparedPolygon pr(r, &r_locator);
  const PreparedPolygon ps(s, &s_locator);
  return Relate(pr, ps);
}

Matrix RelateEngine::Relate(const PreparedPolygon& r,
                            const PreparedPolygon& s) {
  if (!r.Bounds().Intersects(s.Bounds())) return DisjointMatrix();

  const Arrangement arr = ComputeArrangement(r, s);
  const SideFlags rb = ClassifySide(arr.r, s.Locator());  // B(r) vs s
  const SideFlags sb = ClassifySide(arr.s, r.Locator());  // B(s) vs r

  Matrix m;
  m.Set(Part::kExterior, Part::kExterior, Dim::k2);

  // Boundary row/column: a boundary piece in the other's interior or exterior
  // is one-dimensional; shared boundary pieces are one-dimensional, isolated
  // touch points zero-dimensional.
  if (rb.in_interior) m.Set(Part::kBoundary, Part::kInterior, Dim::k1);
  if (rb.in_exterior) m.Set(Part::kBoundary, Part::kExterior, Dim::k1);
  if (sb.in_interior) m.Set(Part::kInterior, Part::kBoundary, Dim::k1);
  if (sb.in_exterior) m.Set(Part::kExterior, Part::kBoundary, Dim::k1);
  if (rb.on_boundary || sb.on_boundary) {
    m.Set(Part::kBoundary, Part::kBoundary, Dim::k1);
  } else if (arr.boundaries_touch) {
    m.Set(Part::kBoundary, Part::kBoundary, Dim::k0);
  }

  // Interior/interior: boundary-in-interior evidence implies open overlap.
  // Otherwise each connected interior is wholly inside, wholly outside, or
  // equal — decided by one (memoized) representative point per side.
  bool ii = rb.in_interior || sb.in_interior;
  if (!ii) {
    const Point* pr = r.InteriorPoint();
    if (pr != nullptr && s.Locator().Locate(*pr) == Location::kInterior) {
      ii = true;
    }
  }
  if (!ii) {
    const Point* ps = s.InteriorPoint();
    if (ps != nullptr && r.Locator().Locate(*ps) == Location::kInterior) {
      ii = true;
    }
  }
  if (ii) m.Set(Part::kInterior, Part::kInterior, Dim::k2);

  // Interior(r) vs exterior(s): r's boundary reaching E(s), or s's boundary
  // cutting through I(r) (one side of it is E(s)), or r's interior wholly
  // outside s.
  bool ie = rb.in_exterior || sb.in_interior;
  if (!ie) {
    const Point* pr = r.InteriorPoint();
    if (pr != nullptr && s.Locator().Locate(*pr) == Location::kExterior) {
      ie = true;
    }
  }
  if (ie) m.Set(Part::kInterior, Part::kExterior, Dim::k2);

  // Exterior(r) vs interior(s): symmetric.
  bool ei = sb.in_exterior || rb.in_interior;
  if (!ei) {
    const Point* ps = s.InteriorPoint();
    if (ps != nullptr && r.Locator().Locate(*ps) == Location::kExterior) {
      ei = true;
    }
  }
  if (ei) m.Set(Part::kExterior, Part::kInterior, Dim::k2);

  return m;
}

Matrix RelateMatrix(const Polygon& r, const Polygon& s) {
  return RelateEngine::Relate(r, s);
}

Relation FindRelationExact(const Polygon& r, const Polygon& s) {
  return MostSpecificRelation(RelateMatrix(r, s));
}

}  // namespace stj::de9im
