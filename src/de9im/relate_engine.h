#pragma once

#include "src/de9im/matrix.h"
#include "src/de9im/relation.h"
#include "src/geometry/locator.h"
#include "src/geometry/polygon.h"
#include "src/geometry/prepared_polygon.h"

namespace stj::de9im {

/// Computes DE-9IM matrices for polygon pairs — the refinement step of the
/// topology-join pipeline (the paper delegates this to boost::geometry; we
/// implement it from scratch).
///
/// Method: split both boundaries at their mutual intersections
/// (ComputeArrangement), classify each resulting sub-edge midpoint against
/// the other polygon with an exact slab-indexed point locator, and derive the
/// nine matrix entries from the classification flags; interior/interior and
/// interior/exterior entries that no boundary evidence decides fall back to
/// locating a representative interior point (PointOnSurface). Because a
/// valid polygon's interior is connected, the fallback is sound: if no
/// boundary piece of either polygon lies in the other's interior or exterior,
/// each interior is entirely inside, entirely outside, or equal to the other.
///
/// Cost: O((n + m + k) * q) where k is the number of boundary intersections
/// and q the slab-query cost (≈ sqrt of ring size) — the superlinear growth
/// with polygon complexity that motivates the paper's intermediate filter.
class RelateEngine {
 public:
  /// Computes the DE-9IM matrix of (r, s), building all per-object indexes
  /// internally (one-shot PreparedPolygon wrappers; see the overload below).
  static Matrix Relate(const Polygon& r, const Polygon& s);

  /// As above but with caller-provided locators (reused across pairs that
  /// share a polygon). The edge arrays and intersection index are still
  /// built per call; prefer the PreparedPolygon overload for full reuse.
  static Matrix Relate(const Polygon& r, const PolygonLocator& r_locator,
                       const Polygon& s, const PolygonLocator& s_locator);

  /// The amortised path: consumes each side's cached locator, edge array,
  /// edge index, and memoized representative point. All overloads share this
  /// body, so cold and prepared results are byte-identical by construction.
  static Matrix Relate(const PreparedPolygon& r, const PreparedPolygon& s);
};

/// Convenience: the DE-9IM matrix of (r, s).
Matrix RelateMatrix(const Polygon& r, const Polygon& s);

/// Convenience: the most specific of the eight relations for (r, s).
Relation FindRelationExact(const Polygon& r, const Polygon& s);

}  // namespace stj::de9im
