#include "src/de9im/relation.h"

#include <array>
#include <vector>

namespace stj::de9im {

namespace {

// Table 1 of the paper. Note that `contains`/`inside` use the first mask of
// `covers`/`covered by`: the OGC definitions include boundary-coincident
// containment; specific-to-general ordering resolves the overlap.
const std::vector<Mask>& DisjointMasks() {
  static const std::vector<Mask> kMasks = {Mask::FromLiteral("FF*FF****")};
  return kMasks;
}
const std::vector<Mask>& IntersectsMasks() {
  static const std::vector<Mask> kMasks = {
      Mask::FromLiteral("T********"), Mask::FromLiteral("*T*******"),
      Mask::FromLiteral("***T*****"), Mask::FromLiteral("****T****")};
  return kMasks;
}
const std::vector<Mask>& CoversMasks() {
  static const std::vector<Mask> kMasks = {
      Mask::FromLiteral("T*****FF*"), Mask::FromLiteral("*T****FF*"),
      Mask::FromLiteral("***T**FF*"), Mask::FromLiteral("****T*FF*")};
  return kMasks;
}
const std::vector<Mask>& CoveredByMasks() {
  static const std::vector<Mask> kMasks = {
      Mask::FromLiteral("T*F**F***"), Mask::FromLiteral("*TF**F***"),
      Mask::FromLiteral("**FT*F***"), Mask::FromLiteral("**F*TF***")};
  return kMasks;
}
const std::vector<Mask>& EqualsMasks() {
  static const std::vector<Mask> kMasks = {Mask::FromLiteral("T*F**FFF*")};
  return kMasks;
}
// `inside` / `contains` masks: Table 1 prints the OGC within/contains masks
// (T*F**F*** / T*****FF*), but those also match covered-by/covers pairs whose
// boundaries touch, which would contradict the paper's own Fig. 2 hierarchy
// (inside strictly inside covered-by) and its IFEquals filter (which reports
// `covered by` for MBR-equal pairs — pairs for which strict inside is
// impossible). We therefore add the strictness condition BB = F, making
// inside/contains the boundary-contact-free specialisations of covered
// by/covers, exactly as Fig. 1(a) depicts them.
const std::vector<Mask>& ContainsMasks() {
  static const std::vector<Mask> kMasks = {Mask::FromLiteral("T***F*FF*")};
  return kMasks;
}
const std::vector<Mask>& InsideMasks() {
  static const std::vector<Mask> kMasks = {Mask::FromLiteral("T*F*FF***")};
  return kMasks;
}
const std::vector<Mask>& MeetsMasks() {
  static const std::vector<Mask> kMasks = {Mask::FromLiteral("FT*******"),
                                           Mask::FromLiteral("F**T*****"),
                                           Mask::FromLiteral("F***T****")};
  return kMasks;
}

}  // namespace

std::span<const Mask> MasksOf(Relation rel) {
  switch (rel) {
    case Relation::kDisjoint: return DisjointMasks();
    case Relation::kIntersects: return IntersectsMasks();
    case Relation::kCovers: return CoversMasks();
    case Relation::kCoveredBy: return CoveredByMasks();
    case Relation::kEquals: return EqualsMasks();
    case Relation::kContains: return ContainsMasks();
    case Relation::kInside: return InsideMasks();
    case Relation::kMeets: return MeetsMasks();
  }
  return {};
}

bool RelationHolds(Relation rel, const Matrix& m) {
  for (const Mask& mask : MasksOf(rel)) {
    if (mask.Matches(m)) return true;
  }
  return false;
}

Relation MostSpecificRelation(const Matrix& m, RelationSet candidates) {
  for (int i = 0; i < kNumRelations; ++i) {
    const Relation rel = static_cast<Relation>(i);
    if (candidates.Contains(rel) && RelationHolds(rel, m)) return rel;
  }
  // Candidate narrowing should always keep the true relation; the fallback
  // below keeps the result total regardless.
  return RelationHolds(Relation::kIntersects, m) ? Relation::kIntersects
                                                 : Relation::kDisjoint;
}

Relation MostSpecificRelation(const Matrix& m) {
  return MostSpecificRelation(m, RelationSet::All());
}

const char* ToString(Relation rel) {
  switch (rel) {
    case Relation::kEquals: return "equals";
    case Relation::kInside: return "inside";
    case Relation::kContains: return "contains";
    case Relation::kCoveredBy: return "covered-by";
    case Relation::kCovers: return "covers";
    case Relation::kMeets: return "meets";
    case Relation::kIntersects: return "intersects";
    case Relation::kDisjoint: return "disjoint";
  }
  return "?";
}

Relation Converse(Relation rel) {
  switch (rel) {
    case Relation::kInside: return Relation::kContains;
    case Relation::kContains: return Relation::kInside;
    case Relation::kCoveredBy: return Relation::kCovers;
    case Relation::kCovers: return Relation::kCoveredBy;
    default: return rel;
  }
}

}  // namespace stj::de9im
