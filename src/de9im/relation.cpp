#include "src/de9im/relation.h"

#include "src/de9im/relation_masks.h"

namespace stj::de9im {

// Table 1 of the paper lives in relation_masks.h as constexpr arrays — the
// runtime accessors below serve those same arrays, and model_check.cpp
// proves them equivalent to the first-principles definitions at compile
// time. Note that `contains`/`inside` do not use the OGC within/contains
// masks (T*F**F*** / T*****FF*): those also match covered-by/covers pairs
// whose boundaries touch, which would contradict the paper's own Fig. 2
// hierarchy (inside strictly inside covered-by) and its IFEquals filter
// (which reports `covered by` for MBR-equal pairs — pairs for which strict
// inside is impossible). We therefore add the strictness condition BB = F,
// making inside/contains the boundary-contact-free specialisations of
// covered by/covers, exactly as Fig. 1(a) depicts them.

std::span<const Mask> MasksOf(Relation rel) { return MasksOfCx(rel); }

bool RelationHolds(Relation rel, const Matrix& m) {
  return RelationHoldsCx(rel, m);
}

Relation MostSpecificRelation(const Matrix& m, RelationSet candidates) {
  // Candidate narrowing should always keep the true relation; the fallback
  // inside MostSpecificRelationCx keeps the result total regardless.
  return MostSpecificRelationCx(m, candidates);
}

Relation MostSpecificRelation(const Matrix& m) {
  return MostSpecificRelationCx(m, RelationSet::All());
}

const char* ToString(Relation rel) {
  switch (rel) {
    case Relation::kEquals: return "equals";
    case Relation::kInside: return "inside";
    case Relation::kContains: return "contains";
    case Relation::kCoveredBy: return "covered-by";
    case Relation::kCovers: return "covers";
    case Relation::kMeets: return "meets";
    case Relation::kIntersects: return "intersects";
    case Relation::kDisjoint: return "disjoint";
  }
  return "?";
}

Relation Converse(Relation rel) {
  switch (rel) {
    case Relation::kInside: return Relation::kContains;
    case Relation::kContains: return Relation::kInside;
    case Relation::kCoveredBy: return Relation::kCovers;
    case Relation::kCovers: return Relation::kCoveredBy;
    default: return rel;
  }
}

}  // namespace stj::de9im
