#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "src/de9im/mask.h"
#include "src/de9im/matrix.h"

namespace stj::de9im {

/// The eight topological relations of the paper (Fig. 1(a) / Table 1).
///
/// Values are ordered most-specific-first: when several relations hold
/// simultaneously (the Venn diagram of Fig. 2 — e.g. `equals` implies
/// `covers`, `covered by` and `intersects`), the smallest enum value that
/// matches is the most specific relation.
enum class Relation : uint8_t {
  kEquals = 0,
  kInside = 1,     ///< r inside s (r within s, no boundary contact).
  kContains = 2,   ///< r contains s.
  kCoveredBy = 3,  ///< r covered by s.
  kCovers = 4,     ///< r covers s.
  kMeets = 5,      ///< Boundaries touch, interiors disjoint.
  kIntersects = 6,
  kDisjoint = 7,
};

inline constexpr int kNumRelations = 8;

/// A set of candidate relations, as produced by the MBR and intermediate
/// filters before refinement.
class RelationSet {
 public:
  constexpr RelationSet() = default;
  constexpr RelationSet(std::initializer_list<Relation> rels) {
    for (Relation r : rels) Add(r);
  }

  /// The set of all eight relations.
  static constexpr RelationSet All() {
    RelationSet s;
    s.bits_ = 0xFF;
    return s;
  }

  /// Rebuilds a set from its Bits() image — the SoA transport form used by
  /// the batched executor's filter → refinement hand-off.
  static constexpr RelationSet FromBits(uint8_t bits) {
    RelationSet s;
    s.bits_ = bits;
    return s;
  }

  constexpr void Add(Relation r) { bits_ |= Bit(r); }
  constexpr void Remove(Relation r) { bits_ &= static_cast<uint8_t>(~Bit(r)); }
  constexpr bool Contains(Relation r) const { return (bits_ & Bit(r)) != 0; }
  constexpr bool Empty() const { return bits_ == 0; }
  constexpr int Count() const { return __builtin_popcount(bits_); }
  constexpr uint8_t Bits() const { return bits_; }

  friend constexpr bool operator==(RelationSet a, RelationSet b) {
    return a.bits_ == b.bits_;
  }

 private:
  static constexpr uint8_t Bit(Relation r) {
    return static_cast<uint8_t>(1u << static_cast<uint8_t>(r));
  }
  uint8_t bits_ = 0;
};

/// The DE-9IM masks defining \p rel (Table 1); a relation holds if any mask
/// matches.
std::span<const Mask> MasksOf(Relation rel);

/// True iff \p rel holds for a pair whose DE-9IM matrix is \p m.
bool RelationHolds(Relation rel, const Matrix& m);

/// The most specific relation of \p candidates that holds for \p m, checked
/// in specific-to-general order. Falls back to kIntersects/kDisjoint (which
/// together are exhaustive) if no candidate matches — callers that narrowed
/// candidates correctly never hit the fallback.
Relation MostSpecificRelation(const Matrix& m, RelationSet candidates);

/// MostSpecificRelation over all eight relations (ground truth).
Relation MostSpecificRelation(const Matrix& m);

/// Human-readable relation name.
const char* ToString(Relation rel);

/// The relation of the pair (s, r) given the relation of (r, s): swaps
/// inside/contains and covered-by/covers.
Relation Converse(Relation rel);

}  // namespace stj::de9im
