#pragma once

#include <array>
#include <span>

#include "src/de9im/relation.h"

namespace stj::de9im {

/// The shipped DE-9IM mask tables of Table 1 — the single source of truth.
///
/// These arrays are what the runtime mask matcher (relation.cpp) serves
/// through MasksOf() AND what the compile-time model checker
/// (de9im/model_check.cpp) proves equivalent to the first-principles
/// relation definitions of model.h over every realizable polygon-pair
/// matrix. A typo in any pattern is therefore a *compile error*, not a
/// silently changed join semantics: either the consteval FromLiteral rejects
/// the literal, or the model equivalence static_asserts fail.
///
/// Note `contains`/`inside` are the boundary-contact-free specialisations of
/// `covers`/`covered by` (extra BB = F condition versus the OGC masks); see
/// the derivation comment in relation.cpp and DESIGN.md §11.

// Corruption tripwire (negative compile check): building with
// -DSTJ_MODEL_CORRUPT_BIT flips one cell of the equals mask (EB: F -> T).
// The model-equivalence static_asserts in model_check.cpp then fail the
// build — `tools/lint.sh --self-test` compiles model_check.cpp both ways and
// requires exactly that outcome, demonstrating that a corrupted mask bit
// cannot survive to runtime.
#ifdef STJ_MODEL_CORRUPT_BIT
inline constexpr std::array<Mask, 1> kEqualsMasks = {
    Mask::FromLiteral("T*F**FFT*")};
#else
inline constexpr std::array<Mask, 1> kEqualsMasks = {
    Mask::FromLiteral("T*F**FFF*")};
#endif

inline constexpr std::array<Mask, 1> kDisjointMasks = {
    Mask::FromLiteral("FF*FF****")};

inline constexpr std::array<Mask, 4> kIntersectsMasks = {
    Mask::FromLiteral("T********"), Mask::FromLiteral("*T*******"),
    Mask::FromLiteral("***T*****"), Mask::FromLiteral("****T****")};

inline constexpr std::array<Mask, 4> kCoversMasks = {
    Mask::FromLiteral("T*****FF*"), Mask::FromLiteral("*T****FF*"),
    Mask::FromLiteral("***T**FF*"), Mask::FromLiteral("****T*FF*")};

inline constexpr std::array<Mask, 4> kCoveredByMasks = {
    Mask::FromLiteral("T*F**F***"), Mask::FromLiteral("*TF**F***"),
    Mask::FromLiteral("**FT*F***"), Mask::FromLiteral("**F*TF***")};

inline constexpr std::array<Mask, 1> kContainsMasks = {
    Mask::FromLiteral("T***F*FF*")};

inline constexpr std::array<Mask, 1> kInsideMasks = {
    Mask::FromLiteral("T*F*FF***")};

inline constexpr std::array<Mask, 3> kMeetsMasks = {
    Mask::FromLiteral("FT*******"), Mask::FromLiteral("F**T*****"),
    Mask::FromLiteral("F***T****")};

/// Compile-time counterpart of MasksOf (relation.h) over the same arrays.
constexpr std::span<const Mask> MasksOfCx(Relation rel) {
  switch (rel) {
    case Relation::kDisjoint: return kDisjointMasks;
    case Relation::kIntersects: return kIntersectsMasks;
    case Relation::kCovers: return kCoversMasks;
    case Relation::kCoveredBy: return kCoveredByMasks;
    case Relation::kEquals: return kEqualsMasks;
    case Relation::kContains: return kContainsMasks;
    case Relation::kInside: return kInsideMasks;
    case Relation::kMeets: return kMeetsMasks;
  }
  return {};
}

/// Compile-time counterpart of RelationHolds (relation.h).
constexpr bool RelationHoldsCx(Relation rel, const Matrix& m) {
  for (const Mask& mask : MasksOfCx(rel)) {
    if (mask.Matches(m)) return true;
  }
  return false;
}

/// Compile-time counterpart of MostSpecificRelation (relation.h): the
/// smallest (most specific) candidate that holds, with the same exhaustive
/// intersects/disjoint fallback.
constexpr Relation MostSpecificRelationCx(const Matrix& m,
                                          RelationSet candidates) {
  for (int i = 0; i < kNumRelations; ++i) {
    const Relation rel = static_cast<Relation>(i);
    if (candidates.Contains(rel) && RelationHoldsCx(rel, m)) return rel;
  }
  return RelationHoldsCx(Relation::kIntersects, m) ? Relation::kIntersects
                                                   : Relation::kDisjoint;
}

}  // namespace stj::de9im
