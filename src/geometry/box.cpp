#include "src/geometry/box.h"

#include <algorithm>

namespace stj {

Box Box::Of(const Point& a, const Point& b) {
  Box box;
  box.min = Point{std::min(a.x, b.x), std::min(a.y, b.y)};
  box.max = Point{std::max(a.x, b.x), std::max(a.y, b.y)};
  return box;
}

void Box::Expand(const Point& p) {
  if (IsEmpty()) {
    min = max = p;
    return;
  }
  min.x = std::min(min.x, p.x);
  min.y = std::min(min.y, p.y);
  max.x = std::max(max.x, p.x);
  max.y = std::max(max.y, p.y);
}

void Box::Expand(const Box& other) {
  if (other.IsEmpty()) return;
  Expand(other.min);
  Expand(other.max);
}

Box Box::Inflated(double margin) const {
  if (IsEmpty()) return *this;
  Box out = *this;
  out.min.x -= margin;
  out.min.y -= margin;
  out.max.x += margin;
  out.max.y += margin;
  return out;
}

bool Box::Intersects(const Box& other) const {
  if (IsEmpty() || other.IsEmpty()) return false;
  return min.x <= other.max.x && other.min.x <= max.x && min.y <= other.max.y &&
         other.min.y <= max.y;
}

bool Box::Contains(const Point& p) const {
  return !IsEmpty() && p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
}

bool Box::Contains(const Box& other) const {
  if (IsEmpty() || other.IsEmpty()) return false;
  return other.min.x >= min.x && other.max.x <= max.x && other.min.y >= min.y &&
         other.max.y <= max.y;
}

Box Box::Intersection(const Box& other) const {
  if (!Intersects(other)) return Box::Empty();
  Box out;
  out.min = Point{std::max(min.x, other.min.x), std::max(min.y, other.min.y)};
  out.max = Point{std::min(max.x, other.max.x), std::min(max.y, other.max.y)};
  return out;
}

BoxRelation ClassifyBoxes(const Box& r, const Box& s) {
  if (!r.Intersects(s)) return BoxRelation::kDisjoint;
  if (r == s) return BoxRelation::kEqual;
  if (s.Contains(r)) return BoxRelation::kRInsideS;
  if (r.Contains(s)) return BoxRelation::kSInsideR;
  // A "cross" needs each box to strictly pierce the other in one axis:
  // r wider than s and s taller than r (or vice versa). Either way the two
  // polygons' interiors are forced to overlap (Fig. 4(d)).
  const bool r_pierces_x = r.min.x < s.min.x && s.max.x < r.max.x;
  const bool s_pierces_y = s.min.y < r.min.y && r.max.y < s.max.y;
  const bool s_pierces_x = s.min.x < r.min.x && r.max.x < s.max.x;
  const bool r_pierces_y = r.min.y < s.min.y && s.max.y < r.max.y;
  if ((r_pierces_x && s_pierces_y) || (s_pierces_x && r_pierces_y)) {
    return BoxRelation::kCross;
  }
  return BoxRelation::kOverlap;
}

const char* ToString(BoxRelation rel) {
  switch (rel) {
    case BoxRelation::kDisjoint: return "disjoint";
    case BoxRelation::kEqual: return "equal";
    case BoxRelation::kRInsideS: return "r-inside-s";
    case BoxRelation::kSInsideR: return "s-inside-r";
    case BoxRelation::kCross: return "cross";
    case BoxRelation::kOverlap: return "overlap";
  }
  return "?";
}

}  // namespace stj
