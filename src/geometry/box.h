#pragma once

#include "src/geometry/point.h"

namespace stj {

/// Axis-aligned minimum bounding rectangle (MBR).
///
/// Boxes are closed rectangles [min.x, max.x] x [min.y, max.y]. An empty box
/// (default construction) has min > max and intersects nothing.
struct Box {
  Point min{1.0, 1.0};
  Point max{0.0, 0.0};

  /// Returns a box that contains nothing.
  static Box Empty() { return Box{}; }

  /// Returns the MBR of two points given in any order.
  static Box Of(const Point& a, const Point& b);

  bool IsEmpty() const { return min.x > max.x || min.y > max.y; }

  double Width() const { return max.x - min.x; }
  double Height() const { return max.y - min.y; }
  double Area() const { return IsEmpty() ? 0.0 : Width() * Height(); }
  Point Center() const { return Point{0.5 * (min.x + max.x), 0.5 * (min.y + max.y)}; }

  /// Grows this box to contain \p p.
  void Expand(const Point& p);

  /// Grows this box to contain \p other.
  void Expand(const Box& other);

  /// Returns this box inflated by \p margin on every side.
  Box Inflated(double margin) const;

  /// Closed-rectangle intersection test (shared edges/corners count).
  bool Intersects(const Box& other) const;

  /// True iff \p p lies in the closed rectangle.
  bool Contains(const Point& p) const;

  /// True iff \p other is fully inside this box (boundary contact allowed).
  bool Contains(const Box& other) const;

  /// The intersection rectangle; empty if the boxes do not intersect.
  Box Intersection(const Box& other) const;

  friend bool operator==(const Box& a, const Box& b) {
    return a.min == b.min && a.max == b.max;
  }
  friend bool operator!=(const Box& a, const Box& b) { return !(a == b); }
};

/// How two MBRs of a candidate pair (r, s) intersect — the dispatch key of the
/// paper's Algorithm 1 (Fig. 4). Assumes the MBRs do intersect except for the
/// explicit kDisjoint case.
enum class BoxRelation {
  kDisjoint,   ///< No common point: the objects are definitely disjoint.
  kEqual,      ///< MBR(r) == MBR(s): Fig. 4(c).
  kRInsideS,   ///< MBR(r) strictly contained in MBR(s) (not equal): Fig. 4(a).
  kSInsideR,   ///< MBR(s) strictly contained in MBR(r) (not equal): Fig. 4(b).
  kCross,      ///< MBRs cross like a plus sign: Fig. 4(d), definite overlap.
  kOverlap,    ///< Any other intersection: Fig. 4(e).
};

/// Classifies how MBR(r) and MBR(s) intersect per Fig. 4 of the paper.
BoxRelation ClassifyBoxes(const Box& r, const Box& s);

/// Human-readable name of a BoxRelation (for logs and test failures).
const char* ToString(BoxRelation rel);

}  // namespace stj
