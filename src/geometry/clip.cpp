#include "src/geometry/clip.h"

#include <vector>

namespace stj {

namespace {

enum class Side { kLeft, kRight, kBottom, kTop };

bool IsInside(const Point& p, Side side, const Box& window) {
  switch (side) {
    case Side::kLeft: return p.x >= window.min.x;
    case Side::kRight: return p.x <= window.max.x;
    case Side::kBottom: return p.y >= window.min.y;
    case Side::kTop: return p.y <= window.max.y;
  }
  return false;
}

Point IntersectWithSide(const Point& a, const Point& b, Side side,
                        const Box& window) {
  double t = 0.0;
  switch (side) {
    case Side::kLeft: t = (window.min.x - a.x) / (b.x - a.x); break;
    case Side::kRight: t = (window.max.x - a.x) / (b.x - a.x); break;
    case Side::kBottom: t = (window.min.y - a.y) / (b.y - a.y); break;
    case Side::kTop: t = (window.max.y - a.y) / (b.y - a.y); break;
  }
  Point p{a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)};
  // Pin the clipped coordinate exactly onto the window edge.
  switch (side) {
    case Side::kLeft: p.x = window.min.x; break;
    case Side::kRight: p.x = window.max.x; break;
    case Side::kBottom: p.y = window.min.y; break;
    case Side::kTop: p.y = window.max.y; break;
  }
  return p;
}

std::vector<Point> ClipAgainstSide(const std::vector<Point>& input, Side side,
                                   const Box& window) {
  std::vector<Point> output;
  output.reserve(input.size() + 4);
  const size_t n = input.size();
  for (size_t i = 0; i < n; ++i) {
    const Point& current = input[i];
    const Point& previous = input[(i + n - 1) % n];
    const bool current_in = IsInside(current, side, window);
    const bool previous_in = IsInside(previous, side, window);
    if (current_in) {
      if (!previous_in) {
        output.push_back(IntersectWithSide(previous, current, side, window));
      }
      output.push_back(current);
    } else if (previous_in) {
      output.push_back(IntersectWithSide(previous, current, side, window));
    }
  }
  return output;
}

}  // namespace

std::optional<Ring> ClipRingToBox(const Ring& ring, const Box& window) {
  if (ring.Empty()) return std::nullopt;
  if (window.Contains(ring.Bounds())) return ring;  // fully inside: untouched
  std::vector<Point> pts = ring.Vertices();
  for (const Side side :
       {Side::kLeft, Side::kRight, Side::kBottom, Side::kTop}) {
    pts = ClipAgainstSide(pts, side, window);
    if (pts.size() < 3) return std::nullopt;
  }
  // Drop consecutive duplicates the clipping may have introduced.
  std::vector<Point> cleaned;
  cleaned.reserve(pts.size());
  for (const Point& p : pts) {
    if (cleaned.empty() || !(cleaned.back() == p)) cleaned.push_back(p);
  }
  while (cleaned.size() > 1 && cleaned.front() == cleaned.back()) {
    cleaned.pop_back();
  }
  if (cleaned.size() < 3) return std::nullopt;
  Ring result(std::move(cleaned));
  if (result.SignedArea2() == 0.0) return std::nullopt;
  return result;
}

std::optional<Polygon> ClipPolygonToBox(const Polygon& poly,
                                        const Box& window) {
  const std::optional<Ring> outer = ClipRingToBox(poly.Outer(), window);
  if (!outer.has_value()) return std::nullopt;
  std::vector<Ring> holes;
  for (const Ring& hole : poly.Holes()) {
    std::optional<Ring> clipped = ClipRingToBox(hole, window);
    if (clipped.has_value()) holes.push_back(std::move(*clipped));
  }
  return Polygon(std::move(*outer), std::move(holes));
}

}  // namespace stj
