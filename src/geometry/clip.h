#pragma once

#include <optional>

#include "src/geometry/box.h"
#include "src/geometry/polygon.h"

namespace stj {

/// Clips \p ring to the axis-aligned rectangle \p window
/// (Sutherland–Hodgman against the four half-planes). Returns the clipped
/// ring, or nullopt when nothing of positive area remains.
std::optional<Ring> ClipRingToBox(const Ring& ring, const Box& window);

/// Clips \p poly (outer ring and holes) to \p window. Holes are clipped
/// individually; a hole touching the window boundary merges its clipped form
/// into the result as-is, which is exact as long as the hole does not cross
/// the window (holes that do are conservatively kept clipped — the result
/// may then slightly under-report exterior area). Returns nullopt when the
/// polygon lies entirely outside the window.
///
/// This mirrors the paper's dataset preparation ("we cropped the TIGER
/// datasets to the contiguous United States").
std::optional<Polygon> ClipPolygonToBox(const Polygon& poly, const Box& window);

}  // namespace stj
