#include "src/geometry/convex_hull.h"

#include <algorithm>
#include <vector>

#include "src/geometry/predicates.h"

namespace stj {

Ring ConvexHull(const Polygon& poly) {
  std::vector<Point> pts = poly.Outer().Vertices();
  if (pts.size() < 3) return Ring(std::move(pts));
  std::sort(pts.begin(), pts.end(), LexLess);
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  const size_t n = pts.size();
  if (n < 3) return Ring(std::move(pts));

  std::vector<Point> hull(2 * n);
  size_t k = 0;
  // Lower hull.
  for (size_t i = 0; i < n; ++i) {
    while (k >= 2 &&
           OrientSign(hull[k - 2], hull[k - 1], pts[i]) != Sign::kPositive) {
      --k;
    }
    hull[k++] = pts[i];
  }
  // Upper hull.
  const size_t lower_size = k + 1;
  for (size_t i = n - 1; i-- > 0;) {
    while (k >= lower_size &&
           OrientSign(hull[k - 2], hull[k - 1], pts[i]) != Sign::kPositive) {
      --k;
    }
    hull[k++] = pts[i];
  }
  hull.resize(k - 1);  // last point repeats the first
  return Ring(std::move(hull));
}

namespace {

// True iff some edge of `edges_of` has all vertices of `other` strictly on
// its right side (a separating axis).
bool HasSeparatingEdge(const Ring& edges_of, const Ring& other) {
  const size_t n = edges_of.Size();
  for (size_t i = 0; i < n; ++i) {
    const Point& a = edges_of[i];
    const Point& b = edges_of[(i + 1 == n) ? 0 : i + 1];
    bool all_outside = true;
    for (size_t j = 0; j < other.Size(); ++j) {
      if (OrientSign(a, b, other[j]) != Sign::kNegative) {
        all_outside = false;
        break;
      }
    }
    if (all_outside) return true;
  }
  return false;
}

}  // namespace

bool ConvexPolygonsIntersect(const Ring& a, const Ring& b) {
  if (a.Empty() || b.Empty()) return false;
  if (!a.Bounds().Intersects(b.Bounds())) return false;
  // Degenerate hulls (points/segments) fall back to a containment-ish test
  // via the other hull's edges only.
  if (a.Size() >= 3 && HasSeparatingEdge(a, b)) return false;
  if (b.Size() >= 3 && HasSeparatingEdge(b, a)) return false;
  return true;
}

}  // namespace stj
