#pragma once

#include "src/geometry/polygon.h"
#include "src/geometry/ring.h"

namespace stj {

/// Convex hull of a polygon's outer ring (Andrew's monotone chain),
/// returned as a counter-clockwise ring. Collinear points on the hull
/// boundary are dropped.
///
/// Hulls are the classic "simple approximation" intermediate filter of
/// Brinkhoff et al. (SIGMOD'94), which the paper's related work contrasts
/// with raster approximations: a hull can certify disjointness (hulls
/// disjoint => objects disjoint) but — unlike APRIL's P lists — can never
/// certify intersection or containment. bench_ablation_filters quantifies
/// the difference.
Ring ConvexHull(const Polygon& poly);

/// True iff the convex polygons \p a and \p b (CCW rings) share at least one
/// point. Decided by the separating-axis test over both edge sets; exact via
/// the adaptive orientation predicate.
bool ConvexPolygonsIntersect(const Ring& a, const Ring& b);

}  // namespace stj
