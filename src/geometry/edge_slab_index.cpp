#include "src/geometry/edge_slab_index.h"

#include <algorithm>

namespace stj {

EdgeSlabIndex::EdgeSlabIndex(const std::vector<Segment>& edges,
                             const Box& bounds)
    : y_lo_(bounds.min.y) {
  const size_t n = edges.size();
  num_slabs_ = std::max<size_t>(1, n / 4);
  const double height = bounds.Height();
  inv_height_ = (height > 0.0 && num_slabs_ > 1)
                    ? static_cast<double>(num_slabs_) / height
                    : 0.0;
  if (inv_height_ == 0.0) num_slabs_ = 1;
  slabs_.resize(num_slabs_);
  for (size_t i = 0; i < n; ++i) {
    const Segment& e = edges[i];
    const size_t lo = SlabOf(std::min(e.a.y, e.b.y));
    const size_t hi = SlabOf(std::max(e.a.y, e.b.y));
    for (size_t s = lo; s <= hi; ++s) {
      slabs_[s].push_back(static_cast<uint32_t>(i));
    }
  }
  visited_.assign(n, 0);
}

void EdgeSlabIndex::BeginProbe() const {
  if (++stamp_ == 0) {
    std::fill(visited_.begin(), visited_.end(), 0u);
    stamp_ = 1;
  }
}

size_t EdgeSlabIndex::SlabOf(double y) const {
  if (num_slabs_ == 1) return 0;
  const double t = (y - y_lo_) * inv_height_;
  if (t <= 0.0) return 0;
  return std::min(static_cast<size_t>(t), num_slabs_ - 1);
}

}  // namespace stj
