#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/geometry/box.h"
#include "src/geometry/segment.h"

namespace stj {

/// Y-slab index over a flat edge array: buckets edges by the horizontal
/// slabs their y-span overlaps, so a probe for a y-range only visits edges
/// that could intersect it. This is the intersection-discovery index of the
/// DE-9IM boundary arrangement (historically an implementation detail of
/// boundary_arrangement.cpp); it is a standalone class so a PreparedPolygon
/// can build it once per object and reuse it across every candidate pair the
/// object participates in.
///
/// Probe() is const but keeps mutable de-duplication scratch (an edge
/// spanning several slabs must be reported once per probe), so a single
/// index must not be probed from two threads at once. PreparedPolygons are
/// per-worker state, which guarantees exactly that.
class EdgeSlabIndex {
 public:
  /// Builds the index over \p edges, slabbing the y-extent of \p bounds
  /// (the owning polygon's MBR). The edge array must outlive the index.
  EdgeSlabIndex(const std::vector<Segment>& edges, const Box& bounds);

  /// Invokes fn(edge_index) once per edge whose slab range overlaps
  /// [ylo, yhi] — a superset of the edges whose y-span overlaps it.
  template <typename Fn>
  void Probe(double ylo, double yhi, Fn&& fn) const {
    BeginProbe();
    const size_t lo = SlabOf(ylo);
    const size_t hi = SlabOf(yhi);
    for (size_t s = lo; s <= hi; ++s) {
      for (const uint32_t idx : slabs_[s]) {
        if (visited_[idx] == stamp_) continue;
        visited_[idx] = stamp_;
        fn(idx);
      }
    }
  }

 private:
  /// Starts a probe generation, clearing the visited stamps on wrap-around
  /// (a cached index can serve billions of probes over its lifetime).
  void BeginProbe() const;

  size_t SlabOf(double y) const;

  double y_lo_;
  double inv_height_ = 0.0;
  size_t num_slabs_ = 1;
  std::vector<std::vector<uint32_t>> slabs_;
  mutable std::vector<uint32_t> visited_;
  mutable uint32_t stamp_ = 0;
};

}  // namespace stj
