#include "src/geometry/locator.h"

#include <algorithm>
#include <cmath>

#include "src/geometry/predicates.h"

namespace stj {

PolygonLocator::PolygonLocator(const Polygon& poly) : poly_(&poly) {
  const Box& bounds = poly.Bounds();
  const size_t num_edges = poly.VertexCount();
  // ~4 edges per slab on average keeps both build cost and query cost low.
  num_slabs_ = std::max<size_t>(1, num_edges / 4);
  const double height = bounds.Height();
  y_lo_ = bounds.min.y;
  if (height > 0.0 && num_slabs_ > 1) {
    inv_slab_height_ = static_cast<double>(num_slabs_) / height;
  } else {
    num_slabs_ = 1;
    inv_slab_height_ = 0.0;
  }
  slabs_.resize(num_slabs_);
  poly.ForEachEdge([this](const Segment& e) {
    const double lo = std::min(e.a.y, e.b.y);
    const double hi = std::max(e.a.y, e.b.y);
    const size_t first = SlabIndex(lo);
    const size_t last = SlabIndex(hi);
    for (size_t s = first; s <= last; ++s) slabs_[s].push_back(Edge{e.a, e.b});
  });
}

size_t PolygonLocator::SlabIndex(double y) const {
  if (num_slabs_ == 1) return 0;
  const double t = (y - y_lo_) * inv_slab_height_;
  if (t <= 0.0) return 0;
  const size_t idx = static_cast<size_t>(t);
  return std::min(idx, num_slabs_ - 1);
}

Location PolygonLocator::Locate(const Point& p) const {
  if (!poly_->Bounds().Contains(p)) return Location::kExterior;
  const std::vector<Edge>& slab = slabs_[SlabIndex(p.y)];
  bool inside = false;
  for (const Edge& e : slab) {
    // On-boundary test with a cheap bounding-box pre-filter.
    if (p.x >= std::min(e.a.x, e.b.x) && p.x <= std::max(e.a.x, e.b.x) &&
        p.y >= std::min(e.a.y, e.b.y) && p.y <= std::max(e.a.y, e.b.y) &&
        OnSegment(p, e.a, e.b)) {
      return Location::kBoundary;
    }
    // Half-open crossing rule for the +x ray (counts each vertex once).
    if (e.a.y <= p.y) {
      if (e.b.y > p.y && OrientSign(e.a, e.b, p) == Sign::kPositive) {
        inside = !inside;
      }
    } else {
      if (e.b.y <= p.y && OrientSign(e.a, e.b, p) == Sign::kNegative) {
        inside = !inside;
      }
    }
  }
  // Even-odd over all rings equals OGC interior for valid polygons with
  // properly nested holes.
  return inside ? Location::kInterior : Location::kExterior;
}

}  // namespace stj
