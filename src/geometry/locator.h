#pragma once

#include <cstddef>
#include <vector>

#include "src/geometry/point.h"
#include "src/geometry/point_in_polygon.h"
#include "src/geometry/polygon.h"

namespace stj {

/// Accelerated exact point location against one polygon.
///
/// Buckets all ring edges into horizontal slabs; a query only inspects the
/// edges whose y-span overlaps the query point's slab, which is exactly the
/// superset of (a) edges the +x crossing ray can hit and (b) edges the point
/// could lie on. Queries stay exact (adaptive orientation predicate); the slab
/// structure only prunes. Typical query cost is O(sqrt(n)) for blob-like
/// polygons versus O(n) for the plain scan in point_in_polygon.h.
///
/// The DE-9IM relate engine classifies O(n + m) sub-edge midpoints per pair,
/// so this index is what keeps refinement near O((n + m) * sqrt(n)) instead of
/// quadratic.
class PolygonLocator {
 public:
  /// Builds the slab index over all rings of \p poly. The polygon must
  /// outlive the locator.
  explicit PolygonLocator(const Polygon& poly);

  /// Exact topological location of \p p relative to the polygon.
  Location Locate(const Point& p) const;

  /// Convenience: Locate(p) == kInterior.
  bool ContainsInterior(const Point& p) const {
    return Locate(p) == Location::kInterior;
  }

 private:
  struct Edge {
    Point a;
    Point b;
  };

  size_t SlabIndex(double y) const;

  const Polygon* poly_;
  double y_lo_ = 0.0;
  double inv_slab_height_ = 0.0;
  size_t num_slabs_ = 1;
  std::vector<std::vector<Edge>> slabs_;
};

}  // namespace stj
