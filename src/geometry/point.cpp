#include "src/geometry/point.h"

#include <cmath>

namespace stj {

bool LexLess(const Point& a, const Point& b) {
  if (a.x != b.x) return a.x < b.x;
  return a.y < b.y;
}

double Distance(const Point& a, const Point& b) {
  return std::sqrt(DistanceSquared(a, b));
}

double DistanceSquared(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

Point Midpoint(const Point& a, const Point& b) {
  return Point{0.5 * (a.x + b.x), 0.5 * (a.y + b.y)};
}

}  // namespace stj
