#pragma once

#include <cstddef>
#include <functional>

namespace stj {

/// A 2-D point with double coordinates.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
  friend bool operator!=(const Point& a, const Point& b) { return !(a == b); }
};

/// Lexicographic (x, then y) comparison; used to canonicalise segments.
bool LexLess(const Point& a, const Point& b);

/// Euclidean distance between \p a and \p b.
double Distance(const Point& a, const Point& b);

/// Squared Euclidean distance (avoids the sqrt when only comparing).
double DistanceSquared(const Point& a, const Point& b);

/// Midpoint of \p a and \p b.
Point Midpoint(const Point& a, const Point& b);

}  // namespace stj

template <>
struct std::hash<stj::Point> {
  size_t operator()(const stj::Point& p) const noexcept {
    const size_t hx = std::hash<double>{}(p.x);
    const size_t hy = std::hash<double>{}(p.y);
    return hx ^ (hy + 0x9E3779B97F4A7C15ull + (hx << 6) + (hx >> 2));
  }
};
