#include "src/geometry/point_in_polygon.h"

#include "src/geometry/predicates.h"

namespace stj {

Location LocateInRing(const Point& p, const Ring& ring) {
  const size_t n = ring.Size();
  if (n < 3) return Location::kExterior;
  if (!ring.Bounds().Contains(p)) return Location::kExterior;

  bool inside = false;
  for (size_t i = 0; i < n; ++i) {
    const Point& a = ring[i];
    const Point& b = ring[(i + 1 == n) ? 0 : i + 1];
    // Boundary check first: exact collinearity + bounding box.
    if (OnSegment(p, a, b)) return Location::kBoundary;
    // Crossing-number step for the ray going in +x from p. The half-open
    // vertex rule (a.y <= p.y < b.y for upward edges) counts each vertex
    // crossing exactly once.
    if (a.y <= p.y) {
      if (b.y > p.y && OrientSign(a, b, p) == Sign::kPositive) inside = !inside;
    } else {
      if (b.y <= p.y && OrientSign(a, b, p) == Sign::kNegative) inside = !inside;
    }
  }
  return inside ? Location::kInterior : Location::kExterior;
}

Location Locate(const Point& p, const Polygon& poly) {
  const Location outer = LocateInRing(p, poly.Outer());
  if (outer != Location::kInterior) return outer;
  for (const Ring& hole : poly.Holes()) {
    const Location in_hole = LocateInRing(p, hole);
    if (in_hole == Location::kBoundary) return Location::kBoundary;
    if (in_hole == Location::kInterior) return Location::kExterior;
  }
  return Location::kInterior;
}

bool ContainsInterior(const Polygon& poly, const Point& p) {
  return Locate(p, poly) == Location::kInterior;
}

const char* ToString(Location loc) {
  switch (loc) {
    case Location::kInterior: return "interior";
    case Location::kBoundary: return "boundary";
    case Location::kExterior: return "exterior";
  }
  return "?";
}

}  // namespace stj
