#pragma once

#include "src/geometry/point.h"
#include "src/geometry/polygon.h"
#include "src/geometry/ring.h"

namespace stj {

/// Topological location of a point relative to an areal geometry.
enum class Location {
  kInterior,
  kBoundary,
  kExterior,
};

/// Locates \p p relative to the closed region bounded by \p ring.
///
/// Exact: uses the adaptive orientation predicate for both the on-boundary
/// test and ray crossings, so shared-boundary configurations (common in the
/// tessellation datasets) are classified correctly.
Location LocateInRing(const Point& p, const Ring& ring);

/// Locates \p p relative to \p poly under OGC semantics: on any ring is
/// kBoundary; inside the outer ring but inside a hole is kExterior.
Location Locate(const Point& p, const Polygon& poly);

/// Convenience: true iff Locate(p, poly) == kInterior.
bool ContainsInterior(const Polygon& poly, const Point& p);

const char* ToString(Location loc);

}  // namespace stj
