#include "src/geometry/point_on_surface.h"

#include <algorithm>
#include <vector>

#include "src/geometry/point_in_polygon.h"

namespace stj {

namespace {

// Collects the y-coordinates of all vertices, sorted and deduplicated.
std::vector<double> DistinctVertexYs(const Polygon& poly) {
  std::vector<double> ys;
  ys.reserve(poly.VertexCount());
  for (const Point& p : poly.Outer().Vertices()) ys.push_back(p.y);
  for (const Ring& hole : poly.Holes()) {
    for (const Point& p : hole.Vertices()) ys.push_back(p.y);
  }
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());
  return ys;
}

// X-coordinates where the polygon boundary crosses the horizontal line at
// level y. Requires y to differ from every vertex y, so every crossing is a
// proper edge crossing and parity along the line is well defined.
std::vector<double> CrossingsAtLevel(const Polygon& poly, double y) {
  std::vector<double> xs;
  poly.ForEachEdge([&](const Segment& e) {
    const double y0 = e.a.y;
    const double y1 = e.b.y;
    if ((y0 < y && y1 > y) || (y1 < y && y0 > y)) {
      const double t = (y - y0) / (y1 - y0);
      xs.push_back(e.a.x + t * (e.b.x - e.a.x));
    }
  });
  std::sort(xs.begin(), xs.end());
  return xs;
}

}  // namespace

bool PointOnSurface(const Polygon& poly, Point* out) {
  if (poly.Empty() || poly.Outer().Size() < 3) return false;
  const std::vector<double> ys = DistinctVertexYs(poly);
  if (ys.size() < 2) return false;

  // Candidate scan levels: midpoints of consecutive distinct vertex
  // y-levels, tried from the vertical middle of the polygon outwards.
  std::vector<double> levels;
  levels.reserve(ys.size() - 1);
  for (size_t i = 0; i + 1 < ys.size(); ++i) {
    levels.push_back(0.5 * (ys[i] + ys[i + 1]));
  }
  const double mid_y = poly.Bounds().Center().y;
  std::sort(levels.begin(), levels.end(), [mid_y](double a, double b) {
    const double da = a < mid_y ? mid_y - a : a - mid_y;
    const double db = b < mid_y ? mid_y - b : b - mid_y;
    return da < db;
  });

  for (const double y : levels) {
    const std::vector<double> xs = CrossingsAtLevel(poly, y);
    // Consecutive crossings alternate exterior -> interior -> exterior -> ...
    // Pick the widest interior span for numerical head-room.
    double best_width = 0.0;
    Point best{};
    for (size_t i = 0; i + 1 < xs.size(); i += 2) {
      const double width = xs[i + 1] - xs[i];
      if (width > best_width) {
        best_width = width;
        best = Point{0.5 * (xs[i] + xs[i + 1]), y};
      }
    }
    if (best_width > 0.0 && Locate(best, poly) == Location::kInterior) {
      *out = best;
      return true;
    }
  }
  return false;
}

}  // namespace stj
