#pragma once

#include "src/geometry/point.h"
#include "src/geometry/polygon.h"

namespace stj {

/// Returns a point strictly in the interior of \p poly.
///
/// Uses a horizontal scanline placed between distinct vertex y-levels near the
/// middle of the bounding box: the sorted edge crossings along the line split
/// it into alternating exterior/interior spans, and the midpoint of the widest
/// interior span is returned (verified against Locate(), retrying on other
/// levels if double rounding lands the candidate on the boundary).
///
/// The DE-9IM relate engine uses this as its containment fallback when two
/// boundaries touch without providing a classifiable sub-edge, so the result
/// must be a true interior point even for polygons with holes.
/// Returns false only for degenerate (empty or sliver) polygons.
bool PointOnSurface(const Polygon& poly, Point* out);

}  // namespace stj
