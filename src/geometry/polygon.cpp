#include "src/geometry/polygon.h"

namespace stj {

Polygon::Polygon(Ring outer, std::vector<Ring> holes)
    : outer_(std::move(outer)), holes_(std::move(holes)) {
  if (!outer_.Empty() && !outer_.IsCCW()) outer_.Reverse();
  for (Ring& hole : holes_) {
    if (!hole.Empty() && hole.IsCCW()) hole.Reverse();
  }
}

size_t Polygon::VertexCount() const {
  size_t n = outer_.Size();
  for (const Ring& hole : holes_) n += hole.Size();
  return n;
}

double Polygon::Area() const {
  double area = outer_.Area();
  for (const Ring& hole : holes_) area -= hole.Area();
  return area;
}

}  // namespace stj
