#pragma once

#include <cstdint>
#include <vector>

#include "src/geometry/ring.h"

namespace stj {

/// A simple polygon with optional holes.
///
/// The outer ring is normalised to counter-clockwise winding and each hole to
/// clockwise winding on construction. The polygon's interior is the interior
/// of the outer ring minus the closed holes; hole interiors belong to the
/// polygon's exterior (OGC semantics, which DE-9IM assumes).
class Polygon {
 public:
  Polygon() = default;

  /// Builds a polygon from an outer ring and zero or more holes, normalising
  /// winding orders.
  explicit Polygon(Ring outer, std::vector<Ring> holes = {});

  const Ring& Outer() const { return outer_; }
  const std::vector<Ring>& Holes() const { return holes_; }
  bool Empty() const { return outer_.Empty(); }

  /// Total number of vertices across all rings — the paper's complexity
  /// measure (Table 4 groups pairs by the sum of the two polygons' counts).
  size_t VertexCount() const;

  /// Number of rings (1 outer + holes).
  size_t RingCount() const { return 1 + holes_.size(); }

  /// Bounding box of the outer ring.
  const Box& Bounds() const { return outer_.Bounds(); }

  /// Area of the outer ring minus the hole areas.
  double Area() const;

  /// Invokes \p fn for every directed edge of every ring.
  template <typename Fn>
  void ForEachEdge(Fn&& fn) const {
    for (size_t i = 0; i < outer_.Size(); ++i) fn(outer_.Edge(i));
    for (const Ring& hole : holes_) {
      for (size_t i = 0; i < hole.Size(); ++i) fn(hole.Edge(i));
    }
  }

 private:
  Ring outer_;
  std::vector<Ring> holes_;
};

/// A polygon plus the identity and precomputed metadata a dataset entry
/// carries through the join pipeline.
struct SpatialObject {
  uint32_t id = 0;
  Polygon geometry;
};

}  // namespace stj
