#include "src/geometry/predicates.h"

#include <algorithm>
#include <cmath>

// Adaptive-precision orientation predicate after
//   J. R. Shewchuk, "Adaptive Precision Floating-Point Arithmetic and Fast
//   Robust Geometric Predicates", Discrete & Computational Geometry 18, 1997.
// The exact products use std::fma instead of Dekker splitting; on any IEEE-754
// platform fma(a, b, -a*b) yields the exact rounding error of the product.

namespace stj {

namespace {

// Machine epsilon for double rounding: 2^-53.
constexpr double kEps = 1.1102230246251565e-16;
constexpr double kCcwErrBoundA = (3.0 + 16.0 * kEps) * kEps;
constexpr double kCcwErrBoundB = (2.0 + 12.0 * kEps) * kEps;
constexpr double kCcwErrBoundC = (9.0 + 64.0 * kEps) * kEps * kEps;
constexpr double kResultErrBound = (3.0 + 8.0 * kEps) * kEps;

// Exact sum: a + b = x + y with x = fl(a + b), |y| <= ulp(x)/2.
inline void TwoSum(double a, double b, double* x, double* y) {
  *x = a + b;
  const double bvirt = *x - a;
  const double avirt = *x - bvirt;
  const double bround = b - bvirt;
  const double around = a - avirt;
  *y = around + bround;
}

// Exact difference: a - b = x + y.
inline void TwoDiff(double a, double b, double* x, double* y) {
  *x = a - b;
  const double bvirt = a - *x;
  const double avirt = *x + bvirt;
  const double bround = bvirt - b;
  const double around = a - avirt;
  *y = around + bround;
}

// Exact sum assuming |a| >= |b|.
inline void FastTwoSum(double a, double b, double* x, double* y) {
  *x = a + b;
  const double bvirt = *x - a;
  *y = b - bvirt;
}

// Exact product: a * b = x + y.
inline void TwoProduct(double a, double b, double* x, double* y) {
  *x = a * b;
  *y = std::fma(a, b, -*x);
}

// (a1 + a0) - (b1 + b0) expressed exactly as a four-component expansion
// (x3 + x2 + x1 + x0), components in increasing magnitude order.
inline void TwoTwoDiff(double a1, double a0, double b1, double b0, double* x3,
                       double* x2, double* x1, double* x0) {
  double j, r0, t1, t0, u1;
  TwoDiff(a0, b0, &t1, x0);
  TwoSum(a1, t1, &u1, &t0);
  TwoSum(u1, t0, &j, &r0);  // Note: normalisation pass.
  TwoDiff(j, b1, &t1, &t0);
  TwoSum(r0, t0, &u1, x1);
  TwoSum(t1, u1, &j, x2);
  *x3 = j;
}

// Sums two nonoverlapping expansions, eliminating zero components.
// e (of length elen) and f (of length flen) are sorted by increasing
// magnitude; the result h may alias neither input. Returns the length of h.
int FastExpansionSumZeroElim(int elen, const double* e, int flen, const double* f,
                             double* h) {
  // Faithful port of Shewchuk's fast_expansion_sum_zeroelim with bounds-guarded
  // reads (the reference reads one element past the consumed array; the value
  // is never used, but we avoid the out-of-bounds access entirely).
  double q, qnew, hh;
  int eindex = 0;
  int findex = 0;
  double enow = e[0];
  double fnow = f[0];
  if ((fnow > enow) == (fnow > -enow)) {
    q = enow;
    ++eindex;
    enow = eindex < elen ? e[eindex] : 0.0;
  } else {
    q = fnow;
    ++findex;
    fnow = findex < flen ? f[findex] : 0.0;
  }
  int hindex = 0;
  if ((eindex < elen) && (findex < flen)) {
    if ((fnow > enow) == (fnow > -enow)) {
      FastTwoSum(enow, q, &qnew, &hh);
      ++eindex;
      enow = eindex < elen ? e[eindex] : 0.0;
    } else {
      FastTwoSum(fnow, q, &qnew, &hh);
      ++findex;
      fnow = findex < flen ? f[findex] : 0.0;
    }
    q = qnew;
    if (hh != 0.0) h[hindex++] = hh;
    while ((eindex < elen) && (findex < flen)) {
      if ((fnow > enow) == (fnow > -enow)) {
        TwoSum(q, enow, &qnew, &hh);
        ++eindex;
        enow = eindex < elen ? e[eindex] : 0.0;
      } else {
        TwoSum(q, fnow, &qnew, &hh);
        ++findex;
        fnow = findex < flen ? f[findex] : 0.0;
      }
      q = qnew;
      if (hh != 0.0) h[hindex++] = hh;
    }
  }
  while (eindex < elen) {
    TwoSum(q, enow, &qnew, &hh);
    ++eindex;
    enow = eindex < elen ? e[eindex] : 0.0;
    q = qnew;
    if (hh != 0.0) h[hindex++] = hh;
  }
  while (findex < flen) {
    TwoSum(q, fnow, &qnew, &hh);
    ++findex;
    fnow = findex < flen ? f[findex] : 0.0;
    q = qnew;
    if (hh != 0.0) h[hindex++] = hh;
  }
  if ((q != 0.0) || (hindex == 0)) h[hindex++] = q;
  return hindex;
}

double Estimate(int elen, const double* e) {
  double q = e[0];
  for (int i = 1; i < elen; i++) q += e[i];
  return q;
}

double Orient2DAdapt(const Point& pa, const Point& pb, const Point& pc,
                     double detsum) {
  const double acx = pa.x - pc.x;
  const double bcx = pb.x - pc.x;
  const double acy = pa.y - pc.y;
  const double bcy = pb.y - pc.y;

  double detleft, detlefttail, detright, detrighttail;
  TwoProduct(acx, bcy, &detleft, &detlefttail);
  TwoProduct(acy, bcx, &detright, &detrighttail);

  double B[4];
  TwoTwoDiff(detleft, detlefttail, detright, detrighttail, &B[3], &B[2], &B[1],
             &B[0]);

  double det = Estimate(4, B);
  double errbound = kCcwErrBoundB * detsum;
  if ((det >= errbound) || (-det >= errbound)) return det;

  double acxtail, bcxtail, acytail, bcytail;
  TwoDiff(pa.x, pc.x, &detleft, &acxtail);  // detleft reused as scratch head
  TwoDiff(pb.x, pc.x, &detright, &bcxtail);
  TwoDiff(pa.y, pc.y, &detlefttail, &acytail);
  TwoDiff(pb.y, pc.y, &detrighttail, &bcytail);

  if ((acxtail == 0.0) && (acytail == 0.0) && (bcxtail == 0.0) &&
      (bcytail == 0.0)) {
    return det;
  }

  errbound = kCcwErrBoundC * detsum + kResultErrBound * std::abs(det);
  det += (acx * bcytail + bcy * acxtail) - (acy * bcxtail + bcx * acytail);
  if ((det >= errbound) || (-det >= errbound)) return det;

  double s1, s0, t1, t0;
  double u[4];
  double C1[8], C2[12], D[16];

  TwoProduct(acxtail, bcy, &s1, &s0);
  TwoProduct(acytail, bcx, &t1, &t0);
  TwoTwoDiff(s1, s0, t1, t0, &u[3], &u[2], &u[1], &u[0]);
  const int c1length = FastExpansionSumZeroElim(4, B, 4, u, C1);

  TwoProduct(acx, bcytail, &s1, &s0);
  TwoProduct(acy, bcxtail, &t1, &t0);
  TwoTwoDiff(s1, s0, t1, t0, &u[3], &u[2], &u[1], &u[0]);
  const int c2length = FastExpansionSumZeroElim(c1length, C1, 4, u, C2);

  TwoProduct(acxtail, bcytail, &s1, &s0);
  TwoProduct(acytail, bcxtail, &t1, &t0);
  TwoTwoDiff(s1, s0, t1, t0, &u[3], &u[2], &u[1], &u[0]);
  const int dlength = FastExpansionSumZeroElim(c2length, C2, 4, u, D);

  return D[dlength - 1];
}

}  // namespace

double Orient2D(const Point& pa, const Point& pb, const Point& pc) {
  const double detleft = (pa.x - pc.x) * (pb.y - pc.y);
  const double detright = (pa.y - pc.y) * (pb.x - pc.x);
  const double det = detleft - detright;
  double detsum;

  if (detleft > 0.0) {
    if (detright <= 0.0) return det;
    detsum = detleft + detright;
  } else if (detleft < 0.0) {
    if (detright >= 0.0) return det;
    detsum = -detleft - detright;
  } else {
    return det;
  }

  const double errbound = kCcwErrBoundA * detsum;
  if ((det >= errbound) || (-det >= errbound)) return det;

  return Orient2DAdapt(pa, pb, pc, detsum);
}

Sign OrientSign(const Point& a, const Point& b, const Point& c) {
  const double det = Orient2D(a, b, c);
  if (det > 0.0) return Sign::kPositive;
  if (det < 0.0) return Sign::kNegative;
  return Sign::kZero;
}

bool Collinear(const Point& a, const Point& b, const Point& c) {
  return OrientSign(a, b, c) == Sign::kZero;
}

bool OnSegment(const Point& p, const Point& a, const Point& b) {
  if (!Collinear(a, b, p)) return false;
  return p.x >= std::min(a.x, b.x) && p.x <= std::max(a.x, b.x) &&
         p.y >= std::min(a.y, b.y) && p.y <= std::max(a.y, b.y);
}

}  // namespace stj
