#pragma once

#include "src/geometry/point.h"

namespace stj {

/// Sign of an exact geometric quantity.
enum class Sign { kNegative = -1, kZero = 0, kPositive = 1 };

/// Exact sign of the 2x2 determinant
///   | a.x - c.x   a.y - c.y |
///   | b.x - c.x   b.y - c.y |
/// i.e. the orientation of the triangle (a, b, c):
/// positive = counter-clockwise, negative = clockwise, zero = collinear.
///
/// Implemented as Shewchuk's adaptive-precision predicate: a fast floating-
/// point evaluation with a certified error bound, falling back to exact
/// expansion arithmetic only when the fast result is ambiguous. Exactness
/// matters here because the tessellation datasets share polygon boundaries
/// bit-for-bit, making collinear/degenerate configurations the common case
/// rather than the exception.
double Orient2D(const Point& a, const Point& b, const Point& c);

/// Sign of Orient2D.
Sign OrientSign(const Point& a, const Point& b, const Point& c);

/// True iff a, b, c are collinear (OrientSign == kZero).
bool Collinear(const Point& a, const Point& b, const Point& c);

/// True iff \p p lies on the closed segment [a, b] (collinear and within the
/// segment's bounding box). Exact.
bool OnSegment(const Point& p, const Point& a, const Point& b);

}  // namespace stj
