#include "src/geometry/prepared_polygon.h"

#include "src/geometry/point_on_surface.h"
#include "src/geometry/ring.h"

namespace stj {

const PolygonLocator& PreparedPolygon::Locator() const {
  if (external_locator_ != nullptr) return *external_locator_;
  if (locator_ == nullptr) locator_ = std::make_unique<PolygonLocator>(*poly_);
  return *locator_;
}

void PreparedPolygon::BuildEdges() const {
  if (edges_built_) return;
  edges_built_ = true;
  edges_.reserve(poly_->VertexCount());
  rings_.reserve(poly_->RingCount());
  const auto add_ring = [this](const Ring& ring) {
    RingRange range;
    range.begin = static_cast<uint32_t>(edges_.size());
    for (size_t i = 0; i < ring.Size(); ++i) edges_.push_back(ring.Edge(i));
    range.end = static_cast<uint32_t>(edges_.size());
    range.bounds = ring.Bounds();
    rings_.push_back(range);
  };
  add_ring(poly_->Outer());
  for (const Ring& hole : poly_->Holes()) add_ring(hole);
}

const std::vector<Segment>& PreparedPolygon::Edges() const {
  BuildEdges();
  return edges_;
}

const std::vector<PreparedPolygon::RingRange>& PreparedPolygon::Rings() const {
  BuildEdges();
  return rings_;
}

const EdgeSlabIndex& PreparedPolygon::EdgeIndex() const {
  if (index_ == nullptr) {
    BuildEdges();
    index_ = std::make_unique<EdgeSlabIndex>(edges_, poly_->Bounds());
  }
  return *index_;
}

const Point* PreparedPolygon::InteriorPoint() const {
  if (!interior_computed_) {
    interior_computed_ = true;
    Point p;
    if (PointOnSurface(*poly_, &p)) interior_ = p;
  }
  return interior_.has_value() ? &*interior_ : nullptr;
}

void PreparedPolygon::Warm() const {
  Locator();
  EdgeIndex();
}

size_t PreparedPolygon::EstimateBytes(const Polygon& poly) {
  // Per vertex: one Segment in the edge array (32 B), one Edge{a, b} in a
  // locator slab (32 B, edges spanning slabs counted once), one uint32 slab
  // entry + one uint32 visited stamp in the edge index (8 B), plus ~24 B of
  // slab-vector overhead across both indexes at ~4 edges per slab.
  constexpr size_t kBytesPerVertex = 96;
  constexpr size_t kFixedOverhead = 512;
  return sizeof(PreparedPolygon) + kFixedOverhead +
         poly.VertexCount() * kBytesPerVertex;
}

}  // namespace stj
