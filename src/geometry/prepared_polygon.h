#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/geometry/box.h"
#include "src/geometry/edge_slab_index.h"
#include "src/geometry/locator.h"
#include "src/geometry/point.h"
#include "src/geometry/polygon.h"
#include "src/geometry/segment.h"

namespace stj {

/// A polygon bundled with every per-object structure DE-9IM refinement
/// needs, so that the build cost is paid once per object instead of once per
/// candidate pair:
///
///  - the PolygonLocator slab index (sub-edge midpoint classification),
///  - the flattened edge array with per-ring index ranges and ring MBRs
///    (arrangement construction and ring-level quick rejects),
///  - an EdgeSlabIndex over those edges (boundary intersection discovery),
///  - the memoized PointOnSurface representative point (the interior/
///    interior containment fallback, which shared-boundary pairs hit on
///    nearly every refinement).
///
/// Every component is a deterministic pure function of the polygon, so a
/// relate computed through a PreparedPolygon — fresh, cached, or reused a
/// thousand times — is byte-identical to the cold two-polygon path, which
/// itself delegates through one-shot PreparedPolygons.
///
/// Components build lazily on first use, so a one-shot PreparedPolygon costs
/// no more than the cold path it replaced; Warm() materialises the locator
/// and edge index eagerly for cache insertion (the representative point
/// stays lazy: not every pair needs it, and memoization amortises it just
/// as well). Lazy state is mutable and NOT thread-safe: a PreparedPolygon
/// is per-worker state (see the Pipeline prepared cache) and must not be
/// shared across threads.
///
/// The referenced Polygon (and any external locator) must outlive the
/// PreparedPolygon.
class PreparedPolygon {
 public:
  /// Edges [begin, end) of one ring in Edges() order, with the ring's MBR.
  struct RingRange {
    uint32_t begin = 0;
    uint32_t end = 0;
    Box bounds = Box::Empty();
  };

  PreparedPolygon() = default;
  explicit PreparedPolygon(const Polygon& poly) : poly_(&poly) {}

  /// As above but classifying against a caller-owned locator instead of
  /// building one (the RelateEngine locator-overload compatibility path).
  PreparedPolygon(const Polygon& poly, const PolygonLocator* locator)
      : poly_(&poly), external_locator_(locator) {}

  PreparedPolygon(PreparedPolygon&&) = default;
  PreparedPolygon& operator=(PreparedPolygon&&) = default;
  PreparedPolygon(const PreparedPolygon&) = delete;
  PreparedPolygon& operator=(const PreparedPolygon&) = delete;

  const Polygon& Geometry() const { return *poly_; }
  const Box& Bounds() const { return poly_->Bounds(); }

  /// The point-location slab index (built on first use).
  const PolygonLocator& Locator() const;

  /// All edges, flattened in ForEachEdge order: outer ring, then holes.
  const std::vector<Segment>& Edges() const;

  /// Per-ring [begin, end) ranges into Edges(), with ring MBRs.
  const std::vector<RingRange>& Rings() const;

  /// The y-slab intersection-discovery index over Edges() (built on first
  /// use, over the polygon's own bounds).
  const EdgeSlabIndex& EdgeIndex() const;

  /// The memoized PointOnSurface representative interior point, or nullptr
  /// for degenerate polygons. Computed at most once per object.
  const Point* InteriorPoint() const;

  /// Materialises the locator, edge array, and edge index now — called on
  /// cache insertion so the build cost lands in one place (and in the
  /// prepared_build_seconds stat) instead of inside the first relate.
  void Warm() const;

  /// Deterministic accounting estimate of the fully-warmed memory footprint
  /// (edge array + locator slabs + edge index + fixed overhead), used by the
  /// prepared cache's byte budget. Independent of which components are
  /// currently materialised.
  static size_t EstimateBytes(const Polygon& poly);

 private:
  void BuildEdges() const;

  const Polygon* poly_ = nullptr;
  const PolygonLocator* external_locator_ = nullptr;
  mutable std::unique_ptr<PolygonLocator> locator_;
  mutable std::unique_ptr<EdgeSlabIndex> index_;
  mutable std::vector<Segment> edges_;
  mutable std::vector<RingRange> rings_;
  mutable bool edges_built_ = false;
  mutable bool interior_computed_ = false;
  mutable std::optional<Point> interior_;
};

}  // namespace stj
