#include "src/geometry/ring.h"

#include <algorithm>

namespace stj {

Ring::Ring(std::vector<Point> vertices) : vertices_(std::move(vertices)) {
  // Drop an explicit closing vertex if the caller provided one.
  if (vertices_.size() >= 2 && vertices_.front() == vertices_.back()) {
    vertices_.pop_back();
  }
  for (const Point& p : vertices_) bounds_.Expand(p);
}

Segment Ring::Edge(size_t i) const {
  const size_t j = (i + 1 == vertices_.size()) ? 0 : i + 1;
  return Segment{vertices_[i], vertices_[j]};
}

double Ring::SignedArea2() const {
  const size_t n = vertices_.size();
  if (n < 3) return 0.0;
  double acc = 0.0;
  // Shoelace relative to vertex 0 for better conditioning.
  const Point& o = vertices_[0];
  for (size_t i = 1; i + 1 < n; ++i) {
    const double ax = vertices_[i].x - o.x;
    const double ay = vertices_[i].y - o.y;
    const double bx = vertices_[i + 1].x - o.x;
    const double by = vertices_[i + 1].y - o.y;
    acc += ax * by - ay * bx;
  }
  return acc;
}

void Ring::Reverse() { std::reverse(vertices_.begin(), vertices_.end()); }

void Ring::PushBack(const Point& p) {
  vertices_.push_back(p);
  bounds_.Expand(p);
}

}  // namespace stj
