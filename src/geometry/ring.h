#pragma once

#include <cstddef>
#include <vector>

#include "src/geometry/box.h"
#include "src/geometry/point.h"
#include "src/geometry/segment.h"

namespace stj {

/// A closed polygonal ring.
///
/// Vertices are stored without a repeated closing vertex; the edge from
/// back() to front() is implicit. A valid ring has at least 3 vertices, no
/// repeated consecutive vertices, and no self-intersections (checked by
/// Validate() in validate.h, not enforced on construction).
class Ring {
 public:
  Ring() = default;
  explicit Ring(std::vector<Point> vertices);

  size_t Size() const { return vertices_.size(); }
  bool Empty() const { return vertices_.empty(); }
  const Point& operator[](size_t i) const { return vertices_[i]; }
  const std::vector<Point>& Vertices() const { return vertices_; }

  /// The i-th directed edge, from vertex i to vertex (i+1) mod Size().
  Segment Edge(size_t i) const;

  /// Twice the signed area (shoelace); positive for counter-clockwise rings.
  double SignedArea2() const;

  /// Absolute enclosed area.
  double Area() const { return 0.5 * (SignedArea2() < 0 ? -SignedArea2() : SignedArea2()); }

  /// True iff the vertices wind counter-clockwise.
  bool IsCCW() const { return SignedArea2() > 0.0; }

  /// Reverses the winding direction in place.
  void Reverse();

  /// Bounding box of all vertices.
  const Box& Bounds() const { return bounds_; }

  /// Appends a vertex and extends the bounding box. Intended for builders;
  /// the ring is closed implicitly.
  void PushBack(const Point& p);

  friend bool operator==(const Ring& a, const Ring& b) {
    return a.vertices_ == b.vertices_;
  }

 private:
  std::vector<Point> vertices_;
  Box bounds_ = Box::Empty();
};

}  // namespace stj
