#include "src/geometry/segment.h"

#include <algorithm>
#include <cmath>

namespace stj {

namespace {

// Parameter of point c along segment [a, b] using the dominant axis, for
// ordering collinear points. Not normalised; monotone along the segment.
double AxisParam(const Point& a, const Point& b, const Point& c) {
  if (std::abs(b.x - a.x) >= std::abs(b.y - a.y)) return c.x - a.x;
  return c.y - a.y;
}

}  // namespace

bool SegmentsIntersect(const Point& p, const Point& q, const Point& u,
                       const Point& v) {
  const Sign d1 = OrientSign(u, v, p);
  const Sign d2 = OrientSign(u, v, q);
  const Sign d3 = OrientSign(p, q, u);
  const Sign d4 = OrientSign(p, q, v);

  if (static_cast<int>(d1) * static_cast<int>(d2) < 0 &&
      static_cast<int>(d3) * static_cast<int>(d4) < 0) {
    return true;  // proper crossing
  }
  if (d1 == Sign::kZero && OnSegment(p, u, v)) return true;
  if (d2 == Sign::kZero && OnSegment(q, u, v)) return true;
  if (d3 == Sign::kZero && OnSegment(u, p, q)) return true;
  if (d4 == Sign::kZero && OnSegment(v, p, q)) return true;
  return false;
}

SegIntersection IntersectSegments(const Point& p, const Point& q, const Point& u,
                                  const Point& v) {
  SegIntersection out;
  const Sign d1 = OrientSign(u, v, p);
  const Sign d2 = OrientSign(u, v, q);
  const Sign d3 = OrientSign(p, q, u);
  const Sign d4 = OrientSign(p, q, v);

  // Collinear configuration: all four orientations vanish (or the degenerate
  // segments below). Compute the 1-D overlap along the dominant axis.
  if (d1 == Sign::kZero && d2 == Sign::kZero && d3 == Sign::kZero &&
      d4 == Sign::kZero) {
    // All four points are on one line. Order them along it.
    const Point* lo1 = &p;
    const Point* hi1 = &q;
    if (AxisParam(p, q, *hi1) < AxisParam(p, q, *lo1)) std::swap(lo1, hi1);
    const Point* lo2 = &u;
    const Point* hi2 = &v;
    if (AxisParam(p, q, *hi2) < AxisParam(p, q, *lo2)) std::swap(lo2, hi2);
    const Point* lo = AxisParam(p, q, *lo1) < AxisParam(p, q, *lo2) ? lo2 : lo1;
    const Point* hi = AxisParam(p, q, *hi1) < AxisParam(p, q, *hi2) ? hi1 : hi2;
    const double tlo = AxisParam(p, q, *lo);
    const double thi = AxisParam(p, q, *hi);
    if (tlo > thi) return out;  // disjoint collinear
    if (*lo == *hi || tlo == thi) {
      out.kind = SegIntersectKind::kPoint;
      out.p0 = *lo;
      return out;
    }
    out.kind = SegIntersectKind::kOverlap;
    out.p0 = *lo;
    out.p1 = *hi;
    return out;
  }

  if (static_cast<int>(d1) * static_cast<int>(d2) < 0 &&
      static_cast<int>(d3) * static_cast<int>(d4) < 0) {
    // Proper crossing: compute the crossing point in double precision. The
    // orientation tests above already certified existence and properness.
    const double rx = q.x - p.x;
    const double ry = q.y - p.y;
    const double sx = v.x - u.x;
    const double sy = v.y - u.y;
    const double denom = rx * sy - ry * sx;
    const double t = ((u.x - p.x) * sy - (u.y - p.y) * sx) / denom;
    out.kind = SegIntersectKind::kPoint;
    out.p0 = Point{p.x + t * rx, p.y + t * ry};
    out.proper = true;
    return out;
  }

  // Touch cases: an endpoint of one segment lies on the other.
  if (d1 == Sign::kZero && OnSegment(p, u, v)) {
    out.kind = SegIntersectKind::kPoint;
    out.p0 = p;
    return out;
  }
  if (d2 == Sign::kZero && OnSegment(q, u, v)) {
    out.kind = SegIntersectKind::kPoint;
    out.p0 = q;
    return out;
  }
  if (d3 == Sign::kZero && OnSegment(u, p, q)) {
    out.kind = SegIntersectKind::kPoint;
    out.p0 = u;
    return out;
  }
  if (d4 == Sign::kZero && OnSegment(v, p, q)) {
    out.kind = SegIntersectKind::kPoint;
    out.p0 = v;
    return out;
  }
  return out;
}

}  // namespace stj
