#pragma once

#include "src/geometry/box.h"
#include "src/geometry/point.h"
#include "src/geometry/predicates.h"

namespace stj {

/// A directed line segment from a to b.
struct Segment {
  Point a;
  Point b;

  Box Bounds() const { return Box::Of(a, b); }
  Point Mid() const { return Midpoint(a, b); }
  bool IsDegenerate() const { return a == b; }
};

/// The shape of the intersection of two segments.
enum class SegIntersectKind {
  kNone,     ///< Segments share no point.
  kPoint,    ///< Exactly one shared point (crossing or touch).
  kOverlap,  ///< Collinear segments sharing a positive-length piece.
};

/// Full description of a segment-segment intersection.
///
/// For kPoint, `p0` is the shared point (exact when it is an endpoint of one
/// of the inputs, otherwise the double-rounded line crossing).
/// For kOverlap, [p0, p1] is the shared collinear piece, with p0, p1 taken
/// from the input endpoints (and hence exact).
struct SegIntersection {
  SegIntersectKind kind = SegIntersectKind::kNone;
  Point p0;
  Point p1;
  /// True when the intersection is a single point interior to both segments,
  /// i.e. the segments properly cross.
  bool proper = false;
};

/// True iff the closed segments [p, q] and [u, v] share at least one point.
/// Decided exactly via orientation signs.
bool SegmentsIntersect(const Point& p, const Point& q, const Point& u,
                       const Point& v);

/// Computes the full intersection of closed segments [p, q] and [u, v].
SegIntersection IntersectSegments(const Point& p, const Point& q, const Point& u,
                                  const Point& v);

}  // namespace stj
