#include "src/geometry/simplify.h"

#include <cmath>
#include <vector>

namespace stj {

namespace {

// Squared distance from p to the segment [a, b].
double SegmentDistanceSquared(const Point& p, const Point& a, const Point& b) {
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double len_sq = dx * dx + dy * dy;
  if (len_sq == 0.0) return DistanceSquared(p, a);
  double t = ((p.x - a.x) * dx + (p.y - a.y) * dy) / len_sq;
  t = t < 0.0 ? 0.0 : (t > 1.0 ? 1.0 : t);
  const Point closest{a.x + t * dx, a.y + t * dy};
  return DistanceSquared(p, closest);
}

// Marks the vertices of pts[first..last] (inclusive) to keep, recursively.
void DouglasPeucker(const std::vector<Point>& pts, size_t first, size_t last,
                    double eps_sq, std::vector<bool>* keep) {
  if (last <= first + 1) return;
  double max_dist = -1.0;
  size_t max_index = first;
  for (size_t i = first + 1; i < last; ++i) {
    const double d = SegmentDistanceSquared(pts[i], pts[first], pts[last]);
    if (d > max_dist) {
      max_dist = d;
      max_index = i;
    }
  }
  if (max_dist > eps_sq) {
    (*keep)[max_index] = true;
    DouglasPeucker(pts, first, max_index, eps_sq, keep);
    DouglasPeucker(pts, max_index, last, eps_sq, keep);
  }
}

}  // namespace

Ring SimplifyRing(const Ring& ring, double epsilon) {
  const size_t n = ring.Size();
  if (n <= 3) return ring;
  const std::vector<Point>& pts = ring.Vertices();

  // Anchor the closed ring at vertex 0 and the vertex farthest from it.
  size_t far_index = 1;
  double far_dist = -1.0;
  for (size_t i = 1; i < n; ++i) {
    const double d = DistanceSquared(pts[0], pts[i]);
    if (d > far_dist) {
      far_dist = d;
      far_index = i;
    }
  }

  std::vector<bool> keep(n, false);
  keep[0] = true;
  keep[far_index] = true;
  const double eps_sq = epsilon * epsilon;
  DouglasPeucker(pts, 0, far_index, eps_sq, &keep);
  // Second half wraps around: simplify on a rotated copy.
  std::vector<Point> wrapped(pts.begin() + static_cast<long>(far_index),
                             pts.end());
  wrapped.push_back(pts[0]);
  std::vector<bool> keep_wrapped(wrapped.size(), false);
  keep_wrapped.front() = true;
  keep_wrapped.back() = true;
  DouglasPeucker(wrapped, 0, wrapped.size() - 1, eps_sq, &keep_wrapped);
  for (size_t i = 1; i + 1 < wrapped.size(); ++i) {
    if (keep_wrapped[i]) keep[far_index + i] = true;
  }

  std::vector<Point> result;
  for (size_t i = 0; i < n; ++i) {
    if (keep[i]) result.push_back(pts[i]);
  }
  // Guarantee at least a triangle.
  if (result.size() < 3) {
    result = {pts[0], pts[n / 3], pts[(2 * n) / 3]};
  }
  return Ring(std::move(result));
}

Polygon SimplifyPolygon(const Polygon& poly, double epsilon) {
  Ring outer = SimplifyRing(poly.Outer(), epsilon);
  std::vector<Ring> holes;
  for (const Ring& hole : poly.Holes()) {
    // Tiny holes vanish entirely under the tolerance.
    if (hole.Bounds().Width() < epsilon && hole.Bounds().Height() < epsilon) {
      continue;
    }
    Ring simplified = SimplifyRing(hole, epsilon);
    if (simplified.Size() >= 3 && simplified.SignedArea2() != 0.0) {
      holes.push_back(std::move(simplified));
    }
  }
  return Polygon(std::move(outer), std::move(holes));
}

}  // namespace stj
