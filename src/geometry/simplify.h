#pragma once

#include "src/geometry/polygon.h"
#include "src/geometry/ring.h"

namespace stj {

/// Douglas-Peucker ring simplification with tolerance \p epsilon (maximum
/// allowed deviation from the original boundary). The ring is treated as
/// closed: the two vertices farthest apart anchor the recursion so closed
/// shapes do not collapse. At least a triangle is always kept.
///
/// Used by the data tooling to derive lower-complexity variants of a dataset
/// (the complexity knob of the scalability study) and representative of the
/// preprocessing real GIS pipelines apply before topology joins. Note that
/// Douglas-Peucker does not guarantee the simplified ring stays simple for
/// adversarial inputs; callers that require validity should ValidateRing the
/// result.
Ring SimplifyRing(const Ring& ring, double epsilon);

/// Simplifies every ring of \p poly; holes that collapse below a triangle
/// or below \p epsilon extent are dropped.
Polygon SimplifyPolygon(const Polygon& poly, double epsilon);

}  // namespace stj
