#include "src/geometry/tile_grid.h"

#include <algorithm>

#include "src/util/check.h"

namespace stj {

namespace {

/// Index of the half-open span [bounds[i], bounds[i+1]) containing \p v
/// among the `n` spans described by the n+1 boundaries at \p bounds,
/// clamping below the first and above the last boundary. With ties (equal
/// boundaries), v lands in the right-most span starting at its value, and
/// the preceding degenerate spans can contain no point.
uint32_t SpanOf(const double* bounds, uint32_t n, double v) {
  if (n <= 1) return 0;
  // Internal boundaries are bounds[1..n-1]; count how many are <= v.
  // Spans are half-open [b, next), so a v equal to an internal boundary
  // belongs to the span starting there: upper_bound's strictly-greater
  // split counts exactly the internal boundaries <= v.
  const double* first = bounds + 1;
  const double* last = bounds + n;  // one past the last internal boundary
  return static_cast<uint32_t>(std::upper_bound(first, last, v) - first);
}

}  // namespace

uint32_t TileGrid::ColumnOf(double x) const {
  return SpanOf(x_bounds.data(), columns, x);
}

uint32_t TileGrid::RowOf(uint32_t column, double y) const {
  return SpanOf(y_bounds.data() + static_cast<size_t>(column) * (rows + 1),
                rows, y);
}

Box TileGrid::TileBounds(uint32_t tile) const {
  const uint32_t c = ColumnOfTile(tile);
  const uint32_t r = RowOfTile(tile);
  const double* yb = y_bounds.data() + static_cast<size_t>(c) * (rows + 1);
  Box box;
  box.min = Point{x_bounds[c], yb[r]};
  box.max = Point{x_bounds[c + 1], yb[r + 1]};
  return box;
}

void TileGrid::ValidateInvariants() const {
  STJ_CHECK(columns > 0 && rows > 0);
  STJ_CHECK(x_bounds.size() == static_cast<size_t>(columns) + 1);
  STJ_CHECK(y_bounds.size() ==
            static_cast<size_t>(columns) * (static_cast<size_t>(rows) + 1));
  STJ_CHECK(std::is_sorted(x_bounds.begin(), x_bounds.end()));
  for (uint32_t c = 0; c < columns; ++c) {
    const double* yb = y_bounds.data() + static_cast<size_t>(c) * (rows + 1);
    STJ_CHECK(std::is_sorted(yb, yb + rows + 1));
  }
}

TileGrid MakeUniformTileGrid(const Box& domain, uint32_t columns,
                             uint32_t rows) {
  STJ_CHECK(columns > 0 && rows > 0);
  TileGrid grid;
  grid.domain = domain;
  grid.columns = columns;
  grid.rows = rows;
  grid.x_bounds.resize(columns + 1);
  for (uint32_t c = 0; c <= columns; ++c) {
    grid.x_bounds[c] =
        domain.min.x + domain.Width() * static_cast<double>(c) /
                           static_cast<double>(columns);
  }
  grid.y_bounds.resize(static_cast<size_t>(columns) * (rows + 1));
  for (uint32_t c = 0; c < columns; ++c) {
    double* yb = grid.y_bounds.data() + static_cast<size_t>(c) * (rows + 1);
    for (uint32_t r = 0; r <= rows; ++r) {
      yb[r] = domain.min.y + domain.Height() * static_cast<double>(r) /
                                 static_cast<double>(rows);
    }
  }
  return grid;
}

}  // namespace stj
