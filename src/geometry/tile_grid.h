#pragma once

#include <cstdint>
#include <vector>

#include "src/geometry/box.h"
#include "src/geometry/point.h"

namespace stj {

/// A non-uniform rectangular tiling of the plane: `columns` vertical slabs
/// split by the sorted boundaries `x_bounds`, each slab split independently
/// into `rows` tiles by its own y-boundary run — the "slice and dice" layout
/// the cost-balanced partitioner (src/join/partitioner.h) emits, where slab
/// widths and per-slab row heights follow weighted quantiles of the data
/// instead of a uniform grid.
///
/// Tile (c, r) has id c * rows + r. Point membership is half-open and
/// clamped: column c covers [x_bounds[c], x_bounds[c+1]), the first/last
/// column absorb everything below/above the domain, and rows mirror that
/// within their column — so TileOf() is a total function that maps every
/// point of the plane to exactly one tile. That partition property is what
/// the shard scheduler's reference-point dedup rule rests on: a candidate
/// pair's reference point lies in exactly one (r-tile, s-tile) combination,
/// so exactly one tile-pair task reports the pair.
///
/// Boundary runs are non-decreasing; equal consecutive boundaries describe
/// a degenerate (empty) tile, which TileOf never returns for any point —
/// quantile splitting over heavily tied positions produces these and they
/// are harmless.
struct TileGrid {
  Box domain;                   ///< Bounds the boundaries were derived from.
  uint32_t columns = 0;
  uint32_t rows = 0;
  std::vector<double> x_bounds;  ///< columns+1 non-decreasing values.
  /// Per-column y boundaries, flattened: column c owns the run
  /// y_bounds[c*(rows+1) .. (c+1)*(rows+1)), non-decreasing within a column.
  std::vector<double> y_bounds;

  uint32_t Tiles() const { return columns * rows; }
  uint32_t TileId(uint32_t column, uint32_t row) const {
    return column * rows + row;
  }
  uint32_t ColumnOfTile(uint32_t tile) const { return tile / rows; }
  uint32_t RowOfTile(uint32_t tile) const { return tile % rows; }

  /// Column whose half-open slab contains \p x (clamped to [0, columns-1]).
  uint32_t ColumnOf(double x) const;

  /// Row within \p column whose half-open band contains \p y.
  uint32_t RowOf(uint32_t column, double y) const;

  /// The unique tile containing \p p under the clamped half-open semantics.
  uint32_t TileOf(const Point& p) const {
    const uint32_t c = ColumnOf(p.x);
    return TileId(c, RowOf(c, p.y));
  }

  /// Nominal closed rectangle of \p tile (boundary values as stored; the
  /// clamped TileOf semantics extend edge tiles beyond it). Use for overlap
  /// enumeration, never for exact membership — that is TileOf().
  Box TileBounds(uint32_t tile) const;

  /// Inclusive column range whose slabs intersect [x_lo, x_hi] — the
  /// column legs of MBR-overlap tile assignment.
  void ColumnRange(double x_lo, double x_hi, uint32_t* c_lo,
                   uint32_t* c_hi) const {
    *c_lo = ColumnOf(x_lo);
    *c_hi = ColumnOf(x_hi);
  }

  /// Inclusive row range within \p column intersecting [y_lo, y_hi].
  void RowRange(uint32_t column, double y_lo, double y_hi, uint32_t* r_lo,
                uint32_t* r_hi) const {
    *r_lo = RowOf(column, y_lo);
    *r_hi = RowOf(column, y_hi);
  }

  /// Aborts (STJ_CHECK) on structural inconsistency: boundary array sizes,
  /// non-decreasing runs, zero tile count with nonzero boundaries.
  void ValidateInvariants() const;

  friend bool operator==(const TileGrid& a, const TileGrid& b) {
    return a.domain == b.domain && a.columns == b.columns &&
           a.rows == b.rows && a.x_bounds == b.x_bounds &&
           a.y_bounds == b.y_bounds;
  }
};

/// Uniform `columns` x `rows` grid over \p domain — the trivial TileGrid,
/// used by tests and as the degenerate 1x1 "no sharding" layout.
TileGrid MakeUniformTileGrid(const Box& domain, uint32_t columns,
                             uint32_t rows);

}  // namespace stj
