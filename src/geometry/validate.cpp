#include "src/geometry/validate.h"

#include <string>

#include "src/geometry/point_in_polygon.h"
#include "src/geometry/predicates.h"
#include "src/geometry/segment.h"

namespace stj {

namespace {

// True if edges i and j of the ring intersect anywhere they are not allowed
// to: non-adjacent edges may not touch at all; adjacent edges may share only
// their common endpoint.
bool EdgesConflict(const Ring& ring, size_t i, size_t j) {
  const size_t n = ring.Size();
  const Segment ei = ring.Edge(i);
  const Segment ej = ring.Edge(j);
  if (!ei.Bounds().Intersects(ej.Bounds())) return false;
  const bool adjacent = (j == (i + 1) % n) || (i == (j + 1) % n);
  const SegIntersection isect = IntersectSegments(ei.a, ei.b, ej.a, ej.b);
  if (isect.kind == SegIntersectKind::kNone) return false;
  if (!adjacent) return true;
  if (isect.kind == SegIntersectKind::kOverlap) return true;
  // Adjacent edges: the single shared point must be the shared vertex.
  const Point& shared = (j == (i + 1) % n) ? ei.b : ei.a;
  return !(isect.p0 == shared);
}

// True if any edge of ring a crosses or touches any edge of ring b in a way
// that makes a nested-rings polygon invalid (proper crossing, or collinear
// overlap). Shared isolated touch points are allowed by OGC for hole rings.
bool RingsCross(const Ring& a, const Ring& b) {
  if (!a.Bounds().Intersects(b.Bounds())) return false;
  for (size_t i = 0; i < a.Size(); ++i) {
    const Segment ea = a.Edge(i);
    for (size_t j = 0; j < b.Size(); ++j) {
      const Segment eb = b.Edge(j);
      if (!ea.Bounds().Intersects(eb.Bounds())) continue;
      const SegIntersection isect = IntersectSegments(ea.a, ea.b, eb.a, eb.b);
      if (isect.kind == SegIntersectKind::kOverlap) return true;
      if (isect.kind == SegIntersectKind::kPoint && isect.proper) return true;
    }
  }
  return false;
}

}  // namespace

ValidationResult ValidateRing(const Ring& ring) {
  const size_t n = ring.Size();
  if (n < 3) return ValidationResult::Fail("ring has fewer than 3 vertices");
  for (size_t i = 0; i < n; ++i) {
    if (ring[i] == ring[(i + 1) % n]) {
      return ValidationResult::Fail("repeated consecutive vertex at index " +
                                    std::to_string(i));
    }
  }
  if (ring.SignedArea2() == 0.0) {
    return ValidationResult::Fail("ring has zero area");
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (EdgesConflict(ring, i, j)) {
        return ValidationResult::Fail("self-intersection between edges " +
                                      std::to_string(i) + " and " +
                                      std::to_string(j));
      }
    }
  }
  return ValidationResult::Ok();
}

namespace {

// Removes repeated consecutive vertices, treating the ring as closed (so a
// trailing vertex equal to the first is dropped too). Returns true if any
// vertex was removed.
bool DedupeRingVertices(const Ring& ring, std::vector<Point>* out) {
  out->clear();
  for (size_t i = 0; i < ring.Size(); ++i) {
    if (!out->empty() && ring[i] == out->back()) continue;
    out->push_back(ring[i]);
  }
  while (out->size() > 1 && out->back() == out->front()) out->pop_back();
  return out->size() != ring.Size();
}

void AppendAction(std::string* what, const std::string& action) {
  if (what == nullptr) return;
  if (!what->empty()) what->append(", ");
  what->append(action);
}

}  // namespace

RepairOutcome RepairPolygon(const Polygon& poly, Polygon* out,
                            std::string* what) {
  if (what != nullptr) what->clear();
  bool changed = false;

  std::vector<Point> outer_pts;
  if (DedupeRingVertices(poly.Outer(), &outer_pts)) {
    changed = true;
    AppendAction(what, "deduplicated outer-ring vertices");
  }
  Ring outer(std::move(outer_pts));
  if (outer.Size() < 3 || outer.SignedArea2() == 0.0) {
    return RepairOutcome::kUnrepairable;
  }

  std::vector<Ring> holes;
  holes.reserve(poly.Holes().size());
  for (size_t h = 0; h < poly.Holes().size(); ++h) {
    std::vector<Point> hole_pts;
    if (DedupeRingVertices(poly.Holes()[h], &hole_pts)) {
      changed = true;
      AppendAction(what,
                   "deduplicated hole " + std::to_string(h) + " vertices");
    }
    Ring hole(std::move(hole_pts));
    if (hole.Size() < 3 || hole.SignedArea2() == 0.0) {
      changed = true;
      AppendAction(what, "dropped degenerate hole " + std::to_string(h));
      continue;
    }
    holes.push_back(std::move(hole));
  }

  // Polygon's constructor renormalises winding, so a backwards input ring is
  // repaired implicitly and does not count as a change here.
  *out = Polygon(std::move(outer), std::move(holes));
  return changed ? RepairOutcome::kRepaired : RepairOutcome::kUnchanged;
}

ValidationResult ValidatePolygon(const Polygon& poly) {
  ValidationResult outer = ValidateRing(poly.Outer());
  if (!outer.valid) {
    outer.reason = "outer ring: " + outer.reason;
    return outer;
  }
  for (size_t h = 0; h < poly.Holes().size(); ++h) {
    const Ring& hole = poly.Holes()[h];
    ValidationResult res = ValidateRing(hole);
    if (!res.valid) {
      res.reason = "hole " + std::to_string(h) + ": " + res.reason;
      return res;
    }
    // Every hole vertex must be inside or on the outer ring.
    for (const Point& p : hole.Vertices()) {
      if (LocateInRing(p, poly.Outer()) == Location::kExterior) {
        return ValidationResult::Fail("hole " + std::to_string(h) +
                                      " extends outside the outer ring");
      }
    }
    if (RingsCross(hole, poly.Outer())) {
      return ValidationResult::Fail("hole " + std::to_string(h) +
                                    " crosses the outer ring");
    }
    for (size_t g = h + 1; g < poly.Holes().size(); ++g) {
      if (RingsCross(hole, poly.Holes()[g])) {
        return ValidationResult::Fail("holes " + std::to_string(h) + " and " +
                                      std::to_string(g) + " cross");
      }
    }
  }
  return ValidationResult::Ok();
}

}  // namespace stj
