#pragma once

#include <string>

#include "src/geometry/polygon.h"
#include "src/geometry/ring.h"

namespace stj {

/// Result of a geometry validity check.
struct ValidationResult {
  bool valid = true;
  std::string reason;  ///< Empty when valid.

  static ValidationResult Ok() { return ValidationResult{}; }
  static ValidationResult Fail(std::string why) {
    return ValidationResult{false, std::move(why)};
  }
};

/// Checks that \p ring has >= 3 vertices, no zero-length or repeated
/// consecutive edges, nonzero area, and no self-intersection (adjacent edges
/// may share only their common vertex). O(n^2) with bounding-box pruning —
/// intended for data-generation sanity checks and tests, not hot paths.
ValidationResult ValidateRing(const Ring& ring);

/// Checks every ring of \p poly with ValidateRing, that each hole lies inside
/// the outer ring, and that rings do not cross each other.
ValidationResult ValidatePolygon(const Polygon& poly);

/// Outcome of RepairPolygon.
enum class RepairOutcome : uint8_t {
  kUnchanged,     ///< Already structurally sound; *out is a copy of the input.
  kRepaired,      ///< One or more repairs applied; *out holds the result.
  kUnrepairable,  ///< Outer ring beyond repair; *out untouched.
};

/// Applies the cheap structural repairs permissive ingestion relies on:
/// dedupes repeated consecutive vertices (including the closing wraparound
/// pair), drops holes that degenerate (< 3 distinct vertices or zero area),
/// and renormalises winding via Polygon's constructor. Fails only when the
/// outer ring itself degenerates. When \p what is non-null it receives a
/// short comma-separated list of the repairs applied ("" when unchanged).
///
/// This is O(n) — it does NOT detect self-intersections; run ValidatePolygon
/// afterwards when full validity matters.
RepairOutcome RepairPolygon(const Polygon& poly, Polygon* out,
                            std::string* what = nullptr);

}  // namespace stj
