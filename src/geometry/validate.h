#pragma once

#include <string>

#include "src/geometry/polygon.h"
#include "src/geometry/ring.h"

namespace stj {

/// Result of a geometry validity check.
struct ValidationResult {
  bool valid = true;
  std::string reason;  ///< Empty when valid.

  static ValidationResult Ok() { return ValidationResult{}; }
  static ValidationResult Fail(std::string why) {
    return ValidationResult{false, std::move(why)};
  }
};

/// Checks that \p ring has >= 3 vertices, no zero-length or repeated
/// consecutive edges, nonzero area, and no self-intersection (adjacent edges
/// may share only their common vertex). O(n^2) with bounding-box pruning —
/// intended for data-generation sanity checks and tests, not hot paths.
ValidationResult ValidateRing(const Ring& ring);

/// Checks every ring of \p poly with ValidateRing, that each hole lies inside
/// the outer ring, and that rings do not cross each other.
ValidationResult ValidatePolygon(const Polygon& poly);

}  // namespace stj
