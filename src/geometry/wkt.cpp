#include "src/geometry/wkt.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <vector>

namespace stj {

namespace {

void AppendCoord(std::string* out, double v) {
  char buf[32];
  const int len = std::snprintf(buf, sizeof buf, "%.17g", v);
  out->append(buf, static_cast<size_t>(len));
}

void AppendRing(std::string* out, const Ring& ring) {
  out->push_back('(');
  for (size_t i = 0; i < ring.Size(); ++i) {
    if (i != 0) out->append(", ");
    AppendCoord(out, ring[i].x);
    out->push_back(' ');
    AppendCoord(out, ring[i].y);
  }
  // Close the ring explicitly.
  if (ring.Size() > 0) {
    out->append(", ");
    AppendCoord(out, ring[0].x);
    out->push_back(' ');
    AppendCoord(out, ring[0].y);
  }
  out->push_back(')');
}

/// Minimal recursive-descent scanner over a WKT string. Tracks the byte
/// position so parse errors can name the exact offset that failed.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeKeyword(std::string_view kw) {
    SkipSpace();
    if (text_.size() - pos_ < kw.size()) return false;
    for (size_t i = 0; i < kw.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(text_[pos_ + i])) != kw[i]) {
        return false;
      }
    }
    pos_ += kw.size();
    return true;
  }

  bool ConsumeChar(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseDouble(double* out) {
    SkipSpace();
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    const auto [ptr, ec] = std::from_chars(begin, end, *out);
    if (ec != std::errc() || ptr == begin) return false;
    pos_ += static_cast<size_t>(ptr - begin);
    return true;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ == text_.size();
  }

  /// Current byte offset (after any skipped whitespace of the last call).
  size_t Pos() const { return pos_; }

  /// An InvalidArgument Status describing what was expected at the current
  /// position, e.g. "expected ')' but found 'x'".
  Status Error(std::string expected) {
    SkipSpace();
    std::string message = "expected " + std::move(expected);
    if (pos_ < text_.size()) {
      message += " but found '";
      message += text_[pos_];
      message += '\'';
    } else {
      message += " but input ended";
    }
    return Status::InvalidArgument(std::move(message)).WithOffset(pos_);
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

Status ParseRing(Scanner* sc, Ring* out) {
  if (!sc->ConsumeChar('(')) return sc->Error("'(' to open a ring");
  std::vector<Point> pts;
  do {
    Point p;
    if (!sc->ParseDouble(&p.x)) return sc->Error("x coordinate");
    if (!sc->ParseDouble(&p.y)) return sc->Error("y coordinate");
    pts.push_back(p);
  } while (sc->ConsumeChar(','));
  if (!sc->ConsumeChar(')')) return sc->Error("',' or ')' in ring");
  *out = Ring(std::move(pts));  // Ring() drops an explicit closing vertex.
  return Status::Ok();
}

}  // namespace

std::string ToWkt(const Point& p) {
  std::string out = "POINT (";
  AppendCoord(&out, p.x);
  out.push_back(' ');
  AppendCoord(&out, p.y);
  out.push_back(')');
  return out;
}

std::string ToWkt(const Polygon& poly) {
  if (poly.Empty()) return "POLYGON EMPTY";
  std::string out = "POLYGON (";
  AppendRing(&out, poly.Outer());
  for (const Ring& hole : poly.Holes()) {
    out.append(", ");
    AppendRing(&out, hole);
  }
  out.push_back(')');
  return out;
}

Result<Point> ParseWktPoint(std::string_view wkt) {
  Scanner sc(wkt);
  if (!sc.ConsumeKeyword("POINT")) return sc.Error("keyword POINT");
  if (!sc.ConsumeChar('(')) return sc.Error("'('");
  Point p;
  if (!sc.ParseDouble(&p.x)) return sc.Error("x coordinate");
  if (!sc.ParseDouble(&p.y)) return sc.Error("y coordinate");
  if (!sc.ConsumeChar(')')) return sc.Error("')'");
  if (!sc.AtEnd()) return sc.Error("end of input");
  return p;
}

Result<Polygon> ParseWktPolygon(std::string_view wkt) {
  Scanner sc(wkt);
  if (!sc.ConsumeKeyword("POLYGON")) return sc.Error("keyword POLYGON");
  if (sc.ConsumeKeyword("EMPTY")) {
    if (!sc.AtEnd()) return sc.Error("end of input after EMPTY");
    return Polygon{};
  }
  if (!sc.ConsumeChar('(')) return sc.Error("'(' to open the ring list");
  Ring outer;
  if (Status st = ParseRing(&sc, &outer); !st.ok()) return st;
  std::vector<Ring> holes;
  while (sc.ConsumeChar(',')) {
    Ring hole;
    if (Status st = ParseRing(&sc, &hole); !st.ok()) return st;
    holes.push_back(std::move(hole));
  }
  if (!sc.ConsumeChar(')')) return sc.Error("',' or ')' closing the ring list");
  if (!sc.AtEnd()) return sc.Error("end of input");
  return Polygon(std::move(outer), std::move(holes));
}

}  // namespace stj
