#include "src/geometry/wkt.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <vector>

namespace stj {

namespace {

void AppendCoord(std::string* out, double v) {
  char buf[32];
  const int len = std::snprintf(buf, sizeof buf, "%.17g", v);
  out->append(buf, static_cast<size_t>(len));
}

void AppendRing(std::string* out, const Ring& ring) {
  out->push_back('(');
  for (size_t i = 0; i < ring.Size(); ++i) {
    if (i != 0) out->append(", ");
    AppendCoord(out, ring[i].x);
    out->push_back(' ');
    AppendCoord(out, ring[i].y);
  }
  // Close the ring explicitly.
  if (ring.Size() > 0) {
    out->append(", ");
    AppendCoord(out, ring[0].x);
    out->push_back(' ');
    AppendCoord(out, ring[0].y);
  }
  out->push_back(')');
}

/// Minimal recursive-descent scanner over a WKT string.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeKeyword(std::string_view kw) {
    SkipSpace();
    if (text_.size() - pos_ < kw.size()) return false;
    for (size_t i = 0; i < kw.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(text_[pos_ + i])) != kw[i]) {
        return false;
      }
    }
    pos_ += kw.size();
    return true;
  }

  bool ConsumeChar(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool PeekChar(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool ParseDouble(double* out) {
    SkipSpace();
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    const auto [ptr, ec] = std::from_chars(begin, end, *out);
    if (ec != std::errc() || ptr == begin) return false;
    pos_ += static_cast<size_t>(ptr - begin);
    return true;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

bool ParseRing(Scanner* sc, Ring* out) {
  if (!sc->ConsumeChar('(')) return false;
  std::vector<Point> pts;
  do {
    Point p;
    if (!sc->ParseDouble(&p.x) || !sc->ParseDouble(&p.y)) return false;
    pts.push_back(p);
  } while (sc->ConsumeChar(','));
  if (!sc->ConsumeChar(')')) return false;
  *out = Ring(std::move(pts));  // Ring() drops an explicit closing vertex.
  return true;
}

}  // namespace

std::string ToWkt(const Point& p) {
  std::string out = "POINT (";
  AppendCoord(&out, p.x);
  out.push_back(' ');
  AppendCoord(&out, p.y);
  out.push_back(')');
  return out;
}

std::string ToWkt(const Polygon& poly) {
  if (poly.Empty()) return "POLYGON EMPTY";
  std::string out = "POLYGON (";
  AppendRing(&out, poly.Outer());
  for (const Ring& hole : poly.Holes()) {
    out.append(", ");
    AppendRing(&out, hole);
  }
  out.push_back(')');
  return out;
}

std::optional<Point> ParseWktPoint(std::string_view wkt) {
  Scanner sc(wkt);
  if (!sc.ConsumeKeyword("POINT")) return std::nullopt;
  if (!sc.ConsumeChar('(')) return std::nullopt;
  Point p;
  if (!sc.ParseDouble(&p.x) || !sc.ParseDouble(&p.y)) return std::nullopt;
  if (!sc.ConsumeChar(')')) return std::nullopt;
  if (!sc.AtEnd()) return std::nullopt;
  return p;
}

std::optional<Polygon> ParseWktPolygon(std::string_view wkt) {
  Scanner sc(wkt);
  if (!sc.ConsumeKeyword("POLYGON")) return std::nullopt;
  if (sc.ConsumeKeyword("EMPTY")) return sc.AtEnd() ? std::optional<Polygon>(Polygon{}) : std::nullopt;
  if (!sc.ConsumeChar('(')) return std::nullopt;
  Ring outer;
  if (!ParseRing(&sc, &outer)) return std::nullopt;
  std::vector<Ring> holes;
  while (sc.ConsumeChar(',')) {
    Ring hole;
    if (!ParseRing(&sc, &hole)) return std::nullopt;
    holes.push_back(std::move(hole));
  }
  if (!sc.ConsumeChar(')')) return std::nullopt;
  if (!sc.AtEnd()) return std::nullopt;
  return Polygon(std::move(outer), std::move(holes));
}

}  // namespace stj
