#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "src/geometry/point.h"
#include "src/geometry/polygon.h"

namespace stj {

/// Serialises \p p as "POINT (x y)".
std::string ToWkt(const Point& p);

/// Serialises \p poly as "POLYGON ((x y, ...), (hole...), ...)" with rings
/// explicitly closed (first vertex repeated last), as OGC WKT requires.
std::string ToWkt(const Polygon& poly);

/// Parses a WKT POINT. Returns std::nullopt on malformed input.
std::optional<Point> ParseWktPoint(std::string_view wkt);

/// Parses a WKT POLYGON (outer ring plus optional holes). Accepts both closed
/// and unclosed rings. Returns std::nullopt on malformed input.
std::optional<Polygon> ParseWktPolygon(std::string_view wkt);

}  // namespace stj
