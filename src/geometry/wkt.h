#pragma once

#include <string>
#include <string_view>

#include "src/geometry/point.h"
#include "src/geometry/polygon.h"
#include "src/util/status.h"

namespace stj {

/// Serialises \p p as "POINT (x y)".
std::string ToWkt(const Point& p);

/// Serialises \p poly as "POLYGON ((x y, ...), (hole...), ...)" with rings
/// explicitly closed (first vertex repeated last), as OGC WKT requires.
std::string ToWkt(const Polygon& poly);

/// Parses a WKT POINT. On malformed input the Status pinpoints the problem
/// with a message and the 0-based byte offset into \p wkt.
Result<Point> ParseWktPoint(std::string_view wkt);

/// Parses a WKT POLYGON (outer ring plus optional holes). Accepts both closed
/// and unclosed rings. On malformed input the Status pinpoints the problem
/// with a message and the 0-based byte offset into \p wkt.
Result<Polygon> ParseWktPolygon(std::string_view wkt);

}  // namespace stj
