#include "src/interval/interval_algebra.h"

#include <algorithm>

namespace stj {

namespace {

/// O(1) pre-check: true when the views' covered cell ranges cannot share a
/// cell, so any merge-join that needs a common cell can answer immediately.
inline bool RangesDisjoint(IntervalView x, IntervalView y) {
  return x.Empty() || y.Empty() || x.BackEnd() <= y.FrontCell() ||
         y.BackEnd() <= x.FrontCell();
}

}  // namespace

bool ListsOverlap(IntervalView x, IntervalView y) {
  if (RangesDisjoint(x, y)) return false;
  size_t i = 0;
  size_t j = 0;
  while (i < x.Size() && j < y.Size()) {
    const CellInterval& a = x[i];
    const CellInterval& b = y[j];
    if (a.begin < b.end && b.begin < a.end) return true;
    if (a.end <= b.end) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

bool ListsMatch(IntervalView x, IntervalView y) {
  if (x.Size() != y.Size()) return false;
  if (x.Empty()) return true;
  // Endpoint pre-check: canonical lists that differ usually differ at the
  // extremes, so compare those before the element-wise scan.
  if (x.FrontCell() != y.FrontCell() || x.BackEnd() != y.BackEnd()) {
    return false;
  }
  return std::equal(x.begin(), x.end(), y.begin());
}

bool ListInside(IntervalView x, IntervalView y) {
  if (x.Empty()) return true;
  if (y.Empty()) return false;
  // Containment needs y's range to cover x's range end to end.
  if (x.FrontCell() < y.FrontCell() || x.BackEnd() > y.BackEnd()) return false;
  size_t j = 0;
  for (size_t i = 0; i < x.Size(); ++i) {
    const CellInterval& a = x[i];
    // Advance to the first y interval that could contain a.
    while (j < y.Size() && y[j].end < a.end) ++j;
    if (j == y.Size() || y[j].begin > a.begin) return false;
    // y[j].begin <= a.begin and a.end <= y[j].end: contained.
  }
  return true;
}

bool ListContains(IntervalView x, IntervalView y) { return ListInside(y, x); }

uint64_t ListsCommonCells(IntervalView x, IntervalView y) {
  if (RangesDisjoint(x, y)) return 0;
  uint64_t total = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < x.Size() && j < y.Size()) {
    const CellInterval& a = x[i];
    const CellInterval& b = y[j];
    const CellId lo = std::max(a.begin, b.begin);
    const CellId hi = std::min(a.end, b.end);
    if (lo < hi) total += hi - lo;
    if (a.end <= b.end) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

}  // namespace stj
