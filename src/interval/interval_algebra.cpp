#include "src/interval/interval_algebra.h"

#include "src/interval/interval_prechecks.h"
#include "src/interval/simd.h"

// The relations keep their scalar merge-join semantics but split each into
// the shared O(1) range pre-check (interval_prechecks.h) followed by a call
// through the runtime-dispatched kernel table (simd.h): AVX2 on x86, NEON on
// arm64, portable scalar otherwise. Call sites are untouched — dispatch is
// entirely behind this translation unit.

namespace stj {

bool ListsOverlap(IntervalView x, IntervalView y) {
  if (RangesDisjoint(x, y)) return false;
  return simd::Active().overlap(x, y);
}

bool ListsMatch(IntervalView x, IntervalView y) {
  if (x.Size() != y.Size()) return false;
  if (x.Empty()) return true;
  // Endpoint pre-check: canonical lists that differ usually differ at the
  // extremes, so compare those before the element-wise scan.
  if (x.FrontCell() != y.FrontCell() || x.BackEnd() != y.BackEnd()) {
    return false;
  }
  return simd::Active().match(x, y);
}

bool ListInside(IntervalView x, IntervalView y) {
  if (x.Empty()) return true;
  if (y.Empty()) return false;
  // Containment needs y's range to cover x's range end to end; failing that
  // covers the disjoint-ranges reject as a special case.
  if (!RangeCovers(y, x)) return false;
  return simd::Active().inside(x, y);
}

bool ListContains(IntervalView x, IntervalView y) { return ListInside(y, x); }

uint64_t ListsCommonCells(IntervalView x, IntervalView y) {
  if (RangesDisjoint(x, y)) return 0;
  return simd::Active().common_cells(x, y);
}

}  // namespace stj
