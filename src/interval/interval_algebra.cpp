#include "src/interval/interval_algebra.h"

#include <algorithm>

namespace stj {

bool ListsOverlap(const IntervalList& x, const IntervalList& y) {
  size_t i = 0;
  size_t j = 0;
  while (i < x.Size() && j < y.Size()) {
    const CellInterval& a = x[i];
    const CellInterval& b = y[j];
    if (a.begin < b.end && b.begin < a.end) return true;
    if (a.end <= b.end) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

bool ListsMatch(const IntervalList& x, const IntervalList& y) { return x == y; }

bool ListInside(const IntervalList& x, const IntervalList& y) {
  size_t j = 0;
  for (size_t i = 0; i < x.Size(); ++i) {
    const CellInterval& a = x[i];
    // Advance to the first y interval that could contain a.
    while (j < y.Size() && y[j].end < a.end) ++j;
    if (j == y.Size() || y[j].begin > a.begin) return false;
    // y[j].begin <= a.begin and a.end <= y[j].end: contained.
  }
  return true;
}

bool ListContains(const IntervalList& x, const IntervalList& y) {
  return ListInside(y, x);
}

uint64_t ListsCommonCells(const IntervalList& x, const IntervalList& y) {
  uint64_t total = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < x.Size() && j < y.Size()) {
    const CellInterval& a = x[i];
    const CellInterval& b = y[j];
    const CellId lo = std::max(a.begin, b.begin);
    const CellId hi = std::min(a.end, b.end);
    if (lo < hi) total += hi - lo;
    if (a.end <= b.end) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

}  // namespace stj
