#pragma once

#include "src/interval/interval_list.h"

namespace stj {

/// The four relations between interval lists used by the paper's intermediate
/// filters (Sec. 3.2). All are linear-time merge-joins over the canonical
/// sorted-disjoint representation; none allocates.
///
/// Every relation takes IntervalView, so heap-backed IntervalLists (which
/// convert implicitly) and arena-backed AprilStore records run through the
/// same code. Each merge-join is preceded by an O(1) quick reject on the
/// views' total cell ranges (FrontCell/BackEnd): after the MBR filter, most
/// surviving pairs on sparse scenarios have disjoint Hilbert ranges, and the
/// pre-check answers those without touching the interval data.

/// 'X,Y overlap': some x in X and y in Y share at least one cell id.
bool ListsOverlap(IntervalView x, IntervalView y);

/// 'X,Y match': the two lists are identical interval-by-interval (they cover
/// the same cells; canonical form makes cover-equality representation-
/// equality).
bool ListsMatch(IntervalView x, IntervalView y);

/// 'X inside Y': every interval of X is contained in one interval of Y,
/// i.e. Y covers every cell of X. An empty X is vacuously inside any Y.
bool ListInside(IntervalView x, IntervalView y);

/// 'X contains Y': inverse of ListInside.
bool ListContains(IntervalView x, IntervalView y);

/// Number of cells covered by both lists (used by diagnostics and tests; the
/// filters themselves only need the boolean relations above).
uint64_t ListsCommonCells(IntervalView x, IntervalView y);

}  // namespace stj
