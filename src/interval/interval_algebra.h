#pragma once

#include "src/interval/interval_list.h"

namespace stj {

/// The four relations between interval lists used by the paper's intermediate
/// filters (Sec. 3.2). All are linear-time merge-joins over the canonical
/// sorted-disjoint representation; none allocates.

/// 'X,Y overlap': some x in X and y in Y share at least one cell id.
bool ListsOverlap(const IntervalList& x, const IntervalList& y);

/// 'X,Y match': the two lists are identical interval-by-interval (they cover
/// the same cells; canonical form makes cover-equality representation-
/// equality).
bool ListsMatch(const IntervalList& x, const IntervalList& y);

/// 'X inside Y': every interval of X is contained in one interval of Y,
/// i.e. Y covers every cell of X. An empty X is vacuously inside any Y.
bool ListInside(const IntervalList& x, const IntervalList& y);

/// 'X contains Y': inverse of ListInside.
bool ListContains(const IntervalList& x, const IntervalList& y);

/// Number of cells covered by both lists (used by diagnostics and tests; the
/// filters themselves only need the boolean relations above).
uint64_t ListsCommonCells(const IntervalList& x, const IntervalList& y);

}  // namespace stj
