#pragma once

#include "src/interval/interval_codec.h"
#include "src/interval/interval_list.h"

namespace stj {

/// The four relations between interval lists used by the paper's intermediate
/// filters (Sec. 3.2). All are linear-time merge-joins over the canonical
/// sorted-disjoint representation; none allocates.
///
/// Every relation takes IntervalView, so heap-backed IntervalLists (which
/// convert implicitly) and arena-backed AprilStore records run through the
/// same code. Each merge-join is preceded by an O(1) quick reject on the
/// views' total cell ranges (FrontCell/BackEnd): after the MBR filter, most
/// surviving pairs on sparse scenarios have disjoint Hilbert ranges, and the
/// pre-check answers those without touching the interval data.

/// 'X,Y overlap': some x in X and y in Y share at least one cell id.
bool ListsOverlap(IntervalView x, IntervalView y);

/// 'X,Y match': the two lists are identical interval-by-interval (they cover
/// the same cells; canonical form makes cover-equality representation-
/// equality).
bool ListsMatch(IntervalView x, IntervalView y);

/// 'X inside Y': every interval of X is contained in one interval of Y,
/// i.e. Y covers every cell of X. An empty X is vacuously inside any Y.
bool ListInside(IntervalView x, IntervalView y);

/// 'X contains Y': inverse of ListInside.
bool ListContains(IntervalView x, IntervalView y);

/// Number of cells covered by both lists (used by diagnostics and tests; the
/// filters themselves only need the boolean relations above).
uint64_t ListsCommonCells(IntervalView x, IntervalView y);

/// Compressed (APRIL v3) counterparts: identical truth values on the same
/// underlying lists (the differential suite pins this), computed by a block
/// merge over the codec's skip headers. The O(1) RangesDisjoint pre-check
/// generalizes per block — block pairs with disjoint cell ranges are skipped
/// without decoding their payload bytes; only candidate blocks are decoded
/// (into stack buffers) and handed to the same vectorized kernels the flat
/// relations use.
bool ListsOverlap(const CompressedIntervalView& x,
                  const CompressedIntervalView& y);
bool ListsMatch(const CompressedIntervalView& x,
                const CompressedIntervalView& y);
bool ListInside(const CompressedIntervalView& x,
                const CompressedIntervalView& y);
bool ListContains(const CompressedIntervalView& x,
                  const CompressedIntervalView& y);
uint64_t ListsCommonCells(const CompressedIntervalView& x,
                          const CompressedIntervalView& y);

}  // namespace stj
