#include <cstring>

#include "src/interval/interval_algebra.h"
#include "src/interval/interval_prechecks.h"
#include "src/interval/simd.h"
#include "src/util/check.h"

// Fused decode + merge over the block codec (interval_codec.h). Every loop
// below walks the fixed-size skip headers first and decodes a block's
// payload only when its cell range survives the per-block quick reject —
// the compressed generalization of the flat relations' RangesDisjoint
// pre-check. Decoded blocks land in stack buffers and run through the same
// simd::Active() kernels as the flat path, so the two paths cannot diverge
// on kernel selection.
//
// Merge safety argument (overlap/common_cells): canonical lists make block
// cell ranges strictly increasing and non-touching, so when
// X_p.last_end <= Y_q.last_end every interval of X_p ends before
// Y_{q+1}.first_cell and X_p can be discarded — each overlapping interval
// pair therefore lives in exactly one processed block pair (no misses for
// overlap, no double counting for common cells).

namespace stj {

namespace {

/// Decode cache for one side of a merge: a block stays decoded while it is
/// compared against several blocks of the other side.
class BlockCursor {
 public:
  explicit BlockCursor(const CompressedIntervalView& view) : view_(&view) {}

  IntervalView Decode(size_t b) {
    if (decoded_ != b) {
      count_ = view_->DecodeBlock(b, buf_);
      // Loaders validate records before handing out views (april_io /
      // CompressedAprilStore), so a malformed block here is a programming
      // error or in-memory corruption, not bad input.
      STJ_CHECK_MSG(count_ > 0, "malformed compressed interval block");
      decoded_ = b;
    }
    return IntervalView(buf_, count_);
  }

 private:
  const CompressedIntervalView* view_;
  CellInterval buf_[kCodecBlockIntervals];
  size_t decoded_ = static_cast<size_t>(-1);
  size_t count_ = 0;
};

}  // namespace

bool ListsOverlap(const CompressedIntervalView& x,
                  const CompressedIntervalView& y) {
  if (x.Empty() || y.Empty()) return false;
  if (CellRangesDisjoint(x.FrontCell(), x.BackEnd(), y.FrontCell(),
                         y.BackEnd())) {
    return false;
  }
  BlockCursor cx(x);
  BlockCursor cy(y);
  size_t bi = 0;
  size_t bj = 0;
  while (bi < x.Blocks() && bj < y.Blocks()) {
    const IntervalBlockHeader& hx = x.Header(bi);
    const IntervalBlockHeader& hy = y.Header(bj);
    if (hx.last_end <= hy.first_cell) {
      ++bi;  // skipped without decoding
      continue;
    }
    if (hy.last_end <= hx.first_cell) {
      ++bj;
      continue;
    }
    // Block ranges intersect: decode and run the flat kernel.
    if (simd::Active().overlap(cx.Decode(bi), cy.Decode(bj))) return true;
    if (hx.last_end <= hy.last_end) {
      ++bi;
    } else {
      ++bj;
    }
  }
  return false;
}

bool ListsMatch(const CompressedIntervalView& x,
                const CompressedIntervalView& y) {
  if (x.Intervals() != y.Intervals()) return false;
  if (x.Intervals() == 0) return true;
  if (x.Blocks() != y.Blocks()) return false;
  if (x.FrontCell() != y.FrontCell() || x.BackEnd() != y.BackEnd()) {
    return false;
  }
  BlockCursor cx(x);
  BlockCursor cy(y);
  for (size_t b = 0; b < x.Blocks(); ++b) {
    const IntervalBlockHeader& hx = x.Header(b);
    const IntervalBlockHeader& hy = y.Header(b);
    // Header reject first: differing lists usually differ in some block's
    // range or count, which answers without decoding either payload.
    if (hx.first_cell != hy.first_cell || hx.last_end != hy.last_end ||
        hx.count != hy.count) {
      return false;
    }
    const IntervalView xs = cx.Decode(b);
    const IntervalView ys = cy.Decode(b);
    if (std::memcmp(xs.begin(), ys.begin(),
                    xs.Size() * sizeof(CellInterval)) != 0) {
      return false;
    }
  }
  return true;
}

bool ListInside(const CompressedIntervalView& x,
                const CompressedIntervalView& y) {
  if (x.Empty()) return true;
  if (y.Empty()) return false;
  if (!CellRangeCovers(y.FrontCell(), y.BackEnd(), x.FrontCell(),
                       x.BackEnd())) {
    return false;
  }
  BlockCursor cx(x);
  BlockCursor cy(y);
  size_t bj = 0;
  size_t j = 0;  // interval cursor within the decoded y block
  for (size_t bi = 0; bi < x.Blocks(); ++bi) {
    const IntervalView xs = cx.Decode(bi);
    for (size_t k = 0; k < xs.Size(); ++k) {
      const CellInterval& a = xs[k];
      // Whole y blocks ending below a.end cannot contain a (or any later x
      // interval — x ends are increasing): skip them without decoding.
      while (bj < y.Blocks() && y.Header(bj).last_end < a.end) {
        ++bj;
        j = 0;
      }
      if (bj == y.Blocks()) return false;
      const IntervalView ys = cy.Decode(bj);
      while (j < ys.Size() && ys[j].end < a.end) ++j;
      // j < ys.Size() is guaranteed: the block's last end is its
      // header.last_end >= a.end. Containment needs one y interval spanning
      // a on both sides.
      if (ys[j].begin > a.begin) return false;
    }
  }
  return true;
}

bool ListContains(const CompressedIntervalView& x,
                  const CompressedIntervalView& y) {
  return ListInside(y, x);
}

uint64_t ListsCommonCells(const CompressedIntervalView& x,
                          const CompressedIntervalView& y) {
  if (x.Empty() || y.Empty()) return 0;
  if (CellRangesDisjoint(x.FrontCell(), x.BackEnd(), y.FrontCell(),
                         y.BackEnd())) {
    return 0;
  }
  BlockCursor cx(x);
  BlockCursor cy(y);
  uint64_t total = 0;
  size_t bi = 0;
  size_t bj = 0;
  while (bi < x.Blocks() && bj < y.Blocks()) {
    const IntervalBlockHeader& hx = x.Header(bi);
    const IntervalBlockHeader& hy = y.Header(bj);
    if (hx.last_end <= hy.first_cell) {
      ++bi;
      continue;
    }
    if (hy.last_end <= hx.first_cell) {
      ++bj;
      continue;
    }
    total += simd::Active().common_cells(cx.Decode(bi), cy.Decode(bj));
    if (hx.last_end <= hy.last_end) {
      ++bi;
    } else {
      ++bj;
    }
  }
  return total;
}

}  // namespace stj
