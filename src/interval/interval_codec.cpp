#include "src/interval/interval_codec.h"

#include <algorithm>
#include <limits>

#include "src/util/check.h"

namespace stj {

namespace codec {

void AppendVarint(std::vector<uint8_t>* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

bool ReadVarint(const uint8_t** p, const uint8_t* end, uint64_t* value) {
  uint64_t result = 0;
  unsigned shift = 0;
  const uint8_t* cur = *p;
  while (cur < end) {
    const uint8_t byte = *cur++;
    if (shift == 63 && byte > 1) return false;  // would overflow 64 bits
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *p = cur;
      *value = result;
      return true;
    }
    shift += 7;
    if (shift > 63) return false;
  }
  return false;  // truncated
}

}  // namespace codec

CompressedIntervalList CompressedIntervalList::Encode(IntervalView list) {
  CompressedIntervalList out;
  out.num_intervals_ = list.Size();
  if (list.Empty()) return out;
  const size_t num_blocks =
      (list.Size() + kCodecBlockIntervals - 1) / kCodecBlockIntervals;
  out.headers_.reserve(num_blocks);
  // Canonical gaps/lengths are small on real rasters; 2 bytes per interval
  // is the common case, so reserve that and let outliers grow the vector.
  out.bytes_.reserve(list.Size() * 2);
  for (size_t base = 0; base < list.Size(); base += kCodecBlockIntervals) {
    const size_t count =
        std::min(kCodecBlockIntervals, list.Size() - base);
    IntervalBlockHeader header;
    header.first_cell = list[base].begin;
    header.last_end = list[base + count - 1].end;
    header.count = static_cast<uint32_t>(count);
    STJ_CHECK_MSG(
        out.bytes_.size() <= std::numeric_limits<uint32_t>::max(),
        "compressed interval payload exceeds 32-bit per-list offsets");
    header.byte_offset = static_cast<uint32_t>(out.bytes_.size());
    for (size_t k = 0; k < count; ++k) {
      const CellInterval& iv = list[base + k];
      STJ_CHECK_MSG(iv.begin < iv.end, "non-canonical interval in Encode");
      if (k > 0) {
        const CellId prev_end = list[base + k - 1].end;
        STJ_CHECK_MSG(iv.begin > prev_end,
                      "non-canonical interval order in Encode");
        codec::AppendVarint(&out.bytes_, iv.begin - prev_end - 1);
      }
      codec::AppendVarint(&out.bytes_, iv.end - iv.begin - 1);
    }
    out.headers_.push_back(header);
  }
  return out;
}

size_t CompressedIntervalView::DecodeBlock(size_t b, CellInterval* out) const {
  if (b >= num_blocks_) return 0;
  const IntervalBlockHeader& header = headers_[b];
  const size_t count = header.count;
  if (count == 0 || count > kCodecBlockIntervals) return 0;
  if (header.byte_offset > byte_size_) return 0;
  const uint8_t* p = bytes_ + header.byte_offset;
  // A block's payload may end before the next block's offset only by being
  // exactly consumed; reading past `end` is the malformed case we reject.
  const uint8_t* end = bytes_ + (b + 1 < num_blocks_
                                     ? std::min<size_t>(
                                           headers_[b + 1].byte_offset,
                                           byte_size_)
                                     : byte_size_);
  CellId begin = header.first_cell;
  for (size_t k = 0; k < count; ++k) {
    if (k > 0) {
      uint64_t gap_minus_one = 0;
      if (!codec::ReadVarint(&p, end, &gap_minus_one)) return 0;
      const CellId prev_end = out[k - 1].end;
      if (gap_minus_one >=
          std::numeric_limits<CellId>::max() - prev_end) {
        return 0;  // begin would overflow
      }
      begin = prev_end + 1 + gap_minus_one;
    }
    uint64_t len_minus_one = 0;
    if (!codec::ReadVarint(&p, end, &len_minus_one)) return 0;
    if (len_minus_one >= std::numeric_limits<CellId>::max() - begin) {
      return 0;  // end would overflow
    }
    out[k] = CellInterval{begin, begin + 1 + len_minus_one};
  }
  if (out[0].begin != header.first_cell) return 0;
  if (out[count - 1].end != header.last_end) return 0;
  return count;
}

IntervalList CompressedIntervalList::Decode() const {
  std::vector<CellInterval> intervals;
  STJ_CHECK_MSG(DecodeCompressed(View(), &intervals),
                "malformed compressed interval list");
  return IntervalList::FromSorted(std::move(intervals));
}

bool DecodeCompressed(const CompressedIntervalView& view,
                      std::vector<CellInterval>* out) {
  out->clear();
  out->reserve(static_cast<size_t>(view.Intervals()));
  CellInterval block[kCodecBlockIntervals];
  for (size_t b = 0; b < view.Blocks(); ++b) {
    const size_t count = view.DecodeBlock(b, block);
    if (count == 0) return false;
    out->insert(out->end(), block, block + count);
  }
  return true;
}

std::string ValidateCompressed(const CompressedIntervalView& view) {
  uint64_t intervals = 0;
  CellId prev_end = 0;
  CellInterval block[kCodecBlockIntervals];
  for (size_t b = 0; b < view.Blocks(); ++b) {
    const IntervalBlockHeader& header = view.Header(b);
    const std::string at = "block " + std::to_string(b);
    if (header.count == 0 || header.count > kCodecBlockIntervals) {
      return at + ": count " + std::to_string(header.count) +
             " out of range";
    }
    if (b + 1 < view.Blocks() && header.count != kCodecBlockIntervals) {
      return at + ": only the last block may be short";
    }
    if (header.first_cell >= header.last_end) {
      return at + ": empty or inverted cell range";
    }
    if (b > 0 && header.first_cell <= prev_end) {
      return at + ": range overlaps or touches previous block";
    }
    if (header.byte_offset > view.ByteSize()) {
      return at + ": byte offset past payload";
    }
    if (b > 0 && header.byte_offset <= view.Header(b - 1).byte_offset) {
      return at + ": byte offsets not increasing";
    }
    const size_t count = view.DecodeBlock(b, block);
    if (count == 0) return at + ": malformed payload";
    if (count != header.count) return at + ": decoded count mismatch";
    for (size_t k = 0; k < count; ++k) {
      if (block[k].begin >= block[k].end) {
        return at + ": decoded interval not canonical";
      }
      const CellId prev = (k == 0) ? prev_end : block[k - 1].end;
      if ((b > 0 || k > 0) && block[k].begin <= prev) {
        return at + ": decoded intervals overlap or touch";
      }
    }
    // DecodeBlock already pinned first_cell/last_end to the decoded data.
    prev_end = block[count - 1].end;
    intervals += count;
  }
  if (intervals != view.Intervals()) {
    return "interval total " + std::to_string(view.Intervals()) +
           " does not match decoded " + std::to_string(intervals);
  }
  return "";
}

}  // namespace stj
