#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/interval/interval_list.h"

namespace stj {

/// Delta/varint block codec for canonical interval lists — the APRIL v3
/// record representation (PAPERS.md: compressed APRIL variants; "The
/// Decode-Work Law": decode only what the join touches).
///
/// A list is chunked into fixed runs of kCodecBlockIntervals intervals (the
/// last block may be shorter). Each block gets a fixed-size skip header
/// carrying its covered cell range and interval count, so the compressed
/// merge loops (interval_algebra_compressed.cpp) can apply the per-block
/// generalization of the O(1) RangesDisjoint pre-check and skip whole blocks
/// without touching their payload bytes. Chunking is deterministic, and the
/// byte encoding of a block is a pure function of its intervals — equal
/// lists always produce byte-identical encodings (ListsMatch on compressed
/// views exploits this).
///
/// Block payload (LEB128 varints; begins/ends are recovered by prefix sums):
///   varint(len_0 - 1)                       first interval; begin is
///                                           header.first_cell
///   [ varint(gap_k - 1), varint(len_k - 1) ]  for each later interval;
///                                           gap_k = begin_k - end_{k-1} >= 1
///                                           in canonical (non-adjacent) form
inline constexpr size_t kCodecBlockIntervals = 32;

/// Fixed-size skip header: the block covers cell range
/// [first_cell, last_end) and holds `count` intervals starting at
/// `byte_offset` within the list's payload bytes.
struct IntervalBlockHeader {
  CellId first_cell = 0;
  CellId last_end = 0;
  uint32_t count = 0;
  uint32_t byte_offset = 0;

  friend bool operator==(const IntervalBlockHeader& a,
                         const IntervalBlockHeader& b) {
    return a.first_cell == b.first_cell && a.last_end == b.last_end &&
           a.count == b.count && a.byte_offset == b.byte_offset;
  }
};

/// Non-owning view of one compressed list: a header array plus the payload
/// byte span. Mirrors IntervalView for arena-backed storage
/// (CompressedAprilStore keeps both columns in CSR arenas).
class CompressedIntervalView {
 public:
  CompressedIntervalView() = default;
  CompressedIntervalView(const IntervalBlockHeader* headers, size_t num_blocks,
                         const uint8_t* bytes, size_t byte_size,
                         uint64_t num_intervals)
      : headers_(headers),
        num_blocks_(num_blocks),
        bytes_(bytes),
        byte_size_(byte_size),
        num_intervals_(num_intervals) {}

  size_t Blocks() const { return num_blocks_; }
  bool Empty() const { return num_blocks_ == 0; }
  uint64_t Intervals() const { return num_intervals_; }
  const IntervalBlockHeader& Header(size_t b) const { return headers_[b]; }
  const uint8_t* Bytes() const { return bytes_; }
  size_t ByteSize() const { return byte_size_; }

  /// First cell id covered; view must be non-empty.
  CellId FrontCell() const { return headers_[0].first_cell; }

  /// One past the last cell id covered; view must be non-empty.
  CellId BackEnd() const { return headers_[num_blocks_ - 1].last_end; }

  /// Decodes block \p b into \p out (capacity >= kCodecBlockIntervals).
  /// Returns the interval count, or 0 if the payload is malformed (truncated
  /// varints, overflow, or non-canonical deltas). Well-formed blocks are
  /// never empty, so 0 is unambiguous.
  size_t DecodeBlock(size_t b, CellInterval* out) const;

 private:
  const IntervalBlockHeader* headers_ = nullptr;
  size_t num_blocks_ = 0;
  const uint8_t* bytes_ = nullptr;
  size_t byte_size_ = 0;
  uint64_t num_intervals_ = 0;
};

/// Owning compressed list (header + payload vectors); the heap-backed
/// counterpart of CompressedIntervalView, as IntervalList is of IntervalView.
class CompressedIntervalList {
 public:
  CompressedIntervalList() = default;

  /// Encodes a canonical list. Aborts (STJ_CHECK) on non-canonical input or
  /// a payload beyond the 32-bit per-list offset space.
  static CompressedIntervalList Encode(IntervalView list);

  /// Adopts already-encoded parts (the v3 file loader's path). No validation
  /// here — callers must run ValidateCompressed on the view before trusting
  /// the data.
  static CompressedIntervalList FromParts(
      std::vector<IntervalBlockHeader> headers, std::vector<uint8_t> bytes,
      uint64_t num_intervals) {
    CompressedIntervalList out;
    out.headers_ = std::move(headers);
    out.bytes_ = std::move(bytes);
    out.num_intervals_ = num_intervals;
    return out;
  }

  CompressedIntervalView View() const {
    return CompressedIntervalView(headers_.data(), headers_.size(),
                                  bytes_.data(), bytes_.size(),
                                  num_intervals_);
  }

  /// Decodes back to the flat canonical form; aborts on malformed payloads
  /// (cannot happen for lists built by Encode).
  IntervalList Decode() const;

  const std::vector<IntervalBlockHeader>& Headers() const { return headers_; }
  const std::vector<uint8_t>& Bytes() const { return bytes_; }
  uint64_t Intervals() const { return num_intervals_; }

  /// Compressed in-memory footprint (headers + payload), for the
  /// compression-ratio reporting in EXPERIMENTS.md.
  size_t ByteSize() const {
    return headers_.size() * sizeof(IntervalBlockHeader) + bytes_.size();
  }

 private:
  std::vector<IntervalBlockHeader> headers_;
  std::vector<uint8_t> bytes_;
  uint64_t num_intervals_ = 0;
};

/// Deep validation: structural header checks (monotone ranges, in-range
/// counts and offsets, interval total) plus a full decode of every block
/// verifying payload/header consistency and canonical form across block
/// boundaries. Returns an explanation for the first defect, or "" when the
/// view is well-formed. Used by the v3 loader and the aprilcheck codec audit.
std::string ValidateCompressed(const CompressedIntervalView& view);

/// Decodes the whole view into \p out (cleared first). Returns false on any
/// malformed block; on failure \p out holds the prefix decoded so far.
bool DecodeCompressed(const CompressedIntervalView& view,
                      std::vector<CellInterval>* out);

namespace codec {

/// LEB128 varint helpers shared with the v3 file format (april_io.cpp).
void AppendVarint(std::vector<uint8_t>* out, uint64_t value);

/// Reads one varint from [*p, end), advancing *p. Returns false on
/// truncation or a value that does not fit 64 bits.
bool ReadVarint(const uint8_t** p, const uint8_t* end, uint64_t* value);

}  // namespace codec

}  // namespace stj
