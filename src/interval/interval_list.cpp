#include "src/interval/interval_list.h"

#include <algorithm>

#include "src/util/check.h"

namespace stj {

IntervalView::IntervalView(const IntervalList& list)
    : data_(list.Intervals().data()), size_(list.Size()) {}

uint64_t IntervalView::CellCount() const {
  uint64_t total = 0;
  for (size_t i = 0; i < size_; ++i) total += data_[i].Length();
  return total;
}

bool operator==(IntervalView a, IntervalView b) {
  return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
}

IntervalList IntervalList::FromSorted(std::vector<CellInterval> intervals) {
  IntervalList list;
  list.intervals_ = std::move(intervals);
  STJ_IF_INVARIANTS(list.ValidateInvariants());
  return list;
}

IntervalList IntervalList::FromCells(std::vector<CellId> cells) {
  std::sort(cells.begin(), cells.end());
  IntervalList list;
  if (cells.empty()) return list;
  // First pass: count maximal runs (duplicates and +1 neighbours extend the
  // current run) so the second pass fills an exactly-sized vector.
  size_t runs = 1;
  for (size_t i = 1; i < cells.size(); ++i) {
    if (cells[i] > cells[i - 1] + 1) ++runs;
  }
  list.intervals_.reserve(runs);
  CellId begin = cells[0];
  CellId end = cells[0] + 1;
  for (size_t i = 1; i < cells.size(); ++i) {
    if (cells[i] <= end) {
      end = std::max(end, cells[i] + 1);
    } else {
      list.intervals_.push_back(CellInterval{begin, end});
      begin = cells[i];
      end = cells[i] + 1;
    }
  }
  list.intervals_.push_back(CellInterval{begin, end});
  return list;
}

void IntervalList::Append(CellId begin, CellId end) {
  if (begin >= end) return;
  if (!intervals_.empty() && begin <= intervals_.back().end) {
    STJ_DCHECK_GE(begin, intervals_.back().begin);
    intervals_.back().end = std::max(intervals_.back().end, end);
    return;
  }
  intervals_.push_back(CellInterval{begin, end});
}

uint64_t IntervalList::CellCount() const {
  uint64_t total = 0;
  for (const CellInterval& iv : intervals_) total += iv.Length();
  return total;
}

bool IntervalList::ContainsCell(CellId cell) const {
  const auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), cell,
      [](CellId c, const CellInterval& iv) { return c < iv.begin; });
  if (it == intervals_.begin()) return false;
  return cell < std::prev(it)->end;
}

std::string IntervalList::Validate() const {
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (intervals_[i].Empty()) {
      return "empty interval at index " + std::to_string(i);
    }
    if (i > 0 && intervals_[i].begin <= intervals_[i - 1].end) {
      return "interval " + std::to_string(i) +
             " overlaps or touches its predecessor";
    }
  }
  return "";
}

void IntervalList::ValidateInvariants() const {
  const std::string explanation = Validate();
  STJ_CHECK_MSG(explanation.empty(), explanation.c_str());
}

}  // namespace stj
