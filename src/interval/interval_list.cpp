#include "src/interval/interval_list.h"

#include <algorithm>
#include <cassert>

namespace stj {

IntervalList IntervalList::FromSorted(std::vector<CellInterval> intervals) {
  IntervalList list;
  list.intervals_ = std::move(intervals);
  assert(list.Validate().empty());
  return list;
}

IntervalList IntervalList::FromCells(std::vector<CellId> cells) {
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  IntervalList list;
  for (const CellId cell : cells) list.Append(cell, cell + 1);
  return list;
}

void IntervalList::Append(CellId begin, CellId end) {
  if (begin >= end) return;
  if (!intervals_.empty() && begin <= intervals_.back().end) {
    assert(begin >= intervals_.back().begin);
    intervals_.back().end = std::max(intervals_.back().end, end);
    return;
  }
  intervals_.push_back(CellInterval{begin, end});
}

uint64_t IntervalList::CellCount() const {
  uint64_t total = 0;
  for (const CellInterval& iv : intervals_) total += iv.Length();
  return total;
}

bool IntervalList::ContainsCell(CellId cell) const {
  const auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), cell,
      [](CellId c, const CellInterval& iv) { return c < iv.begin; });
  if (it == intervals_.begin()) return false;
  return cell < std::prev(it)->end;
}

std::string IntervalList::Validate() const {
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (intervals_[i].Empty()) {
      return "empty interval at index " + std::to_string(i);
    }
    if (i > 0 && intervals_[i].begin <= intervals_[i - 1].end) {
      return "interval " + std::to_string(i) +
             " overlaps or touches its predecessor";
    }
  }
  return "";
}

}  // namespace stj
