#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace stj {

/// Identifier of a raster grid cell along the Hilbert curve.
using CellId = uint64_t;

/// A half-open range [begin, end) of Hilbert cell identifiers.
struct CellInterval {
  CellId begin = 0;
  CellId end = 0;

  bool Empty() const { return begin >= end; }
  CellId Length() const { return Empty() ? 0 : end - begin; }

  friend bool operator==(const CellInterval& a, const CellInterval& b) {
    return a.begin == b.begin && a.end == b.end;
  }
};

class IntervalList;

/// Non-owning view of a canonical interval sequence — an IntervalList's
/// contents or one record of an arena-backed AprilStore (april_store.h).
/// Cheap to copy (pointer + size); the interval algebra operates on views so
/// heap-backed and arena-backed lists share one implementation.
class IntervalView {
 public:
  constexpr IntervalView() = default;
  constexpr IntervalView(const CellInterval* data, size_t size)
      : data_(data), size_(size) {}
  IntervalView(const IntervalList& list);  // NOLINT: implicit by design

  size_t Size() const { return size_; }
  bool Empty() const { return size_ == 0; }
  const CellInterval& operator[](size_t i) const { return data_[i]; }
  const CellInterval* begin() const { return data_; }
  const CellInterval* end() const { return data_ + size_; }

  /// First cell id covered; view must be non-empty.
  CellId FrontCell() const { return data_[0].begin; }

  /// One past the last cell id covered; view must be non-empty.
  CellId BackEnd() const { return data_[size_ - 1].end; }

  /// Total number of cells covered.
  uint64_t CellCount() const;

  friend bool operator==(IntervalView a, IntervalView b);

 private:
  const CellInterval* data_ = nullptr;
  size_t size_ = 0;
};

/// A sorted list of disjoint, non-adjacent, non-empty half-open intervals of
/// Hilbert cell ids — the representation of APRIL's Progressive (P) and
/// Conservative (C) object approximations.
///
/// The canonical form (sorted, gaps between consecutive intervals) is what
/// makes every relation in interval_algebra.h a linear merge-join.
class IntervalList {
 public:
  IntervalList() = default;

  /// Builds from intervals that must already be canonical (asserted in debug
  /// builds; see Validate()).
  static IntervalList FromSorted(std::vector<CellInterval> intervals);

  /// Builds the canonical list covering exactly the given cells. The input
  /// is sorted internally; duplicate and consecutive ids coalesce in a
  /// single post-sort pass with an exact reservation (no per-cell growth).
  static IntervalList FromCells(std::vector<CellId> cells);

  /// Appends [begin, end), which must start at or after the current end;
  /// adjacent or overlapping ranges are coalesced into the last interval.
  void Append(CellId begin, CellId end);

  size_t Size() const { return intervals_.size(); }
  bool Empty() const { return intervals_.empty(); }
  const CellInterval& operator[](size_t i) const { return intervals_[i]; }
  const std::vector<CellInterval>& Intervals() const { return intervals_; }

  /// Total number of cells covered.
  uint64_t CellCount() const;

  /// First cell id covered; list must be non-empty.
  CellId FrontCell() const { return intervals_.front().begin; }

  /// One past the last cell id covered; list must be non-empty.
  CellId BackEnd() const { return intervals_.back().end; }

  /// True iff \p cell is covered by some interval (binary search).
  bool ContainsCell(CellId cell) const;

  /// In-memory footprint of the interval data in bytes (Table 2 reporting).
  size_t ByteSize() const { return intervals_.size() * sizeof(CellInterval); }

  /// Checks canonical form: non-empty intervals, strictly increasing, with a
  /// gap between consecutive intervals. Returns an explanation or "".
  std::string Validate() const;

  /// Aborts (STJ_CHECK) if the list is not canonical. Always compiled so
  /// tests can call it in any build; automatic invocation from construction
  /// paths is gated behind STJ_IF_INVARIANTS.
  void ValidateInvariants() const;

  friend bool operator==(const IntervalList& a, const IntervalList& b) {
    return a.intervals_ == b.intervals_;
  }

 private:
  std::vector<CellInterval> intervals_;
};

}  // namespace stj
