#pragma once

#include "src/interval/interval_list.h"

namespace stj {

/// The O(1) range pre-checks shared by every interval relation — flat views
/// here, per-block quick rejects in the compressed merge loops
/// (interval_algebra_compressed.cpp), which apply the same two predicates to
/// block skip-headers instead of whole lists.

/// True when the half-open cell ranges [x_front, x_back_end) and
/// [y_front, y_back_end) cannot share a cell.
inline bool CellRangesDisjoint(CellId x_front, CellId x_back_end,
                               CellId y_front, CellId y_back_end) {
  return x_back_end <= y_front || y_back_end <= x_front;
}

/// True when [outer_front, outer_back_end) covers [inner_front,
/// inner_back_end) end to end — the necessary condition for list containment.
/// Note !CellRangeCovers subsumes CellRangesDisjoint for non-empty ranges, so
/// containment needs no separate disjointness test.
inline bool CellRangeCovers(CellId outer_front, CellId outer_back_end,
                            CellId inner_front, CellId inner_back_end) {
  return outer_front <= inner_front && inner_back_end <= outer_back_end;
}

/// True when the views' covered cell ranges cannot share a cell, so any
/// merge-join that needs a common cell can answer immediately.
inline bool RangesDisjoint(IntervalView x, IntervalView y) {
  return x.Empty() || y.Empty() ||
         CellRangesDisjoint(x.FrontCell(), x.BackEnd(), y.FrontCell(),
                            y.BackEnd());
}

/// True when y's total range covers x's total range; both views must be
/// non-empty. A false result proves ListInside(x, y) is false.
inline bool RangeCovers(IntervalView y, IntervalView x) {
  return CellRangeCovers(y.FrontCell(), y.BackEnd(), x.FrontCell(),
                         x.BackEnd());
}

}  // namespace stj
