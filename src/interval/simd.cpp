#include "src/interval/simd.h"

#include <atomic>
#include <cstdlib>

#include "src/interval/simd_tables.h"
#include "src/util/thread_annotations.h"

namespace stj::simd {

namespace {

/// Active kernel table; resolved lazily on first use. The resolve race is
/// benign (every thread computes the same pointer) and the atomic keeps the
/// publication clean under tsan.
STJ_ATOMIC_DOC("lazy kernel-table pointer; racing resolvers all publish the same value with release, readers acquire — benign race made clean");
std::atomic<const Kernels*> g_active{nullptr};

const Kernels* Resolve() {
  SimdLevel level = DetectSimdLevel();
#if !defined(STJ_DISABLE_SIMD)
  if (const char* env = std::getenv("STJ_SIMD")) {
    SimdLevel forced = SimdLevel::kScalar;
    if (ParseSimdLevel(env, &forced) && KernelsFor(forced) != nullptr) {
      level = forced;
    }
  }
#endif
  const Kernels* table = KernelsFor(level);
  return table != nullptr ? table : &ScalarKernels();
}

}  // namespace

const Kernels* KernelsFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return &ScalarKernels();
    case SimdLevel::kAvx2:
      // Compiled in AND runnable on this CPU; never hand out a table the
      // machine would fault on.
      return DetectSimdLevel() == SimdLevel::kAvx2 ? Avx2KernelsOrNull()
                                                   : nullptr;
    case SimdLevel::kNeon:
      return DetectSimdLevel() == SimdLevel::kNeon ? NeonKernelsOrNull()
                                                   : nullptr;
  }
  return nullptr;
}

const Kernels& Active() {
  const Kernels* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    table = Resolve();
    g_active.store(table, std::memory_order_release);
  }
  return *table;
}

bool ForceLevel(SimdLevel level) {
  const Kernels* table = KernelsFor(level);
  if (table == nullptr) return false;
  g_active.store(table, std::memory_order_release);
  return true;
}

SimdLevel ActiveLevel() { return Active().level; }

}  // namespace stj::simd
