#pragma once

#include <cstdint>

#include "src/interval/interval_list.h"
#include "src/util/cpuid.h"

namespace stj::simd {

/// One table of vectorized merge-join kernels per SimdLevel. The public
/// relations in interval_algebra.h run their O(1) range pre-checks
/// (interval_prechecks.h) and then call through the active table, so the
/// kernels may assume the trivial cases are gone:
///
///   overlap/common_cells: both views non-empty, total ranges intersect.
///   inside:               both views non-empty, y's range covers x's range.
///   match:                equal non-zero sizes, equal FrontCell/BackEnd.
///
/// Every kernel is exact — same results as the scalar table on any input
/// meeting its precondition (the differential suite in
/// tests/interval/simd_differential_test.cpp pins this per build).
struct Kernels {
  bool (*overlap)(IntervalView x, IntervalView y);
  bool (*match)(IntervalView x, IntervalView y);
  bool (*inside)(IntervalView x, IntervalView y);
  uint64_t (*common_cells)(IntervalView x, IntervalView y);
  SimdLevel level;
};

/// The table dispatch selected: the best level DetectSimdLevel() reports,
/// overridable via the STJ_SIMD environment variable ("scalar" / "avx2" /
/// "neon"; ignored when the named level is unavailable) and via ForceLevel.
/// Resolution is lock-free and idempotent; callers may cache the reference.
const Kernels& Active();

/// Table for one specific level, or nullptr when that level was not compiled
/// in or the CPU lacks it. kScalar is always available.
const Kernels* KernelsFor(SimdLevel level);

/// Pins the active table to \p level for this process — test and bench hook
/// for scalar-vs-SIMD differential runs. Returns false (and leaves dispatch
/// unchanged) when the level is unavailable. Not thread-safe against
/// concurrent relation calls; flip it only between single-threaded phases.
bool ForceLevel(SimdLevel level);

/// Level of the active table (convenience for logs and bench records).
SimdLevel ActiveLevel();

}  // namespace stj::simd
