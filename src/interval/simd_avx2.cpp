#include "src/interval/simd_tables.h"

// Compiled with -mavx2 on x86-64 (src/CMakeLists.txt) and reached only after
// runtime dispatch confirms AVX2 (simd.cpp), so the intrinsics below never
// execute on a CPU without them. On other targets — or under
// -DSTJ_DISABLE_SIMD=ON — this TU compiles to the nullptr accessor only.
#if defined(__AVX2__) && !defined(STJ_DISABLE_SIMD)

#include <immintrin.h>

#include <algorithm>

namespace stj::simd {

namespace {

/// Lane order note: LoadBegins/LoadEnds unpack two CellInterval pairs into a
/// (0,2,1,3) lane permutation. Every use below is order-free — masks are
/// combined lane-wise (both operands equally permuted), and counts of
/// monotone columns ("how many ends <= t") are permutation-invariant, which
/// is exactly the prefix length because ends are strictly increasing.

inline __m256i Set1(CellId v) {
  return _mm256_set1_epi64x(static_cast<long long>(v));
}

/// Unsigned 64-bit a > b per lane via the sign-bias trick: AVX2 only has a
/// signed compare, and XOR with 2^63 maps unsigned order onto signed order.
inline __m256i UGreater(__m256i a, __m256i b) {
  const __m256i bias = Set1(CellId{1} << 63);
  return _mm256_cmpgt_epi64(_mm256_xor_si256(a, bias),
                            _mm256_xor_si256(b, bias));
}

/// One bit per 64-bit lane (sign bit), low bit = lane 0.
inline int MoveMask4(__m256i m) {
  return _mm256_movemask_pd(_mm256_castsi256_pd(m));
}

inline size_t CountLanes(int mask) {
  return static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(mask)));
}

inline __m256i LoadRaw(const CellInterval* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

/// begins of p[0..3] in (0,2,1,3) lane order.
inline __m256i LoadBegins(const CellInterval* p) {
  return _mm256_unpacklo_epi64(LoadRaw(p), LoadRaw(p + 2));
}

/// ends of p[0..3] in (0,2,1,3) lane order.
inline __m256i LoadEnds(const CellInterval* p) {
  return _mm256_unpackhi_epi64(LoadRaw(p), LoadRaw(p + 2));
}

/// First index k >= i with v[k].end > t: a scalar probe ladder for advances
/// of 0-2 (where a vector block would cost more than it saves), one 4-wide
/// block for mid-range advances (the lane count with end <= t is the
/// in-order prefix length; see lane order note), then a doubling gallop +
/// binary search so long skips stay O(log n) — a linear vector scan here
/// would lose to the scalar table's gallop on exactly the skewed list pairs
/// (short list inside a huge one) the filters hit most.
size_t ScanEndAbove(IntervalView v, size_t i, CellId t) {
  const size_t n = v.Size();
  if (i >= n || v[i].end > t) return i;
  ++i;
  if (i < n && v[i].end > t) return i;
  ++i;
  if (i < n && v[i].end > t) return i;
  if (i + 4 > n) {
    while (i < n && v[i].end <= t) ++i;
    return i;
  }
  const int above = MoveMask4(UGreater(LoadEnds(&v[i]), Set1(t)));
  if (above != 0) return i + CountLanes(~above & 0xF);
  i += 4;
  // Everything below i ends at or before t; gallop over the remainder.
  size_t lo = i - 1;
  size_t step = 1;
  size_t hi = i;
  while (hi < n && v[hi].end <= t) {
    lo = hi;
    step <<= 1;
    hi = lo + step;
  }
  hi = std::min(hi, n);
  while (lo + 1 < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (v[mid].end <= t) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

/// First index k >= i with v[k].end >= t; t is an interval end, so t >= 1.
size_t ScanEndAtLeast(IntervalView v, size_t i, CellId t) {
  return ScanEndAbove(v, i, t - 1);
}

bool OverlapAvx2(IntervalView x, IntervalView y) {
  // Scalar merge skeleton: both advances go through the hybrid ScanEndAbove,
  // so short steps retire via one 4-wide block and long skips gallop. An
  // earlier variant walked x linearly four lanes at a time against one y
  // interval; that is O(nx/4) when x is the big list and lost badly to the
  // scalar table's gallop on skewed tessellation pairs.
  const size_t nx = x.Size();
  const size_t ny = y.Size();
  size_t i = 0;
  size_t j = 0;
  while (i < nx && j < ny) {
    const CellInterval& a = x[i];
    const CellInterval& b = y[j];
    if (a.begin < b.end && b.begin < a.end) return true;
    if (a.end <= b.end) {
      i = ScanEndAbove(x, i, b.begin);
    } else {
      j = ScanEndAbove(y, j, a.begin);
    }
  }
  return false;
}

bool MatchAvx2(IntervalView x, IntervalView y) {
  const size_t n = x.Size();
  size_t i = 0;
  // Two intervals = one 32-byte block; compare begin/end lanes directly (no
  // unpack needed for equality).
  for (; i + 2 <= n; i += 2) {
    const __m256i eq = _mm256_cmpeq_epi64(LoadRaw(&x[i]), LoadRaw(&y[i]));
    if (MoveMask4(eq) != 0xF) return false;
  }
  for (; i < n; ++i) {
    if (!(x[i] == y[i])) return false;
  }
  return true;
}

bool InsideAvx2(IntervalView x, IntervalView y) {
  const size_t nx = x.Size();
  const size_t ny = y.Size();
  size_t i = 0;
  size_t j = 0;
  while (i < nx) {
    const CellInterval& a = x[i];
    j = ScanEndAtLeast(y, j, a.end);
    if (j == ny || y[j].begin > a.begin) return false;
    // y[j].begin <= a.begin and a.end <= y[j].end: contained. Consume the
    // run of following x intervals also inside y[j] — begins are strictly
    // increasing and already >= y[j].begin, so containment reduces to
    // end <= y[j].end. That is exactly ScanEndAbove's predicate; the inline
    // probe keeps run-length-1 shapes to one compare with no call, while
    // longer runs amortize the helper's block-and-gallop ladder.
    ++i;
    if (i < nx && x[i].end <= y[j].end) {
      i = ScanEndAbove(x, i + 1, y[j].end);
    }
  }
  return true;
}

uint64_t CommonCellsAvx2(IntervalView x, IntervalView y) {
  const size_t nx = x.Size();
  const size_t ny = y.Size();
  size_t i = 0;
  size_t j = 0;
  uint64_t total = 0;
  __m256i acc = _mm256_setzero_si256();
  while (i < nx && j < ny) {
    if (y[j].end <= x[i].begin) {
      j = ScanEndAbove(y, j, x[i].begin);
      continue;
    }
    if (x[i].end <= y[j].begin) {
      i = ScanEndAbove(x, i, y[j].begin);
      continue;
    }
    // Here x[i].end > b.begin, and ends are increasing, so every x lane
    // consumed below overlaps b: its contribution is end - max(begin,
    // b.begin), summed per lane and masked to lanes ending within b. The
    // vector loop is gated on a full block ending within b (one scalar
    // lookahead) — short runs fall through to the scalar tail instead of
    // paying broadcast/unpack setup to retire one or two lanes.
    const CellInterval b = y[j];
    const __m256i vbbeg = Set1(b.begin);
    while (i + 4 <= nx && x[i + 3].end <= b.end) {
      // Ends increase, so the lookahead proves all four lanes end within b:
      // every lane contributes end - max(begin, b.begin) unmasked.
      const __m256i begins = LoadBegins(&x[i]);
      const __m256i ends = LoadEnds(&x[i]);
      const __m256i maxb =
          _mm256_blendv_epi8(vbbeg, begins, UGreater(begins, vbbeg));
      acc = _mm256_add_epi64(acc, _mm256_sub_epi64(ends, maxb));
      i += 4;
    }
    while (i < nx && x[i].end <= b.end) {
      total += x[i].end - std::max(x[i].begin, b.begin);
      ++i;
    }
    // Straddler: the first x interval ending beyond b may still overlap its
    // [*, b.end) suffix; it is not consumed, so the next y sees it again.
    if (i < nx && x[i].begin < b.end) {
      total += b.end - std::max(x[i].begin, b.begin);
    }
    ++j;
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return total + lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

constexpr Kernels kAvx2Kernels = {&OverlapAvx2, &MatchAvx2, &InsideAvx2,
                                  &CommonCellsAvx2, SimdLevel::kAvx2};

}  // namespace

const Kernels* Avx2KernelsOrNull() { return &kAvx2Kernels; }

}  // namespace stj::simd

#else  // !__AVX2__ || STJ_DISABLE_SIMD

namespace stj::simd {

const Kernels* Avx2KernelsOrNull() { return nullptr; }

}  // namespace stj::simd

#endif
