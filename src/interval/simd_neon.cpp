#include "src/interval/simd_tables.h"

// AArch64 Advanced SIMD kernels: 2x64-bit lanes, so the payoff is smaller
// than AVX2's 4 lanes and the merge loops keep the scalar structure with
// vectorized endpoint scans and equality compares. Guarded on __aarch64__
// (ARMv7 NEON lacks the 64-bit compares used here).
#if defined(__aarch64__) && !defined(STJ_DISABLE_SIMD)

#include <arm_neon.h>

#include <algorithm>

namespace stj::simd {

namespace {

/// First index k >= i with v[k].end > t: a scalar probe ladder for advances
/// of 0-2 (cheaper than any vector work there), one 2-wide block
/// (de-interleaving load) for short advances, then a doubling gallop +
/// binary search so long skips stay O(log n) like the scalar table's.
size_t ScanEndAbove(IntervalView v, size_t i, CellId t) {
  const size_t n = v.Size();
  if (i >= n || v[i].end > t) return i;
  ++i;
  if (i < n && v[i].end > t) return i;
  ++i;
  if (i < n && v[i].end > t) return i;
  if (i + 2 > n) {
    while (i < n && v[i].end <= t) ++i;
    return i;
  }
  // vld2q de-interleaves two CellIntervals: val[0] = begins, val[1] = ends.
  const uint64x2x2_t block =
      vld2q_u64(reinterpret_cast<const uint64_t*>(&v[i]));
  const uint64x2_t above = vcgtq_u64(block.val[1], vdupq_n_u64(t));
  const uint64_t lane0 = vgetq_lane_u64(above, 0);
  const uint64_t lane1 = vgetq_lane_u64(above, 1);
  if ((lane0 | lane1) != 0) return i + (lane0 != 0 ? 0 : 1);
  i += 2;
  // Everything below i ends at or before t; gallop over the remainder.
  size_t lo = i - 1;
  size_t step = 1;
  size_t hi = i;
  while (hi < n && v[hi].end <= t) {
    lo = hi;
    step <<= 1;
    hi = lo + step;
  }
  hi = std::min(hi, n);
  while (lo + 1 < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (v[mid].end <= t) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

/// First index k >= i with v[k].end >= t; t is an interval end, so t >= 1.
size_t ScanEndAtLeast(IntervalView v, size_t i, CellId t) {
  return ScanEndAbove(v, i, t - 1);
}

bool OverlapNeon(IntervalView x, IntervalView y) {
  const size_t nx = x.Size();
  const size_t ny = y.Size();
  size_t i = 0;
  size_t j = 0;
  while (i < nx && j < ny) {
    const CellInterval& a = x[i];
    const CellInterval& b = y[j];
    if (a.begin < b.end && b.begin < a.end) return true;
    if (a.end <= b.end) {
      i = ScanEndAbove(x, i, b.begin);
    } else {
      j = ScanEndAbove(y, j, a.begin);
    }
  }
  return false;
}

bool MatchNeon(IntervalView x, IntervalView y) {
  const size_t n = x.Size();
  const auto* px = reinterpret_cast<const uint64_t*>(x.begin());
  const auto* py = reinterpret_cast<const uint64_t*>(y.begin());
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t eq0 = vceqq_u64(vld1q_u64(px + 2 * i),
                                     vld1q_u64(py + 2 * i));
    const uint64x2_t eq1 = vceqq_u64(vld1q_u64(px + 2 * i + 2),
                                     vld1q_u64(py + 2 * i + 2));
    const uint64x2_t both = vandq_u64(eq0, eq1);
    if ((vgetq_lane_u64(both, 0) & vgetq_lane_u64(both, 1)) != ~uint64_t{0}) {
      return false;
    }
  }
  for (; i < n; ++i) {
    if (!(x[i] == y[i])) return false;
  }
  return true;
}

bool InsideNeon(IntervalView x, IntervalView y) {
  const size_t nx = x.Size();
  const size_t ny = y.Size();
  size_t i = 0;
  size_t j = 0;
  while (i < nx) {
    const CellInterval& a = x[i];
    j = ScanEndAtLeast(y, j, a.end);
    if (j == ny || y[j].begin > a.begin) return false;
    // Contained; consume the run of following x intervals also inside y[j]
    // (begins are strictly increasing and >= y[j].begin already, so the
    // test reduces to end <= y[j].end — ScanEndAbove's predicate; the
    // inline probe keeps run-length-1 shapes to one compare, no call).
    ++i;
    if (i < nx && x[i].end <= y[j].end) {
      i = ScanEndAbove(x, i + 1, y[j].end);
    }
  }
  return true;
}

uint64_t CommonCellsNeon(IntervalView x, IntervalView y) {
  uint64_t total = 0;
  size_t i = 0;
  size_t j = 0;
  const size_t nx = x.Size();
  const size_t ny = y.Size();
  while (i < nx && j < ny) {
    const CellInterval& a = x[i];
    const CellInterval& b = y[j];
    const CellId lo = std::max(a.begin, b.begin);
    const CellId hi = std::min(a.end, b.end);
    if (lo < hi) total += hi - lo;
    if (a.end <= b.end) {
      i = (a.end <= b.begin) ? ScanEndAbove(x, i, b.begin) : i + 1;
    } else {
      j = (b.end <= a.begin) ? ScanEndAbove(y, j, a.begin) : j + 1;
    }
  }
  return total;
}

constexpr Kernels kNeonKernels = {&OverlapNeon, &MatchNeon, &InsideNeon,
                                  &CommonCellsNeon, SimdLevel::kNeon};

}  // namespace

const Kernels* NeonKernelsOrNull() { return &kNeonKernels; }

}  // namespace stj::simd

#else  // !__aarch64__ || STJ_DISABLE_SIMD

namespace stj::simd {

const Kernels* NeonKernelsOrNull() { return nullptr; }

}  // namespace stj::simd

#endif
