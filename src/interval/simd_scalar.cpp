#include <algorithm>

#include "src/interval/simd_tables.h"

namespace stj::simd {

namespace {

/// First index k >= i with v[k].end > t, by galloping: one scalar probe for
/// the common advance-by-one case, then doubling steps and a binary search
/// over the overshoot. Endpoints are strictly increasing in canonical lists,
/// so "first end above t" is a lower-bound search on the end column.
size_t GallopEndAbove(IntervalView v, size_t i, CellId t) {
  const size_t n = v.Size();
  if (i >= n || v[i].end > t) return i;
  // v[i].end <= t; find the overshoot window (lo, hi] with v[lo].end <= t.
  size_t lo = i;
  size_t step = 1;
  size_t hi = i + 1;
  while (hi < n && v[hi].end <= t) {
    lo = hi;
    step <<= 1;
    hi = i + step;
  }
  hi = std::min(hi, n);
  // Binary search in (lo, hi]: first index whose end exceeds t.
  while (lo + 1 < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (v[mid].end <= t) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

/// First index k >= i with v[k].end >= t. Canonical intervals are non-empty,
/// so t >= 1 whenever t is an interval end and the t-1 rewrite is safe.
size_t GallopEndAtLeast(IntervalView v, size_t i, CellId t) {
  return GallopEndAbove(v, i, t - 1);
}

bool OverlapScalar(IntervalView x, IntervalView y) {
  size_t i = 0;
  size_t j = 0;
  const size_t nx = x.Size();
  const size_t ny = y.Size();
  while (i < nx && j < ny) {
    const CellInterval& a = x[i];
    const CellInterval& b = y[j];
    if (a.begin < b.end && b.begin < a.end) return true;
    // No overlap, so the side with the smaller end lies entirely below the
    // other's begin; gallop it past every interval ending at or before it.
    if (a.end <= b.end) {
      i = GallopEndAbove(x, i, b.begin);
    } else {
      j = GallopEndAbove(y, j, a.begin);
    }
  }
  return false;
}

bool MatchScalar(IntervalView x, IntervalView y) {
  return std::equal(x.begin(), x.end(), y.begin());
}

bool InsideScalar(IntervalView x, IntervalView y) {
  const size_t ny = y.Size();
  size_t j = 0;
  for (size_t i = 0; i < x.Size(); ++i) {
    const CellInterval& a = x[i];
    // Advance to the first y interval that could contain a: y ends strictly
    // below a.end cannot, and skipped intervals cannot contain any later a
    // either (x begins are increasing past each skipped end).
    j = GallopEndAtLeast(y, j, a.end);
    if (j == ny || y[j].begin > a.begin) return false;
    // y[j].begin <= a.begin and a.end <= y[j].end: contained.
  }
  return true;
}

uint64_t CommonCellsScalar(IntervalView x, IntervalView y) {
  uint64_t total = 0;
  size_t i = 0;
  size_t j = 0;
  const size_t nx = x.Size();
  const size_t ny = y.Size();
  while (i < nx && j < ny) {
    const CellInterval& a = x[i];
    const CellInterval& b = y[j];
    const CellId lo = std::max(a.begin, b.begin);
    const CellId hi = std::min(a.end, b.end);
    if (lo < hi) total += hi - lo;
    if (a.end <= b.end) {
      // When a ends below b entirely, gallop across the disjoint stretch.
      i = (a.end <= b.begin) ? GallopEndAbove(x, i, b.begin) : i + 1;
    } else {
      j = (b.end <= a.begin) ? GallopEndAbove(y, j, a.begin) : j + 1;
    }
  }
  return total;
}

constexpr Kernels kScalarKernels = {&OverlapScalar, &MatchScalar,
                                    &InsideScalar, &CommonCellsScalar,
                                    SimdLevel::kScalar};

}  // namespace

const Kernels& ScalarKernels() { return kScalarKernels; }

}  // namespace stj::simd
