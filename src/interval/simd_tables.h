#pragma once

#include "src/interval/simd.h"

namespace stj::simd {

/// Internal wiring between the per-level kernel translation units and the
/// dispatcher (simd.cpp). Each accessor lives in its own TU so the AVX2 one
/// can be compiled with -mavx2 while everything else stays baseline; the
/// *_OrNull accessors return nullptr when their ISA was not compiled in.
const Kernels& ScalarKernels();
const Kernels* Avx2KernelsOrNull();
const Kernels* NeonKernelsOrNull();

}  // namespace stj::simd
