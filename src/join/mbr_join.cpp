#include "src/join/mbr_join.h"

#include <algorithm>
#include <cmath>

namespace stj {

namespace {

struct TileEntry {
  double xmin;  // sort key (exact copy of the box's min.x)
  uint32_t idx;
};

struct TileGrid {
  Box bounds;
  uint32_t tiles = 1;
  double inv_w = 0.0;
  double inv_h = 0.0;

  uint32_t TileX(double x) const {
    const double t = (x - bounds.min.x) * inv_w;
    if (t <= 0.0) return 0;
    return std::min(static_cast<uint32_t>(t), tiles - 1);
  }
  uint32_t TileY(double y) const {
    const double t = (y - bounds.min.y) * inv_h;
    if (t <= 0.0) return 0;
    return std::min(static_cast<uint32_t>(t), tiles - 1);
  }
};

void Distribute(const std::vector<Box>& boxes, const TileGrid& grid,
                std::vector<std::vector<TileEntry>>* tiles) {
  for (uint32_t i = 0; i < boxes.size(); ++i) {
    const Box& b = boxes[i];
    if (b.IsEmpty()) continue;
    const uint32_t tx0 = grid.TileX(b.min.x);
    const uint32_t tx1 = grid.TileX(b.max.x);
    const uint32_t ty0 = grid.TileY(b.min.y);
    const uint32_t ty1 = grid.TileY(b.max.y);
    for (uint32_t ty = ty0; ty <= ty1; ++ty) {
      for (uint32_t tx = tx0; tx <= tx1; ++tx) {
        (*tiles)[ty * grid.tiles + tx].push_back(TileEntry{b.min.x, i});
      }
    }
  }
  for (auto& tile : *tiles) {
    std::sort(tile.begin(), tile.end(),
              [](const TileEntry& a, const TileEntry& b) {
                return a.xmin < b.xmin;
              });
  }
}

}  // namespace

std::vector<CandidatePair> MbrJoin::Join(const std::vector<Box>& r,
                                         const std::vector<Box>& s,
                                         Options options) {
  std::vector<CandidatePair> out;
  if (r.empty() || s.empty()) return out;

  TileGrid grid;
  for (const Box& b : r) grid.bounds.Expand(b);
  for (const Box& b : s) grid.bounds.Expand(b);
  if (grid.bounds.IsEmpty()) return out;
  uint32_t tiles = options.tiles_per_side;
  if (tiles == 0) {
    tiles = static_cast<uint32_t>(
        std::sqrt(static_cast<double>(r.size() + s.size()) / 8.0));
    tiles = std::clamp<uint32_t>(tiles, 1, 1024);
  }
  grid.tiles = tiles;
  grid.inv_w = grid.bounds.Width() > 0
                   ? static_cast<double>(tiles) / grid.bounds.Width()
                   : 0.0;
  grid.inv_h = grid.bounds.Height() > 0
                   ? static_cast<double>(tiles) / grid.bounds.Height()
                   : 0.0;

  std::vector<std::vector<TileEntry>> r_tiles(
      static_cast<size_t>(tiles) * tiles);
  std::vector<std::vector<TileEntry>> s_tiles(
      static_cast<size_t>(tiles) * tiles);
  Distribute(r, grid, &r_tiles);
  Distribute(s, grid, &s_tiles);

  // Reports (a, b) if they intersect and this tile owns their reference
  // point (the max of the two min-corners).
  auto emit_if_owned = [&](uint32_t a, uint32_t b, uint32_t tx, uint32_t ty) {
    const Box& ra = r[a];
    const Box& sb = s[b];
    if (ra.min.y > sb.max.y || sb.min.y > ra.max.y) return;  // y-overlap test
    const double ref_x = std::max(ra.min.x, sb.min.x);
    const double ref_y = std::max(ra.min.y, sb.min.y);
    if (grid.TileX(ref_x) != tx || grid.TileY(ref_y) != ty) return;
    out.push_back(CandidatePair{a, b});
  };

  for (uint32_t ty = 0; ty < tiles; ++ty) {
    for (uint32_t tx = 0; tx < tiles; ++tx) {
      const auto& rt = r_tiles[ty * tiles + tx];
      const auto& st = s_tiles[ty * tiles + tx];
      if (rt.empty() || st.empty()) continue;
      // Forward scan: both sides sorted by xmin.
      size_t i = 0;
      size_t j = 0;
      while (i < rt.size() && j < st.size()) {
        if (rt[i].xmin <= st[j].xmin) {
          const double xmax = r[rt[i].idx].max.x;
          for (size_t k = j; k < st.size(); ++k) {
            if (st[k].xmin > xmax) break;
            emit_if_owned(rt[i].idx, st[k].idx, tx, ty);
          }
          ++i;
        } else {
          const double xmax = s[st[j].idx].max.x;
          for (size_t k = i; k < rt.size(); ++k) {
            if (rt[k].xmin > xmax) break;
            emit_if_owned(rt[k].idx, st[j].idx, tx, ty);
          }
          ++j;
        }
      }
    }
  }
  return out;
}

std::vector<CandidatePair> MbrJoin::JoinBruteForce(const std::vector<Box>& r,
                                                   const std::vector<Box>& s) {
  std::vector<CandidatePair> out;
  for (uint32_t i = 0; i < r.size(); ++i) {
    for (uint32_t j = 0; j < s.size(); ++j) {
      if (r[i].Intersects(s[j])) out.push_back(CandidatePair{i, j});
    }
  }
  return out;
}

}  // namespace stj
