#include "src/join/mbr_join.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <thread>

#include "src/util/check.h"
#include "src/util/parallel_for.h"
#include "src/util/thread_annotations.h"

namespace stj {

namespace {

struct TileEntry {
  double xmin;  // sort key (exact copy of the box's min.x)
  uint32_t idx;
};

struct TileGrid {
  Box bounds;
  uint32_t tiles = 1;
  double inv_w = 0.0;
  double inv_h = 0.0;

  uint32_t TileX(double x) const {
    const double t = (x - bounds.min.x) * inv_w;
    if (t <= 0.0) return 0;
    return std::min(static_cast<uint32_t>(t), tiles - 1);
  }
  uint32_t TileY(double y) const {
    const double t = (y - bounds.min.y) * inv_h;
    if (t <= 0.0) return 0;
    return std::min(static_cast<uint32_t>(t), tiles - 1);
  }
};

/// Calls fn(tile_index) for every tile the (non-empty) box overlaps.
template <typename Fn>
void ForEachTile(const Box& b, const TileGrid& grid, Fn&& fn) {
  const uint32_t tx0 = grid.TileX(b.min.x);
  const uint32_t tx1 = grid.TileX(b.max.x);
  const uint32_t ty0 = grid.TileY(b.min.y);
  const uint32_t ty1 = grid.TileY(b.max.y);
  for (uint32_t ty = ty0; ty <= ty1; ++ty) {
    for (uint32_t tx = tx0; tx <= tx1; ++tx) {
      fn(static_cast<size_t>(ty) * grid.tiles + tx);
    }
  }
}

/// Tile buckets in CSR form: the entries of tile t occupy
/// entries[offsets[t] .. offsets[t + 1]), sorted by (xmin, idx).
struct TileCsr {
  std::vector<size_t> offsets;     // tiles^2 + 1
  std::vector<TileEntry> entries;  // one flat allocation for all tiles

  const TileEntry* Begin(size_t tile) const { return entries.data() + offsets[tile]; }
  size_t Size(size_t tile) const { return offsets[tile + 1] - offsets[tile]; }

  /// Aborts (STJ_CHECK) if the prefix-sum layout or the per-tile sort is
  /// inconsistent: offsets must be a monotone [0 .. entries.size()] ramp of
  /// tile_count+1 entries, every entry index must address an input box, and
  /// each tile's run must be (xmin, idx)-sorted — the order both the sweep
  /// and the deterministic-mode guarantee depend on. O(entries).
  void ValidateInvariants(size_t tile_count, size_t num_boxes) const {
    STJ_CHECK_MSG(offsets.size() == tile_count + 1,
                  "offset table must have tile_count+1 entries");
    STJ_CHECK_MSG(offsets.front() == 0 && offsets.back() == entries.size(),
                  "offset ramp must span exactly the entry array");
    for (size_t t = 0; t < tile_count; ++t) {
      STJ_CHECK_MSG(offsets[t] <= offsets[t + 1],
                    "tile offsets must be monotone");
      const TileEntry* run = Begin(t);
      const size_t n = Size(t);
      for (size_t i = 0; i < n; ++i) {
        STJ_CHECK_MSG(run[i].idx < num_boxes,
                      "tile entry must reference an input box");
        if (i > 0) {
          const bool sorted = run[i - 1].xmin < run[i].xmin ||
                              (run[i - 1].xmin == run[i].xmin &&
                               run[i - 1].idx < run[i].idx);
          STJ_CHECK_MSG(sorted, "tile run must be (xmin, idx)-sorted");
        }
      }
    }
  }
};

/// Two-pass distribute: count replications per tile, prefix-sum into the
/// offset table, then scatter entries through per-tile atomic cursors. Every
/// pass fans out over \p threads workers; the final per-tile sort uses idx
/// as tiebreaker so the layout is independent of scatter interleaving (and
/// of the thread count).
/// Items per cancellation check-in for the distribute passes. Counting or
/// scattering one box costs nanoseconds, so a coarse grain keeps check-in
/// overhead invisible while still bounding trip latency to microseconds.
constexpr size_t kDistributeGrain = 4096;

TileCsr BuildCsr(const std::vector<Box>& boxes, const TileGrid& grid,
                 unsigned threads, ExecContext* exec) {
  const size_t tile_count = static_cast<size_t>(grid.tiles) * grid.tiles;
  TileCsr csr;
  csr.offsets.assign(tile_count + 1, 0);

  STJ_ATOMIC_DOC("per-tile write cursors; relaxed fetch_add hands each worker a distinct slot, the RunChunks join publishes the rows");
  const auto cursors = std::make_unique<std::atomic<size_t>[]>(tile_count);
  for (size_t t = 0; t < tile_count; ++t) {
    cursors[t].store(0, std::memory_order_relaxed);
  }
  internal::RunChunks(exec, kDistributeGrain, threads, boxes.size(),
                      [&](unsigned, size_t begin, size_t end) {
                        for (size_t i = begin; i < end; ++i) {
                          if (boxes[i].IsEmpty()) continue;
                          ForEachTile(boxes[i], grid, [&](size_t tile) {
                            cursors[tile].fetch_add(1,
                                                    std::memory_order_relaxed);
                          });
                        }
                      });
  if (exec != nullptr && exec->StopRequested()) return csr;

  size_t total = 0;
  for (size_t t = 0; t < tile_count; ++t) {
    csr.offsets[t] = total;
    total += cursors[t].load(std::memory_order_relaxed);
    // Reuse the count slot as the tile's write cursor for the scatter pass.
    cursors[t].store(csr.offsets[t], std::memory_order_relaxed);
  }
  csr.offsets[tile_count] = total;
  if (exec != nullptr && !exec->TryCharge(total * sizeof(TileEntry))) {
    // Budget trip: leave the CSR empty (offsets all zero) — Join returns no
    // pairs and the caller reads the cause from exec->ToStatus().
    csr.offsets.assign(tile_count + 1, 0);
    return csr;
  }
  csr.entries.resize(total);

  internal::RunChunks(
      exec, kDistributeGrain, threads, boxes.size(),
      [&](unsigned, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          if (boxes[i].IsEmpty()) continue;
          ForEachTile(boxes[i], grid, [&](size_t tile) {
            const size_t slot =
                cursors[tile].fetch_add(1, std::memory_order_relaxed);
            csr.entries[slot] =
                TileEntry{boxes[i].min.x, static_cast<uint32_t>(i)};
          });
        }
      });
  if (exec != nullptr && exec->StopRequested()) {
    // A partially scattered layout is not a valid CSR; drop it.
    csr.offsets.assign(tile_count + 1, 0);
    csr.entries.clear();
    return csr;
  }

  internal::RunChunks(
      exec, /*grain=*/64, threads, tile_count,
      [&](unsigned, size_t begin, size_t end) {
        for (size_t t = begin; t < end; ++t) {
          std::sort(csr.entries.begin() + static_cast<ptrdiff_t>(csr.offsets[t]),
                    csr.entries.begin() +
                        static_cast<ptrdiff_t>(csr.offsets[t + 1]),
                    [](const TileEntry& a, const TileEntry& b) {
                      if (a.xmin != b.xmin) return a.xmin < b.xmin;
                      return a.idx < b.idx;  // reproducible order under ties
                    });
        }
      });
  if (exec != nullptr && exec->StopRequested()) {
    csr.offsets.assign(tile_count + 1, 0);
    csr.entries.clear();
    return csr;
  }
  STJ_IF_INVARIANTS(csr.ValidateInvariants(tile_count, boxes.size()));
  return csr;
}

unsigned ResolveJoinThreads(unsigned requested, size_t work) {
  if (requested != 0) {
    // An explicit request is honoured (the concurrency tests rely on real
    // worker threads), but never with more workers than input boxes.
    return static_cast<unsigned>(
        std::min<size_t>(requested, std::max<size_t>(1, work)));
  }
  unsigned n = std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  // Auto mode: tiny inputs are not worth the thread spawn cost.
  const size_t max_useful = std::max<size_t>(1, work / 2048);
  return static_cast<unsigned>(std::min<size_t>(n, max_useful));
}

/// Number of consecutive tiles a worker claims per steal in dynamic mode:
/// coarse enough to amortise the atomic, fine enough that one dense tile
/// region cannot serialize the tail.
constexpr size_t kTileBlock = 32;

}  // namespace

std::vector<CandidatePair> MbrJoin::Join(const std::vector<Box>& r,
                                         const std::vector<Box>& s,
                                         Options options) {
  std::vector<CandidatePair> out;
  if (r.empty() || s.empty()) return out;

  TileGrid grid;
  for (const Box& b : r) grid.bounds.Expand(b);
  for (const Box& b : s) grid.bounds.Expand(b);
  if (grid.bounds.IsEmpty()) return out;
  uint32_t tiles = options.tiles_per_side;
  if (tiles == 0) {
    tiles = static_cast<uint32_t>(
        std::sqrt(static_cast<double>(r.size() + s.size()) / 8.0));
    tiles = std::clamp<uint32_t>(tiles, 1, 1024);
  }
  grid.tiles = tiles;
  grid.inv_w = grid.bounds.Width() > 0
                   ? static_cast<double>(tiles) / grid.bounds.Width()
                   : 0.0;
  grid.inv_h = grid.bounds.Height() > 0
                   ? static_cast<double>(tiles) / grid.bounds.Height()
                   : 0.0;

  ExecContext* exec = options.exec;
  const unsigned threads =
      ResolveJoinThreads(options.num_threads, r.size() + s.size());
  const TileCsr r_csr = BuildCsr(r, grid, threads, exec);
  const TileCsr s_csr = BuildCsr(s, grid, threads, exec);
  if (exec != nullptr && exec->StopRequested()) return out;

  // Sweeps one tile: forward scan of the two xmin-sorted entry runs,
  // reporting (a, b) if the boxes intersect and this tile owns their
  // reference point (the max of the two min-corners).
  auto sweep_tile = [&](size_t tile, std::vector<CandidatePair>* sink) {
    const TileEntry* rt = r_csr.Begin(tile);
    const TileEntry* st = s_csr.Begin(tile);
    const size_t rn = r_csr.Size(tile);
    const size_t sn = s_csr.Size(tile);
    if (rn == 0 || sn == 0) return;
    const auto tx = static_cast<uint32_t>(tile % grid.tiles);
    const auto ty = static_cast<uint32_t>(tile / grid.tiles);
    auto emit_if_owned = [&](uint32_t a, uint32_t b) {
      const Box& ra = r[a];
      const Box& sb = s[b];
      if (ra.min.y > sb.max.y || sb.min.y > ra.max.y) return;  // y-overlap
      const double ref_x = std::max(ra.min.x, sb.min.x);
      const double ref_y = std::max(ra.min.y, sb.min.y);
      if (grid.TileX(ref_x) != tx || grid.TileY(ref_y) != ty) return;
      sink->push_back(CandidatePair{a, b});
    };
    size_t i = 0;
    size_t j = 0;
    while (i < rn && j < sn) {
      if (rt[i].xmin <= st[j].xmin) {
        const double xmax = r[rt[i].idx].max.x;
        for (size_t k = j; k < sn; ++k) {
          if (st[k].xmin > xmax) break;
          emit_if_owned(rt[i].idx, st[k].idx);
        }
        ++i;
      } else {
        const double xmax = s[st[j].idx].max.x;
        for (size_t k = i; k < rn; ++k) {
          if (rt[k].xmin > xmax) break;
          emit_if_owned(rt[k].idx, st[j].idx);
        }
        ++j;
      }
    }
  };

  const size_t tile_count = static_cast<size_t>(tiles) * tiles;
  std::vector<std::vector<CandidatePair>> per_worker(threads);
  unsigned used = 0;
  if (options.deterministic || threads <= 1) {
    // Static contiguous tile chunks: worker w owns the w-th ascending tile
    // range, so concatenating per-worker buffers in worker order reproduces
    // the single-threaded tile-major pair order exactly. One check-in per
    // swept tile bounds cancel latency to a single tile's sweep.
    used = internal::RunChunks(exec, /*grain=*/1, threads, tile_count,
                               [&](unsigned worker, size_t begin, size_t end) {
                                 for (size_t t = begin; t < end; ++t) {
                                   sweep_tile(t, &per_worker[worker]);
                                 }
                               });
  } else {
    // Dynamic scheduling: idle workers steal the next block of tiles, so a
    // few dense tiles cannot serialize the sweep tail.
    STJ_ATOMIC_DOC("work-stealing tile-block cursor; relaxed fetch_add, each block is claimed by exactly one worker");
    std::atomic<size_t> next{0};
    used = internal::RunWorkers(threads, [&](unsigned worker) {
      ExecContext::Scope scope(exec);
      while (!scope.stopped()) {
        const size_t begin = next.fetch_add(kTileBlock);
        if (begin >= tile_count) break;
        const size_t end = std::min(tile_count, begin + kTileBlock);
        for (size_t t = begin; t < end; ++t) {
          if (scope.CheckIn()) break;
          sweep_tile(t, &per_worker[worker]);
        }
      }
    });
  }

  size_t total_pairs = 0;
  for (unsigned w = 0; w < used; ++w) total_pairs += per_worker[w].size();
  out.reserve(total_pairs);
  for (unsigned w = 0; w < used; ++w) {
    out.insert(out.end(), per_worker[w].begin(), per_worker[w].end());
  }
  return out;
}

std::vector<CandidatePair> MbrJoin::JoinBruteForce(const std::vector<Box>& r,
                                                   const std::vector<Box>& s) {
  std::vector<CandidatePair> out;
  for (uint32_t i = 0; i < r.size(); ++i) {
    for (uint32_t j = 0; j < s.size(); ++j) {
      if (r[i].Intersects(s[j])) out.push_back(CandidatePair{i, j});
    }
  }
  return out;
}

CandidateSoA MbrJoin::ToSoA(const std::vector<CandidatePair>& pairs) {
  CandidateSoA soa;
  soa.r_idx.reserve(pairs.size());
  soa.s_idx.reserve(pairs.size());
  for (const CandidatePair& pair : pairs) {
    soa.r_idx.push_back(pair.r_idx);
    soa.s_idx.push_back(pair.s_idx);
  }
  return soa;
}

}  // namespace stj
