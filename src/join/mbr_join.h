#pragma once

#include <cstdint>
#include <vector>

#include "src/geometry/box.h"
#include "src/util/exec_context.h"

namespace stj {

/// A candidate pair emitted by the filter step: indices into the two input
/// datasets whose MBRs intersect.
struct CandidatePair {
  uint32_t r_idx = 0;
  uint32_t s_idx = 0;

  friend bool operator==(const CandidatePair& a, const CandidatePair& b) {
    return a.r_idx == b.r_idx && a.s_idx == b.s_idx;
  }
  friend bool operator<(const CandidatePair& a, const CandidatePair& b) {
    if (a.r_idx != b.r_idx) return a.r_idx < b.r_idx;
    return a.s_idx < b.s_idx;
  }
};

/// Structure-of-arrays transpose of a candidate pair list: two flat,
/// index-aligned id columns. The staged batch executor (topology layer)
/// gathers pair ids through a permuted schedule, and columnar storage keeps
/// those gathers on dense cache lines — it is also the layout a GPU or
/// wide-SIMD filter stage would consume as flat buffers.
struct CandidateSoA {
  std::vector<uint32_t> r_idx;
  std::vector<uint32_t> s_idx;

  size_t Size() const { return r_idx.size(); }
};

/// In-memory MBR intersection join: the filter step of the pipeline
/// (the paper delegates this to [39]; its cost is excluded from all
/// measurements, only the candidate set matters).
///
/// Method: uniform grid partitioning over the combined data space, each box
/// replicated into every tile it overlaps; within a tile both sides are
/// sorted by xmin and swept with the classic forward scan; duplicates from
/// replication are suppressed with the reference-point rule (a pair is
/// reported only by the tile containing the top-right-most min-corner of the
/// MBR intersection).
///
/// Layout: tile buckets are a CSR-style index — one flat entry array per
/// side plus a per-tile offset table built with a count/prefix-sum/scatter
/// pass — so the distribute phase does exactly two allocations per side no
/// matter how many tiles the grid has. Both the distribute and the per-tile
/// sweep phases run on Options::num_threads workers.
class MbrJoin {
 public:
  struct Options {
    // Member-init-list constructor (not default member initializers): the
    // defaults are needed by Join's default argument before this class is
    // complete.
    Options()
        : tiles_per_side(0),
          num_threads(1),
          deterministic(false),
          exec(nullptr) {}
    /// Tiles per side; 0 picks ~sqrt((|r|+|s|)/8) automatically.
    uint32_t tiles_per_side;
    /// Worker threads for the distribute and sweep phases
    /// (0 = hardware concurrency, 1 = fully serial).
    unsigned num_threads;
    /// When true, tiles are assigned to workers in static contiguous chunks
    /// and per-worker outputs are concatenated in worker order, which makes
    /// the emitted pair *order* byte-identical for every thread count. When
    /// false, tiles are scheduled dynamically (better balance under skew)
    /// and only the pair *set* is guaranteed stable.
    bool deterministic;
    /// Optional deadline/cancel/budget carrier. Workers check in per swept
    /// tile (and per distribute slice); a trip makes Join return early with
    /// only the pairs discovered so far. The filter's candidate set is only
    /// complete when !exec->StopRequested() afterwards — a cut-short filter
    /// result must be treated as "query stopped during the filter stage",
    /// not as a smaller join. The tile-entry tables are charged against the
    /// exec memory budget before allocation.
    ExecContext* exec;
  };

  /// Returns all pairs (i, j) with r[i] intersecting s[j].
  static std::vector<CandidatePair> Join(const std::vector<Box>& r,
                                         const std::vector<Box>& s,
                                         Options options = Options());

  /// Reference quadratic join for verification in tests.
  static std::vector<CandidatePair> JoinBruteForce(const std::vector<Box>& r,
                                                   const std::vector<Box>& s);

  /// Transposes a pair list into the SoA column layout (exact reservation,
  /// one pass).
  static CandidateSoA ToSoA(const std::vector<CandidatePair>& pairs);
};

}  // namespace stj
