#include "src/join/partitioner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "src/util/check.h"

namespace stj {

namespace {

/// Weight of object i: its computational units, floored to 1 so zero-unit
/// objects still contribute to the quantiles (a weightless object would
/// otherwise let every boundary collapse onto it).
uint64_t WeightOf(const std::vector<uint64_t>& units, size_t i) {
  return units[i] == 0 ? 1 : units[i];
}

/// Places \p cuts internal boundaries on the weighted quantiles of the
/// (position, weight) pairs in \p order (sorted ascending by position).
/// Boundary j sits at the position of the item that crosses the j-th equal
/// weight share. Returns `cuts` non-decreasing values.
std::vector<double> WeightedQuantiles(const std::vector<double>& position,
                                      const std::vector<uint64_t>& weight,
                                      const std::vector<uint32_t>& order,
                                      uint32_t cuts) {
  std::vector<double> bounds;
  bounds.reserve(cuts);
  if (cuts == 0) return bounds;
  uint64_t total = 0;
  for (const uint32_t i : order) total += weight[i];
  size_t k = 0;
  uint64_t cum = 0;
  double prev = -std::numeric_limits<double>::infinity();
  for (uint32_t j = 1; j <= cuts; ++j) {
    // Integer-exact target: ceil(total * j / (cuts + 1)).
    const uint64_t target =
        (total * j + cuts) / (static_cast<uint64_t>(cuts) + 1);
    while (k < order.size() && cum < target) {
      cum += weight[order[k]];
      ++k;
    }
    double b = k == 0 ? prev : position[order[k - 1]];
    if (b < prev) b = prev;  // ties/exhaustion: keep the run non-decreasing
    bounds.push_back(b);
    prev = b;
  }
  return bounds;
}

TilePartition BuildOnce(const std::vector<Box>& mbrs,
                        const std::vector<uint64_t>& units, const Box& domain,
                        uint32_t tiles) {
  const size_t n = mbrs.size();
  TilePartition part;

  uint32_t columns = std::max<uint32_t>(
      1, static_cast<uint32_t>(std::lround(std::sqrt(
             static_cast<double>(tiles)))));
  const uint32_t rows = std::max<uint32_t>(1, (tiles + columns - 1) / columns);

  std::vector<double> cx(n);
  std::vector<double> cy(n);
  std::vector<uint64_t> weight(n);
  for (size_t i = 0; i < n; ++i) {
    const Point c = mbrs[i].Center();
    cx[i] = c.x;
    cy[i] = c.y;
    weight[i] = WeightOf(units, i);
  }

  // Column boundaries: weighted x-quantiles over all centers.
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (cx[a] != cx[b]) return cx[a] < cx[b];
    return a < b;
  });
  TileGrid& grid = part.grid;
  grid.domain = domain;
  grid.columns = columns;
  grid.rows = rows;
  grid.x_bounds.reserve(columns + 1);
  grid.x_bounds.push_back(domain.min.x);
  for (double b : WeightedQuantiles(cx, weight, order, columns - 1)) {
    b = std::clamp(b, domain.min.x, domain.max.x);
    if (b < grid.x_bounds.back()) b = grid.x_bounds.back();
    grid.x_bounds.push_back(b);
  }
  grid.x_bounds.push_back(domain.max.x);
  if (grid.x_bounds.back() < grid.x_bounds[grid.x_bounds.size() - 2]) {
    grid.x_bounds.back() = grid.x_bounds[grid.x_bounds.size() - 2];
  }

  // Row boundaries: per column, weighted y-quantiles of the objects whose
  // center falls in that column ("dice" after "slice").
  std::vector<std::vector<uint32_t>> column_members(columns);
  for (uint32_t i = 0; i < n; ++i) {
    column_members[grid.ColumnOf(cx[i])].push_back(i);
  }
  grid.y_bounds.reserve(static_cast<size_t>(columns) * (rows + 1));
  for (uint32_t c = 0; c < columns; ++c) {
    std::vector<uint32_t>& members = column_members[c];
    std::sort(members.begin(), members.end(), [&](uint32_t a, uint32_t b) {
      if (cy[a] != cy[b]) return cy[a] < cy[b];
      return a < b;
    });
    grid.y_bounds.push_back(domain.min.y);
    if (members.empty()) {
      // Empty slab: uniform heights (nothing to balance).
      for (uint32_t r = 1; r < rows; ++r) {
        grid.y_bounds.push_back(domain.min.y +
                                domain.Height() * static_cast<double>(r) /
                                    static_cast<double>(rows));
      }
    } else {
      for (double b : WeightedQuantiles(cy, weight, members, rows - 1)) {
        b = std::clamp(b, domain.min.y, domain.max.y);
        if (b < grid.y_bounds.back()) b = grid.y_bounds.back();
        grid.y_bounds.push_back(b);
      }
    }
    grid.y_bounds.push_back(domain.max.y);
    if (grid.y_bounds.back() < grid.y_bounds[grid.y_bounds.size() - 2]) {
      grid.y_bounds.back() = grid.y_bounds[grid.y_bounds.size() - 2];
    }
  }
  STJ_IF_INVARIANTS(grid.ValidateInvariants());

  // MBR-overlap assignment: count / prefix-sum / scatter CSR, objects
  // visited in index order so each tile's entry run is ascending.
  const uint32_t num_tiles = grid.Tiles();
  part.tile_begin.assign(static_cast<size_t>(num_tiles) + 1, 0);
  part.tile_units.assign(num_tiles, 0);
  const auto ForEachOverlappedTile = [&](size_t i, auto&& fn) {
    uint32_t c_lo, c_hi;
    grid.ColumnRange(mbrs[i].min.x, mbrs[i].max.x, &c_lo, &c_hi);
    for (uint32_t c = c_lo; c <= c_hi; ++c) {
      uint32_t r_lo, r_hi;
      grid.RowRange(c, mbrs[i].min.y, mbrs[i].max.y, &r_lo, &r_hi);
      for (uint32_t r = r_lo; r <= r_hi; ++r) fn(grid.TileId(c, r));
    }
  };
  for (size_t i = 0; i < n; ++i) {
    ForEachOverlappedTile(i, [&](uint32_t t) { ++part.tile_begin[t + 1]; });
  }
  for (uint32_t t = 0; t < num_tiles; ++t) {
    part.tile_begin[t + 1] += part.tile_begin[t];
  }
  part.entries.resize(part.tile_begin.back());
  std::vector<uint32_t> cursor(part.tile_begin.begin(),
                               part.tile_begin.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    ForEachOverlappedTile(i, [&](uint32_t t) {
      part.entries[cursor[t]++] = static_cast<uint32_t>(i);
      part.tile_units[t] += units[i];
      part.assigned_units += units[i];
    });
  }
  return part;
}

}  // namespace

double TilePartition::MaxImbalance() const {
  if (Tiles() <= 1 || assigned_units == 0) return 1.0;
  const uint64_t max_units =
      *std::max_element(tile_units.begin(), tile_units.end());
  const double mean = static_cast<double>(assigned_units) /
                      static_cast<double>(Tiles());
  return static_cast<double>(max_units) / mean;
}

void TilePartition::ValidateInvariants(
    const std::vector<uint64_t>& units) const {
  grid.ValidateInvariants();
  const uint32_t num_tiles = Tiles();
  STJ_CHECK(tile_begin.size() == static_cast<size_t>(num_tiles) + 1);
  STJ_CHECK(tile_units.size() == num_tiles);
  STJ_CHECK(tile_begin.front() == 0);
  STJ_CHECK(tile_begin.back() == entries.size());
  uint64_t total = 0;
  for (uint32_t t = 0; t < num_tiles; ++t) {
    STJ_CHECK(tile_begin[t] <= tile_begin[t + 1]);
    uint64_t tile_total = 0;
    for (uint32_t e = tile_begin[t]; e < tile_begin[t + 1]; ++e) {
      STJ_CHECK(entries[e] < units.size());
      if (e > tile_begin[t]) STJ_CHECK(entries[e - 1] < entries[e]);
      tile_total += units[entries[e]];
    }
    STJ_CHECK(tile_total == tile_units[t]);
    total += tile_total;
  }
  STJ_CHECK(total == assigned_units);
}

TilePartition BuildCostBalancedPartition(const std::vector<Box>& mbrs,
                                         const std::vector<uint64_t>& units,
                                         const PartitionOptions& options) {
  STJ_CHECK(units.size() == mbrs.size());
  Box domain = Box::Empty();
  for (const Box& mbr : mbrs) domain.Expand(mbr);
  if (domain.IsEmpty()) {
    domain = Box::Of(Point{0.0, 0.0}, Point{1.0, 1.0});
  }

  uint64_t total_units = 0;
  for (const uint64_t u : units) total_units += u == 0 ? 1 : u;

  uint32_t tiles = options.target_tiles;
  if (tiles == 0) {
    if (options.units_per_tile > 0) {
      const uint64_t want =
          (total_units + options.units_per_tile - 1) / options.units_per_tile;
      tiles = static_cast<uint32_t>(
          std::clamp<uint64_t>(want, 1, 4096));
    } else {
      tiles = static_cast<uint32_t>(
          std::clamp<size_t>(mbrs.size() / 512, 1, 256));
    }
  }

  // Coarsen-until-balanced: replication at tile boundaries can concentrate
  // units no boundary placement avoids; halving the tile count dilutes it,
  // and a single tile is trivially within any factor.
  TilePartition part = BuildOnce(mbrs, units, domain, tiles);
  while (options.max_imbalance > 1.0 && part.Tiles() > 1 &&
         part.MaxImbalance() > options.max_imbalance) {
    tiles = std::max<uint32_t>(1, part.Tiles() / 2);
    part = BuildOnce(mbrs, units, domain, tiles);
  }
  STJ_IF_INVARIANTS(part.ValidateInvariants(units));
  return part;
}

}  // namespace stj
