#pragma once

#include <cstdint>
#include <vector>

#include "src/geometry/box.h"
#include "src/geometry/tile_grid.h"

namespace stj {

/// Knobs of the cost-balanced partitioner.
struct PartitionOptions {
  /// Requested tile count; 0 derives it from units_per_tile (or, when both
  /// are 0, from the object count: ~one tile per 512 objects, capped to
  /// [1, 256]). The builder factors the request into a near-square
  /// columns x rows layout, so the realised Tiles() can differ slightly.
  uint32_t target_tiles = 0;
  /// Target computational units per tile, used when target_tiles == 0 (the
  /// CLI's --partition-units). 0 = auto.
  uint64_t units_per_tile = 0;
  /// Accepted per-tile unit imbalance, as max(tile_units) / mean over all
  /// tiles. Boundary replication can concentrate units no boundary choice
  /// avoids (one huge object overlapping many tiles), so the builder
  /// guarantees the factor by *coarsening*: while the built partition
  /// exceeds it, the tile count is halved and rebuilt — a single tile is
  /// trivially balanced, so the loop always terminates within the factor.
  /// <= 1 disables the check (single-shot build).
  double max_imbalance = 4.0;
};

/// A cost-balanced tiling of one dataset: the tile geometry plus the
/// MBR-overlap assignment of objects to tiles.
///
/// Balancing is by *computational units*, not object counts — the caller
/// supplies units[i] (vertex count plus APRIL interval count is the join's
/// cost model; see BuildCostBalancedPartition) and the builder places tile
/// boundaries on weighted quantiles so every tile carries a comparable
/// share of refinement + filter work, which is what levels tile-pair task
/// runtimes under skew (Tsitsigkos & Mamoulis' partitioning playbook).
///
/// Assignment replicates: entries lists object i under every tile its MBR
/// overlaps, so a tile-pair task sees every candidate pair whose reference
/// point falls in its tile intersection. The grid itself is the dedup
/// metadata — TileGrid::TileOf(reference point) names the one tile allowed
/// to report a pair (see shard_scheduler.h).
struct TilePartition {
  TileGrid grid;
  /// CSR offsets into `entries`: tile t's objects are
  /// entries[tile_begin[t] .. tile_begin[t+1]), ascending within a tile.
  std::vector<uint32_t> tile_begin;
  std::vector<uint32_t> entries;
  /// Sum of units of the objects assigned to each tile (replicated objects
  /// count in every tile they land in).
  std::vector<uint64_t> tile_units;
  /// Sum over tile_units — the replicated total, >= the input total.
  uint64_t assigned_units = 0;

  uint32_t Tiles() const { return grid.Tiles(); }
  size_t TileObjectCount(uint32_t tile) const {
    return tile_begin[tile + 1] - tile_begin[tile];
  }

  /// max(tile_units) / mean(tile_units) over all tiles (1.0 for <= 1 tile
  /// or an empty partition) — the balance figure the builder bounds by
  /// PartitionOptions::max_imbalance.
  [[nodiscard]] double MaxImbalance() const;

  /// Aborts (STJ_CHECK) on structural inconsistency: grid validity, CSR
  /// shape, per-tile unit totals matching the entries.
  void ValidateInvariants(const std::vector<uint64_t>& units) const;
};

/// Builds a cost-balanced TilePartition over \p mbrs.
///
/// Layout: weighted-quantile "slice and dice" — column boundaries at the
/// weighted x-quantiles of the objects' MBR centers, then each column's row
/// boundaries at the weighted y-quantiles of the objects whose center falls
/// in that column. Quantile splitting adapts to skew (Plummer-style
/// clusters get narrow tiles, empty space wide ones) while keeping tiles
/// rectangular and the plane exactly partitioned.
///
/// \p units must be index-aligned with \p mbrs; a zero unit is treated as
/// weight 1 so degenerate inputs still split. Deterministic in its inputs.
[[nodiscard]] TilePartition BuildCostBalancedPartition(const std::vector<Box>& mbrs,
                                         const std::vector<uint64_t>& units,
                                         const PartitionOptions& options = {});

}  // namespace stj
