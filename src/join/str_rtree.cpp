#include "src/join/str_rtree.h"

#include <algorithm>
#include <cmath>

namespace stj {

StrRTree::StrRTree(const std::vector<Box>& boxes) {
  entries_.reserve(boxes.size());
  for (uint32_t i = 0; i < boxes.size(); ++i) {
    if (!boxes[i].IsEmpty()) entries_.push_back(Entry{boxes[i], i});
  }
  size_ = entries_.size();
  if (entries_.empty()) return;

  // STR packing: sort by centre x, slice into vertical strips of
  // ceil(sqrt(#leaves)) leaves each, sort each strip by centre y, and cut
  // leaves of kFanout entries.
  const size_t num_leaves =
      (entries_.size() + kFanout - 1) / kFanout;
  const size_t strips = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const size_t strip_entries =
      ((num_leaves + strips - 1) / strips) * kFanout;

  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              return a.box.Center().x < b.box.Center().x;
            });
  for (size_t begin = 0; begin < entries_.size(); begin += strip_entries) {
    const size_t end = std::min(entries_.size(), begin + strip_entries);
    std::sort(entries_.begin() + static_cast<long>(begin),
              entries_.begin() + static_cast<long>(end),
              [](const Entry& a, const Entry& b) {
                return a.box.Center().y < b.box.Center().y;
              });
  }

  // Build the leaf level.
  std::vector<uint32_t> level;
  for (size_t begin = 0; begin < entries_.size(); begin += kFanout) {
    const size_t end = std::min(entries_.size(), begin + kFanout);
    Node leaf;
    leaf.leaf = true;
    leaf.first = static_cast<uint32_t>(begin);
    leaf.count = static_cast<uint32_t>(end - begin);
    for (size_t i = begin; i < end; ++i) leaf.bounds.Expand(entries_[i].box);
    level.push_back(static_cast<uint32_t>(nodes_.size()));
    nodes_.push_back(leaf);
  }
  height_ = 1;

  // Pack upper levels until a single root remains. Children of one parent
  // are contiguous in nodes_, which the STR leaf order already guarantees
  // spatial locality for.
  while (level.size() > 1) {
    std::vector<uint32_t> next;
    for (size_t begin = 0; begin < level.size(); begin += kFanout) {
      const size_t end = std::min(level.size(), begin + kFanout);
      Node inner;
      inner.leaf = false;
      inner.first = level[begin];
      inner.count = static_cast<uint32_t>(end - begin);
      for (size_t i = begin; i < end; ++i) {
        inner.bounds.Expand(nodes_[level[i]].bounds);
      }
      next.push_back(static_cast<uint32_t>(nodes_.size()));
      nodes_.push_back(inner);
    }
    level = std::move(next);
    ++height_;
  }
  root_ = level.front();
}

std::vector<uint32_t> StrRTree::QueryIndices(const Box& window) const {
  std::vector<uint32_t> out;
  Query(window, [&out](uint32_t index) { out.push_back(index); });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<CandidatePair> StrRTree::JoinWith(
    const std::vector<Box>& r_boxes) const {
  std::vector<CandidatePair> out;
  for (uint32_t i = 0; i < r_boxes.size(); ++i) {
    if (r_boxes[i].IsEmpty()) continue;
    Query(r_boxes[i],
          [&out, i](uint32_t j) { out.push_back(CandidatePair{i, j}); });
  }
  return out;
}

}  // namespace stj
