#pragma once

#include <cstdint>
#include <vector>

#include "src/geometry/box.h"
#include "src/join/mbr_join.h"

namespace stj {

/// A static R-tree bulk-loaded with the Sort-Tile-Recursive (STR) packing of
/// Leutenegger et al. — the standard disk-era spatial index the paper's
/// related work builds joins on. This implementation is in-memory and
/// read-only: build once over a dataset's MBRs, then run window queries or
/// bulk intersection joins.
///
/// It complements the grid-partitioned MbrJoin as the filter step: both
/// produce exactly the same candidate set (asserted in the test suite), with
/// different cost profiles — the R-tree wins when one side is reused across
/// many queries, the grid join wins for one-shot bulk joins.
class StrRTree {
 public:
  /// Number of entries per node.
  static constexpr uint32_t kFanout = 16;

  /// Bulk-loads the tree over \p boxes (empty boxes are skipped but keep
  /// their original index for reporting).
  explicit StrRTree(const std::vector<Box>& boxes);

  /// Invokes fn(index) for every stored box intersecting \p window.
  template <typename Fn>
  void Query(const Box& window, Fn&& fn) const {
    if (nodes_.empty()) return;
    QueryRecursive(root_, window, fn);
  }

  /// Returns the indices of all stored boxes intersecting \p window, sorted.
  std::vector<uint32_t> QueryIndices(const Box& window) const;

  /// Bulk intersection join: all pairs (i, j) with r_boxes[i] intersecting
  /// this tree's box j. Equivalent to MbrJoin::Join(r_boxes, boxes).
  std::vector<CandidatePair> JoinWith(const std::vector<Box>& r_boxes) const;

  size_t Size() const { return size_; }
  bool Empty() const { return size_ == 0; }

  /// Height of the tree (1 = a single leaf). Exposed for tests.
  uint32_t Height() const { return height_; }

 private:
  struct Node {
    Box bounds;
    uint32_t first = 0;  ///< First child node index, or first entry index.
    uint32_t count = 0;  ///< Number of children / entries.
    bool leaf = true;
  };

  struct Entry {
    Box box;
    uint32_t index;
  };

  template <typename Fn>
  void QueryRecursive(uint32_t node_index, const Box& window, Fn&& fn) const {
    const Node& node = nodes_[node_index];
    if (!node.bounds.Intersects(window)) return;
    if (node.leaf) {
      for (uint32_t i = 0; i < node.count; ++i) {
        const Entry& entry = entries_[node.first + i];
        if (entry.box.Intersects(window)) fn(entry.index);
      }
      return;
    }
    for (uint32_t i = 0; i < node.count; ++i) {
      QueryRecursive(node.first + i, window, fn);
    }
  }

  std::vector<Node> nodes_;
  std::vector<Entry> entries_;
  uint32_t root_ = 0;
  uint32_t height_ = 0;
  size_t size_ = 0;
};

}  // namespace stj
