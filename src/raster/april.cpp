#include "src/raster/april.h"

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "src/interval/interval_algebra.h"
#include "src/raster/hilbert.h"
#include "src/util/check.h"

namespace stj {

namespace {

/// Coverages with at most this many cells use the per-run construction; the
/// quadrant block decomposition only pays off once the interior is large
/// enough that whole quadrants collapse to single intervals (a row-run of
/// length L fragments into ~L/2 curve intervals, so per-run work is Θ(cells)
/// while the block path is O(perimeter · order)).
constexpr uint64_t kBlockDecompositionCutoff = 1024;

/// Merges two sorted canonical segments of \p src into \p dst (appending).
/// Coalescing only looks back at intervals this call appended: dst may end
/// with an unrelated earlier segment whose cell range is above this pair's —
/// comparing against it would silently swallow intervals.
void MergePair(const std::vector<CellInterval>& src, size_t lo, size_t mid,
               size_t hi, std::vector<CellInterval>* dst) {
  const size_t base = dst->size();
  // Inputs cover disjoint cell sets, so touching means exact adjacency
  // (back().end == iv.begin), never overlap; max() keeps the invariant
  // robust regardless.
  auto append = [dst, base](CellInterval iv) {
    if (dst->size() > base && dst->back().end >= iv.begin) {
      dst->back().end = std::max(dst->back().end, iv.end);
    } else {
      dst->push_back(iv);
    }
  };
  size_t i = lo;
  size_t j = mid;
  while (i < mid && j < hi) {
    if (src[i].begin <= src[j].begin) {
      append(src[i++]);
    } else {
      append(src[j++]);
    }
  }
  while (i < mid) append(src[i++]);
  while (j < hi) append(src[j++]);
}

using RowRuns = std::vector<std::pair<uint32_t, uint32_t>>;

/// Coalesces one row's partial columns (width-1 ranges) and full runs into
/// maximal column ranges. They interleave — full runs sit strictly between
/// partials, abutting them — so a single two-pointer pass suffices.
void MergeRowRanges(const std::vector<uint32_t>& partial, const RowRuns& full,
                    RowRuns* out) {
  out->clear();
  auto add = [out](uint32_t lo, uint32_t hi) {
    if (!out->empty() &&
        static_cast<uint64_t>(out->back().second) + 1 >= lo) {
      out->back().second = std::max(out->back().second, hi);
    } else {
      out->emplace_back(lo, hi);
    }
  };
  size_t pi = 0;
  size_t fi = 0;
  while (pi < partial.size() || fi < full.size()) {
    if (fi == full.size() ||
        (pi < partial.size() && partial[pi] < full[fi].first)) {
      add(partial[pi], partial[pi]);
      ++pi;
    } else {
      add(full[fi].first, full[fi].second);
      ++fi;
    }
  }
}

/// Recursive quadrant decomposition of a row-range region into sorted
/// canonical Hilbert intervals.
///
/// Any grid-aligned quadrant of size 2^m is a contiguous segment of the
/// Hilbert curve, aligned to a multiple of 4^m in curve space. The recursion
/// classifies each quadrant against the region (empty / fully covered /
/// mixed): empty quadrants are skipped, full ones emit their whole curve
/// segment as ONE interval, and mixed ones split into their four
/// subquadrants, visited in curve order — so the emitted stream is globally
/// sorted and exact-adjacency coalescing yields the canonical form directly,
/// with no merge pass. Cost is O(visited quadrants · rows-per-check), i.e.
/// output-sensitive: interiors collapse to their quadtree blocks instead of
/// fragmenting into Θ(cells) per-row curve intervals.
class BlockDecomposer {
 public:
  BlockDecomposer(uint32_t order, const RowRuns* rows, size_t num_rows,
                  uint32_t y0, std::vector<CellInterval>* out)
      : order_(order), rows_(rows), num_rows_(num_rows), y0_(y0), out_(out) {}

  void Run() {
    // Bounding box over the row ranges; empty regions never recurse.
    bool any = false;
    min_x_ = 0;
    max_x_ = 0;
    y_end_ = y0_;
    for (size_t row = 0; row < num_rows_; ++row) {
      if (rows_[row].empty()) continue;
      const uint32_t lo = rows_[row].front().first;
      const uint32_t hi = rows_[row].back().second;
      if (!any) {
        min_x_ = lo;
        max_x_ = hi;
      } else {
        min_x_ = std::min(min_x_, lo);
        max_x_ = std::max(max_x_, hi);
      }
      y_end_ = y0_ + static_cast<uint32_t>(row);
      any = true;
    }
    if (any) Visit(order_, 0, 0, 0);
  }

 private:
  enum class Cover { kEmpty, kFull, kMixed };

  /// Classifies the cell rectangle [x_lo, x_hi] × [y_lo, y_hi] against the
  /// region. Row ranges are sorted and non-adjacent, so a row either misses
  /// the column range (empty), has one range spanning all of it (full), or
  /// contains both covered and uncovered cells (mixed, early exit).
  Cover Classify(uint32_t x_lo, uint32_t x_hi, uint32_t y_lo,
                 uint32_t y_hi) const {
    if (x_hi < min_x_ || x_lo > max_x_ || y_hi < y0_ || y_lo > y_end_) {
      return Cover::kEmpty;
    }
    // Cells outside the bounding box are uncovered: a quadrant that sticks
    // out of it can at best be mixed.
    bool seen_empty =
        x_lo < min_x_ || x_hi > max_x_ || y_lo < y0_ || y_hi > y_end_;
    bool seen_full = false;
    const uint32_t row_lo = std::max(y_lo, y0_);
    const uint32_t row_hi = std::min(y_hi, y_end_);
    for (uint32_t y = row_lo; y <= row_hi; ++y) {
      const RowRuns& runs = rows_[y - y0_];
      const auto it = std::partition_point(
          runs.begin(), runs.end(),
          [x_lo](const std::pair<uint32_t, uint32_t>& run) {
            return run.second < x_lo;
          });
      if (it == runs.end() || it->first > x_hi) {
        seen_empty = true;
      } else if (it->first <= x_lo && it->second >= x_hi) {
        seen_full = true;
      } else {
        return Cover::kMixed;
      }
      if (seen_full && seen_empty) return Cover::kMixed;
    }
    return seen_full ? Cover::kFull : Cover::kEmpty;
  }

  void Emit(uint64_t begin, uint64_t end) {
    if (!out_->empty() && out_->back().end == begin) {
      out_->back().end = end;
    } else {
      out_->push_back({begin, end});
    }
  }

  /// \p dbase is the first curve position of the quadrant of size 2^m whose
  /// bottom-left cell is (x, y).
  void Visit(uint32_t m, uint32_t x, uint32_t y, uint64_t dbase) {
    const uint32_t span = (1u << m) - 1;
    switch (Classify(x, x + span, y, y + span)) {
      case Cover::kEmpty:
        return;
      case Cover::kFull:
        Emit(dbase, dbase + (uint64_t{1} << (2 * m)));
        return;
      case Cover::kMixed:
        break;  // m >= 1: a single cell is never mixed.
    }
    const uint32_t half = 1u << (m - 1);
    const uint64_t quarter = uint64_t{1} << (2 * (m - 1));
    struct Child {
      uint64_t dbase;
      uint32_t x, y;
    } children[4];
    size_t n = 0;
    for (const uint32_t dy : {0u, half}) {
      for (const uint32_t dx : {0u, half}) {
        const uint32_t cx = x + dx;
        const uint32_t cy = y + dy;
        children[n++] = {HilbertXYToD(order_, cx, cy) & ~(quarter - 1), cx,
                         cy};
      }
    }
    std::sort(children, children + 4,
              [](const Child& a, const Child& b) { return a.dbase < b.dbase; });
    for (const Child& child : children) {
      Visit(m - 1, child.x, child.y, child.dbase);
    }
  }

  const uint32_t order_;
  const RowRuns* rows_;
  const size_t num_rows_;
  const uint32_t y0_;
  std::vector<CellInterval>* out_;
  uint32_t min_x_ = 0;
  uint32_t max_x_ = 0;
  uint32_t y_end_ = 0;
};

}  // namespace

void AprilApproximation::ValidateInvariants() const {
  conservative.ValidateInvariants();
  progressive.ValidateInvariants();
  STJ_CHECK_MSG(ListInside(progressive, conservative),
                "P must be a subset of C");
}

AprilApproximation AprilBuilder::Build(const Polygon& poly) const {
  rasterizer_.Rasterize(poly, &coverage_);
  AprilApproximation april = per_cell_oracle_ ? FromCoverage(coverage_)
                                              : FromCoverageRuns(coverage_);
  STJ_IF_INVARIANTS(april.ValidateInvariants());
  return april;
}

AprilApproximation AprilBuilder::FromCoverage(
    const RasterCoverage& coverage) const {
  std::vector<CellId> full_cells;
  std::vector<CellId> all_cells;
  for (size_t row = 0; row < coverage.partial_by_row.size(); ++row) {
    const uint32_t cy = coverage.y0 + static_cast<uint32_t>(row);
    for (const uint32_t cx : coverage.partial_by_row[row]) {
      all_cells.push_back(grid_->CellIdOf(cx, cy));
    }
    for (const auto& [first, last] : coverage.full_runs_by_row[row]) {
      for (uint32_t cx = first; cx <= last; ++cx) {
        const CellId id = grid_->CellIdOf(cx, cy);
        full_cells.push_back(id);
        all_cells.push_back(id);
      }
    }
  }
  AprilApproximation april;
  april.progressive = IntervalList::FromCells(std::move(full_cells));
  april.conservative = IntervalList::FromCells(std::move(all_cells));
  return april;
}

AprilApproximation AprilBuilder::FromCoverageRuns(
    const RasterCoverage& coverage) const {
  return coverage.PartialCount() + coverage.FullCount() >
                 kBlockDecompositionCutoff
             ? FromCoverageBlocks(coverage)
             : FromCoverageRowRuns(coverage);
}

AprilApproximation AprilBuilder::FromCoverageRowRuns(
    const RasterCoverage& coverage) const {
  const uint32_t order = grid_->Order();
  AprilApproximation april;

  // ---- P list: each full run decomposes into one sorted interval segment.
  stream_.clear();
  bounds_.clear();
  bounds_.push_back(0);
  for (size_t row = 0; row < coverage.full_runs_by_row.size(); ++row) {
    const uint32_t cy = coverage.y0 + static_cast<uint32_t>(row);
    for (const auto& [first, last] : coverage.full_runs_by_row[row]) {
      AppendHilbertRunIntervals(order, first, last, cy, &stream_);
      // A run whose intervals all coalesced into the previous segment's tail
      // adds no boundary (the tail only grew; the segment stays sorted).
      if (stream_.size() > bounds_.back()) bounds_.push_back(stream_.size());
    }
  }
  april.progressive = MergeStreams();

  // ---- C list: per row, partial columns and full runs coalesce into maximal
  // column ranges, and each maximal range decomposes as one segment.
  stream_.clear();
  bounds_.clear();
  bounds_.push_back(0);
  for (size_t row = 0; row < coverage.partial_by_row.size(); ++row) {
    const uint32_t cy = coverage.y0 + static_cast<uint32_t>(row);
    MergeRowRanges(coverage.partial_by_row[row], coverage.full_runs_by_row[row],
                   &ranges_);
    for (const auto& [lo, hi] : ranges_) {
      AppendHilbertRunIntervals(order, lo, hi, cy, &stream_);
      if (stream_.size() > bounds_.back()) bounds_.push_back(stream_.size());
    }
  }
  april.conservative = MergeStreams();
  return april;
}

AprilApproximation AprilBuilder::FromCoverageBlocks(
    const RasterCoverage& coverage) const {
  AprilApproximation april;
  const size_t num_rows = coverage.full_runs_by_row.size();
  april.progressive =
      DecomposeBlocks(coverage.full_runs_by_row.data(), num_rows, coverage.y0);

  // Merged C rows (partial ∪ full) feed the same decomposition. The scratch
  // only ever grows, keeping row buffers warm across Build() calls.
  if (c_rows_.size() < num_rows) c_rows_.resize(num_rows);
  for (size_t row = 0; row < num_rows; ++row) {
    MergeRowRanges(coverage.partial_by_row[row], coverage.full_runs_by_row[row],
                   &c_rows_[row]);
  }
  april.conservative = DecomposeBlocks(c_rows_.data(), num_rows, coverage.y0);
  return april;
}

IntervalList AprilBuilder::DecomposeBlocks(const RowRuns* rows,
                                           size_t num_rows, uint32_t y0) const {
  stream_.clear();
  BlockDecomposer(grid_->Order(), rows, num_rows, y0, &stream_).Run();
  return IntervalList::FromSorted(stream_);
}

IntervalList AprilBuilder::MergeStreams() const {
  size_t num_segs = bounds_.size() - 1;
  if (num_segs == 0) return IntervalList();
  std::vector<CellInterval>* src = &stream_;
  std::vector<CellInterval>* dst = &merge_scratch_;
  std::vector<size_t>* sb = &bounds_;
  std::vector<size_t>* db = &bounds_scratch_;
  while (num_segs > 1) {
    dst->clear();
    db->clear();
    db->push_back(0);
    for (size_t s = 0; s + 1 < num_segs; s += 2) {
      MergePair(*src, (*sb)[s], (*sb)[s + 1], (*sb)[s + 2], dst);
      db->push_back(dst->size());
    }
    if ((num_segs & 1) != 0) {
      // Odd segment out: copy through verbatim (it is already canonical, and
      // coalescing against the preceding unrelated segment would be wrong).
      dst->insert(dst->end(),
                  src->begin() + static_cast<std::ptrdiff_t>((*sb)[num_segs - 1]),
                  src->begin() + static_cast<std::ptrdiff_t>((*sb)[num_segs]));
      db->push_back(dst->size());
    }
    std::swap(src, dst);
    std::swap(sb, db);
    num_segs = sb->size() - 1;
  }
  std::vector<CellInterval> result(
      src->begin(), src->begin() + static_cast<std::ptrdiff_t>((*sb)[1]));
  return IntervalList::FromSorted(std::move(result));
}

}  // namespace stj
