#include "src/raster/april.h"

#include <vector>

namespace stj {

AprilApproximation AprilBuilder::Build(const Polygon& poly) const {
  return FromCoverage(rasterizer_.Rasterize(poly));
}

AprilApproximation AprilBuilder::FromCoverage(
    const RasterCoverage& coverage) const {
  std::vector<CellId> full_cells;
  std::vector<CellId> all_cells;
  for (size_t row = 0; row < coverage.partial_by_row.size(); ++row) {
    const uint32_t cy = coverage.y0 + static_cast<uint32_t>(row);
    for (const uint32_t cx : coverage.partial_by_row[row]) {
      all_cells.push_back(grid_->CellIdOf(cx, cy));
    }
    for (const auto& [first, last] : coverage.full_runs_by_row[row]) {
      for (uint32_t cx = first; cx <= last; ++cx) {
        const CellId id = grid_->CellIdOf(cx, cy);
        full_cells.push_back(id);
        all_cells.push_back(id);
      }
    }
  }
  AprilApproximation april;
  april.progressive = IntervalList::FromCells(std::move(full_cells));
  april.conservative = IntervalList::FromCells(std::move(all_cells));
  return april;
}

}  // namespace stj
