#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/geometry/polygon.h"
#include "src/interval/interval_list.h"
#include "src/raster/grid.h"
#include "src/raster/rasterizer.h"

namespace stj {

/// The APRIL approximation of one object: two sorted interval lists over
/// Hilbert cell ids (Georgiadis et al., VLDB J. 34(1), 2025).
///
/// The Conservative list C covers every cell the object touches (a superset
/// of the object); the Progressive list P covers only cells entirely inside
/// the object (a subset). P ⊆ C always. Everything the intermediate filters
/// of this paper conclude follows from these two set inequalities:
///   object_r ⊆ cells(C_r),  cells(P_r) ⊆ object_r  (same for s).
struct AprilApproximation {
  IntervalList conservative;  ///< C list.
  IntervalList progressive;   ///< P list.

  /// False when corruption-safe I/O (april_io.h) flagged this record as
  /// unusable (checksum mismatch, undecodable payload). The pipeline must
  /// then treat the pair as undetermined and fall back to refinement rather
  /// than filter on garbage intervals. Note an *empty* conservative list with
  /// usable=true is legitimate (the object covers no cell at this grid
  /// resolution is impossible, but slivers can have empty P lists).
  bool usable = true;

  /// In-memory footprint of both lists in bytes (Table 2 reporting).
  size_t ByteSize() const {
    return conservative.ByteSize() + progressive.ByteSize();
  }

  /// Aborts (STJ_CHECK) unless both lists are canonical and P ⊆ C — the two
  /// inequalities every filter conclusion rests on. Always compiled; invoked
  /// automatically from AprilBuilder::Build under STJ_IF_INVARIANTS.
  void ValidateInvariants() const;
};

/// Non-owning view of one object's APRIL approximation. This is the type the
/// intermediate filters consume: it is satisfied equally by a heap-backed
/// AprilApproximation (implicit conversion below) and by one record of the
/// arena-backed AprilStore (april_store.h), so the topology layer is
/// storage-agnostic. A view never carries the `usable` flag — callers decide
/// usability *before* constructing a view (Pipeline::AprilFor).
struct AprilView {
  IntervalView conservative;  ///< C list.
  IntervalView progressive;   ///< P list.

  AprilView() = default;
  AprilView(IntervalView c, IntervalView p) : conservative(c), progressive(p) {}
  AprilView(const AprilApproximation& a)  // NOLINT: implicit by design
      : conservative(a.conservative), progressive(a.progressive) {}
};

/// Builds APRIL approximations of polygons on a fixed scenario grid.
///
/// Two construction paths produce byte-identical results:
///  - the run-based path (default) never materialises per-cell ids. Small
///    coverages convert each row-run of cells [cx_lo, cx_hi] × row directly
///    into sorted Hilbert intervals (AppendHilbertRunIntervals) and merge
///    the per-run streams pairwise; large coverages switch to a 2-D quadrant
///    block decomposition that emits one interval per maximal fully-covered
///    quadrant, visiting quadrants in curve order so the stream comes out
///    sorted with no merge at all. The block path is what makes the cost
///    output-sensitive — a blob interior of millions of cells collapses to
///    the O(perimeter · order) quadrants of its quadtree, where the per-run
///    path would still emit Θ(cells) raw intervals (a row-run of length L
///    fragments into ~L/2 curve intervals before vertical coalescing);
///  - the per-cell path (per_cell_oracle=true) enumerates every cell id and
///    sorts, and is kept as the differential-test oracle.
/// All paths emit the canonical interval form (sorted, disjoint,
/// non-adjacent), and canonical forms of equal cell sets are equal — which
/// is why they agree byte-for-byte.
///
/// Build() is const but reuses per-instance scratch buffers, so one builder
/// is NOT safe to use from multiple threads; the parallel preprocessing
/// driver (BuildAprilApproximations) gives each worker its own builder.
class AprilBuilder {
 public:
  explicit AprilBuilder(const RasterGrid* grid, bool per_cell_oracle = false)
      : grid_(grid), per_cell_oracle_(per_cell_oracle), rasterizer_(grid) {}

  /// Rasterises \p poly and assembles its P and C interval lists.
  AprilApproximation Build(const Polygon& poly) const;

  /// Per-cell oracle: materialises every covered cell id and sorts (exposed
  /// for differential tests; selected by per_cell_oracle=true in Build).
  AprilApproximation FromCoverage(const RasterCoverage& coverage) const;

  /// Run-based path: decomposes row-runs (small coverages) or quadrant
  /// blocks (large coverages) into Hilbert intervals without ever
  /// materialising per-cell ids (exposed for differential tests).
  AprilApproximation FromCoverageRuns(const RasterCoverage& coverage) const;

 private:
  /// One row's covered column ranges [first, last], sorted, non-adjacent.
  using RowRuns = std::vector<std::pair<uint32_t, uint32_t>>;

  /// Merges the sorted per-run segments of stream_ (delimited by bounds_)
  /// into one canonical interval vector. Bottom-up pairwise passes with
  /// ping-pong buffers: O(M log S) for M intervals in S segments.
  IntervalList MergeStreams() const;

  /// Block path for large coverages: recursive quadrant decomposition of the
  /// region described by num_rows row-range vectors starting at grid row y0.
  IntervalList DecomposeBlocks(const RowRuns* rows, size_t num_rows,
                               uint32_t y0) const;

  /// Per-run + pairwise-merge construction (small coverages).
  AprilApproximation FromCoverageRowRuns(const RasterCoverage& coverage) const;

  /// Quadrant-block construction (large coverages).
  AprilApproximation FromCoverageBlocks(const RasterCoverage& coverage) const;

  const RasterGrid* grid_;
  bool per_cell_oracle_;

  // Per-instance scratch, reused across Build() calls (hence mutable on a
  // const method). See class comment for the threading contract.
  mutable Rasterizer rasterizer_;
  mutable RasterCoverage coverage_;
  mutable std::vector<CellInterval> stream_;         ///< Concatenated segments.
  mutable std::vector<CellInterval> merge_scratch_;  ///< Ping-pong buffer.
  mutable std::vector<size_t> bounds_;               ///< Segment boundaries.
  mutable std::vector<size_t> bounds_scratch_;       ///< Ping-pong boundaries.
  mutable RowRuns ranges_;                           ///< C row scan.
  mutable std::vector<RowRuns> c_rows_;  ///< Merged C rows (block path).
};

}  // namespace stj
