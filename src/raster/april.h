#pragma once

#include <cstddef>

#include "src/geometry/polygon.h"
#include "src/interval/interval_list.h"
#include "src/raster/grid.h"
#include "src/raster/rasterizer.h"

namespace stj {

/// The APRIL approximation of one object: two sorted interval lists over
/// Hilbert cell ids (Georgiadis et al., VLDB J. 34(1), 2025).
///
/// The Conservative list C covers every cell the object touches (a superset
/// of the object); the Progressive list P covers only cells entirely inside
/// the object (a subset). P ⊆ C always. Everything the intermediate filters
/// of this paper conclude follows from these two set inequalities:
///   object_r ⊆ cells(C_r),  cells(P_r) ⊆ object_r  (same for s).
struct AprilApproximation {
  IntervalList conservative;  ///< C list.
  IntervalList progressive;   ///< P list.

  /// False when corruption-safe I/O (april_io.h) flagged this record as
  /// unusable (checksum mismatch, undecodable payload). The pipeline must
  /// then treat the pair as undetermined and fall back to refinement rather
  /// than filter on garbage intervals. Note an *empty* conservative list with
  /// usable=true is legitimate (the object covers no cell at this grid
  /// resolution is impossible, but slivers can have empty P lists).
  bool usable = true;

  /// In-memory footprint of both lists in bytes (Table 2 reporting).
  size_t ByteSize() const {
    return conservative.ByteSize() + progressive.ByteSize();
  }
};

/// Builds APRIL approximations of polygons on a fixed scenario grid.
class AprilBuilder {
 public:
  explicit AprilBuilder(const RasterGrid* grid)
      : grid_(grid), rasterizer_(grid) {}

  /// Rasterises \p poly and assembles its P and C interval lists.
  AprilApproximation Build(const Polygon& poly) const;

  /// Assembles the lists from an existing raster coverage (exposed for tests
  /// and for reuse when the coverage is needed elsewhere).
  AprilApproximation FromCoverage(const RasterCoverage& coverage) const;

 private:
  const RasterGrid* grid_;
  Rasterizer rasterizer_;
};

}  // namespace stj
