#include "src/raster/april_compressed.h"

#include <cstring>
#include <utility>

#include "src/interval/interval_algebra.h"
#include "src/util/check.h"

namespace stj {

namespace {

void AppendList(const CompressedIntervalList& list,
                std::vector<IntervalBlockHeader>* headers,
                std::vector<uint8_t>* bytes) {
  headers->insert(headers->end(), list.Headers().begin(),
                  list.Headers().end());
  bytes->insert(bytes->end(), list.Bytes().begin(), list.Bytes().end());
}

}  // namespace

void CompressedAprilStore::RefreshSpans() {
  span_.headers = headers_.data();
  span_.bytes = bytes_.data();
  span_.hdr_begin = hdr_begin_.data();
  span_.p_hdr_begin = p_hdr_begin_.data();
  span_.byte_begin = byte_begin_.data();
  span_.p_byte_begin = p_byte_begin_.data();
  span_.c_intervals = c_intervals_.data();
  span_.p_intervals = p_intervals_.data();
  span_.usable = usable_.data();
  span_.count = p_hdr_begin_.size();
}

CompressedAprilStore::CompressedAprilStore(const CompressedAprilStore& other)
    : headers_(other.headers_),
      bytes_(other.bytes_),
      hdr_begin_(other.hdr_begin_),
      p_hdr_begin_(other.p_hdr_begin_),
      byte_begin_(other.byte_begin_),
      p_byte_begin_(other.p_byte_begin_),
      c_intervals_(other.c_intervals_),
      p_intervals_(other.p_intervals_),
      usable_(other.usable_),
      external_(other.external_) {
  // A copy of a mapped store aliases the same external memory; a copy of an
  // owning store points at its own fresh vectors.
  if (external_) {
    span_ = other.span_;
  } else {
    RefreshSpans();
  }
}

CompressedAprilStore& CompressedAprilStore::operator=(
    const CompressedAprilStore& other) {
  if (this == &other) return *this;
  headers_ = other.headers_;
  bytes_ = other.bytes_;
  hdr_begin_ = other.hdr_begin_;
  p_hdr_begin_ = other.p_hdr_begin_;
  byte_begin_ = other.byte_begin_;
  p_byte_begin_ = other.p_byte_begin_;
  c_intervals_ = other.c_intervals_;
  p_intervals_ = other.p_intervals_;
  usable_ = other.usable_;
  external_ = other.external_;
  if (external_) {
    span_ = other.span_;
  } else {
    RefreshSpans();
  }
  return *this;
}

CompressedAprilStore::CompressedAprilStore(
    CompressedAprilStore&& other) noexcept
    : headers_(std::move(other.headers_)),
      bytes_(std::move(other.bytes_)),
      hdr_begin_(std::move(other.hdr_begin_)),
      p_hdr_begin_(std::move(other.p_hdr_begin_)),
      byte_begin_(std::move(other.byte_begin_)),
      p_byte_begin_(std::move(other.p_byte_begin_)),
      c_intervals_(std::move(other.c_intervals_)),
      p_intervals_(std::move(other.p_intervals_)),
      usable_(std::move(other.usable_)),
      external_(other.external_) {
  if (external_) {
    span_ = other.span_;
  } else {
    RefreshSpans();
  }
  // Leave the source in a valid empty owning state.
  other.external_ = false;
  other.Clear();
}

CompressedAprilStore& CompressedAprilStore::operator=(
    CompressedAprilStore&& other) noexcept {
  if (this == &other) return *this;
  headers_ = std::move(other.headers_);
  bytes_ = std::move(other.bytes_);
  hdr_begin_ = std::move(other.hdr_begin_);
  p_hdr_begin_ = std::move(other.p_hdr_begin_);
  byte_begin_ = std::move(other.byte_begin_);
  p_byte_begin_ = std::move(other.p_byte_begin_);
  c_intervals_ = std::move(other.c_intervals_);
  p_intervals_ = std::move(other.p_intervals_);
  usable_ = std::move(other.usable_);
  external_ = other.external_;
  if (external_) {
    span_ = other.span_;
  } else {
    RefreshSpans();
  }
  other.external_ = false;
  other.Clear();
  return *this;
}

CompressedAprilStore CompressedAprilStore::FromSpans(
    const CompressedStoreSpans& spans) {
  STJ_CHECK(spans.hdr_begin != nullptr && spans.byte_begin != nullptr);
  STJ_CHECK(spans.hdr_begin[0] == 0 && spans.byte_begin[0] == 0);
  CompressedAprilStore out;
  out.external_ = true;
  out.span_ = spans;
  return out;
}

void CompressedAprilStore::AppendRecord(
    const CompressedIntervalList& conservative,
    const CompressedIntervalList& progressive, bool usable) {
  STJ_CHECK_MSG(!external_, "cannot mutate a mapped CompressedAprilStore");
  AppendList(conservative, &headers_, &bytes_);
  p_hdr_begin_.push_back(headers_.size());
  p_byte_begin_.push_back(bytes_.size());
  AppendList(progressive, &headers_, &bytes_);
  hdr_begin_.push_back(headers_.size());
  byte_begin_.push_back(bytes_.size());
  c_intervals_.push_back(conservative.Intervals());
  p_intervals_.push_back(progressive.Intervals());
  usable_.push_back(usable ? 1 : 0);
  RefreshSpans();
}

void CompressedAprilStore::AppendEncoded(IntervalView conservative,
                                         IntervalView progressive,
                                         bool usable) {
  AppendRecord(CompressedIntervalList::Encode(conservative),
               CompressedIntervalList::Encode(progressive), usable);
}

void CompressedAprilStore::AppendRecordFrom(const CompressedAprilStore& from,
                                            size_t i) {
  STJ_CHECK_MSG(!external_, "cannot mutate a mapped CompressedAprilStore");
  STJ_CHECK(i < from.Count());
  const CompressedStoreSpans& fs = from.span_;
  const auto CopySpan = [this](const CompressedStoreSpans& src, uint64_t h_lo,
                               uint64_t h_hi, uint64_t b_lo, uint64_t b_hi) {
    headers_.insert(headers_.end(), src.headers + h_lo, src.headers + h_hi);
    bytes_.insert(bytes_.end(), src.bytes + b_lo, src.bytes + b_hi);
  };
  CopySpan(fs, fs.hdr_begin[i], fs.p_hdr_begin[i], fs.byte_begin[i],
           fs.p_byte_begin[i]);
  p_hdr_begin_.push_back(headers_.size());
  p_byte_begin_.push_back(bytes_.size());
  CopySpan(fs, fs.p_hdr_begin[i], fs.hdr_begin[i + 1], fs.p_byte_begin[i],
           fs.byte_begin[i + 1]);
  hdr_begin_.push_back(headers_.size());
  byte_begin_.push_back(bytes_.size());
  c_intervals_.push_back(fs.c_intervals[i]);
  p_intervals_.push_back(fs.p_intervals[i]);
  usable_.push_back(fs.usable[i]);
  RefreshSpans();
}

void CompressedAprilStore::Reserve(size_t records, size_t blocks,
                                   size_t payload_bytes) {
  STJ_CHECK_MSG(!external_, "cannot mutate a mapped CompressedAprilStore");
  headers_.reserve(blocks);
  bytes_.reserve(payload_bytes);
  hdr_begin_.reserve(records + 1);
  p_hdr_begin_.reserve(records);
  byte_begin_.reserve(records + 1);
  p_byte_begin_.reserve(records);
  c_intervals_.reserve(records);
  p_intervals_.reserve(records);
  usable_.reserve(records);
  RefreshSpans();
}

void CompressedAprilStore::Clear() {
  headers_.clear();
  bytes_.clear();
  hdr_begin_.assign(1, 0);
  p_hdr_begin_.clear();
  byte_begin_.assign(1, 0);
  p_byte_begin_.clear();
  c_intervals_.clear();
  p_intervals_.clear();
  usable_.clear();
  external_ = false;
  RefreshSpans();
}

CompressedAprilStore CompressedAprilStore::FromStore(const AprilStore& store) {
  CompressedAprilStore out;
  out.Reserve(store.Count(), /*blocks=*/0, /*payload_bytes=*/0);
  for (size_t i = 0; i < store.Count(); ++i) {
    if (!store.Usable(i)) {
      out.AppendCorruptPlaceholder();
    } else {
      out.AppendEncoded(store.Conservative(i), store.Progressive(i));
    }
  }
  return out;
}

bool CompressedAprilStore::DecodeRecord(
    size_t i, std::vector<CellInterval>* conservative,
    std::vector<CellInterval>* progressive) const {
  return DecodeCompressed(Conservative(i), conservative) &&
         DecodeCompressed(Progressive(i), progressive);
}

std::string CompressedAprilStore::DeepValidateRecord(size_t i) const {
  const CompressedIntervalView c = Conservative(i);
  const CompressedIntervalView p = Progressive(i);
  if (std::string err = ValidateCompressed(c); !err.empty()) {
    return "conservative: " + err;
  }
  if (std::string err = ValidateCompressed(p); !err.empty()) {
    return "progressive: " + err;
  }
  if (!ListInside(p, c)) {
    return "progressive list not contained in conservative list";
  }
  // Round-trip audit: the encoder is deterministic, so re-encoding the
  // decoded record must reproduce the stored headers and payload bytes
  // exactly. This catches corruption the structural checks cannot, e.g.
  // non-minimal varints that decode to the right values.
  std::vector<CellInterval> flat_c;
  std::vector<CellInterval> flat_p;
  if (!DecodeRecord(i, &flat_c, &flat_p)) return "undecodable record";
  const CompressedIntervalList rc = CompressedIntervalList::Encode(
      IntervalView(flat_c.data(), flat_c.size()));
  const CompressedIntervalList rp = CompressedIntervalList::Encode(
      IntervalView(flat_p.data(), flat_p.size()));
  const auto RoundTripMatches = [](const CompressedIntervalView& stored,
                                   const CompressedIntervalList& redo) {
    if (stored.Blocks() != redo.Headers().size()) return false;
    for (size_t b = 0; b < stored.Blocks(); ++b) {
      if (!(stored.Header(b) == redo.Headers()[b])) return false;
    }
    if (stored.ByteSize() != redo.Bytes().size()) return false;
    return stored.ByteSize() == 0 ||
           std::memcmp(stored.Bytes(), redo.Bytes().data(),
                       stored.ByteSize()) == 0;
  };
  if (!RoundTripMatches(c, rc)) {
    return "conservative: re-encode round trip differs";
  }
  if (!RoundTripMatches(p, rp)) {
    return "progressive: re-encode round trip differs";
  }
  return "";
}

void CompressedAprilStore::ValidateInvariants() const {
  const uint64_t n = span_.count;
  if (!external_) {
    // Owning mode only: the spans must be aimed at the vectors and the CSR
    // tails must close over the arena sizes. (A mapped store has no backing
    // vectors; its array lengths are implied by the CSR tails themselves.)
    STJ_CHECK(span_.headers == headers_.data());
    STJ_CHECK(span_.bytes == bytes_.data());
    STJ_CHECK(hdr_begin_.size() == n + 1);
    STJ_CHECK(p_hdr_begin_.size() == n);
    STJ_CHECK(byte_begin_.size() == n + 1);
    STJ_CHECK(p_byte_begin_.size() == n);
    STJ_CHECK(c_intervals_.size() == n);
    STJ_CHECK(p_intervals_.size() == n);
    STJ_CHECK(usable_.size() == n);
    STJ_CHECK(hdr_begin_.back() == headers_.size());
    STJ_CHECK(byte_begin_.back() == bytes_.size());
  }
  STJ_CHECK(span_.hdr_begin[0] == 0);
  STJ_CHECK(span_.byte_begin[0] == 0);
  for (uint64_t i = 0; i < n; ++i) {
    STJ_CHECK(span_.hdr_begin[i] <= span_.p_hdr_begin[i]);
    STJ_CHECK(span_.p_hdr_begin[i] <= span_.hdr_begin[i + 1]);
    STJ_CHECK(span_.byte_begin[i] <= span_.p_byte_begin[i]);
    STJ_CHECK(span_.p_byte_begin[i] <= span_.byte_begin[i + 1]);
    if (!Usable(i)) {
      STJ_CHECK_MSG(span_.hdr_begin[i] == span_.hdr_begin[i + 1] &&
                        span_.byte_begin[i] == span_.byte_begin[i + 1] &&
                        span_.c_intervals[i] == 0 && span_.p_intervals[i] == 0,
                    "corrupt placeholder record must be empty");
      continue;
    }
    const std::string err = DeepValidateRecord(i);
    STJ_CHECK_MSG(err.empty(), "compressed APRIL record invalid");
  }
}

size_t CompressedAprilStore::ByteSize() const {
  const size_t n = static_cast<size_t>(span_.count);
  return PayloadByteSize() + (6 * n + 2) * sizeof(uint64_t) +
         n * sizeof(uint8_t);
}

bool operator==(const CompressedAprilStore& a, const CompressedAprilStore& b) {
  if (a.span_.count != b.span_.count) return false;
  const uint64_t n = a.span_.count;
  const auto SpansEqual = [](const CompressedIntervalView& x,
                             const CompressedIntervalView& y) {
    if (x.Blocks() != y.Blocks() || x.ByteSize() != y.ByteSize() ||
        x.Intervals() != y.Intervals()) {
      return false;
    }
    for (size_t blk = 0; blk < x.Blocks(); ++blk) {
      if (!(x.Header(blk) == y.Header(blk))) return false;
    }
    return x.ByteSize() == 0 ||
           std::memcmp(x.Bytes(), y.Bytes(), x.ByteSize()) == 0;
  };
  for (uint64_t i = 0; i < n; ++i) {
    if (a.span_.usable[i] != b.span_.usable[i]) return false;
    if (!SpansEqual(a.Conservative(i), b.Conservative(i))) return false;
    if (!SpansEqual(a.Progressive(i), b.Progressive(i))) return false;
  }
  return true;
}

}  // namespace stj
