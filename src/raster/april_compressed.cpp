#include "src/raster/april_compressed.h"

#include <cstring>

#include "src/interval/interval_algebra.h"
#include "src/util/check.h"

namespace stj {

namespace {

void AppendList(const CompressedIntervalList& list,
                std::vector<IntervalBlockHeader>* headers,
                std::vector<uint8_t>* bytes) {
  headers->insert(headers->end(), list.Headers().begin(),
                  list.Headers().end());
  bytes->insert(bytes->end(), list.Bytes().begin(), list.Bytes().end());
}

}  // namespace

void CompressedAprilStore::AppendRecord(
    const CompressedIntervalList& conservative,
    const CompressedIntervalList& progressive, bool usable) {
  AppendList(conservative, &headers_, &bytes_);
  p_hdr_begin_.push_back(headers_.size());
  p_byte_begin_.push_back(bytes_.size());
  AppendList(progressive, &headers_, &bytes_);
  hdr_begin_.push_back(headers_.size());
  byte_begin_.push_back(bytes_.size());
  c_intervals_.push_back(conservative.Intervals());
  p_intervals_.push_back(progressive.Intervals());
  usable_.push_back(usable ? 1 : 0);
}

void CompressedAprilStore::AppendEncoded(IntervalView conservative,
                                         IntervalView progressive,
                                         bool usable) {
  AppendRecord(CompressedIntervalList::Encode(conservative),
               CompressedIntervalList::Encode(progressive), usable);
}

void CompressedAprilStore::Reserve(size_t records, size_t blocks,
                                   size_t payload_bytes) {
  headers_.reserve(blocks);
  bytes_.reserve(payload_bytes);
  hdr_begin_.reserve(records + 1);
  p_hdr_begin_.reserve(records);
  byte_begin_.reserve(records + 1);
  p_byte_begin_.reserve(records);
  c_intervals_.reserve(records);
  p_intervals_.reserve(records);
  usable_.reserve(records);
}

void CompressedAprilStore::Clear() {
  headers_.clear();
  bytes_.clear();
  hdr_begin_.assign(1, 0);
  p_hdr_begin_.clear();
  byte_begin_.assign(1, 0);
  p_byte_begin_.clear();
  c_intervals_.clear();
  p_intervals_.clear();
  usable_.clear();
}

CompressedAprilStore CompressedAprilStore::FromStore(const AprilStore& store) {
  CompressedAprilStore out;
  out.Reserve(store.Count(), /*blocks=*/0, /*payload_bytes=*/0);
  for (size_t i = 0; i < store.Count(); ++i) {
    if (!store.Usable(i)) {
      out.AppendCorruptPlaceholder();
    } else {
      out.AppendEncoded(store.Conservative(i), store.Progressive(i));
    }
  }
  return out;
}

bool CompressedAprilStore::DecodeRecord(
    size_t i, std::vector<CellInterval>* conservative,
    std::vector<CellInterval>* progressive) const {
  return DecodeCompressed(Conservative(i), conservative) &&
         DecodeCompressed(Progressive(i), progressive);
}

std::string CompressedAprilStore::DeepValidateRecord(size_t i) const {
  const CompressedIntervalView c = Conservative(i);
  const CompressedIntervalView p = Progressive(i);
  if (std::string err = ValidateCompressed(c); !err.empty()) {
    return "conservative: " + err;
  }
  if (std::string err = ValidateCompressed(p); !err.empty()) {
    return "progressive: " + err;
  }
  if (!ListInside(p, c)) {
    return "progressive list not contained in conservative list";
  }
  // Round-trip audit: the encoder is deterministic, so re-encoding the
  // decoded record must reproduce the stored headers and payload bytes
  // exactly. This catches corruption the structural checks cannot, e.g.
  // non-minimal varints that decode to the right values.
  std::vector<CellInterval> flat_c;
  std::vector<CellInterval> flat_p;
  if (!DecodeRecord(i, &flat_c, &flat_p)) return "undecodable record";
  const CompressedIntervalList rc = CompressedIntervalList::Encode(
      IntervalView(flat_c.data(), flat_c.size()));
  const CompressedIntervalList rp = CompressedIntervalList::Encode(
      IntervalView(flat_p.data(), flat_p.size()));
  const auto RoundTripMatches = [](const CompressedIntervalView& stored,
                                   const CompressedIntervalList& redo) {
    if (stored.Blocks() != redo.Headers().size()) return false;
    for (size_t b = 0; b < stored.Blocks(); ++b) {
      if (!(stored.Header(b) == redo.Headers()[b])) return false;
    }
    if (stored.ByteSize() != redo.Bytes().size()) return false;
    return stored.ByteSize() == 0 ||
           std::memcmp(stored.Bytes(), redo.Bytes().data(),
                       stored.ByteSize()) == 0;
  };
  if (!RoundTripMatches(c, rc)) {
    return "conservative: re-encode round trip differs";
  }
  if (!RoundTripMatches(p, rp)) {
    return "progressive: re-encode round trip differs";
  }
  return "";
}

void CompressedAprilStore::ValidateInvariants() const {
  const size_t n = Count();
  STJ_CHECK(hdr_begin_.size() == n + 1);
  STJ_CHECK(p_hdr_begin_.size() == n);
  STJ_CHECK(byte_begin_.size() == n + 1);
  STJ_CHECK(p_byte_begin_.size() == n);
  STJ_CHECK(c_intervals_.size() == n);
  STJ_CHECK(p_intervals_.size() == n);
  STJ_CHECK(usable_.size() == n);
  STJ_CHECK(hdr_begin_.front() == 0);
  STJ_CHECK(hdr_begin_.back() == headers_.size());
  STJ_CHECK(byte_begin_.front() == 0);
  STJ_CHECK(byte_begin_.back() == bytes_.size());
  for (size_t i = 0; i < n; ++i) {
    STJ_CHECK(hdr_begin_[i] <= p_hdr_begin_[i]);
    STJ_CHECK(p_hdr_begin_[i] <= hdr_begin_[i + 1]);
    STJ_CHECK(byte_begin_[i] <= p_byte_begin_[i]);
    STJ_CHECK(p_byte_begin_[i] <= byte_begin_[i + 1]);
    if (!Usable(i)) {
      STJ_CHECK_MSG(hdr_begin_[i] == hdr_begin_[i + 1] &&
                        byte_begin_[i] == byte_begin_[i + 1] &&
                        c_intervals_[i] == 0 && p_intervals_[i] == 0,
                    "corrupt placeholder record must be empty");
      continue;
    }
    const std::string err = DeepValidateRecord(i);
    STJ_CHECK_MSG(err.empty(), "compressed APRIL record invalid");
  }
}

size_t CompressedAprilStore::ByteSize() const {
  return PayloadByteSize() +
         (hdr_begin_.size() + p_hdr_begin_.size() + byte_begin_.size() +
          p_byte_begin_.size() + c_intervals_.size() + p_intervals_.size()) *
             sizeof(uint64_t) +
         usable_.size() * sizeof(uint8_t);
}

bool operator==(const CompressedAprilStore& a, const CompressedAprilStore& b) {
  return a.headers_ == b.headers_ && a.bytes_ == b.bytes_ &&
         a.hdr_begin_ == b.hdr_begin_ && a.p_hdr_begin_ == b.p_hdr_begin_ &&
         a.byte_begin_ == b.byte_begin_ &&
         a.p_byte_begin_ == b.p_byte_begin_ &&
         a.c_intervals_ == b.c_intervals_ &&
         a.p_intervals_ == b.p_intervals_ && a.usable_ == b.usable_;
}

}  // namespace stj
