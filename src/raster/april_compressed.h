#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/interval/interval_codec.h"
#include "src/interval/interval_list.h"
#include "src/raster/april_store.h"

namespace stj {

/// Non-owning view of one record's compressed APRIL approximation — the
/// codec counterpart of AprilView, consumed by the compressed overloads of
/// the intermediate filters. Usability is decided before construction, as
/// with AprilView.
struct CompressedAprilView {
  CompressedIntervalView conservative;  ///< C list (blocked codec).
  CompressedIntervalView progressive;   ///< P list (blocked codec).

  CompressedAprilView() = default;
  CompressedAprilView(CompressedIntervalView c, CompressedIntervalView p)
      : conservative(c), progressive(p) {}
};

/// Arena-backed storage for a dataset's APRIL approximations in the blocked
/// codec (interval_codec.h) — the APRIL v3 in-memory form.
///
/// Mirrors AprilStore's CSR design with two arenas instead of one: all block
/// skip-headers live in one flat array and all payload bytes in another;
/// per-record offset tables bracket each record's Conservative and
/// Progressive spans in both. Record i occupies:
///
///   C_i headers = headers[hdr_begin[i] .. p_hdr_begin[i])
///   P_i headers = headers[p_hdr_begin[i] .. hdr_begin[i+1])
///
/// and the same shape over the byte arena. Block byte offsets are relative
/// to their list's byte span, so views hand the codec self-contained spans.
///
/// Corruption isolation matches AprilStore: records can be appended as
/// usable=false placeholders and Usable(i) gates every view.
class CompressedAprilStore {
 public:
  CompressedAprilStore() = default;

  size_t Count() const { return p_hdr_begin_.size(); }
  bool Empty() const { return p_hdr_begin_.empty(); }

  /// False when the record is a corruption placeholder; its views are then
  /// empty and must not feed the filters.
  bool Usable(size_t i) const { return usable_[i] != 0; }

  CompressedIntervalView Conservative(size_t i) const {
    return CompressedIntervalView(
        headers_.data() + hdr_begin_[i],
        static_cast<size_t>(p_hdr_begin_[i] - hdr_begin_[i]),
        bytes_.data() + byte_begin_[i],
        static_cast<size_t>(p_byte_begin_[i] - byte_begin_[i]),
        c_intervals_[i]);
  }

  CompressedIntervalView Progressive(size_t i) const {
    return CompressedIntervalView(
        headers_.data() + p_hdr_begin_[i],
        static_cast<size_t>(hdr_begin_[i + 1] - p_hdr_begin_[i]),
        bytes_.data() + p_byte_begin_[i],
        static_cast<size_t>(byte_begin_[i + 1] - p_byte_begin_[i]),
        p_intervals_[i]);
  }

  CompressedAprilView View(size_t i) const {
    return CompressedAprilView(Conservative(i), Progressive(i));
  }

  /// Appends one record; header and payload data is copied into the arenas.
  void AppendRecord(const CompressedIntervalList& conservative,
                    const CompressedIntervalList& progressive,
                    bool usable = true);

  /// Encodes two flat canonical lists and appends them as one record.
  void AppendEncoded(IntervalView conservative, IntervalView progressive,
                     bool usable = true);

  /// Appends a usable=false placeholder with empty lists (degraded loads).
  void AppendCorruptPlaceholder() {
    AppendRecord(CompressedIntervalList(), CompressedIntervalList(),
                 /*usable=*/false);
  }

  void Reserve(size_t records, size_t blocks, size_t payload_bytes);

  void Clear();

  /// Encodes every record of a flat store (usable flags preserved; corrupt
  /// placeholders stay placeholders).
  static CompressedAprilStore FromStore(const AprilStore& store);

  /// Decodes record i back to flat canonical form. Returns false on any
  /// malformed block (cannot happen for records built by AppendEncoded).
  bool DecodeRecord(size_t i, std::vector<CellInterval>* conservative,
                    std::vector<CellInterval>* progressive) const;

  /// Full audit of record i for the aprilcheck codec validation: deep codec
  /// validation of both lists (ValidateCompressed), P ⊆ C, and re-encode
  /// round-trip byte equality (the encoder is deterministic, so any stored
  /// byte the re-encoding does not reproduce is codec corruption even when
  /// the frame checksum matches). Returns an explanation or "".
  std::string DeepValidateRecord(size_t i) const;

  /// Aborts (STJ_CHECK) if the CSR structure is inconsistent or any record
  /// fails deep codec validation / P ⊆ C / placeholder-emptiness. Always
  /// compiled; automatic invocation sits behind STJ_IF_INVARIANTS in bulk
  /// construction paths. O(total payload).
  void ValidateInvariants() const;

  /// Total in-memory footprint (arenas + offset tables + flags); the codec
  /// payload alone is PayloadByteSize() — compare with
  /// AprilStore::IntervalByteSize() for the compression ratio.
  size_t ByteSize() const;
  size_t PayloadByteSize() const {
    return headers_.size() * sizeof(IntervalBlockHeader) + bytes_.size();
  }

  friend bool operator==(const CompressedAprilStore& a,
                         const CompressedAprilStore& b);

 private:
  std::vector<IntervalBlockHeader> headers_;
  std::vector<uint8_t> bytes_;
  /// hdr_begin_[i] = header index of record i's C blocks; hdr_begin_.back()
  /// = headers_.size() always, so hdr_begin_ has Count()+1 entries (same
  /// convention as AprilStore::rec_begin_). byte_begin_ mirrors it over the
  /// byte arena.
  std::vector<uint64_t> hdr_begin_{0};
  std::vector<uint64_t> p_hdr_begin_;
  std::vector<uint64_t> byte_begin_{0};
  std::vector<uint64_t> p_byte_begin_;
  std::vector<uint64_t> c_intervals_;
  std::vector<uint64_t> p_intervals_;
  std::vector<uint8_t> usable_;
};

}  // namespace stj
