#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/interval/interval_codec.h"
#include "src/interval/interval_list.h"
#include "src/raster/april_store.h"

namespace stj {

/// Non-owning view of one record's compressed APRIL approximation — the
/// codec counterpart of AprilView, consumed by the compressed overloads of
/// the intermediate filters. Usability is decided before construction, as
/// with AprilView.
struct CompressedAprilView {
  CompressedIntervalView conservative;  ///< C list (blocked codec).
  CompressedIntervalView progressive;   ///< P list (blocked codec).

  CompressedAprilView() = default;
  CompressedAprilView(CompressedIntervalView c, CompressedIntervalView p)
      : conservative(c), progressive(p) {}
};

/// The nine flat arrays a CompressedAprilStore reads through. In the owning
/// mode they point into the store's own vectors; in the mapped mode
/// (FromSpans) they point into externally owned memory — a shard file
/// mapping (shard_io.h) — and the store serves views zero-copy off it.
///
/// Array lengths follow the CSR convention: hdr_begin/byte_begin have
/// count+1 entries with hdr_begin[count] == total headers and
/// byte_begin[count] == total payload bytes; every other array has exactly
/// count entries.
struct CompressedStoreSpans {
  const IntervalBlockHeader* headers = nullptr;
  const uint8_t* bytes = nullptr;
  const uint64_t* hdr_begin = nullptr;     ///< count+1 entries.
  const uint64_t* p_hdr_begin = nullptr;   ///< count entries.
  const uint64_t* byte_begin = nullptr;    ///< count+1 entries.
  const uint64_t* p_byte_begin = nullptr;  ///< count entries.
  const uint64_t* c_intervals = nullptr;   ///< count entries.
  const uint64_t* p_intervals = nullptr;   ///< count entries.
  const uint8_t* usable = nullptr;         ///< count entries.
  uint64_t count = 0;                      ///< Record count.
};

/// Arena-backed storage for a dataset's APRIL approximations in the blocked
/// codec (interval_codec.h) — the APRIL v3 in-memory form.
///
/// Mirrors AprilStore's CSR design with two arenas instead of one: all block
/// skip-headers live in one flat array and all payload bytes in another;
/// per-record offset tables bracket each record's Conservative and
/// Progressive spans in both. Record i occupies:
///
///   C_i headers = headers[hdr_begin[i] .. p_hdr_begin[i])
///   P_i headers = headers[p_hdr_begin[i] .. hdr_begin[i+1])
///
/// and the same shape over the byte arena. Block byte offsets are relative
/// to their list's byte span, so views hand the codec self-contained spans.
///
/// Storage comes in two modes behind one read interface: the owning mode
/// (default; mutators append into the store's own vectors) and the mapped
/// mode (FromSpans; the arrays live in externally owned memory, typically
/// an mmap-ed shard segment table, and must outlive the store). Every const
/// accessor reads through CompressedStoreSpans, so the filter pipeline is
/// oblivious to where the bytes live. Mutating a mapped store is a
/// contract violation (STJ_CHECK).
///
/// Corruption isolation matches AprilStore: records can be appended as
/// usable=false placeholders and Usable(i) gates every view.
class CompressedAprilStore {
 public:
  CompressedAprilStore() { RefreshSpans(); }

  // The spans point into the vectors (owning mode), so copies and moves
  // must re-aim them at the destination's storage.
  CompressedAprilStore(const CompressedAprilStore& other);
  CompressedAprilStore& operator=(const CompressedAprilStore& other);
  CompressedAprilStore(CompressedAprilStore&& other) noexcept;
  CompressedAprilStore& operator=(CompressedAprilStore&& other) noexcept;

  /// Wraps externally owned arrays (see CompressedStoreSpans) without
  /// copying: the returned store serves views straight off \p spans, which
  /// must stay valid and unchanged for the store's lifetime. The caller
  /// vouches for CSR consistency (ValidateInvariants audits it on demand);
  /// the shard loader (shard_io.h) is the intended caller.
  static CompressedAprilStore FromSpans(const CompressedStoreSpans& spans);

  /// True for stores created by FromSpans (mutators are forbidden).
  bool IsMapped() const { return external_; }

  /// The raw arrays this store reads through — the shard writer serialises
  /// them, and tests assert the mapped mode is genuinely zero-copy.
  const CompressedStoreSpans& Spans() const { return span_; }

  size_t Count() const { return static_cast<size_t>(span_.count); }
  bool Empty() const { return span_.count == 0; }

  /// False when the record is a corruption placeholder; its views are then
  /// empty and must not feed the filters.
  bool Usable(size_t i) const { return span_.usable[i] != 0; }

  CompressedIntervalView Conservative(size_t i) const {
    return CompressedIntervalView(
        span_.headers + span_.hdr_begin[i],
        static_cast<size_t>(span_.p_hdr_begin[i] - span_.hdr_begin[i]),
        span_.bytes + span_.byte_begin[i],
        static_cast<size_t>(span_.p_byte_begin[i] - span_.byte_begin[i]),
        span_.c_intervals[i]);
  }

  CompressedIntervalView Progressive(size_t i) const {
    return CompressedIntervalView(
        span_.headers + span_.p_hdr_begin[i],
        static_cast<size_t>(span_.hdr_begin[i + 1] - span_.p_hdr_begin[i]),
        span_.bytes + span_.p_byte_begin[i],
        static_cast<size_t>(span_.byte_begin[i + 1] - span_.p_byte_begin[i]),
        span_.p_intervals[i]);
  }

  CompressedAprilView View(size_t i) const {
    return CompressedAprilView(Conservative(i), Progressive(i));
  }

  /// Appends one record; header and payload data is copied into the arenas.
  void AppendRecord(const CompressedIntervalList& conservative,
                    const CompressedIntervalList& progressive,
                    bool usable = true);

  /// Encodes two flat canonical lists and appends them as one record.
  void AppendEncoded(IntervalView conservative, IntervalView progressive,
                     bool usable = true);

  /// Appends record \p i of \p from verbatim — header and payload spans are
  /// copied, never re-encoded, so the appended record is byte-identical to
  /// the source (the shard writer slices per-tile stores out of a dataset
  /// store with this).
  void AppendRecordFrom(const CompressedAprilStore& from, size_t i);

  /// Appends a usable=false placeholder with empty lists (degraded loads).
  void AppendCorruptPlaceholder() {
    AppendRecord(CompressedIntervalList(), CompressedIntervalList(),
                 /*usable=*/false);
  }

  void Reserve(size_t records, size_t blocks, size_t payload_bytes);

  void Clear();

  /// Encodes every record of a flat store (usable flags preserved; corrupt
  /// placeholders stay placeholders).
  static CompressedAprilStore FromStore(const AprilStore& store);

  /// Decodes record i back to flat canonical form. Returns false on any
  /// malformed block (cannot happen for records built by AppendEncoded).
  bool DecodeRecord(size_t i, std::vector<CellInterval>* conservative,
                    std::vector<CellInterval>* progressive) const;

  /// Full audit of record i for the aprilcheck codec validation: deep codec
  /// validation of both lists (ValidateCompressed), P ⊆ C, and re-encode
  /// round-trip byte equality (the encoder is deterministic, so any stored
  /// byte the re-encoding does not reproduce is codec corruption even when
  /// the frame checksum matches). Returns an explanation or "".
  std::string DeepValidateRecord(size_t i) const;

  /// Aborts (STJ_CHECK) if the CSR structure is inconsistent or any record
  /// fails deep codec validation / P ⊆ C / placeholder-emptiness. Always
  /// compiled; automatic invocation sits behind STJ_IF_INVARIANTS in bulk
  /// construction paths. O(total payload).
  void ValidateInvariants() const;

  /// Total in-memory footprint (arenas + offset tables + flags); the codec
  /// payload alone is PayloadByteSize() — compare with
  /// AprilStore::IntervalByteSize() for the compression ratio. For mapped
  /// stores this is the footprint of the referenced arrays, not of the
  /// store object (which owns nothing).
  size_t ByteSize() const;
  size_t PayloadByteSize() const {
    return static_cast<size_t>(span_.hdr_begin[span_.count]) *
               sizeof(IntervalBlockHeader) +
           static_cast<size_t>(span_.byte_begin[span_.count]);
  }

  /// Record-wise content equality over the spans: equal counts, usable
  /// flags, header runs and payload bytes per record. Works across storage
  /// modes — a mapped shard store compares equal to the owning store it was
  /// written from.
  friend bool operator==(const CompressedAprilStore& a,
                         const CompressedAprilStore& b);

 private:
  /// Re-aims span_ at the owning vectors. Must run after every mutation
  /// (vector growth relocates the arenas) and after copies/moves.
  void RefreshSpans();

  std::vector<IntervalBlockHeader> headers_;
  std::vector<uint8_t> bytes_;
  /// hdr_begin_[i] = header index of record i's C blocks; hdr_begin_.back()
  /// = headers_.size() always, so hdr_begin_ has Count()+1 entries (same
  /// convention as AprilStore::rec_begin_). byte_begin_ mirrors it over the
  /// byte arena.
  std::vector<uint64_t> hdr_begin_{0};
  std::vector<uint64_t> p_hdr_begin_;
  std::vector<uint64_t> byte_begin_{0};
  std::vector<uint64_t> p_byte_begin_;
  std::vector<uint64_t> c_intervals_;
  std::vector<uint64_t> p_intervals_;
  std::vector<uint8_t> usable_;
  /// The arrays every read goes through; see CompressedStoreSpans.
  CompressedStoreSpans span_;
  /// True when span_ references external (mapped) memory instead of the
  /// vectors above.
  bool external_ = false;
};

}  // namespace stj
