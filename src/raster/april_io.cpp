#include "src/raster/april_io.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>

#include "src/interval/interval_codec.h"
#include "src/raster/april_store.h"

namespace stj {

namespace {

constexpr char kMagic[4] = {'A', 'P', 'R', 'L'};
constexpr char kMagicCompressed[4] = {'A', 'P', 'R', 'C'};
constexpr char kMagicBlocked[4] = {'A', 'P', 'R', 'B'};
constexpr uint32_t kVersionUnframed = 1;  ///< Legacy: no per-record frames.
constexpr uint32_t kVersion = 2;          ///< Framed + checksummed records.
constexpr uint32_t kVersionBlocked = 3;   ///< Framed block-codec records.
constexpr uint64_t kMaxListSize = 1ull << 40;   // corrupt size guard
constexpr uint64_t kMaxBlockCount =
    kMaxListSize / kCodecBlockIntervals + 1;
constexpr uint64_t kMaxObjectCount = 1ull << 32;
constexpr size_t kMaxReportedIndices = 1024;
constexpr size_t kReserveCap = 4096;  // never trust an on-disk count for alloc

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

uint64_t Fnv1a64(const char* data, size_t size) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

// ---- serialisation into a memory buffer (record payloads) ----

void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}

// LEB128 varint encoding.
void AppendVarint(std::string* out, uint64_t v) {
  do {
    char byte = static_cast<char>(v & 0x7F);
    v >>= 7;
    if (v != 0) byte = static_cast<char>(byte | char(0x80));
    out->push_back(byte);
  } while (v != 0);
}

void AppendList(std::string* out, IntervalView list) {
  AppendU64(out, list.Size());
  for (size_t i = 0; i < list.Size(); ++i) {
    AppendU64(out, list[i].begin);
    AppendU64(out, list[i].end);
  }
}

// Compressed list: varint count, then per interval the gap from the previous
// interval's end (first interval: gap from 0) and the interval length minus
// one (canonical intervals are non-empty).
void AppendListCompressed(std::string* out, IntervalView list) {
  AppendVarint(out, list.Size());
  CellId cursor = 0;
  for (size_t i = 0; i < list.Size(); ++i) {
    AppendVarint(out, list[i].begin - cursor);
    AppendVarint(out, list[i].Length() - 1);
    cursor = list[i].end;
  }
}

// ---- deserialisation from a memory buffer ----

/// Bounded cursor over loaded file bytes. Reads never run past the end;
/// a short read leaves the cursor untouched and returns false.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  size_t Pos() const { return pos_; }
  size_t Remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

  bool ReadBytes(void* out, size_t n) {
    if (Remaining() < n) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool ReadU32(uint32_t* v) { return ReadBytes(v, sizeof *v); }
  bool ReadU64(uint64_t* v) { return ReadBytes(v, sizeof *v); }

  bool ReadVarint(uint64_t* out) {
    uint64_t value = 0;
    size_t p = pos_;
    for (int shift = 0; shift < 64; shift += 7) {
      if (p == size_) return false;
      const unsigned char c = static_cast<unsigned char>(data_[p++]);
      value |= static_cast<uint64_t>(c & 0x7F) << shift;
      if ((c & 0x80) == 0) {
        *out = value;
        pos_ = p;
        return true;
      }
    }
    return false;  // over-long varint
  }

  bool Skip(uint64_t n) {
    if (Remaining() < n) return false;
    pos_ += static_cast<size_t>(n);
    return true;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Decodes one raw list into \p out (cleared first) and validates canonical
/// form. Writing into a caller-owned scratch vector instead of a fresh
/// IntervalList is what lets the arena loader run allocation-free in steady
/// state.
bool ReadIntervals(ByteReader* in, std::vector<CellInterval>* out) {
  out->clear();
  uint64_t count = 0;
  if (!in->ReadU64(&count)) return false;
  if (count > kMaxListSize) return false;
  if (count * 2 * sizeof(uint64_t) > in->Remaining()) return false;
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    CellInterval iv;
    if (!in->ReadU64(&iv.begin) || !in->ReadU64(&iv.end)) return false;
    out->push_back(iv);
  }
  // Validate canonical form without asserting.
  for (size_t i = 0; i < out->size(); ++i) {
    if ((*out)[i].Empty()) return false;
    if (i > 0 && (*out)[i].begin <= (*out)[i - 1].end) return false;
  }
  return true;
}

bool ReadIntervalsCompressed(ByteReader* in, std::vector<CellInterval>* out) {
  out->clear();
  uint64_t count = 0;
  if (!in->ReadVarint(&count)) return false;
  if (count > kMaxListSize || count * 2 > in->Remaining()) return false;
  out->reserve(count);
  CellId cursor = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t gap = 0;
    uint64_t length_minus_one = 0;
    if (!in->ReadVarint(&gap) || !in->ReadVarint(&length_minus_one)) {
      return false;
    }
    // Canonical form needs a positive gap between intervals (but the first
    // interval may start at 0).
    if (i > 0 && gap == 0) return false;
    const CellId begin = cursor + gap;
    const CellId end = begin + length_minus_one + 1;
    if (end <= begin || begin < cursor) return false;  // overflow guard
    out->push_back(CellInterval{begin, end});
    cursor = end;
  }
  return true;
}

/// Decodes one record payload (both lists) into scratch vectors and requires
/// it to be consumed exactly.
bool DecodePayload(const char* data, size_t size, bool compressed,
                   std::vector<CellInterval>* conservative,
                   std::vector<CellInterval>* progressive) {
  ByteReader in(data, size);
  const bool ok = compressed
                      ? (ReadIntervalsCompressed(&in, conservative) &&
                         ReadIntervalsCompressed(&in, progressive))
                      : (ReadIntervals(&in, conservative) &&
                         ReadIntervals(&in, progressive));
  return ok && in.AtEnd();
}

/// Shared framed writer: \p payload_of(i, &payload) serialises record i into
/// the cleared payload buffer; this wraps it in the u64-size/u64-checksum
/// frame shared by versions 2 and 3.
template <typename PayloadFn>
bool SaveFramedImpl(const std::string& path, const char* magic,
                    uint32_t version, size_t count,
                    const PayloadFn& payload_of) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return false;
  if (std::fwrite(magic, 1, 4, f.get()) != 4) return false;
  if (std::fwrite(&version, sizeof version, 1, f.get()) != 1) return false;
  const uint64_t declared = count;
  if (std::fwrite(&declared, sizeof declared, 1, f.get()) != 1) return false;
  std::string payload;
  for (size_t i = 0; i < count; ++i) {
    payload.clear();
    payload_of(i, &payload);
    const uint64_t size = payload.size();
    const uint64_t checksum = Fnv1a64(payload.data(), payload.size());
    if (std::fwrite(&size, sizeof size, 1, f.get()) != 1) return false;
    if (std::fwrite(&checksum, sizeof checksum, 1, f.get()) != 1) return false;
    if (!payload.empty() &&
        std::fwrite(payload.data(), 1, payload.size(), f.get()) !=
            payload.size()) {
      return false;
    }
  }
  return std::fflush(f.get()) == 0;
}

/// Shared writer: \p view_of(i) yields record i's lists, whatever they are
/// stored in (legacy vector or arena store).
template <typename ViewFn>
bool SaveImpl(const std::string& path, size_t count, const ViewFn& view_of,
              bool compressed) {
  return SaveFramedImpl(
      path, compressed ? kMagicCompressed : kMagic, kVersion, count,
      [&](size_t i, std::string* payload) {
        const AprilView april = view_of(i);
        if (compressed) {
          AppendListCompressed(payload, april.conservative);
          AppendListCompressed(payload, april.progressive);
        } else {
          AppendList(payload, april.conservative);
          AppendList(payload, april.progressive);
        }
      });
}

// ---- version 3: blocked codec payloads ----

/// Serialises one compressed list: varint interval and block counts, the
/// skip headers (first_cell, range span, count, payload length — byte
/// offsets are implicit prefix sums), then the concatenated block payloads.
void AppendListBlocked(std::string* out, const CompressedIntervalView& view) {
  AppendVarint(out, view.Intervals());
  AppendVarint(out, view.Blocks());
  for (size_t b = 0; b < view.Blocks(); ++b) {
    const IntervalBlockHeader& header = view.Header(b);
    const size_t next = b + 1 < view.Blocks() ? view.Header(b + 1).byte_offset
                                              : view.ByteSize();
    AppendVarint(out, header.first_cell);
    AppendVarint(out, header.last_end - header.first_cell);
    AppendVarint(out, header.count);
    AppendVarint(out, next - header.byte_offset);
  }
  out->append(reinterpret_cast<const char*>(view.Bytes()), view.ByteSize());
}

/// One parsed v3 record; buffers are reused across records of a load.
struct BlockedRecord {
  std::vector<IntervalBlockHeader> c_headers;
  std::vector<IntervalBlockHeader> p_headers;
  std::vector<uint8_t> c_bytes;
  std::vector<uint8_t> p_bytes;
  uint64_t c_intervals = 0;
  uint64_t p_intervals = 0;

  CompressedIntervalView Conservative() const {
    return CompressedIntervalView(c_headers.data(), c_headers.size(),
                                  c_bytes.data(), c_bytes.size(),
                                  c_intervals);
  }
  CompressedIntervalView Progressive() const {
    return CompressedIntervalView(p_headers.data(), p_headers.size(),
                                  p_bytes.data(), p_bytes.size(),
                                  p_intervals);
  }
};

/// Parses one blocked list. Structural guards only (counts and byte spans in
/// range, offsets reconstructible); canonical-form validation happens via
/// ValidateCompressed on the assembled view.
bool ReadListBlocked(ByteReader* in,
                     std::vector<IntervalBlockHeader>* headers,
                     std::vector<uint8_t>* bytes, uint64_t* intervals) {
  headers->clear();
  bytes->clear();
  uint64_t num_intervals = 0;
  uint64_t num_blocks = 0;
  if (!in->ReadVarint(&num_intervals) || !in->ReadVarint(&num_blocks)) {
    return false;
  }
  if (num_intervals > kMaxListSize || num_blocks > kMaxBlockCount) {
    return false;
  }
  // Each block needs at least 4 header bytes; cheap plausibility bound
  // before reserving.
  if (num_blocks * 4 > in->Remaining()) return false;
  headers->reserve(static_cast<size_t>(num_blocks));
  uint64_t payload_total = 0;
  for (uint64_t b = 0; b < num_blocks; ++b) {
    uint64_t first_cell = 0;
    uint64_t span = 0;
    uint64_t count = 0;
    uint64_t payload_len = 0;
    if (!in->ReadVarint(&first_cell) || !in->ReadVarint(&span) ||
        !in->ReadVarint(&count) || !in->ReadVarint(&payload_len)) {
      return false;
    }
    if (span == 0 || first_cell > ~uint64_t{0} - span) return false;
    if (count == 0 || count > kCodecBlockIntervals) return false;
    if (payload_len == 0 || payload_len > in->Remaining()) return false;
    if (payload_total > std::numeric_limits<uint32_t>::max() - payload_len) {
      return false;
    }
    IntervalBlockHeader header;
    header.first_cell = first_cell;
    header.last_end = first_cell + span;
    header.count = static_cast<uint32_t>(count);
    header.byte_offset = static_cast<uint32_t>(payload_total);
    payload_total += payload_len;
    headers->push_back(header);
  }
  if (payload_total > in->Remaining()) return false;
  bytes->resize(static_cast<size_t>(payload_total));
  if (payload_total != 0 &&
      !in->ReadBytes(bytes->data(), static_cast<size_t>(payload_total))) {
    return false;
  }
  *intervals = num_intervals;
  return true;
}

/// Parses and deep-validates one v3 record payload. Must consume the payload
/// exactly; both lists must pass ValidateCompressed.
bool DecodeBlockedPayload(const char* data, size_t size, BlockedRecord* rec) {
  ByteReader in(data, size);
  if (!ReadListBlocked(&in, &rec->c_headers, &rec->c_bytes,
                       &rec->c_intervals) ||
      !ReadListBlocked(&in, &rec->p_headers, &rec->p_bytes,
                       &rec->p_intervals) ||
      !in.AtEnd()) {
    return false;
  }
  return ValidateCompressed(rec->Conservative()).empty() &&
         ValidateCompressed(rec->Progressive()).empty();
}

Status ReadWholeFile(const std::string& path, std::string* out) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::NotFound("cannot open APRIL file").WithFile(path);
  }
  out->clear();
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f.get())) > 0) {
    out->append(buf, n);
  }
  if (std::ferror(f.get()) != 0) {
    return Status::IoError("read error").WithFile(path);
  }
  return Status::Ok();
}

void ReportCorrupt(AprilLoadReport* report, uint64_t index) {
  if (report == nullptr) return;
  ++report->corrupt;
  if (report->corrupt_indices.size() < kMaxReportedIndices) {
    report->corrupt_indices.push_back(index);
  }
}

void ReportCodecCorrupt(AprilLoadReport* report, uint64_t index) {
  if (report == nullptr) return;
  ++report->codec_corrupt;
  if (report->corrupt_indices.size() < kMaxReportedIndices) {
    report->corrupt_indices.push_back(index);
  }
}

/// Shared header parse for the framed loaders. On success fills \p blocked /
/// \p compressed / \p count and positions \p in at the first frame.
Status ParseFileHeader(const std::string& path, ByteReader* in, bool* blocked,
                       bool* compressed, uint32_t* version, uint64_t* count) {
  char magic[4];
  if (!in->ReadBytes(magic, 4)) {
    return Status::DataLoss("file too short for magic")
        .WithFile(path)
        .WithOffset(in->Pos());
  }
  *compressed = std::memcmp(magic, kMagicCompressed, 4) == 0;
  *blocked = std::memcmp(magic, kMagicBlocked, 4) == 0;
  if (!*compressed && !*blocked && std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("not an APRIL file (bad magic)")
        .WithFile(path)
        .WithOffset(0);
  }
  if (!in->ReadU32(version)) {
    return Status::DataLoss("file too short for version")
        .WithFile(path)
        .WithOffset(in->Pos());
  }
  // The blocked magic and version 3 imply each other; the flat magics cap at
  // version 2.
  const bool version_ok = *blocked
                              ? *version == kVersionBlocked
                              : (*version == kVersionUnframed ||
                                 *version == kVersion);
  if (!version_ok) {
    return Status::InvalidArgument("unsupported APRIL format version " +
                                   std::to_string(*version))
        .WithFile(path)
        .WithOffset(4);
  }
  if (!in->ReadU64(count)) {
    return Status::DataLoss("file too short for object count")
        .WithFile(path)
        .WithOffset(in->Pos());
  }
  if (*count > kMaxObjectCount) {
    return Status::DataLoss("implausible object count " +
                            std::to_string(*count))
        .WithFile(path)
        .WithOffset(8);
  }
  return Status::Ok();
}

}  // namespace

bool SaveAprilFile(const std::string& path,
                   const std::vector<AprilApproximation>& approximations) {
  return SaveImpl(
      path, approximations.size(),
      [&](size_t i) { return AprilView(approximations[i]); },
      /*compressed=*/false);
}

bool SaveAprilFileCompressed(
    const std::string& path,
    const std::vector<AprilApproximation>& approximations) {
  return SaveImpl(
      path, approximations.size(),
      [&](size_t i) { return AprilView(approximations[i]); },
      /*compressed=*/true);
}

bool SaveAprilStore(const std::string& path, const AprilStore& store) {
  return SaveImpl(
      path, store.Count(), [&](size_t i) { return store.View(i); },
      /*compressed=*/false);
}

bool SaveAprilStoreCompressed(const std::string& path,
                              const AprilStore& store) {
  return SaveImpl(
      path, store.Count(), [&](size_t i) { return store.View(i); },
      /*compressed=*/true);
}

Status LoadAprilStore(const std::string& path, AprilStore* out,
                      AprilLoadReport* report) {
  out->Clear();
  if (report != nullptr) *report = AprilLoadReport{};
  std::string bytes;
  if (Status st = ReadWholeFile(path, &bytes); !st.ok()) return st;
  ByteReader in(bytes.data(), bytes.size());

  bool blocked = false;
  bool compressed = false;
  uint32_t version = 0;
  uint64_t count = 0;
  if (Status st = ParseFileHeader(path, &in, &blocked, &compressed, &version,
                                  &count);
      !st.ok()) {
    return st;
  }
  if (report != nullptr) {
    report->version = version;
    report->compressed = compressed || blocked;
    report->declared_count = count;
  }
  // Raw intervals occupy 2 u64s each, which bounds how many the file can
  // hold; compressed files stay unreserved (a varint can claim anything).
  out->Reserve(static_cast<size_t>(std::min<uint64_t>(count, kReserveCap)),
               compressed ? 0 : in.Remaining() / (2 * sizeof(uint64_t)));

  // Record-decoding scratch, reused across all records of the load.
  std::vector<CellInterval> conservative;
  std::vector<CellInterval> progressive;
  auto append_record = [&] {
    out->AppendRecord(
        IntervalView(conservative.data(), conservative.size()),
        IntervalView(progressive.data(), progressive.size()));
  };

  if (version == kVersionUnframed) {
    // Legacy format: records are not framed, so corruption cannot be skipped
    // — the first bad byte fails the load, as it always did.
    for (uint64_t i = 0; i < count; ++i) {
      const size_t record_start = in.Pos();
      const bool ok = compressed
                          ? (ReadIntervalsCompressed(&in, &conservative) &&
                             ReadIntervalsCompressed(&in, &progressive))
                          : (ReadIntervals(&in, &conservative) &&
                             ReadIntervals(&in, &progressive));
      if (!ok) {
        out->Clear();
        if (report != nullptr) {
          report->truncated = true;
          report->corrupt = count - i;
        }
        return Status::DataLoss("malformed or truncated record for object " +
                                std::to_string(i))
            .WithFile(path)
            .WithOffset(record_start);
      }
      append_record();
      if (report != nullptr) ++report->loaded;
    }
    return Status::Ok();
  }

  // Versions 2 and 3: framed records. A bad frame costs one object; the
  // reader resynchronises at the next frame. A frame that runs past the end
  // of the file means the tail is gone — keep the verified prefix. Version-3
  // payloads additionally pass deep codec validation; a record whose
  // checksum holds but whose codec is invalid is isolated the same way and
  // reported as codec_corrupt.
  BlockedRecord rec;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t payload_size = 0;
    uint64_t checksum = 0;
    if (!in.ReadU64(&payload_size) || !in.ReadU64(&checksum) ||
        payload_size > in.Remaining()) {
      if (report != nullptr) {
        report->truncated = true;
        report->corrupt += count - i;
      }
      break;
    }
    const char* payload = bytes.data() + in.Pos();
    in.Skip(payload_size);
    if (Fnv1a64(payload, static_cast<size_t>(payload_size)) != checksum) {
      out->AppendCorruptPlaceholder();
      ReportCorrupt(report, i);
      continue;
    }
    if (blocked) {
      if (!DecodeBlockedPayload(payload, static_cast<size_t>(payload_size),
                                &rec) ||
          !DecodeCompressed(rec.Conservative(), &conservative) ||
          !DecodeCompressed(rec.Progressive(), &progressive)) {
        out->AppendCorruptPlaceholder();
        ReportCodecCorrupt(report, i);
        continue;
      }
    } else if (!DecodePayload(payload, static_cast<size_t>(payload_size),
                              compressed, &conservative, &progressive)) {
      out->AppendCorruptPlaceholder();
      ReportCorrupt(report, i);
      continue;
    }
    append_record();
    if (report != nullptr) ++report->loaded;
  }
  return Status::Ok();
}

bool SaveAprilStoreBlocked(const std::string& path,
                           const CompressedAprilStore& store) {
  return SaveFramedImpl(path, kMagicBlocked, kVersionBlocked, store.Count(),
                        [&](size_t i, std::string* payload) {
                          AppendListBlocked(payload, store.Conservative(i));
                          AppendListBlocked(payload, store.Progressive(i));
                        });
}

Status LoadCompressedAprilStore(const std::string& path,
                                CompressedAprilStore* out,
                                AprilLoadReport* report) {
  out->Clear();
  if (report != nullptr) *report = AprilLoadReport{};
  std::string bytes;
  if (Status st = ReadWholeFile(path, &bytes); !st.ok()) return st;
  ByteReader in(bytes.data(), bytes.size());

  bool blocked = false;
  bool compressed = false;
  uint32_t version = 0;
  uint64_t count = 0;
  if (Status st = ParseFileHeader(path, &in, &blocked, &compressed, &version,
                                  &count);
      !st.ok()) {
    return st;
  }
  if (!blocked) {
    return Status::InvalidArgument(
               "not a blocked (version 3) APRIL file; load it into an "
               "AprilStore instead")
        .WithFile(path)
        .WithOffset(0);
  }
  if (report != nullptr) {
    report->version = version;
    report->compressed = true;
    report->declared_count = count;
  }
  out->Reserve(static_cast<size_t>(std::min<uint64_t>(count, kReserveCap)),
               /*blocks=*/0, /*payload_bytes=*/0);

  BlockedRecord rec;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t payload_size = 0;
    uint64_t checksum = 0;
    if (!in.ReadU64(&payload_size) || !in.ReadU64(&checksum) ||
        payload_size > in.Remaining()) {
      if (report != nullptr) {
        report->truncated = true;
        report->corrupt += count - i;
      }
      break;
    }
    const char* payload = bytes.data() + in.Pos();
    in.Skip(payload_size);
    if (Fnv1a64(payload, static_cast<size_t>(payload_size)) != checksum) {
      out->AppendCorruptPlaceholder();
      ReportCorrupt(report, i);
      continue;
    }
    if (!DecodeBlockedPayload(payload, static_cast<size_t>(payload_size),
                              &rec)) {
      out->AppendCorruptPlaceholder();
      ReportCodecCorrupt(report, i);
      continue;
    }
    out->AppendRecord(
        CompressedIntervalList::FromParts(rec.c_headers, rec.c_bytes,
                                          rec.c_intervals),
        CompressedIntervalList::FromParts(rec.p_headers, rec.p_bytes,
                                          rec.p_intervals));
    if (report != nullptr) ++report->loaded;
  }
  return Status::Ok();
}

Status LoadAprilFileDetailed(const std::string& path,
                             std::vector<AprilApproximation>* out,
                             AprilLoadReport* report) {
  out->clear();
  AprilStore store;
  if (Status st = LoadAprilStore(path, &store, report); !st.ok()) return st;
  out->reserve(store.Count());
  for (size_t i = 0; i < store.Count(); ++i) {
    AprilApproximation april;
    const IntervalView c = store.Conservative(i);
    const IntervalView p = store.Progressive(i);
    april.conservative =
        IntervalList::FromSorted(std::vector<CellInterval>(c.begin(), c.end()));
    april.progressive =
        IntervalList::FromSorted(std::vector<CellInterval>(p.begin(), p.end()));
    april.usable = store.Usable(i);
    out->push_back(std::move(april));
  }
  return Status::Ok();
}

bool LoadAprilFile(const std::string& path,
                   std::vector<AprilApproximation>* out) {
  AprilLoadReport report;
  const Status status = LoadAprilFileDetailed(path, out, &report);
  if (!status.ok() || report.Degraded()) {
    return false;
  }
  return true;
}

}  // namespace stj
