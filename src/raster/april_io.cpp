#include "src/raster/april_io.h"

#include <cstdint>
#include <cstdio>
#include <memory>

namespace stj {

namespace {

constexpr char kMagic[4] = {'A', 'P', 'R', 'L'};
constexpr char kMagicCompressed[4] = {'A', 'P', 'R', 'C'};
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteU32(std::FILE* f, uint32_t v) {
  return std::fwrite(&v, sizeof v, 1, f) == 1;
}
bool WriteU64(std::FILE* f, uint64_t v) {
  return std::fwrite(&v, sizeof v, 1, f) == 1;
}
bool ReadU32(std::FILE* f, uint32_t* v) {
  return std::fread(v, sizeof *v, 1, f) == 1;
}
bool ReadU64(std::FILE* f, uint64_t* v) {
  return std::fread(v, sizeof *v, 1, f) == 1;
}

bool WriteList(std::FILE* f, const IntervalList& list) {
  if (!WriteU64(f, list.Size())) return false;
  for (size_t i = 0; i < list.Size(); ++i) {
    if (!WriteU64(f, list[i].begin) || !WriteU64(f, list[i].end)) return false;
  }
  return true;
}

bool ReadList(std::FILE* f, IntervalList* out) {
  uint64_t count = 0;
  if (!ReadU64(f, &count)) return false;
  if (count > (1ull << 40)) return false;  // corrupt size guard
  std::vector<CellInterval> intervals;
  intervals.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    CellInterval iv;
    if (!ReadU64(f, &iv.begin) || !ReadU64(f, &iv.end)) return false;
    intervals.push_back(iv);
  }
  // Validate canonical form without asserting.
  for (size_t i = 0; i < intervals.size(); ++i) {
    if (intervals[i].Empty()) return false;
    if (i > 0 && intervals[i].begin <= intervals[i - 1].end) return false;
  }
  *out = IntervalList::FromSorted(std::move(intervals));
  return true;
}

// LEB128 varint encoding.
bool WriteVarint(std::FILE* f, uint64_t v) {
  unsigned char buf[10];
  size_t n = 0;
  do {
    unsigned char byte = static_cast<unsigned char>(v & 0x7F);
    v >>= 7;
    if (v != 0) byte |= 0x80;
    buf[n++] = byte;
  } while (v != 0);
  return std::fwrite(buf, 1, n, f) == n;
}

bool ReadVarint(std::FILE* f, uint64_t* out) {
  uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const int c = std::fgetc(f);
    if (c == EOF) return false;
    value |= static_cast<uint64_t>(c & 0x7F) << shift;
    if ((c & 0x80) == 0) {
      *out = value;
      return true;
    }
  }
  return false;  // over-long varint
}

// Compressed list: varint count, then per interval the gap from the previous
// interval's end (first interval: gap from 0) and the interval length minus
// one (canonical intervals are non-empty).
bool WriteListCompressed(std::FILE* f, const IntervalList& list) {
  if (!WriteVarint(f, list.Size())) return false;
  CellId cursor = 0;
  for (size_t i = 0; i < list.Size(); ++i) {
    if (!WriteVarint(f, list[i].begin - cursor)) return false;
    if (!WriteVarint(f, list[i].Length() - 1)) return false;
    cursor = list[i].end;
  }
  return true;
}

bool ReadListCompressed(std::FILE* f, IntervalList* out) {
  uint64_t count = 0;
  if (!ReadVarint(f, &count)) return false;
  if (count > (1ull << 40)) return false;
  std::vector<CellInterval> intervals;
  intervals.reserve(count);
  CellId cursor = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t gap = 0;
    uint64_t length_minus_one = 0;
    if (!ReadVarint(f, &gap) || !ReadVarint(f, &length_minus_one)) {
      return false;
    }
    // Canonical form needs a positive gap between intervals (but the first
    // interval may start at 0).
    if (i > 0 && gap == 0) return false;
    const CellId begin = cursor + gap;
    const CellId end = begin + length_minus_one + 1;
    if (end <= begin) return false;  // overflow guard
    intervals.push_back(CellInterval{begin, end});
    cursor = end;
  }
  *out = IntervalList::FromSorted(std::move(intervals));
  return true;
}

}  // namespace

bool SaveAprilFile(const std::string& path,
                   const std::vector<AprilApproximation>& approximations) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return false;
  if (std::fwrite(kMagic, 1, 4, f.get()) != 4) return false;
  if (!WriteU32(f.get(), kVersion)) return false;
  if (!WriteU64(f.get(), approximations.size())) return false;
  for (const AprilApproximation& april : approximations) {
    if (!WriteList(f.get(), april.conservative)) return false;
    if (!WriteList(f.get(), april.progressive)) return false;
  }
  return std::fflush(f.get()) == 0;
}

bool LoadAprilFile(const std::string& path,
                   std::vector<AprilApproximation>* out) {
  out->clear();
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return false;
  char magic[4];
  if (std::fread(magic, 1, 4, f.get()) != 4) return false;
  bool compressed = true;
  for (int i = 0; i < 4 && compressed; ++i) {
    compressed = magic[i] == kMagicCompressed[i];
  }
  if (!compressed) {
    for (int i = 0; i < 4; ++i) {
      if (magic[i] != kMagic[i]) return false;
    }
  }
  uint32_t version = 0;
  if (!ReadU32(f.get(), &version) || version != kVersion) return false;
  uint64_t count = 0;
  if (!ReadU64(f.get(), &count)) return false;
  if (count > (1ull << 32)) return false;
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    AprilApproximation april;
    const bool ok =
        compressed
            ? (ReadListCompressed(f.get(), &april.conservative) &&
               ReadListCompressed(f.get(), &april.progressive))
            : (ReadList(f.get(), &april.conservative) &&
               ReadList(f.get(), &april.progressive));
    if (!ok) return false;
    out->push_back(std::move(april));
  }
  return true;
}

bool SaveAprilFileCompressed(
    const std::string& path,
    const std::vector<AprilApproximation>& approximations) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return false;
  if (std::fwrite(kMagicCompressed, 1, 4, f.get()) != 4) return false;
  if (!WriteU32(f.get(), kVersion)) return false;
  if (!WriteU64(f.get(), approximations.size())) return false;
  for (const AprilApproximation& april : approximations) {
    if (!WriteListCompressed(f.get(), april.conservative)) return false;
    if (!WriteListCompressed(f.get(), april.progressive)) return false;
  }
  return std::fflush(f.get()) == 0;
}

}  // namespace stj
