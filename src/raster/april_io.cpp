#include "src/raster/april_io.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

#include "src/raster/april_store.h"

namespace stj {

namespace {

constexpr char kMagic[4] = {'A', 'P', 'R', 'L'};
constexpr char kMagicCompressed[4] = {'A', 'P', 'R', 'C'};
constexpr uint32_t kVersionUnframed = 1;  ///< Legacy: no per-record frames.
constexpr uint32_t kVersion = 2;          ///< Framed + checksummed records.
constexpr uint64_t kMaxListSize = 1ull << 40;   // corrupt size guard
constexpr uint64_t kMaxObjectCount = 1ull << 32;
constexpr size_t kMaxReportedIndices = 1024;
constexpr size_t kReserveCap = 4096;  // never trust an on-disk count for alloc

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

uint64_t Fnv1a64(const char* data, size_t size) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

// ---- serialisation into a memory buffer (record payloads) ----

void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}

// LEB128 varint encoding.
void AppendVarint(std::string* out, uint64_t v) {
  do {
    char byte = static_cast<char>(v & 0x7F);
    v >>= 7;
    if (v != 0) byte = static_cast<char>(byte | char(0x80));
    out->push_back(byte);
  } while (v != 0);
}

void AppendList(std::string* out, IntervalView list) {
  AppendU64(out, list.Size());
  for (size_t i = 0; i < list.Size(); ++i) {
    AppendU64(out, list[i].begin);
    AppendU64(out, list[i].end);
  }
}

// Compressed list: varint count, then per interval the gap from the previous
// interval's end (first interval: gap from 0) and the interval length minus
// one (canonical intervals are non-empty).
void AppendListCompressed(std::string* out, IntervalView list) {
  AppendVarint(out, list.Size());
  CellId cursor = 0;
  for (size_t i = 0; i < list.Size(); ++i) {
    AppendVarint(out, list[i].begin - cursor);
    AppendVarint(out, list[i].Length() - 1);
    cursor = list[i].end;
  }
}

// ---- deserialisation from a memory buffer ----

/// Bounded cursor over loaded file bytes. Reads never run past the end;
/// a short read leaves the cursor untouched and returns false.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  size_t Pos() const { return pos_; }
  size_t Remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

  bool ReadBytes(void* out, size_t n) {
    if (Remaining() < n) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool ReadU32(uint32_t* v) { return ReadBytes(v, sizeof *v); }
  bool ReadU64(uint64_t* v) { return ReadBytes(v, sizeof *v); }

  bool ReadVarint(uint64_t* out) {
    uint64_t value = 0;
    size_t p = pos_;
    for (int shift = 0; shift < 64; shift += 7) {
      if (p == size_) return false;
      const unsigned char c = static_cast<unsigned char>(data_[p++]);
      value |= static_cast<uint64_t>(c & 0x7F) << shift;
      if ((c & 0x80) == 0) {
        *out = value;
        pos_ = p;
        return true;
      }
    }
    return false;  // over-long varint
  }

  bool Skip(uint64_t n) {
    if (Remaining() < n) return false;
    pos_ += static_cast<size_t>(n);
    return true;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Decodes one raw list into \p out (cleared first) and validates canonical
/// form. Writing into a caller-owned scratch vector instead of a fresh
/// IntervalList is what lets the arena loader run allocation-free in steady
/// state.
bool ReadIntervals(ByteReader* in, std::vector<CellInterval>* out) {
  out->clear();
  uint64_t count = 0;
  if (!in->ReadU64(&count)) return false;
  if (count > kMaxListSize) return false;
  if (count * 2 * sizeof(uint64_t) > in->Remaining()) return false;
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    CellInterval iv;
    if (!in->ReadU64(&iv.begin) || !in->ReadU64(&iv.end)) return false;
    out->push_back(iv);
  }
  // Validate canonical form without asserting.
  for (size_t i = 0; i < out->size(); ++i) {
    if ((*out)[i].Empty()) return false;
    if (i > 0 && (*out)[i].begin <= (*out)[i - 1].end) return false;
  }
  return true;
}

bool ReadIntervalsCompressed(ByteReader* in, std::vector<CellInterval>* out) {
  out->clear();
  uint64_t count = 0;
  if (!in->ReadVarint(&count)) return false;
  if (count > kMaxListSize || count * 2 > in->Remaining()) return false;
  out->reserve(count);
  CellId cursor = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t gap = 0;
    uint64_t length_minus_one = 0;
    if (!in->ReadVarint(&gap) || !in->ReadVarint(&length_minus_one)) {
      return false;
    }
    // Canonical form needs a positive gap between intervals (but the first
    // interval may start at 0).
    if (i > 0 && gap == 0) return false;
    const CellId begin = cursor + gap;
    const CellId end = begin + length_minus_one + 1;
    if (end <= begin || begin < cursor) return false;  // overflow guard
    out->push_back(CellInterval{begin, end});
    cursor = end;
  }
  return true;
}

/// Decodes one record payload (both lists) into scratch vectors and requires
/// it to be consumed exactly.
bool DecodePayload(const char* data, size_t size, bool compressed,
                   std::vector<CellInterval>* conservative,
                   std::vector<CellInterval>* progressive) {
  ByteReader in(data, size);
  const bool ok = compressed
                      ? (ReadIntervalsCompressed(&in, conservative) &&
                         ReadIntervalsCompressed(&in, progressive))
                      : (ReadIntervals(&in, conservative) &&
                         ReadIntervals(&in, progressive));
  return ok && in.AtEnd();
}

/// Shared writer: \p view_of(i) yields record i's lists, whatever they are
/// stored in (legacy vector or arena store).
template <typename ViewFn>
bool SaveImpl(const std::string& path, size_t count, const ViewFn& view_of,
              bool compressed) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return false;
  const char* magic = compressed ? kMagicCompressed : kMagic;
  if (std::fwrite(magic, 1, 4, f.get()) != 4) return false;
  if (std::fwrite(&kVersion, sizeof kVersion, 1, f.get()) != 1) return false;
  const uint64_t declared = count;
  if (std::fwrite(&declared, sizeof declared, 1, f.get()) != 1) return false;
  std::string payload;
  for (size_t i = 0; i < count; ++i) {
    const AprilView april = view_of(i);
    payload.clear();
    if (compressed) {
      AppendListCompressed(&payload, april.conservative);
      AppendListCompressed(&payload, april.progressive);
    } else {
      AppendList(&payload, april.conservative);
      AppendList(&payload, april.progressive);
    }
    const uint64_t size = payload.size();
    const uint64_t checksum = Fnv1a64(payload.data(), payload.size());
    if (std::fwrite(&size, sizeof size, 1, f.get()) != 1) return false;
    if (std::fwrite(&checksum, sizeof checksum, 1, f.get()) != 1) return false;
    if (!payload.empty() &&
        std::fwrite(payload.data(), 1, payload.size(), f.get()) !=
            payload.size()) {
      return false;
    }
  }
  return std::fflush(f.get()) == 0;
}

Status ReadWholeFile(const std::string& path, std::string* out) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::NotFound("cannot open APRIL file").WithFile(path);
  }
  out->clear();
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f.get())) > 0) {
    out->append(buf, n);
  }
  if (std::ferror(f.get()) != 0) {
    return Status::IoError("read error").WithFile(path);
  }
  return Status::Ok();
}

void ReportCorrupt(AprilLoadReport* report, uint64_t index) {
  if (report == nullptr) return;
  ++report->corrupt;
  if (report->corrupt_indices.size() < kMaxReportedIndices) {
    report->corrupt_indices.push_back(index);
  }
}

}  // namespace

bool SaveAprilFile(const std::string& path,
                   const std::vector<AprilApproximation>& approximations) {
  return SaveImpl(
      path, approximations.size(),
      [&](size_t i) { return AprilView(approximations[i]); },
      /*compressed=*/false);
}

bool SaveAprilFileCompressed(
    const std::string& path,
    const std::vector<AprilApproximation>& approximations) {
  return SaveImpl(
      path, approximations.size(),
      [&](size_t i) { return AprilView(approximations[i]); },
      /*compressed=*/true);
}

bool SaveAprilStore(const std::string& path, const AprilStore& store) {
  return SaveImpl(
      path, store.Count(), [&](size_t i) { return store.View(i); },
      /*compressed=*/false);
}

bool SaveAprilStoreCompressed(const std::string& path,
                              const AprilStore& store) {
  return SaveImpl(
      path, store.Count(), [&](size_t i) { return store.View(i); },
      /*compressed=*/true);
}

Status LoadAprilStore(const std::string& path, AprilStore* out,
                      AprilLoadReport* report) {
  out->Clear();
  if (report != nullptr) *report = AprilLoadReport{};
  std::string bytes;
  if (Status st = ReadWholeFile(path, &bytes); !st.ok()) return st;
  ByteReader in(bytes.data(), bytes.size());

  char magic[4];
  if (!in.ReadBytes(magic, 4)) {
    return Status::DataLoss("file too short for magic")
        .WithFile(path)
        .WithOffset(in.Pos());
  }
  bool compressed = std::memcmp(magic, kMagicCompressed, 4) == 0;
  if (!compressed && std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("not an APRIL file (bad magic)")
        .WithFile(path)
        .WithOffset(0);
  }
  uint32_t version = 0;
  if (!in.ReadU32(&version)) {
    return Status::DataLoss("file too short for version")
        .WithFile(path)
        .WithOffset(in.Pos());
  }
  if (version != kVersionUnframed && version != kVersion) {
    return Status::InvalidArgument("unsupported APRIL format version " +
                                   std::to_string(version))
        .WithFile(path)
        .WithOffset(4);
  }
  uint64_t count = 0;
  if (!in.ReadU64(&count)) {
    return Status::DataLoss("file too short for object count")
        .WithFile(path)
        .WithOffset(in.Pos());
  }
  if (count > kMaxObjectCount) {
    return Status::DataLoss("implausible object count " +
                            std::to_string(count))
        .WithFile(path)
        .WithOffset(8);
  }
  if (report != nullptr) {
    report->version = version;
    report->compressed = compressed;
    report->declared_count = count;
  }
  // Raw intervals occupy 2 u64s each, which bounds how many the file can
  // hold; compressed files stay unreserved (a varint can claim anything).
  out->Reserve(static_cast<size_t>(std::min<uint64_t>(count, kReserveCap)),
               compressed ? 0 : in.Remaining() / (2 * sizeof(uint64_t)));

  // Record-decoding scratch, reused across all records of the load.
  std::vector<CellInterval> conservative;
  std::vector<CellInterval> progressive;
  auto append_record = [&] {
    out->AppendRecord(
        IntervalView(conservative.data(), conservative.size()),
        IntervalView(progressive.data(), progressive.size()));
  };

  if (version == kVersionUnframed) {
    // Legacy format: records are not framed, so corruption cannot be skipped
    // — the first bad byte fails the load, as it always did.
    for (uint64_t i = 0; i < count; ++i) {
      const size_t record_start = in.Pos();
      const bool ok = compressed
                          ? (ReadIntervalsCompressed(&in, &conservative) &&
                             ReadIntervalsCompressed(&in, &progressive))
                          : (ReadIntervals(&in, &conservative) &&
                             ReadIntervals(&in, &progressive));
      if (!ok) {
        out->Clear();
        if (report != nullptr) {
          report->truncated = true;
          report->corrupt = count - i;
        }
        return Status::DataLoss("malformed or truncated record for object " +
                                std::to_string(i))
            .WithFile(path)
            .WithOffset(record_start);
      }
      append_record();
      if (report != nullptr) ++report->loaded;
    }
    return Status::Ok();
  }

  // Version 2: framed records. A bad frame costs one object; the reader
  // resynchronises at the next frame. A frame that runs past the end of the
  // file means the tail is gone — keep the verified prefix.
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t payload_size = 0;
    uint64_t checksum = 0;
    if (!in.ReadU64(&payload_size) || !in.ReadU64(&checksum) ||
        payload_size > in.Remaining()) {
      if (report != nullptr) {
        report->truncated = true;
        report->corrupt += count - i;
      }
      break;
    }
    const char* payload = bytes.data() + in.Pos();
    in.Skip(payload_size);
    const bool verified =
        Fnv1a64(payload, static_cast<size_t>(payload_size)) == checksum &&
        DecodePayload(payload, static_cast<size_t>(payload_size), compressed,
                      &conservative, &progressive);
    if (!verified) {
      out->AppendCorruptPlaceholder();
      ReportCorrupt(report, i);
    } else {
      append_record();
      if (report != nullptr) ++report->loaded;
    }
  }
  return Status::Ok();
}

Status LoadAprilFileDetailed(const std::string& path,
                             std::vector<AprilApproximation>* out,
                             AprilLoadReport* report) {
  out->clear();
  AprilStore store;
  if (Status st = LoadAprilStore(path, &store, report); !st.ok()) return st;
  out->reserve(store.Count());
  for (size_t i = 0; i < store.Count(); ++i) {
    AprilApproximation april;
    const IntervalView c = store.Conservative(i);
    const IntervalView p = store.Progressive(i);
    april.conservative =
        IntervalList::FromSorted(std::vector<CellInterval>(c.begin(), c.end()));
    april.progressive =
        IntervalList::FromSorted(std::vector<CellInterval>(p.begin(), p.end()));
    april.usable = store.Usable(i);
    out->push_back(std::move(april));
  }
  return Status::Ok();
}

bool LoadAprilFile(const std::string& path,
                   std::vector<AprilApproximation>* out) {
  AprilLoadReport report;
  const Status status = LoadAprilFileDetailed(path, out, &report);
  if (!status.ok() || report.Degraded()) {
    return false;
  }
  return true;
}

}  // namespace stj
