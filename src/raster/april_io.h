#pragma once

#include <string>
#include <vector>

#include "src/raster/april.h"

namespace stj {

/// Binary (de)serialisation of APRIL approximations. The paper precomputes
/// the P and C lists once per dataset and loads them at join time; these
/// helpers provide that persistence.
///
/// Format: "APRL" magic, u32 version, u64 object count, then per object the
/// C and P lists as (u64 interval count, followed by u64 begin/end pairs).
/// All integers little-endian.

/// Writes \p approximations to \p path. Returns false on any I/O error.
bool SaveAprilFile(const std::string& path,
                   const std::vector<AprilApproximation>& approximations);

/// Reads approximations from \p path into \p out (cleared first). Detects
/// both the raw ("APRL") and compressed ("APRC") formats. Returns false on
/// I/O error or malformed content (including non-canonical lists).
bool LoadAprilFile(const std::string& path,
                   std::vector<AprilApproximation>* out);

/// Writes \p approximations in the compressed format: "APRC" magic, then per
/// list a varint interval count followed by varint-encoded gap/length deltas
/// (canonical lists have strictly positive gaps and lengths, so the deltas
/// are small and varints shrink them dramatically — typically 3-5x over the
/// raw fixed-width format).
bool SaveAprilFileCompressed(
    const std::string& path,
    const std::vector<AprilApproximation>& approximations);

}  // namespace stj
