#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/raster/april.h"
#include "src/raster/april_compressed.h"
#include "src/raster/april_store.h"
#include "src/util/status.h"

namespace stj {

/// Binary (de)serialisation of APRIL approximations. The paper precomputes
/// the P and C lists once per dataset and loads them at join time; these
/// helpers provide that persistence, hardened against truncated and
/// bit-flipped files.
///
/// Format (version 2): "APRL" (raw) or "APRC" (compressed) magic, u32
/// version, u64 object count, then one framed record per object:
///
///   u64 payload_bytes | u64 fnv1a64(payload) | payload
///
/// The raw payload holds the C and P lists as (u64 interval count, u64
/// begin/end pairs); the compressed payload varint-encodes gap/length deltas
/// (canonical lists have strictly positive gaps and lengths, so the deltas
/// are small and varints shrink them 3-5x over raw). The frame makes every
/// record independently verifiable and skippable: a corrupt record is
/// detected by its checksum and the reader resynchronises at the next frame,
/// so one flipped byte costs one object, not the file. Version-1 files (no
/// frames) are still read, but any corruption fails the whole load.
/// All integers native-endian (little-endian on every supported target).
///
/// Version 3 ("APRB" magic) keeps the version-2 frame layout — u64 size, u64
/// fnv1a64 checksum, payload — but the payload is the block codec of
/// interval_codec.h: per list a varint interval count and block count, the
/// skip headers (varint first_cell, range span, count, payload length), then
/// the concatenated block payloads. A v3 file loads either into a flat
/// AprilStore (records are decoded, so every existing consumer reads v3
/// transparently) or into a CompressedAprilStore that keeps the blocks for
/// the fused filter path. Beyond the checksum, every v3 record passes deep
/// codec validation at load; a record that verifies its checksum but fails
/// codec validation is isolated as a placeholder and counted separately
/// (codec_corrupt), since it indicates a writer bug or targeted corruption
/// rather than bit rot.

/// Per-load accounting of what a (possibly corrupt) APRIL file yielded.
struct AprilLoadReport {
  uint32_t version = 0;        ///< Format version encountered.
  bool compressed = false;     ///< "APRC" vs "APRL" payload encoding.
  uint64_t declared_count = 0; ///< Object count claimed by the header.
  uint64_t loaded = 0;         ///< Records decoded and verified.
  uint64_t corrupt = 0;        ///< Records unusable (bad checksum, undecodable
                               ///< payload, or missing due to truncation).
  /// Version-3 records whose frame checksum verified but whose blocked
  /// payload failed deep codec validation (interval_codec.h). Disjoint from
  /// `corrupt`; such records also become usable=false placeholders.
  uint64_t codec_corrupt = 0;
  bool truncated = false;      ///< File ended before declared_count records.
  /// Indices (into the declared object order) of unusable records (checksum
  /// or codec failures) that are physically present in the output as
  /// usable=false placeholders. A truncated tail is NOT enumerated here:
  /// every index >= the output's size is missing (see truncated /
  /// declared_count).
  std::vector<uint64_t> corrupt_indices;

  /// True when anything at all was lost.
  bool Degraded() const {
    return truncated || corrupt != 0 || codec_corrupt != 0;
  }
};

/// Writes \p approximations to \p path (version 2, raw payloads). Returns
/// false on any I/O error.
bool SaveAprilFile(const std::string& path,
                   const std::vector<AprilApproximation>& approximations);

/// Writes \p approximations in the compressed encoding (version 2, "APRC").
bool SaveAprilFileCompressed(
    const std::string& path,
    const std::vector<AprilApproximation>& approximations);

/// Store overloads: same file format, fed straight from the arena. A store
/// and the vector it was built from write byte-identical files.
bool SaveAprilStore(const std::string& path, const AprilStore& store);
bool SaveAprilStoreCompressed(const std::string& path, const AprilStore& store);

/// Writes \p store in the version-3 blocked codec ("APRB"). Corruption
/// placeholders are written as empty records, as the v2 writers do.
bool SaveAprilStoreBlocked(const std::string& path,
                           const CompressedAprilStore& store);

/// Reads a version-3 ("APRB") file into a CompressedAprilStore, keeping the
/// block codec intact for the fused filter path. Same tolerance semantics as
/// LoadAprilStore: checksum failures and codec-validation failures each cost
/// one record (placeholder + report entry); truncation keeps the verified
/// prefix. Returns InvalidArgument for non-v3 files.
Status LoadCompressedAprilStore(const std::string& path,
                                CompressedAprilStore* out,
                                AprilLoadReport* report = nullptr);

/// Reads approximations from \p path straight into an arena-backed store in
/// one pass (no per-object heap lists). Version-3 records are decoded to
/// flat intervals, so callers need not know which codec wrote the file.
/// Same tolerance and reporting
/// semantics as LoadAprilFileDetailed: corrupt version-2 records become
/// usable=false placeholder records so later records keep their object
/// index; truncation keeps the verified prefix; structural failures (and any
/// version-1 corruption) clear the store and return non-ok.
Status LoadAprilStore(const std::string& path, AprilStore* out,
                      AprilLoadReport* report = nullptr);

/// Reads approximations from \p path into \p out (cleared first), tolerating
/// per-record corruption in version-2 files: a record whose checksum or
/// payload fails verification is emitted as a usable=false placeholder (so
/// later records keep their object index) and listed in the report; a
/// truncated file yields the verified prefix with report.truncated set.
/// Returns a non-ok Status only for structural failures — missing file,
/// unreadable header, unknown magic/version, or (version-1 files) any
/// malformed content. \p report may be null.
Status LoadAprilFileDetailed(const std::string& path,
                             std::vector<AprilApproximation>* out,
                             AprilLoadReport* report = nullptr);

/// Strict convenience wrapper: true only when the load succeeded with zero
/// corrupt or missing records.
bool LoadAprilFile(const std::string& path,
                   std::vector<AprilApproximation>* out);

}  // namespace stj
