#include "src/raster/april_store.h"

namespace stj {

void AprilStore::AppendRecord(IntervalView conservative,
                              IntervalView progressive, bool usable) {
  arena_.insert(arena_.end(), conservative.begin(), conservative.end());
  p_begin_.push_back(arena_.size());
  arena_.insert(arena_.end(), progressive.begin(), progressive.end());
  rec_begin_.push_back(arena_.size());
  usable_.push_back(usable ? 1 : 0);
}

void AprilStore::Reserve(size_t records, size_t intervals) {
  arena_.reserve(intervals);
  rec_begin_.reserve(records + 1);
  p_begin_.reserve(records);
  usable_.reserve(records);
}

void AprilStore::Clear() {
  arena_.clear();
  rec_begin_.assign(1, 0);
  p_begin_.clear();
  usable_.clear();
}

AprilStore AprilStore::FromApproximations(
    const std::vector<AprilApproximation>& approximations) {
  AprilStore store;
  size_t intervals = 0;
  for (const AprilApproximation& a : approximations) {
    intervals += a.conservative.Size() + a.progressive.Size();
  }
  store.Reserve(approximations.size(), intervals);
  for (const AprilApproximation& a : approximations) {
    store.AppendRecord(a.conservative, a.progressive, a.usable);
  }
  return store;
}

size_t AprilStore::ByteSize() const {
  return arena_.size() * sizeof(CellInterval) +
         rec_begin_.size() * sizeof(uint64_t) +
         p_begin_.size() * sizeof(uint64_t) + usable_.size() * sizeof(uint8_t);
}

}  // namespace stj
