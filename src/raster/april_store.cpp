#include "src/raster/april_store.h"

#include "src/interval/interval_algebra.h"
#include "src/util/check.h"

namespace stj {

namespace {

// Canonical-form check for an arena-backed view (the IntervalList validator
// is not reachable from a raw view).
void CheckCanonical(IntervalView view, const char* what) {
  for (size_t i = 0; i < view.Size(); ++i) {
    STJ_CHECK_MSG(!view[i].Empty(), what);
    if (i > 0) {
      STJ_CHECK_MSG(view[i].begin > view[i - 1].end, what);
    }
  }
}

}  // namespace

void AprilStore::AppendRecord(IntervalView conservative,
                              IntervalView progressive, bool usable) {
  arena_.insert(arena_.end(), conservative.begin(), conservative.end());
  p_begin_.push_back(arena_.size());
  arena_.insert(arena_.end(), progressive.begin(), progressive.end());
  rec_begin_.push_back(arena_.size());
  usable_.push_back(usable ? 1 : 0);
}

void AprilStore::Reserve(size_t records, size_t intervals) {
  arena_.reserve(intervals);
  rec_begin_.reserve(records + 1);
  p_begin_.reserve(records);
  usable_.reserve(records);
}

void AprilStore::Clear() {
  arena_.clear();
  rec_begin_.assign(1, 0);
  p_begin_.clear();
  usable_.clear();
}

AprilStore AprilStore::FromApproximations(
    const std::vector<AprilApproximation>& approximations) {
  AprilStore store;
  size_t intervals = 0;
  for (const AprilApproximation& a : approximations) {
    intervals += a.conservative.Size() + a.progressive.Size();
  }
  store.Reserve(approximations.size(), intervals);
  for (const AprilApproximation& a : approximations) {
    store.AppendRecord(a.conservative, a.progressive, a.usable);
  }
  STJ_IF_INVARIANTS(store.ValidateInvariants());
  return store;
}

void AprilStore::ValidateInvariants() const {
  const size_t count = Count();
  STJ_CHECK_MSG(rec_begin_.size() == count + 1,
                "rec_begin must have Count()+1 entries");
  STJ_CHECK_MSG(usable_.size() == count, "one usable flag per record");
  STJ_CHECK_MSG(rec_begin_.front() == 0, "arena must start at offset 0");
  STJ_CHECK_MSG(rec_begin_.back() == arena_.size(),
                "rec_begin.back() must cover the whole arena");
  for (size_t i = 0; i < count; ++i) {
    STJ_CHECK_MSG(rec_begin_[i] <= p_begin_[i] &&
                      p_begin_[i] <= rec_begin_[i + 1],
                  "record offsets must be monotone and nested");
    const IntervalView c = Conservative(i);
    const IntervalView p = Progressive(i);
    CheckCanonical(c, "conservative list must be canonical");
    CheckCanonical(p, "progressive list must be canonical");
    STJ_CHECK_MSG(ListInside(p, c), "P must be a subset of C");
    if (!Usable(i)) {
      STJ_CHECK_MSG(c.Empty() && p.Empty(),
                    "corruption placeholders must carry no intervals");
    }
  }
}

size_t AprilStore::ByteSize() const {
  return arena_.size() * sizeof(CellInterval) +
         rec_begin_.size() * sizeof(uint64_t) +
         p_begin_.size() * sizeof(uint64_t) + usable_.size() * sizeof(uint8_t);
}

}  // namespace stj
