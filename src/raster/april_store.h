#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/interval/interval_list.h"
#include "src/raster/april.h"

namespace stj {

/// Arena-backed storage for a dataset's APRIL approximations.
///
/// All interval data lives in one flat CellInterval arena in CSR layout;
/// per-record offset tables mark where each record's Conservative and
/// Progressive lists begin. Record i occupies:
///
///   C_i = arena[rec_begin[i] .. p_begin[i])
///   P_i = arena[p_begin[i]   .. rec_begin[i+1])
///
/// Compared with a vector<AprilApproximation> (two heap vectors per object),
/// the arena costs three allocations total, keeps a whole dataset's
/// approximations contiguous for scan-friendly filtering, and loads from the
/// v2 file format in one pass (april_io.h). Records are read out as
/// lightweight non-owning IntervalView / AprilView values — the same types
/// the interval algebra and the intermediate filters consume — so the
/// topology layer is agnostic to which storage a dataset uses.
///
/// The store preserves the corruption-isolation semantics of the I/O layer:
/// a record can be appended as usable=false (placeholder keeping later
/// records index-aligned), and Usable(i) must gate any use of its views.
class AprilStore {
 public:
  AprilStore() = default;

  size_t Count() const { return p_begin_.size(); }
  bool Empty() const { return p_begin_.empty(); }

  /// False when the record is a corruption placeholder; its views are then
  /// empty and must not feed the filters (the pipeline refines instead).
  bool Usable(size_t i) const { return usable_[i] != 0; }

  IntervalView Conservative(size_t i) const {
    return IntervalView(arena_.data() + rec_begin_[i],
                        static_cast<size_t>(p_begin_[i] - rec_begin_[i]));
  }

  IntervalView Progressive(size_t i) const {
    return IntervalView(arena_.data() + p_begin_[i],
                        static_cast<size_t>(rec_begin_[i + 1] - p_begin_[i]));
  }

  AprilView View(size_t i) const {
    return AprilView(Conservative(i), Progressive(i));
  }

  /// Appends one record; the views' interval data is copied into the arena.
  void AppendRecord(IntervalView conservative, IntervalView progressive,
                    bool usable = true);

  /// Appends a usable=false placeholder with empty lists (degraded loads).
  void AppendCorruptPlaceholder() {
    AppendRecord(IntervalView(), IntervalView(), /*usable=*/false);
  }

  /// Pre-sizes the arena and offset tables (loading knows both counts).
  void Reserve(size_t records, size_t intervals);

  void Clear();

  /// Copies a legacy vector into arena form (preserving usable flags).
  static AprilStore FromApproximations(
      const std::vector<AprilApproximation>& approximations);

  /// Aborts (STJ_CHECK) if the CSR structure is inconsistent: offset-table
  /// sizes must agree with Count(), rec_begin/p_begin must be monotone and
  /// bracket each record inside the arena, rec_begin.back() must equal the
  /// arena size, every record's C and P lists must be canonical with P ⊆ C,
  /// and corruption placeholders must be empty. Always compiled (tests call
  /// it directly); automatic invocation sits behind STJ_IF_INVARIANTS in the
  /// bulk construction paths. O(arena size).
  void ValidateInvariants() const;

  /// Total in-memory footprint: arena + offset tables + flags. The interval
  /// payload alone (comparable to AprilApproximation::ByteSize sums) is
  /// IntervalByteSize().
  size_t ByteSize() const;
  size_t IntervalByteSize() const { return arena_.size() * sizeof(CellInterval); }

  /// Structural equality over arena bytes, offsets, and usable flags. Two
  /// stores built from the same records in the same order compare equal —
  /// the determinism check of the parallel builder relies on this.
  friend bool operator==(const AprilStore& a, const AprilStore& b) {
    return a.arena_ == b.arena_ && a.rec_begin_ == b.rec_begin_ &&
           a.p_begin_ == b.p_begin_ && a.usable_ == b.usable_;
  }

 private:
  std::vector<CellInterval> arena_;
  /// rec_begin_[i] = arena index of record i's C data; rec_begin_.back() =
  /// arena_.size() always, so rec_begin_ has Count()+1 entries.
  std::vector<uint64_t> rec_begin_{0};
  std::vector<uint64_t> p_begin_;  ///< Arena index of record i's P data.
  std::vector<uint8_t> usable_;
};

}  // namespace stj
