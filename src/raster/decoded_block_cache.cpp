#include "src/raster/decoded_block_cache.h"

#include <utility>

namespace stj {

namespace {

/// Fixed accounting overhead per entry: the list node bookkeeping and the
/// hash-map slot, estimated once — the budget is a working-set bound, not an
/// allocator audit.
constexpr size_t kEntryOverheadBytes = 96;

size_t EntryBytes(const std::vector<CellInterval>& c,
                  const std::vector<CellInterval>& p) {
  return kEntryOverheadBytes +
         (c.capacity() + p.capacity()) * sizeof(CellInterval);
}

}  // namespace

DecodedAprilCache::FetchOutcome DecodedAprilCache::Fetch(
    const CompressedAprilStore& store, uint32_t idx, AprilView* out) {
  // Missing or flagged-corrupt records are decided from the store's own
  // metadata — no cache traffic, exactly like Pipeline::CompressedAprilFor.
  if (idx >= store.Count() || !store.Usable(idx)) return FetchOutcome::kAbsent;

  const auto it = entries_.find(idx);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // touch: becomes MRU
    const Entry& entry = *it->second;
    if (entry.bad) {
      ++stats_.corrupt;
      return FetchOutcome::kCorrupt;
    }
    ++stats_.hits;
    *out = AprilView(
        IntervalView(entry.conservative.data(), entry.conservative.size()),
        IntervalView(entry.progressive.data(), entry.progressive.size()));
    return FetchOutcome::kHit;
  }

  ++stats_.misses;
  Entry entry;
  entry.key = idx;
  entry.bad = !store.DecodeRecord(idx, &entry.conservative, &entry.progressive);
  if (entry.bad) {
    // Negative entry: keep only the marker, not the partial decode.
    entry.conservative.clear();
    entry.conservative.shrink_to_fit();
    entry.progressive.clear();
    entry.progressive.shrink_to_fit();
  }
  entry.bytes = EntryBytes(entry.conservative, entry.progressive);

  lru_.push_front(std::move(entry));
  entries_[idx] = lru_.begin();
  bytes_ += lru_.front().bytes;

  // Evict from the LRU tail until the budget holds — but never the entry
  // just inserted, so one record always stays warm.
  while (bytes_ > budget_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    entries_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }

  const Entry& front = lru_.front();
  if (front.bad) {
    ++stats_.corrupt;
    return FetchOutcome::kCorrupt;
  }
  *out = AprilView(
      IntervalView(front.conservative.data(), front.conservative.size()),
      IntervalView(front.progressive.data(), front.progressive.size()));
  return FetchOutcome::kMiss;
}

}  // namespace stj
