#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/interval/interval_list.h"
#include "src/raster/april.h"
#include "src/raster/april_compressed.h"
#include "src/util/thread_annotations.h"

namespace stj {

/// Default per-worker decoded-record budget. A decoded tessellation record
/// is a few KB of CellIntervals, so this keeps the working set of a
/// Hilbert-ordered batch wave (the records of a few consecutive batches)
/// resident without competing with the PreparedCache for memory.
inline constexpr size_t kDefaultDecodedCacheBytes = size_t{8} << 20;

/// Telemetry of one DecodedAprilCache (merged across workers into
/// PipelineStats::decoded_* like the prepared_* counters).
struct DecodedCacheStats {
  uint64_t hits = 0;       ///< Record served from the cache.
  uint64_t misses = 0;     ///< Record decoded and inserted.
  uint64_t evictions = 0;  ///< Entries dropped to respect the budget.
  /// Lookups that hit a record whose blocked payload failed to decode (the
  /// caller falls back to MBR-narrowed refinement, and the failure itself is
  /// cached so a hot corrupt record is not re-decoded per pair).
  uint64_t corrupt = 0;
};

/// Bounded per-worker LRU of *decoded* CompressedAprilStore records, keyed
/// by object index (ROADMAP item 3 follow-up: the compressed-store filter
/// gap).
///
/// The blocked codec trades filter speed for footprint: the fused
/// block-skipping merges decode every touched block of a record again for
/// every pair the record participates in. Batched execution makes that
/// repetition systematic — a Hilbert-ordered batch wave touches the same
/// objects across many consecutive pairs — so decoding a hot record once to
/// flat canonical form and running the flat (SIMD) interval kernels over it
/// wins on every subsequent pair. The flat and compressed filter paths
/// compute identical decisions (the PR 7 differential suite pins this), so
/// the cache is a pure performance layer.
///
/// Corruption isolation: a record whose payload fails DecodeCompressed
/// (tampered bytes behind a valid usable flag) is cached as a negative
/// entry; every lookup reports it as unavailable — the same degraded-mode
/// signal as a usable=false placeholder — without re-attempting the decode.
/// The malformed record never feeds a filter and never aborts the join.
///
/// Eviction is by byte budget over the decoded interval payloads; the entry
/// just inserted is always admitted (a budget smaller than one record still
/// keeps exactly one record warm, preserving consecutive-pair reuse).
///
/// Not thread-safe by design: one instance per Pipeline side, one Pipeline
/// per worker (the same confinement contract as PreparedCache).
class DecodedAprilCache {
 public:
  STJ_THREAD_CONFINED(
      "one instance per Pipeline side, one Pipeline per worker (the same "
      "confinement contract as PreparedCache); views it returns stay "
      "worker-local");

  /// How one lookup was resolved. kHit/kMiss fill *out; kCorrupt and
  /// kAbsent are the degraded-mode signals (no views).
  enum class FetchOutcome : uint8_t {
    kHit,      ///< Served from the cache.
    kMiss,     ///< Decoded and inserted.
    kCorrupt,  ///< Payload fails to decode (cached negative entry).
    kAbsent,   ///< No such record, or flagged unusable by the store.
  };

  explicit DecodedAprilCache(size_t budget_bytes) : budget_(budget_bytes) {}

  /// Serves the decoded flat views of record \p idx from \p store into
  /// *out, decoding on a miss. kCorrupt/kAbsent mean the record cannot feed
  /// the filters — the same degraded-mode signal as a usable=false
  /// placeholder. The views point into cache-owned storage and stay valid
  /// until the entry is evicted, i.e. at most until the next Fetch on this
  /// cache.
  FetchOutcome Fetch(const CompressedAprilStore& store, uint32_t idx,
                     AprilView* out);

  const DecodedCacheStats& Stats() const { return stats_; }
  size_t budget_bytes() const { return budget_; }
  size_t bytes() const { return bytes_; }
  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    uint32_t key = 0;
    bool bad = false;  ///< Negative entry: payload failed to decode.
    size_t bytes = 0;
    std::vector<CellInterval> conservative;
    std::vector<CellInterval> progressive;
  };

  /// MRU at the front; the map points into the list for O(1) touch.
  std::list<Entry> lru_;
  std::unordered_map<uint32_t, std::list<Entry>::iterator> entries_;
  size_t budget_;
  size_t bytes_ = 0;
  DecodedCacheStats stats_;
};

}  // namespace stj
