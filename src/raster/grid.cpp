#include "src/raster/grid.h"

#include <algorithm>
#include <cmath>

namespace stj {

RasterGrid::RasterGrid(const Box& dataspace, uint32_t order)
    : dataspace_(dataspace.Inflated(
          1e-9 * std::max({dataspace.Width(), dataspace.Height(), 1.0}))),
      order_(order),
      cells_per_side_(1u << order) {
  cell_w_ = dataspace_.Width() / static_cast<double>(cells_per_side_);
  cell_h_ = dataspace_.Height() / static_cast<double>(cells_per_side_);
  inv_cell_w_ = 1.0 / cell_w_;
  inv_cell_h_ = 1.0 / cell_h_;
}

uint32_t RasterGrid::CellX(double x) const {
  const double t = (x - dataspace_.min.x) * inv_cell_w_;
  if (t <= 0.0) return 0;
  const uint32_t cx = static_cast<uint32_t>(t);
  return std::min(cx, cells_per_side_ - 1);
}

uint32_t RasterGrid::CellY(double y) const {
  const double t = (y - dataspace_.min.y) * inv_cell_h_;
  if (t <= 0.0) return 0;
  const uint32_t cy = static_cast<uint32_t>(t);
  return std::min(cy, cells_per_side_ - 1);
}

Box RasterGrid::CellBox(uint32_t cx, uint32_t cy) const {
  Box box;
  box.min = Point{ColumnX(cx), RowY(cy)};
  box.max = Point{ColumnX(cx + 1), RowY(cy + 1)};
  return box;
}

double RasterGrid::ColumnX(uint32_t cx) const {
  return dataspace_.min.x + static_cast<double>(cx) * cell_w_;
}

double RasterGrid::RowY(uint32_t cy) const {
  return dataspace_.min.y + static_cast<double>(cy) * cell_h_;
}

double RasterGrid::RowCenterY(uint32_t cy) const {
  return dataspace_.min.y + (static_cast<double>(cy) + 0.5) * cell_h_;
}

}  // namespace stj
