#pragma once

#include <cstdint>

#include "src/geometry/box.h"
#include "src/geometry/point.h"
#include "src/interval/interval_list.h"
#include "src/raster/hilbert.h"

namespace stj {

/// A fine uniform grid over a data space, with cells enumerated by the
/// Hilbert curve — the global grid both objects of a scenario are rastered
/// onto (the paper uses one independent 2^16 x 2^16 grid per scenario).
class RasterGrid {
 public:
  /// Covers \p dataspace with 2^order x 2^order cells. The dataspace is
  /// inflated by a hair so that objects on the boundary fall strictly inside.
  RasterGrid(const Box& dataspace, uint32_t order);

  uint32_t Order() const { return order_; }
  uint32_t CellsPerSide() const { return cells_per_side_; }
  const Box& Dataspace() const { return dataspace_; }

  double CellWidth() const { return cell_w_; }
  double CellHeight() const { return cell_h_; }

  /// Column of the cell containing x (clamped to the grid).
  uint32_t CellX(double x) const;

  /// Row of the cell containing y (clamped to the grid).
  uint32_t CellY(double y) const;

  /// The world-space rectangle of cell (cx, cy).
  Box CellBox(uint32_t cx, uint32_t cy) const;

  /// World x-coordinate of the left edge of column cx.
  double ColumnX(uint32_t cx) const;

  /// World y-coordinate of the bottom edge of row cy.
  double RowY(uint32_t cy) const;

  /// World y-coordinate of the center line of row cy.
  double RowCenterY(uint32_t cy) const;

  /// Hilbert id of cell (cx, cy).
  CellId CellIdOf(uint32_t cx, uint32_t cy) const {
    return HilbertXYToD(order_, cx, cy);
  }

 private:
  Box dataspace_;
  uint32_t order_;
  uint32_t cells_per_side_;
  double cell_w_;
  double cell_h_;
  double inv_cell_w_;
  double inv_cell_h_;
};

}  // namespace stj
