#include "src/raster/hilbert.h"

namespace stj {

namespace {

// One quadrant rotation/reflection step of the curve construction.
inline void Rotate(uint32_t n, uint32_t* x, uint32_t* y, uint32_t rx,
                   uint32_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      *x = n - 1 - *x;
      *y = n - 1 - *y;
    }
    const uint32_t t = *x;
    *x = *y;
    *y = t;
  }
}

}  // namespace

uint64_t HilbertXYToD(uint32_t order, uint32_t x, uint32_t y) {
  uint64_t d = 0;
  for (uint32_t s = order; s-- > 0;) {
    const uint32_t rx = (x >> s) & 1u;
    const uint32_t ry = (y >> s) & 1u;
    d += (static_cast<uint64_t>((3u * rx) ^ ry)) << (2 * s);
    Rotate(1u << s, &x, &y, rx, ry);
  }
  return d;
}

void HilbertDToXY(uint32_t order, uint64_t d, uint32_t* x, uint32_t* y) {
  uint32_t cx = 0;
  uint32_t cy = 0;
  for (uint32_t s = 0; s < order; ++s) {
    const uint32_t rx = static_cast<uint32_t>(d >> 1) & 1u;
    const uint32_t ry = static_cast<uint32_t>(d ^ rx) & 1u;
    Rotate(1u << s, &cx, &cy, rx, ry);
    cx += rx << s;
    cy += ry << s;
    d >>= 2;
  }
  *x = cx;
  *y = cy;
}

}  // namespace stj
