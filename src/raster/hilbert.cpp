#include "src/raster/hilbert.h"

#include <algorithm>

namespace stj {

namespace {

// One quadrant rotation/reflection step of the curve construction.
inline void Rotate(uint32_t n, uint32_t* x, uint32_t* y, uint32_t rx,
                   uint32_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      *x = n - 1 - *x;
      *y = n - 1 - *y;
    }
    const uint32_t t = *x;
    *x = *y;
    *y = t;
  }
}

inline void AppendCoalesce(std::vector<CellInterval>* out, uint64_t d) {
  if (!out->empty() && out->back().end == d) {
    ++out->back().end;
  } else {
    out->push_back(CellInterval{d, d + 1});
  }
}

// The four subquadrants of a square in curve order h = 0..3 and their
// position bits: h = (3*rx) ^ ry, inverted here.
constexpr uint32_t kRx[4] = {0, 0, 1, 1};
constexpr uint32_t kRy[4] = {0, 1, 1, 0};

// Emits the intervals of a one-cell-wide run inside a 2^k x 2^k square whose
// first curve position is d. The run is axis-aligned in the square's local
// frame: cells (x, fixed) for x in [lo, hi] when horizontal, (fixed, y) for
// y in [lo, hi] when vertical. Subquadrants are visited in curve order, so
// output positions are strictly increasing across the whole recursion.
//
// Entering subquadrant (rx, ry) applies the same frame transform the
// curve-index computation (HilbertXYToD's Rotate) applies to coordinates:
//   ry == 1:           identity
//   ry == 0, rx == 0:  (x, y) -> (y, x)            [transpose: axis flips]
//   ry == 0, rx == 1:  (x, y) -> (n-1-y, n-1-x)    [anti-transpose]
// A transposed horizontal run becomes a vertical run and vice versa, which
// is why both orientations thread through one recursion.
void DecomposeRun(uint32_t k, uint64_t d, bool vertical, uint32_t fixed,
                  uint32_t lo, uint32_t hi, std::vector<CellInterval>* out) {
  if (k == 0) {
    AppendCoalesce(out, d);
    return;
  }
  const uint32_t half = 1u << (k - 1);
  const uint32_t fixed_bit = (fixed >> (k - 1)) & 1u;
  for (uint32_t h = 0; h < 4; ++h) {
    const uint32_t rx = kRx[h];
    const uint32_t ry = kRy[h];
    // The run's fixed axis selects one half of the square; the span axis may
    // intersect both.
    if (fixed_bit != (vertical ? rx : ry)) continue;
    const uint32_t span_base = (vertical ? ry : rx) * half;
    const uint32_t a = std::max(lo, span_base);
    const uint32_t b = std::min(hi, span_base + half - 1);
    if (a > b) continue;
    const uint64_t child_d =
        d + (static_cast<uint64_t>(h) << (2 * (k - 1)));
    const uint32_t qf = fixed & (half - 1);
    const uint32_t qa = a - span_base;
    const uint32_t qb = b - span_base;
    if (ry == 1) {
      DecomposeRun(k - 1, child_d, vertical, qf, qa, qb, out);
    } else if (rx == 0) {
      DecomposeRun(k - 1, child_d, !vertical, qf, qa, qb, out);
    } else {
      DecomposeRun(k - 1, child_d, !vertical, half - 1 - qf, half - 1 - qb,
                   half - 1 - qa, out);
    }
  }
}

}  // namespace

uint64_t HilbertXYToD(uint32_t order, uint32_t x, uint32_t y) {
  uint64_t d = 0;
  for (uint32_t s = order; s-- > 0;) {
    const uint32_t rx = (x >> s) & 1u;
    const uint32_t ry = (y >> s) & 1u;
    d += (static_cast<uint64_t>((3u * rx) ^ ry)) << (2 * s);
    Rotate(1u << s, &x, &y, rx, ry);
  }
  return d;
}

void HilbertDToXY(uint32_t order, uint64_t d, uint32_t* x, uint32_t* y) {
  uint32_t cx = 0;
  uint32_t cy = 0;
  for (uint32_t s = 0; s < order; ++s) {
    const uint32_t rx = static_cast<uint32_t>(d >> 1) & 1u;
    const uint32_t ry = static_cast<uint32_t>(d ^ rx) & 1u;
    Rotate(1u << s, &cx, &cy, rx, ry);
    cx += rx << s;
    cy += ry << s;
    d >>= 2;
  }
  *x = cx;
  *y = cy;
}

void AppendHilbertRunIntervals(uint32_t order, uint32_t x_lo, uint32_t x_hi,
                               uint32_t y, std::vector<CellInterval>* out) {
  if (x_lo > x_hi) return;
  DecomposeRun(order, 0, /*vertical=*/false, y, x_lo, x_hi, out);
}

}  // namespace stj
