#pragma once

#include <cstdint>

namespace stj {

/// Hilbert space-filling curve on a 2^order x 2^order grid.
///
/// The curve enumerates all cells so that consecutive indices are adjacent
/// cells; APRIL relies on this locality to keep the number of intervals per
/// object near the square root of the number of covered cells (Sec. 2.3).
/// Supported orders: 1..31 (order 16 gives the paper's 2^16 x 2^16 grid).

/// Distance along the Hilbert curve of cell (x, y); x, y < 2^order.
uint64_t HilbertXYToD(uint32_t order, uint32_t x, uint32_t y);

/// Inverse: cell coordinates of curve position \p d.
void HilbertDToXY(uint32_t order, uint64_t d, uint32_t* x, uint32_t* y);

}  // namespace stj
