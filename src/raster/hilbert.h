#pragma once

#include <cstdint>
#include <vector>

#include "src/interval/interval_list.h"

namespace stj {

/// Hilbert space-filling curve on a 2^order x 2^order grid.
///
/// The curve enumerates all cells so that consecutive indices are adjacent
/// cells; APRIL relies on this locality to keep the number of intervals per
/// object near the square root of the number of covered cells (Sec. 2.3).
/// Supported orders: 1..31 (order 16 gives the paper's 2^16 x 2^16 grid).

/// Distance along the Hilbert curve of cell (x, y); x, y < 2^order.
uint64_t HilbertXYToD(uint32_t order, uint32_t x, uint32_t y);

/// Inverse: cell coordinates of curve position \p d.
void HilbertDToXY(uint32_t order, uint64_t d, uint32_t* x, uint32_t* y);

/// Appends the maximal intervals of curve positions covering the horizontal
/// cell run [x_lo, x_hi] x {y} to *out, in increasing curve order, coalescing
/// with out->back() when adjacent.
///
/// This is the output-sensitive primitive behind run-based APRIL
/// construction: instead of computing HilbertXYToD per cell and sorting, the
/// run is pushed down the quadrant recursion, visiting only subquadrants the
/// run intersects. A one-cell-high run meets at most two of the four
/// subquadrants per level, so the cost is O(run length + order) with no
/// per-cell index arithmetic, and the emitted intervals are already sorted.
void AppendHilbertRunIntervals(uint32_t order, uint32_t x_lo, uint32_t x_hi,
                               uint32_t y, std::vector<CellInterval>* out);

}  // namespace stj
