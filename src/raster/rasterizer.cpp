#include "src/raster/rasterizer.h"

#include <algorithm>
#include <cmath>

namespace stj {

namespace {

/// Resizes a vector-of-vectors to \p n rows, clearing (but keeping the heap
/// buffers of) every row that survives the resize. This is what makes the
/// scratch-reusing Rasterize overload allocation-free in steady state.
template <typename Row>
void ResetRows(std::vector<Row>* rows, size_t n) {
  const size_t keep = std::min(rows->size(), n);
  rows->resize(n);
  for (size_t i = 0; i < keep; ++i) (*rows)[i].clear();
}

}  // namespace

uint64_t RasterCoverage::PartialCount() const {
  uint64_t total = 0;
  for (const auto& row : partial_by_row) total += row.size();
  return total;
}

uint64_t RasterCoverage::FullCount() const {
  uint64_t total = 0;
  for (const auto& row : full_runs_by_row) {
    for (const auto& [first, last] : row) total += last - first + 1;
  }
  return total;
}

RasterCoverage Rasterizer::Rasterize(const Polygon& poly) const {
  RasterCoverage out;
  std::vector<std::vector<double>> crossings;
  RasterizeInto(poly, &crossings, &out);
  return out;
}

void Rasterizer::Rasterize(const Polygon& poly, RasterCoverage* out) {
  RasterizeInto(poly, &crossings_, out);
}

void Rasterizer::RasterizeInto(const Polygon& poly,
                               std::vector<std::vector<double>>* crossings,
                               RasterCoverage* out) const {
  out->x0 = 0;
  out->y0 = 0;
  if (poly.Empty()) {
    ResetRows(&out->partial_by_row, 0);
    ResetRows(&out->full_runs_by_row, 0);
    return;
  }
  const Box& bounds = poly.Bounds();

  // Raster window (with closed-boundary widening so that geometry exactly on
  // a cell boundary marks both adjacent cells).
  uint32_t wx0 = grid_->CellX(bounds.min.x);
  uint32_t wy0 = grid_->CellY(bounds.min.y);
  const uint32_t wy1 = grid_->CellY(bounds.max.y);
  if (wx0 > 0 && bounds.min.x == grid_->ColumnX(wx0)) --wx0;
  if (wy0 > 0 && bounds.min.y == grid_->RowY(wy0)) --wy0;
  out->x0 = wx0;
  out->y0 = wy0;
  const uint32_t num_rows = wy1 - wy0 + 1;
  ResetRows(&out->partial_by_row, num_rows);
  ResetRows(&out->full_runs_by_row, num_rows);

  // Crossings of the polygon boundary with each row's centre line, used for
  // the parity fill. Half-open vertex rule keeps parity consistent.
  ResetRows(crossings, num_rows);

  poly.ForEachEdge([&](const Segment& e) {
    const double ylo = std::min(e.a.y, e.b.y);
    const double yhi = std::max(e.a.y, e.b.y);
    const double xlo = std::min(e.a.x, e.b.x);
    const double xhi = std::max(e.a.x, e.b.x);
    uint32_t row_lo = grid_->CellY(ylo);
    const uint32_t row_hi = grid_->CellY(yhi);
    if (row_lo > 0 && ylo == grid_->RowY(row_lo)) --row_lo;

    // Mark boundary cells row by row.
    const double dx = e.b.x - e.a.x;
    const double dy = e.b.y - e.a.y;
    for (uint32_t row = row_lo; row <= row_hi; ++row) {
      double seg_xlo = xlo;
      double seg_xhi = xhi;
      if (dy != 0.0) {
        // X-extent of the edge within this row's y-slab.
        const double band_lo = std::max(ylo, grid_->RowY(row));
        const double band_hi = std::min(yhi, grid_->RowY(row + 1));
        const double x_at_lo = e.a.x + dx * ((band_lo - e.a.y) / dy);
        const double x_at_hi = e.a.x + dx * ((band_hi - e.a.y) / dy);
        seg_xlo = std::max(xlo, std::min(x_at_lo, x_at_hi));
        seg_xhi = std::min(xhi, std::max(x_at_lo, x_at_hi));
      }
      uint32_t cx_lo = grid_->CellX(seg_xlo);
      const uint32_t cx_hi = grid_->CellX(seg_xhi);
      if (cx_lo > 0 && seg_xlo == grid_->ColumnX(cx_lo)) --cx_lo;
      auto& row_cells = out->partial_by_row[row - wy0];
      for (uint32_t cx = cx_lo; cx <= cx_hi; ++cx) row_cells.push_back(cx);
    }

    // Record centre-line crossings (rows whose centre y is crossed by the
    // edge under the half-open rule a.y <= yc < b.y).
    if (dy != 0.0) {
      const double y_enter = std::min(e.a.y, e.b.y);
      const double y_exit = std::max(e.a.y, e.b.y);
      // Centre of row cy is RowY(cy) + h/2; find rows with
      // y_enter <= centre < y_exit.
      uint32_t first = grid_->CellY(y_enter);
      if (grid_->RowCenterY(first) < y_enter) ++first;
      uint32_t last = grid_->CellY(y_exit);
      if (last >= grid_->CellsPerSide() ||
          grid_->RowCenterY(last) >= y_exit) {
        if (last == 0) return;  // edge entirely below the first centre line
        --last;
      }
      for (uint32_t row = first; row <= last && row <= wy1; ++row) {
        if (row < wy0) continue;
        const double yc = grid_->RowCenterY(row);
        const double x = e.a.x + dx * ((yc - e.a.y) / dy);
        (*crossings)[row - wy0].push_back(x);
      }
    }
  });

  // Canonicalise partial cells and fill interior runs per row.
  for (uint32_t row = 0; row < num_rows; ++row) {
    auto& partial = out->partial_by_row[row];
    std::sort(partial.begin(), partial.end());
    partial.erase(std::unique(partial.begin(), partial.end()), partial.end());
    auto& xs = (*crossings)[row];
    std::sort(xs.begin(), xs.end());

    auto gap_is_inside = [&](uint32_t first_col) {
      // Parity of boundary crossings left of the first gap cell's centre.
      const double cx = grid_->ColumnX(first_col) + 0.5 * grid_->CellWidth();
      const size_t count = static_cast<size_t>(
          std::lower_bound(xs.begin(), xs.end(), cx) - xs.begin());
      return (count & 1) != 0;
    };

    auto& full_runs = out->full_runs_by_row[row];
    if (partial.empty()) continue;  // no boundary here: nothing inside either
    // Gaps strictly between consecutive partial cells can be interior; the
    // window margins (left of the first / right of the last partial cell)
    // are always exterior because the boundary bounds the polygon.
    for (size_t i = 0; i + 1 < partial.size(); ++i) {
      const uint32_t gap_first = partial[i] + 1;
      const uint32_t gap_last = partial[i + 1] - 1;
      if (gap_first > gap_last) continue;
      if (gap_is_inside(gap_first)) full_runs.emplace_back(gap_first, gap_last);
    }
  }
}

}  // namespace stj
