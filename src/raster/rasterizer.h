#pragma once

#include <cstdint>
#include <vector>

#include "src/geometry/polygon.h"
#include "src/raster/grid.h"

namespace stj {

/// Cell-level raster coverage of one polygon, organised by grid row.
///
/// `partial` holds the columns of cells the polygon boundary passes through;
/// `full_runs` holds maximal column ranges [first, last] of cells lying
/// entirely inside the polygon. Rows are indexed relative to `y0`.
struct RasterCoverage {
  uint32_t x0 = 0;  ///< Leftmost column of the raster window.
  uint32_t y0 = 0;  ///< Bottom row of the raster window.
  std::vector<std::vector<uint32_t>> partial_by_row;  ///< Sorted columns.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> full_runs_by_row;

  uint64_t PartialCount() const;
  uint64_t FullCount() const;
};

/// Rasterises polygons onto a RasterGrid.
///
/// Boundary (partial) cells are found by walking each edge through the rows
/// it spans and marking the contiguous column range the edge covers within
/// each row — a closed supercover, erring on the side of marking more cells,
/// which preserves the conservativeness of the C list. Interior (full) cells
/// are found per row by a scanline parity fill over the gaps between partial
/// cells: the polygon boundary crosses a row's centre line only inside
/// partial cells, so each gap is uniformly interior or exterior and a single
/// parity lookup per gap decides it. Total cost is O(edges + marked cells +
/// crossings log crossings).
class Rasterizer {
 public:
  explicit Rasterizer(const RasterGrid* grid) : grid_(grid) {}

  /// Computes the polygon's partial cells and full-cell runs into a freshly
  /// allocated coverage. Thread-safe on a shared instance.
  RasterCoverage Rasterize(const Polygon& poly) const;

  /// Allocation-lean overload for tight preprocessing loops: clears and
  /// reuses *out's row vectors and this rasterizer's internal crossing
  /// buffers. NOT safe to call concurrently on one instance — the parallel
  /// APRIL builder gives each worker its own Rasterizer.
  void Rasterize(const Polygon& poly, RasterCoverage* out);

 private:
  void RasterizeInto(const Polygon& poly,
                     std::vector<std::vector<double>>* crossings,
                     RasterCoverage* out) const;

  const RasterGrid* grid_;
  std::vector<std::vector<double>> crossings_;  ///< Overload scratch.
};

}  // namespace stj
