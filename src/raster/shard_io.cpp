#include "src/raster/shard_io.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "src/util/check.h"

namespace stj {

namespace {

// Same FNV-1a64 as the APRIL record framing (april_io.cpp keeps its copy
// file-local on purpose: the checksum is part of each format's contract,
// not a shared utility).
uint64_t Fnv1a64(const uint8_t* data, size_t size) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr char kManifestMagic[4] = {'S', 'H', 'D', 'M'};
constexpr char kShardMagic[4] = {'S', 'H', 'R', 'D'};
constexpr char kManifestName[] = "manifest.stj";
constexpr size_t kShardHeaderBytes = 40;
constexpr size_t kSegmentEntryBytes = 32;
/// ValidateShardSet caps the findings it keeps (further ones only count).
constexpr size_t kMaxIssues = 32;

void AppendRaw(std::vector<uint8_t>* out, const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  out->insert(out->end(), p, p + size);
}

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  AppendRaw(out, &v, sizeof(v));
}

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  AppendRaw(out, &v, sizeof(v));
}

void AppendF64(std::vector<uint8_t>* out, double v) {
  AppendRaw(out, &v, sizeof(v));
}

/// Bounds-checked sequential reader over a byte span (the manifest payload
/// and shard blobs are parsed through this; a short read means corruption,
/// never UB).
struct ByteReader {
  const uint8_t* data = nullptr;
  size_t size = 0;
  size_t off = 0;

  bool Read(void* out, size_t n) {
    if (size - off < n) return false;
    std::memcpy(out, data + off, n);
    off += n;
    return true;
  }
  bool ReadU32(uint32_t* v) { return Read(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return Read(v, sizeof(*v)); }
  bool ReadF64(double* v) { return Read(v, sizeof(*v)); }
};

size_t AlignUp(size_t v, size_t align) {
  return (v + align - 1) / align * align;
}

std::string PathJoin(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

std::string TileFileName(uint32_t tile) {
  std::string num = std::to_string(tile);
  if (num.size() < 6) num.insert(0, 6 - num.size(), '0');
  return "tile_" + num + ".shard";
}

Status WriteWholeFile(const std::string& path,
                      const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing").WithFile(path);
  }
  const size_t written = bytes.empty()
                             ? 0
                             : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != bytes.size() || !flushed) {
    return Status::IoError("short write").WithFile(path);
  }
  return Status::Ok();
}

/// Serialises one object's geometry: u32 id, u32 ring count, then per ring
/// a u32 vertex count and the (x, y) doubles. Unaligned by design — the
/// blob is deserialised (memcpy) on load, never cast.
void AppendObjectGeometry(std::vector<uint8_t>* out, const SpatialObject& o) {
  AppendU32(out, o.id);
  AppendU32(out, static_cast<uint32_t>(o.geometry.RingCount()));
  const auto append_ring = [out](const Ring& ring) {
    AppendU32(out, static_cast<uint32_t>(ring.Size()));
    for (const Point& p : ring.Vertices()) {
      AppendF64(out, p.x);
      AppendF64(out, p.y);
    }
  };
  append_ring(o.geometry.Outer());
  for (const Ring& hole : o.geometry.Holes()) append_ring(hole);
}

bool ParseObjectGeometry(ByteReader* r, SpatialObject* out) {
  uint32_t id = 0;
  uint32_t ring_count = 0;
  if (!r->ReadU32(&id) || !r->ReadU32(&ring_count)) return false;
  if (ring_count == 0) return false;
  std::vector<Ring> rings;
  rings.reserve(ring_count);
  for (uint32_t k = 0; k < ring_count; ++k) {
    uint32_t vertex_count = 0;
    if (!r->ReadU32(&vertex_count)) return false;
    // Each vertex is 16 bytes; reject counts the remaining span cannot hold
    // before reserving (a corrupt count must not drive a huge allocation).
    if (static_cast<uint64_t>(vertex_count) * 16 > r->size - r->off) {
      return false;
    }
    std::vector<Point> vertices;
    vertices.reserve(vertex_count);
    for (uint32_t v = 0; v < vertex_count; ++v) {
      Point p;
      if (!r->ReadF64(&p.x) || !r->ReadF64(&p.y)) return false;
      vertices.push_back(p);
    }
    rings.emplace_back(std::move(vertices));
  }
  Ring outer = std::move(rings.front());
  rings.erase(rings.begin());
  out->id = id;
  out->geometry = Polygon(std::move(outer), std::move(rings));
  return true;
}

/// One parsed shard segment-table entry.
struct SegmentEntry {
  uint32_t kind = 0;
  uint64_t offset = 0;
  uint64_t bytes = 0;
  uint64_t checksum = 0;
};

/// Everything LoadTile / ValidateShardSet trust after the structural layer:
/// the parsed header fields and the table indexed by segment kind.
struct ShardLayout {
  uint64_t tile_id = 0;
  uint64_t object_count = 0;
  SegmentEntry segments[shard::kNumSegments + 1];  // indexed by kind, 1-based
};

/// Parses and structurally verifies a shard file's header and segment
/// table: magic, version, table checksum, one entry per kind, every segment
/// in bounds and 8-aligned. Payload checksums are NOT read here.
Status ParseShardLayout(const uint8_t* data, size_t size,
                        const std::string& path, ShardLayout* out) {
  if (size < kShardHeaderBytes) {
    return Status::DataLoss("shard file shorter than its header")
        .WithFile(path);
  }
  ByteReader r{data, size, 0};
  char magic[4];
  uint32_t version = 0;
  uint32_t segment_count = 0;
  uint32_t reserved = 0;
  uint64_t table_fnv = 0;
  r.Read(magic, 4);
  r.ReadU32(&version);
  r.ReadU64(&out->tile_id);
  r.ReadU64(&out->object_count);
  r.ReadU32(&segment_count);
  r.ReadU32(&reserved);
  r.ReadU64(&table_fnv);
  if (std::memcmp(magic, kShardMagic, 4) != 0) {
    return Status::DataLoss("bad shard magic").WithFile(path);
  }
  if (version != shard::kVersion) {
    return Status::DataLoss("unsupported shard version " +
                            std::to_string(version))
        .WithFile(path);
  }
  if (segment_count != shard::kNumSegments) {
    return Status::DataLoss("unexpected segment count " +
                            std::to_string(segment_count))
        .WithFile(path);
  }
  const size_t table_bytes = segment_count * kSegmentEntryBytes;
  if (size - kShardHeaderBytes < table_bytes) {
    return Status::DataLoss("segment table truncated").WithFile(path);
  }
  if (Fnv1a64(data + kShardHeaderBytes, table_bytes) != table_fnv) {
    return Status::DataLoss("segment table checksum mismatch").WithFile(path);
  }
  for (uint32_t s = 0; s < segment_count; ++s) {
    SegmentEntry e;
    uint32_t pad = 0;
    r.ReadU32(&e.kind);
    r.ReadU32(&pad);
    r.ReadU64(&e.offset);
    r.ReadU64(&e.bytes);
    r.ReadU64(&e.checksum);
    if (e.kind == 0 || e.kind > shard::kNumSegments) {
      return Status::DataLoss("unknown segment kind " +
                              std::to_string(e.kind))
          .WithFile(path);
    }
    if (out->segments[e.kind].kind != 0) {
      return Status::DataLoss("duplicate segment kind " +
                              std::to_string(e.kind))
          .WithFile(path);
    }
    if (e.offset % 8 != 0 || e.offset < kShardHeaderBytes + table_bytes ||
        e.offset > size || size - e.offset < e.bytes) {
      return Status::DataLoss("segment " + std::to_string(e.kind) +
                              " out of bounds")
          .WithFile(path)
          .WithOffset(e.offset);
    }
    out->segments[e.kind] = e;
  }
  for (uint32_t kind = 1; kind <= shard::kNumSegments; ++kind) {
    if (out->segments[kind].kind == 0) {
      return Status::DataLoss("missing segment kind " + std::to_string(kind))
          .WithFile(path);
    }
  }
  return Status::Ok();
}

/// Checks that each typed segment has exactly the byte size the object
/// count (and the CSR tails) dictate. Touches only the *_begin arrays.
Status CheckSegmentShapes(const ShardLayout& layout, const uint8_t* data,
                          const std::string& path) {
  const uint64_t n = layout.object_count;
  const auto expect = [&](uint32_t kind, uint64_t bytes) -> Status {
    if (layout.segments[kind].bytes != bytes) {
      return Status::DataLoss(
                 "segment " + std::to_string(kind) + " holds " +
                 std::to_string(layout.segments[kind].bytes) +
                 " bytes, expected " + std::to_string(bytes))
          .WithFile(path);
    }
    return Status::Ok();
  };
  Status st;
  if (!(st = expect(shard::kObjectIds, n * 4)).ok()) return st;
  if (!(st = expect(shard::kGeometryIndex, (n + 1) * 8)).ok()) return st;
  if (!(st = expect(shard::kAprilHdrBegin, (n + 1) * 8)).ok()) return st;
  if (!(st = expect(shard::kAprilPHdrBegin, n * 8)).ok()) return st;
  if (!(st = expect(shard::kAprilByteBegin, (n + 1) * 8)).ok()) return st;
  if (!(st = expect(shard::kAprilPByteBegin, n * 8)).ok()) return st;
  if (!(st = expect(shard::kAprilCIntervals, n * 8)).ok()) return st;
  if (!(st = expect(shard::kAprilPIntervals, n * 8)).ok()) return st;
  if (!(st = expect(shard::kAprilUsable, n)).ok()) return st;

  const uint64_t* hdr_begin = reinterpret_cast<const uint64_t*>(
      data + layout.segments[shard::kAprilHdrBegin].offset);
  const uint64_t* p_hdr_begin = reinterpret_cast<const uint64_t*>(
      data + layout.segments[shard::kAprilPHdrBegin].offset);
  const uint64_t* byte_begin = reinterpret_cast<const uint64_t*>(
      data + layout.segments[shard::kAprilByteBegin].offset);
  const uint64_t* p_byte_begin = reinterpret_cast<const uint64_t*>(
      data + layout.segments[shard::kAprilPByteBegin].offset);
  if (hdr_begin[0] != 0 || byte_begin[0] != 0) {
    return Status::DataLoss("APRIL offset tables do not start at 0")
        .WithFile(path);
  }
  // The bracketing below is what makes FromSpans pointer arithmetic safe —
  // a corrupt begin-array must fail here, not fault in the filter.
  for (uint64_t i = 0; i < n; ++i) {
    if (hdr_begin[i] > p_hdr_begin[i] || p_hdr_begin[i] > hdr_begin[i + 1] ||
        byte_begin[i] > p_byte_begin[i] ||
        p_byte_begin[i] > byte_begin[i + 1]) {
      return Status::DataLoss("APRIL offset tables not monotone at record " +
                              std::to_string(i))
          .WithFile(path);
    }
  }
  if (!(st = expect(shard::kAprilHeaders,
                    hdr_begin[n] * sizeof(IntervalBlockHeader)))
           .ok()) {
    return st;
  }
  if (!(st = expect(shard::kAprilBytes, byte_begin[n])).ok()) return st;
  return Status::Ok();
}

}  // namespace

Status WriteShardSet(const std::string& dir, const TileGrid& grid,
                     const std::vector<uint32_t>& tile_begin,
                     const std::vector<uint32_t>& entries,
                     const std::vector<uint64_t>& tile_units,
                     const std::vector<SpatialObject>& objects,
                     const CompressedAprilStore& store,
                     ShardWriteStats* stats) {
  const uint32_t num_tiles = grid.Tiles();
  STJ_CHECK_MSG(store.Count() == objects.size(),
                "shard writer needs an APRIL record per object");
  STJ_CHECK(tile_begin.size() == static_cast<size_t>(num_tiles) + 1);
  STJ_CHECK(tile_units.size() == num_tiles);
  STJ_CHECK(tile_begin.back() == entries.size());

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create shard directory: " + ec.message())
        .WithFile(dir);
  }

  ShardWriteStats local;
  std::vector<ShardTileInfo> infos(num_tiles);
  for (uint32_t t = 0; t < num_tiles; ++t) {
    const uint32_t* ids = entries.data() + tile_begin[t];
    const uint64_t n = tile_begin[t + 1] - tile_begin[t];

    // Eager segments: global ids and the serialised geometry.
    std::vector<uint8_t> geom_blob;
    std::vector<uint8_t> geom_index;
    geom_index.reserve((n + 1) * 8);
    AppendU64(&geom_index, 0);
    for (uint64_t i = 0; i < n; ++i) {
      AppendObjectGeometry(&geom_blob, objects[ids[i]]);
      AppendU64(&geom_index, geom_blob.size());
    }

    // APRIL slice: verbatim record copies, so the per-tile arenas are
    // byte-identical to the dataset records they came from.
    CompressedAprilStore slice;
    for (uint64_t i = 0; i < n; ++i) {
      slice.AppendRecordFrom(store, ids[i]);
    }
    const CompressedStoreSpans& s = slice.Spans();

    struct Payload {
      uint32_t kind;
      const void* data;
      uint64_t bytes;
    };
    const Payload payloads[shard::kNumSegments] = {
        {shard::kObjectIds, ids, n * 4},
        {shard::kGeometryIndex, geom_index.data(), geom_index.size()},
        {shard::kGeometryBlob, geom_blob.data(), geom_blob.size()},
        {shard::kAprilHeaders, s.headers,
         s.hdr_begin[n] * sizeof(IntervalBlockHeader)},
        {shard::kAprilBytes, s.bytes, s.byte_begin[n]},
        {shard::kAprilHdrBegin, s.hdr_begin, (n + 1) * 8},
        {shard::kAprilPHdrBegin, s.p_hdr_begin, n * 8},
        {shard::kAprilByteBegin, s.byte_begin, (n + 1) * 8},
        {shard::kAprilPByteBegin, s.p_byte_begin, n * 8},
        {shard::kAprilCIntervals, s.c_intervals, n * 8},
        {shard::kAprilPIntervals, s.p_intervals, n * 8},
        {shard::kAprilUsable, s.usable, n},
    };

    // Lay segments out page-aligned, serialise the table, then assemble.
    const size_t table_bytes = shard::kNumSegments * kSegmentEntryBytes;
    size_t cursor = kShardHeaderBytes + table_bytes;
    std::vector<uint8_t> table;
    table.reserve(table_bytes);
    size_t file_size = cursor;
    uint64_t offsets[shard::kNumSegments];
    for (uint32_t i = 0; i < shard::kNumSegments; ++i) {
      cursor = AlignUp(cursor, shard::kPageAlign);
      offsets[i] = cursor;
      AppendU32(&table, payloads[i].kind);
      AppendU32(&table, 0);
      AppendU64(&table, cursor);
      AppendU64(&table, payloads[i].bytes);
      AppendU64(&table,
                Fnv1a64(static_cast<const uint8_t*>(payloads[i].data),
                        payloads[i].bytes));
      cursor += payloads[i].bytes;
      file_size = cursor;
    }

    std::vector<uint8_t> file;
    file.reserve(file_size);
    AppendRaw(&file, kShardMagic, 4);
    AppendU32(&file, shard::kVersion);
    AppendU64(&file, t);
    AppendU64(&file, n);
    AppendU32(&file, shard::kNumSegments);
    AppendU32(&file, 0);
    AppendU64(&file, Fnv1a64(table.data(), table.size()));
    AppendRaw(&file, table.data(), table.size());
    for (uint32_t i = 0; i < shard::kNumSegments; ++i) {
      file.resize(offsets[i], 0);  // zero padding up to the aligned offset
      AppendRaw(&file, payloads[i].data, payloads[i].bytes);
    }

    const std::string path = PathJoin(dir, TileFileName(t));
    Status st = WriteWholeFile(path, file);
    if (!st.ok()) return st;
    infos[t] = ShardTileInfo{n, tile_units[t], file.size()};
    local.bytes_written += file.size();
    ++local.tiles;
  }

  // Manifest last: its presence marks a complete shard set.
  std::vector<uint8_t> payload;
  AppendU64(&payload, objects.size());
  AppendF64(&payload, grid.domain.min.x);
  AppendF64(&payload, grid.domain.min.y);
  AppendF64(&payload, grid.domain.max.x);
  AppendF64(&payload, grid.domain.max.y);
  AppendU32(&payload, grid.columns);
  AppendU32(&payload, grid.rows);
  for (const double b : grid.x_bounds) AppendF64(&payload, b);
  for (const double b : grid.y_bounds) AppendF64(&payload, b);
  AppendU32(&payload, num_tiles);
  for (const ShardTileInfo& info : infos) {
    AppendU64(&payload, info.object_count);
    AppendU64(&payload, info.units);
    AppendU64(&payload, info.file_bytes);
  }
  std::vector<uint8_t> manifest;
  manifest.reserve(4 + 4 + 16 + payload.size());
  AppendRaw(&manifest, kManifestMagic, 4);
  AppendU32(&manifest, shard::kVersion);
  AppendU64(&manifest, payload.size());
  AppendU64(&manifest, Fnv1a64(payload.data(), payload.size()));
  AppendRaw(&manifest, payload.data(), payload.size());
  Status st = WriteWholeFile(PathJoin(dir, kManifestName), manifest);
  if (!st.ok()) return st;
  local.bytes_written += manifest.size();

  if (stats != nullptr) *stats = local;
  return Status::Ok();
}

Status ShardSet::Open(const std::string& dir, ShardSet* out) {
  const std::string path = PathJoin(dir, kManifestName);
  MappedFile map;
  Status st = MappedFile::Open(path, &map);
  if (!st.ok()) return st;
  if (map.Size() < 24) {
    return Status::DataLoss("manifest shorter than its frame").WithFile(path);
  }
  ByteReader r{map.Data(), map.Size(), 0};
  char magic[4];
  uint32_t version = 0;
  uint64_t payload_bytes = 0;
  uint64_t payload_fnv = 0;
  r.Read(magic, 4);
  r.ReadU32(&version);
  r.ReadU64(&payload_bytes);
  r.ReadU64(&payload_fnv);
  if (std::memcmp(magic, kManifestMagic, 4) != 0) {
    return Status::DataLoss("bad manifest magic").WithFile(path);
  }
  if (version != shard::kVersion) {
    return Status::DataLoss("unsupported manifest version " +
                            std::to_string(version))
        .WithFile(path);
  }
  if (map.Size() - r.off != payload_bytes) {
    return Status::DataLoss("manifest payload size mismatch").WithFile(path);
  }
  if (Fnv1a64(map.Data() + r.off, payload_bytes) != payload_fnv) {
    return Status::DataLoss("manifest payload checksum mismatch")
        .WithFile(path);
  }

  ShardSet set;
  set.dir_ = dir;
  TileGrid& grid = set.grid_;
  const Status corrupt =
      Status::DataLoss("manifest payload truncated").WithFile(path);
  if (!r.ReadU64(&set.total_objects_)) return corrupt;
  if (!r.ReadF64(&grid.domain.min.x) || !r.ReadF64(&grid.domain.min.y) ||
      !r.ReadF64(&grid.domain.max.x) || !r.ReadF64(&grid.domain.max.y)) {
    return corrupt;
  }
  if (!r.ReadU32(&grid.columns) || !r.ReadU32(&grid.rows)) return corrupt;
  if (grid.columns == 0 || grid.rows == 0 ||
      static_cast<uint64_t>(grid.columns) * grid.rows > (1u << 24)) {
    return Status::DataLoss("implausible grid shape").WithFile(path);
  }
  grid.x_bounds.resize(static_cast<size_t>(grid.columns) + 1);
  for (double& b : grid.x_bounds) {
    if (!r.ReadF64(&b)) return corrupt;
  }
  grid.y_bounds.resize(static_cast<size_t>(grid.columns) * (grid.rows + 1));
  for (double& b : grid.y_bounds) {
    if (!r.ReadF64(&b)) return corrupt;
  }
  if (!std::is_sorted(grid.x_bounds.begin(), grid.x_bounds.end())) {
    return Status::DataLoss("column boundaries not sorted").WithFile(path);
  }
  for (uint32_t c = 0; c < grid.columns; ++c) {
    const double* yb =
        grid.y_bounds.data() + static_cast<size_t>(c) * (grid.rows + 1);
    if (!std::is_sorted(yb, yb + grid.rows + 1)) {
      return Status::DataLoss("row boundaries not sorted").WithFile(path);
    }
  }
  uint32_t tile_count = 0;
  if (!r.ReadU32(&tile_count)) return corrupt;
  if (tile_count != grid.Tiles()) {
    return Status::DataLoss("tile table does not match the grid shape")
        .WithFile(path);
  }
  set.tiles_.resize(tile_count);
  for (ShardTileInfo& info : set.tiles_) {
    if (!r.ReadU64(&info.object_count) || !r.ReadU64(&info.units) ||
        !r.ReadU64(&info.file_bytes)) {
      return corrupt;
    }
  }
  if (r.off != map.Size()) {
    return Status::DataLoss("trailing bytes after the tile table")
        .WithFile(path);
  }
  *out = std::move(set);
  return Status::Ok();
}

uint64_t ShardSet::TotalShardBytes() const {
  uint64_t total = 0;
  for (const ShardTileInfo& info : tiles_) total += info.file_bytes;
  return total;
}

std::string ShardSet::TilePath(uint32_t tile) const {
  return PathJoin(dir_, TileFileName(tile));
}

Status ShardSet::LoadTile(uint32_t t, LoadedShard* out) const {
  STJ_CHECK(t < Tiles());
  const std::string path = TilePath(t);
  LoadedShard shard;
  shard.tile = t;
  Status st = MappedFile::Open(path, &shard.map);
  if (!st.ok()) return st;
  const uint8_t* data = shard.map.Data();
  const size_t size = shard.map.Size();

  ShardLayout layout;
  st = ParseShardLayout(data, size, path, &layout);
  if (!st.ok()) return st;
  if (layout.tile_id != t) {
    return Status::DataLoss("shard names tile " +
                            std::to_string(layout.tile_id) + ", expected " +
                            std::to_string(t))
        .WithFile(path);
  }
  if (layout.object_count != tiles_[t].object_count) {
    return Status::DataLoss("shard object count disagrees with the manifest")
        .WithFile(path);
  }
  st = CheckSegmentShapes(layout, data, path);
  if (!st.ok()) return st;

  const uint64_t n = layout.object_count;
  const SegmentEntry& ids_seg = layout.segments[shard::kObjectIds];
  const SegmentEntry& index_seg = layout.segments[shard::kGeometryIndex];
  const SegmentEntry& blob_seg = layout.segments[shard::kGeometryBlob];

  shard.ids.resize(n);
  std::memcpy(shard.ids.data(), data + ids_seg.offset, ids_seg.bytes);

  const uint64_t* geom_index =
      reinterpret_cast<const uint64_t*>(data + index_seg.offset);
  if (geom_index[0] != 0 || geom_index[n] != blob_seg.bytes) {
    return Status::DataLoss("geometry index does not span the blob")
        .WithFile(path);
  }
  shard.objects.resize(n);
  shard.mbrs.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (geom_index[i] > geom_index[i + 1]) {
      return Status::DataLoss("geometry index not monotone at record " +
                              std::to_string(i))
          .WithFile(path);
    }
    ByteReader r{data + blob_seg.offset + geom_index[i],
                 static_cast<size_t>(geom_index[i + 1] - geom_index[i]), 0};
    if (!ParseObjectGeometry(&r, &shard.objects[i]) || r.off != r.size) {
      return Status::DataLoss("malformed geometry record " +
                              std::to_string(i))
          .WithFile(path)
          .WithOffset(blob_seg.offset + geom_index[i]);
    }
    shard.mbrs.push_back(shard.objects[i].geometry.Bounds());
  }

  // The APRIL arenas stay in the mapping: FromSpans aims the store straight
  // at the page-aligned segments, so nothing below is copied or faulted
  // until the filter touches it.
  CompressedStoreSpans spans;
  spans.headers = reinterpret_cast<const IntervalBlockHeader*>(
      data + layout.segments[shard::kAprilHeaders].offset);
  spans.bytes = data + layout.segments[shard::kAprilBytes].offset;
  spans.hdr_begin = reinterpret_cast<const uint64_t*>(
      data + layout.segments[shard::kAprilHdrBegin].offset);
  spans.p_hdr_begin = reinterpret_cast<const uint64_t*>(
      data + layout.segments[shard::kAprilPHdrBegin].offset);
  spans.byte_begin = reinterpret_cast<const uint64_t*>(
      data + layout.segments[shard::kAprilByteBegin].offset);
  spans.p_byte_begin = reinterpret_cast<const uint64_t*>(
      data + layout.segments[shard::kAprilPByteBegin].offset);
  spans.c_intervals = reinterpret_cast<const uint64_t*>(
      data + layout.segments[shard::kAprilCIntervals].offset);
  spans.p_intervals = reinterpret_cast<const uint64_t*>(
      data + layout.segments[shard::kAprilPIntervals].offset);
  spans.usable = data + layout.segments[shard::kAprilUsable].offset;
  spans.count = n;
  shard.cstore = CompressedAprilStore::FromSpans(spans);

  shard.eager_bytes =
      kShardHeaderBytes + shard::kNumSegments * kSegmentEntryBytes +
      ids_seg.bytes + index_seg.bytes + blob_seg.bytes +
      // The offset tables and flags are read by the shape checks above.
      (n + 1) * 16 + n * 32 + n;
  shard.resident_bytes = shard.map.Size() + ids_seg.bytes + blob_seg.bytes +
                         shard.mbrs.size() * sizeof(Box);
  *out = std::move(shard);
  return Status::Ok();
}

Status ValidateShardSet(const std::string& dir, ShardCheckReport* report) {
  ShardCheckReport local;
  const auto issue = [&local](uint32_t tile, const std::string& what) {
    if (local.issues.size() < kMaxIssues) {
      local.issues.push_back("tile " + std::to_string(tile) + ": " + what);
    } else {
      ++local.issues_dropped;
    }
  };

  ShardSet set;
  Status st = ShardSet::Open(dir, &set);
  if (!st.ok()) return st;
  local.tiles = set.Tiles();

  for (uint32_t t = 0; t < set.Tiles(); ++t) {
    const std::string path = set.TilePath(t);
    bool corrupt = false;
    MappedFile map;
    Status tile_st = MappedFile::Open(path, &map);
    if (!tile_st.ok()) {
      issue(t, tile_st.ToString());
      ++local.tiles_corrupt;
      continue;
    }
    if (map.Size() != set.Tile(t).file_bytes) {
      issue(t, "file holds " + std::to_string(map.Size()) +
                   " bytes, manifest says " +
                   std::to_string(set.Tile(t).file_bytes));
      corrupt = true;
    }
    ShardLayout layout;
    tile_st = ParseShardLayout(map.Data(), map.Size(), path, &layout);
    if (tile_st.ok() && layout.tile_id != t) {
      tile_st = Status::DataLoss("shard names tile " +
                                 std::to_string(layout.tile_id))
                    .WithFile(path);
    }
    if (tile_st.ok() && layout.object_count != set.Tile(t).object_count) {
      tile_st =
          Status::DataLoss("shard object count disagrees with the manifest")
              .WithFile(path);
    }
    if (tile_st.ok()) {
      tile_st = CheckSegmentShapes(layout, map.Data(), path);
    }
    if (!tile_st.ok()) {
      issue(t, tile_st.ToString());
      ++local.tiles_corrupt;
      continue;
    }
    // The full payload audit the join path skips: every segment's bytes
    // are read and checksummed.
    for (uint32_t kind = 1; kind <= shard::kNumSegments; ++kind) {
      const SegmentEntry& e = layout.segments[kind];
      const uint64_t fnv = Fnv1a64(map.Data() + e.offset, e.bytes);
      ++local.segments_checked;
      local.bytes_checked += e.bytes;
      if (fnv != e.checksum) {
        issue(t, "segment " + std::to_string(kind) + " checksum mismatch");
        corrupt = true;
      }
    }
    if (corrupt) ++local.tiles_corrupt;
  }
  *report = local;
  return Status::Ok();
}

bool ResolveShardSetDir(const std::string& path, std::string* dir) {
  const auto is_readable = [](const std::string& p) {
    std::FILE* f = std::fopen(p.c_str(), "rb");
    if (f == nullptr) return false;
    std::fclose(f);
    return true;
  };
  if (is_readable(PathJoin(path, kManifestName))) {
    *dir = path;
    return true;
  }
  const std::string suffix = kManifestName;
  if (path.size() >= suffix.size() &&
      path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0 &&
      is_readable(path)) {
    *dir = path.size() == suffix.size()
               ? std::string(".")
               : path.substr(0, path.size() - suffix.size() - 1);
    if (dir->empty()) *dir = "/";
    return true;
  }
  return false;
}

}  // namespace stj
