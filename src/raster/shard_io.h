#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/geometry/polygon.h"
#include "src/geometry/tile_grid.h"
#include "src/raster/april_compressed.h"
#include "src/util/mmap_file.h"
#include "src/util/status.h"

namespace stj {

/// Tile-sharded, mmap-backed persistence of one dataset — the out-of-core
/// storage layer (ROADMAP item 2). A *shard set* is a directory holding one
/// manifest plus one shard file per tile of a TileGrid partition
/// (src/join/partitioner.h computes the grid; this layer only persists it).
///
/// Layout (all integers native-endian, like the APRIL v2/v3 formats):
///
///   <dir>/manifest.stj
///     "SHDM" magic | u32 version | u64 payload_bytes | u64 fnv1a64(payload)
///     | payload — the v2/v3 framed+checksummed convention. The payload
///     carries the dataset object count, the TileGrid (domain, columns,
///     rows, boundary runs) and per tile: object count, computational
///     units, shard file byte size.
///
///   <dir>/tile_NNNNNN.shard      (one per tile, NNNNNN = tile id)
///     header   "SHRD" | u32 version | u64 tile_id | u64 object_count
///              | u32 segment_count | u32 reserved | u64 table_fnv
///     table    segment_count x { u32 kind | u32 reserved | u64 offset
///              | u64 bytes | u64 fnv1a64(payload) }
///     payload  one span per segment, each offset page-aligned (4096)
///
/// Segments persist the tile's slice of the dataset: the global object
/// indices, the serialised geometry (an offset index plus a ring/vertex
/// blob — deserialised on load), and the nine CSR arrays of the tile's
/// CompressedAprilStore written verbatim. Page alignment makes every typed
/// array directly addressable in the mapping, so LoadTile serves the APRIL
/// arenas *zero-copy*: the tile's CompressedAprilStore is
/// CompressedAprilStore::FromSpans over pointers into the mapping, pages
/// fault in only when the filter actually touches a block, and evicting the
/// shard is munmap — no deserialisation on either side of the cache.
///
/// Integrity: the manifest payload and each segment carry fnv1a64
/// checksums, and the shard header checksums its own segment table. The
/// join path verifies only the structural layer it must trust (header,
/// table, array bounds/CSR tails) — checksumming segment payloads at load
/// would fault every page in and defeat laziness. ValidateShardSet (the
/// aprilcheck path) does read and verify every payload checksum.
namespace shard {

inline constexpr uint32_t kVersion = 1;
inline constexpr size_t kPageAlign = 4096;

/// Segment kinds of a shard file, in table order.
enum SegmentKind : uint32_t {
  kObjectIds = 1,      ///< u32[object_count] global dataset indices.
  kGeometryIndex = 2,  ///< u64[object_count+1] offsets into kGeometryBlob.
  kGeometryBlob = 3,   ///< Per object: u32 id, u32 rings, per ring u32
                       ///< vertex count + (f64 x, f64 y) run.
  kAprilHeaders = 4,   ///< IntervalBlockHeader[hdr_begin[n]].
  kAprilBytes = 5,     ///< uint8[byte_begin[n]] codec payload.
  kAprilHdrBegin = 6,  ///< u64[n+1].
  kAprilPHdrBegin = 7, ///< u64[n].
  kAprilByteBegin = 8, ///< u64[n+1].
  kAprilPByteBegin = 9,///< u64[n].
  kAprilCIntervals = 10,  ///< u64[n].
  kAprilPIntervals = 11,  ///< u64[n].
  kAprilUsable = 12,      ///< u8[n].
};
inline constexpr uint32_t kNumSegments = 12;

}  // namespace shard

/// Per-tile accounting carried by the manifest.
struct ShardTileInfo {
  uint64_t object_count = 0;
  uint64_t units = 0;       ///< Computational units (partitioner weights).
  uint64_t file_bytes = 0;  ///< Size of the tile's shard file.
};

/// Writer telemetry.
struct ShardWriteStats {
  uint32_t tiles = 0;
  uint64_t bytes_written = 0;  ///< Shard files + manifest.
};

/// Persists one dataset as a shard set under \p dir (created if needed;
/// existing manifest/shard files are overwritten). \p tile_begin/\p entries
/// are the partitioner's CSR assignment over \p grid (entries hold dataset
/// indices; an object appears under every tile its MBR overlaps), \p
/// tile_units the per-tile unit totals, and \p store the dataset's
/// compressed APRIL storage, index-aligned with \p objects. Per-tile APRIL
/// slices are copied verbatim (never re-encoded), so a loaded tile record
/// is byte-identical to the dataset record it came from.
[[nodiscard]] Status WriteShardSet(const std::string& dir, const TileGrid& grid,
                     const std::vector<uint32_t>& tile_begin,
                     const std::vector<uint32_t>& entries,
                     const std::vector<uint64_t>& tile_units,
                     const std::vector<SpatialObject>& objects,
                     const CompressedAprilStore& store,
                     ShardWriteStats* stats = nullptr);

/// One tile, resident: the mapping plus everything deserialised off it.
/// The cstore references the mapping (zero-copy) — LoadedShard must be kept
/// alive as one unit, which the scheduler's shard cache does.
struct LoadedShard {
  uint32_t tile = 0;
  MappedFile map;
  std::vector<uint32_t> ids;           ///< Global dataset indices, ascending.
  std::vector<SpatialObject> objects;  ///< Deserialised geometry, local order.
  std::vector<Box> mbrs;               ///< Local MBRs (filter input).
  CompressedAprilStore cstore;         ///< Mapped (FromSpans) APRIL slice.
  /// Cache/budget footprint: mapped bytes plus the deserialised heap
  /// estimate. What the scheduler charges against ExecContext::TryCharge.
  size_t resident_bytes = 0;
  /// Bytes eagerly materialised at load time (header, table, ids, geometry)
  /// — the part of the file a load *must* fault in. The APRIL segments
  /// (mapped bytes beyond this) fault lazily per touched page.
  uint64_t eager_bytes = 0;
};

/// Read access to a shard set: the manifest is parsed once, tiles are
/// mapped on demand. Open() trusts only what it verifies (magic, version,
/// manifest frame checksum, grid/tile-table shape).
class ShardSet {
 public:
  /// Parses and verifies <dir>/manifest.stj.
  [[nodiscard]] static Status Open(const std::string& dir, ShardSet* out);

  const std::string& Dir() const { return dir_; }
  const TileGrid& Grid() const { return grid_; }
  uint32_t Tiles() const { return static_cast<uint32_t>(tiles_.size()); }
  uint64_t TotalObjects() const { return total_objects_; }
  const ShardTileInfo& Tile(uint32_t t) const { return tiles_[t]; }

  /// Sum of all shard file sizes — the "all resident" byte figure cache
  /// budgets are expressed against.
  [[nodiscard]] uint64_t TotalShardBytes() const;

  std::string TilePath(uint32_t tile) const;

  /// Maps tile \p t and deserialises its eager segments. Structural
  /// verification only (see file comment); kDataLoss on any mismatch.
  [[nodiscard]] Status LoadTile(uint32_t t, LoadedShard* out) const;

 private:
  std::string dir_;
  TileGrid grid_;
  std::vector<ShardTileInfo> tiles_;
  uint64_t total_objects_ = 0;
};

/// aprilcheck's view of a shard set audit.
struct ShardCheckReport {
  uint32_t tiles = 0;          ///< Tiles the manifest declares.
  uint32_t tiles_corrupt = 0;  ///< Tiles with any failed check.
  uint64_t segments_checked = 0;
  uint64_t bytes_checked = 0;
  /// Human-readable findings, capped (further findings only count).
  std::vector<std::string> issues;
  uint64_t issues_dropped = 0;

  bool Corrupt() const { return tiles_corrupt != 0; }
};

/// Full integrity audit of a shard set: manifest frame, every tile's
/// header + segment table, every segment's payload checksum, and
/// cross-checks against the manifest (object counts, file sizes). Unlike
/// the join path this reads every byte. A non-ok Status means the manifest
/// itself was unreadable (structural failure); per-tile corruption is
/// reported through \p report, mirroring the v2/v3 record-isolation
/// behaviour at tile granularity.
[[nodiscard]] Status ValidateShardSet(const std::string& dir, ShardCheckReport* report);

/// True when \p path names a shard set the aprilcheck command should route
/// to ValidateShardSet: a directory containing manifest.stj (detected by
/// opening it — no platform directory APIs), or the manifest file itself.
/// \p dir receives the shard-set directory.
[[nodiscard]] bool ResolveShardSetDir(const std::string& path, std::string* dir);

}  // namespace stj
