#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace stj {

/// SoA batch of candidate pairs flowing through the staged executor
/// (batch_executor.h). The filter stage fills it with the pairs its filters
/// could not decide; the refinement stage consumes it after re-sorting for
/// PreparedCache locality. Columns, not an array of structs, so a future
/// wider-SIMD or GPU refinement backend can consume the ids and candidate
/// bits as flat device buffers (ROADMAP item 4's "drop-in stage" goal).
///
/// Columns are index-aligned; entry i of the batch is
///   pairs[pair_index[i]] == (r_idx[i], s_idx[i]),
/// candidates[i] the RelationSet::Bits() image of its surviving relation
/// masks, and sort_key[i] the pair's Hilbert schedule key.
struct RefineBatch {
  std::vector<uint32_t> pair_index;  ///< Index into the input pair array.
  std::vector<uint32_t> r_idx;
  std::vector<uint32_t> s_idx;
  std::vector<uint8_t> candidates;   ///< RelationSet bits per pair.
  std::vector<uint64_t> sort_key;    ///< Hilbert schedule key per pair.

  size_t Size() const { return pair_index.size(); }
  bool Empty() const { return pair_index.empty(); }

  /// Empties all columns, keeping their capacity (the BatchArena recycling
  /// contract).
  void Clear() {
    pair_index.clear();
    r_idx.clear();
    s_idx.clear();
    candidates.clear();
    sort_key.clear();
  }

  void Push(uint32_t pair, uint32_t r, uint32_t s, uint8_t candidate_bits,
            uint64_t key) {
    pair_index.push_back(pair);
    r_idx.push_back(r);
    s_idx.push_back(s);
    candidates.push_back(candidate_bits);
    sort_key.push_back(key);
  }
};

}  // namespace stj
