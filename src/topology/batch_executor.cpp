#include "src/topology/batch_executor.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <thread>
#include <utility>

#include "src/topology/parallel.h"  // RecordScope
#include "src/util/batch_arena.h"
#include "src/util/mpmc_queue.h"
#include "src/util/parallel_for.h"
#include "src/util/timer.h"
#include "src/util/thread_annotations.h"

namespace stj {

namespace {

using BatchPtr = std::unique_ptr<RefineBatch>;
using StageQueue = BoundedMpmcQueue<BatchPtr>;

/// Find-relation stage operations over the shared executor skeleton.
struct FindRelationOps {
  de9im::Relation* relations;

  /// Returns true when the filter stage decided the pair (result written);
  /// false leaves the candidate bits for the refinement stage.
  bool Filter(Pipeline* pipeline, uint32_t pair, uint32_t r, uint32_t s,
              uint8_t* candidate_bits) const {
    const Pipeline::FilterOutcome out = pipeline->FilterStage(r, s);
    if (out.definite) {
      relations[pair] = out.relation;
      return true;
    }
    *candidate_bits = out.candidates.Bits();
    return false;
  }

  void Refine(Pipeline* pipeline, uint32_t pair, uint32_t r, uint32_t s,
              uint8_t candidate_bits) const {
    relations[pair] = pipeline->RefineStage(
        r, s, de9im::RelationSet::FromBits(candidate_bits));
  }
};

/// relate_p stage operations: the candidate-bits column rides along unused
/// (the predicate is fixed per run).
struct RelateOps {
  char* matches;
  de9im::Relation predicate;

  bool Filter(Pipeline* pipeline, uint32_t pair, uint32_t r, uint32_t s,
              uint8_t* candidate_bits) const {
    switch (pipeline->FilterStagePredicate(r, s, predicate)) {
      case RelateAnswer::kYes:
        matches[pair] = 1;
        return true;
      case RelateAnswer::kNo:
        matches[pair] = 0;
        return true;
      case RelateAnswer::kInconclusive:
        *candidate_bits = 0;
        return false;
    }
    return false;
  }

  void Refine(Pipeline* pipeline, uint32_t pair, uint32_t r, uint32_t s,
              uint8_t /*candidate_bits*/) const {
    matches[pair] = pipeline->RefineStagePredicate(r, s, predicate) ? 1 : 0;
  }
};

/// The staged executor skeleton shared by both join flavours; see the
/// header comment on BatchedFindRelation for the architecture.
template <typename Ops>
PipelineStats RunBatched(Method method, DatasetView r_view, DatasetView s_view,
                         const std::vector<CandidatePair>& pairs,
                         const std::vector<uint32_t>& order,
                         const std::vector<uint64_t>& keys,
                         const BatchExecOptions& options, const Ops& ops,
                         char* done) {
  const size_t batch_size = std::max<size_t>(1, options.batch_size);
  const size_t num_batches = (order.size() + batch_size - 1) / batch_size;
  const unsigned threads = std::max(1u, options.threads);
  ExecContext* ctx = options.exec;

  // Columnar pair ids: the filter loop gathers through the schedule, and
  // two flat id columns keep those gathers on dense cache lines (and are
  // the layout a device backend would consume directly).
  const CandidateSoA soa = MbrJoin::ToSoA(pairs);

  StageQueue queue(std::max<size_t>(1, options.queue_depth));
  BatchArena<RefineBatch> arena;
  STJ_ATOMIC_DOC("filter-batch claim cursor; relaxed fetch_add, each batch is filtered by exactly one worker");
  std::atomic<size_t> next_batch{0};
  STJ_ATOMIC_DOC("completed-filter count; relaxed fetch_add, the worker seeing the final increment closes the stage queue");
  std::atomic<size_t> filtered_batches{0};
  std::vector<PipelineStats> per_worker(threads);

  const unsigned used = internal::RunWorkers(threads, [&](unsigned worker) {
    Pipeline pipeline(method, r_view, s_view, options.pipeline);
    PipelineStats* stats = pipeline.MutableStats();
    ExecContext::Scope scope(ctx);
    bool stopped = false;
    std::vector<uint32_t> perm;  // refinement sort scratch, reused

    // Runs one refinement batch; false means the scope tripped mid-batch
    // (the remaining pairs of the batch are abandoned, not done).
    const auto refine_batch = [&](RefineBatch* batch) {
      // Re-sort for PreparedCache locality: group by r-object so one
      // prepared R polygon serves its whole group, Hilbert order within the
      // group so the S side stays spatially clustered, input index as the
      // deterministic tiebreak. Pure scheduling — per-pair results do not
      // depend on processing order.
      perm.resize(batch->Size());
      std::iota(perm.begin(), perm.end(), 0u);
      std::sort(perm.begin(), perm.end(), [batch](uint32_t a, uint32_t b) {
        if (batch->r_idx[a] != batch->r_idx[b]) {
          return batch->r_idx[a] < batch->r_idx[b];
        }
        if (batch->sort_key[a] != batch->sort_key[b]) {
          return batch->sort_key[a] < batch->sort_key[b];
        }
        return batch->pair_index[a] < batch->pair_index[b];
      });
      for (const uint32_t i : perm) {
        if (scope.CheckIn()) return false;
        ops.Refine(&pipeline, batch->pair_index[i], batch->r_idx[i],
                   batch->s_idx[i], batch->candidates[i]);
        if (done != nullptr) done[batch->pair_index[i]] = 1;
      }
      return true;
    };

    // Pops and refines one queued batch; false when the queue had nothing.
    const auto pop_and_refine = [&]() {
      BatchPtr batch;
      if (!queue.TryPop(&batch)) return false;
      if (!refine_batch(batch.get())) stopped = true;
      arena.Recycle(std::move(batch));
      return true;
    };

    try {
      while (!stopped) {
        // Prefer queued refinement work: this is what overlaps the
        // refinement of batch k with the filtering of batch k+1.
        if (pop_and_refine()) continue;
        const size_t b = next_batch.fetch_add(1);
        if (b >= num_batches) break;  // nothing left to filter: drain below

        BatchPtr out = arena.Acquire();
        const size_t begin = b * batch_size;
        const size_t end = std::min(order.size(), begin + batch_size);
        for (size_t i = begin; i < end; ++i) {
          if (scope.CheckIn()) {
            stopped = true;
            break;
          }
          const uint32_t pair = order[i];
          uint8_t candidate_bits = 0;
          if (ops.Filter(&pipeline, pair, soa.r_idx[pair], soa.s_idx[pair],
                         &candidate_bits)) {
            if (done != nullptr) done[pair] = 1;
          } else {
            out->Push(pair, soa.r_idx[pair], soa.s_idx[pair], candidate_bits,
                      keys[pair]);
          }
        }
        ++stats->batches;
        if (stopped) break;  // this batch's survivors are abandoned

        if (!out->Empty()) {
          // Bounded push with help: on back-pressure the producer drains a
          // batch itself instead of blocking, so the stage graph cannot
          // deadlock even with every worker producing.
          while (!queue.TryPush(out)) {
            if (queue.aborted()) {
              stopped = true;
              break;
            }
            if (pop_and_refine()) {
              if (stopped) break;
              continue;
            }
            // Full but momentarily nothing poppable (a peer grabbed it):
            // count the wait as stall and retry.
            Timer wait;
            std::this_thread::yield();
            stats->queue_stall_seconds += wait.ElapsedSeconds();
          }
          if (stopped) break;
        }
        arena.Recycle(std::move(out));  // no-op for a pushed (null) batch
        if (filtered_batches.fetch_add(1) + 1 == num_batches) queue.Close();
      }

      if (stopped) {
        // Trip observed: wake any peers blocked on the queue; queued
        // batches are dropped — their pairs stay not-done.
        queue.Abort();
      } else {
        // Drain phase: every batch is claimed; block for queued refinement
        // work until the last producer closes the stream.
        for (;;) {
          BatchPtr batch;
          Timer wait;
          const StageQueue::PopOutcome outcome = queue.Pop(&batch);
          stats->queue_stall_seconds += wait.ElapsedSeconds();
          if (outcome != StageQueue::PopOutcome::kItem) break;
          if (!refine_batch(batch.get())) stopped = true;
          arena.Recycle(std::move(batch));
          if (stopped) {
            queue.Abort();
            break;
          }
        }
      }
    } catch (...) {
      // A throwing worker must not leave peers blocked on the stage queue;
      // RunWorkers rethrows this exception after joining everyone.
      queue.Abort();
      throw;
    }
    per_worker[worker] = pipeline.Stats();
    if (ctx != nullptr) RecordScope(scope, &per_worker[worker]);
  });

  PipelineStats total;
  for (unsigned w = 0; w < used; ++w) MergeStats(per_worker[w], &total);
  // Queue telemetry is stream-global (one queue per run), added once.
  const QueueTelemetry telemetry = queue.Telemetry();
  total.batches_enqueued += telemetry.pushed;
  total.batches_dequeued += telemetry.popped;
  total.queue_max_depth = std::max(total.queue_max_depth, telemetry.max_depth);
  return total;
}

}  // namespace

PipelineStats BatchedFindRelation(Method method, DatasetView r_view,
                                  DatasetView s_view,
                                  const std::vector<CandidatePair>& pairs,
                                  const std::vector<uint32_t>& order,
                                  const std::vector<uint64_t>& keys,
                                  const BatchExecOptions& options,
                                  de9im::Relation* relations, char* done) {
  return RunBatched(method, r_view, s_view, pairs, order, keys, options,
                    FindRelationOps{relations}, done);
}

PipelineStats BatchedRelate(Method method, DatasetView r_view,
                            DatasetView s_view,
                            const std::vector<CandidatePair>& pairs,
                            const std::vector<uint32_t>& order,
                            const std::vector<uint64_t>& keys,
                            de9im::Relation predicate,
                            const BatchExecOptions& options, char* matches,
                            char* done) {
  return RunBatched(method, r_view, s_view, pairs, order, keys, options,
                    RelateOps{matches, predicate}, done);
}

}  // namespace stj
