#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/join/mbr_join.h"
#include "src/topology/batch.h"
#include "src/topology/pipeline.h"
#include "src/util/exec_context.h"

namespace stj {

/// Knobs of one staged batched join run. The parallel drivers (parallel.h)
/// construct this from JoinOptions after resolving the worker count.
struct BatchExecOptions {
  unsigned threads = 1;    ///< Resolved worker count (>= 1).
  size_t batch_size = 256; ///< Pairs per SoA filter batch (>= 1).
  size_t queue_depth = 8;  ///< Refinement-queue capacity in batches (>= 1).
  PipelineOptions pipeline;
  ExecContext* exec = nullptr;  ///< Optional deadline/cancel/budget carrier.
};

/// Staged batched find-relation executor: the pipelined alternative to the
/// pair-at-a-time loop in parallel.cpp (selected by JoinOptions::batch_size
/// > 1; the pair-at-a-time path remains the differential oracle).
///
/// Architecture (DESIGN.md §14): the Hilbert schedule \p order is cut into
/// SoA batches of batch_size pairs. Every worker runs both stages —
///   filter:  claim the next batch through an atomic cursor, run
///            Pipeline::FilterStage per pair (decided pairs are written
///            immediately), collect the undetermined pairs into a RefineBatch;
///   refine:  pop a RefineBatch from the bounded stage queue, re-sort it by
///            (r-object, Hilbert key) for PreparedCache locality, run
///            Pipeline::RefineStage per pair —
/// preferring refinement when queued work exists, so the intermediate filter
/// of batch k+1 overlaps the refinement of batch k across workers. The
/// bounded queue provides back-pressure without deadlock: a producer whose
/// push fails helps drain instead of blocking.
///
/// Determinism: each pair is processed exactly once by some worker through
/// the same FilterStage/RefineStage code the pair-at-a-time path runs, and
/// every Pipeline decision depends only on the pair itself (caches change
/// timing, never answers) — so \p relations is byte-identical for every
/// batch size, queue depth, and thread count.
///
/// Cancellation: workers check in per pair in both stages; a trip abandons
/// work at pair granularity (in-flight batch remainders and all queued
/// batches are dropped) and the tripping worker aborts the queue so blocked
/// peers wake. Completed pairs stay valid — with \p done != nullptr,
/// done[i] = 1 exactly for the answered pairs (the loss-less PartialResult
/// contract of parallel.h, at batch granularity).
///
/// \p relations must point at pairs.size() slots; \p done may be nullptr
/// when no ExecContext is armed. \p order and \p keys come from the Hilbert
/// schedule (order is a permutation of [0, pairs.size()), keys is indexed
/// by input pair position). Returns the merged per-worker PipelineStats
/// including the queue telemetry fields.
PipelineStats BatchedFindRelation(Method method, DatasetView r_view,
                                  DatasetView s_view,
                                  const std::vector<CandidatePair>& pairs,
                                  const std::vector<uint32_t>& order,
                                  const std::vector<uint64_t>& keys,
                                  const BatchExecOptions& options,
                                  de9im::Relation* relations, char* done);

/// relate_p flavour of the staged executor: FilterStagePredicate decides or
/// defers, RefineStagePredicate answers the deferred pairs. Same queueing,
/// determinism, and cancellation contract; matches[i] is 1 where \p
/// predicate holds.
PipelineStats BatchedRelate(Method method, DatasetView r_view,
                            DatasetView s_view,
                            const std::vector<CandidatePair>& pairs,
                            const std::vector<uint32_t>& order,
                            const std::vector<uint64_t>& keys,
                            de9im::Relation predicate,
                            const BatchExecOptions& options, char* matches,
                            char* done);

}  // namespace stj
