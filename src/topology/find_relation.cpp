#include "src/topology/find_relation.h"

namespace stj {

using de9im::Relation;

namespace {

FilterDecision Definite(Relation rel, DecisionStage stage) {
  FilterDecision d;
  d.definite = true;
  d.relation = rel;
  d.stage = stage;
  return d;
}

FilterDecision FromOutcome(IFOutcome outcome) {
  if (IsDefinite(outcome)) {
    return Definite(DefiniteRelation(outcome),
                    DecisionStage::kIntermediateFilter);
  }
  FilterDecision d;
  d.definite = false;
  d.candidates = CandidatesOf(outcome);
  d.stage = DecisionStage::kRefinement;
  return d;
}

template <typename View>
FilterDecision FindRelationFilterImpl(const Box& r_mbr, const View& r_april,
                                      const Box& s_mbr, const View& s_april) {
  // Algorithm 1: dispatch on the MBR intersection case.
  switch (ClassifyBoxes(r_mbr, s_mbr)) {
    case BoxRelation::kDisjoint:
      return Definite(Relation::kDisjoint, DecisionStage::kMbrFilter);
    case BoxRelation::kCross:
      return Definite(Relation::kIntersects, DecisionStage::kMbrFilter);
    case BoxRelation::kEqual:
      return FromOutcome(IFEquals(r_april, s_april));
    case BoxRelation::kRInsideS:
      return FromOutcome(IFInside(r_april, s_april));
    case BoxRelation::kSInsideR:
      return FromOutcome(IFContains(r_april, s_april));
    case BoxRelation::kOverlap:
      return FromOutcome(IFIntersects(r_april, s_april));
  }
  FilterDecision d;
  d.definite = false;
  d.candidates = de9im::RelationSet::All();
  d.stage = DecisionStage::kRefinement;
  return d;
}

}  // namespace

FilterDecision FindRelationFilter(const Box& r_mbr,
                                  const AprilView& r_april,
                                  const Box& s_mbr,
                                  const AprilView& s_april) {
  return FindRelationFilterImpl(r_mbr, r_april, s_mbr, s_april);
}

FilterDecision FindRelationFilter(const Box& r_mbr,
                                  const CompressedAprilView& r_april,
                                  const Box& s_mbr,
                                  const CompressedAprilView& s_april) {
  return FindRelationFilterImpl(r_mbr, r_april, s_mbr, s_april);
}

}  // namespace stj
