#pragma once

#include "src/de9im/relation.h"
#include "src/geometry/box.h"
#include "src/raster/april.h"
#include "src/topology/intermediate_filters.h"

namespace stj {

/// Which pipeline stage produced a find-relation answer — the bookkeeping
/// behind the effectiveness plots (Fig. 7(b), Fig. 8(a)).
enum class DecisionStage : uint8_t {
  kMbrFilter,           ///< Decided from the MBRs alone (disjoint or cross).
  kIntermediateFilter,  ///< Decided by merge-joins on the P/C lists.
  kRefinement,          ///< Needed the DE-9IM matrix.
};

/// Result of the raster-only part of find relation (Algorithm 1 before any
/// refinement): either a definite relation, or the narrowed candidate set the
/// refinement step must verify.
struct FilterDecision {
  bool definite = false;
  de9im::Relation relation = de9im::Relation::kIntersects;  ///< When definite.
  de9im::RelationSet candidates;  ///< When not definite.
  DecisionStage stage = DecisionStage::kMbrFilter;
};

/// Runs the MBR filter plus the MBR-case-specific intermediate filter of
/// Algorithm 1 on one pair, without touching exact geometry. The candidate
/// set of a non-definite decision always contains the true relation.
FilterDecision FindRelationFilter(const Box& r_mbr,
                                  const AprilView& r_april,
                                  const Box& s_mbr,
                                  const AprilView& s_april);

/// Compressed-store overload: identical decision logic over blocked APRIL
/// records (the intermediate filters dispatch to the fused block-merge
/// relations, which agree with the flat ones on the same lists).
FilterDecision FindRelationFilter(const Box& r_mbr,
                                  const CompressedAprilView& r_april,
                                  const Box& s_mbr,
                                  const CompressedAprilView& s_april);

}  // namespace stj
