#include "src/topology/intermediate_filters.h"

#include "src/interval/interval_algebra.h"

namespace stj {

using de9im::Relation;
using de9im::RelationSet;

namespace {

// The decision sequences are shared between the flat and the compressed
// storage forms: both AprilView and CompressedAprilView expose
// .conservative/.progressive members with Empty(), and the List* relations
// of interval_algebra.h overload on the member type. The compressed
// overloads compute the same truth values block-by-block, so both
// instantiations of each template return identical outcomes for the same
// underlying lists.

template <typename View>
IFOutcome IFEqualsImpl(const View& r, const View& s) {
  // Equal MBRs: the objects certainly intersect (each spans the shared MBR in
  // both axes), so no disjointness checks appear here.
  if (ListsMatch(r.conservative, s.conservative)) {
    return IFOutcome::kRefineEquals;
  }
  if (ListInside(r.conservative, s.conservative)) {
    // r's touched cells all touched by s: r cannot stick out of s.
    if (ListInside(r.conservative, s.progressive)) {
      // r lies within cells fully inside s: r is within s, with r != s
      // (lists differ) and strict inside impossible for equal MBRs.
      return IFOutcome::kCoveredBy;
    }
    return IFOutcome::kRefineCoveredBy;
  }
  if (ListContains(r.conservative, s.conservative)) {
    if (ListContains(r.progressive, s.conservative)) {
      return IFOutcome::kCovers;
    }
    return IFOutcome::kRefineCovers;
  }
  return IFOutcome::kRefineMeetsIntersects;
}

template <typename View>
IFOutcome IFInsideImpl(const View& r, const View& s) {
  if (ListInside(r.conservative, s.conservative)) {
    if (!s.progressive.Empty()) {
      if (ListInside(r.conservative, s.progressive)) {
        // Every cell r touches lies strictly inside s: no boundary contact.
        return IFOutcome::kInside;
      }
      if (ListsOverlap(r.conservative, s.progressive)) {
        // r reaches s's interior, so the interiors overlap; inside and
        // covered by both remain possible.
        return IFOutcome::kRefineInside;
      }
    }
    return IFOutcome::kRefineAllInside;
  }
  if (!ListsOverlap(r.conservative, s.conservative)) {
    return IFOutcome::kDisjoint;
  }
  // r sticks out of s's touched cells, so containment is off the table; a
  // full-cell overlap in either direction certifies interior overlap.
  if (ListsOverlap(r.conservative, s.progressive) ||
      ListsOverlap(r.progressive, s.conservative)) {
    return IFOutcome::kIntersects;
  }
  return IFOutcome::kRefineDisjointMeetsIntersects;
}

template <typename View>
IFOutcome IFContainsImpl(const View& r, const View& s) {
  if (ListContains(r.conservative, s.conservative)) {
    if (!r.progressive.Empty()) {
      if (ListContains(r.progressive, s.conservative)) {
        return IFOutcome::kContains;
      }
      if (ListsOverlap(r.progressive, s.conservative)) {
        return IFOutcome::kRefineContains;
      }
    }
    return IFOutcome::kRefineAllContains;
  }
  if (!ListsOverlap(r.conservative, s.conservative)) {
    return IFOutcome::kDisjoint;
  }
  if (ListsOverlap(r.progressive, s.conservative) ||
      ListsOverlap(r.conservative, s.progressive)) {
    return IFOutcome::kIntersects;
  }
  return IFOutcome::kRefineDisjointMeetsIntersects;
}

template <typename View>
IFOutcome IFIntersectsImpl(const View& r, const View& s) {
  if (!ListsOverlap(r.conservative, s.conservative)) {
    return IFOutcome::kDisjoint;
  }
  if (ListsOverlap(r.conservative, s.progressive) ||
      ListsOverlap(r.progressive, s.conservative)) {
    return IFOutcome::kIntersects;
  }
  return IFOutcome::kRefineDisjointMeetsIntersects;
}

}  // namespace

IFOutcome IFEquals(const AprilView& r, const AprilView& s) {
  return IFEqualsImpl(r, s);
}

IFOutcome IFEquals(const CompressedAprilView& r, const CompressedAprilView& s) {
  return IFEqualsImpl(r, s);
}

IFOutcome IFInside(const AprilView& r, const AprilView& s) {
  return IFInsideImpl(r, s);
}

IFOutcome IFInside(const CompressedAprilView& r, const CompressedAprilView& s) {
  return IFInsideImpl(r, s);
}

IFOutcome IFContains(const AprilView& r, const AprilView& s) {
  return IFContainsImpl(r, s);
}

IFOutcome IFContains(const CompressedAprilView& r,
                     const CompressedAprilView& s) {
  return IFContainsImpl(r, s);
}

IFOutcome IFIntersects(const AprilView& r,
                       const AprilView& s) {
  return IFIntersectsImpl(r, s);
}

IFOutcome IFIntersects(const CompressedAprilView& r,
                       const CompressedAprilView& s) {
  return IFIntersectsImpl(r, s);
}

const char* ToString(IFOutcome outcome) {
  switch (outcome) {
    case IFOutcome::kDisjoint: return "disjoint";
    case IFOutcome::kInside: return "inside";
    case IFOutcome::kContains: return "contains";
    case IFOutcome::kCoveredBy: return "covered-by";
    case IFOutcome::kCovers: return "covers";
    case IFOutcome::kIntersects: return "intersects";
    case IFOutcome::kRefineEquals: return "refine-equals";
    case IFOutcome::kRefineCoveredBy: return "refine-covered-by";
    case IFOutcome::kRefineCovers: return "refine-covers";
    case IFOutcome::kRefineInside: return "refine-inside";
    case IFOutcome::kRefineContains: return "refine-contains";
    case IFOutcome::kRefineMeetsIntersects: return "refine-meets-intersects";
    case IFOutcome::kRefineDisjointMeetsIntersects:
      return "refine-disjoint-meets-intersects";
    case IFOutcome::kRefineAllInside: return "refine-all-inside";
    case IFOutcome::kRefineAllContains: return "refine-all-contains";
  }
  return "?";
}

}  // namespace stj
