#pragma once

#include "src/de9im/relation.h"
#include "src/raster/april.h"
#include "src/raster/april_compressed.h"

namespace stj {

/// Outcome of one of the four intermediate filters of Fig. 5. Either a
/// definite most-specific relation (no refinement needed) or a narrowed
/// candidate set to verify against the DE-9IM matrix.
enum class IFOutcome : uint8_t {
  // Definite outcomes.
  kDisjoint,
  kInside,
  kContains,
  kCoveredBy,
  kCovers,
  kIntersects,
  // Refinement outcomes, named by the candidate set they carry.
  kRefineEquals,                  ///< {equals, covered by, covers, intersects}
  kRefineCoveredBy,               ///< {covered by, intersects}
  kRefineCovers,                  ///< {covers, intersects}
  kRefineInside,                  ///< {inside, covered by, intersects}
  kRefineContains,                ///< {contains, covers, intersects}
  kRefineMeetsIntersects,         ///< {meets, intersects}
  kRefineDisjointMeetsIntersects, ///< {disjoint, meets, intersects}
  kRefineAllInside,   ///< {disjoint, inside, covered by, meets, intersects}
  kRefineAllContains, ///< {disjoint, contains, covers, meets, intersects}
};

/// True when the outcome is a definite relation (left column above).
/// Constexpr (with the two accessors below) so topology/static_checks.cpp
/// can verify every Fig. 5 decision sequence against the Fig. 4 candidate
/// sets at compile time.
constexpr bool IsDefinite(IFOutcome outcome) {
  switch (outcome) {
    case IFOutcome::kDisjoint:
    case IFOutcome::kInside:
    case IFOutcome::kContains:
    case IFOutcome::kCoveredBy:
    case IFOutcome::kCovers:
    case IFOutcome::kIntersects:
      return true;
    default:
      return false;
  }
}

/// The definite relation of a definite outcome.
constexpr de9im::Relation DefiniteRelation(IFOutcome outcome) {
  using de9im::Relation;
  switch (outcome) {
    case IFOutcome::kDisjoint: return Relation::kDisjoint;
    case IFOutcome::kInside: return Relation::kInside;
    case IFOutcome::kContains: return Relation::kContains;
    case IFOutcome::kCoveredBy: return Relation::kCoveredBy;
    case IFOutcome::kCovers: return Relation::kCovers;
    default: return Relation::kIntersects;
  }
}

/// The candidate set a refinement outcome carries (the definite outcomes map
/// to their singleton).
constexpr de9im::RelationSet CandidatesOf(IFOutcome outcome) {
  using de9im::Relation;
  using de9im::RelationSet;
  switch (outcome) {
    case IFOutcome::kDisjoint:
    case IFOutcome::kInside:
    case IFOutcome::kContains:
    case IFOutcome::kCoveredBy:
    case IFOutcome::kCovers:
    case IFOutcome::kIntersects:
      return RelationSet{DefiniteRelation(outcome)};
    case IFOutcome::kRefineEquals:
      return RelationSet{Relation::kEquals, Relation::kCoveredBy,
                         Relation::kCovers, Relation::kIntersects};
    case IFOutcome::kRefineCoveredBy:
      return RelationSet{Relation::kCoveredBy, Relation::kIntersects};
    case IFOutcome::kRefineCovers:
      return RelationSet{Relation::kCovers, Relation::kIntersects};
    case IFOutcome::kRefineInside:
      return RelationSet{Relation::kInside, Relation::kCoveredBy,
                         Relation::kIntersects};
    case IFOutcome::kRefineContains:
      return RelationSet{Relation::kContains, Relation::kCovers,
                         Relation::kIntersects};
    case IFOutcome::kRefineMeetsIntersects:
      return RelationSet{Relation::kMeets, Relation::kIntersects};
    case IFOutcome::kRefineDisjointMeetsIntersects:
      return RelationSet{Relation::kDisjoint, Relation::kMeets,
                         Relation::kIntersects};
    case IFOutcome::kRefineAllInside:
      return RelationSet{Relation::kDisjoint, Relation::kInside,
                         Relation::kCoveredBy, Relation::kMeets,
                         Relation::kIntersects};
    case IFOutcome::kRefineAllContains:
      return RelationSet{Relation::kDisjoint, Relation::kContains,
                         Relation::kCovers, Relation::kMeets,
                         Relation::kIntersects};
  }
  return RelationSet::All();
}

/// Each filter has a flat (AprilView) and a compressed (CompressedAprilView)
/// overload. Both run the same decision sequence over the same relation
/// names; the compressed one resolves them to the fused block-merge
/// overloads of interval_algebra.h, which return identical truth values on
/// the same underlying lists — so the two storage forms cannot disagree.

/// Intermediate filter for pairs with equal MBRs (Fig. 4(c) / Fig. 5
/// IFEquals). Can definitely decide covered by and covers.
IFOutcome IFEquals(const AprilView& r, const AprilView& s);
IFOutcome IFEquals(const CompressedAprilView& r, const CompressedAprilView& s);

/// Intermediate filter for MBR(r) inside MBR(s) (Fig. 4(a) / Fig. 5
/// IFInside). Can definitely decide disjoint, inside, and intersects.
IFOutcome IFInside(const AprilView& r, const AprilView& s);
IFOutcome IFInside(const CompressedAprilView& r, const CompressedAprilView& s);

/// Intermediate filter for MBR(r) containing MBR(s) (Fig. 4(b) / Fig. 5
/// IFContains). Can definitely decide disjoint, contains, and intersects.
IFOutcome IFContains(const AprilView& r, const AprilView& s);
IFOutcome IFContains(const CompressedAprilView& r,
                     const CompressedAprilView& s);

/// Intermediate filter for partially overlapping MBRs (Fig. 4(e) / Fig. 5
/// IFIntersects). Can definitely decide disjoint and intersects.
IFOutcome IFIntersects(const AprilView& r,
                       const AprilView& s);
IFOutcome IFIntersects(const CompressedAprilView& r,
                       const CompressedAprilView& s);

const char* ToString(IFOutcome outcome);

}  // namespace stj
