#include "src/topology/link_writer.h"

#include <fstream>

namespace stj {

using de9im::Relation;

const char* GeoSparqlProperty(Relation rel) {
  switch (rel) {
    case Relation::kEquals: return "geo:sfEquals";
    case Relation::kInside: return "geo:sfWithin";
    case Relation::kContains: return "geo:sfContains";
    case Relation::kCoveredBy: return "geo:sfWithin";   // Radon convention
    case Relation::kCovers: return "geo:sfContains";    // Radon convention
    case Relation::kMeets: return "geo:sfTouches";
    case Relation::kIntersects: return "geo:sfIntersects";
    case Relation::kDisjoint: return "geo:sfDisjoint";
  }
  return "geo:sfIntersects";
}

bool WriteNTriples(const std::string& path, const std::string& prefix_r,
                   const std::string& prefix_s,
                   const std::vector<TopologyLink>& links) {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  out << "@prefix geo: <http://www.opengis.net/ont/geosparql#> .\n";
  for (const TopologyLink& link : links) {
    if (link.relation == Relation::kDisjoint) continue;
    out << "<" << prefix_r << link.pair.r_idx << "> "
        << GeoSparqlProperty(link.relation) << " <" << prefix_s
        << link.pair.s_idx << "> .\n";
  }
  out.flush();
  return out.good();
}

}  // namespace stj
