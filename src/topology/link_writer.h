#pragma once

#include <string>
#include <vector>

#include "src/de9im/relation.h"
#include "src/join/mbr_join.h"

namespace stj {

/// Serialisation of discovered topological links as RDF N-Triples using the
/// GeoSPARQL simple-features vocabulary — the output format of the
/// geo-spatial interlinking frameworks (Silk, Radon, JedAI-spatial) the
/// paper positions itself in and names in its future work.
///
/// Each non-disjoint pair becomes one triple:
///   <prefix_r/ID> geo:sfWithin <prefix_s/ID> .
/// `intersects` maps to geo:sfIntersects, `meets` to geo:sfTouches, etc.
/// `covers`/`covered by` have no simple-features property; they are emitted
/// as sfContains/sfWithin (their closest generalisation) — the convention
/// Radon uses.

/// The GeoSPARQL property IRI for \p rel, e.g. "geo:sfTouches". `disjoint`
/// maps to "geo:sfDisjoint" (rarely materialised but well-defined).
const char* GeoSparqlProperty(de9im::Relation rel);

/// One discovered link.
struct TopologyLink {
  CandidatePair pair;
  de9im::Relation relation = de9im::Relation::kIntersects;
};

/// Writes links as N-Triples to \p path. Subject/object IRIs are formed as
/// <prefix_r><r_idx> and <prefix_s><s_idx>. Disjoint links are skipped
/// (non-links). Returns false on I/O error.
bool WriteNTriples(const std::string& path, const std::string& prefix_r,
                   const std::string& prefix_s,
                   const std::vector<TopologyLink>& links);

}  // namespace stj
