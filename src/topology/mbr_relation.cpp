#include "src/topology/mbr_relation.h"

namespace stj {

de9im::RelationSet MbrCandidates(const Box& r, const Box& s) {
  return MbrCandidates(ClassifyBoxes(r, s));
}

}  // namespace stj
