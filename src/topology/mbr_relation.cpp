#include "src/topology/mbr_relation.h"

namespace stj {

using de9im::Relation;
using de9im::RelationSet;

RelationSet MbrCandidates(BoxRelation rel) {
  switch (rel) {
    case BoxRelation::kDisjoint:
      return RelationSet{Relation::kDisjoint};
    case BoxRelation::kEqual:
      // Fig. 4(c). Strict inside/contains require an MBR strictly inside the
      // other; disjoint is impossible because both objects span the common
      // MBR in both axes and must therefore cross.
      return RelationSet{Relation::kEquals, Relation::kCoveredBy,
                         Relation::kCovers, Relation::kMeets,
                         Relation::kIntersects};
    case BoxRelation::kRInsideS:
      // Fig. 4(a): r cannot equal, contain, or cover s.
      return RelationSet{Relation::kDisjoint, Relation::kInside,
                         Relation::kCoveredBy, Relation::kMeets,
                         Relation::kIntersects};
    case BoxRelation::kSInsideR:
      // Fig. 4(b): mirror of the above.
      return RelationSet{Relation::kDisjoint, Relation::kContains,
                         Relation::kCovers, Relation::kMeets,
                         Relation::kIntersects};
    case BoxRelation::kCross:
      // Fig. 4(d): each object pierces the other's MBR, so their interiors
      // are forced to overlap; the most specific relation is intersects.
      return RelationSet{Relation::kIntersects};
    case BoxRelation::kOverlap:
      // Fig. 4(e): containment and equality are impossible.
      return RelationSet{Relation::kDisjoint, Relation::kMeets,
                         Relation::kIntersects};
  }
  return RelationSet::All();
}

RelationSet MbrCandidates(const Box& r, const Box& s) {
  return MbrCandidates(ClassifyBoxes(r, s));
}

}  // namespace stj
