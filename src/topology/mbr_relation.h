#pragma once

#include "src/de9im/relation.h"
#include "src/geometry/box.h"

namespace stj {

/// Candidate topological relations implied by how two MBRs intersect
/// (Fig. 4 of the paper). The returned set always contains the pair's true
/// relation; for BoxRelation::kCross it is the singleton {intersects} and for
/// kDisjoint the singleton {disjoint}. Constexpr so that
/// topology/static_checks.cpp can prove, at compile time, that each case
/// equals the set derived from first principles in de9im/model.h.
constexpr de9im::RelationSet MbrCandidates(BoxRelation rel) {
  using de9im::Relation;
  using de9im::RelationSet;
  switch (rel) {
    case BoxRelation::kDisjoint:
      return RelationSet{Relation::kDisjoint};
    case BoxRelation::kEqual:
      // Fig. 4(c). Strict inside/contains require an MBR strictly inside the
      // other; disjoint is impossible because both objects span the common
      // MBR in both axes and must therefore cross.
      return RelationSet{Relation::kEquals, Relation::kCoveredBy,
                         Relation::kCovers, Relation::kMeets,
                         Relation::kIntersects};
    case BoxRelation::kRInsideS:
      // Fig. 4(a): r cannot equal, contain, or cover s.
      return RelationSet{Relation::kDisjoint, Relation::kInside,
                         Relation::kCoveredBy, Relation::kMeets,
                         Relation::kIntersects};
    case BoxRelation::kSInsideR:
      // Fig. 4(b): mirror of the above.
      return RelationSet{Relation::kDisjoint, Relation::kContains,
                         Relation::kCovers, Relation::kMeets,
                         Relation::kIntersects};
    case BoxRelation::kCross:
      // Fig. 4(d): each object pierces the other's MBR, so their interiors
      // are forced to overlap; the most specific relation is intersects.
      return RelationSet{Relation::kIntersects};
    case BoxRelation::kOverlap:
      // Fig. 4(e): containment and equality are impossible.
      return RelationSet{Relation::kDisjoint, Relation::kMeets,
                         Relation::kIntersects};
  }
  return RelationSet::All();
}

/// Convenience: candidates for a concrete MBR pair.
de9im::RelationSet MbrCandidates(const Box& r, const Box& s);

}  // namespace stj
