#pragma once

#include "src/de9im/relation.h"
#include "src/geometry/box.h"

namespace stj {

/// Candidate topological relations implied by how two MBRs intersect
/// (Fig. 4 of the paper). The returned set always contains the pair's true
/// relation; for BoxRelation::kCross it is the singleton {intersects} and for
/// kDisjoint the singleton {disjoint}.
de9im::RelationSet MbrCandidates(BoxRelation rel);

/// Convenience: candidates for a concrete MBR pair.
de9im::RelationSet MbrCandidates(const Box& r, const Box& s);

}  // namespace stj
