#include "src/topology/parallel.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>

namespace stj {

namespace {

void MergeStats(const PipelineStats& from, PipelineStats* into) {
  into->pairs += from.pairs;
  into->decided_by_mbr += from.decided_by_mbr;
  into->decided_by_filter += from.decided_by_filter;
  into->refined += from.refined;
  into->fallback_refined += from.fallback_refined;
  into->filter_seconds += from.filter_seconds;
  into->refine_seconds += from.refine_seconds;
}

unsigned ResolveThreads(unsigned requested, size_t pairs) {
  unsigned n = requested != 0 ? requested : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  // No point spinning up workers for a handful of pairs each.
  const size_t max_useful = std::max<size_t>(1, pairs / 256);
  return static_cast<unsigned>(
      std::min<size_t>(n, std::max<size_t>(1, max_useful)));
}

}  // namespace

namespace internal {

unsigned RunChunks(unsigned num_threads, size_t total,
                   const std::function<void(unsigned, size_t, size_t)>& fn) {
  if (total == 0) return 0;
  if (num_threads <= 1) {
    fn(0u, size_t{0}, total);  // exceptions propagate directly
    return 1;
  }
  const size_t chunk = (total + num_threads - 1) / num_threads;
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  std::mutex error_mutex;
  std::exception_ptr first_error;
  for (unsigned t = 0; t < num_threads; ++t) {
    const size_t begin = std::min(total, static_cast<size_t>(t) * chunk);
    const size_t end = std::min(total, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&fn, &error_mutex, &first_error, t, begin, end] {
      try {
        fn(t, begin, end);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error == nullptr) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  if (first_error != nullptr) std::rethrow_exception(first_error);
  return static_cast<unsigned>(workers.size());
}

}  // namespace internal

ParallelJoinResult ParallelFindRelation(Method method, DatasetView r_view,
                                        DatasetView s_view,
                                        const std::vector<CandidatePair>& pairs,
                                        unsigned num_threads) {
  ParallelJoinResult result;
  if (pairs.empty()) return result;  // no workers, no per-worker state
  result.relations.resize(pairs.size());
  const unsigned threads = ResolveThreads(num_threads, pairs.size());
  std::vector<PipelineStats> per_worker(threads);
  const unsigned used = internal::RunChunks(
      threads, pairs.size(), [&](unsigned worker, size_t begin, size_t end) {
        Pipeline pipeline(method, r_view, s_view);
        for (size_t i = begin; i < end; ++i) {
          result.relations[i] =
              pipeline.FindRelation(pairs[i].r_idx, pairs[i].s_idx);
        }
        per_worker[worker] = pipeline.Stats();
      });
  // Merge only the workers that ran: chunks collapse to empty when there are
  // more threads than pairs, and a default-initialised PipelineStats must
  // not leak into the totals.
  for (unsigned w = 0; w < used; ++w) {
    MergeStats(per_worker[w], &result.stats);
  }
  return result;
}

ParallelRelateResult ParallelRelate(Method method, DatasetView r_view,
                                    DatasetView s_view,
                                    const std::vector<CandidatePair>& pairs,
                                    de9im::Relation predicate,
                                    unsigned num_threads) {
  ParallelRelateResult result;
  if (pairs.empty()) return result;  // no workers, no per-worker state
  result.matches.resize(pairs.size(), 0);
  const unsigned threads = ResolveThreads(num_threads, pairs.size());
  std::vector<PipelineStats> per_worker(threads);
  const unsigned used = internal::RunChunks(
      threads, pairs.size(), [&](unsigned worker, size_t begin, size_t end) {
        Pipeline pipeline(method, r_view, s_view);
        for (size_t i = begin; i < end; ++i) {
          result.matches[i] =
              pipeline.Relate(pairs[i].r_idx, pairs[i].s_idx, predicate) ? 1
                                                                         : 0;
        }
        per_worker[worker] = pipeline.Stats();
      });
  for (unsigned w = 0; w < used; ++w) {
    MergeStats(per_worker[w], &result.stats);
  }
  return result;
}

}  // namespace stj
