#include "src/topology/parallel.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>

#include "src/raster/hilbert.h"
#include "src/topology/batch_executor.h"
#include "src/util/thread_annotations.h"

namespace stj {

void RecordScope(const ExecContext::Scope& scope, PipelineStats* stats) {
  stats->checkins = scope.checkins();
  if (scope.stopped() && scope.observed_cause() == StopCause::kDeadlineExceeded) {
    stats->deadline_hits = 1;
  }
  stats->cancel_latency_us = scope.observed_latency_us();
}

namespace {

/// Pairs per work-stealing block: coarse enough that the shared cursor is
/// touched rarely, fine enough that a run of complexity-heavy pairs cannot
/// serialize the tail.
constexpr size_t kPairBlock = 64;

/// Grid order for the scheduling curve: 256x256 buckets is plenty to group
/// pairs that share objects without the key computation showing up in
/// profiles.
constexpr uint32_t kScheduleOrder = 8;

unsigned ResolveThreads(unsigned requested, size_t pairs) {
  if (requested != 0) {
    // An explicit request is honoured (the concurrency tests rely on real
    // worker threads), but never with more workers than pairs.
    return static_cast<unsigned>(
        std::min<size_t>(requested, std::max<size_t>(1, pairs)));
  }
  unsigned n = std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  // Auto mode: no point spinning up workers for a handful of pairs each.
  const size_t max_useful = std::max<size_t>(1, pairs / 256);
  return static_cast<unsigned>(std::min<size_t>(n, max_useful));
}

/// The processing schedule of the parallel drivers: pair indices sorted by
/// the Hilbert-curve position of each pair's reference point (the max of
/// the two MBR min-corners — the same point the filter join's
/// duplicate-avoidance rule uses), with the input index as tiebreaker.
/// Consecutive blocks then touch spatially clustered pairs, so an object
/// that appears in many pairs tends to be refined by one worker while its
/// geometry is still cache-resident. `keys` (indexed by input pair
/// position) rides along for the batch executor, whose refinement re-sort
/// reuses the curve position within an r-object group.
struct PairSchedule {
  std::vector<uint32_t> order;
  std::vector<uint64_t> keys;
};

PairSchedule HilbertSchedule(DatasetView r_view, DatasetView s_view,
                             const std::vector<CandidatePair>& pairs) {
  const std::vector<SpatialObject>& r = *r_view.objects;
  const std::vector<SpatialObject>& s = *s_view.objects;
  Box space;
  for (const SpatialObject& object : r) space.Expand(object.geometry.Bounds());
  for (const SpatialObject& object : s) space.Expand(object.geometry.Bounds());
  const uint32_t cells = 1u << kScheduleOrder;
  const double inv_w =
      space.Width() > 0 ? static_cast<double>(cells) / space.Width() : 0.0;
  const double inv_h =
      space.Height() > 0 ? static_cast<double>(cells) / space.Height() : 0.0;
  auto cell_of = [cells](double t) {
    if (t <= 0.0) return 0u;
    return std::min(static_cast<uint32_t>(t), cells - 1);
  };

  PairSchedule schedule;
  schedule.keys.resize(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    const Box& rb = r[pairs[i].r_idx].geometry.Bounds();
    const Box& sb = s[pairs[i].s_idx].geometry.Bounds();
    const double ref_x = std::max(rb.min.x, sb.min.x);
    const double ref_y = std::max(rb.min.y, sb.min.y);
    schedule.keys[i] = HilbertXYToD(kScheduleOrder,
                                    cell_of((ref_x - space.min.x) * inv_w),
                                    cell_of((ref_y - space.min.y) * inv_h));
  }
  schedule.order.resize(pairs.size());
  std::iota(schedule.order.begin(), schedule.order.end(), 0u);
  const std::vector<uint64_t>& keys = schedule.keys;
  std::sort(schedule.order.begin(), schedule.order.end(),
            [&keys](uint32_t a, uint32_t b) {
              if (keys[a] != keys[b]) return keys[a] < keys[b];
              return a < b;  // deterministic schedule under key ties
            });
  return schedule;
}

PipelineOptions MakePipelineOptions(const JoinOptions& options) {
  return PipelineOptions{.time_stages = options.time_stages,
                         .prepared_cache_bytes = options.prepared_cache_bytes,
                         .decoded_cache_bytes = options.decoded_cache_bytes};
}

/// Shared tail of every driver: maps a tripped ExecContext onto the status
/// and the loss-less PartialResult (parallel.h contract).
void FinalizeRun(ExecContext* ctx, Status* status, PartialResult* partial) {
  if (ctx != nullptr && ctx->StopRequested()) {
    *status = ctx->ToStatus();
    partial->completed = 0;
    for (const char d : partial->done) partial->completed += (d != 0) ? 1 : 0;
  } else {
    *status = Status::Ok();
    partial->completed = partial->total;
    partial->done.clear();  // complete: the bitmap carries no information
  }
}

BatchExecOptions MakeBatchOptions(const JoinOptions& options,
                                  size_t num_pairs) {
  BatchExecOptions exec_options;
  exec_options.threads = ResolveThreads(options.num_threads, num_pairs);
  exec_options.batch_size = options.batch_size;
  exec_options.queue_depth = options.queue_depth;
  exec_options.pipeline = MakePipelineOptions(options);
  exec_options.exec = options.exec;
  return exec_options;
}

/// Shared pair-at-a-time driver for both join flavours: \p process(pipeline,
/// pair_index) answers one pair. Single-threaded runs keep the plain
/// input-order loop (no schedule to build, no cursor); multi-threaded runs
/// drain Hilbert-ordered blocks through an atomic cursor. The batched
/// executor path (JoinOptions::batch_size > 1) is routed before this driver
/// is reached — this loop is the differential oracle it is tested against.
///
/// Cancellation (options.exec != nullptr): every worker checks in before
/// each pair and, on a trip, stops at that pair boundary — completed pairs
/// stay valid, abandoned pairs are recorded as not-done. \p partial is then
/// filled with the done bitmap (cleared again when the run completed, so
/// unbounded callers pay nothing for it); \p status carries the trip cause.
template <typename Process>
PipelineStats RunPairs(Method method, DatasetView r_view, DatasetView s_view,
                       const std::vector<CandidatePair>& pairs,
                       const JoinOptions& options, const Process& process,
                       Status* status, PartialResult* partial) {
  PipelineStats stats;
  const PipelineOptions pipeline_options = MakePipelineOptions(options);
  ExecContext* ctx = options.exec;
  partial->total = pairs.size();
  if (ctx != nullptr) partial->done.assign(pairs.size(), 0);
  const unsigned threads = ResolveThreads(options.num_threads, pairs.size());
  if (threads <= 1) {
    Pipeline pipeline(method, r_view, s_view, pipeline_options);
    {
      ExecContext::Scope scope(ctx);
      for (size_t i = 0; i < pairs.size(); ++i) {
        if (scope.CheckIn()) break;
        process(&pipeline, i);
        if (ctx != nullptr) partial->done[i] = 1;
      }
      stats = pipeline.Stats();
      if (ctx != nullptr) RecordScope(scope, &stats);
    }
  } else {
    const PairSchedule schedule = HilbertSchedule(r_view, s_view, pairs);
    const std::vector<uint32_t>& order = schedule.order;
    std::vector<PipelineStats> per_worker(threads);
    STJ_ATOMIC_DOC("work-stealing pair-block cursor; relaxed fetch_add, each block is claimed by exactly one worker");
    std::atomic<size_t> next{0};
    const unsigned used = internal::RunWorkers(threads, [&](unsigned worker) {
      Pipeline pipeline(method, r_view, s_view, pipeline_options);
      ExecContext::Scope scope(ctx);
      while (!scope.stopped()) {
        const size_t begin = next.fetch_add(kPairBlock);
        if (begin >= order.size()) break;
        const size_t end = std::min(order.size(), begin + kPairBlock);
        for (size_t i = begin; i < end; ++i) {
          if (scope.CheckIn()) break;
          process(&pipeline, order[i]);
          if (ctx != nullptr) partial->done[order[i]] = 1;
        }
      }
      per_worker[worker] = pipeline.Stats();
      if (ctx != nullptr) RecordScope(scope, &per_worker[worker]);
    });
    for (unsigned w = 0; w < used; ++w) MergeStats(per_worker[w], &stats);
  }
  FinalizeRun(ctx, status, partial);
  return stats;
}

}  // namespace

ParallelJoinResult ParallelFindRelation(Method method, DatasetView r_view,
                                        DatasetView s_view,
                                        const std::vector<CandidatePair>& pairs,
                                        const JoinOptions& options) {
  ParallelJoinResult result;
  if (pairs.empty()) return result;  // no workers, no per-worker state
  result.relations.resize(pairs.size());
  if (options.batch_size > 1) {
    ExecContext* ctx = options.exec;
    result.partial.total = pairs.size();
    if (ctx != nullptr) result.partial.done.assign(pairs.size(), 0);
    const PairSchedule schedule = HilbertSchedule(r_view, s_view, pairs);
    result.stats = BatchedFindRelation(
        method, r_view, s_view, pairs, schedule.order, schedule.keys,
        MakeBatchOptions(options, pairs.size()), result.relations.data(),
        ctx != nullptr ? result.partial.done.data() : nullptr);
    FinalizeRun(ctx, &result.status, &result.partial);
    return result;
  }
  result.stats = RunPairs(
      method, r_view, s_view, pairs, options,
      [&](Pipeline* pipeline, size_t i) {
        result.relations[i] =
            pipeline->FindRelation(pairs[i].r_idx, pairs[i].s_idx);
      },
      &result.status, &result.partial);
  return result;
}

ParallelJoinResult ParallelFindRelation(Method method, DatasetView r_view,
                                        DatasetView s_view,
                                        const std::vector<CandidatePair>& pairs,
                                        unsigned num_threads,
                                        bool time_stages) {
  return ParallelFindRelation(
      method, r_view, s_view, pairs,
      JoinOptions{.num_threads = num_threads, .time_stages = time_stages});
}

ParallelRelateResult ParallelRelate(Method method, DatasetView r_view,
                                    DatasetView s_view,
                                    const std::vector<CandidatePair>& pairs,
                                    de9im::Relation predicate,
                                    const JoinOptions& options) {
  ParallelRelateResult result;
  if (pairs.empty()) return result;  // no workers, no per-worker state
  result.matches.resize(pairs.size(), 0);
  if (options.batch_size > 1) {
    ExecContext* ctx = options.exec;
    result.partial.total = pairs.size();
    if (ctx != nullptr) result.partial.done.assign(pairs.size(), 0);
    const PairSchedule schedule = HilbertSchedule(r_view, s_view, pairs);
    result.stats = BatchedRelate(
        method, r_view, s_view, pairs, schedule.order, schedule.keys,
        predicate, MakeBatchOptions(options, pairs.size()),
        result.matches.data(),
        ctx != nullptr ? result.partial.done.data() : nullptr);
    FinalizeRun(ctx, &result.status, &result.partial);
    return result;
  }
  result.stats = RunPairs(
      method, r_view, s_view, pairs, options,
      [&](Pipeline* pipeline, size_t i) {
        result.matches[i] =
            pipeline->Relate(pairs[i].r_idx, pairs[i].s_idx, predicate) ? 1 : 0;
      },
      &result.status, &result.partial);
  return result;
}

ParallelRelateResult ParallelRelate(Method method, DatasetView r_view,
                                    DatasetView s_view,
                                    const std::vector<CandidatePair>& pairs,
                                    de9im::Relation predicate,
                                    unsigned num_threads, bool time_stages) {
  return ParallelRelate(
      method, r_view, s_view, pairs, predicate,
      JoinOptions{.num_threads = num_threads, .time_stages = time_stages});
}

}  // namespace stj
