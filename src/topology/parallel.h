#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "src/join/mbr_join.h"
#include "src/topology/pipeline.h"

namespace stj {

namespace internal {

/// Splits [0, total) into up to \p num_threads contiguous chunks and runs
/// fn(worker_index, begin, end) on each, in worker threads (inline on the
/// calling thread when a single chunk suffices). Returns the number of
/// workers that actually ran — always <= num_threads, 0 when total == 0 —
/// so callers can merge exactly the per-worker state that was written.
///
/// Exception safety: if workers throw, every thread is still joined and the
/// first exception (by completion order) is rethrown on the calling thread;
/// the process never std::terminates because of a throwing worker.
unsigned RunChunks(unsigned num_threads, size_t total,
                   const std::function<void(unsigned, size_t, size_t)>& fn);

}  // namespace internal

/// Result of a (possibly multi-threaded) find-relation join.
struct ParallelJoinResult {
  /// relations[i] answers pairs[i], in input order.
  std::vector<de9im::Relation> relations;
  /// Stage counters merged across all workers (timings are summed CPU time,
  /// not wall time).
  PipelineStats stats;
};

/// Evaluates find-relation for every candidate pair with \p method, fanning
/// the pairs out over \p num_threads workers (0 = hardware concurrency).
///
/// Pairs are split into contiguous chunks; each worker owns a private
/// Pipeline (the shared dataset views are read-only), so no synchronisation
/// is needed beyond the final join. Results are deterministic and identical
/// to the single-threaded run. A worker exception propagates to the caller
/// (see internal::RunChunks).
ParallelJoinResult ParallelFindRelation(Method method, DatasetView r_view,
                                        DatasetView s_view,
                                        const std::vector<CandidatePair>& pairs,
                                        unsigned num_threads = 0);

/// As above for a relate_p predicate join; returns one bool per pair.
struct ParallelRelateResult {
  std::vector<char> matches;  ///< 1 where the predicate holds.
  PipelineStats stats;
};
ParallelRelateResult ParallelRelate(Method method, DatasetView r_view,
                                    DatasetView s_view,
                                    const std::vector<CandidatePair>& pairs,
                                    de9im::Relation predicate,
                                    unsigned num_threads = 0);

}  // namespace stj
