#pragma once

#include <cstddef>
#include <vector>

#include "src/join/mbr_join.h"
#include "src/topology/pipeline.h"
#include "src/util/exec_context.h"
#include "src/util/parallel_for.h"  // internal::RunChunks / RunWorkers
#include "src/util/status.h"

namespace stj {

/// Execution knobs shared by the parallel join drivers. Every worker's
/// Pipeline inherits time_stages and the prepared-cache budget; the budget
/// is per worker (total prepared memory scales with the thread count).
struct JoinOptions {
  unsigned num_threads = 0;  ///< 0 = hardware concurrency.
  bool time_stages = false;
  /// Per-worker PreparedPolygon cache budget in bytes; 0 disables the cache
  /// (see PipelineOptions::prepared_cache_bytes). A pure performance knob:
  /// results are identical for every value.
  size_t prepared_cache_bytes = kDefaultPreparedCacheBytes;
  /// Optional per-query deadline/cancel/budget carrier (exec_context.h).
  /// When set, every worker checks in once per pair; a trip stops the join
  /// cooperatively with a loss-less PartialResult. Null (the default) keeps
  /// the unbounded run-to-completion behaviour at zero overhead.
  ExecContext* exec = nullptr;
  /// Pairs per SoA batch of the staged executor (batch_executor.h). Values
  /// > 1 route the join through the pipelined filter → refinement executor
  /// (batches stream through a bounded queue, refinement re-sorted for
  /// PreparedCache locality); <= 1 (the default) keeps the pair-at-a-time
  /// loops — the differential oracle, and the path whose single-threaded
  /// cancellation cut is an exact input-order prefix. Decisions are
  /// byte-identical for every value; only throughput changes.
  size_t batch_size = 1;
  /// Refinement-queue capacity in batches between the executor stages
  /// (ignored when batch_size <= 1). Bounds in-flight memory and provides
  /// the back-pressure that keeps filter and refinement overlapped.
  size_t queue_depth = 8;
  /// Per-worker decoded-record cache budget for CompressedAprilStore inputs
  /// (see PipelineOptions::decoded_cache_bytes); 0 disables. Applies to
  /// both executors. A pure performance knob — decisions are identical.
  size_t decoded_cache_bytes = kDefaultDecodedCacheBytes;
};

/// Which pairs of a cancellable join were fully verified before the cut.
/// Loss-less cancellation contract: an answered pair's result is final and
/// identical to what the unbounded run would have produced (the pipelines
/// are deterministic per pair), so a caller can keep the partial answer,
/// report it, or re-run exactly the unanswered remainder — merging the two
/// runs by pair index reproduces the full result byte-for-byte.
struct PartialResult {
  uint64_t completed = 0;  ///< Pairs fully verified before the cut.
  uint64_t total = 0;      ///< Pairs requested.
  /// done[i] != 0 iff pairs[i] was answered (relations[i] / matches[i] is
  /// valid). Empty on complete runs — completed == total is the cheap test.
  std::vector<char> done;

  bool Complete() const { return completed == total; }
  bool Answered(size_t i) const {
    return Complete() || (i < done.size() && done[i] != 0);
  }
};

/// Result of a (possibly multi-threaded) find-relation join.
struct ParallelJoinResult {
  /// relations[i] answers pairs[i], in input order. On a cut-short run only
  /// the entries with partial.Answered(i) are meaningful.
  std::vector<de9im::Relation> relations;
  /// Stage counters merged across all workers (timings are summed CPU time,
  /// not wall time).
  PipelineStats stats;
  /// Ok on complete runs; kCancelled / kDeadlineExceeded /
  /// kResourceExhausted when JoinOptions::exec tripped mid-join.
  Status status;
  /// Which pairs were answered before a trip (all of them when status.ok()).
  PartialResult partial;
};

/// Evaluates find-relation for every candidate pair with \p method, fanning
/// the pairs out over \p num_threads workers (0 = hardware concurrency).
///
/// Scheduling: refinement cost is wildly skewed by polygon complexity
/// (Fig. 8), so a static partition lets one unlucky chunk serialize the
/// whole join. Instead the pairs are pre-sorted by the Hilbert-curve
/// position of their reference tile (repeated objects stay cache-resident
/// within a block) and workers claim fixed-size blocks of that schedule
/// through a shared atomic cursor until the list is drained.
///
/// Each worker owns a private Pipeline (the shared dataset views are
/// read-only), so no synchronisation is needed beyond the block cursor and
/// the final join. relations[i] is written by exactly one worker; results
/// are deterministic and identical to the single-threaded run regardless of
/// thread count. \p time_stages enables per-pair stage timers in every
/// worker (PipelineStats::filter_seconds / refine_seconds; summed CPU
/// seconds across workers). A worker exception propagates to the caller
/// (see internal::RunWorkers).
ParallelJoinResult ParallelFindRelation(Method method, DatasetView r_view,
                                        DatasetView s_view,
                                        const std::vector<CandidatePair>& pairs,
                                        const JoinOptions& options);

/// Compatibility overload: default options apart from the two legacy knobs.
ParallelJoinResult ParallelFindRelation(Method method, DatasetView r_view,
                                        DatasetView s_view,
                                        const std::vector<CandidatePair>& pairs,
                                        unsigned num_threads = 0,
                                        bool time_stages = false);

/// As above for a relate_p predicate join; returns one bool per pair.
struct ParallelRelateResult {
  std::vector<char> matches;  ///< 1 where the predicate holds.
  PipelineStats stats;
  /// Same cancellation surface as ParallelJoinResult.
  Status status;
  PartialResult partial;
};
ParallelRelateResult ParallelRelate(Method method, DatasetView r_view,
                                    DatasetView s_view,
                                    const std::vector<CandidatePair>& pairs,
                                    de9im::Relation predicate,
                                    const JoinOptions& options);

/// Compatibility overload: default options apart from the two legacy knobs.
ParallelRelateResult ParallelRelate(Method method, DatasetView r_view,
                                    DatasetView s_view,
                                    const std::vector<CandidatePair>& pairs,
                                    de9im::Relation predicate,
                                    unsigned num_threads = 0,
                                    bool time_stages = false);

/// Copies one worker scope's watchdog observations into its stage stats
/// (merged across workers by MergeStats exactly like the prepared_*
/// telemetry). Shared by the pair-at-a-time drivers and the batch executor.
void RecordScope(const ExecContext::Scope& scope, PipelineStats* stats);

}  // namespace stj
