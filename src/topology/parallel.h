#pragma once

#include <vector>

#include "src/join/mbr_join.h"
#include "src/topology/pipeline.h"

namespace stj {

/// Result of a (possibly multi-threaded) find-relation join.
struct ParallelJoinResult {
  /// relations[i] answers pairs[i], in input order.
  std::vector<de9im::Relation> relations;
  /// Stage counters merged across all workers (timings are summed CPU time,
  /// not wall time).
  PipelineStats stats;
};

/// Evaluates find-relation for every candidate pair with \p method, fanning
/// the pairs out over \p num_threads workers (0 = hardware concurrency).
///
/// Pairs are split into contiguous chunks; each worker owns a private
/// Pipeline (the shared dataset views are read-only), so no synchronisation
/// is needed beyond the final join. Results are deterministic and identical
/// to the single-threaded run.
ParallelJoinResult ParallelFindRelation(Method method, DatasetView r_view,
                                        DatasetView s_view,
                                        const std::vector<CandidatePair>& pairs,
                                        unsigned num_threads = 0);

/// As above for a relate_p predicate join; returns one bool per pair.
struct ParallelRelateResult {
  std::vector<char> matches;  ///< 1 where the predicate holds.
  PipelineStats stats;
};
ParallelRelateResult ParallelRelate(Method method, DatasetView r_view,
                                    DatasetView s_view,
                                    const std::vector<CandidatePair>& pairs,
                                    de9im::Relation predicate,
                                    unsigned num_threads = 0);

}  // namespace stj
