#include "src/topology/pipeline.h"

#include "src/de9im/relate_engine.h"
#include "src/interval/interval_algebra.h"
#include "src/topology/mbr_relation.h"
#include "src/topology/relate_predicate.h"

namespace stj {

using de9im::Relation;
using de9im::RelationSet;

const char* ToString(Method method) {
  switch (method) {
    case Method::kST2: return "ST2";
    case Method::kOP2: return "OP2";
    case Method::kApril: return "APRIL";
    case Method::kPC: return "P+C";
  }
  return "?";
}

namespace {

/// RAII helper that adds elapsed time to a stats field when enabled.
class ScopedStageTime {
 public:
  ScopedStageTime(bool enabled, double* sink) : sink_(enabled ? sink : nullptr) {
    if (sink_ != nullptr) timer_.Reset();
  }
  ~ScopedStageTime() {
    if (sink_ != nullptr) *sink_ += timer_.ElapsedSeconds();
  }
  ScopedStageTime(const ScopedStageTime&) = delete;
  ScopedStageTime& operator=(const ScopedStageTime&) = delete;

 private:
  double* sink_;
  Timer timer_;
};

}  // namespace

Pipeline::Pipeline(Method method, DatasetView r_view, DatasetView s_view,
                   bool time_stages)
    : Pipeline(method, r_view, s_view,
               PipelineOptions{.time_stages = time_stages}) {}

Pipeline::Pipeline(Method method, DatasetView r_view, DatasetView s_view,
                   const PipelineOptions& options)
    : method_(method),
      r_view_(r_view),
      s_view_(s_view),
      options_(options),
      r_prepared_(options.prepared_cache_bytes),
      s_prepared_(options.prepared_cache_bytes) {}

bool Pipeline::AprilFor(const DatasetView& view, uint32_t idx,
                        AprilView* out) {
  if (view.store != nullptr) {
    if (idx >= view.store->Count() || !view.store->Usable(idx)) return false;
    *out = view.store->View(idx);
    return true;
  }
  if (view.april == nullptr || idx >= view.april->size()) return false;
  const AprilApproximation& april = (*view.april)[idx];
  if (!april.usable) return false;
  *out = AprilView(april);
  return true;
}

bool Pipeline::CompressedAprilFor(const DatasetView& view, uint32_t idx,
                                  CompressedAprilView* out) {
  if (view.cstore == nullptr || idx >= view.cstore->Count() ||
      !view.cstore->Usable(idx)) {
    return false;
  }
  *out = view.cstore->View(idx);
  return true;
}

const PreparedPolygon& Pipeline::PreparedFor(PreparedCache* cache,
                                             const DatasetView& view,
                                             uint32_t idx,
                                             PreparedPolygon* scratch) {
  const Polygon& poly = (*view.objects)[idx].geometry;
  if (options_.prepared_cache_bytes == 0) {
    // Caching disabled: a lazy one-shot wrapper — exactly the cold path.
    *scratch = PreparedPolygon(poly);
    return *scratch;
  }
  if (const PreparedPolygon* hit = cache->Find(idx)) {
    ++stats_.prepared_hits;
    return *hit;
  }
  ++stats_.prepared_misses;
  ScopedStageTime timing(options_.time_stages,
                         &stats_.prepared_build_seconds);
  PreparedPolygon prepared(poly);
  prepared.Warm();
  return *cache->Insert(idx, std::move(prepared),
                        PreparedPolygon::EstimateBytes(poly));
}

Relation Pipeline::Refine(uint32_t r_idx, uint32_t s_idx,
                          RelationSet candidates) {
  ScopedStageTime timing(options_.time_stages, &stats_.refine_seconds);
  ++stats_.refined;
  PreparedPolygon r_scratch;
  PreparedPolygon s_scratch;
  const PreparedPolygon& r =
      PreparedFor(&r_prepared_, r_view_, r_idx, &r_scratch);
  const PreparedPolygon& s =
      PreparedFor(&s_prepared_, s_view_, s_idx, &s_scratch);
  const de9im::Matrix matrix = de9im::RelateEngine::Relate(r, s);
  return MostSpecificRelation(matrix, candidates);
}

Relation Pipeline::FindRelation(uint32_t r_idx, uint32_t s_idx) {
  ++stats_.pairs;
  const Box& r_mbr = (*r_view_.objects)[r_idx].geometry.Bounds();
  const Box& s_mbr = (*s_view_.objects)[s_idx].geometry.Bounds();

  switch (method_) {
    case Method::kST2: {
      // Plain 2-phase: MBR disjointness, then refinement with all masks.
      RelationSet candidates = RelationSet::All();
      {
        ScopedStageTime timing(options_.time_stages, &stats_.filter_seconds);
        if (!r_mbr.Intersects(s_mbr)) {
          ++stats_.decided_by_mbr;
          return Relation::kDisjoint;
        }
      }
      return Refine(r_idx, s_idx, candidates);
    }
    case Method::kOP2: {
      // Optimised 2-phase: the MBR intersection case narrows the candidate
      // masks (Sec. 3.1); the cross case even decides outright.
      BoxRelation boxes;
      {
        ScopedStageTime timing(options_.time_stages, &stats_.filter_seconds);
        boxes = ClassifyBoxes(r_mbr, s_mbr);
        if (boxes == BoxRelation::kDisjoint) {
          ++stats_.decided_by_mbr;
          return Relation::kDisjoint;
        }
        if (boxes == BoxRelation::kCross) {
          ++stats_.decided_by_mbr;
          return Relation::kIntersects;
        }
      }
      return Refine(r_idx, s_idx, MbrCandidates(boxes));
    }
    case Method::kApril: {
      // OP2 + intersection-only raster filter [14]: can decide disjoint, but
      // every other pair must still be refined (the filter cannot identify a
      // relation more specific than intersects).
      BoxRelation boxes;
      RelationSet candidates;
      {
        ScopedStageTime timing(options_.time_stages, &stats_.filter_seconds);
        boxes = ClassifyBoxes(r_mbr, s_mbr);
        if (boxes == BoxRelation::kDisjoint) {
          ++stats_.decided_by_mbr;
          return Relation::kDisjoint;
        }
        if (boxes == BoxRelation::kCross) {
          ++stats_.decided_by_mbr;
          return Relation::kIntersects;
        }
        candidates = MbrCandidates(boxes);
        // Generic over the storage form: the List* relations overload on the
        // view's member type, so the flat and compressed branches run the
        // same tests. Returns true when the pair is definitely disjoint.
        const auto april_decides_disjoint = [&](const auto& ra,
                                                const auto& sa) {
          if (!ListsOverlap(ra.conservative, sa.conservative)) return true;
          if (ListsOverlap(ra.conservative, sa.progressive) ||
              ListsOverlap(ra.progressive, sa.conservative)) {
            // Definitely intersecting: drop disjoint and meets from the masks
            // to check, but refinement is still required.
            candidates.Remove(Relation::kDisjoint);
            candidates.Remove(Relation::kMeets);
          }
          return false;
        };
        bool have = false;
        bool disjoint = false;
        if (UseCompressed()) {
          CompressedAprilView ra;
          CompressedAprilView sa;
          if (CompressedAprilFor(r_view_, r_idx, &ra) &&
              CompressedAprilFor(s_view_, s_idx, &sa)) {
            have = true;
            disjoint = april_decides_disjoint(ra, sa);
          }
        } else {
          AprilView ra;
          AprilView sa;
          if (AprilFor(r_view_, r_idx, &ra) && AprilFor(s_view_, s_idx, &sa)) {
            have = true;
            disjoint = april_decides_disjoint(ra, sa);
          }
        }
        if (!have) {
          // Degraded mode: an approximation is missing or corrupt, so the
          // raster filter cannot run — fall back to OP2-style refinement
          // with the MBR-narrowed candidates (still exact, just slower).
          ++stats_.fallback_refined;
        } else if (disjoint) {
          ++stats_.decided_by_filter;
          return Relation::kDisjoint;
        }
      }
      return Refine(r_idx, s_idx, candidates);
    }
    case Method::kPC: {
      // The paper's Algorithm 1, over whichever storage form the views
      // carry: both FindRelationFilter overloads run the same decision
      // sequence, so the storage form cannot change the answer.
      FilterDecision decision;
      bool have = false;
      if (UseCompressed()) {
        CompressedAprilView ra;
        CompressedAprilView sa;
        if (CompressedAprilFor(r_view_, r_idx, &ra) &&
            CompressedAprilFor(s_view_, s_idx, &sa)) {
          have = true;
          ScopedStageTime timing(options_.time_stages, &stats_.filter_seconds);
          decision = FindRelationFilter(r_mbr, ra, s_mbr, sa);
        }
      } else {
        AprilView ra;
        AprilView sa;
        if (AprilFor(r_view_, r_idx, &ra) && AprilFor(s_view_, s_idx, &sa)) {
          have = true;
          ScopedStageTime timing(options_.time_stages, &stats_.filter_seconds);
          decision = FindRelationFilter(r_mbr, ra, s_mbr, sa);
        }
      }
      if (!have) {
        // Degraded mode: without both approximations Algorithm 1 cannot run.
        // The MBRs still decide the cheap cases; everything else falls back
        // to refinement over the MBR-narrowed candidates (OP2-equivalent).
        BoxRelation boxes;
        {
          ScopedStageTime timing(options_.time_stages, &stats_.filter_seconds);
          boxes = ClassifyBoxes(r_mbr, s_mbr);
          if (boxes == BoxRelation::kDisjoint) {
            ++stats_.decided_by_mbr;
            return Relation::kDisjoint;
          }
          if (boxes == BoxRelation::kCross) {
            ++stats_.decided_by_mbr;
            return Relation::kIntersects;
          }
        }
        ++stats_.fallback_refined;
        return Refine(r_idx, s_idx, MbrCandidates(boxes));
      }
      if (decision.definite) {
        if (decision.stage == DecisionStage::kMbrFilter) {
          ++stats_.decided_by_mbr;
        } else {
          ++stats_.decided_by_filter;
        }
        return decision.relation;
      }
      return Refine(r_idx, s_idx, decision.candidates);
    }
  }
  return Relation::kDisjoint;
}

bool Pipeline::RefinePredicate(uint32_t r_idx, uint32_t s_idx, Relation p) {
  ScopedStageTime timing(options_.time_stages, &stats_.refine_seconds);
  ++stats_.refined;
  PreparedPolygon r_scratch;
  PreparedPolygon s_scratch;
  const PreparedPolygon& r =
      PreparedFor(&r_prepared_, r_view_, r_idx, &r_scratch);
  const PreparedPolygon& s =
      PreparedFor(&s_prepared_, s_view_, s_idx, &s_scratch);
  return RelationHolds(p, de9im::RelateEngine::Relate(r, s));
}

bool Pipeline::Relate(uint32_t r_idx, uint32_t s_idx, Relation p) {
  ++stats_.pairs;
  const Box& r_mbr = (*r_view_.objects)[r_idx].geometry.Bounds();
  const Box& s_mbr = (*s_view_.objects)[s_idx].geometry.Bounds();

  if (method_ == Method::kPC) {
    bool have = false;
    RelateAnswer answer = RelateAnswer::kInconclusive;
    if (UseCompressed()) {
      CompressedAprilView ra;
      CompressedAprilView sa;
      if (CompressedAprilFor(r_view_, r_idx, &ra) &&
          CompressedAprilFor(s_view_, s_idx, &sa)) {
        have = true;
        ScopedStageTime timing(options_.time_stages, &stats_.filter_seconds);
        answer = RelatePredicateFilter(p, r_mbr, ra, s_mbr, sa);
      }
    } else {
      AprilView ra;
      AprilView sa;
      if (AprilFor(r_view_, r_idx, &ra) && AprilFor(s_view_, s_idx, &sa)) {
        have = true;
        ScopedStageTime timing(options_.time_stages, &stats_.filter_seconds);
        answer = RelatePredicateFilter(p, r_mbr, ra, s_mbr, sa);
      }
    }
    if (have) {
      switch (answer) {
        case RelateAnswer::kYes:
          ++stats_.decided_by_filter;
          return true;
        case RelateAnswer::kNo:
          ++stats_.decided_by_filter;
          return false;
        case RelateAnswer::kInconclusive:
          return RefinePredicate(r_idx, s_idx, p);
      }
    }
    // Degraded mode: fall through to the approximation-free path below.
    {
      ScopedStageTime timing(options_.time_stages, &stats_.filter_seconds);
      if (!r_mbr.Intersects(s_mbr)) {
        ++stats_.decided_by_mbr;
        return p == Relation::kDisjoint;
      }
    }
    ++stats_.fallback_refined;
    return RefinePredicate(r_idx, s_idx, p);
  }

  // Other methods answer relate_p through their find-relation machinery:
  // the MBR filter handles disjointness, everything else refines.
  {
    ScopedStageTime timing(options_.time_stages, &stats_.filter_seconds);
    if (!r_mbr.Intersects(s_mbr)) {
      ++stats_.decided_by_mbr;
      return p == Relation::kDisjoint;
    }
  }
  return RefinePredicate(r_idx, s_idx, p);
}

}  // namespace stj
