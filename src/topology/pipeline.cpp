#include "src/topology/pipeline.h"

#include <algorithm>

#include "src/de9im/relate_engine.h"
#include "src/interval/interval_algebra.h"
#include "src/topology/mbr_relation.h"

namespace stj {

using de9im::Relation;
using de9im::RelationSet;

const char* ToString(Method method) {
  switch (method) {
    case Method::kST2: return "ST2";
    case Method::kOP2: return "OP2";
    case Method::kApril: return "APRIL";
    case Method::kPC: return "P+C";
  }
  return "?";
}

void MergeStats(const PipelineStats& from, PipelineStats* into) {
  into->pairs += from.pairs;
  into->decided_by_mbr += from.decided_by_mbr;
  into->decided_by_filter += from.decided_by_filter;
  into->refined += from.refined;
  into->fallback_refined += from.fallback_refined;
  into->prepared_hits += from.prepared_hits;
  into->prepared_misses += from.prepared_misses;
  into->checkins += from.checkins;
  into->deadline_hits += from.deadline_hits;
  into->cancel_latency_us =
      std::max(into->cancel_latency_us, from.cancel_latency_us);
  into->decoded_hits += from.decoded_hits;
  into->decoded_misses += from.decoded_misses;
  into->decoded_corrupt += from.decoded_corrupt;
  into->batches += from.batches;
  into->batches_enqueued += from.batches_enqueued;
  into->batches_dequeued += from.batches_dequeued;
  into->queue_max_depth = std::max(into->queue_max_depth, from.queue_max_depth);
  into->queue_stall_seconds += from.queue_stall_seconds;
  into->filter_seconds += from.filter_seconds;
  into->refine_seconds += from.refine_seconds;
  into->prepared_build_seconds += from.prepared_build_seconds;
}

namespace {

/// RAII helper that adds elapsed time to a stats field when enabled.
class ScopedStageTime {
 public:
  ScopedStageTime(bool enabled, double* sink) : sink_(enabled ? sink : nullptr) {
    if (sink_ != nullptr) timer_.Reset();
  }
  ~ScopedStageTime() {
    if (sink_ != nullptr) *sink_ += timer_.ElapsedSeconds();
  }
  ScopedStageTime(const ScopedStageTime&) = delete;
  ScopedStageTime& operator=(const ScopedStageTime&) = delete;

 private:
  double* sink_;
  Timer timer_;
};

}  // namespace

Pipeline::Pipeline(Method method, DatasetView r_view, DatasetView s_view,
                   bool time_stages)
    : Pipeline(method, r_view, s_view,
               PipelineOptions{.time_stages = time_stages}) {}

Pipeline::Pipeline(Method method, DatasetView r_view, DatasetView s_view,
                   const PipelineOptions& options)
    : method_(method),
      r_view_(r_view),
      s_view_(s_view),
      options_(options),
      r_prepared_(options.prepared_cache_bytes),
      s_prepared_(options.prepared_cache_bytes),
      r_decoded_(options.decoded_cache_bytes),
      s_decoded_(options.decoded_cache_bytes) {}

bool Pipeline::AprilFor(const DatasetView& view, uint32_t idx,
                        AprilView* out) {
  if (view.store != nullptr) {
    if (idx >= view.store->Count() || !view.store->Usable(idx)) return false;
    *out = view.store->View(idx);
    return true;
  }
  if (view.april == nullptr || idx >= view.april->size()) return false;
  const AprilApproximation& april = (*view.april)[idx];
  if (!april.usable) return false;
  *out = AprilView(april);
  return true;
}

bool Pipeline::CompressedAprilFor(const DatasetView& view, uint32_t idx,
                                  CompressedAprilView* out) {
  if (view.cstore == nullptr || idx >= view.cstore->Count() ||
      !view.cstore->Usable(idx)) {
    return false;
  }
  *out = view.cstore->View(idx);
  return true;
}

bool Pipeline::DecodedAprilFor(const DatasetView& view,
                               DecodedAprilCache* cache, uint32_t idx,
                               AprilView* out) {
  switch (cache->Fetch(*view.cstore, idx, out)) {
    case DecodedAprilCache::FetchOutcome::kHit:
      ++stats_.decoded_hits;
      return true;
    case DecodedAprilCache::FetchOutcome::kMiss:
      ++stats_.decoded_misses;
      return true;
    case DecodedAprilCache::FetchOutcome::kCorrupt:
      ++stats_.decoded_corrupt;
      return false;
    case DecodedAprilCache::FetchOutcome::kAbsent:
      return false;
  }
  return false;
}

const PreparedPolygon& Pipeline::PreparedFor(PreparedCache* cache,
                                             const DatasetView& view,
                                             uint32_t idx,
                                             PreparedPolygon* scratch) {
  const Polygon& poly = (*view.objects)[idx].geometry;
  if (options_.prepared_cache_bytes == 0) {
    // Caching disabled: a lazy one-shot wrapper — exactly the cold path.
    *scratch = PreparedPolygon(poly);
    return *scratch;
  }
  if (const PreparedPolygon* hit = cache->Find(idx)) {
    ++stats_.prepared_hits;
    return *hit;
  }
  ++stats_.prepared_misses;
  ScopedStageTime timing(options_.time_stages,
                         &stats_.prepared_build_seconds);
  PreparedPolygon prepared(poly);
  prepared.Warm();
  return *cache->Insert(idx, std::move(prepared),
                        PreparedPolygon::EstimateBytes(poly));
}

Relation Pipeline::Refine(uint32_t r_idx, uint32_t s_idx,
                          RelationSet candidates) {
  ScopedStageTime timing(options_.time_stages, &stats_.refine_seconds);
  ++stats_.refined;
  PreparedPolygon r_scratch;
  PreparedPolygon s_scratch;
  const PreparedPolygon& r =
      PreparedFor(&r_prepared_, r_view_, r_idx, &r_scratch);
  const PreparedPolygon& s =
      PreparedFor(&s_prepared_, s_view_, s_idx, &s_scratch);
  const de9im::Matrix matrix = de9im::RelateEngine::Relate(r, s);
  return MostSpecificRelation(matrix, candidates);
}

Pipeline::FilterOutcome Pipeline::FilterStage(uint32_t r_idx, uint32_t s_idx) {
  ++stats_.pairs;
  const Box& r_mbr = (*r_view_.objects)[r_idx].geometry.Bounds();
  const Box& s_mbr = (*s_view_.objects)[s_idx].geometry.Bounds();

  const auto decided = [](Relation relation) {
    return FilterOutcome{
        .definite = true, .relation = relation, .candidates = RelationSet()};
  };
  const auto undetermined = [](RelationSet candidates) {
    return FilterOutcome{.definite = false,
                         .relation = Relation::kDisjoint,
                         .candidates = candidates};
  };

  switch (method_) {
    case Method::kST2: {
      // Plain 2-phase: MBR disjointness, then refinement with all masks.
      {
        ScopedStageTime timing(options_.time_stages, &stats_.filter_seconds);
        if (!r_mbr.Intersects(s_mbr)) {
          ++stats_.decided_by_mbr;
          return decided(Relation::kDisjoint);
        }
      }
      return undetermined(RelationSet::All());
    }
    case Method::kOP2: {
      // Optimised 2-phase: the MBR intersection case narrows the candidate
      // masks (Sec. 3.1); the cross case even decides outright.
      BoxRelation boxes;
      {
        ScopedStageTime timing(options_.time_stages, &stats_.filter_seconds);
        boxes = ClassifyBoxes(r_mbr, s_mbr);
        if (boxes == BoxRelation::kDisjoint) {
          ++stats_.decided_by_mbr;
          return decided(Relation::kDisjoint);
        }
        if (boxes == BoxRelation::kCross) {
          ++stats_.decided_by_mbr;
          return decided(Relation::kIntersects);
        }
      }
      return undetermined(MbrCandidates(boxes));
    }
    case Method::kApril: {
      // OP2 + intersection-only raster filter [14]: can decide disjoint, but
      // every other pair must still be refined (the filter cannot identify a
      // relation more specific than intersects).
      BoxRelation boxes;
      RelationSet candidates;
      {
        ScopedStageTime timing(options_.time_stages, &stats_.filter_seconds);
        boxes = ClassifyBoxes(r_mbr, s_mbr);
        if (boxes == BoxRelation::kDisjoint) {
          ++stats_.decided_by_mbr;
          return decided(Relation::kDisjoint);
        }
        if (boxes == BoxRelation::kCross) {
          ++stats_.decided_by_mbr;
          return decided(Relation::kIntersects);
        }
        candidates = MbrCandidates(boxes);
        // Generic over the storage form: the List* relations overload on the
        // view's member type, so the flat and compressed branches run the
        // same tests. Returns true when the pair is definitely disjoint.
        const auto april_decides_disjoint = [&](const auto& ra,
                                                const auto& sa) {
          if (!ListsOverlap(ra.conservative, sa.conservative)) return true;
          if (ListsOverlap(ra.conservative, sa.progressive) ||
              ListsOverlap(ra.progressive, sa.conservative)) {
            // Definitely intersecting: drop disjoint and meets from the masks
            // to check, but refinement is still required.
            candidates.Remove(Relation::kDisjoint);
            candidates.Remove(Relation::kMeets);
          }
          return false;
        };
        bool have = false;
        bool disjoint = false;
        if (UseCompressed()) {
          if (UseDecodedCache()) {
            // Decoded-record path: flat SIMD kernels over cached decodes —
            // same tests, same answers (and PR 7 pins flat/compressed
            // filter agreement).
            AprilView ra;
            AprilView sa;
            if (DecodedAprilFor(r_view_, &r_decoded_, r_idx, &ra) &&
                DecodedAprilFor(s_view_, &s_decoded_, s_idx, &sa)) {
              have = true;
              disjoint = april_decides_disjoint(ra, sa);
            }
          } else {
            CompressedAprilView ra;
            CompressedAprilView sa;
            if (CompressedAprilFor(r_view_, r_idx, &ra) &&
                CompressedAprilFor(s_view_, s_idx, &sa)) {
              have = true;
              disjoint = april_decides_disjoint(ra, sa);
            }
          }
        } else {
          AprilView ra;
          AprilView sa;
          if (AprilFor(r_view_, r_idx, &ra) && AprilFor(s_view_, s_idx, &sa)) {
            have = true;
            disjoint = april_decides_disjoint(ra, sa);
          }
        }
        if (!have) {
          // Degraded mode: an approximation is missing or corrupt, so the
          // raster filter cannot run — fall back to OP2-style refinement
          // with the MBR-narrowed candidates (still exact, just slower).
          ++stats_.fallback_refined;
        } else if (disjoint) {
          ++stats_.decided_by_filter;
          return decided(Relation::kDisjoint);
        }
      }
      return undetermined(candidates);
    }
    case Method::kPC: {
      // The paper's Algorithm 1, over whichever storage form the views
      // carry: all FindRelationFilter overloads run the same decision
      // sequence, so the storage form cannot change the answer.
      FilterDecision decision;
      bool have = false;
      if (UseCompressed()) {
        if (UseDecodedCache()) {
          AprilView ra;
          AprilView sa;
          if (DecodedAprilFor(r_view_, &r_decoded_, r_idx, &ra) &&
              DecodedAprilFor(s_view_, &s_decoded_, s_idx, &sa)) {
            have = true;
            ScopedStageTime timing(options_.time_stages,
                                   &stats_.filter_seconds);
            decision = FindRelationFilter(r_mbr, ra, s_mbr, sa);
          }
        } else {
          CompressedAprilView ra;
          CompressedAprilView sa;
          if (CompressedAprilFor(r_view_, r_idx, &ra) &&
              CompressedAprilFor(s_view_, s_idx, &sa)) {
            have = true;
            ScopedStageTime timing(options_.time_stages,
                                   &stats_.filter_seconds);
            decision = FindRelationFilter(r_mbr, ra, s_mbr, sa);
          }
        }
      } else {
        AprilView ra;
        AprilView sa;
        if (AprilFor(r_view_, r_idx, &ra) && AprilFor(s_view_, s_idx, &sa)) {
          have = true;
          ScopedStageTime timing(options_.time_stages, &stats_.filter_seconds);
          decision = FindRelationFilter(r_mbr, ra, s_mbr, sa);
        }
      }
      if (!have) {
        // Degraded mode: without both approximations Algorithm 1 cannot run.
        // The MBRs still decide the cheap cases; everything else falls back
        // to refinement over the MBR-narrowed candidates (OP2-equivalent).
        BoxRelation boxes;
        {
          ScopedStageTime timing(options_.time_stages, &stats_.filter_seconds);
          boxes = ClassifyBoxes(r_mbr, s_mbr);
          if (boxes == BoxRelation::kDisjoint) {
            ++stats_.decided_by_mbr;
            return decided(Relation::kDisjoint);
          }
          if (boxes == BoxRelation::kCross) {
            ++stats_.decided_by_mbr;
            return decided(Relation::kIntersects);
          }
        }
        ++stats_.fallback_refined;
        return undetermined(MbrCandidates(boxes));
      }
      if (decision.definite) {
        if (decision.stage == DecisionStage::kMbrFilter) {
          ++stats_.decided_by_mbr;
        } else {
          ++stats_.decided_by_filter;
        }
        return decided(decision.relation);
      }
      return undetermined(decision.candidates);
    }
  }
  return decided(Relation::kDisjoint);
}

Relation Pipeline::FindRelation(uint32_t r_idx, uint32_t s_idx) {
  const FilterOutcome outcome = FilterStage(r_idx, s_idx);
  if (outcome.definite) return outcome.relation;
  return Refine(r_idx, s_idx, outcome.candidates);
}

bool Pipeline::RefineStagePredicate(uint32_t r_idx, uint32_t s_idx,
                                    Relation p) {
  ScopedStageTime timing(options_.time_stages, &stats_.refine_seconds);
  ++stats_.refined;
  PreparedPolygon r_scratch;
  PreparedPolygon s_scratch;
  const PreparedPolygon& r =
      PreparedFor(&r_prepared_, r_view_, r_idx, &r_scratch);
  const PreparedPolygon& s =
      PreparedFor(&s_prepared_, s_view_, s_idx, &s_scratch);
  return RelationHolds(p, de9im::RelateEngine::Relate(r, s));
}

RelateAnswer Pipeline::FilterStagePredicate(uint32_t r_idx, uint32_t s_idx,
                                            Relation p) {
  ++stats_.pairs;
  const Box& r_mbr = (*r_view_.objects)[r_idx].geometry.Bounds();
  const Box& s_mbr = (*s_view_.objects)[s_idx].geometry.Bounds();

  if (method_ == Method::kPC) {
    bool have = false;
    RelateAnswer answer = RelateAnswer::kInconclusive;
    if (UseCompressed()) {
      if (UseDecodedCache()) {
        AprilView ra;
        AprilView sa;
        if (DecodedAprilFor(r_view_, &r_decoded_, r_idx, &ra) &&
            DecodedAprilFor(s_view_, &s_decoded_, s_idx, &sa)) {
          have = true;
          ScopedStageTime timing(options_.time_stages, &stats_.filter_seconds);
          answer = RelatePredicateFilter(p, r_mbr, ra, s_mbr, sa);
        }
      } else {
        CompressedAprilView ra;
        CompressedAprilView sa;
        if (CompressedAprilFor(r_view_, r_idx, &ra) &&
            CompressedAprilFor(s_view_, s_idx, &sa)) {
          have = true;
          ScopedStageTime timing(options_.time_stages, &stats_.filter_seconds);
          answer = RelatePredicateFilter(p, r_mbr, ra, s_mbr, sa);
        }
      }
    } else {
      AprilView ra;
      AprilView sa;
      if (AprilFor(r_view_, r_idx, &ra) && AprilFor(s_view_, s_idx, &sa)) {
        have = true;
        ScopedStageTime timing(options_.time_stages, &stats_.filter_seconds);
        answer = RelatePredicateFilter(p, r_mbr, ra, s_mbr, sa);
      }
    }
    if (have) {
      switch (answer) {
        case RelateAnswer::kYes:
        case RelateAnswer::kNo:
          ++stats_.decided_by_filter;
          return answer;
        case RelateAnswer::kInconclusive:
          return RelateAnswer::kInconclusive;
      }
    }
    // Degraded mode: fall through to the approximation-free path below.
    {
      ScopedStageTime timing(options_.time_stages, &stats_.filter_seconds);
      if (!r_mbr.Intersects(s_mbr)) {
        ++stats_.decided_by_mbr;
        return p == Relation::kDisjoint ? RelateAnswer::kYes
                                        : RelateAnswer::kNo;
      }
    }
    ++stats_.fallback_refined;
    return RelateAnswer::kInconclusive;
  }

  // Other methods answer relate_p through their find-relation machinery:
  // the MBR filter handles disjointness, everything else refines.
  {
    ScopedStageTime timing(options_.time_stages, &stats_.filter_seconds);
    if (!r_mbr.Intersects(s_mbr)) {
      ++stats_.decided_by_mbr;
      return p == Relation::kDisjoint ? RelateAnswer::kYes : RelateAnswer::kNo;
    }
  }
  return RelateAnswer::kInconclusive;
}

bool Pipeline::Relate(uint32_t r_idx, uint32_t s_idx, Relation p) {
  switch (FilterStagePredicate(r_idx, s_idx, p)) {
    case RelateAnswer::kYes: return true;
    case RelateAnswer::kNo: return false;
    case RelateAnswer::kInconclusive: break;
  }
  return RefineStagePredicate(r_idx, s_idx, p);
}

}  // namespace stj
