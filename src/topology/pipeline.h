#pragma once

#include <cstdint>
#include <vector>

#include "src/de9im/relation.h"
#include "src/geometry/polygon.h"
#include "src/geometry/prepared_polygon.h"
#include "src/raster/april.h"
#include "src/raster/april_compressed.h"
#include "src/raster/april_store.h"
#include "src/raster/decoded_block_cache.h"
#include "src/topology/find_relation.h"
#include "src/topology/prepared_cache.h"
#include "src/topology/relate_predicate.h"
#include "src/util/timer.h"

namespace stj {

/// The four compared find-relation methods (Sec. 4).
enum class Method : uint8_t {
  kST2,    ///< MBR filter + refinement with all 8 relations.
  kOP2,    ///< MBR-relationship-narrowed refinement (Sec. 3.1 only).
  kApril,  ///< OP2 + APRIL intersection-only intermediate filter [14].
  kPC,     ///< The paper's method (Sec. 3): full P+C intermediate filters.
};

const char* ToString(Method method);

/// One side of a join: objects plus (for kApril/kPC) their approximations.
/// Approximations come from exactly one of three storages, index-aligned
/// with `objects` either way: a legacy vector<AprilApproximation>, an
/// arena-backed AprilStore (april_store.h), or a blocked-codec
/// CompressedAprilStore (april_compressed.h). When `store` is set it takes
/// precedence over `april`; all may be null for methods that do not use
/// approximations. The compressed storage is used only when BOTH sides of
/// the join carry a `cstore` (the filters need one storage form per pair);
/// it then takes precedence over the flat storages. Join results are
/// identical across all storages — the compressed filter path computes the
/// same relations block-by-block.
struct DatasetView {
  const std::vector<SpatialObject>* objects = nullptr;
  const std::vector<AprilApproximation>* april = nullptr;
  const AprilStore* store = nullptr;
  const CompressedAprilStore* cstore = nullptr;
};

/// Default per-worker prepared-geometry cache budget. Sized so the working
/// set of a Hilbert-ordered refinement schedule (the objects of a few
/// consecutive blocks) stays resident: at the ~96 B/vertex estimate this
/// holds roughly 300k polygon vertices per worker.
inline constexpr size_t kDefaultPreparedCacheBytes = size_t{32} << 20;

/// Execution knobs of one Pipeline (one refinement worker).
struct PipelineOptions {
  /// Enables per-pair stage timers (small overhead; used by the Fig. 8(b)
  /// harness, off for pure throughput runs).
  bool time_stages = false;
  /// Byte budget of the per-worker PreparedPolygon cache that amortises
  /// locator/edge-index/representative-point construction across the
  /// candidate pairs an object participates in. 0 disables caching: every
  /// refinement builds one-shot prepared wrappers, exactly the pre-cache
  /// behaviour. The cache is a pure performance layer — results are
  /// byte-identical for every budget.
  size_t prepared_cache_bytes = kDefaultPreparedCacheBytes;
  /// Byte budget of the per-worker decoded-record LRU used when the join
  /// runs on CompressedAprilStore inputs: hot records are decoded to flat
  /// canonical form once and the filter stage runs the flat (SIMD) interval
  /// kernels over them instead of the fused block-decoding merges. 0
  /// disables the cache (every pair uses the compressed filter overloads,
  /// the pre-PR8 behaviour). Decisions are identical either way — the PR 7
  /// differential suite pins flat/compressed filter agreement.
  size_t decoded_cache_bytes = kDefaultDecodedCacheBytes;
};

/// Per-run pipeline counters and stage timings, the raw material of
/// Fig. 7(b) (undetermined %) and Fig. 8(b) (stage costs).
struct PipelineStats {
  uint64_t pairs = 0;
  uint64_t decided_by_mbr = 0;
  uint64_t decided_by_filter = 0;
  uint64_t refined = 0;  ///< "Undetermined" pairs that needed DE-9IM.
  /// Pairs refined because an APRIL approximation was missing or flagged
  /// corrupt (degraded mode) rather than because the filter was
  /// inconclusive. Always <= refined. Zero on healthy runs; a nonzero value
  /// means results are still exact but the intermediate filter was bypassed
  /// for that many pairs.
  uint64_t fallback_refined = 0;
  /// Prepared-geometry cache telemetry: each refined pair performs two
  /// lookups (one per side), each counted as a hit (cached PreparedPolygon
  /// reused) or a miss (built and inserted). Both stay zero when the cache
  /// is disabled (prepared_cache_bytes == 0).
  uint64_t prepared_hits = 0;
  uint64_t prepared_misses = 0;
  /// ExecContext watchdog counters for this stage (exec_context.h), merged
  /// across workers like the prepared_* telemetry. All zero when the join
  /// ran without an ExecContext.
  uint64_t checkins = 0;  ///< Cancellation check-ins (one per pair).
  /// Workers that stopped because the deadline tripped (summed; each worker
  /// scope reports at most once).
  uint64_t deadline_hits = 0;
  /// Worst observed trip-to-worker-stop latency in microseconds (max across
  /// workers) — the realised cooperative-cancellation latency of the stage.
  uint64_t cancel_latency_us = 0;
  /// Decoded-record cache telemetry (CompressedAprilStore inputs with
  /// PipelineOptions::decoded_cache_bytes > 0; zero otherwise). Two lookups
  /// per filtered pair, one per side; `decoded_corrupt` counts lookups that
  /// hit a record whose payload failed to decode — those pairs degrade to
  /// refinement exactly like usable=false placeholders.
  uint64_t decoded_hits = 0;
  uint64_t decoded_misses = 0;
  uint64_t decoded_corrupt = 0;
  /// Staged-executor queue telemetry (batch_executor.h; all zero on
  /// pair-at-a-time runs). Batch counts are scheduling artifacts — they vary
  /// with thread count and timing while the join's decisions stay
  /// byte-identical.
  uint64_t batches = 0;           ///< SoA batches formed by the filter stage.
  uint64_t batches_enqueued = 0;  ///< Refinement batches pushed to the queue.
  uint64_t batches_dequeued = 0;  ///< Refinement batches drained.
  uint64_t queue_max_depth = 0;   ///< High-water queue occupancy (merge: max).
  /// Wall time workers spent waiting on the stage queue (push back-pressure
  /// help loops + drain-phase blocking pops), summed across workers.
  double queue_stall_seconds = 0.0;
  double filter_seconds = 0.0;  ///< MBR + intermediate filter time.
  double refine_seconds = 0.0;  ///< DE-9IM computation + mask matching time.
  /// Time spent building PreparedPolygon indexes on cache misses — a subset
  /// of refine_seconds. Only filled when time_stages is on.
  double prepared_build_seconds = 0.0;

  double UndeterminedPercent() const {
    return pairs == 0 ? 0.0
                      : 100.0 * static_cast<double>(refined) /
                            static_cast<double>(pairs);
  }
};

/// Accumulates one worker's stage counters into a run total: counts and CPU
/// timings sum; worst-case observations (cancel latency, queue high-water)
/// merge by max. Shared by the pair-at-a-time drivers (parallel.cpp) and
/// the staged batch executor (batch_executor.cpp).
void MergeStats(const PipelineStats& from, PipelineStats* into);

/// Executes find-relation and relate_p queries over candidate pairs with one
/// of the four methods, accumulating stage statistics.
///
/// The pipeline owns no data; it references the two datasets of a join
/// scenario. Refinement computes the DE-9IM matrix with the from-scratch
/// relate engine and matches it against the masks of the surviving candidate
/// relations in specific-to-general order. Per-object refinement indexes
/// (locator, edge index, representative point) are served from two bounded
/// per-worker PreparedPolygon caches, so objects that participate in many
/// candidate pairs — which the Hilbert-ordered parallel schedule keeps
/// adjacent — pay index construction once instead of once per pair. The
/// cache changes no result: every path funnels into the same prepared
/// relate body.
///
/// Degraded mode: when a pair's APRIL approximation is missing (no vector,
/// short vector) or flagged corrupt by the I/O layer (usable == false), the
/// kApril/kPC methods skip the raster filter for that pair and refine with
/// the MBR-narrowed candidates instead — results stay exact, and the pair is
/// counted in PipelineStats::fallback_refined.
///
/// Threading contract: a Pipeline is confined to one thread. Its mutable
/// state (stats counters, the two PreparedPolygon caches and their lazily
/// built components) is unsynchronised by design — the parallel drivers in
/// parallel.h give every worker a private Pipeline over the shared
/// read-only DatasetViews and merge stats after the join. Sharing one
/// Pipeline across threads is a data race.
class Pipeline {
 public:
  /// Compatibility constructor: default options apart from \p time_stages
  /// (the prepared cache is on at its default budget).
  Pipeline(Method method, DatasetView r_view, DatasetView s_view,
           bool time_stages = false);

  Pipeline(Method method, DatasetView r_view, DatasetView s_view,
           const PipelineOptions& options);

  /// Outcome of the filter stage (MBR + intermediate filters) for one pair:
  /// either a definite relation or the narrowed candidate set refinement
  /// must discriminate. This is the unit the staged batch executor
  /// (batch_executor.h) transports between its filter and refinement stages
  /// — candidates round-trips through RelationSet::Bits() in the SoA batch.
  struct FilterOutcome {
    bool definite = false;
    de9im::Relation relation = de9im::Relation::kDisjoint;
    de9im::RelationSet candidates;
  };

  /// Runs the filter stage for pair (r_idx, s_idx): counts the pair, applies
  /// the method's MBR + intermediate filters, and either decides the
  /// relation or returns the candidate set for RefineStage. FindRelation is
  /// exactly FilterStage followed by RefineStage when not definite, so
  /// batched execution (which separates the two calls in time and sorts the
  /// undetermined pairs between them) produces byte-identical decisions.
  FilterOutcome FilterStage(uint32_t r_idx, uint32_t s_idx);

  /// Refinement stage: DE-9IM over exact geometry, matched against
  /// \p candidates (as returned by a non-definite FilterStage).
  de9im::Relation RefineStage(uint32_t r_idx, uint32_t s_idx,
                              de9im::RelationSet candidates) {
    return Refine(r_idx, s_idx, candidates);
  }

  /// Filter stage of a relate_p query: kYes/kNo decide the pair (counters
  /// updated), kInconclusive means RefineStagePredicate must run.
  RelateAnswer FilterStagePredicate(uint32_t r_idx, uint32_t s_idx,
                                    de9im::Relation p);

  /// Refinement stage of a relate_p query (full DE-9IM + mask test).
  bool RefineStagePredicate(uint32_t r_idx, uint32_t s_idx, de9im::Relation p);

  /// The most specific topological relation of pair (r_idx, s_idx).
  de9im::Relation FindRelation(uint32_t r_idx, uint32_t s_idx);

  /// Whether predicate \p p holds for pair (r_idx, s_idx) (Sec. 3.3). Uses
  /// the predicate-specific filters for kPC; other methods go through their
  /// find-relation machinery and test the mask on the refined matrix.
  bool Relate(uint32_t r_idx, uint32_t s_idx, de9im::Relation p);

  const PipelineStats& Stats() const { return stats_; }
  /// Mutable access for the drivers that account executor-level telemetry
  /// (queue counters, stall time) into this worker's stats.
  PipelineStats* MutableStats() { return &stats_; }
  void ResetStats() { stats_ = PipelineStats{}; }

  Method GetMethod() const { return method_; }

 private:
  de9im::Relation Refine(uint32_t r_idx, uint32_t s_idx,
                         de9im::RelationSet candidates);

  /// The PreparedPolygon for object \p idx of \p view: the cached instance
  /// when the cache holds it (hit), a freshly built-and-inserted one on a
  /// miss, or a lazy one-shot wrapper placed in \p scratch when caching is
  /// disabled. The reference is valid for the current pair only.
  const PreparedPolygon& PreparedFor(PreparedCache* cache,
                                     const DatasetView& view, uint32_t idx,
                                     PreparedPolygon* scratch);

  /// Fetches the approximation view for \p idx into \p out and returns true,
  /// or returns false when it is missing (no storage, index past its end) or
  /// flagged corrupt — the degraded-mode signal that the pair must fall back
  /// to refinement. Reads the arena store when the view carries one, the
  /// legacy vector otherwise.
  static bool AprilFor(const DatasetView& view, uint32_t idx, AprilView* out);

  /// Compressed counterpart of AprilFor, reading the blocked-codec store.
  static bool CompressedAprilFor(const DatasetView& view, uint32_t idx,
                                 CompressedAprilView* out);

  /// Decoded-cache counterpart: serves flat views of a compressed record
  /// through \p cache (decoding on miss) and folds the cache's telemetry
  /// into stats_. False is the same degraded-mode signal as the accessors
  /// above — including for records whose payload fails to decode.
  bool DecodedAprilFor(const DatasetView& view, DecodedAprilCache* cache,
                       uint32_t idx, AprilView* out);

  /// True when compressed filtering should go through the decoded-record
  /// caches rather than the fused block-merge overloads.
  bool UseDecodedCache() const {
    return options_.decoded_cache_bytes > 0;
  }

  /// True when the join runs on the compressed storage form (both sides
  /// carry a CompressedAprilStore).
  bool UseCompressed() const {
    return r_view_.cstore != nullptr && s_view_.cstore != nullptr;
  }

  Method method_;
  DatasetView r_view_;
  DatasetView s_view_;
  PipelineOptions options_;
  /// Per-side prepared caches (an object index means different things on
  /// the two sides, hence two maps; each side's key space is dense).
  PreparedCache r_prepared_;
  PreparedCache s_prepared_;
  /// Per-side decoded-record caches for compressed inputs (same two-sided
  /// reasoning; empty and untouched unless UseCompressed() and the budget
  /// is nonzero).
  DecodedAprilCache r_decoded_;
  DecodedAprilCache s_decoded_;
  PipelineStats stats_;
};

}  // namespace stj
