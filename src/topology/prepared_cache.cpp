#include "src/topology/prepared_cache.h"

#include <utility>

namespace stj {

namespace {
/// Initial table capacity (power of two) and the load factor that triggers
/// growth. The budget bounds the entry count, so the table stops growing
/// once it can hold the working set at this load.
constexpr size_t kInitialSlots = 64;
constexpr size_t kLoadNumerator = 7;    // grow above 7/10 load
constexpr size_t kLoadDenominator = 10;
}  // namespace

size_t PreparedCache::FindSlot(uint32_t key) const {
  const size_t mask = table_.size() - 1;
  size_t slot = HomeSlot(key);
  while (table_[slot] != kNil && pool_[table_[slot]]->key != key) {
    slot = (slot + 1) & mask;
  }
  return slot;
}

const PreparedPolygon* PreparedCache::Find(uint32_t key) {
  if (size_ == 0) return nullptr;
  const size_t slot = FindSlot(key);
  if (table_[slot] == kNil) return nullptr;
  const uint32_t handle = table_[slot];
  if (handle != lru_head_) {
    Unlink(handle);
    PushFront(handle);
  }
  return &pool_[handle]->prepared;
}

const PreparedPolygon* PreparedCache::Insert(uint32_t key,
                                             PreparedPolygon prepared,
                                             size_t bytes) {
  if (table_.empty()) table_.assign(kInitialSlots, kNil);
  if ((size_ + 1) * kLoadDenominator > table_.size() * kLoadNumerator) {
    GrowTable();
  }

  uint32_t handle;
  if (!free_.empty()) {
    handle = free_.back();
    free_.pop_back();
    pool_[handle] = std::make_unique<Entry>();
  } else {
    handle = static_cast<uint32_t>(pool_.size());
    pool_.push_back(std::make_unique<Entry>());
  }
  Entry& entry = *pool_[handle];
  entry.key = key;
  entry.bytes = bytes;
  entry.prepared = std::move(prepared);

  const size_t slot = FindSlot(key);
  table_[slot] = handle;
  PushFront(handle);
  bytes_ += bytes;
  ++size_;

  // Evict from the cold end until the budget holds, but always keep the
  // entry just inserted (it is the LRU head, never the tail while size > 1).
  while (bytes_ > budget_ && size_ > 1) EvictTail();
  return &pool_[handle]->prepared;
}

void PreparedCache::Unlink(uint32_t handle) {
  Entry& entry = *pool_[handle];
  if (entry.lru_prev != kNil) {
    pool_[entry.lru_prev]->lru_next = entry.lru_next;
  } else {
    lru_head_ = entry.lru_next;
  }
  if (entry.lru_next != kNil) {
    pool_[entry.lru_next]->lru_prev = entry.lru_prev;
  } else {
    lru_tail_ = entry.lru_prev;
  }
  entry.lru_prev = kNil;
  entry.lru_next = kNil;
}

void PreparedCache::PushFront(uint32_t handle) {
  Entry& entry = *pool_[handle];
  entry.lru_prev = kNil;
  entry.lru_next = lru_head_;
  if (lru_head_ != kNil) pool_[lru_head_]->lru_prev = handle;
  lru_head_ = handle;
  if (lru_tail_ == kNil) lru_tail_ = handle;
}

void PreparedCache::EvictTail() {
  const uint32_t handle = lru_tail_;
  const uint32_t key = pool_[handle]->key;
  Unlink(handle);
  EraseSlot(FindSlot(key));
  bytes_ -= pool_[handle]->bytes;
  --size_;
  pool_[handle].reset();  // frees the PreparedPolygon's indexes now
  free_.push_back(handle);
}

void PreparedCache::EraseSlot(size_t slot) {
  const size_t mask = table_.size() - 1;
  size_t hole = slot;
  size_t probe = slot;
  for (;;) {
    table_[hole] = kNil;
    for (;;) {
      probe = (probe + 1) & mask;
      if (table_[probe] == kNil) return;
      const size_t home = HomeSlot(pool_[table_[probe]]->key);
      // Move the entry at `probe` into the hole iff its home slot is not
      // cyclically within (hole, probe] — i.e. the hole interrupted its
      // probe sequence.
      const bool movable = (probe > hole)
                               ? (home <= hole || home > probe)
                               : (home <= hole && home > probe);
      if (movable) {
        table_[hole] = table_[probe];
        hole = probe;
        break;
      }
    }
  }
}

void PreparedCache::GrowTable() {
  std::vector<uint32_t> old = std::move(table_);
  table_.assign(old.size() * 2, kNil);
  const size_t mask = table_.size() - 1;
  for (const uint32_t handle : old) {
    if (handle == kNil) continue;
    size_t slot = HomeSlot(pool_[handle]->key);
    while (table_[slot] != kNil) slot = (slot + 1) & mask;
    table_[slot] = handle;
  }
}

}  // namespace stj
