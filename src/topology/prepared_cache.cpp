#include "src/topology/prepared_cache.h"

#include <utility>

#include "src/util/check.h"

namespace stj {

namespace {
/// Initial table capacity (power of two) and the load factor that triggers
/// growth. The budget bounds the entry count, so the table stops growing
/// once it can hold the working set at this load.
constexpr size_t kInitialSlots = 64;
constexpr size_t kLoadNumerator = 7;    // grow above 7/10 load
constexpr size_t kLoadDenominator = 10;
}  // namespace

size_t PreparedCache::FindSlot(uint32_t key) const {
  const size_t mask = table_.size() - 1;
  size_t slot = HomeSlot(key);
  while (table_[slot] != kNil && pool_[table_[slot]]->key != key) {
    slot = (slot + 1) & mask;
  }
  return slot;
}

const PreparedPolygon* PreparedCache::Find(uint32_t key) {
  if (size_ == 0) return nullptr;
  const size_t slot = FindSlot(key);
  if (table_[slot] == kNil) return nullptr;
  const uint32_t handle = table_[slot];
  if (handle != lru_head_) {
    Unlink(handle);
    PushFront(handle);
  }
  return &pool_[handle]->prepared;
}

const PreparedPolygon* PreparedCache::Insert(uint32_t key,
                                             PreparedPolygon prepared,
                                             size_t bytes) {
  if (table_.empty()) table_.assign(kInitialSlots, kNil);
  if ((size_ + 1) * kLoadDenominator > table_.size() * kLoadNumerator) {
    GrowTable();
  }

  uint32_t handle;
  if (!free_.empty()) {
    handle = free_.back();
    free_.pop_back();
    pool_[handle] = std::make_unique<Entry>();
  } else {
    handle = static_cast<uint32_t>(pool_.size());
    pool_.push_back(std::make_unique<Entry>());
  }
  Entry& entry = *pool_[handle];
  entry.key = key;
  entry.bytes = bytes;
  entry.prepared = std::move(prepared);

  const size_t slot = FindSlot(key);
  table_[slot] = handle;
  PushFront(handle);
  bytes_ += bytes;
  ++size_;

  // Evict from the cold end until the budget holds, but always keep the
  // entry just inserted (it is the LRU head, never the tail while size > 1).
  while (bytes_ > budget_ && size_ > 1) EvictTail();
  STJ_IF_INVARIANTS(ValidateInvariants());
  return &pool_[handle]->prepared;
}

void PreparedCache::ValidateInvariants() const {
  // Walk the LRU chain head-to-tail, checking link symmetry and summing the
  // accounting as we go.
  size_t live = 0;
  size_t bytes = 0;
  uint32_t prev = kNil;
  for (uint32_t handle = lru_head_; handle != kNil;) {
    STJ_CHECK_MSG(handle < pool_.size() && pool_[handle] != nullptr,
                  "LRU link must reference a live pool entry");
    const Entry& entry = *pool_[handle];
    STJ_CHECK_MSG(entry.lru_prev == prev, "LRU links must be symmetric");
    ++live;
    STJ_CHECK_MSG(live <= size_, "LRU chain longer than size_ (cycle?)");
    bytes += entry.bytes;
    prev = handle;
    handle = entry.lru_next;
  }
  STJ_CHECK_MSG(lru_tail_ == prev, "LRU tail must end the chain");
  STJ_CHECK_MSG(live == size_, "LRU chain must cover every live entry");
  STJ_CHECK_MSG(bytes == bytes_, "byte accounting must match live entries");

  // Table consistency: every non-empty slot resolves its entry's key back to
  // itself (probe sequences are unbroken), and slots cover the live entries
  // exactly once.
  size_t occupied = 0;
  for (size_t slot = 0; slot < table_.size(); ++slot) {
    const uint32_t handle = table_[slot];
    if (handle == kNil) continue;
    ++occupied;
    STJ_CHECK_MSG(handle < pool_.size() && pool_[handle] != nullptr,
                  "table slot must reference a live pool entry");
    STJ_CHECK_MSG(FindSlot(pool_[handle]->key) == slot,
                  "entry must be findable at its slot (broken probe chain)");
  }
  STJ_CHECK_MSG(occupied == size_, "table occupancy must equal size_");

  // Live and freed handles partition the pool.
  size_t freed = 0;
  for (const std::unique_ptr<Entry>& entry : pool_) {
    if (entry == nullptr) ++freed;
  }
  STJ_CHECK_MSG(freed == free_.size(), "free list must track freed entries");
  STJ_CHECK_MSG(live + freed == pool_.size(),
                "live and freed handles must partition the pool");
}

void PreparedCache::Unlink(uint32_t handle) {
  Entry& entry = *pool_[handle];
  if (entry.lru_prev != kNil) {
    pool_[entry.lru_prev]->lru_next = entry.lru_next;
  } else {
    lru_head_ = entry.lru_next;
  }
  if (entry.lru_next != kNil) {
    pool_[entry.lru_next]->lru_prev = entry.lru_prev;
  } else {
    lru_tail_ = entry.lru_prev;
  }
  entry.lru_prev = kNil;
  entry.lru_next = kNil;
}

void PreparedCache::PushFront(uint32_t handle) {
  Entry& entry = *pool_[handle];
  entry.lru_prev = kNil;
  entry.lru_next = lru_head_;
  if (lru_head_ != kNil) pool_[lru_head_]->lru_prev = handle;
  lru_head_ = handle;
  if (lru_tail_ == kNil) lru_tail_ = handle;
}

void PreparedCache::EvictTail() {
  const uint32_t handle = lru_tail_;
  const uint32_t key = pool_[handle]->key;
  Unlink(handle);
  EraseSlot(FindSlot(key));
  bytes_ -= pool_[handle]->bytes;
  --size_;
  pool_[handle].reset();  // frees the PreparedPolygon's indexes now
  free_.push_back(handle);
}

void PreparedCache::EraseSlot(size_t slot) {
  const size_t mask = table_.size() - 1;
  size_t hole = slot;
  size_t probe = slot;
  for (;;) {
    table_[hole] = kNil;
    for (;;) {
      probe = (probe + 1) & mask;
      if (table_[probe] == kNil) return;
      const size_t home = HomeSlot(pool_[table_[probe]]->key);
      // Move the entry at `probe` into the hole iff its home slot is not
      // cyclically within (hole, probe] — i.e. the hole interrupted its
      // probe sequence.
      const bool movable = (probe > hole)
                               ? (home <= hole || home > probe)
                               : (home <= hole && home > probe);
      if (movable) {
        table_[hole] = table_[probe];
        hole = probe;
        break;
      }
    }
  }
}

void PreparedCache::GrowTable() {
  std::vector<uint32_t> old = std::move(table_);
  table_.assign(old.size() * 2, kNil);
  const size_t mask = table_.size() - 1;
  for (const uint32_t handle : old) {
    if (handle == kNil) continue;
    size_t slot = HomeSlot(pool_[handle]->key);
    while (table_[slot] != kNil) slot = (slot + 1) & mask;
    table_[slot] = handle;
  }
}

}  // namespace stj
