#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/geometry/prepared_polygon.h"
#include "src/util/thread_annotations.h"

namespace stj {

/// Bounded per-worker cache of PreparedPolygons keyed by object index.
///
/// Layout: an open-addressed (linear-probing, backward-shift deletion) hash
/// table maps keys to handles into a stable entry pool; the live entries are
/// threaded onto an intrusive LRU list. Eviction is by memory budget, using
/// PreparedPolygon::EstimateBytes accounting. The entry being inserted is
/// always admitted — older entries are evicted to make room, but a budget
/// smaller than a single object still keeps exactly one entry warm, which
/// preserves the consecutive-pair reuse the Hilbert-ordered refinement
/// schedule produces.
///
/// Not thread-safe: each Pipeline (one per worker) owns its own caches, so
/// the cache needs no synchronisation and hit rates are per-worker exact.
class PreparedCache {
 public:
  STJ_THREAD_CONFINED(
      "one instance per Pipeline, one Pipeline per worker; never shared, "
      "so hit rates stay per-worker exact and no lock is needed");

  /// \p budget_bytes bounds the summed byte estimates of cached entries
  /// (softly: the newest entry is kept even when it alone exceeds it).
  explicit PreparedCache(size_t budget_bytes) : budget_(budget_bytes) {}

  size_t budget_bytes() const { return budget_; }
  size_t bytes() const { return bytes_; }
  size_t size() const { return size_; }

  /// The cached entry for \p key, or nullptr. A hit becomes most-recent.
  /// The returned pointer stays valid until the entry is evicted (i.e. at
  /// most until the next Insert).
  const PreparedPolygon* Find(uint32_t key);

  /// Inserts an entry (the key must not already be present) and returns it,
  /// evicting least-recently-used entries until the budget is respected
  /// (never the entry just inserted).
  const PreparedPolygon* Insert(uint32_t key, PreparedPolygon prepared,
                                size_t bytes);

  /// Aborts (STJ_CHECK) on structural inconsistency: the LRU list must be a
  /// well-formed doubly-linked chain over exactly the live entries, the
  /// byte/count accounting must equal the sum over live entries, every table
  /// slot must point at a live pool entry that probes back to that slot, and
  /// live + free handles must partition the pool. Always compiled (the
  /// stress test drives it directly through eviction churn); automatic
  /// invocation is gated behind STJ_IF_INVARIANTS in Insert. O(pool + table).
  void ValidateInvariants() const;

 private:
  struct Entry {
    uint32_t key = 0;
    uint32_t lru_prev = kNil;
    uint32_t lru_next = kNil;
    size_t bytes = 0;
    PreparedPolygon prepared;
  };

  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  size_t HomeSlot(uint32_t key) const {
    // Knuth multiplicative hash; the table size is a power of two.
    return (static_cast<size_t>(key) * 2654435761u) & (table_.size() - 1);
  }

  /// Probes for \p key; returns the table slot holding it, or the first
  /// empty slot of its probe sequence when absent.
  size_t FindSlot(uint32_t key) const;

  void Unlink(uint32_t handle);
  void PushFront(uint32_t handle);
  void EvictTail();
  /// Backward-shift deletion: empties \p slot and re-packs the probe
  /// sequences that ran through it.
  void EraseSlot(size_t slot);
  void GrowTable();

  size_t budget_;
  size_t bytes_ = 0;
  size_t size_ = 0;
  std::vector<uint32_t> table_;  // slot -> pool handle, kNil when empty
  std::vector<std::unique_ptr<Entry>> pool_;
  std::vector<uint32_t> free_;  // recycled pool handles
  uint32_t lru_head_ = kNil;    // most recently used
  uint32_t lru_tail_ = kNil;    // least recently used
};

}  // namespace stj
