#include "src/topology/progressive.h"

#include <algorithm>
#include <numeric>

#include "src/interval/interval_algebra.h"

namespace stj {

const char* ToString(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kInputOrder: return "input-order";
    case SchedulingPolicy::kMbrOverlapRatio: return "mbr-overlap";
    case SchedulingPolicy::kAprilOverlap: return "april-overlap";
  }
  return "?";
}

std::vector<size_t> ScheduleCandidates(
    SchedulingPolicy policy, const DatasetView& r_view,
    const DatasetView& s_view, const std::vector<CandidatePair>& pairs) {
  std::vector<size_t> order(pairs.size());
  std::iota(order.begin(), order.end(), size_t{0});
  if (policy == SchedulingPolicy::kInputOrder) return order;

  std::vector<double> score(pairs.size(), 0.0);
  for (size_t i = 0; i < pairs.size(); ++i) {
    const CandidatePair& pair = pairs[i];
    if (policy == SchedulingPolicy::kMbrOverlapRatio) {
      const Box& r = (*r_view.objects)[pair.r_idx].geometry.Bounds();
      const Box& s = (*s_view.objects)[pair.s_idx].geometry.Bounds();
      const double overlap = r.Intersection(s).Area();
      const double smaller = std::min(r.Area(), s.Area());
      score[i] = smaller > 0 ? overlap / smaller : 1.0;
    } else {
      const AprilApproximation& ra = (*r_view.april)[pair.r_idx];
      const AprilApproximation& sa = (*s_view.april)[pair.s_idx];
      const uint64_t common =
          ListsCommonCells(ra.conservative, sa.conservative);
      const uint64_t smaller = std::min(ra.conservative.CellCount(),
                                        sa.conservative.CellCount());
      score[i] = smaller > 0 ? static_cast<double>(common) /
                                   static_cast<double>(smaller)
                             : 0.0;
    }
  }
  std::stable_sort(order.begin(), order.end(),
                   [&score](size_t a, size_t b) { return score[a] > score[b]; });
  return order;
}

std::vector<ProgressivePoint> ProgressiveFindRelation(
    Method method, const DatasetView& r_view, const DatasetView& s_view,
    const std::vector<CandidatePair>& pairs, SchedulingPolicy policy,
    size_t checkpoints) {
  const std::vector<size_t> order =
      ScheduleCandidates(policy, r_view, s_view, pairs);
  Pipeline pipeline(method, r_view, s_view);
  std::vector<ProgressivePoint> curve;
  curve.reserve(checkpoints);
  size_t links = 0;
  size_t processed = 0;
  size_t next_checkpoint =
      checkpoints > 0 ? (pairs.size() + checkpoints - 1) / checkpoints : 0;
  const size_t step = std::max<size_t>(1, next_checkpoint);
  for (const size_t idx : order) {
    const CandidatePair& pair = pairs[idx];
    if (pipeline.FindRelation(pair.r_idx, pair.s_idx) !=
        de9im::Relation::kDisjoint) {
      ++links;
    }
    ++processed;
    if (processed % step == 0 || processed == pairs.size()) {
      curve.push_back(ProgressivePoint{processed, links});
    }
  }
  if (curve.empty() || curve.back().processed != pairs.size()) {
    curve.push_back(ProgressivePoint{pairs.size(), links});
  }
  return curve;
}

}  // namespace stj
