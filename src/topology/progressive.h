#pragma once

#include <vector>

#include "src/join/mbr_join.h"
#include "src/raster/april.h"
#include "src/topology/pipeline.h"

namespace stj {

/// Candidate-pair scheduling policies for *progressive* geo-spatial
/// interlinking (Papadakis et al., WWW'21 — reference [25] of the paper):
/// when a budget may cut the join short, processing likely-related pairs
/// first maximises the links discovered per pair examined. The paper treats
/// scheduling as orthogonal to its filters; this module combines the two —
/// the APRIL-based score reuses the same approximations the P+C filters run
/// on, so prioritisation costs only one extra merge-join per pair.
enum class SchedulingPolicy {
  kInputOrder,       ///< No scheduling (the baseline).
  kMbrOverlapRatio,  ///< Larger MBR-intersection share first.
  kAprilOverlap,     ///< More shared conservative raster cells first.
};

const char* ToString(SchedulingPolicy policy);

/// Returns a permutation of [0, pairs.size()) ordering the candidate pairs
/// from most to least promising under \p policy. kInputOrder returns the
/// identity.
std::vector<size_t> ScheduleCandidates(SchedulingPolicy policy,
                                       const DatasetView& r_view,
                                       const DatasetView& s_view,
                                       const std::vector<CandidatePair>& pairs);

/// One point of a progressive-recall curve: after processing `processed`
/// pairs (in scheduled order), `links_found` of the total links had been
/// discovered.
struct ProgressivePoint {
  size_t processed = 0;
  size_t links_found = 0;
};

/// Runs find-relation over the scheduled pairs with \p method, recording how
/// many non-disjoint pairs (links) were discovered after each \p checkpoints
/// fraction of the work. The last point holds the totals.
std::vector<ProgressivePoint> ProgressiveFindRelation(
    Method method, const DatasetView& r_view, const DatasetView& s_view,
    const std::vector<CandidatePair>& pairs, SchedulingPolicy policy,
    size_t checkpoints = 10);

}  // namespace stj
