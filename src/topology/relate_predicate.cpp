#include "src/topology/relate_predicate.h"

#include "src/interval/interval_algebra.h"
#include "src/topology/relate_tables.h"

namespace stj {

using de9im::Relation;

namespace {

// The helpers below implement only the interval-list (APRIL) part of each
// Fig. 6 flow; the MBR early exits common to all predicates live in the
// RelateFeasible/RelateCertain tables (relate_tables.h), applied once in
// RelatePredicateFilter and proved against the model by static_checks.cpp.

// Each helper is a template over the APRIL view type (AprilView or
// CompressedAprilView); the List* relations overload on the member type and
// agree across storage forms, so both instantiations answer identically.

// relate_intersects: intersects is the negation of disjoint, so the APRIL
// tests answer it directly.
template <typename View>
RelateAnswer IntersectsFromLists(const View& r, const View& s) {
  if (!ListsOverlap(r.conservative, s.conservative)) return RelateAnswer::kNo;
  if (ListsOverlap(r.conservative, s.progressive) ||
      ListsOverlap(r.progressive, s.conservative)) {
    return RelateAnswer::kYes;
  }
  return RelateAnswer::kInconclusive;
}

RelateAnswer Negate(RelateAnswer a) {
  switch (a) {
    case RelateAnswer::kYes: return RelateAnswer::kNo;
    case RelateAnswer::kNo: return RelateAnswer::kYes;
    case RelateAnswer::kInconclusive: return RelateAnswer::kInconclusive;
  }
  return RelateAnswer::kInconclusive;
}

// relate_inside / relate_covered_by (Fig. 6 left), r within s: both require
// r not to stick out of s. The strict/non-strict distinction is purely an
// MBR condition (RelateFeasible), so the list tests are shared.
template <typename View>
RelateAnswer WithinFromLists(const View& r, const View& s) {
  if (!ListInside(r.conservative, s.conservative)) return RelateAnswer::kNo;
  if (ListInside(r.conservative, s.progressive)) {
    // r lies within cells fully interior to s: strict inside holds, and
    // therefore covered by holds as well.
    return RelateAnswer::kYes;
  }
  return RelateAnswer::kInconclusive;
}

// relate_meets (Fig. 6 middle).
template <typename View>
RelateAnswer MeetsFromLists(const View& r, const View& s) {
  if (!ListsOverlap(r.conservative, s.conservative)) {
    return RelateAnswer::kNo;  // definitely disjoint
  }
  if (ListsOverlap(r.conservative, s.progressive) ||
      ListsOverlap(r.progressive, s.conservative)) {
    return RelateAnswer::kNo;  // interiors definitely overlap
  }
  return RelateAnswer::kInconclusive;
}

// relate_equals (Fig. 6 right).
template <typename View>
RelateAnswer EqualsFromLists(const View& r, const View& s) {
  if (!ListsMatch(r.conservative, s.conservative)) return RelateAnswer::kNo;
  if (!ListsMatch(r.progressive, s.progressive)) return RelateAnswer::kNo;
  return RelateAnswer::kInconclusive;
}

template <typename View>
RelateAnswer RelatePredicateFilterImpl(de9im::Relation p, const Box& r_mbr,
                                       const View& r_april, const Box& s_mbr,
                                       const View& s_april) {
  const BoxRelation boxes = ClassifyBoxes(r_mbr, s_mbr);
  if (!RelateFeasible(p, boxes)) return RelateAnswer::kNo;
  if (RelateCertain(p, boxes)) return RelateAnswer::kYes;
  switch (p) {
    case Relation::kIntersects:
      return IntersectsFromLists(r_april, s_april);
    case Relation::kDisjoint:
      return Negate(IntersectsFromLists(r_april, s_april));
    case Relation::kInside:
    case Relation::kCoveredBy:
      return WithinFromLists(r_april, s_april);
    case Relation::kContains:
    case Relation::kCovers:
      // Mirror image of the within flows: s within r.
      return WithinFromLists(s_april, r_april);
    case Relation::kMeets:
      return MeetsFromLists(r_april, s_april);
    case Relation::kEquals:
      return EqualsFromLists(r_april, s_april);
  }
  return RelateAnswer::kInconclusive;
}

}  // namespace

RelateAnswer RelatePredicateFilter(de9im::Relation p, const Box& r_mbr,
                                   const AprilView& r_april,
                                   const Box& s_mbr,
                                   const AprilView& s_april) {
  return RelatePredicateFilterImpl(p, r_mbr, r_april, s_mbr, s_april);
}

RelateAnswer RelatePredicateFilter(de9im::Relation p, const Box& r_mbr,
                                   const CompressedAprilView& r_april,
                                   const Box& s_mbr,
                                   const CompressedAprilView& s_april) {
  return RelatePredicateFilterImpl(p, r_mbr, r_april, s_mbr, s_april);
}

const char* ToString(RelateAnswer answer) {
  switch (answer) {
    case RelateAnswer::kYes: return "yes";
    case RelateAnswer::kNo: return "no";
    case RelateAnswer::kInconclusive: return "inconclusive";
  }
  return "?";
}

}  // namespace stj
