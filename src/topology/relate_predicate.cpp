#include "src/topology/relate_predicate.h"

#include "src/interval/interval_algebra.h"

namespace stj {

using de9im::Relation;

namespace {

// relate_intersects: intersects is the negation of disjoint, so the APRIL
// tests answer it directly.
RelateAnswer RelateIntersects(BoxRelation boxes, const AprilView& r,
                              const AprilView& s) {
  if (boxes == BoxRelation::kDisjoint) return RelateAnswer::kNo;
  if (boxes == BoxRelation::kCross || boxes == BoxRelation::kEqual) {
    // Fig. 4(c)/(d): every candidate relation of these MBR cases implies
    // intersects.
    return RelateAnswer::kYes;
  }
  if (!ListsOverlap(r.conservative, s.conservative)) return RelateAnswer::kNo;
  if (ListsOverlap(r.conservative, s.progressive) ||
      ListsOverlap(r.progressive, s.conservative)) {
    return RelateAnswer::kYes;
  }
  return RelateAnswer::kInconclusive;
}

RelateAnswer Negate(RelateAnswer a) {
  switch (a) {
    case RelateAnswer::kYes: return RelateAnswer::kNo;
    case RelateAnswer::kNo: return RelateAnswer::kYes;
    case RelateAnswer::kInconclusive: return RelateAnswer::kInconclusive;
  }
  return RelateAnswer::kInconclusive;
}

// relate_inside / relate_covered_by (Fig. 6 left): both require r not to
// stick out of s. `strict` distinguishes inside (no boundary contact, MBR
// strictly nested) from covered by (equal MBRs allowed).
RelateAnswer RelateWithin(BoxRelation boxes, const AprilView& r,
                          const AprilView& s, bool strict) {
  const bool box_ok = boxes == BoxRelation::kRInsideS ||
                      (!strict && boxes == BoxRelation::kEqual);
  if (!box_ok) return RelateAnswer::kNo;  // impossible relation (Fig. 6)
  if (!ListInside(r.conservative, s.conservative)) return RelateAnswer::kNo;
  if (ListInside(r.conservative, s.progressive)) {
    // r lies within cells fully interior to s: strict inside holds, and
    // therefore covered by holds as well.
    return RelateAnswer::kYes;
  }
  return RelateAnswer::kInconclusive;
}

// relate_meets (Fig. 6 middle).
RelateAnswer RelateMeets(BoxRelation boxes, const AprilView& r,
                         const AprilView& s) {
  if (boxes == BoxRelation::kDisjoint) return RelateAnswer::kNo;
  if (boxes == BoxRelation::kCross) return RelateAnswer::kNo;  // Fig. 4(d)
  if (!ListsOverlap(r.conservative, s.conservative)) {
    return RelateAnswer::kNo;  // definitely disjoint
  }
  if (ListsOverlap(r.conservative, s.progressive) ||
      ListsOverlap(r.progressive, s.conservative)) {
    return RelateAnswer::kNo;  // interiors definitely overlap
  }
  return RelateAnswer::kInconclusive;
}

// relate_equals (Fig. 6 right).
RelateAnswer RelateEquals(BoxRelation boxes, const AprilView& r,
                          const AprilView& s) {
  if (boxes != BoxRelation::kEqual) return RelateAnswer::kNo;
  if (!ListsMatch(r.conservative, s.conservative)) return RelateAnswer::kNo;
  if (!ListsMatch(r.progressive, s.progressive)) return RelateAnswer::kNo;
  return RelateAnswer::kInconclusive;
}

}  // namespace

RelateAnswer RelatePredicateFilter(de9im::Relation p, const Box& r_mbr,
                                   const AprilView& r_april,
                                   const Box& s_mbr,
                                   const AprilView& s_april) {
  const BoxRelation boxes = ClassifyBoxes(r_mbr, s_mbr);
  switch (p) {
    case Relation::kIntersects:
      return RelateIntersects(boxes, r_april, s_april);
    case Relation::kDisjoint:
      return Negate(RelateIntersects(boxes, r_april, s_april));
    case Relation::kInside:
      return RelateWithin(boxes, r_april, s_april, /*strict=*/true);
    case Relation::kCoveredBy:
      return RelateWithin(boxes, r_april, s_april, /*strict=*/false);
    case Relation::kContains: {
      const BoxRelation mirrored = ClassifyBoxes(s_mbr, r_mbr);
      return RelateWithin(mirrored, s_april, r_april, /*strict=*/true);
    }
    case Relation::kCovers: {
      const BoxRelation mirrored = ClassifyBoxes(s_mbr, r_mbr);
      return RelateWithin(mirrored, s_april, r_april, /*strict=*/false);
    }
    case Relation::kMeets:
      return RelateMeets(boxes, r_april, s_april);
    case Relation::kEquals:
      return RelateEquals(boxes, r_april, s_april);
  }
  return RelateAnswer::kInconclusive;
}

const char* ToString(RelateAnswer answer) {
  switch (answer) {
    case RelateAnswer::kYes: return "yes";
    case RelateAnswer::kNo: return "no";
    case RelateAnswer::kInconclusive: return "inconclusive";
  }
  return "?";
}

}  // namespace stj
