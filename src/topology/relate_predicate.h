#pragma once

#include "src/de9im/relation.h"
#include "src/geometry/box.h"
#include "src/raster/april.h"
#include "src/topology/find_relation.h"

namespace stj {

/// Raster-only answer to a relate_p query (Sec. 3.3 / Fig. 6): does the
/// topological predicate p hold for the pair?
enum class RelateAnswer : uint8_t {
  kYes,           ///< p definitely holds.
  kNo,            ///< p definitely does not hold.
  kInconclusive,  ///< Refinement (DE-9IM + mask) required.
};

/// Runs the predicate-specific MBR + interval-list filter for p on one pair,
/// without touching exact geometry. Implements the three flow diagrams of
/// Fig. 6 (inside/covered-by, meets, equals), their mirror images for
/// contains/covers, and the APRIL-style tests for intersects/disjoint.
RelateAnswer RelatePredicateFilter(de9im::Relation p, const Box& r_mbr,
                                   const AprilView& r_april,
                                   const Box& s_mbr,
                                   const AprilView& s_april);

/// Compressed-store overload: same flows over blocked APRIL records via the
/// fused block-merge relations of interval_algebra.h.
RelateAnswer RelatePredicateFilter(de9im::Relation p, const Box& r_mbr,
                                   const CompressedAprilView& r_april,
                                   const Box& s_mbr,
                                   const CompressedAprilView& s_april);

const char* ToString(RelateAnswer answer);

}  // namespace stj
