#pragma once

#include "src/de9im/relation.h"
#include "src/geometry/box.h"

namespace stj {

/// The shipped relate_p MBR fast-path tables (the early exits of the Fig. 6
/// flow diagrams), factored out of relate_predicate.cpp so that
/// static_checks.cpp can prove them against first principles: for every
/// predicate p and MBR case,
///
///   RelateFeasible(p, boxes)  ==  some Fig. 4 candidate of `boxes` implies p
///   RelateCertain(p, boxes)   ==  every Fig. 4 candidate of `boxes` implies p
///
/// where "rel implies p" is the Fig. 2 lattice (de9im::UpwardClosure). A
/// stale entry here — say, allowing `inside` for equal MBRs — is a compile
/// error, not a subtly wrong fast path.

/// False when no candidate relation of the MBR case can make p hold, so the
/// filter may answer No without touching interval lists.
constexpr bool RelateFeasible(de9im::Relation p, BoxRelation boxes) {
  using de9im::Relation;
  switch (p) {
    case Relation::kInside:
      return boxes == BoxRelation::kRInsideS;
    case Relation::kCoveredBy:
      return boxes == BoxRelation::kRInsideS || boxes == BoxRelation::kEqual;
    case Relation::kContains:
      return boxes == BoxRelation::kSInsideR;
    case Relation::kCovers:
      return boxes == BoxRelation::kSInsideR || boxes == BoxRelation::kEqual;
    case Relation::kEquals:
      return boxes == BoxRelation::kEqual;
    case Relation::kMeets:
      return boxes != BoxRelation::kDisjoint && boxes != BoxRelation::kCross;
    case Relation::kIntersects:
      return boxes != BoxRelation::kDisjoint;
    case Relation::kDisjoint:
      return boxes != BoxRelation::kCross && boxes != BoxRelation::kEqual;
  }
  return true;
}

/// True when the MBR case alone certifies p (all candidates imply it), so
/// the filter may answer Yes without touching interval lists.
constexpr bool RelateCertain(de9im::Relation p, BoxRelation boxes) {
  using de9im::Relation;
  switch (p) {
    case Relation::kIntersects:
      // Fig. 4(c)/(d): every candidate of equal or crossing MBRs implies
      // intersects.
      return boxes == BoxRelation::kCross || boxes == BoxRelation::kEqual;
    case Relation::kDisjoint:
      return boxes == BoxRelation::kDisjoint;
    default:
      return false;
  }
}

}  // namespace stj
