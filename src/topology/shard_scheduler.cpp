#include "src/topology/shard_scheduler.h"

#include <algorithm>
#include <numeric>

#include "src/join/mbr_join.h"
#include "src/raster/hilbert.h"
#include "src/util/check.h"
#include "src/util/pinned_byte_cache.h"

namespace stj {

namespace {

/// Resident-shard cache: a PinnedByteLruCache of LoadedShards keyed by
/// (side, tile). The byte budget is the discipline, not a hard cap — the
/// two shards of the running task are pinned (PinGuard per task), so when
/// they alone exceed the budget the cache holds just them. Loads are
/// charged to the ExecContext memory budget and released on eviction, so
/// an armed budget sees shard residency like any other tracked allocation.
/// The pin/evict/charge protocol itself lives in src/util/pinned_byte_cache.h,
/// annotated for -Wthread-safety and exhaustively model-checked in
/// tests/model/cache_model_test.cpp.
using ShardCache = PinnedByteLruCache<LoadedShard>;

uint64_t ShardKey(int side, uint32_t tile) {
  return (static_cast<uint64_t>(side) << 32) | tile;
}

/// Fetches the resident shard for (side, tile) through the cache, mapping
/// the shard file on a miss and folding the load telemetry into \p stats.
/// Null result carries the load failure (or budget trip) in \p status.
const LoadedShard* FetchShard(ShardCache* cache, int side,
                              const ShardSet& set, uint32_t tile,
                              ShardStats* stats, Status* status) {
  return cache->Get(
      ShardKey(side, tile),
      [&set, tile, stats](LoadedShard* shard, size_t* bytes) {
        Status st = set.LoadTile(tile, shard);
        if (!st.ok()) return st;
        ++stats->shard_loads;
        stats->bytes_mapped += shard->map.Size();
        stats->bytes_faulted += shard->eager_bytes;
        *bytes = shard->resident_bytes;
        return Status::Ok();
      },
      status);
}

/// One tile-pair task plus its schedule key.
struct TilePairTask {
  uint32_t r_tile = 0;
  uint32_t s_tile = 0;
  uint64_t hilbert = 0;
};

/// Builds the task list: every (r-tile, s-tile) with intersecting tile
/// rectangles, ordered by the Hilbert position of the intersection center
/// so consecutive tasks touch adjacent tiles (shard reuse), tie-broken by
/// (r_tile, s_tile) for determinism.
std::vector<TilePairTask> BuildTasks(const ShardSet& r_shards,
                                     const ShardSet& s_shards) {
  const TileGrid& rg = r_shards.Grid();
  const TileGrid& sg = s_shards.Grid();
  Box domain = rg.domain;
  domain.Expand(sg.domain);
  const double width = domain.Width() > 0 ? domain.Width() : 1.0;
  const double height = domain.Height() > 0 ? domain.Height() : 1.0;
  constexpr uint32_t kOrder = 16;
  constexpr double kCells = 65536.0;

  std::vector<TilePairTask> tasks;
  for (uint32_t rt = 0; rt < rg.Tiles(); ++rt) {
    if (r_shards.Tile(rt).object_count == 0) continue;
    const Box rb = rg.TileBounds(rt);
    // Candidate s-tiles by column/row range instead of a full scan.
    uint32_t c_lo, c_hi;
    sg.ColumnRange(rb.min.x, rb.max.x, &c_lo, &c_hi);
    for (uint32_t c = c_lo; c <= c_hi; ++c) {
      uint32_t row_lo, row_hi;
      sg.RowRange(c, rb.min.y, rb.max.y, &row_lo, &row_hi);
      for (uint32_t row = row_lo; row <= row_hi; ++row) {
        const uint32_t st = sg.TileId(c, row);
        if (s_shards.Tile(st).object_count == 0) continue;
        const Box sb = sg.TileBounds(st);
        if (!rb.Intersects(sb)) continue;
        const Point center{
            0.5 * (std::max(rb.min.x, sb.min.x) + std::min(rb.max.x, sb.max.x)),
            0.5 * (std::max(rb.min.y, sb.min.y) +
                   std::min(rb.max.y, sb.max.y))};
        const double nx = (center.x - domain.min.x) / width;
        const double ny = (center.y - domain.min.y) / height;
        const uint32_t x = static_cast<uint32_t>(
            std::min(kCells - 1.0, std::max(0.0, nx * kCells)));
        const uint32_t y = static_cast<uint32_t>(
            std::min(kCells - 1.0, std::max(0.0, ny * kCells)));
        tasks.push_back(TilePairTask{rt, st, HilbertXYToD(kOrder, x, y)});
      }
    }
  }
  std::sort(tasks.begin(), tasks.end(),
            [](const TilePairTask& a, const TilePairTask& b) {
              if (a.hilbert != b.hilbert) return a.hilbert < b.hilbert;
              if (a.r_tile != b.r_tile) return a.r_tile < b.r_tile;
              return a.s_tile < b.s_tile;
            });
  return tasks;
}

/// The reference point of a candidate pair: the componentwise max of the
/// two MBR min corners — inside both MBRs whenever they intersect. Exactly
/// one (r-tile, s-tile) task owns it under the two TileOf partitions.
Point ReferencePoint(const Box& r, const Box& s) {
  return Point{std::max(r.min.x, s.min.x), std::max(r.min.y, s.min.y)};
}

}  // namespace

ShardJoinResult ShardedFindRelation(Method method, const ShardSet& r_shards,
                                    const ShardSet& s_shards,
                                    const ShardJoinOptions& options) {
  ShardJoinResult result;
  ExecContext* exec = options.join.exec;
  ShardCache cache(options.shard_cache_bytes, exec);

  const std::vector<TilePairTask> tasks = BuildTasks(r_shards, s_shards);
  result.shard_stats.tasks = tasks.size();
  const TileGrid& rg = r_shards.Grid();
  const TileGrid& sg = s_shards.Grid();

  ExecContext::Scope scope(exec);
  bool cut = false;
  for (const TilePairTask& task : tasks) {
    if (scope.CheckIn()) {
      cut = true;
      break;
    }
    // Pin the task's two shards for the whole task, then fetch: neither can
    // be evicted while the task runs, whatever the budget says.
    const ShardCache::PinGuard r_pin(&cache, ShardKey(0, task.r_tile));
    const ShardCache::PinGuard s_pin(&cache, ShardKey(1, task.s_tile));
    Status st;
    const LoadedShard* r_shard = FetchShard(&cache, 0, r_shards, task.r_tile,
                                            &result.shard_stats, &st);
    if (r_shard == nullptr) {
      result.status = st;
      break;
    }
    const LoadedShard* s_shard = FetchShard(&cache, 1, s_shards, task.s_tile,
                                            &result.shard_stats, &st);
    if (s_shard == nullptr) {
      result.status = st;
      break;
    }

    // Local MBR filter. Deterministic mode keeps the local pair order (and
    // with it the executors' schedules) independent of thread count.
    MbrJoin::Options mbr_options;
    mbr_options.num_threads = options.join.num_threads;
    mbr_options.deterministic = true;
    mbr_options.exec = exec;
    std::vector<CandidatePair> local =
        MbrJoin::Join(r_shard->mbrs, s_shard->mbrs, mbr_options);
    if (exec != nullptr && exec->StopRequested()) {
      // A cut during the filter leaves an incomplete candidate set; the
      // task contributes nothing (prior tasks' answers stay valid).
      cut = true;
      break;
    }

    // Reference-point dedup: keep only the pairs this task owns.
    std::vector<CandidatePair> owned;
    owned.reserve(local.size());
    for (const CandidatePair& p : local) {
      const Point ref = ReferencePoint(r_shard->mbrs[p.r_idx],
                                       s_shard->mbrs[p.s_idx]);
      if (rg.TileOf(ref) == task.r_tile && sg.TileOf(ref) == task.s_tile) {
        owned.push_back(p);
      } else {
        ++result.shard_stats.pairs_deduped;
      }
    }

    // The existing executors over local views; the APRIL side reads
    // zero-copy off the two mappings.
    DatasetView r_view;
    r_view.objects = &r_shard->objects;
    r_view.cstore = &r_shard->cstore;
    DatasetView s_view;
    s_view.objects = &s_shard->objects;
    s_view.cstore = &s_shard->cstore;
    ParallelJoinResult task_result =
        ParallelFindRelation(method, r_view, s_view, owned, options.join);
    MergeStats(task_result.stats, &result.stats);

    // Keep every answered pair, mapped back to global indices. On a cut
    // the unanswered remainder is dropped loss-lessly (PartialResult).
    for (size_t i = 0; i < owned.size(); ++i) {
      if (!task_result.partial.Answered(i)) continue;
      result.pairs.push_back(CandidatePair{r_shard->ids[owned[i].r_idx],
                                           s_shard->ids[owned[i].s_idx]});
      result.relations.push_back(task_result.relations[i]);
      ++result.shard_stats.pairs_emitted;
    }
    if (!task_result.status.ok()) {
      cut = true;
      break;
    }
    ++result.shard_stats.tasks_run;
  }

  // Fold the cache-side counters into the scheduler telemetry (loads and
  // mapping bytes were accounted inside the loader).
  const PinnedCacheStats cache_stats = cache.Stats();
  result.shard_stats.shard_hits = cache_stats.hits;
  result.shard_stats.shards_evicted = cache_stats.evictions;
  result.shard_stats.cache_peak_bytes = cache_stats.peak_bytes;

  if (result.status.ok() && (cut || (exec != nullptr && exec->StopRequested()))) {
    result.status = exec != nullptr ? exec->ToStatus()
                                    : Status::Cancelled("join cut short");
  }

  // Canonical (r, s) order: directly comparable with the single-arena
  // reference join (each global pair was reported by exactly one task).
  std::vector<uint32_t> order(result.pairs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return result.pairs[a] < result.pairs[b];
  });
  std::vector<CandidatePair> pairs;
  std::vector<de9im::Relation> relations;
  pairs.reserve(order.size());
  relations.reserve(order.size());
  for (const uint32_t i : order) {
    pairs.push_back(result.pairs[i]);
    relations.push_back(result.relations[i]);
  }
  result.pairs = std::move(pairs);
  result.relations = std::move(relations);
  return result;
}

Status BuildShardSet(const std::string& dir,
                     const std::vector<SpatialObject>& objects,
                     const CompressedAprilStore& store,
                     const PartitionOptions& options,
                     TilePartition* partition_out,
                     ShardWriteStats* stats_out) {
  STJ_CHECK_MSG(store.Count() == objects.size(),
                "shard build needs an APRIL record per object");
  std::vector<Box> mbrs;
  mbrs.reserve(objects.size());
  std::vector<uint64_t> units;
  units.reserve(objects.size());
  const CompressedStoreSpans& spans = store.Spans();
  for (size_t i = 0; i < objects.size(); ++i) {
    mbrs.push_back(objects[i].geometry.Bounds());
    // The join's cost model: refinement work scales with vertices, filter
    // work with interval counts.
    units.push_back(objects[i].geometry.VertexCount() + spans.c_intervals[i] +
                    spans.p_intervals[i]);
  }
  TilePartition partition = BuildCostBalancedPartition(mbrs, units, options);
  Status st = WriteShardSet(dir, partition.grid, partition.tile_begin,
                            partition.entries, partition.tile_units, objects,
                            store, stats_out);
  if (!st.ok()) return st;
  if (partition_out != nullptr) *partition_out = std::move(partition);
  return Status::Ok();
}

}  // namespace stj
