#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/join/partitioner.h"
#include "src/raster/shard_io.h"
#include "src/topology/parallel.h"

namespace stj {

/// Out-of-core tile-pair join over two shard sets (ROADMAP item 2).
///
/// The scheduler turns a join R x S into tile-pair *tasks*: one task per
/// (r-tile, s-tile) whose tile rectangles intersect. Tasks execute against
/// only the two tiles' shards — mapped on demand, held in a byte-budgeted
/// LRU cache, evicted by munmap — so peak memory follows the cache budget,
/// not the dataset size. Within a task the join is exactly the in-memory
/// pipeline: MbrJoin over the tiles' local MBRs, then the existing parallel
/// find-relation executors (pair-at-a-time or batched, per JoinOptions) on
/// local DatasetViews whose APRIL side reads zero-copy off the mappings.
///
/// Determinism and exactness: objects are replicated into every tile their
/// MBR overlaps, so a candidate pair can surface in several tasks. Each
/// pair is *reported* by exactly one: the task whose tiles contain the
/// pair's reference point (the componentwise max of the two MBR min
/// corners — a point inside both MBRs) under each side's TileGrid::TileOf.
/// TileOf is a total partition of the plane, so the rule is exact — no
/// epsilons, no cross-task coordination — and the surviving pairs, sorted
/// by (r, s), are byte-identical to the single-arena join at every tile
/// grid, cache budget, and thread count.
///
/// Task order maximises shard reuse: tasks are sorted by the Hilbert-curve
/// position of their tile-intersection center, so consecutive tasks touch
/// spatially adjacent tiles and re-hit the resident shards instead of
/// thrashing the cache.
struct ShardJoinOptions {
  /// Executor knobs for the per-task join (threads, batch_size, caches,
  /// ExecContext). The ExecContext, when set, also covers the scheduler
  /// itself: shard loads are charged to its memory budget and the task loop
  /// checks in once per task.
  JoinOptions join;
  /// LRU budget for resident shards, both sides together. The two shards of
  /// the running task are always pinned, so the effective floor is the
  /// largest r-shard plus the largest s-shard; a smaller budget degrades to
  /// exactly that working set (correct, just reload-heavy).
  size_t shard_cache_bytes = size_t{256} << 20;
};

/// Scheduler telemetry, merged alongside PipelineStats.
struct ShardStats {
  uint64_t tasks = 0;           ///< Tile-pair tasks scheduled.
  uint64_t tasks_run = 0;       ///< Tasks fully executed (<= tasks on cuts).
  uint64_t shard_loads = 0;     ///< Cache misses (LoadTile calls).
  uint64_t shard_hits = 0;      ///< Cache hits.
  uint64_t shards_evicted = 0;
  uint64_t bytes_mapped = 0;    ///< Sum of mapped file bytes over loads.
  /// Bytes a load eagerly materialises (header, table, ids, geometry) —
  /// the mandatory fault-in; the APRIL remainder pages in lazily.
  uint64_t bytes_faulted = 0;
  uint64_t cache_peak_bytes = 0;  ///< High-water resident-shard bytes.
  /// Candidate pairs dropped by the reference-point rule (duplicates that
  /// another task reports).
  uint64_t pairs_deduped = 0;
  uint64_t pairs_emitted = 0;  ///< Pairs this join answered.
};

/// Result of a sharded find-relation join. `pairs` and `relations` are
/// index-aligned and sorted by (r, s) over *global* dataset indices;
/// every MBR-intersecting pair appears with its relation (kDisjoint
/// included), which makes the vectors directly comparable against the
/// single-arena reference join.
struct ShardJoinResult {
  std::vector<CandidatePair> pairs;
  std::vector<de9im::Relation> relations;
  PipelineStats stats;        ///< Merged across all tasks' executors.
  ShardStats shard_stats;
  /// Ok on complete runs; the ExecContext cause (kCancelled /
  /// kDeadlineExceeded / kResourceExhausted) on a cooperative cut. On a cut
  /// the vectors hold only answered pairs — a subset of the full run's
  /// (pair, relation) map, loss-lessly (parallel.h PartialResult contract).
  Status status;
};

/// Runs the sharded join. Both shard sets must be complete (written by
/// WriteShardSet); corruption surfaces as a kDataLoss status.
ShardJoinResult ShardedFindRelation(Method method, const ShardSet& r_shards,
                                    const ShardSet& s_shards,
                                    const ShardJoinOptions& options);

/// Convenience builder glueing the layers for the CLI and tests: computes
/// per-object computational units (vertex count + APRIL interval count —
/// the cost model the partitioner balances), builds the cost-balanced
/// TilePartition, and persists the dataset as a shard set under \p dir.
/// \p partition_out (optional) receives the partition for inspection.
Status BuildShardSet(const std::string& dir,
                     const std::vector<SpatialObject>& objects,
                     const CompressedAprilStore& store,
                     const PartitionOptions& options,
                     TilePartition* partition_out = nullptr,
                     ShardWriteStats* stats_out = nullptr);

}  // namespace stj
