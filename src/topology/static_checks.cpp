// Compile-time proof that the shipped topology-layer tables — the Fig. 4
// MBR candidate sets (mbr_relation.h), the Fig. 5 intermediate-filter
// outcome sets (intermediate_filters.h), and the Fig. 6 relate_p fast-path
// tables (relate_tables.h) — are consistent with the first-principles DE-9IM
// model of src/de9im/model.h. This translation unit emits no code. The
// de9im-layer checks (mask tables, implication lattice) live one layer down
// in src/de9im/model_check.cpp.

#include "src/de9im/model.h"
#include "src/de9im/relation.h"
#include "src/geometry/box.h"
#include "src/topology/intermediate_filters.h"
#include "src/topology/mbr_relation.h"
#include "src/topology/relate_tables.h"

namespace stj {
namespace {

using de9im::ImplicantsOf;
using de9im::MbrPossibleSet;
using de9im::Relation;
using de9im::RelationSet;
using de9im::kNumRelations;

constexpr BoxRelation kAllBoxRelations[] = {
    BoxRelation::kDisjoint, BoxRelation::kEqual,  BoxRelation::kRInsideS,
    BoxRelation::kSInsideR, BoxRelation::kCross,  BoxRelation::kOverlap};

constexpr bool IsSubset(RelationSet a, RelationSet b) {
  return (a.Bits() & ~b.Bits()) == 0;
}

constexpr RelationSet Intersect(RelationSet a, RelationSet b) {
  RelationSet out;
  for (int i = 0; i < kNumRelations; ++i) {
    const Relation rel = static_cast<Relation>(i);
    if (a.Contains(rel) && b.Contains(rel)) out.Add(rel);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Fig. 4: the shipped MBR candidate table is exactly the set of relations
// that are geometrically possible for each MBR case — no candidate missing
// (which would drop true results), none extra (which would waste refinement).
constexpr bool MbrTableMatchesModel() {
  for (BoxRelation boxes : kAllBoxRelations) {
    if (!(MbrCandidates(boxes) == MbrPossibleSet(boxes))) return false;
  }
  return true;
}
static_assert(MbrTableMatchesModel(),
              "MbrCandidates (Fig. 4) disagrees with the candidate sets "
              "derived in de9im/model.h");

// FindRelationFilter answers kDisjoint / kCross MBR cases without running an
// intermediate filter; that is sound only while those candidate sets are
// singletons.
static_assert(MbrCandidates(BoxRelation::kDisjoint) ==
                  RelationSet{Relation::kDisjoint},
              "MBR-disjoint fast path needs a singleton candidate set");
static_assert(MbrCandidates(BoxRelation::kCross) ==
                  RelationSet{Relation::kIntersects},
              "MBR-cross fast path needs a singleton candidate set");

// ---------------------------------------------------------------------------
// Fig. 5: each intermediate filter can only return a fixed set of outcomes
// (the return statements in intermediate_filters.cpp). For the filter run on
// MBR case B, every reachable outcome must (a) carry candidates that are a
// subset of MbrCandidates(B) — a filter may narrow, never widen; (b) if
// definite, decide a relation possible under B; and (c) jointly cover
// MbrCandidates(B) — otherwise some reachable relation could never be
// reported and the filter bank would be unsound for some input.
struct FilterCase {
  BoxRelation boxes;
  IFOutcome outcomes[6];
  int num_outcomes;
};

constexpr FilterCase kFilterCases[] = {
    {BoxRelation::kEqual,
     {IFOutcome::kRefineEquals, IFOutcome::kCoveredBy,
      IFOutcome::kRefineCoveredBy, IFOutcome::kCovers,
      IFOutcome::kRefineCovers, IFOutcome::kRefineMeetsIntersects},
     6},
    {BoxRelation::kRInsideS,
     {IFOutcome::kInside, IFOutcome::kRefineInside,
      IFOutcome::kRefineAllInside, IFOutcome::kDisjoint,
      IFOutcome::kIntersects, IFOutcome::kRefineDisjointMeetsIntersects},
     6},
    {BoxRelation::kSInsideR,
     {IFOutcome::kContains, IFOutcome::kRefineContains,
      IFOutcome::kRefineAllContains, IFOutcome::kDisjoint,
      IFOutcome::kIntersects, IFOutcome::kRefineDisjointMeetsIntersects},
     6},
    {BoxRelation::kOverlap,
     {IFOutcome::kDisjoint, IFOutcome::kIntersects,
      IFOutcome::kRefineDisjointMeetsIntersects, IFOutcome::kDisjoint,
      IFOutcome::kDisjoint, IFOutcome::kDisjoint},
     3},
};

constexpr bool FilterOutcomesSoundAndComplete() {
  for (const FilterCase& fc : kFilterCases) {
    const RelationSet possible = MbrCandidates(fc.boxes);
    RelationSet covered;
    for (int i = 0; i < fc.num_outcomes; ++i) {
      const IFOutcome outcome = fc.outcomes[i];
      const RelationSet candidates = CandidatesOf(outcome);
      if (!IsSubset(candidates, possible)) return false;       // (a)
      if (IsDefinite(outcome) &&
          !possible.Contains(DefiniteRelation(outcome))) {
        return false;                                          // (b)
      }
      for (int r = 0; r < kNumRelations; ++r) {
        const Relation rel = static_cast<Relation>(r);
        if (candidates.Contains(rel)) covered.Add(rel);
      }
    }
    if (!(covered == possible)) return false;                  // (c)
  }
  return true;
}
static_assert(FilterOutcomesSoundAndComplete(),
              "a Fig. 5 intermediate-filter outcome widens, escapes, or "
              "fails to cover its MBR case's Fig. 4 candidate set");

// Definite outcomes must be definite in the DefiniteRelation sense too:
// their candidate set is the singleton of their relation.
constexpr bool DefiniteOutcomesAreSingletons() {
  constexpr IFOutcome kDefinites[] = {
      IFOutcome::kDisjoint,  IFOutcome::kInside, IFOutcome::kContains,
      IFOutcome::kCoveredBy, IFOutcome::kCovers, IFOutcome::kIntersects};
  for (IFOutcome outcome : kDefinites) {
    if (!IsDefinite(outcome)) return false;
    if (!(CandidatesOf(outcome) == RelationSet{DefiniteRelation(outcome)}))
      return false;
  }
  return true;
}
static_assert(DefiniteOutcomesAreSingletons(),
              "IsDefinite/DefiniteRelation/CandidatesOf disagree");

// ---------------------------------------------------------------------------
// Fig. 6 relate_p fast paths: the shipped feasibility/certainty tables must
// coincide with what the model derives. p is answerable-No from MBRs alone
// iff no Fig. 4 candidate implies p (lattice down-set ImplicantsOf); it is
// answerable-Yes iff every candidate implies p.
constexpr bool RelateTablesMatchModel() {
  for (BoxRelation boxes : kAllBoxRelations) {
    const RelationSet candidates = MbrPossibleSet(boxes);
    for (int i = 0; i < kNumRelations; ++i) {
      const Relation p = static_cast<Relation>(i);
      const RelationSet implicants = ImplicantsOf(p);
      const bool feasible = !Intersect(candidates, implicants).Empty();
      if (RelateFeasible(p, boxes) != feasible) return false;
      const bool certain = !candidates.Empty() &&
                           IsSubset(candidates, implicants);
      if (RelateCertain(p, boxes) != certain) return false;
    }
  }
  return true;
}
static_assert(RelateTablesMatchModel(),
              "a relate_p MBR fast path (relate_tables.h) disagrees with the "
              "Fig. 2 lattice over the Fig. 4 candidate sets");

}  // namespace
}  // namespace stj
