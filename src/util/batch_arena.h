#pragma once

#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/util/thread_annotations.h"

namespace stj {

/// Recycling pool for the SoA batch buffers that flow through the staged
/// executor's queues. A join produces thousands of short-lived batches whose
/// column vectors would otherwise be reallocated from cold heap every time;
/// recycling keeps the number of live batch buffers bounded by
/// workers + queue depth, and a recycled batch returns with its columns'
/// capacity intact, so steady state allocates nothing.
///
/// T must be default-constructible and provide Clear() that empties it while
/// keeping capacity (the vector::clear contract). Thread-safe: producers and
/// consumers of a stage queue acquire and recycle concurrently; the lock is
/// touched once per batch, which is noise next to the hundreds of pairs each
/// batch carries.
template <typename T>
class BatchArena {
 public:
  BatchArena() = default;
  BatchArena(const BatchArena&) = delete;
  BatchArena& operator=(const BatchArena&) = delete;

  /// A cleared batch: recycled when one is available, freshly allocated
  /// otherwise.
  std::unique_ptr<T> Acquire() STJ_EXCLUDES(mutex_) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!free_.empty()) {
        std::unique_ptr<T> batch = std::move(free_.back());
        free_.pop_back();
        return batch;
      }
    }
    return std::make_unique<T>();
  }

  /// Returns a batch to the pool for reuse (cleared here so Acquire hands
  /// out ready-to-fill buffers). Null is tolerated and ignored.
  void Recycle(std::unique_ptr<T> batch) STJ_EXCLUDES(mutex_) {
    if (batch == nullptr) return;
    batch->Clear();
    const std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(std::move(batch));
  }

  size_t FreeCount() const STJ_EXCLUDES(mutex_) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return free_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<T>> free_ STJ_GUARDED_BY(mutex_);
};

}  // namespace stj
