#include "src/util/check.h"

#include <cstdio>
#include <cstdlib>

namespace stj::internal {

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const char* message) {
  if (message != nullptr) {
    std::fprintf(stderr, "%s:%d: check failed: %s (%s)\n", file, line, expr,
                 message);
  } else {
    std::fprintf(stderr, "%s:%d: check failed: %s\n", file, line, expr);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace stj::internal
