#pragma once

#include <cstddef>

/// Contract and invariant macros (DESIGN.md §11).
///
/// Three tiers, by who pays and when:
///
///  - STJ_CHECK(cond): always on, in every build type. For contracts whose
///    violation means memory is already (or is about to be) corrupted and no
///    Status can credibly be propagated — e.g. index arithmetic inside a
///    container. Cost must be O(1) on a path where a branch is free.
///  - STJ_DCHECK(cond) / STJ_DCHECK_SORTED(...): compiled out unless
///    STJ_ENABLE_INVARIANTS is defined (the `invariants` CMake preset).
///    For contracts that are too hot or too deep for release builds.
///  - Status::Internal(...): for invariant violations detected on fallible
///    paths (I/O, parsing) where the caller can isolate the damage — see the
///    corruption-isolation machinery in april_io.h.
///
/// Deep structure validators (IntervalList::ValidateInvariants and friends)
/// are always *compiled* — tests call them in any build — but their
/// automatic invocation from hot paths is wrapped in STJ_IF_INVARIANTS so
/// release binaries never pay for them.

namespace stj::internal {

/// Prints "file:line: check failed: expr (message)" to stderr and aborts.
/// Out of line so the macro expansion stays one cheap test-and-branch.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const char* message = nullptr);

}  // namespace stj::internal

/// Always-on contract check: aborts (never throws) on violation.
#define STJ_CHECK(cond)                                            \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::stj::internal::CheckFailed(__FILE__, __LINE__, #cond);     \
    }                                                              \
  } while (false)

/// Always-on contract check with an explanatory message.
#define STJ_CHECK_MSG(cond, message)                                       \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::stj::internal::CheckFailed(__FILE__, __LINE__, #cond, (message));  \
    }                                                                      \
  } while (false)

#if defined(STJ_ENABLE_INVARIANTS)

#define STJ_INVARIANTS_ENABLED 1

/// Debug contract check: active only in invariants builds.
#define STJ_DCHECK(cond) STJ_CHECK(cond)
#define STJ_DCHECK_MSG(cond, message) STJ_CHECK_MSG(cond, (message))
#define STJ_DCHECK_EQ(a, b) STJ_CHECK((a) == (b))
#define STJ_DCHECK_NE(a, b) STJ_CHECK((a) != (b))
#define STJ_DCHECK_LE(a, b) STJ_CHECK((a) <= (b))
#define STJ_DCHECK_LT(a, b) STJ_CHECK((a) < (b))
#define STJ_DCHECK_GE(a, b) STJ_CHECK((a) >= (b))

/// Runs \p statement only in invariants builds — the hook used to call the
/// deep ValidateInvariants() validators from hot construction paths.
#define STJ_IF_INVARIANTS(statement) \
  do {                               \
    statement;                       \
  } while (false)

/// Checks that [begin, end) is sorted under \p lt (strictly: lt(next, prev)
/// never holds). Linear — invariants builds only.
#define STJ_DCHECK_SORTED(begin_it, end_it, lt)                            \
  do {                                                                     \
    auto stj_check_it = (begin_it);                                        \
    const auto stj_check_end = (end_it);                                   \
    if (stj_check_it != stj_check_end) {                                   \
      auto stj_check_prev = stj_check_it++;                                \
      for (; stj_check_it != stj_check_end;                                \
           stj_check_prev = stj_check_it++) {                              \
        STJ_CHECK_MSG(!(lt)(*stj_check_it, *stj_check_prev),               \
                      "range is not sorted");                              \
      }                                                                    \
    }                                                                      \
  } while (false)

#else  // !STJ_ENABLE_INVARIANTS

#define STJ_INVARIANTS_ENABLED 0

// The sizeof trick keeps the condition's names odr-unused but referenced, so
// compiled-out checks never cause unused-variable warnings and never
// evaluate their (side-effect-free by contract) arguments.
#define STJ_DCHECK(cond) ((void)sizeof(!(cond)))
#define STJ_DCHECK_MSG(cond, message) ((void)sizeof(!(cond)))
#define STJ_DCHECK_EQ(a, b) ((void)sizeof((a) == (b)))
#define STJ_DCHECK_NE(a, b) ((void)sizeof((a) != (b)))
#define STJ_DCHECK_LE(a, b) ((void)sizeof((a) <= (b)))
#define STJ_DCHECK_LT(a, b) ((void)sizeof((a) < (b)))
#define STJ_DCHECK_GE(a, b) ((void)sizeof((a) >= (b)))

#define STJ_IF_INVARIANTS(statement) \
  do {                               \
  } while (false)

#define STJ_DCHECK_SORTED(begin_it, end_it, lt) \
  ((void)sizeof(((begin_it) != (end_it)) &&     \
                (lt)(*(begin_it), *(begin_it))))

#endif  // STJ_ENABLE_INVARIANTS
