#include "src/util/cpuid.h"

#include <cstring>

namespace stj {

const char* ToString(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
  }
  return "unknown";
}

SimdLevel DetectSimdLevel() {
#if defined(STJ_DISABLE_SIMD)
  return SimdLevel::kScalar;
#elif defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports consults CPUID and XGETBV, so it is false when the
  // OS does not preserve the ymm state even if the CPU advertises AVX2.
  return __builtin_cpu_supports("avx2") ? SimdLevel::kAvx2
                                        : SimdLevel::kScalar;
#elif defined(__aarch64__)
  return SimdLevel::kNeon;
#else
  return SimdLevel::kScalar;
#endif
}

bool ParseSimdLevel(const char* name, SimdLevel* out) {
  if (name == nullptr || out == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) {
    *out = SimdLevel::kScalar;
    return true;
  }
  if (std::strcmp(name, "avx2") == 0) {
    *out = SimdLevel::kAvx2;
    return true;
  }
  if (std::strcmp(name, "neon") == 0) {
    *out = SimdLevel::kNeon;
    return true;
  }
  return false;
}

}  // namespace stj
