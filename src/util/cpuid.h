#pragma once

#include <cstdint>

namespace stj {

/// Vector instruction tiers the interval kernels can target (simd.h). The
/// enum is a tier ladder, not a feature bitmap: each level fully determines
/// one kernel table, and dispatch picks exactly one level at startup.
enum class SimdLevel : uint8_t {
  kScalar = 0,  ///< Portable C++ (always available; the differential oracle).
  kAvx2 = 1,    ///< x86-64 with AVX2 (4x64-bit lanes).
  kNeon = 2,    ///< AArch64 Advanced SIMD (2x64-bit lanes; baseline on arm64).
};

const char* ToString(SimdLevel level);

/// Best level the running CPU supports. On x86 this queries CPUID (via
/// __builtin_cpu_supports, which also checks OS ymm-state support); on
/// AArch64 Advanced SIMD is architecturally guaranteed. Builds configured
/// with -DSTJ_DISABLE_SIMD=ON report kScalar unconditionally so the portable
/// path is the only one that can run.
SimdLevel DetectSimdLevel();

/// Parses "scalar" / "avx2" / "neon" (as accepted in the STJ_SIMD
/// environment override). Returns false on unknown names.
bool ParseSimdLevel(const char* name, SimdLevel* out);

}  // namespace stj
