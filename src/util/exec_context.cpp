#include "src/util/exec_context.h"

namespace stj {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* ToString(StopCause cause) {
  switch (cause) {
    case StopCause::kNone: return "none";
    case StopCause::kCancelled: return "cancelled";
    case StopCause::kDeadlineExceeded: return "deadline-exceeded";
    case StopCause::kMemoryExceeded: return "memory-exceeded";
  }
  return "?";
}

bool ExecContext::RequestStop(StopCause cause) {
  if (cause == StopCause::kNone) return false;
  uint8_t expected = static_cast<uint8_t>(StopCause::kNone);
  if (!stop_.compare_exchange_strong(expected, static_cast<uint8_t>(cause),
                                     std::memory_order_acq_rel)) {
    return false;  // an earlier trip already decided the stop cause
  }
  trip_time_us_.store(NowMicros(), std::memory_order_release);
  return true;
}

Status ExecContext::ToStatus() const {
  switch (cause()) {
    case StopCause::kNone:
      return Status::Ok();
    case StopCause::kCancelled:
      return Status::Cancelled("query cancelled");
    case StopCause::kDeadlineExceeded:
      return Status::DeadlineExceeded("query deadline exceeded");
    case StopCause::kMemoryExceeded:
      return Status::ResourceExhausted("query memory budget exhausted");
  }
  return Status::Internal("unknown stop cause");
}

bool ExecContext::TryCharge(size_t bytes) {
  if (charge_hook_ != nullptr) {
    const uint64_t ordinal =
        charge_ordinal_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (!charge_hook_(*this, bytes, ordinal)) {
      RequestStop(StopCause::kMemoryExceeded);
      return false;
    }
    charged_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    return true;
  }
  if (!has_budget_) return true;
  if (StopRequested()) return false;
  const int64_t remaining =
      budget_remaining_.fetch_sub(static_cast<int64_t>(bytes),
                                  std::memory_order_relaxed) -
      static_cast<int64_t>(bytes);
  if (remaining < 0) {
    // Return the failed charge so concurrent small charges are not starved
    // by one oversized request racing the trip.
    budget_remaining_.fetch_add(static_cast<int64_t>(bytes),
                                std::memory_order_relaxed);
    RequestStop(StopCause::kMemoryExceeded);
    return false;
  }
  charged_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  return true;
}

bool ExecContext::PollDeadline() {
  if (std::chrono::steady_clock::now() >= deadline_) {
    RequestStop(StopCause::kDeadlineExceeded);
  }
  return StopRequested();
}

void ExecContext::RunCheckInHook() {
  const uint64_t ordinal =
      checkin_ordinal_.fetch_add(1, std::memory_order_relaxed) + 1;
  checkin_hook_(*this, ordinal);
}

void ExecContext::NoteStopObserved(uint64_t latency_us) {
  stop_observations_.fetch_add(1, std::memory_order_relaxed);
  uint64_t seen = max_cancel_latency_us_.load(std::memory_order_relaxed);
  while (seen < latency_us &&
         !max_cancel_latency_us_.compare_exchange_weak(
             seen, latency_us, std::memory_order_relaxed)) {
  }
}

bool ExecContext::Scope::ObserveStop() {
  observed_stop_ = true;
  observed_cause_ = ctx_->cause();
  const int64_t tripped_at = ctx_->trip_time_us_.load(std::memory_order_acquire);
  const int64_t now = NowMicros();
  observed_latency_us_ =
      now > tripped_at ? static_cast<uint64_t>(now - tripped_at) : 0;
  ctx_->NoteStopObserved(observed_latency_us_);
  return true;
}

void ExecContext::Scope::Flush() {
  if (ctx_ == nullptr) return;
  if (checkins_ != 0) {
    ctx_->checkins_.fetch_add(checkins_, std::memory_order_relaxed);
  }
  if (deadline_polls_ != 0) {
    ctx_->deadline_polls_.fetch_add(deadline_polls_,
                                    std::memory_order_relaxed);
  }
}

}  // namespace stj
