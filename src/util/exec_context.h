#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>

#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace stj {

/// Why an ExecContext asked its workers to stop. kNone means "still
/// running"; the other causes are terminal — the first trip wins and later
/// trip attempts are ignored, so a query stops for exactly one reason.
enum class StopCause : uint8_t {
  kNone = 0,
  kCancelled,         ///< ExecContext::Cancel() (client abort, SIGINT, ...).
  kDeadlineExceeded,  ///< The steady-clock deadline passed a check-in poll.
  kMemoryExceeded,    ///< A TryCharge overflowed the soft memory budget.
};

const char* ToString(StopCause cause);

/// Watchdog snapshot of one query's check-in activity (see ExecContext).
/// Plain values — safe to copy, print, or serialise after the run.
struct ExecWatchdogStats {
  uint64_t checkins = 0;        ///< Check-ins across all worker scopes.
  uint64_t deadline_polls = 0;  ///< Check-ins that read the steady clock.
  /// Worker scopes that observed the stop request (each scope reports its
  /// first observation only). Equals the number of workers that were inside
  /// a cancellable loop when the query tripped.
  uint64_t stop_observations = 0;
  /// Worst time, over all observing scopes, from the trip to the scope
  /// noticing it — the realised cooperative-cancellation latency.
  uint64_t max_cancel_latency_us = 0;
};

/// Cooperative cancellation, deadline, and soft-memory-budget carrier for
/// one query (ROADMAP item 1: the per-request contract of a resident join
/// service).
///
/// One ExecContext is created per query and threaded by pointer through
/// every long-running stage (MbrJoin tile sweeps, the parallel
/// find-relation/relate drivers, APRIL preprocessing, AprilStore loading).
/// Workers check in through an ExecContext::Scope at a stage-specific
/// granularity (one candidate pair, one swept tile, one rasterised object,
/// one distribute slice); a check-in costs one relaxed atomic load plus a
/// local counter bump, and reads the steady clock only every
/// kDeadlinePollPeriod check-ins, so the unbounded path stays within noise
/// of a context-free run (BENCH_PR6.json holds it to <= 2%).
///
/// Cancellation is cooperative and loss-less: nothing is interrupted
/// mid-pair. A worker that observes the trip finishes nothing further, and
/// every result produced before the cut remains valid — the drivers return
/// a PartialResult naming exactly which pairs were fully verified
/// (parallel.h). The stop cause maps onto Status codes via ToStatus():
/// kCancelled, kDeadlineExceeded, or kResourceExhausted.
///
/// Thread safety: Cancel/RequestStop/TryCharge/Release and every query by
/// worker scopes are safe from any thread. The setters (deadline, budget,
/// hooks) must be called before workers start checking in — they configure
/// the query, they do not reconfigure a running one.
class ExecContext {
 public:
  /// Deadline polls happen every this many check-ins per scope (the stop
  /// flag itself is checked on every check-in). Bounds the extra latency a
  /// deadline can suffer to kDeadlinePollPeriod times the cost of one work
  /// unit on the polling worker.
  static constexpr uint32_t kDeadlinePollPeriod = 16;

  ExecContext() = default;
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// Arms the deadline: check-ins start polling the steady clock and trip
  /// kDeadlineExceeded once it passes \p deadline.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  void SetDeadlineAfter(std::chrono::nanoseconds budget) {
    SetDeadline(std::chrono::steady_clock::now() + budget);
  }
  bool has_deadline() const { return has_deadline_; }

  /// Arms the soft memory budget consulted by TryCharge. "Soft" because it
  /// bounds the *tracked* allocations (arena growth, tile-entry tables,
  /// APRIL interval payloads), not every byte the allocator hands out.
  void SetMemoryBudget(size_t bytes) {
    budget_remaining_.store(static_cast<int64_t>(bytes),
                            std::memory_order_relaxed);
    has_budget_ = true;
  }
  bool has_memory_budget() const { return has_budget_; }

  /// Requests a cooperative stop with \p cause; the first request wins and
  /// records the trip time for cancel-latency accounting. Returns true when
  /// this call performed the trip. Safe from any thread (and, for
  /// kCancelled, from signal handlers: the slow path is one CAS plus a
  /// steady-clock read).
  bool RequestStop(StopCause cause);

  /// Client-initiated cancellation (RequestStop(kCancelled)).
  void Cancel() { RequestStop(StopCause::kCancelled); }

  /// True once any stop cause tripped. One relaxed load — this is the fast
  /// path of every check-in.
  bool StopRequested() const {
    return stop_.load(std::memory_order_relaxed) !=
           static_cast<uint8_t>(StopCause::kNone);
  }

  StopCause cause() const {
    return static_cast<StopCause>(stop_.load(std::memory_order_acquire));
  }

  /// Ok while running; otherwise the Status a service should return for the
  /// query: kCancelled / kDeadlineExceeded / kResourceExhausted.
  Status ToStatus() const;

  /// Charges \p bytes against the soft memory budget. Returns true when the
  /// charge fits (or no budget is armed); on overflow trips kMemoryExceeded
  /// and returns false — the caller abandons the allocation and unwinds
  /// cooperatively. A fault-injection ChargeHook, when installed, decides
  /// instead of the budget arithmetic.
  bool TryCharge(size_t bytes);

  /// Returns \p bytes of budget (freed scratch); no-op without a budget.
  void Release(size_t bytes) {
    if (has_budget_) {
      budget_remaining_.fetch_add(static_cast<int64_t>(bytes),
                                  std::memory_order_relaxed);
    }
  }

  /// Bytes charged so far (monotone; Release does not subtract). Telemetry,
  /// not an accounting invariant.
  uint64_t charged_bytes() const {
    return charged_bytes_.load(std::memory_order_relaxed);
  }

  /// Remaining budget (may be transiently negative around a failed charge).
  /// Meaningless without an armed budget. Exposed for the charge/release
  /// balance invariants the model checker asserts (tests/model/).
  int64_t budget_remaining() const {
    return budget_remaining_.load(std::memory_order_relaxed);
  }

  ExecWatchdogStats WatchdogSnapshot() const {
    ExecWatchdogStats stats;
    stats.checkins = checkins_.load(std::memory_order_relaxed);
    stats.deadline_polls = deadline_polls_.load(std::memory_order_relaxed);
    stats.stop_observations =
        stop_observations_.load(std::memory_order_relaxed);
    stats.max_cancel_latency_us =
        max_cancel_latency_us_.load(std::memory_order_relaxed);
    return stats;
  }

  /// Fault-injection hook (tests/robustness): invoked on every check-in
  /// with the 1-based *global* check-in ordinal, before the stop-flag test,
  /// and may call RequestStop to simulate a cancel or deadline at an exact
  /// point in the schedule. Installing a hook routes every check-in through
  /// a serialising slow path — never install one outside tests.
  using CheckInHook = std::function<void(ExecContext&, uint64_t ordinal)>;
  void SetCheckInHook(CheckInHook hook) { checkin_hook_ = std::move(hook); }

  /// Fault-injection hook for TryCharge: receives the charge size and the
  /// 1-based global charge ordinal; returning false simulates an allocation
  /// failure (the context trips kMemoryExceeded exactly as a real overflow
  /// would). Replaces the budget arithmetic while installed.
  using ChargeHook =
      std::function<bool(ExecContext&, size_t bytes, uint64_t ordinal)>;
  void SetChargeHook(ChargeHook hook) { charge_hook_ = std::move(hook); }

  /// Per-worker check-in cursor. Each worker of a cancellable loop owns one
  /// Scope on its stack; local counters keep the hot path free of shared
  /// writes, and the destructor flushes them into the context's watchdog
  /// totals. A Scope over a null context is a no-op whose CheckIn() always
  /// returns false, so call sites need no branching on "is this query
  /// bounded?".
  class Scope {
   public:
    explicit Scope(ExecContext* ctx)
        : ctx_(ctx), until_poll_(kDeadlinePollPeriod) {}
    ~Scope() { Flush(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    /// Declares one unit of work about to start. Returns true when the
    /// worker must stop (the context tripped): the worker abandons its
    /// remaining work at this boundary, leaving everything completed before
    /// it valid.
    bool CheckIn() {
      if (ctx_ == nullptr) return false;
      if (observed_stop_) return true;
      ++checkins_;
      if (ctx_->checkin_hook_ != nullptr) ctx_->RunCheckInHook();
      if (ctx_->StopRequested()) return ObserveStop();
      if (ctx_->has_deadline_ && --until_poll_ == 0) {
        until_poll_ = kDeadlinePollPeriod;
        ++deadline_polls_;
        if (ctx_->PollDeadline()) return ObserveStop();
      }
      return false;
    }

    /// True once this scope observed the trip (sticky).
    bool stopped() const { return observed_stop_; }

    uint64_t checkins() const { return checkins_; }

    /// Microseconds between the trip and this scope observing it; 0 until
    /// stopped() turns true.
    uint64_t observed_latency_us() const { return observed_latency_us_; }

    /// Stop cause at observation time (kNone until stopped()).
    StopCause observed_cause() const { return observed_cause_; }

   private:
    /// Merges the local counters into the context watchdog totals (called
    /// once, from the destructor; the accessors above stay valid for the
    /// scope's whole lifetime).
    void Flush();

    bool ObserveStop();

    ExecContext* ctx_;
    uint64_t checkins_ = 0;
    uint64_t deadline_polls_ = 0;
    uint64_t observed_latency_us_ = 0;
    uint32_t until_poll_;
    bool observed_stop_ = false;
    StopCause observed_cause_ = StopCause::kNone;
  };

 private:
  friend class Scope;

  /// Reads the steady clock; trips kDeadlineExceeded when past the
  /// deadline. Returns StopRequested() afterwards.
  bool PollDeadline();

  /// Slow path when a fault-injection CheckInHook is installed.
  void RunCheckInHook();

  void NoteStopObserved(uint64_t latency_us);

  STJ_ATOMIC_DOC(
      "stop cause; any thread CASes kNone->cause once (RequestStop), workers "
      "read relaxed per check-in — staleness only delays the cut, cause() "
      "reads acquire to order against the trip's bookkeeping");
  std::atomic<uint8_t> stop_{static_cast<uint8_t>(StopCause::kNone)};
  /// Steady-clock microseconds at the moment of the trip (latency origin).
  STJ_ATOMIC_DOC(
      "written once by the tripping thread before the stop_ CAS publishes; "
      "observers read it only after seeing stop_ != kNone");
  std::atomic<int64_t> trip_time_us_{0};

  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};

  bool has_budget_ = false;
  STJ_ATOMIC_DOC(
      "signed budget counter; TryCharge/Release fetch_sub/fetch_add relaxed "
      "from any worker — only the sign matters and each charge observes its "
      "own subtraction, so no ordering beyond atomicity is needed");
  std::atomic<int64_t> budget_remaining_{0};
  STJ_ATOMIC_DOC("monotone telemetry total; relaxed add, read after the run");
  std::atomic<uint64_t> charged_bytes_{0};
  STJ_ATOMIC_DOC("fault-injection ordinal; relaxed fetch_add gives each "
                 "charge a unique 1-based id, order between workers is moot");
  std::atomic<uint64_t> charge_ordinal_{0};

  // Watchdog totals (Scope::Flush merges the per-worker counters). All four
  // are write-only during the run and read after workers joined.
  STJ_ATOMIC_DOC("watchdog total; relaxed add at scope exit, read post-join");
  std::atomic<uint64_t> checkins_{0};
  STJ_ATOMIC_DOC("watchdog total; relaxed add at scope exit, read post-join");
  std::atomic<uint64_t> deadline_polls_{0};
  STJ_ATOMIC_DOC("watchdog total; relaxed add at scope exit, read post-join");
  std::atomic<uint64_t> stop_observations_{0};
  STJ_ATOMIC_DOC("watchdog maximum; CAS max loop at scope exit, read "
                 "post-join — contended only in the instant after a trip");
  std::atomic<uint64_t> max_cancel_latency_us_{0};

  CheckInHook checkin_hook_;
  STJ_ATOMIC_DOC("fault-injection ordinal; relaxed fetch_add gives each "
                 "check-in a unique 1-based id for schedule replay");
  std::atomic<uint64_t> checkin_ordinal_{0};
  ChargeHook charge_hook_;
};

}  // namespace stj
