#include "src/util/mmap_file.h"

#include <cstdio>
#include <utility>

// The one src/ translation unit allowed to touch platform headers (see the
// platform-confined rule in tools/project_lint.py). Everything below the
// #if is POSIX; the #else branch is the portable read-into-buffer fallback.
#if defined(__unix__) || defined(__APPLE__)
#define STJ_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define STJ_HAVE_MMAP 0
#endif

namespace stj {

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      open_(other.open_),
      mapped_(other.mapped_),
      fallback_(std::move(other.fallback_)) {
  if (!mapped_ && open_) data_ = fallback_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.open_ = false;
  other.mapped_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
  Close();
  data_ = other.data_;
  size_ = other.size_;
  open_ = other.open_;
  mapped_ = other.mapped_;
  fallback_ = std::move(other.fallback_);
  if (!mapped_ && open_) data_ = fallback_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.open_ = false;
  other.mapped_ = false;
  return *this;
}

void MappedFile::Close() {
  if (!open_) return;
#if STJ_HAVE_MMAP
  if (mapped_ && data_ != nullptr && size_ != 0) {
    // Discarded: the mapping is being torn down; there is no recovery from
    // a failed munmap and the address range is gone either way.
    (void)::munmap(const_cast<uint8_t*>(data_), size_);
  }
#endif
  fallback_.clear();
  fallback_.shrink_to_fit();
  data_ = nullptr;
  size_ = 0;
  open_ = false;
  mapped_ = false;
}

Status MappedFile::Open(const std::string& path, MappedFile* out) {
  out->Close();
#if STJ_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open file for mapping").WithFile(path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("cannot stat file for mapping").WithFile(path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    // mmap of length 0 is EINVAL; an empty mapping needs no pages.
    ::close(fd);
    out->open_ = true;
    out->mapped_ = true;
    return Status::Ok();
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping holds its own reference; the descriptor is not needed after
  // mmap either way.
  ::close(fd);
  if (addr == MAP_FAILED) {
    return Status::IoError("mmap failed").WithFile(path);
  }
  out->data_ = static_cast<const uint8_t*>(addr);
  out->size_ = size;
  out->open_ = true;
  out->mapped_ = true;
  return Status::Ok();
#else
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open file").WithFile(path);
  }
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  if (end < 0) {
    std::fclose(f);
    return Status::IoError("cannot size file").WithFile(path);
  }
  std::fseek(f, 0, SEEK_SET);
  out->fallback_.resize(static_cast<size_t>(end));
  const size_t read =
      end == 0 ? 0 : std::fread(out->fallback_.data(), 1, out->fallback_.size(), f);
  std::fclose(f);
  if (read != out->fallback_.size()) {
    out->fallback_.clear();
    return Status::IoError("short read").WithFile(path);
  }
  out->data_ = out->fallback_.data();
  out->size_ = out->fallback_.size();
  out->open_ = true;
  out->mapped_ = false;
  return Status::Ok();
#endif
}

}  // namespace stj
