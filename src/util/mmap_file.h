#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace stj {

/// Read-only memory mapping of a whole file — the storage primitive behind
/// the out-of-core shard layer (src/raster/shard_io.h).
///
/// On POSIX targets the file is mmap-ed PROT_READ/MAP_PRIVATE, so shard
/// segments are paged in lazily by first touch and paged out under memory
/// pressure — the property that lets a join run against shards far larger
/// than RAM. On targets without mmap the file is read into an owned buffer
/// instead; Data()/Size() behave identically (everything still works, it
/// just is not out-of-core), and IsMapped() tells telemetry which mode
/// served the bytes.
///
/// Platform isolation: this is the single translation unit in src/ allowed
/// to include platform headers (<sys/mman.h> & co.) — tools/project_lint.py
/// enforces the confinement (platform-confined rule), which keeps every
/// other shard-layer file portable.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { Close(); }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;

  /// Maps \p path read-only into \p out (closing any previous mapping).
  /// kNotFound / kIoError name the precise failure. An empty file maps
  /// successfully with Size() == 0.
  static Status Open(const std::string& path, MappedFile* out);

  /// First byte of the mapping; null when nothing is open. Valid for
  /// Size() bytes until Close() or destruction.
  const uint8_t* Data() const { return data_; }
  size_t Size() const { return size_; }
  bool IsOpen() const { return open_; }

  /// True when the bytes are served by a real memory mapping (lazy page-in);
  /// false when the portable read-into-buffer fallback was used.
  bool IsMapped() const { return mapped_; }

  /// Unmaps / frees; the object returns to the default-constructed state.
  void Close();

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool open_ = false;
  bool mapped_ = false;
  /// Owned storage of the non-mmap fallback (empty in mapped mode).
  std::vector<uint8_t> fallback_;
};

}  // namespace stj
