#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

#include "src/util/thread_annotations.h"

namespace stj {

/// Counter snapshot of one BoundedMpmcQueue (plain values, safe to copy
/// after the run). Depth counters are in items; wait time is accounted by
/// the callers (they know whether a wait is producer back-pressure or
/// consumer starvation), not here.
struct QueueTelemetry {
  uint64_t pushed = 0;     ///< Items accepted by TryPush.
  uint64_t popped = 0;     ///< Items handed out by TryPop/Pop.
  uint64_t max_depth = 0;  ///< High-water occupancy.
};

/// Bounded multi-producer multi-consumer queue: the stage boundary of the
/// batched join executor (topology/batch_executor.h). Capacity is a hard
/// bound — TryPush refuses instead of growing, which is what gives the
/// pipeline back-pressure: a producer whose push fails is expected to help
/// drain (pop and process an item itself) rather than block, so the stage
/// graph cannot deadlock even when every worker is a producer.
///
/// Lifecycle: producers push while the stream is open; the *last* producer
/// calls Close() (no further pushes, consumers drain the remainder and then
/// see kClosed); any worker that must tear the stream down mid-flight
/// (cancellation, worker exception) calls Abort(), which drops all queued
/// items and fails every subsequent operation — blocked consumers wake
/// immediately. Both transitions are sticky.
///
/// A mutex + condvar implementation on purpose: items are whole SoA batches
/// (hundreds of pairs each), so the queue is touched a few thousand times
/// per join and lock cost is noise; in exchange the blocking, close, and
/// abort semantics stay obviously correct under tsan.
template <typename T>
class BoundedMpmcQueue {
 public:
  enum class PopOutcome : uint8_t {
    kItem,    ///< *out holds a dequeued item.
    kClosed,  ///< Stream closed and fully drained; no item.
    kAborted, ///< Stream aborted; queued items were dropped; no item.
  };

  explicit BoundedMpmcQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  /// Moves \p item into the queue and returns true; returns false (leaving
  /// \p item intact) when the queue is full, closed, or aborted. Never
  /// blocks — the caller decides whether to help drain or give up.
  bool TryPush(T& item) STJ_EXCLUDES(mutex_) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || aborted_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      ++telemetry_.pushed;
      if (items_.size() > telemetry_.max_depth) {
        telemetry_.max_depth = items_.size();
      }
    }
    ready_.notify_one();
    return true;
  }

  /// Moves the oldest item into *out and returns true; false when the queue
  /// is empty or aborted. Never blocks.
  bool TryPop(T* out) STJ_EXCLUDES(mutex_) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (aborted_ || items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    ++telemetry_.popped;
    return true;
  }

  /// Blocks until an item is available (kItem), the stream is closed and
  /// drained (kClosed), or aborted (kAborted). The consumer-side drain loop
  /// of the executor: callers time this call themselves when they account
  /// stall time.
  PopOutcome Pop(T* out) STJ_EXCLUDES(mutex_) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this]() STJ_REQUIRES(mutex_) {
      return aborted_ || closed_ || !items_.empty();
    });
    if (aborted_) return PopOutcome::kAborted;
    if (items_.empty()) return PopOutcome::kClosed;  // closed_ holds
    *out = std::move(items_.front());
    items_.pop_front();
    ++telemetry_.popped;
    return PopOutcome::kItem;
  }

  /// Declares the producer side finished: no further TryPush succeeds, and
  /// consumers observe kClosed once the remaining items are drained. Called
  /// exactly once, by whichever worker completes the last producer unit.
  void Close() STJ_EXCLUDES(mutex_) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
#ifdef STJ_MODEL_QUEUE_CORRUPT
      // Tripwire build (tests/model, DESIGN.md §16): a deliberately broken
      // close that drops the queued remainder. The exhaustive interleaving
      // checker must fail its "no lost batch after Close" invariant on this
      // build — proving the checker can actually see a protocol bug.
      items_.clear();
#endif
    }
    ready_.notify_all();
  }

  /// Tears the stream down: drops every queued item, wakes all waiters, and
  /// makes every subsequent operation fail fast. For cancellation and
  /// worker-exception unwinding — the dropped items' work units are simply
  /// never marked done, which is exactly the loss-less PartialResult
  /// contract (parallel.h).
  void Abort() STJ_EXCLUDES(mutex_) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      aborted_ = true;
      items_.clear();
    }
    ready_.notify_all();
  }

  bool aborted() const STJ_EXCLUDES(mutex_) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return aborted_;
  }

  /// True once Close() ran (sticky; independent of remaining items).
  bool closed() const STJ_EXCLUDES(mutex_) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Current occupancy. A point-in-time reading — by the time the caller
  /// acts on it a peer may have pushed or popped; the model checker
  /// (tests/model/) uses it as the enabledness predicate of a blocking Pop,
  /// where the deterministic scheduler guarantees no such race.
  size_t size() const STJ_EXCLUDES(mutex_) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  /// Counter snapshot; call after the run (or accept a torn-but-monotone
  /// mid-run view).
  QueueTelemetry Telemetry() const STJ_EXCLUDES(mutex_) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return telemetry_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;  ///< Signalled on push / close / abort.
  std::deque<T> items_ STJ_GUARDED_BY(mutex_);
  bool closed_ STJ_GUARDED_BY(mutex_) = false;
  bool aborted_ STJ_GUARDED_BY(mutex_) = false;
  QueueTelemetry telemetry_ STJ_GUARDED_BY(mutex_);
};

}  // namespace stj
