#include "src/util/parallel_for.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <thread>
#include <vector>

namespace stj::internal {

void FirstError::RethrowIfAny() {
  std::exception_ptr error;
  uint64_t dropped = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    error = error_;
    dropped = dropped_errors_;
  }
  if (error == nullptr) return;
  if (dropped != 0) {
    std::fprintf(stderr,
                 "[parallel] %" PRIu64
                 " additional worker exception(s) dropped; rethrowing the "
                 "first\n",
                 dropped);
  }
  std::rethrow_exception(error);
}

namespace {

/// Spawns one thread per thunk, joins them all, and rethrows the first
/// exception (by completion order) on the calling thread.
void JoinAll(std::vector<std::function<void()>> thunks) {
  std::vector<std::thread> workers;
  workers.reserve(thunks.size());
  FirstError first_error;
  for (std::function<void()>& thunk : thunks) {
    workers.emplace_back([&first_error, thunk = std::move(thunk)] {
      try {
        thunk();
      } catch (...) {
        first_error.Capture();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  first_error.RethrowIfAny();
}

}  // namespace

unsigned RunChunks(unsigned num_threads, size_t total,
                   const std::function<void(unsigned, size_t, size_t)>& fn) {
  if (total == 0) return 0;
  if (num_threads <= 1) {
    fn(0u, size_t{0}, total);  // exceptions propagate directly
    return 1;
  }
  const size_t chunk = (total + num_threads - 1) / num_threads;
  std::vector<std::function<void()>> thunks;
  thunks.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    const size_t begin = std::min(total, static_cast<size_t>(t) * chunk);
    const size_t end = std::min(total, begin + chunk);
    if (begin >= end) break;
    thunks.push_back([&fn, t, begin, end] { fn(t, begin, end); });
  }
  const auto used = static_cast<unsigned>(thunks.size());
  JoinAll(std::move(thunks));
  return used;
}

unsigned RunChunks(ExecContext* ctx, size_t grain, unsigned num_threads,
                   size_t total,
                   const std::function<void(unsigned, size_t, size_t)>& fn) {
  if (ctx == nullptr) return RunChunks(num_threads, total, fn);
  if (grain == 0) grain = 1;
  // Slice each worker's chunk: one check-in buys `grain` items of progress,
  // so a trip is noticed within one slice and the completed items form a
  // prefix of the chunk.
  const auto sliced = [&fn, ctx, grain](unsigned worker, size_t begin,
                                        size_t end) {
    ExecContext::Scope scope(ctx);
    for (size_t at = begin; at < end; at += grain) {
      if (scope.CheckIn()) break;
      fn(worker, at, std::min(end, at + grain));
    }
  };
  return RunChunks(num_threads, total, sliced);
}

unsigned RunWorkers(unsigned num_threads,
                    const std::function<void(unsigned)>& fn) {
  if (num_threads <= 1) {
    fn(0u);  // exceptions propagate directly
    return 1;
  }
  std::vector<std::function<void()>> thunks;
  thunks.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    thunks.push_back([&fn, t] { fn(t); });
  }
  JoinAll(std::move(thunks));
  return num_threads;
}

}  // namespace stj::internal
