#include "src/util/parallel_for.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace stj::internal {

namespace {

/// Spawns one thread per thunk, joins them all, and rethrows the first
/// exception (by completion order) on the calling thread.
void JoinAll(std::vector<std::function<void()>> thunks) {
  std::vector<std::thread> workers;
  workers.reserve(thunks.size());
  FirstError first_error;
  for (std::function<void()>& thunk : thunks) {
    workers.emplace_back([&first_error, thunk = std::move(thunk)] {
      try {
        thunk();
      } catch (...) {
        first_error.Capture();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  first_error.RethrowIfAny();
}

}  // namespace

unsigned RunChunks(unsigned num_threads, size_t total,
                   const std::function<void(unsigned, size_t, size_t)>& fn) {
  if (total == 0) return 0;
  if (num_threads <= 1) {
    fn(0u, size_t{0}, total);  // exceptions propagate directly
    return 1;
  }
  const size_t chunk = (total + num_threads - 1) / num_threads;
  std::vector<std::function<void()>> thunks;
  thunks.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    const size_t begin = std::min(total, static_cast<size_t>(t) * chunk);
    const size_t end = std::min(total, begin + chunk);
    if (begin >= end) break;
    thunks.push_back([&fn, t, begin, end] { fn(t, begin, end); });
  }
  const auto used = static_cast<unsigned>(thunks.size());
  JoinAll(std::move(thunks));
  return used;
}

unsigned RunWorkers(unsigned num_threads,
                    const std::function<void(unsigned)>& fn) {
  if (num_threads <= 1) {
    fn(0u);  // exceptions propagate directly
    return 1;
  }
  std::vector<std::function<void()>> thunks;
  thunks.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    thunks.push_back([&fn, t] { fn(t); });
  }
  JoinAll(std::move(thunks));
  return num_threads;
}

}  // namespace stj::internal
