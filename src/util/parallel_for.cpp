#include "src/util/parallel_for.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace stj::internal {

namespace {

/// Spawns one thread per thunk, joins them all, and rethrows the first
/// exception (by completion order) on the calling thread.
void JoinAll(std::vector<std::function<void()>> thunks) {
  std::vector<std::thread> workers;
  workers.reserve(thunks.size());
  std::mutex error_mutex;
  std::exception_ptr first_error;
  for (std::function<void()>& thunk : thunks) {
    workers.emplace_back([&error_mutex, &first_error,
                          thunk = std::move(thunk)] {
      try {
        thunk();
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error == nullptr) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace

unsigned RunChunks(unsigned num_threads, size_t total,
                   const std::function<void(unsigned, size_t, size_t)>& fn) {
  if (total == 0) return 0;
  if (num_threads <= 1) {
    fn(0u, size_t{0}, total);  // exceptions propagate directly
    return 1;
  }
  const size_t chunk = (total + num_threads - 1) / num_threads;
  std::vector<std::function<void()>> thunks;
  thunks.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    const size_t begin = std::min(total, static_cast<size_t>(t) * chunk);
    const size_t end = std::min(total, begin + chunk);
    if (begin >= end) break;
    thunks.push_back([&fn, t, begin, end] { fn(t, begin, end); });
  }
  const auto used = static_cast<unsigned>(thunks.size());
  JoinAll(std::move(thunks));
  return used;
}

unsigned RunWorkers(unsigned num_threads,
                    const std::function<void(unsigned)>& fn) {
  if (num_threads <= 1) {
    fn(0u);  // exceptions propagate directly
    return 1;
  }
  std::vector<std::function<void()>> thunks;
  thunks.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    thunks.push_back([&fn, t] { fn(t); });
  }
  JoinAll(std::move(thunks));
  return num_threads;
}

}  // namespace stj::internal
