#pragma once

#include <cstddef>
#include <functional>

namespace stj::internal {

/// Splits [0, total) into up to \p num_threads contiguous chunks and runs
/// fn(worker_index, begin, end) on each, in worker threads (inline on the
/// calling thread when a single chunk suffices). Returns the number of
/// workers that actually ran — always <= num_threads, 0 when total == 0 —
/// so callers can merge exactly the per-worker state that was written.
/// Worker w always owns the w-th chunk in ascending range order, so
/// concatenating per-worker output by worker index reproduces the order a
/// single-threaded pass would have produced.
///
/// Exception safety: if workers throw, every thread is still joined and the
/// first exception (by completion order) is rethrown on the calling thread;
/// the process never std::terminates because of a throwing worker.
unsigned RunChunks(unsigned num_threads, size_t total,
                   const std::function<void(unsigned, size_t, size_t)>& fn);

/// Runs fn(worker_index) on \p num_threads workers (inline on the calling
/// thread when num_threads <= 1) and returns the number of workers spawned.
/// The building block for dynamic scheduling: callers pair it with a shared
/// atomic cursor so idle workers steal the next block instead of waiting on
/// a static partition. Same exception semantics as RunChunks.
unsigned RunWorkers(unsigned num_threads,
                    const std::function<void(unsigned)>& fn);

}  // namespace stj::internal
