#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>

#include "src/util/exec_context.h"
#include "src/util/thread_annotations.h"

namespace stj::internal {

/// Collects the first exception thrown by any worker of a parallel region so
/// it can be rethrown on the calling thread after all workers joined; later
/// exceptions are counted rather than silently discarded, and RethrowIfAny
/// reports the drop count before rethrowing. The mutex/flag discipline is
/// expressed with thread-safety annotations, so a clang -Wthread-safety
/// build statically rejects unlocked access to the captured exception.
class FirstError {
 public:
  /// Records std::current_exception() if no earlier worker already did;
  /// otherwise counts the exception as dropped. Called from worker catch
  /// blocks; must not throw.
  void Capture() noexcept STJ_EXCLUDES(mutex_) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (error_ == nullptr) {
      error_ = std::current_exception();
    } else {
      ++dropped_errors_;
    }
  }

  /// Rethrows the captured exception, if any. When later workers also threw,
  /// logs how many of their exceptions were dropped (to stderr — the one
  /// rethrown exception is the caller's to handle, the drop count would
  /// otherwise vanish without a trace). Call only after every worker that
  /// might Capture() has been joined.
  void RethrowIfAny() STJ_EXCLUDES(mutex_);

  /// Exceptions Capture() discarded because an earlier one was already held.
  uint64_t dropped_errors() const STJ_EXCLUDES(mutex_) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return dropped_errors_;
  }

 private:
  mutable std::mutex mutex_;
  std::exception_ptr error_ STJ_GUARDED_BY(mutex_);
  uint64_t dropped_errors_ STJ_GUARDED_BY(mutex_) = 0;
};

/// Splits [0, total) into up to \p num_threads contiguous chunks and runs
/// fn(worker_index, begin, end) on each, in worker threads (inline on the
/// calling thread when a single chunk suffices). Returns the number of
/// workers that actually ran — always <= num_threads, 0 when total == 0 —
/// so callers can merge exactly the per-worker state that was written.
/// Worker w always owns the w-th chunk in ascending range order, so
/// concatenating per-worker output by worker index reproduces the order a
/// single-threaded pass would have produced.
///
/// Exception safety: if workers throw, every thread is still joined and the
/// first exception (by completion order) is rethrown on the calling thread;
/// the process never std::terminates because of a throwing worker.
unsigned RunChunks(unsigned num_threads, size_t total,
                   const std::function<void(unsigned, size_t, size_t)>& fn);

/// Cancellable RunChunks: each worker's chunk is processed in slices of at
/// most \p grain items with an ExecContext check-in between slices, so a
/// deadline, cancel, or budget trip stops the fan-out at the next slice
/// boundary. Cancellation is loss-less per slice: a stopping worker has
/// completed a prefix of its chunk and abandoned the rest untouched —
/// callers that need to know *which* items ran must record that inside fn.
/// ctx == nullptr degrades to plain RunChunks (identical behaviour and
/// cost). grain == 0 is treated as 1. Returns the worker count like
/// RunChunks; consult ctx->StopRequested() to learn whether the pass was
/// cut short.
unsigned RunChunks(ExecContext* ctx, size_t grain, unsigned num_threads,
                   size_t total,
                   const std::function<void(unsigned, size_t, size_t)>& fn);

/// Runs fn(worker_index) on \p num_threads workers (inline on the calling
/// thread when num_threads <= 1) and returns the number of workers spawned.
/// The building block for dynamic scheduling: callers pair it with a shared
/// atomic cursor so idle workers steal the next block instead of waiting on
/// a static partition. Same exception semantics as RunChunks.
unsigned RunWorkers(unsigned num_threads,
                    const std::function<void(unsigned)>& fn);

}  // namespace stj::internal
