#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iterator>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "src/util/check.h"
#include "src/util/exec_context.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace stj {

/// Counter snapshot of one PinnedByteLruCache (plain values, safe to copy
/// after the run).
struct PinnedCacheStats {
  uint64_t hits = 0;       ///< Get served a resident entry.
  uint64_t loads = 0;      ///< Get ran the loader (miss).
  uint64_t evictions = 0;  ///< Entries dropped to respect the budget.
  uint64_t peak_bytes = 0; ///< High-water resident bytes.
};

/// Byte-budgeted LRU cache with a pin table and ExecContext charge
/// accounting — the resident-shard cache of the tile-pair scheduler
/// (topology/shard_scheduler.cpp), extracted so the pin/evict/charge
/// protocol is one annotated, model-checkable component instead of a
/// private class baked into the scheduler loop.
///
/// Protocol (the invariants tests/model/cache_model_test.cpp exhaustively
/// verifies over all small-state interleavings):
///  - *Pinned entries are never evicted.* Pin(key) marks a key in use
///    (counted, so independent pinners compose); eviction walks the LRU
///    tail skipping pinned keys. A budget smaller than the pinned set
///    degrades to holding exactly the pinned entries — over budget but
///    correct, matching the scheduler's "the running task's two shards
///    always fit" contract.
///  - *Charges balance.* Every resident entry's bytes are charged to the
///    ExecContext budget exactly once at load and released exactly once —
///    on eviction or in the destructor. A failed TryCharge abandons the
///    load (nothing resident, nothing charged) and surfaces the context's
///    Status, so a budget trip unwinds cooperatively.
///  - *Admission.* The entry being loaded is always admitted once charged:
///    cold entries are evicted first until it fits or nothing evictable
///    remains. bytes() can therefore exceed budget_bytes() only by live
///    pins plus the newest entry — never by forgotten residents.
///
/// Thread safety: every operation takes mutex_; the pin table, LRU list,
/// index, and byte accounting are all STJ_GUARDED_BY it, so a clang
/// -Wthread-safety build statically rejects unlocked access. The loader
/// runs *under the lock* — concurrent misses serialize. That is the right
/// trade for the scheduler today (tasks load two shards per task, load
/// cost dwarfs lock cost) and keeps the protocol small enough to
/// model-check exhaustively; a resident service wanting parallel misses
/// would split the lock, re-proving the protocol in tests/model/ first.
///
/// Pointer stability: Get returns a pointer into the entry list; it stays
/// valid until the entry is evicted. Callers that use the value beyond the
/// Get call must hold a pin across the use (PinGuard), which is exactly
/// what makes eviction of in-use entries impossible rather than unlikely.
template <typename Value>
class PinnedByteLruCache {
 public:
  /// Fills *value and *bytes (the resident footprint charged to the budget
  /// and the ExecContext). A non-ok Status aborts the load; nothing is
  /// cached or charged.
  using Loader = std::function<Status(Value* value, size_t* bytes)>;

  /// \p exec may be null (no charge accounting). The cache does not own it;
  /// it must outlive the cache.
  PinnedByteLruCache(size_t budget_bytes, ExecContext* exec)
      : budget_(budget_bytes), exec_(exec) {}

  PinnedByteLruCache(const PinnedByteLruCache&) = delete;
  PinnedByteLruCache& operator=(const PinnedByteLruCache&) = delete;

  ~PinnedByteLruCache() {
    // Balance: everything still resident was charged exactly once.
    if (exec_ != nullptr) exec_->Release(bytes_);
  }

  /// Returns the resident value for \p key, running \p load on a miss and
  /// evicting cold (unpinned) entries to make room. Null on failure with
  /// the cause in *status: the loader's error, or the ExecContext budget
  /// trip when the charge did not fit.
  const Value* Get(uint64_t key, const Loader& load, Status* status)
      STJ_EXCLUDES(mutex_) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.hits;
      return &it->second->value;
    }

    Entry entry;
    entry.key = key;
    Status st = load(&entry.value, &entry.bytes);
    if (!st.ok()) {
      *status = st;
      return nullptr;
    }
    ++stats_.loads;

    // Evict cold entries until the newcomer fits (pinned entries and the
    // newcomer itself are exempt from the discipline).
    while (bytes_ + entry.bytes > budget_ && EvictOne()) {
    }
    if (exec_ != nullptr && !exec_->TryCharge(entry.bytes)) {
      // The context tripped kMemoryExceeded; abandon the load — nothing
      // resident, nothing charged — and unwind cooperatively.
      *status = exec_->ToStatus();
      return nullptr;
    }
    bytes_ += entry.bytes;
    if (bytes_ > stats_.peak_bytes) stats_.peak_bytes = bytes_;
    lru_.push_front(std::move(entry));
    index_[key] = lru_.begin();
    return &lru_.front().value;
  }

  /// Marks \p key in use: it will not be evicted until a matching Unpin.
  /// Counted — independent pinners compose. The key need not be resident
  /// yet (the scheduler pins both task shards before loading either).
  void Pin(uint64_t key) STJ_EXCLUDES(mutex_) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++pins_[key];
  }

  /// Reverses one Pin. Unpinning a never-pinned key is a caller bug
  /// (STJ_CHECK): a miscounted pin table is exactly the kind of quiet
  /// protocol rot the model checker exists to keep out.
  void Unpin(uint64_t key) STJ_EXCLUDES(mutex_) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = pins_.find(key);
    STJ_CHECK_MSG(it != pins_.end() && it->second > 0,
                  "Unpin without a matching Pin");
    if (--it->second == 0) pins_.erase(it);
  }

  /// RAII pin over one key.
  class PinGuard {
   public:
    PinGuard(PinnedByteLruCache* cache, uint64_t key)
        : cache_(cache), key_(key) {
      cache_->Pin(key_);
    }
    ~PinGuard() { cache_->Unpin(key_); }
    PinGuard(const PinGuard&) = delete;
    PinGuard& operator=(const PinGuard&) = delete;

   private:
    PinnedByteLruCache* cache_;
    uint64_t key_;
  };

  bool Contains(uint64_t key) const STJ_EXCLUDES(mutex_) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return index_.count(key) != 0;
  }

  bool IsPinned(uint64_t key) const STJ_EXCLUDES(mutex_) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return pins_.count(key) != 0;
  }

  size_t bytes() const STJ_EXCLUDES(mutex_) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return bytes_;
  }

  size_t size() const STJ_EXCLUDES(mutex_) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return index_.size();
  }

  size_t budget_bytes() const { return budget_; }

  PinnedCacheStats Stats() const STJ_EXCLUDES(mutex_) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  /// Aborts (STJ_CHECK) on structural inconsistency: the index and the LRU
  /// list must describe the same entry set, the byte accounting must equal
  /// the sum over resident entries, and every pin count must be positive.
  /// O(resident + pins); the model checker calls it after every step.
  void ValidateInvariants() const STJ_EXCLUDES(mutex_) {
    const std::lock_guard<std::mutex> lock(mutex_);
    size_t sum = 0;
    size_t count = 0;
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      auto idx = index_.find(it->key);
      STJ_CHECK_MSG(idx != index_.end() && idx->second == it,
                    "LRU entry missing from or misbound in the index");
      sum += it->bytes;
      ++count;
    }
    STJ_CHECK_MSG(count == index_.size(),
                  "index holds keys absent from the LRU list");
    STJ_CHECK_MSG(sum == bytes_, "resident byte accounting out of sync");
    for (const auto& pin : pins_) {
      // Zero counts are erased on the way down; one surviving means Unpin
      // bookkeeping rotted.
      STJ_CHECK_MSG(pin.second > 0, "pin table holds a zero count");
    }
  }

 private:
  struct Entry {
    uint64_t key = 0;
    size_t bytes = 0;
    Value value;
  };

  /// Drops the least-recently-used unpinned entry, releasing its charge;
  /// false when every resident entry is pinned (or the cache is empty).
  bool EvictOne() STJ_REQUIRES(mutex_) {
    if (lru_.empty()) return false;
    for (auto it = std::prev(lru_.end());; --it) {
#ifdef STJ_MODEL_CACHE_CORRUPT
      // Tripwire build (tests/model, DESIGN.md §16): deliberately ignore
      // the pin table. The model checker must fail its "pinned entries are
      // never evicted" invariant on this build.
      const bool pinned = false;
#else
      const bool pinned = pins_.count(it->key) != 0;
#endif
      if (!pinned) {
        bytes_ -= it->bytes;
        if (exec_ != nullptr) exec_->Release(it->bytes);
        index_.erase(it->key);
        lru_.erase(it);
        ++stats_.evictions;
        return true;
      }
      if (it == lru_.begin()) return false;
    }
  }

  const size_t budget_;
  ExecContext* const exec_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_ STJ_GUARDED_BY(mutex_);  ///< Front = most recent.
  std::unordered_map<uint64_t, typename std::list<Entry>::iterator> index_
      STJ_GUARDED_BY(mutex_);
  /// The pin table: key -> live pin count (erased at zero, so presence
  /// means pinned).
  std::unordered_map<uint64_t, uint32_t> pins_ STJ_GUARDED_BY(mutex_);
  size_t bytes_ STJ_GUARDED_BY(mutex_) = 0;
  PinnedCacheStats stats_ STJ_GUARDED_BY(mutex_);
};

}  // namespace stj
