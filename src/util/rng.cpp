#include "src/util/rng.h"

#include <cmath>

namespace stj {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::LogUniform(double lo, double hi) {
  return std::exp(Uniform(std::log(lo), std::log(hi)));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

}  // namespace stj
