#pragma once

#include <cstdint>

namespace stj {

/// Deterministic xoshiro256** pseudo-random generator.
///
/// All data generators in this project take an explicit Rng so that datasets,
/// workloads, and benchmarks are reproducible from a single seed. The engine
/// is xoshiro256** 1.0 (Blackman & Vigna), seeded through splitmix64.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from \p seed via splitmix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Returns the next raw 64-bit value.
  uint64_t NextU64();

  /// Returns a uniform integer in [0, bound). \p bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns a uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns a uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a value log-uniformly distributed in [lo, hi); lo must be > 0.
  double LogUniform(double lo, double hi);

  /// Returns a standard normal variate (Marsaglia polar method).
  double Normal();

  /// Returns true with probability \p p.
  bool Bernoulli(double p);

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace stj
