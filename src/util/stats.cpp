#include "src/util/stats.h"

#include <algorithm>
#include <cstdio>

namespace stj {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++count_;
}

double RunningStats::Min() const { return count_ ? min_ : 0.0; }
double RunningStats::Max() const { return count_ ? max_ : 0.0; }
double RunningStats::Mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

std::vector<std::pair<uint64_t, uint64_t>> EquiCountBuckets(
    std::vector<uint64_t> values, size_t buckets) {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  if (values.empty() || buckets == 0) return out;
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  out.reserve(buckets);
  size_t begin = 0;
  for (size_t b = 0; b < buckets && begin < n; ++b) {
    size_t end = (b + 1 == buckets) ? n : (n * (b + 1)) / buckets;
    if (end <= begin) end = begin + 1;
    // Extend so equal values never straddle a bucket boundary.
    while (end < n && values[end] == values[end - 1]) ++end;
    out.emplace_back(values[begin], values[end - 1]);
    begin = end;
  }
  return out;
}

std::string FormatWithCommas(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const size_t len = digits.size();
  for (size_t i = 0; i < len; ++i) {
    if (i != 0 && (len - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string FormatApproxCount(uint64_t n) {
  char buf[32];
  const double v = static_cast<double>(n);
  if (n >= 1000000000ull) {
    std::snprintf(buf, sizeof buf, "%.2fB", v / 1e9);
  } else if (n >= 1000000ull) {
    std::snprintf(buf, sizeof buf, "%.2fM", v / 1e6);
  } else if (n >= 1000ull) {
    std::snprintf(buf, sizeof buf, "%.1fK", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(n));
  }
  return buf;
}

}  // namespace stj
