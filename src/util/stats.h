#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace stj {

/// Streaming summary statistics (count/min/max/mean) for benchmark reporting.
class RunningStats {
 public:
  /// Incorporates one observation.
  void Add(double x);

  size_t Count() const { return count_; }
  double Min() const;
  double Max() const;
  double Mean() const;
  double Sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Splits \p values (copied, then sorted) into \p buckets equi-count groups and
/// returns the bucket boundaries as (lo, hi) inclusive ranges, mirroring the
/// complexity-level grouping of Table 4 in the paper.
std::vector<std::pair<uint64_t, uint64_t>> EquiCountBuckets(
    std::vector<uint64_t> values, size_t buckets);

/// Formats \p n with thousands separators for table output, e.g. 1234567 ->
/// "1,234,567".
std::string FormatWithCommas(uint64_t n);

/// Formats a human-readable approximate count, e.g. 63312 -> "63.3K",
/// 5182340 -> "5.18M", matching the paper's table style.
std::string FormatApproxCount(uint64_t n);

}  // namespace stj
