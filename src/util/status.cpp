#include "src/util/status.h"

namespace stj {

const char* ToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kIoError: return "IO_ERROR";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
  }
  return "?";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = stj::ToString(code_);
  out += ": ";
  if (!file_.empty()) {
    out += file_;
    if (line_ != 0) {
      out += ':';
      out += std::to_string(line_);
    }
    if (offset_.has_value()) {
      out += " @byte ";
      out += std::to_string(*offset_);
    }
    out += ": ";
  } else if (offset_.has_value()) {
    out += "@byte ";
    out += std::to_string(*offset_);
    out += ": ";
  }
  out += message_;
  return out;
}

}  // namespace stj
