#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace stj {

/// Canonical error categories for fallible library operations. The set is
/// deliberately small: callers branch on the category (retry? reject input?
/// report corruption?) and read the message for detail.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,  ///< Malformed input content (parse/validation errors).
  kNotFound,         ///< Missing file or unknown name.
  kDataLoss,         ///< Corruption or truncation detected in stored data.
  kIoError,          ///< OS-level read/write failure.
  kFailedPrecondition,  ///< Operation not valid in the current state.
  kInternal,            ///< Invariant violation; a bug, not bad input.
  kCancelled,           ///< Query stopped by a cooperative cancel request.
  kDeadlineExceeded,    ///< Query stopped by its deadline (exec_context.h).
  kResourceExhausted,   ///< Query stopped by a resource budget (memory).
};

const char* ToString(StatusCode code);

/// Error descriptor: a category, a human-readable message, and optional
/// source context (which file, which line of it, which byte offset) so that
/// ingestion errors name the exact spot that failed. An ok() Status carries
/// no message and is cheap to copy.
class [[nodiscard]] Status {
 public:
  /// Ok status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Attaches the path of the file the error refers to. Chainable.
  Status& WithFile(std::string file) {
    file_ = std::move(file);
    return *this;
  }
  /// Attaches a 1-based line number within file(). Chainable.
  Status& WithLine(uint64_t line) {
    line_ = line;
    return *this;
  }
  /// Attaches a 0-based byte offset (within the line for text formats,
  /// within the file for binary formats). Chainable.
  Status& WithOffset(uint64_t offset) {
    offset_ = offset;
    return *this;
  }

  const std::string& file() const { return file_; }
  bool has_line() const { return line_ != 0; }
  uint64_t line() const { return line_; }
  bool has_offset() const { return offset_.has_value(); }
  uint64_t offset() const { return offset_.value_or(0); }

  /// "DATA_LOSS: things.april:1234: record checksum mismatch" — category,
  /// then file[:line][ @byte N], then the message.
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  std::string file_;
  uint64_t line_ = 0;  ///< 0 = no line context.
  std::optional<uint64_t> offset_;
};

/// A value or the Status explaining why there is none. The accessors mirror
/// std::optional (has_value / operator* / operator->) so existing
/// optional-based call sites keep working after a migration; status() adds
/// the error detail optional could not carry.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    // A Result must be a value or an error, never an "ok but empty".
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from an ok Status");
    }
  }

  bool ok() const { return value_.has_value(); }
  bool has_value() const { return value_.has_value(); }
  explicit operator bool() const { return value_.has_value(); }

  /// The error; Ok() when a value is present.
  const Status& status() const { return status_; }

  T& value() { return value_.value(); }
  const T& value() const { return value_.value(); }
  T& operator*() { return *value_; }
  const T& operator*() const { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace stj
