#pragma once

/// Clang thread-safety-analysis attributes (DESIGN.md §11).
///
/// Under clang these expand to the static-analysis attributes checked by
/// -Wthread-safety (which CMake promotes to an error for clang builds, see
/// the stj_warnings target); under other compilers they vanish. The macros
/// carry the STJ_ prefix so the no-op fallback cannot collide with other
/// libraries' definitions.
///
/// Annotation policy (DESIGN.md §16):
///  - Every mutex-protected member is STJ_GUARDED_BY(its mutex); accessor
///    methods that expect the caller to hold the lock are STJ_REQUIRES.
///  - std::atomic declarations carry no capability (their safety is in the
///    type), but every one must be documented through STJ_ATOMIC_DOC on the
///    declaration line or the line directly above it: one sentence naming
///    the sharing protocol (who writes, who reads, which memory order and
///    why it suffices). tools/stj_analyzer.py enforces presence; the macro
///    itself rejects an empty rationale at compile time.
///  - Mutexes that can nest declare their order with STJ_ACQUIRED_AFTER /
///    STJ_ACQUIRED_BEFORE; tools/stj_analyzer.py derives the observed
///    lock-order graph from nested guard scopes and fails on any cycle
///    between observed and declared edges.
///  - Classes that are intentionally single-threaded (Pipeline and its
///    PreparedCaches, the DecodedAprilCache: one instance per worker)
///    declare STJ_THREAD_CONFINED("...") in their class body naming the
///    confinement that replaces the lock annotations they do not need.

#if defined(__clang__) && defined(__has_attribute)
#define STJ_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define STJ_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability (mutexes, custom locks).
#define STJ_CAPABILITY(x) STJ_THREAD_ANNOTATION(capability(x))

/// Marks a RAII lock holder (acquires in ctor, releases in dtor).
#define STJ_SCOPED_CAPABILITY STJ_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding \p x.
#define STJ_GUARDED_BY(x) STJ_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose pointee is protected by \p x.
#define STJ_PT_GUARDED_BY(x) STJ_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and exit).
#define STJ_REQUIRES(...) \
  STJ_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability; caller must not already hold it.
#define STJ_ACQUIRE(...) STJ_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability; caller must hold it.
#define STJ_RELEASE(...) STJ_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function must be called without the listed capabilities held.
#define STJ_EXCLUDES(...) STJ_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Return value is a reference to data guarded by the capability.
#define STJ_RETURN_CAPABILITY(x) STJ_THREAD_ANNOTATION(lock_returned(x))

/// Declares lock order: this mutex is acquired after / before the listed
/// ones. Clang checks the declared order; tools/stj_analyzer.py additionally
/// cross-checks it against the order observed in nested guard scopes.
#define STJ_ACQUIRED_AFTER(...) STJ_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define STJ_ACQUIRED_BEFORE(...) \
  STJ_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/// Runtime assertion that the calling thread holds the capability (for code
/// reached both with and without the lock where the analysis needs help).
#define STJ_ASSERT_CAPABILITY(x) STJ_THREAD_ANNOTATION(assert_capability(x))

/// Escape hatch: disables analysis for one function. Use only with a comment
/// explaining why the analysis cannot see the safety argument.
#define STJ_NO_THREAD_SAFETY_ANALYSIS \
  STJ_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Documents one lock-free (atomic) field or variable: who writes it, who
/// reads it, and why the chosen memory order suffices. Placed on the
/// declaration line or the line directly above it; tools/stj_analyzer.py
/// fails any `std::atomic` declaration in src/ that lacks one. The
/// static_assert makes the convention *checked* rather than decorative —
/// an empty rationale ("") does not compile, so every annotation carries
/// an argument a reviewer can dispute.
#define STJ_ATOMIC_DOC(reason)                               \
  static_assert(sizeof(reason) > 1,                          \
                "STJ_ATOMIC_DOC needs a non-empty rationale " \
                "(writers, readers, memory order)")

/// Documents a deliberately unsynchronized class whose safety argument is
/// thread confinement (one instance per worker, never shared). Placed in
/// the class body; the checked-rationale discipline mirrors STJ_ATOMIC_DOC
/// so "it just has no locks" cannot pass review silently.
#define STJ_THREAD_CONFINED(reason)                                 \
  static_assert(sizeof(reason) > 1,                                 \
                "STJ_THREAD_CONFINED needs a non-empty confinement " \
                "rationale (which thread owns an instance, and why)")
