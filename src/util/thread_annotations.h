#pragma once

/// Clang thread-safety-analysis attributes (DESIGN.md §11).
///
/// Under clang these expand to the static-analysis attributes checked by
/// -Wthread-safety (which CMake promotes to an error for clang builds, see
/// the stj_warnings target); under other compilers they vanish. The macros
/// carry the STJ_ prefix so the no-op fallback cannot collide with other
/// libraries' definitions.
///
/// Annotation policy:
///  - Every mutex-protected member is STJ_GUARDED_BY(its mutex); accessor
///    methods that expect the caller to hold the lock are STJ_REQUIRES.
///  - std::atomic members need no annotation (their safety is in the type);
///    the work-stealing loops in topology/parallel.cpp and join/mbr_join.cpp
///    share only atomics and disjointly-indexed per-worker slots.
///  - Classes that are intentionally single-threaded (Pipeline and its
///    PreparedCaches: one instance per worker) say so in their class comment
///    instead of carrying lock annotations they do not need.

#if defined(__clang__) && defined(__has_attribute)
#define STJ_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define STJ_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability (mutexes, custom locks).
#define STJ_CAPABILITY(x) STJ_THREAD_ANNOTATION(capability(x))

/// Marks a RAII lock holder (acquires in ctor, releases in dtor).
#define STJ_SCOPED_CAPABILITY STJ_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding \p x.
#define STJ_GUARDED_BY(x) STJ_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose pointee is protected by \p x.
#define STJ_PT_GUARDED_BY(x) STJ_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and exit).
#define STJ_REQUIRES(...) \
  STJ_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability; caller must not already hold it.
#define STJ_ACQUIRE(...) STJ_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability; caller must hold it.
#define STJ_RELEASE(...) STJ_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function must be called without the listed capabilities held.
#define STJ_EXCLUDES(...) STJ_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Return value is a reference to data guarded by the capability.
#define STJ_RETURN_CAPABILITY(x) STJ_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables analysis for one function. Use only with a comment
/// explaining why the analysis cannot see the safety argument.
#define STJ_NO_THREAD_SAFETY_ANALYSIS \
  STJ_THREAD_ANNOTATION(no_thread_safety_analysis)
