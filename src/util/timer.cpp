#include "src/util/timer.h"

namespace stj {

Timer::Timer() : start_(std::chrono::steady_clock::now()) {}

void Timer::Reset() { start_ = std::chrono::steady_clock::now(); }

double Timer::ElapsedSeconds() const {
  return static_cast<double>(ElapsedNanos()) * 1e-9;
}

uint64_t Timer::ElapsedNanos() const {
  const auto now = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - start_).count());
}

void StageTimer::Start() {
  if (!running_) {
    start_ = std::chrono::steady_clock::now();
    running_ = true;
  }
}

void StageTimer::Stop() {
  if (running_) {
    const auto now = std::chrono::steady_clock::now();
    total_nanos_ += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - start_).count());
    running_ = false;
  }
}

double StageTimer::TotalSeconds() const { return static_cast<double>(total_nanos_) * 1e-9; }

void StageTimer::Reset() {
  total_nanos_ = 0;
  running_ = false;
}

}  // namespace stj
