#pragma once

#include <chrono>
#include <cstdint>

namespace stj {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses.
///
/// The paper reports throughput (pairs/second) per pipeline stage; Timer and
/// StageTimer below provide the two measurement styles the harnesses need:
/// a plain stopwatch and a resumable accumulator.
class Timer {
 public:
  Timer();

  /// Restarts the stopwatch.
  void Reset();

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const;

  /// Nanoseconds elapsed since construction or the last Reset().
  uint64_t ElapsedNanos() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Accumulating timer that can be paused and resumed, for attributing time to
/// pipeline stages (e.g. intermediate filter vs refinement in Fig. 8(b)).
class StageTimer {
 public:
  /// Starts (or resumes) accumulation.
  void Start();

  /// Stops accumulation and adds the elapsed slice to the total.
  void Stop();

  /// Total accumulated seconds across all Start/Stop slices.
  double TotalSeconds() const;

  /// Clears the accumulated total.
  void Reset();

 private:
  std::chrono::steady_clock::time_point start_{};
  uint64_t total_nanos_ = 0;
  bool running_ = false;
};

}  // namespace stj
