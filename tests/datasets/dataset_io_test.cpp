#include "src/datasets/dataset_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace stj {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(DatasetIo, RoundTripPreservesGeometry) {
  const Dataset original = BuildDataset("TW", 0.003, 11);
  ASSERT_FALSE(original.objects.empty());
  const std::string path = TempPath("tw_roundtrip.wkt");
  ASSERT_TRUE(SaveWktDataset(path, original));

  Dataset loaded;
  ASSERT_TRUE(LoadWktDataset(path, "TW", &loaded));
  ASSERT_EQ(loaded.objects.size(), original.objects.size());
  for (size_t i = 0; i < original.objects.size(); ++i) {
    EXPECT_EQ(loaded.objects[i].geometry.Outer(),
              original.objects[i].geometry.Outer())
        << i;
    EXPECT_EQ(loaded.objects[i].geometry.Holes().size(),
              original.objects[i].geometry.Holes().size())
        << i;
    EXPECT_EQ(loaded.objects[i].id, static_cast<uint32_t>(i));
  }
  std::remove(path.c_str());
}

TEST(DatasetIo, SkipsCommentsAndBlankLines) {
  const std::string path = TempPath("commented.wkt");
  {
    std::ofstream out(path);
    out << "# header comment\n\n"
        << "POLYGON ((0 0, 1 0, 1 1, 0 1))\n"
        << "\n# another comment\n"
        << "POLYGON ((2 2, 3 2, 3 3))\n";
  }
  Dataset loaded;
  ASSERT_TRUE(LoadWktDataset(path, "test", &loaded));
  EXPECT_EQ(loaded.objects.size(), 2u);
  std::remove(path.c_str());
}

TEST(DatasetIo, FailsOnMalformedLine) {
  const std::string path = TempPath("malformed.wkt");
  {
    std::ofstream out(path);
    out << "POLYGON ((0 0, 1 0, 1 1))\n"
        << "POLYGON ((not a polygon))\n";
  }
  Dataset loaded;
  EXPECT_FALSE(LoadWktDataset(path, "test", &loaded));
  EXPECT_TRUE(loaded.objects.empty());
  std::remove(path.c_str());
}

TEST(DatasetIo, FailsOnMissingFile) {
  Dataset loaded;
  EXPECT_FALSE(LoadWktDataset(TempPath("nope.wkt"), "test", &loaded));
}

TEST(DatasetIo, StrictStatusNamesLineAndOffset) {
  const std::string path = TempPath("strict_detail.wkt");
  {
    std::ofstream out(path);
    out << "# comment\n"
        << "POLYGON ((0 0, 1 0, 1 1))\n"
        << "POLYGON ((0 0, 1 oops, 1 1))\n";
  }
  Dataset loaded;
  const Status status =
      LoadWktDataset(path, "test", LoadOptions{}, &loaded);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(loaded.objects.empty());
  EXPECT_EQ(status.file(), path);
  EXPECT_EQ(status.line(), 3u);
  EXPECT_TRUE(status.has_offset());
  std::remove(path.c_str());
}

TEST(DatasetIo, PermissiveTriagesEveryLine) {
  // Two clean lines, one repairable (duplicate consecutive vertex), one
  // unreparable zero-area zig-zag, one parse error: permissive mode must
  // land each in exactly one bucket and load accepted + repaired objects.
  const std::string path = TempPath("permissive_counts.wkt");
  {
    std::ofstream out(path);
    out << "POLYGON ((0 0, 4 0, 4 4, 0 4))\n"
        << "POLYGON ((10 10, 12 10, 12 10, 12 12))\n"  // repairable
        << "POLYGON ((5 5, 6 6, 5 5, 6 6))\n"          // zero area: skip
        << "POLYGON ((not a polygon))\n"               // parse error: skip
        << "POLYGON ((20 0, 21 0, 21 1, 20 1))\n";
  }
  Dataset loaded;
  LoadOptions options;
  options.mode = LoadMode::kPermissive;
  LoadReport report;
  ASSERT_TRUE(
      LoadWktDataset(path, "test", options, &loaded, &report).ok());
  EXPECT_EQ(report.lines, 5u);
  EXPECT_EQ(report.accepted, 2u);
  EXPECT_EQ(report.repaired, 1u);
  EXPECT_EQ(report.skipped, 2u);
  EXPECT_EQ(report.issues_dropped, 0u);
  ASSERT_EQ(report.issues.size(), 3u);
  EXPECT_EQ(report.issues[0].line, 2u);
  EXPECT_EQ(report.issues[0].action, LineIssue::Action::kRepaired);
  EXPECT_EQ(report.issues[1].line, 3u);
  EXPECT_EQ(report.issues[1].action, LineIssue::Action::kSkipped);
  EXPECT_EQ(report.issues[2].line, 4u);
  EXPECT_EQ(report.issues[2].action, LineIssue::Action::kSkipped);

  ASSERT_EQ(loaded.objects.size(), 3u);
  // The repaired polygon keeps its place in file order, ids are dense.
  EXPECT_EQ(loaded.objects[1].geometry.Outer().Size(), 3u);
  for (size_t i = 0; i < loaded.objects.size(); ++i) {
    EXPECT_EQ(loaded.objects[i].id, static_cast<uint32_t>(i));
  }
  std::remove(path.c_str());
}

TEST(DatasetIo, PermissiveStillFailsOnIoError) {
  Dataset loaded;
  LoadOptions options;
  options.mode = LoadMode::kPermissive;
  const Status status =
      LoadWktDataset(TempPath("still_nope.wkt"), "test", options, &loaded);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace stj
