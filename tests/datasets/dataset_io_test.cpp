#include "src/datasets/dataset_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace stj {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(DatasetIo, RoundTripPreservesGeometry) {
  const Dataset original = BuildDataset("TW", 0.003, 11);
  ASSERT_FALSE(original.objects.empty());
  const std::string path = TempPath("tw_roundtrip.wkt");
  ASSERT_TRUE(SaveWktDataset(path, original));

  Dataset loaded;
  ASSERT_TRUE(LoadWktDataset(path, "TW", &loaded));
  ASSERT_EQ(loaded.objects.size(), original.objects.size());
  for (size_t i = 0; i < original.objects.size(); ++i) {
    EXPECT_EQ(loaded.objects[i].geometry.Outer(),
              original.objects[i].geometry.Outer())
        << i;
    EXPECT_EQ(loaded.objects[i].geometry.Holes().size(),
              original.objects[i].geometry.Holes().size())
        << i;
    EXPECT_EQ(loaded.objects[i].id, static_cast<uint32_t>(i));
  }
  std::remove(path.c_str());
}

TEST(DatasetIo, SkipsCommentsAndBlankLines) {
  const std::string path = TempPath("commented.wkt");
  {
    std::ofstream out(path);
    out << "# header comment\n\n"
        << "POLYGON ((0 0, 1 0, 1 1, 0 1))\n"
        << "\n# another comment\n"
        << "POLYGON ((2 2, 3 2, 3 3))\n";
  }
  Dataset loaded;
  ASSERT_TRUE(LoadWktDataset(path, "test", &loaded));
  EXPECT_EQ(loaded.objects.size(), 2u);
  std::remove(path.c_str());
}

TEST(DatasetIo, FailsOnMalformedLine) {
  const std::string path = TempPath("malformed.wkt");
  {
    std::ofstream out(path);
    out << "POLYGON ((0 0, 1 0, 1 1))\n"
        << "POLYGON ((not a polygon))\n";
  }
  Dataset loaded;
  EXPECT_FALSE(LoadWktDataset(path, "test", &loaded));
  EXPECT_TRUE(loaded.objects.empty());
  std::remove(path.c_str());
}

TEST(DatasetIo, FailsOnMissingFile) {
  Dataset loaded;
  EXPECT_FALSE(LoadWktDataset(TempPath("nope.wkt"), "test", &loaded));
}

}  // namespace
}  // namespace stj
