#include <gtest/gtest.h>

#include "src/datasets/blob.h"
#include "src/datasets/buildings.h"
#include "src/datasets/tessellation.h"
#include "src/geometry/point_in_polygon.h"
#include "src/geometry/validate.h"
#include "src/util/rng.h"

namespace stj {
namespace {

TEST(BlobGenerator, RespectsVertexCount) {
  Rng rng(401);
  for (const size_t v : {4u, 8u, 100u, 2000u}) {
    BlobParams params;
    params.vertices = v;
    const Polygon blob = MakeBlob(&rng, params);
    EXPECT_EQ(blob.Outer().Size(), v);
  }
}

TEST(BlobGenerator, StaysNearMeanRadius) {
  Rng rng(403);
  BlobParams params;
  params.center = Point{10, 10};
  params.mean_radius = 2.0;
  params.irregularity = 0.4;
  params.vertices = 64;
  const Polygon blob = MakeBlob(&rng, params);
  for (const Point& p : blob.Outer().Vertices()) {
    const double d = Distance(p, params.center);
    EXPECT_GT(d, 0.1);
    EXPECT_LT(d, 2.0 * (1.0 + 0.85) + 0.01);
  }
}

TEST(BlobGenerator, HolesAreStrictlyInside) {
  Rng rng(405);
  int with_holes = 0;
  for (int i = 0; i < 60; ++i) {
    BlobParams params;
    params.center = Point{0, 0};
    params.mean_radius = 5.0;
    params.vertices = 48;
    params.hole_probability = 1.0;
    const Polygon blob = MakeBlob(&rng, params);
    if (blob.Holes().empty()) continue;
    ++with_holes;
    const ValidationResult res = ValidatePolygon(blob);
    EXPECT_TRUE(res.valid) << res.reason;
    for (const Ring& hole : blob.Holes()) {
      for (const Point& p : hole.Vertices()) {
        EXPECT_EQ(LocateInRing(p, blob.Outer()), Location::kInterior);
      }
    }
  }
  EXPECT_GT(with_holes, 30);
}

TEST(BlobGenerator, TransformHelpers) {
  Rng rng(407);
  BlobParams params;
  params.center = Point{5, 5};
  params.mean_radius = 2.0;
  params.vertices = 32;
  params.hole_probability = 1.0;
  const Polygon blob = MakeBlob(&rng, params);

  const Polygon moved = Translate(blob, 10, -3);
  EXPECT_DOUBLE_EQ(moved.Bounds().min.x, blob.Bounds().min.x + 10);
  EXPECT_DOUBLE_EQ(moved.Bounds().max.y, blob.Bounds().max.y - 3);
  EXPECT_EQ(moved.VertexCount(), blob.VertexCount());

  const Polygon filled = FillHoles(blob);
  EXPECT_TRUE(filled.Holes().empty());
  EXPECT_EQ(filled.Outer(), blob.Outer());

  const Polygon scaled = ScaleAbout(blob, params.center, 0.5);
  EXPECT_NEAR(scaled.Bounds().Width(), blob.Bounds().Width() * 0.5, 1e-9);
}

TEST(TessellationGenerator, CellsPartitionWithoutCrossing) {
  Rng rng(409);
  TessellationParams params;
  params.cols = 8;
  params.rows = 5;
  params.edge_points = 4;
  const std::vector<Polygon> cells = MakeTessellation(&rng, params);
  ASSERT_EQ(cells.size(), 40u);
  double total_area = 0.0;
  for (const Polygon& cell : cells) {
    EXPECT_TRUE(ValidatePolygon(cell).valid);
    total_area += cell.Area();
  }
  // Cells tile the (jittered) region: total area close to the region area.
  EXPECT_NEAR(total_area, params.region.Area(), params.region.Area() * 0.2);
}

TEST(TessellationGenerator, SharedChainsAreBitExact) {
  Rng rng(411);
  TessellationParams params;
  params.cols = 3;
  params.rows = 3;
  params.edge_points = 6;
  const std::vector<Polygon> cells = MakeTessellation(&rng, params);
  // Adjacent cells share edge_points+2 vertices verbatim.
  const auto& left = cells[0].Outer().Vertices();
  const auto& right = cells[1].Outer().Vertices();
  size_t shared = 0;
  for (const Point& p : left) {
    for (const Point& q : right) {
      if (p == q) ++shared;
    }
  }
  EXPECT_GE(shared, params.edge_points + 2);
}

TEST(TessellationGenerator, NestedCoarseCellsHaveExpectedCounts) {
  Rng rng(413);
  TessellationParams params;
  params.cols = 12;
  params.rows = 12;
  params.edge_points = 3;
  const NestedTessellation nested = MakeNestedTessellation(&rng, params, 4);
  EXPECT_EQ(nested.fine.size(), 144u);
  EXPECT_EQ(nested.coarse.size(), 9u);
  for (const Polygon& coarse : nested.coarse) {
    EXPECT_TRUE(ValidatePolygon(coarse).valid);
    // 4x4 block rim: 16 chains of (edge_points+1) segments each.
    EXPECT_EQ(coarse.Outer().Size(), 16u * (params.edge_points + 1));
  }
  // Coarse areas sum to fine areas.
  double fine_area = 0.0;
  double coarse_area = 0.0;
  for (const Polygon& p : nested.fine) fine_area += p.Area();
  for (const Polygon& p : nested.coarse) coarse_area += p.Area();
  EXPECT_NEAR(fine_area, coarse_area, fine_area * 1e-9);
}

TEST(TessellationGenerator, RemainderColumnsJoinLastBlock) {
  Rng rng(415);
  TessellationParams params;
  params.cols = 7;  // not divisible by 3
  params.rows = 7;
  params.edge_points = 2;
  const NestedTessellation nested = MakeNestedTessellation(&rng, params, 3);
  EXPECT_EQ(nested.fine.size(), 49u);
  EXPECT_EQ(nested.coarse.size(), 4u);  // 2x2 blocks, last absorbs remainder
  double fine_area = 0.0;
  double coarse_area = 0.0;
  for (const Polygon& p : nested.fine) fine_area += p.Area();
  for (const Polygon& p : nested.coarse) coarse_area += p.Area();
  EXPECT_NEAR(fine_area, coarse_area, fine_area * 1e-9);
}

TEST(BuildingsGenerator, CountsAndValidity) {
  Rng rng(417);
  BuildingParams params;
  params.count = 500;
  params.clusters = 10;
  const std::vector<Polygon> buildings = MakeBuildings(&rng, params);
  ASSERT_EQ(buildings.size(), 500u);
  size_t l_shapes = 0;
  for (const Polygon& b : buildings) {
    EXPECT_TRUE(ValidatePolygon(b).valid);
    EXPECT_TRUE(b.Outer().Size() == 4 || b.Outer().Size() == 6);
    if (b.Outer().Size() == 6) ++l_shapes;
    EXPECT_LE(b.Bounds().Width(), params.max_size * 2.5);
  }
  // Roughly 30% L-shapes by default.
  EXPECT_GT(l_shapes, 75u);
  EXPECT_LT(l_shapes, 250u);
}

TEST(BuildingsGenerator, DeterministicUnderSameSeed) {
  BuildingParams params;
  params.count = 50;
  Rng rng1(419);
  Rng rng2(419);
  const auto a = MakeBuildings(&rng1, params);
  const auto b = MakeBuildings(&rng2, params);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].Outer(), b[i].Outer());
  }
}

}  // namespace
}  // namespace stj
