#include "src/datasets/scenarios.h"

#include <gtest/gtest.h>

#include "src/datasets/workload.h"
#include "src/geometry/validate.h"
#include "src/interval/interval_algebra.h"

namespace stj {
namespace {

ScenarioOptions TestOptions() {
  ScenarioOptions options;
  options.scale = 0.02;  // tiny datasets for unit tests
  options.grid_order = 9;
  return options;
}

TEST(Scenarios, AllDatasetsBuildAndValidate) {
  for (const std::string& name : DatasetNames()) {
    const Dataset dataset = BuildDataset(name, 0.01, 7);
    EXPECT_EQ(dataset.name, name);
    ASSERT_FALSE(dataset.objects.empty()) << name;
    EXPECT_GT(dataset.TotalVertices(), 0u);
    EXPECT_GT(dataset.GeometryByteSize(), dataset.MbrByteSize());
    // Spot-validate a sample of polygons.
    for (size_t i = 0; i < dataset.objects.size();
         i += 1 + dataset.objects.size() / 20) {
      const ValidationResult res =
          ValidatePolygon(dataset.objects[i].geometry);
      EXPECT_TRUE(res.valid) << name << "[" << i << "]: " << res.reason;
    }
  }
}

TEST(Scenarios, DatasetsAreDeterministic) {
  const Dataset a = BuildDataset("OLE", 0.01, 42);
  const Dataset b = BuildDataset("OLE", 0.01, 42);
  ASSERT_EQ(a.objects.size(), b.objects.size());
  for (size_t i = 0; i < a.objects.size(); ++i) {
    EXPECT_EQ(a.objects[i].geometry.Outer(), b.objects[i].geometry.Outer());
  }
  const Dataset c = BuildDataset("OLE", 0.01, 43);
  bool any_difference = c.objects.size() != a.objects.size();
  for (size_t i = 0; !any_difference && i < a.objects.size(); ++i) {
    any_difference = !(a.objects[i].geometry.Outer() ==
                       c.objects[i].geometry.Outer());
  }
  EXPECT_TRUE(any_difference) << "seed had no effect";
}

TEST(Scenarios, ZipCodesRefineCounties) {
  // TZ cells must nest into TC cells because they share one tessellation.
  const Dataset tc = BuildDataset("TC", 0.05, 7);
  const Dataset tz = BuildDataset("TZ", 0.05, 7);
  EXPECT_GT(tz.objects.size(), tc.objects.size());
  double tc_area = 0.0;
  double tz_area = 0.0;
  for (const auto& o : tc.objects) tc_area += o.geometry.Area();
  for (const auto& o : tz.objects) tz_area += o.geometry.Area();
  EXPECT_NEAR(tc_area, tz_area, tc_area * 1e-6);
}

TEST(Scenarios, BuildScenarioProducesAlignedArtifacts) {
  const ScenarioData scenario = BuildScenario("OLE-OPE", TestOptions());
  EXPECT_EQ(scenario.name, "OLE-OPE");
  EXPECT_EQ(scenario.r_april.size(), scenario.r.objects.size());
  EXPECT_EQ(scenario.s_april.size(), scenario.s.objects.size());
  EXPECT_FALSE(scenario.candidates.empty());
  EXPECT_FALSE(scenario.dataspace.IsEmpty());
  // Candidate indices are in range and MBRs really intersect.
  for (const CandidatePair& pair : scenario.candidates) {
    ASSERT_LT(pair.r_idx, scenario.r.objects.size());
    ASSERT_LT(pair.s_idx, scenario.s.objects.size());
    EXPECT_TRUE(scenario.r.objects[pair.r_idx].geometry.Bounds().Intersects(
        scenario.s.objects[pair.s_idx].geometry.Bounds()));
  }
  // APRIL invariants hold for every object.
  for (size_t i = 0; i < scenario.r_april.size(); ++i) {
    ASSERT_TRUE(ListInside(scenario.r_april[i].progressive,
                           scenario.r_april[i].conservative))
        << i;
  }
  EXPECT_GT(scenario.AprilByteSize(true), 0u);
}

TEST(Scenarios, AllSevenScenariosBuild) {
  ScenarioOptions options;
  options.scale = 0.005;
  options.grid_order = 8;
  for (const std::string& name : ScenarioNames()) {
    const ScenarioData scenario = BuildScenario(name, options);
    EXPECT_EQ(scenario.name, name) << name;
    EXPECT_FALSE(scenario.r.objects.empty()) << name;
    EXPECT_FALSE(scenario.s.objects.empty()) << name;
  }
}

TEST(Scenarios, SkippingAprilAndJoin) {
  ScenarioOptions options = TestOptions();
  options.build_april = false;
  options.run_join = false;
  const ScenarioData scenario = BuildScenario("TL-TW", options);
  EXPECT_TRUE(scenario.r_april.empty());
  EXPECT_TRUE(scenario.candidates.empty());
  EXPECT_FALSE(scenario.r.objects.empty());
}

TEST(Workload, ComplexityLevelsAreBalancedAndOrdered) {
  const ScenarioData scenario = BuildScenario("OLE-OPE", TestOptions());
  const size_t levels = 5;
  const ComplexityLevels grouped = GroupByComplexity(scenario, levels);
  ASSERT_EQ(grouped.ranges.size(), levels);
  size_t total = 0;
  for (size_t i = 0; i < levels; ++i) {
    EXPECT_LE(grouped.ranges[i].first, grouped.ranges[i].second);
    if (i > 0) {
      EXPECT_GT(grouped.ranges[i].first, grouped.ranges[i - 1].second);
    }
    total += grouped.pairs[i].size();
    // Every pair in the bucket matches the bucket's range.
    for (const CandidatePair& pair : grouped.pairs[i]) {
      const uint64_t c = PairComplexity(scenario, pair);
      EXPECT_GE(c, grouped.ranges[i].first);
      EXPECT_LE(c, grouped.ranges[i].second);
    }
  }
  EXPECT_EQ(total, scenario.candidates.size());
  // Equi-count: no bucket is more than 3x another (ties can skew a little).
  size_t min_count = scenario.candidates.size();
  size_t max_count = 0;
  for (const auto& bucket : grouped.pairs) {
    min_count = std::min(min_count, bucket.size());
    max_count = std::max(max_count, bucket.size());
  }
  EXPECT_LT(max_count, 3 * std::max<size_t>(1, min_count));
}

}  // namespace
}  // namespace stj
