#include "src/de9im/boundary_arrangement.h"

#include <gtest/gtest.h>

#include "src/geometry/point_in_polygon.h"
#include "tests/test_support.h"

namespace stj::de9im {
namespace {

using test::Square;
using test::Triangle;

TEST(BoundaryArrangement, DisjointPolygonsKeepWholeEdges) {
  const Polygon a = Square(0, 0, 1, 1);
  const Polygon b = Square(5, 5, 6, 6);
  const Arrangement arr = ComputeArrangement(a, b);
  EXPECT_FALSE(arr.boundaries_touch);
  EXPECT_FALSE(arr.r.has_shared_piece);
  EXPECT_FALSE(arr.s.has_shared_piece);
  // One midpoint per edge, no splits.
  EXPECT_EQ(arr.r.midpoints.size(), 4u);
  EXPECT_EQ(arr.s.midpoints.size(), 4u);
}

TEST(BoundaryArrangement, ProperCrossingSplitsEdges) {
  // Overlapping squares: each boundary crosses the other twice.
  const Polygon a = Square(0, 0, 2, 2);
  const Polygon b = Square(1, 1, 3, 3);
  const Arrangement arr = ComputeArrangement(a, b);
  EXPECT_TRUE(arr.boundaries_touch);
  EXPECT_FALSE(arr.r.has_shared_piece);
  // Two of a's edges split once each: 4 + 2 midpoints.
  EXPECT_EQ(arr.r.midpoints.size(), 6u);
  EXPECT_EQ(arr.s.midpoints.size(), 6u);
}

TEST(BoundaryArrangement, SharedEdgeIsDetectedCombinatorially) {
  const Polygon a = Square(0, 0, 1, 1);
  const Polygon b = Square(1, 0, 2, 1);  // shares the x=1 edge
  const Arrangement arr = ComputeArrangement(a, b);
  EXPECT_TRUE(arr.boundaries_touch);
  EXPECT_TRUE(arr.r.has_shared_piece);
  EXPECT_TRUE(arr.s.has_shared_piece);
  // The shared edge produces no midpoint (it is classified as boundary
  // directly); the other 3 edges of each square produce one midpoint each.
  EXPECT_EQ(arr.r.midpoints.size(), 3u);
  EXPECT_EQ(arr.s.midpoints.size(), 3u);
}

TEST(BoundaryArrangement, PartialEdgeOverlapSplitsAroundSharedPiece) {
  // a's right edge [x=2, y in 0..2]; b's left edge [x=2, y in 1..3]:
  // shared piece y in [1,2].
  const Polygon a = Square(0, 0, 2, 2);
  const Polygon b = Square(2, 1, 4, 3);
  const Arrangement arr = ComputeArrangement(a, b);
  EXPECT_TRUE(arr.r.has_shared_piece);
  EXPECT_TRUE(arr.s.has_shared_piece);
  // a: 3 whole edges + right edge splits into [0,1) shared-free piece.
  EXPECT_EQ(arr.r.midpoints.size(), 4u);
  EXPECT_EQ(arr.s.midpoints.size(), 4u);
  // All midpoints must be off the other polygon's boundary in exact terms.
  for (const Point& mid : arr.r.midpoints) {
    EXPECT_NE(Locate(mid, b), Location::kBoundary);
  }
}

TEST(BoundaryArrangement, IdenticalPolygonsHaveOnlySharedPieces) {
  const Polygon square = Square(0, 0, 3, 3);
  const Arrangement arr = ComputeArrangement(square, square);
  EXPECT_TRUE(arr.boundaries_touch);
  EXPECT_TRUE(arr.r.has_shared_piece);
  EXPECT_TRUE(arr.s.has_shared_piece);
  EXPECT_TRUE(arr.r.midpoints.empty());
  EXPECT_TRUE(arr.s.midpoints.empty());
}

TEST(BoundaryArrangement, VertexTouchRecordsNoSplitInteriorToEdges) {
  // Triangles sharing a single vertex.
  const Polygon a = Triangle(Point{0, 0}, Point{2, 0}, Point{1, 1});
  const Polygon b = Triangle(Point{1, 1}, Point{0, 2}, Point{2, 2});
  const Arrangement arr = ComputeArrangement(a, b);
  EXPECT_TRUE(arr.boundaries_touch);
  EXPECT_FALSE(arr.r.has_shared_piece);
  // The touch is at existing vertices: edges stay whole.
  EXPECT_EQ(arr.r.midpoints.size(), 3u);
  EXPECT_EQ(arr.s.midpoints.size(), 3u);
}

TEST(BoundaryArrangement, TJunctionSplitsTheThroughEdge) {
  // b's corner (1,0) lies in the middle of a's bottom edge.
  const Polygon a = Square(0, 0, 2, 2);
  const Polygon b = Triangle(Point{1, 0}, Point{3, -2}, Point{3, 0});
  const Arrangement arr = ComputeArrangement(a, b);
  EXPECT_TRUE(arr.boundaries_touch);
  // a's bottom edge splits at x=1... but (2,0)-(3,0) of b also overlaps? No:
  // b's top edge runs from (3,0) to (1,0): collinear with a's bottom edge
  // y=0 for x in [1,2] -> shared piece!
  EXPECT_TRUE(arr.r.has_shared_piece);
  EXPECT_TRUE(arr.s.has_shared_piece);
}

TEST(BoundaryArrangement, MidpointsClassifyCleanly) {
  // Every reported midpoint must locate strictly interior or exterior to
  // the other polygon (the invariant the relate engine depends on).
  const Polygon shapes[] = {
      Square(0, 0, 2, 2), Square(1, 1, 3, 3), Square(1, 0, 2, 2),
      test::SquareWithHole(0, 0, 6, 6, 2),
      Triangle(Point{0, 0}, Point{6, 0}, Point{3, 5})};
  for (const Polygon& a : shapes) {
    for (const Polygon& b : shapes) {
      const Arrangement arr = ComputeArrangement(a, b);
      for (const Point& mid : arr.r.midpoints) {
        EXPECT_NE(Locate(mid, b), Location::kBoundary);
      }
      for (const Point& mid : arr.s.midpoints) {
        EXPECT_NE(Locate(mid, a), Location::kBoundary);
      }
    }
  }
}

}  // namespace
}  // namespace stj::de9im
