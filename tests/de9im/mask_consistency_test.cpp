// Runtime differential check of the compile-time DE-9IM model (model.h)
// against the exact RelateEngine. The static_asserts in model_check.cpp
// prove "mask tables == model" over every *realizable* matrix; this test
// closes the remaining gap by checking that matrices the engine actually
// produces on real polygon pairs (i) satisfy the realizability constraints
// the model enumerates and (ii) agree with the model's relation predicates —
// so the model's notion of "realizable" is not a fiction of the proofs.

#include <gtest/gtest.h>

#include <vector>

#include "src/de9im/model.h"
#include "src/de9im/relate_engine.h"
#include "src/de9im/relation.h"
#include "src/util/rng.h"
#include "tests/test_support.h"

namespace stj::de9im {
namespace {

using test::RandomBlob;
using test::Square;
using test::SquareWithHole;
using test::Triangle;

struct NamedPair {
  const char* name;
  Polygon r;
  Polygon s;
};

// Hand-picked pairs witnessing every one of the eight relations, plus shapes
// with holes and boundary contact in both directions.
std::vector<NamedPair> CuratedPairs() {
  std::vector<NamedPair> pairs;
  pairs.push_back({"equals", Square(0, 0, 4, 4), Square(0, 0, 4, 4)});
  pairs.push_back({"equals-hole", SquareWithHole(0, 0, 4, 4, 1),
                   SquareWithHole(0, 0, 4, 4, 1)});
  pairs.push_back({"inside", Square(1, 1, 2, 2), Square(0, 0, 4, 4)});
  pairs.push_back({"contains", Square(0, 0, 4, 4), Square(1, 1, 2, 2)});
  pairs.push_back({"covered-by", Square(1, 0, 2, 2), Square(0, 0, 4, 4)});
  pairs.push_back({"covers", Square(0, 0, 4, 4), Square(1, 0, 2, 2)});
  pairs.push_back({"meets-edge", Square(0, 0, 1, 1), Square(1, 0, 2, 1)});
  pairs.push_back({"meets-corner", Square(0, 0, 1, 1), Square(1, 1, 2, 2)});
  pairs.push_back(
      {"meets-in-hole", Square(1.5, 1.5, 2.5, 2.5), SquareWithHole(0, 0, 4, 4, 1)});
  pairs.push_back({"intersects", Square(0, 0, 2, 2), Square(1, 1, 3, 3)});
  pairs.push_back({"intersects-cross", Square(1, 0, 2, 4), Square(0, 1, 4, 2)});
  pairs.push_back({"disjoint", Square(0, 0, 1, 1), Square(5, 5, 6, 6)});
  pairs.push_back({"disjoint-overlapping-mbrs",
                   Triangle(Point{0, 0}, Point{10, 0}, Point{0, 1}),
                   Triangle(Point{10, 10}, Point{10, 9}, Point{1, 10})});
  return pairs;
}

void CheckAgainstModel(const char* name, const Matrix& m,
                       RelationSet* observed) {
  // (i) Engine matrices must lie inside the model's realizable set — this is
  // what licenses quantifying the compile-time proofs over that set only.
  EXPECT_TRUE(IsRealizablePolygonMatrix(m))
      << name << ": engine matrix " << m.ToString()
      << " violates a realizability constraint of de9im/model.h";

  // (ii) The runtime mask matcher and the first-principles predicates agree
  // relation by relation.
  for (int i = 0; i < kNumRelations; ++i) {
    const Relation rel = static_cast<Relation>(i);
    EXPECT_EQ(RelationHolds(rel, m), ModelHolds(rel, m))
        << name << ": masks and model disagree on " << ToString(rel)
        << " for matrix " << m.ToString();
  }

  // (iii) The holding set is the upward closure of the most specific
  // relation (Fig. 2 lattice), as the compile-time lattice check promises.
  const Relation most_specific = MostSpecificRelation(m);
  RelationSet holding;
  for (int i = 0; i < kNumRelations; ++i) {
    const Relation rel = static_cast<Relation>(i);
    if (RelationHolds(rel, m)) holding.Add(rel);
  }
  EXPECT_EQ(holding.Bits(), UpwardClosure(most_specific).Bits())
      << name << ": holding set is not the upward closure of "
      << ToString(most_specific) << " for matrix " << m.ToString();

  observed->Add(most_specific);
}

TEST(MaskConsistency, CuratedPairsCoverAllRelationsAndMatchModel) {
  RelationSet observed;
  for (const NamedPair& pair : CuratedPairs()) {
    CheckAgainstModel(pair.name, RelateMatrix(pair.r, pair.s), &observed);
  }
  // The corpus must witness every relation, or the differential check would
  // be vacuous for the missing ones.
  EXPECT_EQ(observed.Bits(), RelationSet::All().Bits())
      << "curated corpus fails to witness some relation";
}

TEST(MaskConsistency, RandomBlobPairsMatchModel) {
  Rng rng(20260806);
  RelationSet observed;
  for (int i = 0; i < 200; ++i) {
    // Overlapping placement ranges so the corpus hits containment, boundary
    // contact, and disjointness, not just generic overlap.
    const Polygon r = RandomBlob(&rng, Point{rng.Uniform(0, 4), rng.Uniform(0, 4)},
                                 rng.Uniform(0.5, 3.0), 24,
                                 /*hole_probability=*/0.3);
    const Polygon s = RandomBlob(&rng, Point{rng.Uniform(0, 4), rng.Uniform(0, 4)},
                                 rng.Uniform(0.5, 3.0), 24,
                                 /*hole_probability=*/0.3);
    CheckAgainstModel("random-blob", RelateMatrix(r, s), &observed);
  }
  // Generic position yields at least these three; the curated corpus covers
  // the measure-zero relations.
  EXPECT_TRUE(observed.Contains(Relation::kIntersects));
  EXPECT_TRUE(observed.Contains(Relation::kDisjoint));
}

// Self-duality: the model must satisfy the same converse/transpose symmetry
// the mask tables were proven to have at compile time, on engine matrices.
TEST(MaskConsistency, EngineMatricesRespectConverseDuality) {
  for (const NamedPair& pair : CuratedPairs()) {
    const Matrix forward = RelateMatrix(pair.r, pair.s);
    const Matrix backward = RelateMatrix(pair.s, pair.r);
    EXPECT_EQ(forward.Transposed().ToString(), backward.ToString())
        << pair.name;
    EXPECT_EQ(Converse(MostSpecificRelation(forward)),
              MostSpecificRelation(backward))
        << pair.name;
  }
}

}  // namespace
}  // namespace stj::de9im
