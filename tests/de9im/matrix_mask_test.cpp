#include <gtest/gtest.h>

#include "src/de9im/mask.h"
#include "src/de9im/matrix.h"

namespace stj::de9im {
namespace {

TEST(Matrix, DefaultsToAllFalse) {
  EXPECT_EQ(Matrix().ToString(), "FFFFFFFFF");
}

TEST(Matrix, StringRoundTrip) {
  const auto m = Matrix::FromString("212F11212");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->ToString(), "212F11212");
  EXPECT_EQ(m->At(Part::kInterior, Part::kInterior), Dim::k2);
  EXPECT_EQ(m->At(Part::kBoundary, Part::kInterior), Dim::kFalse);
  EXPECT_EQ(m->At(Part::kBoundary, Part::kBoundary), Dim::k1);
  EXPECT_EQ(m->At(Part::kExterior, Part::kExterior), Dim::k2);
}

TEST(Matrix, FromStringRejectsBadInput) {
  EXPECT_FALSE(Matrix::FromString("212F1121").has_value());   // too short
  EXPECT_FALSE(Matrix::FromString("212F112123").has_value()); // too long
  EXPECT_FALSE(Matrix::FromString("212F1121X").has_value());  // bad char
  EXPECT_FALSE(Matrix::FromString("T12F11212").has_value());  // T not a dim
}

TEST(Matrix, TransposeSwapsRowsAndColumns) {
  const Matrix m = *Matrix::FromString("012F12F12");
  const Matrix t = m.Transposed();
  for (int row = 0; row < 3; ++row) {
    for (int col = 0; col < 3; ++col) {
      EXPECT_EQ(m.At(static_cast<Part>(row), static_cast<Part>(col)),
                t.At(static_cast<Part>(col), static_cast<Part>(row)));
    }
  }
  EXPECT_EQ(t.Transposed(), m);
}

TEST(Matrix, MergeNeverLowers) {
  Matrix m;
  m.Merge(Part::kInterior, Part::kInterior, Dim::k1);
  EXPECT_EQ(m.At(Part::kInterior, Part::kInterior), Dim::k1);
  m.Merge(Part::kInterior, Part::kInterior, Dim::kFalse);
  EXPECT_EQ(m.At(Part::kInterior, Part::kInterior), Dim::k1);
  m.Merge(Part::kInterior, Part::kInterior, Dim::k2);
  EXPECT_EQ(m.At(Part::kInterior, Part::kInterior), Dim::k2);
}

TEST(Mask, TrueMatchesAnyNonEmpty) {
  const Mask mask = Mask::FromLiteral("T********");
  EXPECT_TRUE(mask.Matches(*Matrix::FromString("0FFFFFFFF")));
  EXPECT_TRUE(mask.Matches(*Matrix::FromString("1FFFFFFFF")));
  EXPECT_TRUE(mask.Matches(*Matrix::FromString("2FFFFFFFF")));
  EXPECT_FALSE(mask.Matches(*Matrix::FromString("FFFFFFFFF")));
}

TEST(Mask, FalseMatchesOnlyEmpty) {
  const Mask mask = Mask::FromLiteral("F********");
  EXPECT_TRUE(mask.Matches(*Matrix::FromString("FFFFFFFFF")));
  EXPECT_FALSE(mask.Matches(*Matrix::FromString("0FFFFFFFF")));
}

TEST(Mask, ExactDimensionCells) {
  const Mask mask = Mask::FromLiteral("2*1*0****");
  EXPECT_TRUE(mask.Matches(*Matrix::FromString("2F1F0FFFF")));
  EXPECT_FALSE(mask.Matches(*Matrix::FromString("1F1F0FFFF")));
  EXPECT_FALSE(mask.Matches(*Matrix::FromString("2F2F0FFFF")));
  EXPECT_FALSE(mask.Matches(*Matrix::FromString("2F1FFFFFF")));
}

TEST(Mask, StarMatchesEverything) {
  const Mask mask = Mask::FromLiteral("*********");
  EXPECT_TRUE(mask.Matches(Matrix()));
  EXPECT_TRUE(mask.Matches(*Matrix::FromString("212101212")));
}

TEST(Mask, ParseRejectsBadPatterns) {
  EXPECT_FALSE(Mask::Parse("T*F").has_value());
  EXPECT_FALSE(Mask::Parse("T*F**F***X").has_value());
  EXPECT_FALSE(Mask::Parse("T*F**F*3*").has_value());
}

TEST(Mask, ToStringRoundTrip) {
  // Runtime patterns go through Parse; FromLiteral is consteval-only.
  const char* patterns[] = {"T*F**FFF*", "FF*FF****", "212F11212"};
  for (const char* p : patterns) {
    const std::optional<Mask> mask = Mask::Parse(p);
    ASSERT_TRUE(mask.has_value()) << p;
    EXPECT_EQ(mask->ToString(), p);
  }
}

}  // namespace
}  // namespace stj::de9im
