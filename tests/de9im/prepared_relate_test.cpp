// Differential tests for the prepared-geometry refinement path: a relate
// computed through PreparedPolygons — fresh, reused across pairs, or served
// from a Pipeline cache of any budget — must be byte-identical to the cold
// two-polygon path for every pair. The cold path itself delegates through
// one-shot prepared wrappers, so these tests pin the whole equivalence
// class: cold == locator-overload == prepared == cached-prepared.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/datasets/blob.h"
#include "src/datasets/scenarios.h"
#include "src/datasets/tessellation.h"
#include "src/de9im/relate_engine.h"
#include "src/geometry/prepared_polygon.h"
#include "src/topology/parallel.h"
#include "src/topology/prepared_cache.h"
#include "src/util/rng.h"
#include "tests/test_support.h"

namespace stj::de9im {
namespace {

/// Asserts the full matrix equivalence class for one pair: cold 2-arg,
/// caller-locator 4-arg, fresh prepared, and the provided (possibly reused)
/// prepared objects all agree.
void ExpectAllPathsAgree(const Polygon& r, const Polygon& s,
                         const PreparedPolygon& pr, const PreparedPolygon& ps,
                         const std::string& label) {
  const Matrix cold = RelateEngine::Relate(r, s);
  const PolygonLocator r_locator(r);
  const PolygonLocator s_locator(s);
  const Matrix with_locators =
      RelateEngine::Relate(r, r_locator, s, s_locator);
  const PreparedPolygon fresh_r(r);
  const PreparedPolygon fresh_s(s);
  const Matrix fresh = RelateEngine::Relate(fresh_r, fresh_s);
  const Matrix reused = RelateEngine::Relate(pr, ps);
  EXPECT_EQ(cold.ToString(), with_locators.ToString()) << label;
  EXPECT_EQ(cold.ToString(), fresh.ToString()) << label;
  EXPECT_EQ(cold.ToString(), reused.ToString()) << label;
}

TEST(PreparedRelateTest, RandomBlobPairsMatchColdPath) {
  Rng rng(211);
  for (int i = 0; i < 60; ++i) {
    const Polygon a = test::RandomBlob(
        &rng, Point{rng.Uniform(0, 6), rng.Uniform(0, 6)},
        rng.LogUniform(0.3, 2.5), static_cast<size_t>(rng.UniformInt(4, 120)),
        /*hole_probability=*/0.3);
    const Polygon b = test::RandomBlob(
        &rng, Point{rng.Uniform(0, 6), rng.Uniform(0, 6)},
        rng.LogUniform(0.3, 2.5), static_cast<size_t>(rng.UniformInt(4, 120)),
        /*hole_probability=*/0.3);
    const PreparedPolygon pa(a);
    const PreparedPolygon pb(b);
    ExpectAllPathsAgree(a, b, pa, pb, "blob pair " + std::to_string(i));
  }
}

TEST(PreparedRelateTest, PreparedObjectsReusedAcrossManyPairs) {
  // One prepared object relates against a stream of partners — the cache's
  // access pattern. Every answer must equal the per-pair cold computation,
  // including after the lazy components and the memoized interior point have
  // been materialised by earlier pairs.
  Rng rng(223);
  const Polygon pivot = test::RandomBlob(&rng, Point{5, 5}, 2.0, 96,
                                         /*hole_probability=*/1.0);
  const PreparedPolygon prepared_pivot(pivot);
  for (int i = 0; i < 40; ++i) {
    const Polygon partner = test::RandomBlob(
        &rng, Point{rng.Uniform(2, 8), rng.Uniform(2, 8)},
        rng.LogUniform(0.2, 3.0), static_cast<size_t>(rng.UniformInt(4, 90)),
        /*hole_probability=*/0.25);
    const PreparedPolygon prepared_partner(partner);
    ExpectAllPathsAgree(pivot, partner, prepared_pivot, prepared_partner,
                        "pivot-partner " + std::to_string(i));
    // Argument order swapped: the same prepared instances on the other side.
    ExpectAllPathsAgree(partner, pivot, prepared_partner, prepared_pivot,
                        "partner-pivot " + std::to_string(i));
  }
}

TEST(PreparedRelateTest, TessellationNeighborsMatchColdPath) {
  // Shared-boundary pairs exercise the collinear-overlap arrangement path
  // and the interior-point fallback — the cases the prepared cache
  // accelerates most, so exactly where divergence would hurt.
  Rng rng(227);
  TessellationParams params;
  params.cols = 5;
  params.rows = 5;
  params.edge_points = 6;
  const std::vector<Polygon> cells = MakeTessellation(&rng, params);
  std::vector<PreparedPolygon> prepared;
  prepared.reserve(cells.size());
  for (const Polygon& cell : cells) prepared.emplace_back(cell);
  for (size_t i = 0; i < cells.size(); ++i) {
    for (const size_t j : {i + 1, i + 5}) {  // right and upper neighbours
      if (j >= cells.size()) continue;
      ExpectAllPathsAgree(cells[i], cells[j], prepared[i], prepared[j],
                          "cells " + std::to_string(i) + "," +
                              std::to_string(j));
    }
  }
}

TEST(PreparedRelateTest, SharedBoundaryEqualAndFilledPairs) {
  Rng rng(229);
  for (int i = 0; i < 20; ++i) {
    const Polygon blob = test::RandomBlob(
        &rng, Point{rng.Uniform(0, 8), rng.Uniform(0, 8)},
        rng.LogUniform(0.5, 2.0), static_cast<size_t>(rng.UniformInt(12, 100)),
        /*hole_probability=*/1.0);
    const Polygon filled = FillHoles(blob);  // equals blob when no holes
    const PreparedPolygon pb(blob);
    const PreparedPolygon pf(filled);
    ExpectAllPathsAgree(blob, filled, pb, pf, "filled " + std::to_string(i));
    ExpectAllPathsAgree(blob, blob, pb, pb, "self " + std::to_string(i));
  }
}

TEST(PreparedCacheTest, OneEntryBudgetKeepsExactlyOneEntry) {
  Rng rng(233);
  std::vector<Polygon> polys;
  for (int i = 0; i < 6; ++i) {
    polys.push_back(test::RandomBlob(&rng, Point{double(i), 0}, 0.5, 16));
  }
  PreparedCache cache(/*budget_bytes=*/1);  // below any entry's estimate
  for (uint32_t i = 0; i < polys.size(); ++i) {
    EXPECT_EQ(cache.Find(i), nullptr);
    PreparedPolygon prepared(polys[i]);
    prepared.Warm();
    const PreparedPolygon* inserted = cache.Insert(
        i, std::move(prepared), PreparedPolygon::EstimateBytes(polys[i]));
    ASSERT_NE(inserted, nullptr);
    EXPECT_EQ(cache.size(), 1u);           // newest always admitted, alone
    EXPECT_NE(cache.Find(i), nullptr);     // and findable
    if (i > 0) {
      EXPECT_EQ(cache.Find(i - 1), nullptr);  // predecessor evicted
    }
  }
}

TEST(PreparedCacheTest, LruEvictionOrderUnderByteBudget) {
  Rng rng(239);
  std::vector<Polygon> polys;
  for (int i = 0; i < 8; ++i) {
    polys.push_back(test::RandomBlob(&rng, Point{double(i), 0}, 0.5, 16));
  }
  const size_t per_entry = PreparedPolygon::EstimateBytes(polys[0]);
  PreparedCache cache(3 * per_entry + per_entry / 2);  // holds three
  auto insert = [&](uint32_t key) {
    PreparedPolygon prepared(polys[key]);
    cache.Insert(key, std::move(prepared),
                 PreparedPolygon::EstimateBytes(polys[key]));
  };
  insert(0);
  insert(1);
  insert(2);
  EXPECT_EQ(cache.size(), 3u);
  ASSERT_NE(cache.Find(0), nullptr);  // 0 becomes most-recent
  insert(3);                          // evicts 1, the LRU
  EXPECT_EQ(cache.Find(1), nullptr);
  EXPECT_NE(cache.Find(0), nullptr);
  EXPECT_NE(cache.Find(2), nullptr);
  EXPECT_NE(cache.Find(3), nullptr);
  // Many more inserts than slots: exercises table growth, backward-shift
  // deletion, and handle recycling without losing entries.
  for (uint32_t round = 0; round < 64; ++round) {
    const uint32_t key = round % 8;
    if (cache.Find(key) == nullptr) insert(key);
    EXPECT_LE(cache.size(), 4u);
    EXPECT_NE(cache.Find(key), nullptr);
  }
}

TEST(PreparedPipelineTest, CacheBudgetsAndThreadCountsAgree) {
  // The join-level determinism contract: every (budget, thread-count)
  // combination returns the identical relation vector and core counters.
  // Budget 0 disables the cache (the pre-cache behaviour), budget 1 byte
  // degenerates to a single-entry cache (maximum eviction churn), and the
  // default budget is the shipping configuration.
  ScenarioOptions options;
  options.scale = 0.02;
  options.grid_order = 10;
  const ScenarioData scenario = BuildScenario("OLE-OPE", options);
  ASSERT_FALSE(scenario.candidates.empty());

  const JoinOptions reference_options{.num_threads = 1,
                                      .time_stages = false,
                                      .prepared_cache_bytes = 0};
  const ParallelJoinResult reference =
      ParallelFindRelation(Method::kPC, scenario.RView(), scenario.SView(),
                           scenario.candidates, reference_options);
  ASSERT_GT(reference.stats.refined, 0u);
  EXPECT_EQ(reference.stats.prepared_hits, 0u);    // cache disabled:
  EXPECT_EQ(reference.stats.prepared_misses, 0u);  // no lookups recorded

  for (const size_t budget : {size_t{1}, kDefaultPreparedCacheBytes}) {
    for (const unsigned threads : {1u, 2u, 4u}) {
      const JoinOptions join_options{.num_threads = threads,
                                     .time_stages = false,
                                     .prepared_cache_bytes = budget};
      const ParallelJoinResult run =
          ParallelFindRelation(Method::kPC, scenario.RView(), scenario.SView(),
                               scenario.candidates, join_options);
      const std::string label = "budget=" + std::to_string(budget) +
                                " threads=" + std::to_string(threads);
      EXPECT_EQ(run.relations, reference.relations) << label;
      EXPECT_EQ(run.stats.pairs, reference.stats.pairs) << label;
      EXPECT_EQ(run.stats.refined, reference.stats.refined) << label;
      EXPECT_EQ(run.stats.decided_by_mbr, reference.stats.decided_by_mbr)
          << label;
      EXPECT_EQ(run.stats.decided_by_filter, reference.stats.decided_by_filter)
          << label;
      // Cache telemetry: one lookup per side per refined pair, workers
      // notwithstanding.
      EXPECT_EQ(run.stats.prepared_hits + run.stats.prepared_misses,
                2 * run.stats.refined)
          << label;
    }
  }
}

TEST(PreparedPipelineTest, PredicateJoinAgreesAcrossBudgets) {
  ScenarioOptions options;
  options.scale = 0.02;
  options.grid_order = 10;
  const ScenarioData scenario = BuildScenario("OLE-OPE", options);
  const JoinOptions reference_options{.num_threads = 1,
                                      .time_stages = false,
                                      .prepared_cache_bytes = 0};
  const ParallelRelateResult reference = ParallelRelate(
      Method::kST2, scenario.RView(), scenario.SView(), scenario.candidates,
      Relation::kIntersects, reference_options);
  for (const size_t budget : {size_t{1}, kDefaultPreparedCacheBytes}) {
    for (const unsigned threads : {1u, 4u}) {
      const JoinOptions join_options{.num_threads = threads,
                                     .time_stages = false,
                                     .prepared_cache_bytes = budget};
      const ParallelRelateResult run = ParallelRelate(
          Method::kST2, scenario.RView(), scenario.SView(),
          scenario.candidates, Relation::kIntersects, join_options);
      EXPECT_EQ(run.matches, reference.matches)
          << "budget=" << budget << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace stj::de9im
