#include "src/de9im/relate_engine.h"

#include <gtest/gtest.h>

#include "tests/test_support.h"

namespace stj::de9im {
namespace {

using test::Square;
using test::SquareWithHole;
using test::Triangle;

TEST(RelateEngine, DisjointPolygons) {
  const Matrix m = RelateMatrix(Square(0, 0, 1, 1), Square(5, 5, 6, 6));
  EXPECT_EQ(m.ToString(), "FF2FF1212");
  EXPECT_EQ(MostSpecificRelation(m), Relation::kDisjoint);
}

TEST(RelateEngine, DisjointWithOverlappingMbrs) {
  // Two thin diagonal triangles whose MBRs overlap but geometries do not.
  const Polygon a = Triangle(Point{0, 0}, Point{10, 0}, Point{0, 1});
  const Polygon b = Triangle(Point{10, 10}, Point{10, 9}, Point{1, 10});
  EXPECT_EQ(FindRelationExact(a, b), Relation::kDisjoint);
}

TEST(RelateEngine, EqualPolygons) {
  const Polygon square = Square(0, 0, 4, 4);
  const Matrix m = RelateMatrix(square, square);
  EXPECT_EQ(m.ToString(), "2FFF1FFF2");
  EXPECT_EQ(MostSpecificRelation(m), Relation::kEquals);
}

TEST(RelateEngine, EqualPolygonsWithHoles) {
  const Polygon donut = SquareWithHole(0, 0, 4, 4, 1);
  EXPECT_EQ(FindRelationExact(donut, donut), Relation::kEquals);
}

TEST(RelateEngine, StrictInsideAndContains) {
  const Polygon inner = Square(1, 1, 2, 2);
  const Polygon outer = Square(0, 0, 4, 4);
  EXPECT_EQ(RelateMatrix(inner, outer).ToString(), "2FF1FF212");
  EXPECT_EQ(FindRelationExact(inner, outer), Relation::kInside);
  EXPECT_EQ(FindRelationExact(outer, inner), Relation::kContains);
}

TEST(RelateEngine, CoveredByWithSharedEdge) {
  // Inner square sharing the bottom edge segment of the outer square.
  const Polygon inner = Square(1, 0, 2, 2);
  const Polygon outer = Square(0, 0, 4, 4);
  const Matrix m = RelateMatrix(inner, outer);
  EXPECT_EQ(MostSpecificRelation(m), Relation::kCoveredBy);
  EXPECT_EQ(FindRelationExact(outer, inner), Relation::kCovers);
  // Boundary/boundary must be dimension 1 (collinear shared piece).
  EXPECT_EQ(m.At(Part::kBoundary, Part::kBoundary), Dim::k1);
}

TEST(RelateEngine, CoveredByWithSingleBoundaryPoint) {
  // Inner triangle touching the outer boundary at exactly one vertex.
  const Polygon inner = Triangle(Point{1, 1}, Point{4, 2}, Point{1, 3});
  const Polygon outer = Square(0, 0, 4, 4);
  const Matrix m = RelateMatrix(inner, outer);
  EXPECT_EQ(m.At(Part::kBoundary, Part::kBoundary), Dim::k0);
  EXPECT_EQ(MostSpecificRelation(m), Relation::kCoveredBy);
}

TEST(RelateEngine, MeetsAtSinglePoint) {
  // Two squares sharing exactly one corner.
  const Matrix m = RelateMatrix(Square(0, 0, 1, 1), Square(1, 1, 2, 2));
  EXPECT_EQ(m.ToString(), "FF2F01212");
  EXPECT_EQ(MostSpecificRelation(m), Relation::kMeets);
}

TEST(RelateEngine, MeetsAlongSharedEdge) {
  const Matrix m = RelateMatrix(Square(0, 0, 1, 1), Square(1, 0, 2, 1));
  EXPECT_EQ(m.At(Part::kBoundary, Part::kBoundary), Dim::k1);
  EXPECT_EQ(m.At(Part::kInterior, Part::kInterior), Dim::kFalse);
  EXPECT_EQ(MostSpecificRelation(m), Relation::kMeets);
}

TEST(RelateEngine, MeetsAlongPartialEdgeOverlap) {
  // Edges overlap for only part of their length.
  const Matrix m = RelateMatrix(Square(0, 0, 2, 1), Square(1, 1, 3, 2));
  EXPECT_EQ(m.At(Part::kBoundary, Part::kBoundary), Dim::k1);
  EXPECT_EQ(MostSpecificRelation(m), Relation::kMeets);
}

TEST(RelateEngine, OverlappingSquares) {
  const Matrix m = RelateMatrix(Square(0, 0, 2, 2), Square(1, 1, 3, 3));
  EXPECT_EQ(m.ToString(), "212101212");
  EXPECT_EQ(MostSpecificRelation(m), Relation::kIntersects);
}

TEST(RelateEngine, CrossingBars) {
  // A horizontal and a vertical bar forming a plus: interiors overlap, each
  // boundary passes through the other's interior and exterior.
  const Matrix m = RelateMatrix(Square(-3, -1, 3, 1), Square(-1, -3, 1, 3));
  EXPECT_EQ(MostSpecificRelation(m), Relation::kIntersects);
  EXPECT_EQ(m.At(Part::kInterior, Part::kInterior), Dim::k2);
  EXPECT_EQ(m.At(Part::kBoundary, Part::kBoundary), Dim::k0);
}

TEST(RelateEngine, PolygonInsideHoleIsDisjointLike) {
  // A small square inside the hole of a donut: interiors disjoint, no
  // boundary contact.
  const Polygon donut = SquareWithHole(0, 0, 6, 6, 2);  // hole [1,5]^2
  const Polygon small = Square(2.5, 2.5, 3.5, 3.5);
  const Matrix m = RelateMatrix(small, donut);
  EXPECT_EQ(MostSpecificRelation(m), Relation::kDisjoint);
}

TEST(RelateEngine, PolygonFillingHoleExactlyMeets) {
  // The filling polygon's boundary equals the donut's hole ring: meets with
  // dimension-1 boundary intersection.
  const Polygon donut = SquareWithHole(0, 0, 6, 6, 2);
  const Polygon filler = Square(1, 1, 5, 5);  // hole is [1,5]^2 for hw=2
  const Matrix m = RelateMatrix(filler, donut);
  EXPECT_EQ(m.At(Part::kBoundary, Part::kBoundary), Dim::k1);
  EXPECT_EQ(m.At(Part::kInterior, Part::kInterior), Dim::kFalse);
  EXPECT_EQ(MostSpecificRelation(m), Relation::kMeets);
}

TEST(RelateEngine, DonutCoveredByFilledVersion) {
  const Polygon donut = SquareWithHole(0, 0, 6, 6, 2);
  const Polygon filled = Square(0, 0, 6, 6);
  EXPECT_EQ(FindRelationExact(donut, filled), Relation::kCoveredBy);
  EXPECT_EQ(FindRelationExact(filled, donut), Relation::kCovers);
  // The hole interior of the donut belongs to its exterior, which meets the
  // filled polygon's interior.
  EXPECT_EQ(RelateMatrix(donut, filled).At(Part::kExterior, Part::kInterior),
            Dim::k2);
}

TEST(RelateEngine, PolygonStraddlingHoleAndBody) {
  // A bar crossing from the donut body, over the hole, to the body again.
  const Polygon donut = SquareWithHole(0, 0, 6, 6, 2);
  const Polygon bar = Square(0.5, 2.5, 5.5, 3.5);
  const Matrix m = RelateMatrix(bar, donut);
  EXPECT_EQ(MostSpecificRelation(m), Relation::kIntersects);
  // Part of the bar's interior is inside the hole (donut's exterior).
  EXPECT_EQ(m.At(Part::kInterior, Part::kExterior), Dim::k2);
}

TEST(RelateEngine, SymmetryUnderTranspose) {
  const Polygon shapes[] = {
      Square(0, 0, 2, 2), Square(1, 1, 3, 3), Square(1, 0, 2, 2),
      SquareWithHole(0, 0, 6, 6, 2), Triangle(Point{0, 0}, Point{2, 0},
                                              Point{1, 5})};
  for (const Polygon& a : shapes) {
    for (const Polygon& b : shapes) {
      EXPECT_EQ(RelateMatrix(a, b).ToString(),
                RelateMatrix(b, a).Transposed().ToString());
    }
  }
}

TEST(RelateEngine, TouchingAtVertexOfBoth) {
  // Triangles sharing one vertex, otherwise disjoint.
  const Polygon a = Triangle(Point{0, 0}, Point{2, 0}, Point{1, 1});
  const Polygon b = Triangle(Point{1, 1}, Point{0, 2}, Point{2, 2});
  const Matrix m = RelateMatrix(a, b);
  EXPECT_EQ(MostSpecificRelation(m), Relation::kMeets);
  EXPECT_EQ(m.At(Part::kBoundary, Part::kBoundary), Dim::k0);
}

TEST(RelateEngine, EdgeThroughVertexCrossing) {
  // b's boundary passes exactly through a vertex of a while crossing.
  const Polygon a = Triangle(Point{0, 0}, Point{4, 0}, Point{2, 2});
  const Polygon b = Square(1, -1, 3, 1);  // top edge passes through (2, 1)?
  const Matrix m = RelateMatrix(a, b);
  EXPECT_EQ(MostSpecificRelation(m), Relation::kIntersects);
}

TEST(RelateEngine, ReusedLocatorsGiveSameResult) {
  const Polygon a = SquareWithHole(0, 0, 6, 6, 2);
  const Polygon b = Square(1, 1, 5, 5);
  const PolygonLocator la(a);
  const PolygonLocator lb(b);
  EXPECT_EQ(RelateEngine::Relate(a, la, b, lb).ToString(),
            RelateMatrix(a, b).ToString());
}

}  // namespace
}  // namespace stj::de9im
